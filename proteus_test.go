package proteus_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proteus"
)

func newDB(t *testing.T, cfg proteus.Config) *proteus.DB {
	t.Helper()
	db := proteus.Open(cfg)
	if err := db.RegisterInMemory("people", []byte(
		"1,ann,34\n2,bo,19\n3,cy,52\n4,di,27\n"), "csv", &proteus.Schema{
		Fields: []proteus.Field{
			{Name: "id", Type: proteus.Int},
			{Name: "name", Type: proteus.String},
			{Name: "age", Type: proteus.Int},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterInMemory("events", []byte(
		`{"pid": 1, "kind": "login", "hits": [1, 2, 3]}
{"pid": 3, "kind": "purchase", "hits": []}
{"pid": 1, "kind": "logout", "hits": [4]}
`), "json", nil); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIQuery(t *testing.T) {
	db := newDB(t, proteus.Config{})
	res, err := db.Query("SELECT COUNT(*) FROM people WHERE age > 20")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("count = %d", got)
	}
}

func TestPublicAPICrossFormatJoin(t *testing.T) {
	db := newDB(t, proteus.Config{})
	res, err := db.Query(`
		SELECT p.name, e.kind FROM people p JOIN events e ON p.id = e.pid
		WHERE p.age > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (ann×2, cy×1)", len(res.Rows))
	}
}

func TestPublicAPIComprehension(t *testing.T) {
	db := newDB(t, proteus.Config{})
	res, err := db.QueryComprehension(
		"for { e <- events, h <- e.hits, h > 1 } yield sum h")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 9 { // 2+3+4
		t.Fatalf("sum = %d, want 9", got)
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db := newDB(t, proteus.Config{})
	out, err := db.Explain("SELECT COUNT(*) FROM people WHERE age > 20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan people") || !strings.Contains(out, "Reduce") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestPublicAPICacheLifecycle(t *testing.T) {
	db := newDB(t, proteus.Config{CacheEnabled: true})
	for i := 0; i < 2; i++ {
		if _, err := db.Query("SELECT SUM(age) FROM people"); err != nil {
			t.Fatal(err)
		}
	}
	st := db.CacheStats()
	if st.Blocks == 0 || st.Hits == 0 {
		t.Fatalf("cache stats = %+v", st)
	}
	// Drop invalidates caches and the catalog entry.
	db.Drop("people")
	if _, err := db.Query("SELECT SUM(age) FROM people"); err == nil {
		t.Error("dropped dataset should be unknown")
	}
	if got := db.CacheStats().Blocks; got != 0 {
		t.Errorf("blocks after drop = %d", got)
	}
}

func TestPublicAPIFileRegistration(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "x.csv")
	if err := os.WriteFile(csvPath, []byte("a,b\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := proteus.Open(proteus.Config{})
	if err := db.RegisterCSV("x", csvPath, nil, proteus.CSVOptions{Header: true}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT SUM(a), SUM(b) FROM x")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if v, _ := row.Field("sum(a)"); v.AsInt() != 4 {
		t.Errorf("sum(a) = %s", v)
	}

	jsonPath := filepath.Join(dir, "y.json")
	if err := os.WriteFile(jsonPath, []byte(`{"v": 10}
{"v": 32}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJSON("y", jsonPath); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("SELECT SUM(v) FROM y")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 42 {
		t.Errorf("sum(v) = %d", got)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := newDB(t, proteus.Config{})
	if _, err := db.Query("SELECT COUNT(*) FROM ghost"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := db.Query("SELEKT nope"); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := db.QueryComprehension("for { } yield nothing"); err == nil {
		t.Error("bad comprehension should fail")
	}
	if err := db.RegisterCSV("bad", "/no/such/file.csv", nil); err == nil {
		t.Error("missing file should fail")
	}
}

func TestPublicAPICacheBudgetRespected(t *testing.T) {
	db := proteus.Open(proteus.Config{CacheEnabled: true, CacheBudget: 64})
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString(`{"v": 1, "w": 2.5}`)
		sb.WriteByte('\n')
	}
	if err := db.RegisterInMemory("big", []byte(sb.String()), "json", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT SUM(v), MAX(w) FROM big"); err != nil {
		t.Fatal(err)
	}
	if st := db.CacheStats(); st.Bytes > 64 {
		t.Errorf("cache bytes %d exceed the 64-byte budget", st.Bytes)
	}
}
