// Quickstart: register a CSV file and a JSON file, then query them — and
// join across them — through one interface, with no loading step.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"proteus"
)

func main() {
	dir, err := os.MkdirTemp("", "proteus-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A CSV file of products (machine-generated, no quoting).
	productsCSV := filepath.Join(dir, "products.csv")
	if err := os.WriteFile(productsCSV, []byte(
		"1,widget,9.99\n"+
			"2,gadget,24.50\n"+
			"3,doohickey,3.75\n"+
			"4,gizmo,149.00\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	// A JSON file of orders, with a nested array of line entries.
	ordersJSON := filepath.Join(dir, "orders.json")
	if err := os.WriteFile(ordersJSON, []byte(
		`{"oid": 100, "product": 1, "qty": 3, "notes": [{"tag": "rush", "w": 2}]}
{"oid": 101, "product": 4, "qty": 1, "notes": []}
{"oid": 102, "product": 2, "qty": 5, "notes": [{"tag": "gift", "w": 1}, {"tag": "rush", "w": 3}]}
`), 0o644); err != nil {
		log.Fatal(err)
	}

	db := proteus.Open(proteus.Config{CacheEnabled: true})

	// Declare the CSV schema (or pass nil to infer from the first row).
	schema := &proteus.Schema{Fields: []proteus.Field{
		{Name: "pid", Type: proteus.Int},
		{Name: "name", Type: proteus.String},
		{Name: "price", Type: proteus.Float},
	}}
	if err := db.RegisterCSV("products", productsCSV, schema); err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterJSON("orders", ordersJSON); err != nil {
		log.Fatal(err)
	}

	// 1. Plain SQL over the CSV file.
	res, err := db.Query("SELECT name, price FROM products WHERE price < 25.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cheap products:")
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}

	// 2. A cross-format join: CSV × JSON, one engine, one query.
	res, err = db.Query(`
		SELECT o.oid, p.name, o.qty
		FROM orders o JOIN products p ON o.product = p.pid
		WHERE o.qty > 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multi-unit orders with product names:")
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}

	// 3. A comprehension unnesting the JSON arrays.
	res, err = db.QueryComprehension(`
		for { o <- orders, n <- o.notes, n.w > 1 }
		yield bag (o.oid, n.tag)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("heavily weighted order notes:")
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}

	// 4. EXPLAIN shows the optimized plan and compilation decisions.
	plan, err := db.Explain("SELECT COUNT(*) FROM orders WHERE qty > 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	fmt.Print(plan)
}
