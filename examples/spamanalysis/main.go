// Spam analysis example: the paper's §7.2 scenario. A JSON feed of spam
// observations, a CSV classification output, and a binary history table are
// queried together — including three-way cross-format joins — while
// adaptive caching reshapes storage under the workload.
package main

import (
	"fmt"
	"log"
	"time"

	"proteus"
	"proteus/internal/bench"
)

func main() {
	data := bench.GenSpam(5000)
	fmt.Printf("generated spam telemetry: %d JSON objects, %d CSV rows, %d binary rows\n",
		data.JSONObjs, data.CSVRows, data.BinRows)

	db := proteus.Open(proteus.Config{CacheEnabled: true})
	must(db.RegisterInMemory("feed", data.JSON, "json", nil))
	must(db.RegisterInMemory("classes", data.CSV, "csv", data.CSVSchema))
	must(db.RegisterInMemory("history", data.Bin, "bin", nil))

	run := func(label, q string, comp bool) {
		start := time.Now()
		var res *proteus.Result
		var err error
		if comp {
			res, err = db.QueryComprehension(q)
		} else {
			res, err = db.Query(q)
		}
		must(err)
		out := "…"
		if len(res.Rows) == 1 {
			out = res.Rows[0].String()
		} else {
			out = fmt.Sprintf("%d rows", len(res.Rows))
		}
		fmt.Printf("%-34s %-28s %v\n", label, out, time.Since(start).Round(time.Microsecond))
	}

	// Single-dataset exploration.
	run("low-score mails (JSON)", "SELECT COUNT(*) FROM feed WHERE score < 0.2", false)
	run("mails per day (JSON group-by)", "SELECT day, COUNT(*) FROM feed WHERE body_len < 1000 GROUP BY day", false)
	run("classifier agreement (CSV)", "SELECT class_id, AVG(confidence) FROM classes WHERE score < 0.5 GROUP BY class_id", false)

	// Unnest the nested classifier assignments inside each JSON object.
	run("strong class assignments", "for { m <- feed, c <- m.classes, c.w > 80 } yield count", true)

	// Cross-format joins (the workload's later phases).
	run("JSON ⋈ CSV", `SELECT COUNT(*) FROM feed m JOIN classes c ON m.mid = c.mid WHERE m.score < 0.1`, false)
	run("JSON ⋈ BIN ⋈ CSV (3-way)", `
		SELECT COUNT(*), MAX(h.volume)
		FROM history h JOIN classes c ON h.mid = c.mid JOIN feed m ON h.mid = m.mid
		WHERE m.body_len < 500 AND c.score < 0.5`, false)

	// Re-run a JSON-heavy query: the adaptive caches built as a side-effect
	// of the earlier queries now serve the raw-field accesses.
	run("low-score mails again (cached)", "SELECT COUNT(*) FROM feed WHERE score < 0.2", false)

	st := db.CacheStats()
	fmt.Printf("\nadaptive caches: %d blocks, %d join sides, %d bytes (hits %d)\n",
		st.Blocks, st.JoinSides, st.Bytes, st.Hits)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
