// TPC-H example: generate a scaled TPC-H subset in four representations
// (CSV, JSON, denormalized JSON, binary columnar), register all of them,
// and run the paper's §7.1 query templates — the same analytical query gets
// a freshly specialized engine per representation.
package main

import (
	"fmt"
	"log"
	"time"

	"proteus"
	"proteus/internal/bench"
)

func main() {
	t := bench.GenTPCH(0.005) // ~30k lineitems
	fmt.Printf("generated TPC-H subset: %d lineitems, %d orders\n",
		t.LineitemRows, t.OrdersRows)

	db := proteus.Open(proteus.Config{CacheEnabled: false})
	must(db.RegisterInMemory("lineitem_csv", t.LineitemCSV, "csv", t.LineitemSchema))
	must(db.RegisterInMemory("lineitem_json", t.LineitemJSON, "json", nil))
	must(db.RegisterInMemory("lineitem_bin", t.LineitemBin, "bin", nil))
	must(db.RegisterInMemory("orders_bin", t.OrdersBin, "bin", nil))
	must(db.RegisterInMemory("orders_denorm", t.DenormJSON, "json", nil))

	cut := t.MaxOrderKey / 5 // 20% selectivity

	// The same projection template over three physical representations.
	for _, table := range []string{"lineitem_csv", "lineitem_json", "lineitem_bin"} {
		q := fmt.Sprintf(
			"SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice) FROM %s WHERE l_orderkey < %d",
			table, cut)
		start := time.Now()
		res, err := db.Query(q)
		must(err)
		fmt.Printf("%-15s %v  %v\n", table, res.Rows[0], time.Since(start).Round(time.Microsecond))
	}

	// A join over binary data (Figure 10's template).
	q := fmt.Sprintf(
		"SELECT COUNT(*), MAX(o.o_totalprice) FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d",
		cut)
	res, err := db.Query(q)
	must(err)
	fmt.Println("join:", res.Rows[0])

	// The unnest variant over the denormalized document shape (Figure 9).
	comp := fmt.Sprintf(
		"for { o <- orders_denorm, l <- o.lineitems, l.l_orderkey < %d } yield count", cut)
	res, err = db.QueryComprehension(comp)
	must(err)
	fmt.Println("unnest count:", res.Rows[0])

	// GROUP BY over JSON (Figure 11's template).
	q = fmt.Sprintf(
		"SELECT l_linenumber, COUNT(*), MAX(l_quantity) FROM lineitem_json WHERE l_orderkey < %d GROUP BY l_linenumber",
		cut)
	res, err = db.Query(q)
	must(err)
	fmt.Println("group-by over JSON:")
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
