// Heterogeneous example: the paper's Example 3.1 — sailors and ships with
// nested children/personnel collections — expressed exactly as in the
// text, plus a look at how the structural index adapts to JSON files whose
// objects do / do not share a fixed field order.
package main

import (
	"fmt"
	"log"

	"proteus"
)

func main() {
	db := proteus.Open(proteus.Config{})

	// Sailors: each has an id and a children array of (name, age) records.
	sailors := []byte(`{"id": 1, "children": [{"name": "ann", "age": 21}, {"name": "bo", "age": 12}]}
{"id": 2, "children": []}
{"id": 3, "children": [{"name": "cy", "age": 30}]}
`)
	// Ships: each has a name and a personnel array of sailor ids.
	ships := []byte(`{"name": "meltemi", "personnel": [1, 2]}
{"name": "zephyros", "personnel": [3]}
`)
	must(db.RegisterInMemory("Sailor", sailors, "json", nil))
	must(db.RegisterInMemory("Ship", ships, "json", nil))

	// Example 3.1: "For each Sailor, return his id, the name of the Ship on
	// which he works, and the names of his adult children."
	res, err := db.QueryComprehension(`
		for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
		      p <- s2.personnel, s1.id = p, c.age > 18 }
		yield bag (s1.id, s2.name, c.name)`)
	must(err)
	fmt.Println("adult children of working sailors:")
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}

	// The same algebra serves relational output shapes too: group the
	// unnested children by sailor.
	res, err = db.Query(`
		SELECT s.id, COUNT(*) AS kids FROM Sailor s, s.children c GROUP BY s.id`)
	if err != nil {
		// Path generators in FROM are comprehension territory; show the
		// comprehension spelling instead.
		res, err = db.QueryComprehension(`
			for { s <- Sailor, c <- s.children } yield bag (s.id, c.age)`)
		must(err)
		fmt.Println("children per sailor (unnested):")
		for _, row := range res.Rows {
			fmt.Println(" ", row)
		}
	} else {
		fmt.Println("children per sailor:")
		for _, row := range res.Rows {
			fmt.Println(" ", row)
		}
	}

	// Structural-index specialization: a machine-generated file whose
	// objects all share one field order gets the compressed deterministic
	// index (Level 0 dropped); the sailor file above, with varying shapes,
	// keeps the associative Level 0.
	fixed := []byte(`{"a": 1, "b": 2.5}
{"a": 2, "b": 3.5}
{"a": 3, "b": 4.5}
`)
	must(db.RegisterInMemory("fixed", fixed, "json", nil))
	plan, err := db.Explain("SELECT SUM(a) FROM fixed WHERE b < 4.0")
	must(err)
	fmt.Println("plan over deterministic JSON:")
	fmt.Print(plan)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
