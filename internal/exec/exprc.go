// Package exec is the on-demand query engine of the paper (§5): it
// traverses a physical plan once, at query time, and emits a specialized
// implementation of every visited operator. The Go rendering of the
// paper's LLVM code generation is closure compilation: each operator and
// each expression becomes a type-specialized closure over the typed
// virtual-buffer register file, so the per-tuple path contains no plan
// interpretation, no boxed values, and no datatype dispatch — those happen
// exactly once, during compilation.
package exec

import (
	"fmt"
	"strings"

	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Typed evaluators. The boolean "ok" is the SQL-style validity flag: false
// means NULL. Predicates treat NULL as not satisfied.
type (
	evalInt   func(r *vbuf.Regs) (int64, bool)
	evalFloat func(r *vbuf.Regs) (float64, bool)
	evalBool  func(r *vbuf.Regs) (bool, bool)
	evalStr   func(r *vbuf.Regs) (string, bool)
	evalVal   func(r *vbuf.Regs) (types.Value, bool)
)

// typeOf infers the static type of e under the compiler's binding env.
func (c *Compiler) typeOf(e expr.Expr) (types.Type, error) {
	return expr.InferType(e, c.envTypes)
}

// resolveSlot returns the slot holding a path expression, if the path was
// extracted into a register. ok is false when the value must instead be
// reached through a boxed record (valSlot).
func (c *Compiler) resolveSlot(e expr.Expr) (vbuf.Slot, bool) {
	root, path, ok := expr.PathOf(e)
	if !ok {
		return vbuf.Slot{}, false
	}
	b, ok := c.bindings[root]
	if !ok {
		return vbuf.Slot{}, false
	}
	s, ok := b.slots[pathKey(path)]
	return s, ok
}

// resolveBoxed compiles boxed access for a path expression whose prefix
// lives in a Value slot: the longest extracted prefix is read, and the
// remaining path is followed through the boxed record at run time.
func (c *Compiler) resolveBoxed(e expr.Expr) (evalVal, error) {
	root, path, ok := expr.PathOf(e)
	if !ok {
		return nil, fmt.Errorf("exec: expression %s is not a path", e)
	}
	b, bound := c.bindings[root]
	if !bound {
		return nil, fmt.Errorf("exec: unknown binding %q", root)
	}
	// Longest extracted prefix (possibly the whole binding, key "").
	for n := len(path); n >= 0; n-- {
		if s, ok := b.slots[pathKey(path[:n])]; ok {
			rest := path[n:]
			if len(rest) == 0 {
				return func(r *vbuf.Regs) (types.Value, bool) {
					if r.Null[s.Null] {
						return types.Value{}, false
					}
					return r.Get(s), true
				}, nil
			}
			restCopy := append([]string(nil), rest...)
			return func(r *vbuf.Regs) (types.Value, bool) {
				if r.Null[s.Null] {
					return types.Value{}, false
				}
				v, ok := r.Get(s).Path(restCopy...)
				if !ok || v.IsNull() {
					return types.Value{}, false
				}
				return v, true
			}, nil
		}
	}
	return nil, fmt.Errorf("exec: no slot materialized for %s (binding %q)", e, root)
}

func pathKey(path []string) string { return strings.Join(path, ".") }

// compileInt compiles an integer-typed expression.
func (c *Compiler) compileInt(e expr.Expr) (evalInt, error) {
	switch x := e.(type) {
	case *expr.Const:
		if !types.Numeric(types.TypeOf(x.V)) {
			return nil, fmt.Errorf("exec: constant %s is not numeric", x.V)
		}
		v := x.V.AsInt()
		return func(*vbuf.Regs) (int64, bool) { return v, true }, nil
	case *expr.Ref, *expr.FieldAcc:
		if s, ok := c.resolveSlot(e); ok {
			if s.Class != vbuf.ClassInt {
				return nil, fmt.Errorf("exec: %s is not an int register", e)
			}
			return func(r *vbuf.Regs) (int64, bool) { return r.I[s.Idx], !r.Null[s.Null] }, nil
		}
		ev, err := c.resolveBoxed(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (int64, bool) {
			v, ok := ev(r)
			if !ok {
				return 0, false
			}
			return v.AsInt(), true
		}, nil
	case *expr.Neg:
		sub, err := c.compileInt(x.E)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (int64, bool) {
			v, ok := sub(r)
			return -v, ok
		}, nil
	case *expr.BinOp:
		if !x.Op.IsArith() {
			return nil, fmt.Errorf("exec: %s does not yield an int", e)
		}
		l, err := c.compileInt(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileInt(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case expr.OpAdd:
			return func(r *vbuf.Regs) (int64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a + b, aok && bok
			}, nil
		case expr.OpSub:
			return func(r *vbuf.Regs) (int64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a - b, aok && bok
			}, nil
		case expr.OpMul:
			return func(r *vbuf.Regs) (int64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a * b, aok && bok
			}, nil
		case expr.OpMod:
			return func(r *vbuf.Regs) (int64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				if !aok || !bok || b == 0 {
					return 0, false
				}
				return a % b, true
			}, nil
		}
		return nil, fmt.Errorf("exec: operator %s does not yield an int", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot compile %T as int", e)
}

// compileFloat compiles a float-typed (or int-promoted) expression.
func (c *Compiler) compileFloat(e expr.Expr) (evalFloat, error) {
	t, err := c.typeOf(e)
	if err != nil {
		return nil, err
	}
	if t.Kind() == types.KindInt {
		iv, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (float64, bool) {
			v, ok := iv(r)
			return float64(v), ok
		}, nil
	}
	switch x := e.(type) {
	case *expr.Const:
		v := x.V.AsFloat()
		return func(*vbuf.Regs) (float64, bool) { return v, true }, nil
	case *expr.Ref, *expr.FieldAcc:
		if s, ok := c.resolveSlot(e); ok {
			if s.Class != vbuf.ClassFloat {
				return nil, fmt.Errorf("exec: %s is not a float register", e)
			}
			return func(r *vbuf.Regs) (float64, bool) { return r.F[s.Idx], !r.Null[s.Null] }, nil
		}
		ev, err := c.resolveBoxed(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (float64, bool) {
			v, ok := ev(r)
			if !ok {
				return 0, false
			}
			return v.AsFloat(), true
		}, nil
	case *expr.Neg:
		sub, err := c.compileFloat(x.E)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (float64, bool) {
			v, ok := sub(r)
			return -v, ok
		}, nil
	case *expr.BinOp:
		if !x.Op.IsArith() {
			return nil, fmt.Errorf("exec: %s does not yield a float", e)
		}
		l, err := c.compileFloat(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileFloat(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case expr.OpAdd:
			return func(r *vbuf.Regs) (float64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a + b, aok && bok
			}, nil
		case expr.OpSub:
			return func(r *vbuf.Regs) (float64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a - b, aok && bok
			}, nil
		case expr.OpMul:
			return func(r *vbuf.Regs) (float64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				return a * b, aok && bok
			}, nil
		case expr.OpDiv:
			return func(r *vbuf.Regs) (float64, bool) {
				a, aok := l(r)
				b, bok := rr(r)
				if !aok || !bok || b == 0 {
					return 0, false
				}
				return a / b, true
			}, nil
		}
		return nil, fmt.Errorf("exec: operator %s does not yield a float", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot compile %T as float", e)
}

// compileStr compiles a string-typed expression.
func (c *Compiler) compileStr(e expr.Expr) (evalStr, error) {
	switch x := e.(type) {
	case *expr.Const:
		v := x.V.S
		return func(*vbuf.Regs) (string, bool) { return v, true }, nil
	case *expr.Ref, *expr.FieldAcc:
		if s, ok := c.resolveSlot(x); ok {
			if s.Class != vbuf.ClassString {
				return nil, fmt.Errorf("exec: %s is not a string register", e)
			}
			return func(r *vbuf.Regs) (string, bool) { return r.S[s.Idx], !r.Null[s.Null] }, nil
		}
		ev, err := c.resolveBoxed(x)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (string, bool) {
			v, ok := ev(r)
			if !ok {
				return "", false
			}
			return v.S, true
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T as string", e)
}

// compileBool compiles a boolean expression (predicates, connectives,
// comparisons); NULL evaluates as not-satisfied.
func (c *Compiler) compileBool(e expr.Expr) (evalBool, error) {
	switch x := e.(type) {
	case *expr.Const:
		v := x.V.Bool()
		return func(*vbuf.Regs) (bool, bool) { return v, true }, nil
	case *expr.Ref, *expr.FieldAcc:
		if s, ok := c.resolveSlot(e); ok {
			if s.Class != vbuf.ClassBool {
				return nil, fmt.Errorf("exec: %s is not a bool register", e)
			}
			return func(r *vbuf.Regs) (bool, bool) { return r.B[s.Idx], !r.Null[s.Null] }, nil
		}
		ev, err := c.resolveBoxed(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (bool, bool) {
			v, ok := ev(r)
			if !ok {
				return false, false
			}
			return v.Bool(), true
		}, nil
	case *expr.Not:
		sub, err := c.compileBool(x.E)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (bool, bool) {
			v, ok := sub(r)
			return !v, ok
		}, nil
	case *expr.IsNull:
		sub, err := c.compileVal(x.E)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (bool, bool) {
			_, ok := sub(r)
			return !ok, true
		}, nil
	case *expr.Like:
		sub, err := c.compileStr(x.E)
		if err != nil {
			return nil, err
		}
		like := x
		return func(r *vbuf.Regs) (bool, bool) {
			v, ok := sub(r)
			if !ok {
				return false, false
			}
			return like.Match(v), true
		}, nil
	case *expr.BinOp:
		switch {
		case x.Op.IsLogic():
			l, err := c.compileBool(x.L)
			if err != nil {
				return nil, err
			}
			rr, err := c.compileBool(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == expr.OpAnd {
				return func(r *vbuf.Regs) (bool, bool) {
					a, aok := l(r)
					if !aok || !a {
						return false, aok
					}
					return rr(r)
				}, nil
			}
			return func(r *vbuf.Regs) (bool, bool) {
				a, aok := l(r)
				if aok && a {
					return true, true
				}
				return rr(r)
			}, nil
		case x.Op.IsComparison():
			return c.compileComparison(x)
		}
		return nil, fmt.Errorf("exec: operator %s does not yield a bool", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot compile %T as bool", e)
}

// compileComparison specializes a comparison on the operands' static types:
// int×int, numeric (promoted to float), string, or boxed fallback.
func (c *Compiler) compileComparison(x *expr.BinOp) (evalBool, error) {
	lt, err := c.typeOf(x.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.typeOf(x.R)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch {
	case lt.Kind() == types.KindInt && rt.Kind() == types.KindInt:
		l, err := c.compileInt(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileInt(x.R)
		if err != nil {
			return nil, err
		}
		return intCmp(op, l, rr), nil
	case types.Numeric(lt) && types.Numeric(rt):
		l, err := c.compileFloat(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileFloat(x.R)
		if err != nil {
			return nil, err
		}
		return floatCmp(op, l, rr), nil
	case lt.Kind() == types.KindString && rt.Kind() == types.KindString:
		l, err := c.compileStr(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileStr(x.R)
		if err != nil {
			return nil, err
		}
		return strCmp(op, l, rr), nil
	default:
		l, err := c.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVal(x.R)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (bool, bool) {
			a, aok := l(r)
			b, bok := rr(r)
			if !aok || !bok {
				return false, false
			}
			return cmpSatisfies(op, types.Compare(a, b)), true
		}, nil
	}
}

func cmpSatisfies(op expr.BinKind, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	case expr.OpGe:
		return c >= 0
	}
	return false
}

func intCmp(op expr.BinKind, l, r evalInt) evalBool {
	switch op {
	case expr.OpEq:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a == b, aok && bok
		}
	case expr.OpNe:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a != b, aok && bok
		}
	case expr.OpLt:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a < b, aok && bok
		}
	case expr.OpLe:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a <= b, aok && bok
		}
	case expr.OpGt:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a > b, aok && bok
		}
	default:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a >= b, aok && bok
		}
	}
}

func floatCmp(op expr.BinKind, l, r evalFloat) evalBool {
	switch op {
	case expr.OpEq:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a == b, aok && bok
		}
	case expr.OpNe:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a != b, aok && bok
		}
	case expr.OpLt:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a < b, aok && bok
		}
	case expr.OpLe:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a <= b, aok && bok
		}
	case expr.OpGt:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a > b, aok && bok
		}
	default:
		return func(rg *vbuf.Regs) (bool, bool) {
			a, aok := l(rg)
			b, bok := r(rg)
			return a >= b, aok && bok
		}
	}
}

func strCmp(op expr.BinKind, l, r evalStr) evalBool {
	return func(rg *vbuf.Regs) (bool, bool) {
		a, aok := l(rg)
		b, bok := r(rg)
		if !aok || !bok {
			return false, false
		}
		return cmpSatisfies(op, strings.Compare(a, b)), true
	}
}

// compileVal compiles any expression to a boxed evaluator (used for nested
// output, record construction, and generic fallbacks).
func (c *Compiler) compileVal(e expr.Expr) (evalVal, error) {
	t, err := c.typeOf(e)
	if err != nil {
		return nil, err
	}
	switch t.Kind() {
	case types.KindInt:
		iv, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (types.Value, bool) {
			v, ok := iv(r)
			if !ok {
				return types.NullValue(), false
			}
			return types.IntValue(v), true
		}, nil
	case types.KindFloat:
		fv, err := c.compileFloat(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (types.Value, bool) {
			v, ok := fv(r)
			if !ok {
				return types.NullValue(), false
			}
			return types.FloatValue(v), true
		}, nil
	case types.KindBool:
		bv, err := c.compileBool(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (types.Value, bool) {
			v, ok := bv(r)
			if !ok {
				return types.NullValue(), false
			}
			return types.BoolValue(v), true
		}, nil
	case types.KindString:
		sv, err := c.compileStr(e)
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (types.Value, bool) {
			v, ok := sv(r)
			if !ok {
				return types.NullValue(), false
			}
			return types.StringValue(v), true
		}, nil
	}
	// Nested types: records and collections.
	switch x := e.(type) {
	case *expr.Const:
		v := x.V
		return func(*vbuf.Regs) (types.Value, bool) { return v, !v.IsNull() }, nil
	case *expr.Ref, *expr.FieldAcc:
		return c.resolveBoxed(e)
	case *expr.RecordCtor:
		subs := make([]evalVal, len(x.Exprs))
		for i, sub := range x.Exprs {
			ev, err := c.compileVal(sub)
			if err != nil {
				return nil, err
			}
			subs[i] = ev
		}
		names := x.Names
		// RecordValue retains the slice, so rows are carved from a chunked
		// arena instead of allocated one by one — the dominant allocation on
		// the batch→tuple boundary of join-heavy SELECT lists.
		arena := &tupleArena{width: len(subs)}
		return func(r *vbuf.Regs) (types.Value, bool) {
			vals := arena.next()
			for i, ev := range subs {
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				vals[i] = v
			}
			return types.RecordValue(names, vals), true
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T to a boxed value", e)
}
