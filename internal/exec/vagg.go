// Vectorized aggregation: when the root Reduce/Nest sits directly on a
// vectorizable chain, the fold consumes whole batches — the segment never
// crosses the batch→tuple boundary at all. Partial states mirror the tuple
// monoids exactly (same fold order, same combine functions), so results are
// bit-identical and parallel merging is unchanged.
package exec

import (
	"fmt"
	"math"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// vecAggState is one ungrouped aggregate folding batches. reset zeroes in
// place (the fold closures captured the state pointer at compile time);
// partial/absorb reuse the tuple monoids' partial types.
type vecAggState interface {
	reset()
	fold(b *vbuf.Batch)
	result() types.Value
	partial() any
	absorb(p any)
}

// vecCount counts selected rows (COUNT ignores its argument, like the
// tuple accumulator).
type vecCount struct{ n int64 }

func (s *vecCount) reset()              { s.n = 0 }
func (s *vecCount) fold(b *vbuf.Batch)  { s.n += int64(len(b.Sel)) }
func (s *vecCount) result() types.Value { return types.IntValue(s.n) }
func (s *vecCount) partial() any        { return s.n }
func (s *vecCount) absorb(p any)        { s.n += p.(int64) }

// vecScalar is sum/min/max over one scalar column type. Folding follows the
// selection vector in row order with the same first-seen/combine protocol as
// scalarAccumulator, so float results match the tuple path exactly.
type vecScalar[T int64 | float64 | string] struct {
	ev      func(b *vbuf.Batch) ([]T, []bool)
	combine func(a, v T) T
	box     func(T) types.Value
	st      scalarPart[T]
}

func (s *vecScalar[T]) reset() { s.st = scalarPart[T]{} }

func (s *vecScalar[T]) fold(b *vbuf.Batch) {
	v, nn := s.ev(b)
	for _, j := range b.Sel {
		if nn != nil && nn[j] {
			continue
		}
		if !s.st.seen {
			s.st.v = v[j]
			s.st.seen = true
			continue
		}
		s.st.v = s.combine(s.st.v, v[j])
	}
}

func (s *vecScalar[T]) result() types.Value {
	if !s.st.seen {
		return types.NullValue()
	}
	return s.box(s.st.v)
}

func (s *vecScalar[T]) partial() any { return s.st }

func (s *vecScalar[T]) absorb(p any) {
	o := p.(scalarPart[T])
	if !o.seen {
		return
	}
	if !s.st.seen {
		s.st = o
		return
	}
	s.st.v = s.combine(s.st.v, o.v)
}

// vecAvg folds AVG as (sum, count), merged before the quotient.
type vecAvg struct {
	ev vecFloat
	st avgPart
}

func (s *vecAvg) reset() { s.st = avgPart{} }

func (s *vecAvg) fold(b *vbuf.Batch) {
	v, nn := s.ev(b)
	for _, j := range b.Sel {
		if nn != nil && nn[j] {
			continue
		}
		s.st.sum += v[j]
		s.st.n++
	}
}

func (s *vecAvg) result() types.Value {
	if s.st.n == 0 {
		return types.NullValue()
	}
	return types.FloatValue(s.st.sum / float64(s.st.n))
}

func (s *vecAvg) partial() any { return s.st }

func (s *vecAvg) absorb(p any) {
	o := p.(avgPart)
	s.st.sum += o.sum
	s.st.n += o.n
}

// canVecAgg statically mirrors compileVecAgg's coverage.
func (c *Compiler) canVecAgg(a expr.Agg, schema *types.RecordType, bind string) bool {
	switch a.Kind {
	case expr.AggCount:
		return true
	case expr.AggSum, expr.AggAvg:
		k, ok := c.canVecExpr(a.Arg, schema, bind)
		return ok && (k == types.KindInt || k == types.KindFloat)
	case expr.AggMin, expr.AggMax:
		k, ok := c.canVecExpr(a.Arg, schema, bind)
		return ok && (k == types.KindInt || k == types.KindFloat || k == types.KindString)
	}
	return false
}

// compileVecAgg builds the batch-folding state for one aggregate, with the
// exact combine functions of the tuple accumulators (math.Max/Min for
// floats keeps NaN behavior identical).
func (c *Compiler) compileVecAgg(a expr.Agg) (vecAggState, error) {
	if a.Kind == expr.AggCount {
		return &vecCount{}, nil
	}
	t, err := c.typeOf(a.Arg)
	if err != nil {
		return nil, err
	}
	if a.Kind == expr.AggAvg {
		ev, err := c.compileVecFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		return &vecAvg{ev: ev}, nil
	}
	switch t.Kind() {
	case types.KindInt:
		ev, err := c.compileVecInt(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggSum:
			return &vecScalar[int64]{ev: ev, combine: func(a, v int64) int64 { return a + v }, box: types.IntValue}, nil
		case expr.AggMax:
			return &vecScalar[int64]{ev: ev, combine: func(a, v int64) int64 { return max(a, v) }, box: types.IntValue}, nil
		case expr.AggMin:
			return &vecScalar[int64]{ev: ev, combine: func(a, v int64) int64 { return min(a, v) }, box: types.IntValue}, nil
		}
	case types.KindFloat:
		ev, err := c.compileVecFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggSum:
			return &vecScalar[float64]{ev: ev, combine: func(a, v float64) float64 { return a + v }, box: types.FloatValue}, nil
		case expr.AggMax:
			return &vecScalar[float64]{ev: ev, combine: math.Max, box: types.FloatValue}, nil
		case expr.AggMin:
			return &vecScalar[float64]{ev: ev, combine: math.Min, box: types.FloatValue}, nil
		}
	case types.KindString:
		ev, err := c.compileVecStr(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggMax:
			return &vecScalar[string]{ev: ev, combine: func(a, v string) string { return max(a, v) }, box: types.StringValue}, nil
		case expr.AggMin:
			return &vecScalar[string]{ev: ev, combine: func(a, v string) string { return min(a, v) }, box: types.StringValue}, nil
		}
	}
	return nil, fmt.Errorf("exec: aggregate %s is not vectorizable", a.Kind)
}

// vecReducePartial is the mergeable state of a vectorized ungrouped Reduce.
type vecReducePartial struct {
	names    []string
	states   []vecAggState
	rowsCell *int64
}

func (p *vecReducePartial) reset() {
	for _, st := range p.states {
		st.reset()
	}
}

func (p *vecReducePartial) merge(o partialState) error {
	other, ok := o.(*vecReducePartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into vectorized reduce state", o)
	}
	for i, st := range p.states {
		st.absorb(other.states[i].partial())
	}
	return nil
}

func (p *vecReducePartial) result() (*Result, error) {
	if p.rowsCell != nil {
		*p.rowsCell = 1
	}
	vals := make([]types.Value, len(p.states))
	for i, st := range p.states {
		vals[i] = st.result()
	}
	return &Result{Cols: p.names, Rows: []types.Value{types.RecordValue(p.names, vals)}}, nil
}

// tryVecReduce compiles a Reduce whose child is a vectorizable chain into a
// batch-folding driver. ok=false means nothing was committed and the tuple
// path proceeds normally; every eligibility check is static and precedes
// slot allocation.
func (c *Compiler) tryVecReduce(red *algebra.Reduce) (func(r *vbuf.Regs) error, *vecReducePartial, bool, error) {
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		return nil, nil, false, nil // collection yield stays tuple-at-a-time
	}
	ch := vecChainOf(red.Child)
	if ch == nil {
		return nil, nil, false, nil
	}
	schema, ok := c.vecEligible(ch)
	if !ok {
		return nil, nil, false, nil
	}
	for _, a := range red.Aggs {
		if !c.canVecAgg(a, schema, ch.scan.Binding) {
			return nil, nil, false, nil
		}
	}
	if red.Pred != nil {
		if k, ok := c.canVecExpr(red.Pred, schema, ch.scan.Binding); !ok || k != types.KindBool {
			return nil, nil, false, nil
		}
	}

	seg, err := c.compileVecSeg(ch)
	if err != nil {
		return nil, nil, true, err
	}
	var predFilter vecFilter
	if red.Pred != nil {
		predFilter, err = c.compileVecFilter(red.Pred)
		if err != nil {
			return nil, nil, true, err
		}
	}
	st := &vecReducePartial{names: red.Names, rowsCell: c.rootRowsCell(red)}
	for _, a := range red.Aggs {
		agg, err := c.compileVecAgg(a)
		if err != nil {
			return nil, nil, true, err
		}
		st.states = append(st.states, agg)
	}
	states := st.states
	terminate := func(b *vbuf.Batch, _ *vbuf.Regs) error {
		if predFilter != nil {
			predFilter(b)
		}
		for _, s := range states {
			s.fold(b)
		}
		return nil
	}
	c.note("reduce over %s: vectorized fold (%d aggregates)", ch.scan.Dataset, len(states))
	return c.compileVecDriver(seg, terminate), st, true, nil
}

// Grouped aggregation --------------------------------------------------------

// vecColHolder shares one kernel evaluation per batch among all group
// states of an aggregate: bind refreshes the views once, every group's
// foldIdx then reads single lanes.
type vecColHolder[T any] struct {
	v    []T
	null []bool
}

// vecGroupState folds single selected lanes into one group's aggregate.
type vecGroupState interface {
	foldIdx(j int32)
	result() types.Value
	partial() any
	absorb(p any)
}

// vecNestAgg describes one aggregate of a vectorized Nest: the shared
// per-batch bind plus the per-group state factory.
type vecNestAgg struct {
	bind  func(b *vbuf.Batch)
	fresh func() vecGroupState
}

type nestCount struct{ n int64 }

func (s *nestCount) foldIdx(int32)       { s.n++ }
func (s *nestCount) result() types.Value { return types.IntValue(s.n) }
func (s *nestCount) partial() any        { return s.n }
func (s *nestCount) absorb(p any)        { s.n += p.(int64) }

type nestScalar[T int64 | float64 | string] struct {
	h       *vecColHolder[T]
	combine func(a, v T) T
	box     func(T) types.Value
	st      scalarPart[T]
}

func (s *nestScalar[T]) foldIdx(j int32) {
	if s.h.null != nil && s.h.null[j] {
		return
	}
	v := s.h.v[j]
	if !s.st.seen {
		s.st.v = v
		s.st.seen = true
		return
	}
	s.st.v = s.combine(s.st.v, v)
}

func (s *nestScalar[T]) result() types.Value {
	if !s.st.seen {
		return types.NullValue()
	}
	return s.box(s.st.v)
}

func (s *nestScalar[T]) partial() any { return s.st }

func (s *nestScalar[T]) absorb(p any) {
	o := p.(scalarPart[T])
	if !o.seen {
		return
	}
	if !s.st.seen {
		s.st = o
		return
	}
	s.st.v = s.combine(s.st.v, o.v)
}

type nestAvg struct {
	h  *vecColHolder[float64]
	st avgPart
}

func (s *nestAvg) foldIdx(j int32) {
	if s.h.null != nil && s.h.null[j] {
		return
	}
	s.st.sum += s.h.v[j]
	s.st.n++
}

func (s *nestAvg) result() types.Value {
	if s.st.n == 0 {
		return types.NullValue()
	}
	return types.FloatValue(s.st.sum / float64(s.st.n))
}

func (s *nestAvg) partial() any { return s.st }

func (s *nestAvg) absorb(p any) {
	o := p.(avgPart)
	s.st.sum += o.sum
	s.st.n += o.n
}

func nestScalarAgg[T int64 | float64 | string](
	ev func(b *vbuf.Batch) ([]T, []bool),
	combine func(a, v T) T,
	box func(T) types.Value,
) *vecNestAgg {
	h := &vecColHolder[T]{}
	return &vecNestAgg{
		bind:  func(b *vbuf.Batch) { h.v, h.null = ev(b) },
		fresh: func() vecGroupState { return &nestScalar[T]{h: h, combine: combine, box: box} },
	}
}

// compileVecNestAgg builds the shared-holder aggregate for one Nest agg.
func (c *Compiler) compileVecNestAgg(a expr.Agg) (*vecNestAgg, error) {
	if a.Kind == expr.AggCount {
		return &vecNestAgg{fresh: func() vecGroupState { return &nestCount{} }}, nil
	}
	t, err := c.typeOf(a.Arg)
	if err != nil {
		return nil, err
	}
	if a.Kind == expr.AggAvg {
		ev, err := c.compileVecFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		h := &vecColHolder[float64]{}
		return &vecNestAgg{
			bind:  func(b *vbuf.Batch) { h.v, h.null = ev(b) },
			fresh: func() vecGroupState { return &nestAvg{h: h} },
		}, nil
	}
	switch t.Kind() {
	case types.KindInt:
		ev, err := c.compileVecInt(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggSum:
			return nestScalarAgg(ev, func(a, v int64) int64 { return a + v }, types.IntValue), nil
		case expr.AggMax:
			return nestScalarAgg(ev, func(a, v int64) int64 { return max(a, v) }, types.IntValue), nil
		case expr.AggMin:
			return nestScalarAgg(ev, func(a, v int64) int64 { return min(a, v) }, types.IntValue), nil
		}
	case types.KindFloat:
		ev, err := c.compileVecFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggSum:
			return nestScalarAgg(ev, func(a, v float64) float64 { return a + v }, types.FloatValue), nil
		case expr.AggMax:
			return nestScalarAgg(ev, math.Max, types.FloatValue), nil
		case expr.AggMin:
			return nestScalarAgg(ev, math.Min, types.FloatValue), nil
		}
	case types.KindString:
		ev, err := c.compileVecStr(a.Arg)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case expr.AggMax:
			return nestScalarAgg(ev, func(a, v string) string { return max(a, v) }, types.StringValue), nil
		case expr.AggMin:
			return nestScalarAgg(ev, func(a, v string) string { return min(a, v) }, types.StringValue), nil
		}
	}
	return nil, fmt.Errorf("exec: aggregate %s is not vectorizable", a.Kind)
}

// vecNestPartial is the mergeable state of a vectorized single-int-key Nest.
// Like the tuple fast path, result order is ascending by key, and merging
// adopts later workers' group states for first-seen keys.
type vecNestPartial struct {
	outNames []string
	makers   []*vecNestAgg
	groups   map[int64][]vecGroupState
	order    []int64
	// nullGroup holds the NULL-key group's states (nil = no NULL keys
	// seen), matching the tuple paths and the Volcano baseline.
	nullGroup []vecGroupState
	rowsCell  *int64
}

func (p *vecNestPartial) freshStates() []vecGroupState {
	states := make([]vecGroupState, len(p.makers))
	for i, m := range p.makers {
		states[i] = m.fresh()
	}
	return states
}

func (p *vecNestPartial) reset() {
	p.groups = map[int64][]vecGroupState{}
	p.order = nil
	p.nullGroup = nil
}

func (p *vecNestPartial) merge(o partialState) error {
	other, ok := o.(*vecNestPartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into vectorized nest state", o)
	}
	for _, k := range other.order {
		states, exists := p.groups[k]
		if !exists {
			p.groups[k] = other.groups[k]
			p.order = append(p.order, k)
			continue
		}
		for i, st := range states {
			st.absorb(other.groups[k][i].partial())
		}
	}
	if other.nullGroup != nil {
		if p.nullGroup == nil {
			p.nullGroup = other.nullGroup
		} else {
			for i, st := range p.nullGroup {
				st.absorb(other.nullGroup[i].partial())
			}
		}
	}
	return nil
}

func (p *vecNestPartial) result() (*Result, error) {
	if p.rowsCell != nil {
		n := int64(len(p.order))
		if p.nullGroup != nil {
			n++
		}
		*p.rowsCell = n
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	rows := make([]types.Value, 0, len(p.order)+1)
	if p.nullGroup != nil {
		vals := make([]types.Value, 0, len(p.outNames))
		vals = append(vals, types.NullValue())
		for _, st := range p.nullGroup {
			vals = append(vals, st.result())
		}
		rows = append(rows, types.RecordValue(p.outNames, vals))
	}
	for _, k := range p.order {
		vals := make([]types.Value, 0, len(p.outNames))
		vals = append(vals, types.IntValue(k))
		for _, st := range p.groups[k] {
			vals = append(vals, st.result())
		}
		rows = append(rows, types.RecordValue(p.outNames, vals))
	}
	return &Result{Cols: p.outNames, Rows: rows}, nil
}

// tryVecNest compiles a single-int-key Nest over a vectorizable chain into
// a batch-grouping driver: the key column is evaluated once per batch, the
// grouping loop walks the selection vector, and group states fold lanes via
// shared column holders. Composite and non-int keys stay tuple-at-a-time.
func (c *Compiler) tryVecNest(n *algebra.Nest) (func(r *vbuf.Regs) error, *vecNestPartial, bool, error) {
	if len(n.GroupBy) != 1 {
		return nil, nil, false, nil
	}
	ch := vecChainOf(n.Child)
	if ch == nil {
		return nil, nil, false, nil
	}
	schema, ok := c.vecEligible(ch)
	if !ok {
		return nil, nil, false, nil
	}
	if k, ok := c.canVecExpr(n.GroupBy[0], schema, ch.scan.Binding); !ok || k != types.KindInt {
		return nil, nil, false, nil
	}
	for _, a := range n.Aggs {
		if !c.canVecAgg(a, schema, ch.scan.Binding) {
			return nil, nil, false, nil
		}
	}
	if n.Pred != nil {
		if k, ok := c.canVecExpr(n.Pred, schema, ch.scan.Binding); !ok || k != types.KindBool {
			return nil, nil, false, nil
		}
	}

	seg, err := c.compileVecSeg(ch)
	if err != nil {
		return nil, nil, true, err
	}
	keyKernel, err := c.compileVecInt(n.GroupBy[0])
	if err != nil {
		return nil, nil, true, err
	}
	var predFilter vecFilter
	if n.Pred != nil {
		predFilter, err = c.compileVecFilter(n.Pred)
		if err != nil {
			return nil, nil, true, err
		}
	}
	st := &vecNestPartial{
		rowsCell: c.rootRowsCell(n),
		outNames: append(append([]string{}, n.GroupNames...), n.AggNames...),
	}
	for _, a := range n.Aggs {
		m, err := c.compileVecNestAgg(a)
		if err != nil {
			return nil, nil, true, err
		}
		st.makers = append(st.makers, m)
	}

	makers := st.makers
	gauge := c.mem
	var pending int64
	groupBytes := int64(96 + len(n.GroupBy)*48 + len(n.Aggs)*96)
	terminate := func(b *vbuf.Batch, _ *vbuf.Regs) error {
		if predFilter != nil {
			predFilter(b)
		}
		kv, kn := keyKernel(b)
		for _, m := range makers {
			if m.bind != nil {
				m.bind(b)
			}
		}
		for _, j := range b.Sel {
			if kn != nil && kn[j] {
				// NULL key: its own group, like the tuple paths.
				if st.nullGroup == nil {
					st.nullGroup = st.freshStates()
					if gauge != nil {
						if pending += groupBytes; pending >= memQuantum {
							err := gauge.charge(pending)
							pending = 0
							if err != nil {
								return err
							}
						}
					}
				}
				for _, s := range st.nullGroup {
					s.foldIdx(j)
				}
				continue
			}
			k := kv[j]
			states, exists := st.groups[k]
			if !exists {
				states = st.freshStates()
				st.groups[k] = states
				st.order = append(st.order, k)
				if gauge != nil {
					if pending += groupBytes; pending >= memQuantum {
						err := gauge.charge(pending)
						pending = 0
						if err != nil {
							return err
						}
					}
				}
			}
			for _, s := range states {
				s.foldIdx(j)
			}
		}
		return nil
	}
	c.note("nest over %s: vectorized grouping (int key, %d aggregates)", ch.scan.Dataset, len(makers))
	return c.compileVecDriver(seg, terminate), st, true, nil
}
