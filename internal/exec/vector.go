// Vectorized pipeline segments (the block-at-a-time half of the hybrid
// engine). A segment is a driving scan plus the consecutive Selects above
// it; when every expression in the segment is batch-capable the compiler
// emits column kernels over vbuf.Batch instead of per-tuple closures, and
// bridges back to the tuple engine at the segment's top (vecAdapter) unless
// the root aggregation itself vectorizes (vagg.go). Mode selection is per
// segment and fully static: a plan can mix vectorized and tuple segments.
package exec

import (
	"errors"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/plugin/cachepg"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// vecChain is a maximal Scan→Select* pipeline prefix, selects bottom-up.
type vecChain struct {
	scan    *algebra.Scan
	selects []*algebra.Select
}

// vecChainOf unwinds Selects down to a Scan; nil when anything else (a join,
// an unnest) sits in between — those operators stay tuple-at-a-time.
func vecChainOf(n algebra.Node) *vecChain {
	var sels []*algebra.Select
	for {
		switch x := n.(type) {
		case *algebra.Select:
			sels = append(sels, x)
			n = x.Child
		case *algebra.Scan:
			for i, j := 0, len(sels)-1; i < j; i, j = i+1, j-1 {
				sels[i], sels[j] = sels[j], sels[i]
			}
			return &vecChain{scan: x, selects: sels}
		default:
			return nil
		}
	}
}

// vecEligible decides — before any slot is allocated, so the tuple path can
// still be taken with zero side effects — whether a chain can vectorize:
// every field the query needs from the scan's binding must be a scalar, and
// every Select predicate must compile to column kernels. Under VecAuto,
// datasets smaller than two batches stay on the tuple path (the batch
// machinery would not amortize), and so do plug-ins without a native batch
// producer: transposing a tuple scan into batches costs about what the
// column kernels save, so auto mode never gambles on it. VecOn still forces
// the transposing fallback, which the equivalence tests rely on.
func (c *Compiler) vecEligible(ch *vecChain) (*types.RecordType, bool) {
	if c.env.Vectorize == VecOff {
		return nil, false
	}
	s := ch.scan
	ds, in, err := c.env.Catalog.Dataset(s.Dataset)
	if err != nil {
		return nil, false
	}
	if c.env.Vectorize == VecAuto {
		if in.Cardinality(ds) < 2*vbuf.BatchSize {
			return nil, false
		}
		if _, ok := in.(plugin.BatchScanner); !ok {
			return nil, false
		}
	}
	schema := in.Schema(ds)
	for p := range c.needs[s.Binding] {
		if p == "" {
			return nil, false // whole-record boxing cannot be columnized
		}
		t, err := typeOfPath(schema, splitPath(p))
		if err != nil || !t.Kind().IsScalar() {
			return nil, false
		}
	}
	for _, sel := range ch.selects {
		if k, ok := c.canVecExpr(sel.Pred, schema, s.Binding); !ok || k != types.KindBool {
			return nil, false
		}
	}
	return schema, true
}

// canVecExpr statically checks that an expression compiles to column
// kernels over the given scan binding, returning its result kind. It
// mirrors the vectorized compilers' coverage exactly so a positive answer
// guarantees compilation succeeds.
func (c *Compiler) canVecExpr(e expr.Expr, schema *types.RecordType, bind string) (types.Kind, bool) {
	if root, path, ok := expr.PathOf(e); ok {
		if root != bind || len(path) == 0 {
			return 0, false
		}
		t, err := typeOfPath(schema, path)
		if err != nil || !t.Kind().IsScalar() {
			return 0, false
		}
		return t.Kind(), true
	}
	numeric := func(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }
	switch x := e.(type) {
	case *expr.Const:
		k := types.TypeOf(x.V).Kind()
		return k, k.IsScalar()
	case *expr.Neg:
		k, ok := c.canVecExpr(x.E, schema, bind)
		return k, ok && numeric(k)
	case *expr.Not:
		k, ok := c.canVecExpr(x.E, schema, bind)
		return types.KindBool, ok && k == types.KindBool
	case *expr.Like:
		k, ok := c.canVecExpr(x.E, schema, bind)
		return types.KindBool, ok && k == types.KindString
	case *expr.IsNull:
		_, ok := c.canVecExpr(x.E, schema, bind)
		return types.KindBool, ok
	case *expr.BinOp:
		lk, lok := c.canVecExpr(x.L, schema, bind)
		rk, rok := c.canVecExpr(x.R, schema, bind)
		if !lok || !rok {
			return 0, false
		}
		switch {
		case x.Op.IsArith():
			if !numeric(lk) || !numeric(rk) {
				return 0, false
			}
			switch x.Op {
			case expr.OpDiv:
				return types.KindFloat, true
			case expr.OpMod:
				return types.KindInt, lk == types.KindInt && rk == types.KindInt
			}
			if lk == types.KindFloat || rk == types.KindFloat {
				return types.KindFloat, true
			}
			return types.KindInt, true
		case x.Op.IsComparison():
			switch {
			case numeric(lk) && numeric(rk),
				lk == types.KindString && rk == types.KindString:
				return types.KindBool, true
			}
			return 0, false // boxed comparisons stay tuple-at-a-time
		case x.Op.IsLogic():
			return types.KindBool, lk == types.KindBool && rk == types.KindBool
		}
	}
	return 0, false
}

// vecSeg is one compiled vectorized segment: the batch, its producer, the
// cache overlay and population hooks, and the filter cascade.
type vecSeg struct {
	si       *scanInfo
	batch    *vbuf.Batch
	producer plugin.BatchRunFunc
	overlay  []cachepg.BatchLoader // cached fields merged into plug-in batches
	builders []*cachepg.Builder
	filters  []vecFilter
	selCells []*opCounters // one per filter; nil entries when unprofiled
}

// compileVecSeg compiles an eligible chain into a segment. Must only be
// called after vecEligible said yes: analyzeScan commits slot allocations
// and cache-builder claims, so there is no falling back afterwards.
func (c *Compiler) compileVecSeg(ch *vecChain) (*vecSeg, error) {
	si, err := c.analyzeScan(ch.scan)
	if err != nil {
		return nil, err
	}
	seg := &vecSeg{si: si, batch: vbuf.NewBatch(&c.alloc)}

	producerTag := "native"
	if len(si.pluginFields) == 0 && len(si.cachedFields) > 0 {
		// Full cache hit: batches alias the cache blocks' arrays directly.
		var loaders []cachepg.BatchLoader
		for _, cf := range si.cachedFields {
			ld, err := cachepg.CompileBatchLoader(cf.block, cf.slot)
			if err != nil {
				return nil, err
			}
			loaders = append(loaders, ld)
		}
		// Zone-map window skipping is safe here: no builders exist on this
		// path, so nothing downstream needs to observe the skipped rows.
		seg.producer = cachepg.CompileBatchScan(si.rows, loaders, &si.b.oidSlot, si.morsel, si.scanProf, c.cancel, si.zoneSkip)
		producerTag = "cache"
	} else {
		spec := plugin.ScanSpec{Fields: si.pluginFields, OIDSlot: &si.b.oidSlot, Morsel: si.morsel, Prof: si.scanProf, Cancel: c.cancel}
		seg.producer, err = c.compileBatchProducer(si, spec, &producerTag)
		if err != nil {
			return nil, err
		}
		// Cached fields not produced by the plug-in overlay onto each batch
		// as zero-copy block windows [Base, Base+N).
		for _, cf := range si.cachedFields {
			ld, err := cachepg.CompileBatchLoader(cf.block, cf.slot)
			if err != nil {
				return nil, err
			}
			seg.overlay = append(seg.overlay, ld)
		}
	}

	for _, br := range si.buildReqs {
		seg.builders = append(seg.builders, cachepg.NewBuilder(si.s.Dataset, br.key, br.kind, si.bias, br.slot, si.rows))
	}

	for _, sel := range ch.selects {
		f, err := c.compileSegFilter(si, sel.Pred)
		if err != nil {
			return nil, err
		}
		seg.filters = append(seg.filters, f)
		seg.selCells = append(seg.selCells, c.opCtr(sel))
	}
	c.note("scan %s: vectorized segment (%s producer, %d filters)", ch.scan.Dataset, producerTag, len(seg.filters))
	c.vectorized = true
	return seg, nil
}

// compileBatchProducer asks the plug-in for a native batch scan and falls
// back to transposing its tuple scan when the format (or this particular
// field list) cannot produce columns directly.
func (c *Compiler) compileBatchProducer(si *scanInfo, spec plugin.ScanSpec, tag *string) (plugin.BatchRunFunc, error) {
	if bs, ok := si.in.(plugin.BatchScanner); ok {
		run, err := bs.CompileBatchScan(si.ds, spec)
		if err == nil {
			return run, nil
		}
		if !errors.Is(err, plugin.ErrUnsupported) {
			return nil, err
		}
	}
	tuple, err := si.in.CompileScan(si.ds, spec)
	if err != nil {
		return nil, err
	}
	*tag = "transposed"
	return plugin.BatchFromTuples(tuple, spec), nil
}

// compileVecDriver assembles the segment's run function: per batch it
// overlays cached columns, feeds cache population, runs the filter cascade
// with per-operator accounting, and hands the surviving selection to
// terminate (the adapter or a vectorized aggregation).
//
// Profiling replicates the tuple path's shape. Untimed mode pays only
// counter increments: rows-out per filter, batches everywhere, and the
// scan's rows arithmetically in the outer wrapper. Timed (EXPLAIN ANALYZE)
// mode also records, per batch, the time spent above the scan and above
// each filter, so self-time derivation in profile.go works unchanged.
func (c *Compiler) compileVecDriver(seg *vecSeg, terminate func(b *vbuf.Batch, r *vbuf.Regs) error) func(r *vbuf.Regs) error {
	si := seg.si
	batch := seg.batch
	overlay := seg.overlay
	builders := seg.builders
	filters := seg.filters
	selCells := seg.selCells
	scanCell := c.opCtr(si.s)
	timing := c.prof != nil && c.prof.timing
	var tAfter []time.Time
	if timing {
		tAfter = make([]time.Time, len(filters))
	}

	credit := si.credit
	run := func(r *vbuf.Regs) error {
		if credit != nil {
			credit()
		}
		for _, bd := range builders {
			bd.Reset()
		}
		consume := func() error {
			for _, ld := range overlay {
				ld(batch, batch.Base, batch.Base+int64(batch.N))
			}
			for _, bd := range builders {
				bd.AppendBatch(batch)
			}
			var t0 time.Time
			if timing {
				t0 = time.Now()
				scanCell.rows += int64(batch.N)
			}
			if scanCell != nil {
				scanCell.batches++
			}
			for i, f := range filters {
				f(batch)
				if cell := selCells[i]; cell != nil {
					cell.rows += int64(len(batch.Sel))
					cell.batches++
				}
				if timing {
					tAfter[i] = time.Now()
				}
			}
			err := terminate(batch, r)
			if timing {
				end := time.Now()
				scanCell.nanos += int64(end.Sub(t0))
				for i, cell := range selCells {
					if cell != nil {
						cell.nanos += int64(end.Sub(tAfter[i]))
					}
				}
			}
			return err
		}
		if err := seg.producer(r, batch, consume); err != nil {
			return err
		}
		c.finishScanBuilders(si, builders)
		return nil
	}
	return c.vecProfRun(si.s, run, morselRows(si.morsel, si.rows))
}

// vecProfRun is profScanRun for vectorized drivers: driver wall time and
// the arithmetic rows-out count, but no per-invocation batch increment —
// the driver counts real batches itself.
func (c *Compiler) vecProfRun(s *algebra.Scan, run func(r *vbuf.Regs) error, rows int64) func(r *vbuf.Regs) error {
	oc := c.opCtr(s)
	if oc == nil {
		return run
	}
	countRows := !c.prof.timing
	events := c.prof.events
	name := "morsel " + s.Dataset
	return func(r *vbuf.Regs) error {
		t0 := time.Now()
		err := run(r)
		d := time.Since(t0)
		oc.driverNanos += int64(d)
		if events {
			oc.events = append(oc.events, obs.Span{Name: name, Start: t0, Dur: d})
		}
		if err == nil && countRows {
			oc.rows += rows
		}
		return err
	}
}

// tryVecSelectChain intercepts a Select whose subtree is a vectorizable
// chain and compiles it as one segment that re-materializes surviving rows
// into the register file for the tuple operators above (handled=false means
// the caller proceeds tuple-at-a-time with no state disturbed).
func (c *Compiler) tryVecSelectChain(sel *algebra.Select, consume Kont) (func(r *vbuf.Regs) error, bool, error) {
	ch := vecChainOf(sel)
	if ch == nil {
		return nil, false, nil
	}
	if _, ok := c.vecEligible(ch); !ok {
		return nil, false, nil
	}
	seg, err := c.compileVecSeg(ch)
	if err != nil {
		return nil, true, err
	}
	return c.compileVecDriver(seg, c.vecAdapter(seg.si, consume)), true, nil
}

// vecAdapter is the batch→tuple boundary: it scatters each selected row's
// columns back into the register file and calls the tuple continuation once
// per row. One writer closure per extracted slot, compiled once.
func (c *Compiler) vecAdapter(si *scanInfo, consume Kont) func(b *vbuf.Batch, r *vbuf.Regs) error {
	scatter := c.vecRowScatter(si)
	return func(b *vbuf.Batch, r *vbuf.Regs) error {
		for _, j := range b.Sel {
			scatter(b, r, j)
			if err := consume(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// vecRowScatter compiles the per-lane register scatter of a segment's
// binding: one writer closure per extracted slot plus the OID, applied to a
// single selected lane. The adapter runs it for every selected row; the
// vectorized join probe only for lanes with a candidate match.
func (c *Compiler) vecRowScatter(si *scanInfo) func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
	type writer func(b *vbuf.Batch, r *vbuf.Regs, j int32)
	var writers []writer
	add := func(s vbuf.Slot) {
		switch s.Class {
		case vbuf.ClassInt:
			writers = append(writers, func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
				r.I[s.Idx] = b.I[s.Idx][j]
				nc := b.Null[s.Null]
				r.Null[s.Null] = nc != nil && nc[j]
			})
		case vbuf.ClassFloat:
			writers = append(writers, func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
				r.F[s.Idx] = b.F[s.Idx][j]
				nc := b.Null[s.Null]
				r.Null[s.Null] = nc != nil && nc[j]
			})
		case vbuf.ClassBool:
			writers = append(writers, func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
				r.B[s.Idx] = b.B[s.Idx][j]
				nc := b.Null[s.Null]
				r.Null[s.Null] = nc != nil && nc[j]
			})
		case vbuf.ClassString:
			writers = append(writers, func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
				r.S[s.Idx] = b.S[s.Idx][j]
				nc := b.Null[s.Null]
				r.Null[s.Null] = nc != nil && nc[j]
			})
		}
	}
	for _, p := range sortedKeys(si.b.slots) {
		add(si.b.slots[p])
	}
	oid := si.b.oidSlot
	writers = append(writers, func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
		r.I[oid.Idx] = b.I[oid.Idx][j]
		r.Null[oid.Null] = false
	})
	return func(b *vbuf.Batch, r *vbuf.Regs, j int32) {
		for _, w := range writers {
			w(b, r, j)
		}
	}
}
