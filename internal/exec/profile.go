// Per-operator profiling for compiled programs.
//
// The instrumentation budget follows DESIGN.md "Observability": per-tuple
// work is at most one non-atomic increment on a worker-private cell (fused
// into the operator's own closure wherever possible), clock reads happen
// once per driver invocation (per morsel), and shared state is only touched
// at snapshot time, after the run's WaitGroup has settled. Wall-clock
// per-operator timing — one time.Now() pair per tuple per operator — is
// reserved for EXPLAIN ANALYZE (ProfileSpec.Timing) runs.
package exec

import (
	"sort"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/vbuf"
)

// ProfileSpec asks Compile/CompileParallel to instrument the generated
// closures. A nil spec (Env.Profile) compiles the exact unprofiled code.
type ProfileSpec struct {
	// Timing additionally wraps every operator with wall-clock measurement
	// of the pipeline above it (EXPLAIN ANALYZE). Untimed profiled runs pay
	// only row/batch counters.
	Timing bool
	// Events additionally records one span per scan-driver invocation (per
	// morsel) for trace export. Costs one time.Now() pair plus an append per
	// morsel — cheap, but off by default and sampled by the engine
	// (Config.TraceMorsels).
	Events bool
	// Estimates maps plan nodes (by identity) to the optimizer's
	// cardinality estimates, surfaced next to actuals in the profile.
	Estimates map[algebra.Node]float64
}

// opCounters is one worker's counter cell for one operator. Cells are
// worker-private and non-atomic: workers write disjoint cells, and the
// snapshot aggregates only after the run completes.
type opCounters struct {
	rows            int64
	batches         int64
	nanos           int64 // wall time spent in the pipeline above (timed runs)
	driverNanos     int64 // scan only: total time inside the scan driver
	cacheBuildNanos int64 // scan only: materializing cache blocks
	zoneSkips       int64 // scan windows this query skipped via zone maps
	idxHits         int64 // batches this query answered from a bitmap index
	scan            plugin.ScanProf
	// events holds this worker's per-morsel spans (ProfileSpec.Events only).
	events []obs.Span
}

type opNode struct{ per []opCounters }

// progProf is a compiled program's profiling state: per-operator counter
// cells (one per worker) plus last-run totals. It is created at compile
// time and shared by every pipeline clone of a parallel program.
type progProf struct {
	timing    bool
	events    bool
	workers   int
	plan      algebra.Node
	estimates map[algebra.Node]float64
	byNode    map[algebra.Node]*opNode

	// cacheHits counts scan fields served from materialized cache blocks.
	// It is a compile-time fact (analyzeScan binds the block before any run),
	// so it is set once and survives resetRun.
	cacheHits int64

	// Last-run state, written by the program's run wrapper and the
	// parallel coordinator (never concurrently with readers).
	totalNanos  int64
	workerSpans []obs.Span
}

func newProgProf(plan algebra.Node, spec *ProfileSpec, workers int) *progProf {
	return &progProf{
		timing:    spec.Timing,
		events:    spec.Events,
		workers:   workers,
		plan:      plan,
		estimates: spec.Estimates,
		byNode:    map[algebra.Node]*opNode{},
	}
}

// ctr returns a worker's counter cell for node n. Compilation is serial
// (the parallel compiler builds clones in a loop), so no lock is needed.
func (p *progProf) ctr(n algebra.Node, worker int) *opCounters {
	on, ok := p.byNode[n]
	if !ok {
		on = &opNode{per: make([]opCounters, p.workers)}
		p.byNode[n] = on
	}
	return &on.per[worker]
}

// resetRun re-arms the per-run state so each Run reports independently.
// Cells are zeroed in place: the plug-in closures captured pointers to
// them at compile time.
func (p *progProf) resetRun() {
	for _, on := range p.byNode {
		for i := range on.per {
			on.per[i] = opCounters{}
		}
	}
	p.totalNanos = 0
	p.workerSpans = nil
}

// snapshot aggregates worker cells into the operator-profile tree. Self
// time is derived from "time above" measurements: each timed wrapper
// records the time its operator's emissions spend in the pipeline above
// it, so self(n) = Σ above(children) − above(n); a leaf scan's self time
// is its driver time minus the time above it.
func (p *progProf) snapshot() *obs.OpProfile {
	root, _ := p.buildOp(p.plan)
	return root
}

func (p *progProf) buildOp(n algebra.Node) (*obs.OpProfile, int64) {
	var agg opCounters
	if on, ok := p.byNode[n]; ok {
		for i := range on.per {
			c := &on.per[i]
			agg.rows += c.rows
			agg.batches += c.batches
			agg.nanos += c.nanos
			agg.driverNanos += c.driverNanos
			agg.cacheBuildNanos += c.cacheBuildNanos
			agg.zoneSkips += c.zoneSkips
			agg.idxHits += c.idxHits
			agg.scan.Add(c.scan)
		}
	}
	op := &obs.OpProfile{Op: algebra.Label(n), Rows: agg.rows, Batches: agg.batches}
	if est, ok := p.estimates[n]; ok {
		op.EstRows = est
	}
	var childAbove int64
	for _, ch := range n.Children() {
		cp, above := p.buildOp(ch)
		op.Children = append(op.Children, cp)
		childAbove += above
	}
	if p.timing {
		self := childAbove - agg.nanos
		if _, isScan := n.(*algebra.Scan); isScan {
			self = agg.driverNanos - agg.nanos
		}
		if self < 0 {
			self = 0
		}
		op.SelfNanos = self
	}
	if agg.scan != (plugin.ScanProf{}) {
		op.Extra = append(op.Extra,
			obs.Counter{Name: "bytes_read", Value: agg.scan.BytesRead},
			obs.Counter{Name: "fields_parsed", Value: agg.scan.FieldsParsed},
			obs.Counter{Name: "index_hits", Value: agg.scan.IndexHits})
	}
	if agg.cacheBuildNanos > 0 {
		op.Extra = append(op.Extra, obs.Counter{Name: "cache_build_nanos", Value: agg.cacheBuildNanos})
	}
	if agg.zoneSkips > 0 {
		op.Extra = append(op.Extra, obs.Counter{Name: "zone_skips", Value: agg.zoneSkips})
	}
	if agg.idxHits > 0 {
		op.Extra = append(op.Extra, obs.Counter{Name: "bitmap_hits", Value: agg.idxHits})
	}
	return op, agg.nanos
}

// eventsOf collects one worker's per-morsel spans across all operators,
// ordered by start time. Only meaningful after a run with events enabled.
func (p *progProf) eventsOf(worker int) []obs.Span {
	var out []obs.Span
	for _, on := range p.byNode {
		if worker < len(on.per) {
			out = append(out, on.per[worker].events...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Compiler-side instrumentation helpers ------------------------------------

// opCtr returns this worker's counter cell for n (nil when unprofiled).
func (c *Compiler) opCtr(n algebra.Node) *opCounters {
	if c.prof == nil {
		return nil
	}
	return c.prof.ctr(n, c.workerID)
}

// inlineRows returns the rows-out cell for operators that fuse counting
// into their own closures (untimed mode only; timed runs count in the
// consume wrapper instead).
func (c *Compiler) inlineRows(n algebra.Node) *int64 {
	if c.prof == nil || c.prof.timing {
		return nil
	}
	return &c.prof.ctr(n, c.workerID).rows
}

// rootRowsCell returns the rows cell for a blocking root operator
// (Reduce/Nest), which self-reports its output cardinality when the merged
// partial state materializes its result.
func (c *Compiler) rootRowsCell(n algebra.Node) *int64 {
	if c.prof == nil {
		return nil
	}
	return &c.prof.ctr(n, c.workerID).rows
}

// profKont wraps an operator's consume with row counting and, on timed
// runs, measurement of the time its emissions spend in the pipeline above.
func (c *Compiler) profKont(n algebra.Node, consume Kont) Kont {
	oc := c.opCtr(n)
	if oc == nil {
		return consume
	}
	rows := &oc.rows
	inner := consume
	if c.prof.timing {
		nanos := &oc.nanos
		return func(r *vbuf.Regs) error {
			*rows++
			t0 := time.Now()
			err := inner(r)
			*nanos += int64(time.Since(t0))
			return err
		}
	}
	return func(r *vbuf.Regs) error {
		*rows++
		return inner(r)
	}
}

// profScanRun wraps a scan driver with per-invocation (per-morsel)
// accounting: batches, driver wall time, and — untimed — the arithmetic
// rows-out count (scan drivers emit every record of their range, so no
// per-tuple counting is needed).
func (c *Compiler) profScanRun(s *algebra.Scan, run func(r *vbuf.Regs) error, rows int64) func(r *vbuf.Regs) error {
	oc := c.opCtr(s)
	if oc == nil {
		return run
	}
	countRows := !c.prof.timing
	events := c.prof.events
	name := "morsel " + s.Dataset
	return func(r *vbuf.Regs) error {
		oc.batches++
		t0 := time.Now()
		err := run(r)
		d := time.Since(t0)
		oc.driverNanos += int64(d)
		if events {
			oc.events = append(oc.events, obs.Span{Name: name, Start: t0, Dur: d})
		}
		if err == nil && countRows {
			oc.rows += rows
		}
		return err
	}
}
