// Per-operator profiling for compiled programs.
//
// The instrumentation budget follows DESIGN.md "Observability": per-tuple
// work is at most one non-atomic increment on a worker-private cell (fused
// into the operator's own closure wherever possible), clock reads happen
// once per driver invocation (per morsel), and shared state is only touched
// at snapshot time, after the run's WaitGroup has settled. Wall-clock
// per-operator timing — one time.Now() pair per tuple per operator — is
// reserved for EXPLAIN ANALYZE (ProfileSpec.Timing) runs.
package exec

import (
	"time"

	"proteus/internal/algebra"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/vbuf"
)

// ProfileSpec asks Compile/CompileParallel to instrument the generated
// closures. A nil spec (Env.Profile) compiles the exact unprofiled code.
type ProfileSpec struct {
	// Timing additionally wraps every operator with wall-clock measurement
	// of the pipeline above it (EXPLAIN ANALYZE). Untimed profiled runs pay
	// only row/batch counters.
	Timing bool
	// Estimates maps plan nodes (by identity) to the optimizer's
	// cardinality estimates, surfaced next to actuals in the profile.
	Estimates map[algebra.Node]float64
}

// opCounters is one worker's counter cell for one operator. Cells are
// worker-private and non-atomic: workers write disjoint cells, and the
// snapshot aggregates only after the run completes.
type opCounters struct {
	rows            int64
	batches         int64
	nanos           int64 // wall time spent in the pipeline above (timed runs)
	driverNanos     int64 // scan only: total time inside the scan driver
	cacheBuildNanos int64 // scan only: materializing cache blocks
	scan            plugin.ScanProf
}

type opNode struct{ per []opCounters }

// progProf is a compiled program's profiling state: per-operator counter
// cells (one per worker) plus last-run totals. It is created at compile
// time and shared by every pipeline clone of a parallel program.
type progProf struct {
	timing    bool
	workers   int
	plan      algebra.Node
	estimates map[algebra.Node]float64
	byNode    map[algebra.Node]*opNode

	// Last-run state, written by the program's run wrapper and the
	// parallel coordinator (never concurrently with readers).
	totalNanos  int64
	workerSpans []obs.Span
}

func newProgProf(plan algebra.Node, spec *ProfileSpec, workers int) *progProf {
	return &progProf{
		timing:    spec.Timing,
		workers:   workers,
		plan:      plan,
		estimates: spec.Estimates,
		byNode:    map[algebra.Node]*opNode{},
	}
}

// ctr returns a worker's counter cell for node n. Compilation is serial
// (the parallel compiler builds clones in a loop), so no lock is needed.
func (p *progProf) ctr(n algebra.Node, worker int) *opCounters {
	on, ok := p.byNode[n]
	if !ok {
		on = &opNode{per: make([]opCounters, p.workers)}
		p.byNode[n] = on
	}
	return &on.per[worker]
}

// resetRun re-arms the per-run state so each Run reports independently.
// Cells are zeroed in place: the plug-in closures captured pointers to
// them at compile time.
func (p *progProf) resetRun() {
	for _, on := range p.byNode {
		for i := range on.per {
			on.per[i] = opCounters{}
		}
	}
	p.totalNanos = 0
	p.workerSpans = nil
}

// snapshot aggregates worker cells into the operator-profile tree. Self
// time is derived from "time above" measurements: each timed wrapper
// records the time its operator's emissions spend in the pipeline above
// it, so self(n) = Σ above(children) − above(n); a leaf scan's self time
// is its driver time minus the time above it.
func (p *progProf) snapshot() *obs.OpProfile {
	root, _ := p.buildOp(p.plan)
	return root
}

func (p *progProf) buildOp(n algebra.Node) (*obs.OpProfile, int64) {
	var agg opCounters
	if on, ok := p.byNode[n]; ok {
		for i := range on.per {
			c := &on.per[i]
			agg.rows += c.rows
			agg.batches += c.batches
			agg.nanos += c.nanos
			agg.driverNanos += c.driverNanos
			agg.cacheBuildNanos += c.cacheBuildNanos
			agg.scan.Add(c.scan)
		}
	}
	op := &obs.OpProfile{Op: algebra.Label(n), Rows: agg.rows, Batches: agg.batches}
	if est, ok := p.estimates[n]; ok {
		op.EstRows = est
	}
	var childAbove int64
	for _, ch := range n.Children() {
		cp, above := p.buildOp(ch)
		op.Children = append(op.Children, cp)
		childAbove += above
	}
	if p.timing {
		self := childAbove - agg.nanos
		if _, isScan := n.(*algebra.Scan); isScan {
			self = agg.driverNanos - agg.nanos
		}
		if self < 0 {
			self = 0
		}
		op.SelfNanos = self
	}
	if agg.scan != (plugin.ScanProf{}) {
		op.Extra = append(op.Extra,
			obs.Counter{Name: "bytes_read", Value: agg.scan.BytesRead},
			obs.Counter{Name: "fields_parsed", Value: agg.scan.FieldsParsed},
			obs.Counter{Name: "index_hits", Value: agg.scan.IndexHits})
	}
	if agg.cacheBuildNanos > 0 {
		op.Extra = append(op.Extra, obs.Counter{Name: "cache_build_nanos", Value: agg.cacheBuildNanos})
	}
	return op, agg.nanos
}

// Compiler-side instrumentation helpers ------------------------------------

// opCtr returns this worker's counter cell for n (nil when unprofiled).
func (c *Compiler) opCtr(n algebra.Node) *opCounters {
	if c.prof == nil {
		return nil
	}
	return c.prof.ctr(n, c.workerID)
}

// inlineRows returns the rows-out cell for operators that fuse counting
// into their own closures (untimed mode only; timed runs count in the
// consume wrapper instead).
func (c *Compiler) inlineRows(n algebra.Node) *int64 {
	if c.prof == nil || c.prof.timing {
		return nil
	}
	return &c.prof.ctr(n, c.workerID).rows
}

// rootRowsCell returns the rows cell for a blocking root operator
// (Reduce/Nest), which self-reports its output cardinality when the merged
// partial state materializes its result.
func (c *Compiler) rootRowsCell(n algebra.Node) *int64 {
	if c.prof == nil {
		return nil
	}
	return &c.prof.ctr(n, c.workerID).rows
}

// profKont wraps an operator's consume with row counting and, on timed
// runs, measurement of the time its emissions spend in the pipeline above.
func (c *Compiler) profKont(n algebra.Node, consume Kont) Kont {
	oc := c.opCtr(n)
	if oc == nil {
		return consume
	}
	rows := &oc.rows
	inner := consume
	if c.prof.timing {
		nanos := &oc.nanos
		return func(r *vbuf.Regs) error {
			*rows++
			t0 := time.Now()
			err := inner(r)
			*nanos += int64(time.Since(t0))
			return err
		}
	}
	return func(r *vbuf.Regs) error {
		*rows++
		return inner(r)
	}
}

// profScanRun wraps a scan driver with per-invocation (per-morsel)
// accounting: batches, driver wall time, and — untimed — the arithmetic
// rows-out count (scan drivers emit every record of their range, so no
// per-tuple counting is needed).
func (c *Compiler) profScanRun(s *algebra.Scan, run func(r *vbuf.Regs) error, rows int64) func(r *vbuf.Regs) error {
	oc := c.opCtr(s)
	if oc == nil {
		return run
	}
	countRows := !c.prof.timing
	return func(r *vbuf.Regs) error {
		oc.batches++
		t0 := time.Now()
		err := run(r)
		oc.driverNanos += int64(time.Since(t0))
		if err == nil && countRows {
			oc.rows += rows
		}
		return err
	}
}
