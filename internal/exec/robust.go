// Robustness primitives for compiled programs: the per-query memory
// accountant and the panic barrier. Cancellation lives in plugin.Cancel
// (the scan drivers are the only loop drivers, so they are the polling
// points); this file holds what the exec layer itself contributes.
package exec

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// ErrMemBudget is returned (wrapped) when a query's pipeline-breaker state
// — hash-join build sides, aggregation tables, collected rows, ORDER BY
// buffers — exceeds Env.MemBudget. Callers detect it with errors.Is.
var ErrMemBudget = errors.New("query memory budget exceeded")

// memQuantum batches accountant updates: charge sites accumulate byte
// estimates in a closure-local counter and flush to the shared gauge only
// once this many bytes are pending, keeping the per-row cost of accounting
// to one add-and-compare.
const memQuantum = 32 << 10

// memGauge tracks one query's estimated pipeline-breaker memory against a
// budget. It is shared by all pipeline clones of a parallel program, hence
// the atomic counter. A nil gauge (no budget configured) costs nothing:
// charge sites compile the accounting branch out entirely.
type memGauge struct {
	budget int64
	used   atomic.Int64
}

func (g *memGauge) reset() { g.used.Store(0) }

// charge adds n estimated bytes and fails once the running total passes
// the budget. The estimate intentionally errs low-cost rather than exact:
// it models the dominant allocations (column vectors, group states, boxed
// rows), not every header byte.
func (g *memGauge) charge(n int64) error {
	if g.used.Add(n) > g.budget {
		return fmt.Errorf("%w (budget %d bytes)", ErrMemBudget, g.budget)
	}
	return nil
}

// PanicError is a panic from inside a compiled closure, caught at the
// query boundary (Program.RunContext for the serial path, the worker
// barrier in CompileParallel for pipeline clones) and converted into an
// ordinary error. The shared engine, cache manager, and statistics store
// are untouched by the failed run, so subsequent queries proceed normally.
type PanicError struct {
	// Fingerprint is the structural fingerprint of the compiled plan,
	// identifying which specialized program blew up.
	Fingerprint string
	// Val is the value passed to panic().
	Val any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic during query execution (plan %s): %v", e.Fingerprint, e.Val)
}

func newPanicError(fp string, val any) *PanicError {
	return &PanicError{Fingerprint: fp, Val: val, Stack: debug.Stack()}
}
