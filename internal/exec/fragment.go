// Fragment execution and the partial-state wire protocol: the exec-layer
// half of distributed scatter/gather (internal/cluster).
//
// A fragment is one morsel of a plan's driving scan executed to its
// pipeline breaker on a remote worker: scan → filter → partial aggregate,
// exactly one worker clone of CompileParallel, except the "worker" is
// another process. The worker serializes its thread-local partialState as
// an NDJSON frame; the coordinator decodes each frame and folds it into a
// MergeState in morsel order through the same merge methods parallel.go
// uses — so the distributed result is byte-identical to the single-node
// one (float SUM/AVG reassociation aside, as for in-process parallelism).
//
// Fragments always compile tuple-at-a-time (Vectorize forced to VecOff):
// the three tuple-mode partial states — barePartial, reducePartial,
// nestPartial — are the complete wire vocabulary, and both sides compile
// the same plan with the same forcing, so their states always pair up
// (including nestPartial's single-int-key choice, which changes result
// ordering). Floats travel as strconv 'g'/-1 strings so NaN and ±Inf
// survive encoding/json and round-trip bit-exactly.
package exec

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/expr"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// DrivingScan returns the plan's leftmost leaf scan — the pipeline's source
// operator, whose morsel ranges partition the work — or nil when the plan
// has no scan to drive it.
func DrivingScan(n algebra.Node) *algebra.Scan { return drivingScan(n) }

// Partial shapes: which partialState variant a fragment frame carries.
const (
	ShapeBare     = "bare"      // barePartial: plain rows
	ShapeCollect  = "collect"   // reducePartial, bag/list yield: plain rows
	ShapeAgg      = "agg"       // reducePartial: one accumulator set
	ShapeGroup    = "group"     // nestPartial, general keys
	ShapeGroupInt = "group_int" // nestPartial, single-int fast path
)

// WireValue is the typed wire encoding of one types.Value. Kinds: "n" null,
// "b" bool (I 0/1), "i" int, "f" float (F, strconv 'g'/-1 so NaN/±Inf and
// every bit pattern round-trip), "s" string, "r" record (Names + Vals),
// "l" list and "g" bag (Vals).
type WireValue struct {
	K     string      `json:"k"`
	I     int64       `json:"i,omitempty"`
	F     string      `json:"f,omitempty"`
	S     string      `json:"s,omitempty"`
	Names []string    `json:"names,omitempty"`
	Vals  []WireValue `json:"vals,omitempty"`
}

// WireAgg is the wire encoding of one accumulator's partial state, tagged
// by the monoid's internal representation.
type WireAgg struct {
	Kind  string      `json:"k"`               // count|int|float|str|avg|elems
	Seen  bool        `json:"seen,omitempty"`  // scalar min/max/sum: any input folded
	I     int64       `json:"i,omitempty"`     // count n; int scalar value
	F     string      `json:"f,omitempty"`     // float scalar / avg sum
	S     string      `json:"s,omitempty"`     // string scalar value
	N     int64       `json:"n,omitempty"`     // avg count
	Elems []WireValue `json:"elems,omitempty"` // bag/list elements
}

// WireGroup is one group of a grouped fragment frame: its key values (one
// per GROUP BY key; the single-int shape carries exactly one, "n"-kind for
// the NULL-key group) and its accumulator partials.
type WireGroup struct {
	Keys []WireValue `json:"keys"`
	Aggs []WireAgg   `json:"aggs"`
}

// Partial is one fragment's decoded partial-state frame.
type Partial struct {
	Shape       string
	Names       []string
	Fingerprint string
	Rows        []WireValue // bare, collect
	Aggs        []WireAgg   // agg (exactly one set)
	hasAggs     bool
	Groups      []WireGroup // group, group_int
}

// Units is the number of NDJSON unit lines the frame encodes to.
func (p *Partial) Units() int {
	n := len(p.Rows) + len(p.Groups)
	if p.hasAggs {
		n++
	}
	return n
}

// value codec ---------------------------------------------------------------

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func encodeValue(v types.Value) (WireValue, error) {
	switch v.Kind {
	case types.KindNull:
		return WireValue{K: "n"}, nil
	case types.KindBool:
		w := WireValue{K: "b"}
		if v.Bool() {
			w.I = 1
		}
		return w, nil
	case types.KindInt:
		return WireValue{K: "i", I: v.I}, nil
	case types.KindFloat:
		return WireValue{K: "f", F: formatFloat(v.F)}, nil
	case types.KindString:
		return WireValue{K: "s", S: v.S}, nil
	case types.KindRecord:
		w := WireValue{K: "r"}
		if v.Rec != nil {
			w.Names = v.Rec.Names
			vals, err := encodeValues(v.Rec.Values)
			if err != nil {
				return WireValue{}, err
			}
			w.Vals = vals
		}
		return w, nil
	case types.KindList, types.KindBag:
		k := "l"
		if v.Kind == types.KindBag {
			k = "g"
		}
		vals, err := encodeValues(v.Elems)
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{K: k, Vals: vals}, nil
	}
	return WireValue{}, fmt.Errorf("exec: value kind %d is not wire-encodable", v.Kind)
}

func encodeValues(vs []types.Value) ([]WireValue, error) {
	if vs == nil {
		return nil, nil
	}
	out := make([]WireValue, len(vs))
	for i, v := range vs {
		w, err := encodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func decodeValue(w WireValue) (types.Value, error) {
	switch w.K {
	case "n":
		return types.NullValue(), nil
	case "b":
		return types.BoolValue(w.I != 0), nil
	case "i":
		return types.IntValue(w.I), nil
	case "f":
		f, err := strconv.ParseFloat(w.F, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("exec: bad wire float %q: %w", w.F, err)
		}
		return types.FloatValue(f), nil
	case "s":
		return types.StringValue(w.S), nil
	case "r":
		if len(w.Names) != len(w.Vals) {
			return types.Value{}, fmt.Errorf("exec: wire record has %d names, %d values", len(w.Names), len(w.Vals))
		}
		vals, err := decodeValues(w.Vals)
		if err != nil {
			return types.Value{}, err
		}
		if vals == nil {
			vals = []types.Value{}
		}
		return types.RecordValue(w.Names, vals), nil
	case "l", "g":
		vals, err := decodeValues(w.Vals)
		if err != nil {
			return types.Value{}, err
		}
		kind := types.KindList
		if w.K == "g" {
			kind = types.KindBag
		}
		return types.Value{Kind: kind, Elems: vals}, nil
	}
	return types.Value{}, fmt.Errorf("exec: unknown wire value kind %q", w.K)
}

func decodeValues(ws []WireValue) ([]types.Value, error) {
	if ws == nil {
		return nil, nil
	}
	out := make([]types.Value, len(ws))
	for i, w := range ws {
		v, err := decodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// accumulator codec ---------------------------------------------------------

func encodeAcc(acc *accumulator) (WireAgg, error) {
	switch p := acc.partial().(type) {
	case int64:
		return WireAgg{Kind: "count", I: p}, nil
	case scalarPart[int64]:
		return WireAgg{Kind: "int", I: p.v, Seen: p.seen}, nil
	case scalarPart[float64]:
		return WireAgg{Kind: "float", F: formatFloat(p.v), Seen: p.seen}, nil
	case scalarPart[string]:
		return WireAgg{Kind: "str", S: p.v, Seen: p.seen}, nil
	case avgPart:
		return WireAgg{Kind: "avg", F: formatFloat(p.sum), N: p.n}, nil
	case []types.Value:
		elems, err := encodeValues(p)
		if err != nil {
			return WireAgg{}, err
		}
		return WireAgg{Kind: "elems", Elems: elems}, nil
	default:
		return WireAgg{}, fmt.Errorf("exec: aggregate state %T is not wire-encodable", p)
	}
}

func encodeAccs(accs []*accumulator) ([]WireAgg, error) {
	out := make([]WireAgg, len(accs))
	for i, acc := range accs {
		w, err := encodeAcc(acc)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// wireKindOf maps an accumulator's partial representation to its wire tag,
// so decode can reject a frame whose aggregate shapes do not match the
// coordinator's plan before the (type-asserting) absorb runs.
func wireKindOf(p any) string {
	switch p.(type) {
	case int64:
		return "count"
	case scalarPart[int64]:
		return "int"
	case scalarPart[float64]:
		return "float"
	case scalarPart[string]:
		return "str"
	case avgPart:
		return "avg"
	case []types.Value:
		return "elems"
	}
	return ""
}

// decodeAccInto folds one wire aggregate into a freshly reset accumulator.
func decodeAccInto(acc *accumulator, w WireAgg) error {
	if want := wireKindOf(acc.partial()); want != w.Kind {
		return fmt.Errorf("exec: fragment aggregate kind %q does not match plan (want %q)", w.Kind, want)
	}
	switch w.Kind {
	case "count":
		acc.absorb(w.I)
	case "int":
		acc.absorb(scalarPart[int64]{v: w.I, seen: w.Seen})
	case "float":
		f, err := strconv.ParseFloat(w.F, 64)
		if err != nil {
			return fmt.Errorf("exec: bad wire float %q: %w", w.F, err)
		}
		acc.absorb(scalarPart[float64]{v: f, seen: w.Seen})
	case "str":
		acc.absorb(scalarPart[string]{v: w.S, seen: w.Seen})
	case "avg":
		sum, err := strconv.ParseFloat(w.F, 64)
		if err != nil {
			return fmt.Errorf("exec: bad wire float %q: %w", w.F, err)
		}
		acc.absorb(avgPart{sum: sum, n: w.N})
	case "elems":
		elems, err := decodeValues(w.Elems)
		if err != nil {
			return err
		}
		acc.absorb(elems)
	default:
		return fmt.Errorf("exec: unknown wire aggregate kind %q", w.Kind)
	}
	return nil
}

// decodeAccs materializes one group's accumulators from their wire partials
// using the merge state's prototype constructors.
func decodeAccs(freshAccs func() []*accumulator, ws []WireAgg) ([]*accumulator, error) {
	accs := freshAccs()
	if len(ws) != len(accs) {
		return nil, fmt.Errorf("exec: fragment carries %d aggregates, plan has %d", len(ws), len(accs))
	}
	for i, w := range ws {
		if err := decodeAccInto(accs[i], w); err != nil {
			return nil, err
		}
	}
	return accs, nil
}

// state encode --------------------------------------------------------------

// encodePartial serializes a fragment run's final partialState. Only the
// three tuple-mode states exist here: fragments compile with VecOff.
func encodePartial(st partialState, fp string) (*Partial, error) {
	switch s := st.(type) {
	case *barePartial:
		rows, err := encodeValues(s.rows)
		if err != nil {
			return nil, err
		}
		return &Partial{Shape: ShapeBare, Names: s.names, Fingerprint: fp, Rows: rows}, nil
	case *reducePartial:
		if s.collect {
			rows, err := encodeValues(s.rows)
			if err != nil {
				return nil, err
			}
			return &Partial{Shape: ShapeCollect, Names: s.names, Fingerprint: fp, Rows: rows}, nil
		}
		aggs, err := encodeAccs(s.accs)
		if err != nil {
			return nil, err
		}
		return &Partial{Shape: ShapeAgg, Names: s.names, Fingerprint: fp, Aggs: aggs, hasAggs: true}, nil
	case *nestPartial:
		p := &Partial{Names: s.outNames, Fingerprint: fp}
		if s.singleInt {
			p.Shape = ShapeGroupInt
			if s.intNull != nil {
				aggs, err := encodeAccs(s.intNull)
				if err != nil {
					return nil, err
				}
				p.Groups = append(p.Groups, WireGroup{Keys: []WireValue{{K: "n"}}, Aggs: aggs})
			}
			for _, k := range s.intOrder {
				aggs, err := encodeAccs(s.intGroups[k])
				if err != nil {
					return nil, err
				}
				p.Groups = append(p.Groups, WireGroup{Keys: []WireValue{{K: "i", I: k}}, Aggs: aggs})
			}
			return p, nil
		}
		p.Shape = ShapeGroup
		for _, g := range s.order {
			keys, err := encodeValues(g.keyVals)
			if err != nil {
				return nil, err
			}
			aggs, err := encodeAccs(g.accs)
			if err != nil {
				return nil, err
			}
			p.Groups = append(p.Groups, WireGroup{Keys: keys, Aggs: aggs})
		}
		return p, nil
	}
	return nil, fmt.Errorf("exec: fragment state %T is not serializable", st)
}

// shapeOf names the wire shape a compiled partialState will produce.
func shapeOf(st partialState) string {
	switch s := st.(type) {
	case *barePartial:
		return ShapeBare
	case *reducePartial:
		if s.collect {
			return ShapeCollect
		}
		return ShapeAgg
	case *nestPartial:
		if s.singleInt {
			return ShapeGroupInt
		}
		return ShapeGroup
	}
	return ""
}

func stateNames(st partialState) []string {
	switch s := st.(type) {
	case *barePartial:
		return s.names
	case *reducePartial:
		return s.names
	case *nestPartial:
		return s.outNames
	}
	return nil
}

// NDJSON stream -------------------------------------------------------------

// fragmentLine is every line of a fragment-response stream: the head line
// carries Shape (never empty), unit lines carry exactly one of Row / Aggs /
// Group, and the trailer carries Done (with the expected unit count) or an
// in-band Error. A stream that ends without a trailer was truncated.
type fragmentLine struct {
	Shape       string   `json:"shape,omitempty"`
	Names       []string `json:"names,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`

	Row   *WireValue `json:"row,omitempty"`
	Aggs  *[]WireAgg `json:"aggs,omitempty"` // pointer so an empty set still serializes
	Group *WireGroup `json:"group,omitempty"`

	Done  bool   `json:"done,omitempty"`
	Units int    `json:"units,omitempty"`
	Error string `json:"error,omitempty"`
}

// EncodeStream writes the frame as NDJSON: one head line, one line per
// unit (row, group, or the single aggregate set), one trailer line.
func (p *Partial) EncodeStream(w io.Writer) error {
	write := func(line fragmentLine) error {
		data, err := json.Marshal(line)
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	}
	names := p.Names
	if names == nil {
		names = []string{}
	}
	if err := write(fragmentLine{Shape: p.Shape, Names: names, Fingerprint: p.Fingerprint}); err != nil {
		return err
	}
	for i := range p.Rows {
		if err := write(fragmentLine{Row: &p.Rows[i]}); err != nil {
			return err
		}
	}
	if p.hasAggs {
		aggs := p.Aggs
		if aggs == nil {
			aggs = []WireAgg{}
		}
		if err := write(fragmentLine{Aggs: &aggs}); err != nil {
			return err
		}
	}
	for i := range p.Groups {
		if err := write(fragmentLine{Group: &p.Groups[i]}); err != nil {
			return err
		}
	}
	return write(fragmentLine{Done: true, Units: p.Units()})
}

// DecodePartialStream parses one fragment-response frame. Truncated streams
// (no trailer), unit-count mismatches, in-band errors, and malformed lines
// all fail loudly — the coordinator treats every such failure as a failed
// attempt, never as data.
func DecodePartialStream(r io.Reader) (*Partial, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	readLine := func() ([]byte, error) {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 && err == io.EOF {
			err = nil // a final unterminated line is still a line
		}
		return line, err
	}
	head, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("exec: fragment stream has no head line: %w", err)
	}
	var hl fragmentLine
	if err := json.Unmarshal(head, &hl); err != nil {
		return nil, fmt.Errorf("exec: malformed fragment head: %w", err)
	}
	if hl.Error != "" {
		return nil, fmt.Errorf("exec: fragment failed: %s", hl.Error)
	}
	switch hl.Shape {
	case ShapeBare, ShapeCollect, ShapeAgg, ShapeGroup, ShapeGroupInt:
	default:
		return nil, fmt.Errorf("exec: fragment head has unknown shape %q", hl.Shape)
	}
	p := &Partial{Shape: hl.Shape, Names: hl.Names, Fingerprint: hl.Fingerprint}
	units := 0
	for {
		raw, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("exec: fragment stream truncated after %d units: %w", units, err)
		}
		var ln fragmentLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("exec: malformed fragment line: %w", err)
		}
		switch {
		case ln.Error != "":
			return nil, fmt.Errorf("exec: fragment failed mid-stream: %s", ln.Error)
		case ln.Done:
			if ln.Units != units {
				return nil, fmt.Errorf("exec: fragment trailer expects %d units, stream carried %d", ln.Units, units)
			}
			return p, nil
		case ln.Row != nil:
			p.Rows = append(p.Rows, *ln.Row)
		case ln.Group != nil:
			p.Groups = append(p.Groups, *ln.Group)
		case ln.Aggs != nil:
			if p.hasAggs {
				return nil, fmt.Errorf("exec: fragment stream carries more than one aggregate set")
			}
			p.Aggs = *ln.Aggs
			p.hasAggs = true
		default:
			return nil, fmt.Errorf("exec: fragment line carries no unit")
		}
		units++
	}
}

// fragment compilation ------------------------------------------------------

// FragmentProgram is one compiled fragment: a single morsel-restricted
// pipeline clone whose run ends at the pipeline breaker and serializes the
// thread-local partial state instead of materializing rows.
type FragmentProgram struct {
	alloc     vbuf.Alloc
	run       func(r *vbuf.Regs) error
	state     partialState
	cancel    *plugin.Cancel
	mem       *memGauge
	sh        *sharedRun
	caches    *cache.Manager
	totalRows int64

	// Fingerprint is the compiled plan's structural fingerprint; the
	// coordinator cross-checks it so a worker whose catalog or statistics
	// diverged never contributes a mismatched partial.
	Fingerprint string
	// Start and End are the fragment's record-ordinal morsel range.
	Start, End int64
}

// CompileFragment compiles one morsel of plan's driving scan, [start, end)
// in record ordinals, into a fragment program. Compilation forces VecOff —
// see the package comment — and ignores Env.Sort (ORDER BY / LIMIT belong
// to the coordinator, after the gather merge).
func CompileFragment(plan algebra.Node, env *Env, start, end int64) (*FragmentProgram, error) {
	drive := drivingScan(plan)
	if drive == nil {
		return nil, fmt.Errorf("exec: plan has no driving scan to fragment")
	}
	ds, in, err := env.Catalog.Dataset(drive.Dataset)
	if err != nil {
		return nil, err
	}
	rows := in.Cardinality(ds)
	if start < 0 || end < start || end > rows {
		return nil, fmt.Errorf("exec: fragment range [%d,%d) outside dataset %s (%d rows)",
			start, end, drive.Dataset, rows)
	}
	envCopy := *env
	envCopy.Vectorize = VecOff
	envCopy.Sort = nil
	envCopy.Profile = nil
	morsel := plugin.Morsel{Start: start, End: end}
	sh := newSharedRun(1)
	cancel := &plugin.Cancel{}
	var gauge *memGauge
	if env.MemBudget > 0 {
		gauge = &memGauge{budget: env.MemBudget}
	}
	c := &Compiler{
		env:       &envCopy,
		bindings:  map[string]*binding{},
		envTypes:  expr.Env{},
		driveScan: drive,
		morsel:    &morsel,
		shared:    sh,
		workerID:  0,
		cancel:    cancel,
		mem:       gauge,
	}
	algebra.Walk(plan, func(n algebra.Node) bool {
		for name, t := range n.Bindings() {
			if _, exists := c.envTypes[name]; !exists {
				c.envTypes[name] = t
			}
		}
		return true
	})
	c.analyze(plan)

	var run func(r *vbuf.Regs) error
	var st partialState
	switch root := plan.(type) {
	case *algebra.Reduce:
		run, st, err = c.compileReducePartial(root)
	case *algebra.Nest:
		run, st, err = c.compileNestPartial(root)
	default:
		run, st, err = c.compileBarePartial(plan)
	}
	if err != nil {
		return nil, err
	}
	return &FragmentProgram{
		alloc: c.alloc, run: run, state: st, cancel: cancel, mem: gauge,
		sh: sh, caches: envCopy.Caches, totalRows: rows,
		Fingerprint: plan.Fingerprint(), Start: start, End: end,
	}, nil
}

// RunContext executes the fragment under ctx — the same cancellation,
// memory-budget, and panic-barrier contract as Program.RunContext — and
// returns its serialized partial state. A fragment whose morsel happens to
// cover the whole dataset still registers complete cache blocks; partial
// morsels never do (finishCaches requires the fragments to tile the
// dataset, and a single partial fragment cannot).
func (f *FragmentProgram) RunContext(ctx context.Context) (p *Partial, err error) {
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if f.mem != nil {
		f.mem.reset()
	}
	gen := f.cancel.Arm()
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			f.cancel.SignalAt(gen, context.Cause(ctx))
		})
		defer stop()
	}
	defer func() {
		if rec := recover(); rec != nil {
			p, err = nil, newPanicError(f.Fingerprint, rec)
		}
	}()
	f.sh.reset()
	f.state.reset()
	regs := vbuf.NewRegs(&f.alloc)
	if err := f.run(regs); err != nil {
		return nil, err
	}
	if f.caches != nil {
		f.sh.finishCaches(f.caches, f.totalRows)
	}
	return encodePartial(f.state, f.Fingerprint)
}

// merge state ---------------------------------------------------------------

// MergeState is the coordinator-side gather half: the stable merge API over
// the partial states parallel.go merges in-process. Compile one per
// distributed query, feed it every fragment's Partial in morsel order, then
// materialize. MergeState is not safe for concurrent Merge calls.
type MergeState struct {
	st      partialState
	shape   string
	names   []string
	fp      string
	numKeys int // general-group shape: GROUP BY arity, checked per wire group
	merged  int
}

// CompileMergeState compiles plan just far enough to own a mergeable root
// state of the exact concrete type fragments of this plan serialize —
// the same VecOff forcing on both sides keeps the shapes (including the
// single-int group fast path, which sorts keys at materialization) in
// lock-step. The compiled scan closures are discarded; only the state and
// its accumulator constructors are kept.
func CompileMergeState(plan algebra.Node, env *Env) (*MergeState, error) {
	envCopy := *env
	envCopy.Vectorize = VecOff
	envCopy.Sort = nil
	envCopy.Profile = nil
	envCopy.Metrics = nil
	c := &Compiler{
		env:      &envCopy,
		bindings: map[string]*binding{},
		envTypes: expr.Env{},
		cancel:   &plugin.Cancel{},
	}
	if envCopy.MemBudget > 0 {
		c.mem = &memGauge{budget: envCopy.MemBudget}
	}
	algebra.Walk(plan, func(n algebra.Node) bool {
		for name, t := range n.Bindings() {
			if _, exists := c.envTypes[name]; !exists {
				c.envTypes[name] = t
			}
		}
		return true
	})
	c.analyze(plan)

	var st partialState
	var err error
	switch root := plan.(type) {
	case *algebra.Reduce:
		_, st, err = c.compileReducePartial(root)
	case *algebra.Nest:
		_, st, err = c.compileNestPartial(root)
	default:
		_, st, err = c.compileBarePartial(plan)
	}
	if err != nil {
		return nil, err
	}
	st.reset()
	m := &MergeState{st: st, shape: shapeOf(st), names: stateNames(st), fp: plan.Fingerprint()}
	if nest, ok := plan.(*algebra.Nest); ok {
		m.numKeys = len(nest.GroupBy)
	}
	return m, nil
}

// Shape returns the wire shape fragments of this plan must carry.
func (m *MergeState) Shape() string { return m.shape }

// Fingerprint returns the plan fingerprint fragments must echo.
func (m *MergeState) Fingerprint() string { return m.fp }

// Merged returns how many fragment frames have been folded in.
func (m *MergeState) Merged() int { return m.merged }

// validate cross-checks one frame against the compiled plan before any of
// it is decoded into accumulators.
func (m *MergeState) validate(p *Partial) error {
	if p.Fingerprint != "" && p.Fingerprint != m.fp {
		return fmt.Errorf("exec: fragment plan fingerprint %s does not match coordinator plan %s", p.Fingerprint, m.fp)
	}
	if p.Shape != m.shape {
		return fmt.Errorf("exec: fragment shape %q does not match plan shape %q", p.Shape, m.shape)
	}
	if len(p.Names) != len(m.names) {
		return fmt.Errorf("exec: fragment columns %v do not match plan columns %v", p.Names, m.names)
	}
	for i, n := range p.Names {
		if n != m.names[i] {
			return fmt.Errorf("exec: fragment columns %v do not match plan columns %v", p.Names, m.names)
		}
	}
	return nil
}

// Merge decodes one fragment frame and folds it into the state through the
// same partialState.merge the in-process parallel path uses. Frames MUST
// arrive in morsel order for bag/collect shapes and group first-encounter
// order (the caller gathers concurrently but merges sequentially).
func (m *MergeState) Merge(p *Partial) error {
	if err := m.validate(p); err != nil {
		return err
	}
	other, err := m.decode(p)
	if err != nil {
		return err
	}
	if err := m.st.merge(other); err != nil {
		return err
	}
	m.merged++
	return nil
}

// decode materializes a frame as a partialState of the same concrete type
// as the compiled root state.
func (m *MergeState) decode(p *Partial) (partialState, error) {
	switch st := m.st.(type) {
	case *barePartial:
		rows, err := decodeValues(p.Rows)
		if err != nil {
			return nil, err
		}
		return &barePartial{names: st.names, rows: rows}, nil
	case *reducePartial:
		if st.collect {
			rows, err := decodeValues(p.Rows)
			if err != nil {
				return nil, err
			}
			return &reducePartial{collect: true, names: st.names, rows: rows}, nil
		}
		if !p.hasAggs {
			return nil, fmt.Errorf("exec: aggregate fragment carries no aggregate set")
		}
		freshAccs := func() []*accumulator {
			accs := make([]*accumulator, len(st.accs))
			for i, a := range st.accs {
				accs[i] = a.fresh()
			}
			return accs
		}
		accs, err := decodeAccs(freshAccs, p.Aggs)
		if err != nil {
			return nil, err
		}
		return &reducePartial{names: st.names, accs: accs}, nil
	case *nestPartial:
		return m.decodeNest(st, p)
	}
	return nil, fmt.Errorf("exec: merge state %T cannot decode fragments", m.st)
}

func (m *MergeState) decodeNest(st *nestPartial, p *Partial) (partialState, error) {
	other := &nestPartial{
		outNames:  st.outNames,
		freshAccs: st.freshAccs,
		singleInt: st.singleInt,
	}
	other.reset()
	if st.singleInt {
		for _, g := range p.Groups {
			if len(g.Keys) != 1 {
				return nil, fmt.Errorf("exec: single-int fragment group carries %d keys", len(g.Keys))
			}
			accs, err := decodeAccs(st.freshAccs, g.Aggs)
			if err != nil {
				return nil, err
			}
			switch g.Keys[0].K {
			case "n":
				if other.intNull != nil {
					return nil, fmt.Errorf("exec: fragment carries duplicate NULL group")
				}
				other.intNull = accs
			case "i":
				k := g.Keys[0].I
				if _, dup := other.intGroups[k]; dup {
					return nil, fmt.Errorf("exec: fragment carries duplicate group key %d", k)
				}
				other.intGroups[k] = accs
				other.intOrder = append(other.intOrder, k)
			default:
				return nil, fmt.Errorf("exec: single-int fragment group key has kind %q", g.Keys[0].K)
			}
		}
		return other, nil
	}
	for _, wg := range p.Groups {
		if len(wg.Keys) != m.numKeys {
			return nil, fmt.Errorf("exec: fragment group carries %d keys, plan groups by %d", len(wg.Keys), m.numKeys)
		}
		keyVals, err := decodeValues(wg.Keys)
		if err != nil {
			return nil, err
		}
		accs, err := decodeAccs(st.freshAccs, wg.Aggs)
		if err != nil {
			return nil, err
		}
		// Recompute the group hash exactly as the fold path does so merge's
		// hash-bucketed key lookup finds cross-fragment matches.
		h := uint64(14695981039346656037)
		for _, v := range keyVals {
			h = hashMix(h, v.Hash())
		}
		for _, cand := range other.groups[h] {
			if len(cand.keyVals) == len(keyVals) && sameKeys(cand.keyVals, keyVals) {
				return nil, fmt.Errorf("exec: fragment carries duplicate group")
			}
		}
		g := &group{hash: h, keyVals: keyVals, accs: accs}
		other.groups[h] = append(other.groups[h], g)
		other.order = append(other.order, g)
	}
	return other, nil
}

// Result materializes the merged rows — identical to what the single-node
// program would have produced over the union of the fragments' morsels.
func (m *MergeState) Result() (*Result, error) { return m.st.result() }
