package exec

import (
	"fmt"
	"sort"

	"proteus/internal/stats"

	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// The join implementation follows the paper (§5.1): a radix hash join
// adapted from Balkesen et al. — the build side is fully materialized into
// typed columns, its rows are reordered by the radix of their key hash so
// each partition is contiguous in memory, and a bucket-chained hash table
// is laid over the partitions. The probe side streams through the compiled
// pipeline (keeping pipelining, minimizing intermediates). Materialized
// build sides are registered with the Caching Manager so a later query
// joining on the same key re-uses the hash table (§6 "Cache Matching",
// partial matching).

// matCol materializes one register across build-side rows.
type matCol struct {
	key  string // "binding\x00path" for cache-side matching
	slot vbuf.Slot

	ints   []int64
	floats []float64
	bools  []bool
	strs   []string
	vals   []types.Value
	nulls  []bool
}

// append materializes the current tuple's value and returns its estimated
// in-memory cost in bytes — the unit the memory accountant charges.
func (mc *matCol) append(r *vbuf.Regs) int64 {
	mc.nulls = append(mc.nulls, r.Null[mc.slot.Null])
	switch mc.slot.Class {
	case vbuf.ClassInt:
		mc.ints = append(mc.ints, r.I[mc.slot.Idx])
		return 9
	case vbuf.ClassFloat:
		mc.floats = append(mc.floats, r.F[mc.slot.Idx])
		return 9
	case vbuf.ClassBool:
		mc.bools = append(mc.bools, r.B[mc.slot.Idx])
		return 2
	case vbuf.ClassString:
		s := r.S[mc.slot.Idx]
		mc.strs = append(mc.strs, s)
		return int64(len(s)) + 17
	default:
		mc.vals = append(mc.vals, r.V[mc.slot.Idx])
		return 49
	}
}

func (mc *matCol) restore(r *vbuf.Regs, row int32) {
	r.Null[mc.slot.Null] = mc.nulls[row]
	switch mc.slot.Class {
	case vbuf.ClassInt:
		r.I[mc.slot.Idx] = mc.ints[row]
	case vbuf.ClassFloat:
		r.F[mc.slot.Idx] = mc.floats[row]
	case vbuf.ClassBool:
		r.B[mc.slot.Idx] = mc.bools[row]
	case vbuf.ClassString:
		r.S[mc.slot.Idx] = mc.strs[row]
	default:
		r.V[mc.slot.Idx] = mc.vals[row]
	}
}

func (mc *matCol) reorder(perm []int32) {
	switch mc.slot.Class {
	case vbuf.ClassInt:
		mc.ints = reorderSlice(mc.ints, perm)
	case vbuf.ClassFloat:
		mc.floats = reorderSlice(mc.floats, perm)
	case vbuf.ClassBool:
		mc.bools = reorderSlice(mc.bools, perm)
	case vbuf.ClassString:
		mc.strs = reorderSlice(mc.strs, perm)
	default:
		mc.vals = reorderSlice(mc.vals, perm)
	}
	mc.nulls = reorderSlice(mc.nulls, perm)
}

func (mc *matCol) bytes() int64 {
	n := int64(len(mc.nulls))
	n += int64(len(mc.ints))*8 + int64(len(mc.floats))*8 + int64(len(mc.bools))
	for _, s := range mc.strs {
		n += int64(len(s)) + 16
	}
	n += int64(len(mc.vals)) * 48
	return n
}

func reorderSlice[T any](s []T, perm []int32) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	for i, p := range perm {
		out[i] = s[p]
	}
	return out
}

// joinTable is a materialized, radix-partitioned, bucket-chained hash table
// over the build side.
type joinTable struct {
	rows    int64
	hashes  []uint64
	intKeys [][]int64       // fast path: all-integer keys
	valKeys [][]types.Value // general path
	cols    []*matCol

	heads []int32 // bucket → first row (-1 empty)
	next  []int32 // row → next row in bucket
	mask  uint64
}

func (jt *joinTable) bytes() int64 {
	n := int64(len(jt.hashes))*8 + int64(len(jt.heads))*4 + int64(len(jt.next))*4
	for _, k := range jt.intKeys {
		n += int64(len(k)) * 8
	}
	for _, k := range jt.valKeys {
		n += int64(len(k)) * 48
	}
	for _, col := range jt.cols {
		n += col.bytes()
	}
	return n
}

// build lays the hash table over the materialized rows, first reordering
// them so each radix partition is contiguous (the locality the radix join
// buys: fewer TLB and LLC misses during probes).
func (jt *joinTable) build(radixBits int) {
	n := int64(len(jt.hashes))
	jt.rows = n
	if radixBits > 0 && n > 0 {
		nPart := 1 << radixBits
		shift := 64 - radixBits
		counts := make([]int32, nPart+1)
		for _, h := range jt.hashes {
			counts[(h>>shift)+1]++
		}
		for i := 1; i <= nPart; i++ {
			counts[i] += counts[i-1]
		}
		perm := make([]int32, n) // new position → old row
		cursor := make([]int32, nPart)
		copy(cursor, counts[:nPart])
		for old, h := range jt.hashes {
			p := h >> shift
			perm[cursor[p]] = int32(old)
			cursor[p]++
		}
		jt.hashes = reorderSlice(jt.hashes, perm)
		for i := range jt.intKeys {
			jt.intKeys[i] = reorderSlice(jt.intKeys[i], perm)
		}
		for i := range jt.valKeys {
			jt.valKeys[i] = reorderSlice(jt.valKeys[i], perm)
		}
		for _, col := range jt.cols {
			col.reorder(perm)
		}
	}
	// Bucket-chained table sized to the next power of two ≥ 2n.
	size := uint64(16)
	for size < uint64(n)*2 {
		size <<= 1
	}
	jt.mask = size - 1
	jt.heads = make([]int32, size)
	for i := range jt.heads {
		jt.heads[i] = -1
	}
	jt.next = make([]int32, n)
	for i := int64(0); i < n; i++ {
		b := jt.hashes[i] & jt.mask
		jt.next[i] = jt.heads[b]
		jt.heads[b] = int32(i)
	}
}

// hashMix combines a value into a running hash (FNV-ish with avalanche).
func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	h ^= h >> 33
	return h
}

func hashInt(v int64) uint64 {
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

const defaultRadixBits = 7

// RadixBitsOverride, when ≥ 0, forces the radix partition bit count of
// every hash-join build (0 disables partitioning). It exists for the
// radix-vs-plain ablation benchmark; -1 keeps the size-based default.
var RadixBitsOverride = -1

// compileJoin compiles X ⋈p Y: the right child is materialized and hashed,
// the left child streams and probes.
func (c *Compiler) compileJoin(j *algebra.Join, consume Kont) (func(r *vbuf.Regs) error, error) {
	keysL, keysR, residual := j.EquiKeys()
	if len(keysL) == 0 {
		return c.compileNestedLoopJoin(j, consume)
	}

	// Batch-at-a-time sides: when an input is a vectorizable Scan→Select*
	// chain and every key compiles to a column kernel, that side builds or
	// probes batch-at-a-time (vjoin.go). The checks have no side effects, so
	// either side can independently stay tuple-at-a-time.
	chBuild := c.vecJoinSide(j.Right, keysR)
	chProbe := c.vecJoinSide(j.Left, keysL)

	// Compile the right (build) subtree first — post-order DFS — so its
	// bindings and slots exist before key/payload compilation. The consume
	// is installed later (it needs the key/payload evaluators), through an
	// indirection so the subtree is compiled exactly once.
	var buildConsume Kont = func(r *vbuf.Regs) error { return nil }
	var buildBatch func(b *vbuf.Batch, r *vbuf.Regs) error
	var buildRun func(r *vbuf.Regs) error
	if chBuild != nil {
		seg, err := c.compileVecSeg(chBuild)
		if err != nil {
			return nil, err
		}
		buildRun = c.compileVecDriver(seg, func(b *vbuf.Batch, r *vbuf.Regs) error { return buildBatch(b, r) })
	} else {
		run, err := c.compileNode(j.Right, func(r *vbuf.Regs) error { return buildConsume(r) })
		if err != nil {
			return nil, err
		}
		buildRun = run
	}
	rightBindings := j.Right.Bindings()

	// Key evaluators on the build side.
	allInt := true
	for _, k := range keysR {
		t, err := c.typeOf(k)
		if err != nil {
			return nil, err
		}
		if t.Kind() != types.KindInt {
			allInt = false
		}
	}
	for _, k := range keysL {
		t, err := c.typeOf(k)
		if err != nil {
			return nil, err
		}
		if t.Kind() != types.KindInt {
			allInt = false
		}
	}
	if len(keysL) > 4 {
		allInt = false // the fast path keeps probe keys in a fixed array
	}

	// Payload: every slot of every right-side binding (plus OIDs), restored
	// into the same registers on probe matches.
	var cols []*matCol
	var colKeys []string
	names := make([]string, 0, len(rightBindings))
	for name := range rightBindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := c.bindings[name]
		if !ok {
			continue
		}
		paths := make([]string, 0, len(b.slots))
		for p := range b.slots {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			cols = append(cols, &matCol{key: name + "\x00" + p, slot: b.slots[p]})
			colKeys = append(colKeys, name+"\x00"+p)
		}
		if b.hasOID {
			cols = append(cols, &matCol{key: name + "\x00#oid", slot: b.oidSlot})
			colKeys = append(colKeys, name+"\x00#oid")
		}
	}

	// Partial cache matching: reuse a previously materialized build side
	// with the same subtree + keys + payload fingerprint.
	fp := "buildside[" + j.Right.Fingerprint() + "|keys:"
	for _, k := range keysR {
		fp += k.String() + ","
	}
	fp += "|cols:"
	for _, ck := range colKeys {
		fp += ck + ";"
	}
	fp += "]"

	var jt *joinTable
	reused := false
	if side, ok := c.env.Caches.LookupJoinSide(fp); ok {
		if cached, ok := side.Payload.(*joinTable); ok {
			// Rebind the cached columns onto this query's slots by name.
			if remapped, ok := remapTable(cached, cols); ok {
				jt = remapped
				reused = true
				c.note("join: reusing materialized build side %s", j.Right.Fingerprint())
			}
		}
	}

	if jt == nil {
		jt = &joinTable{cols: cols}
		if allInt {
			jt.intKeys = make([][]int64, len(keysR))
		} else {
			jt.valKeys = make([][]types.Value, len(keysR))
		}
	}

	// Install the materializing consume into the already-compiled build
	// pipeline. With a memory budget, each materialized row's estimated
	// bytes accumulate locally and flush to the shared gauge per quantum.
	gauge := c.mem
	keyRowBytes := int64(16 + len(keysR)*8)
	if !allInt {
		keyRowBytes = int64(16 + len(keysR)*48)
	}
	var pending int64
	// The parallel once-build path swaps jt for a fresh table per run, so
	// every materialize/probe closure reads it through this getter (or, for
	// the tuple closures below, captures the variable directly).
	jtOf := func() *joinTable { return jt }
	if chBuild != nil {
		if allInt {
			kerns := make([]vecInt, len(keysR))
			for i := range keysR {
				kv, err := c.compileVecInt(keysR[i])
				if err != nil {
					return nil, err
				}
				kerns[i] = kv
			}
			buildBatch = vecBuildIntTerminate(jtOf, kerns, keyRowBytes, gauge, &pending)
		} else {
			kcs, err := c.compileVecKeyCols(keysR)
			if err != nil {
				return nil, err
			}
			buildBatch = vecBuildValTerminate(jtOf, kcs, keyRowBytes, gauge, &pending)
		}
		c.note("join: vectorized build over %s", chBuild.scan.Dataset)
	} else {
		buildKeyInt := make([]evalInt, 0, len(keysR))
		buildKeyVal := make([]evalVal, 0, len(keysR))
		for i := range keysR {
			if allInt {
				bk, err := c.compileInt(keysR[i])
				if err != nil {
					return nil, err
				}
				buildKeyInt = append(buildKeyInt, bk)
			} else {
				bk, err := c.compileVal(keysR[i])
				if err != nil {
					return nil, err
				}
				buildKeyVal = append(buildKeyVal, bk)
			}
		}
		// Validate every key before appending any: a null in a later key must
		// not leave earlier key columns misaligned with the hash array.
		buildIK := make([]int64, len(keysR))
		buildVK := make([]types.Value, len(keysR))
		buildConsume = func(r *vbuf.Regs) error {
			h := hashSeed
			if allInt {
				for i, bk := range buildKeyInt {
					v, ok := bk(r)
					if !ok {
						return nil // null keys never match
					}
					buildIK[i] = v
					h = hashMix(h, hashInt(v))
				}
				for i, v := range buildIK {
					jt.intKeys[i] = append(jt.intKeys[i], v)
				}
			} else {
				for i, bk := range buildKeyVal {
					v, ok := bk(r)
					if !ok {
						return nil
					}
					buildVK[i] = v
					h = hashMix(h, v.Hash())
				}
				for i, v := range buildVK {
					jt.valKeys[i] = append(jt.valKeys[i], v)
				}
			}
			jt.hashes = append(jt.hashes, h)
			if gauge == nil {
				for _, col := range jt.cols {
					col.append(r)
				}
				return nil
			}
			nb := keyRowBytes
			for _, col := range jt.cols {
				nb += col.append(r)
			}
			if pending += nb; pending >= memQuantum {
				err := gauge.charge(pending)
				pending = 0
				if err != nil {
					return err
				}
			}
			return nil
		}
	}

	// Probe-side pipeline: compile the left subtree first (its bindings
	// must exist before probe keys and the residual predicate compile).
	var probeKont Kont
	var probeBatch func(b *vbuf.Batch, r *vbuf.Regs) error
	var probeRun func(r *vbuf.Regs) error
	var segProbe *vecSeg
	if chProbe != nil {
		seg, err := c.compileVecSeg(chProbe)
		if err != nil {
			return nil, err
		}
		segProbe = seg
		probeRun = c.compileVecDriver(seg, func(b *vbuf.Batch, r *vbuf.Regs) error { return probeBatch(b, r) })
	} else {
		run, err := c.compileNode(j.Left, func(r *vbuf.Regs) error { return probeKont(r) })
		if err != nil {
			return nil, err
		}
		probeRun = run
	}

	var residualPred evalBool
	if len(residual) > 0 {
		rp, err := c.compileBool(expr.Conjoin(residual))
		if err != nil {
			return nil, err
		}
		residualPred = rp
	}

	outer := j.Outer
	rightSlots := make([]vbuf.Slot, len(cols))
	for i, col := range cols {
		rightSlots[i] = col.slot
	}
	if chProbe != nil {
		spec := vecProbeSpec{
			jtOf:       jtOf,
			scatter:    c.vecRowScatter(segProbe.si),
			rightSlots: rightSlots,
			residual:   residualPred,
			outer:      outer,
			consume:    consume,
		}
		if allInt {
			kerns := make([]vecInt, len(keysL))
			for i := range keysL {
				kv, err := c.compileVecInt(keysL[i])
				if err != nil {
					return nil, err
				}
				kerns[i] = kv
			}
			probeBatch = vecProbeIntTerminate(spec, kerns)
		} else {
			kcs, err := c.compileVecKeyCols(keysL)
			if err != nil {
				return nil, err
			}
			probeBatch = vecProbeValTerminate(spec, kcs)
		}
		c.note("join: vectorized probe over %s (%d keys)", chProbe.scan.Dataset, len(keysL))
	} else {
		probeKeyInt := make([]evalInt, 0, len(keysL))
		probeKeyVal := make([]evalVal, 0, len(keysL))
		for i := range keysL {
			if allInt {
				pk, err := c.compileInt(keysL[i])
				if err != nil {
					return nil, err
				}
				probeKeyInt = append(probeKeyInt, pk)
			} else {
				pk, err := c.compileVal(keysL[i])
				if err != nil {
					return nil, err
				}
				probeKeyVal = append(probeKeyVal, pk)
			}
		}
		ik := make([]int64, len(keysL))
		vk := make([]types.Value, len(keysL))
		probeKont = func(r *vbuf.Regs) error {
			h := hashSeed
			nk := len(probeKeyInt) + len(probeKeyVal)
			valid := true
			if allInt {
				for i, pk := range probeKeyInt {
					v, ok := pk(r)
					if !ok {
						valid = false
						break
					}
					ik[i] = v
					h = hashMix(h, hashInt(v))
				}
			} else {
				for i, pk := range probeKeyVal {
					v, ok := pk(r)
					if !ok {
						valid = false
						break
					}
					vk[i] = v
					h = hashMix(h, v.Hash())
				}
			}
			matched := false
			if valid {
				for row := jt.heads[h&jt.mask]; row >= 0; row = jt.next[row] {
					if jt.hashes[row] != h {
						continue
					}
					equal := true
					if allInt {
						for i := 0; i < nk; i++ {
							if jt.intKeys[i][row] != ik[i] {
								equal = false
								break
							}
						}
					} else {
						for i := 0; i < nk; i++ {
							if types.Compare(jt.valKeys[i][row], vk[i]) != 0 {
								equal = false
								break
							}
						}
					}
					if !equal {
						continue
					}
					for _, col := range jt.cols {
						col.restore(r, row)
					}
					if residualPred != nil {
						if v, ok := residualPred(r); !ok || !v {
							continue
						}
					}
					matched = true
					if err := consume(r); err != nil {
						return err
					}
				}
			}
			if outer && !matched {
				for _, s := range rightSlots {
					r.Null[s.Null] = true
				}
				return consume(r)
			}
			return nil
		}
	}

	// Blocking-operator statistics (§5.2): once the build side is
	// materialized, profile its numeric columns into the metadata store.
	datasetOf := map[string]string{}
	for name := range rightBindings {
		if b, ok := c.bindings[name]; ok && b.ds != nil {
			datasetOf[name] = b.ds.Name
		}
	}
	statsStore := c.env.Stats

	caches := c.env.Caches
	needBuild := !reused
	buildTable := func(r *vbuf.Regs) error {
		if err := buildRun(r); err != nil {
			return err
		}
		radix := 0
		if len(jt.hashes) >= 1<<12 {
			radix = defaultRadixBits
		}
		if RadixBitsOverride >= 0 {
			radix = RadixBitsOverride
		}
		jt.build(radix)
		if gauge != nil {
			// Flush the materialize residue and charge the hash table itself.
			n := pending + int64(len(jt.heads)+len(jt.next))*4
			pending = 0
			if err := gauge.charge(n); err != nil {
				return err
			}
		}
		if statsStore != nil {
			profileMaterializedSide(statsStore, jt, datasetOf)
		}
		caches.RegisterJoinSide(&cache.JoinSide{Fingerprint: fp, Payload: jt, Bytes: jt.bytes()})
		return nil
	}

	if c.shared != nil && !reused {
		// Morsel-parallel run: the build side is built exactly once — the
		// first worker to arrive builds inside the Once (also registering the
		// cached side and the profile observations once) — and shared
		// read-only with the other workers, which rebind the materialized
		// columns onto their own clone's slots by column key.
		sh := c.shared
		run := func(r *vbuf.Regs) error {
			sj := sh.joinFor(fp)
			sj.once.Do(func() {
				// Build into a fresh table so repeated runs of the parallel
				// program never append onto a previous run's arrays.
				fresh := &joinTable{cols: make([]*matCol, len(cols))}
				for i, col := range cols {
					fresh.cols[i] = &matCol{key: col.key, slot: col.slot}
				}
				if allInt {
					fresh.intKeys = make([][]int64, len(keysR))
				} else {
					fresh.valKeys = make([][]types.Value, len(keysR))
				}
				jt = fresh
				if err := buildTable(r); err != nil {
					sj.err = err
					return
				}
				sj.jt = jt
			})
			if sj.err != nil {
				return sj.err
			}
			if sj.jt != jt {
				remapped, ok := remapTable(sj.jt, cols)
				if !ok {
					return fmt.Errorf("exec: parallel join could not rebind the shared build side")
				}
				jt = remapped
			}
			return probeRun(r)
		}
		return run, nil
	}

	run := func(r *vbuf.Regs) error {
		if needBuild {
			if err := buildTable(r); err != nil {
				return err
			}
			// The table is now materialized; a repeated Run of this program
			// must probe it as-is rather than append a second copy of every
			// build row.
			needBuild = false
		}
		return probeRun(r)
	}
	return run, nil
}

// profileMaterializedSide folds a materialized build side's numeric columns
// into the statistics store — the paper's "profile the materialized values
// all at once" mechanism, piggybacking on the blocking operator.
func profileMaterializedSide(store *stats.Store, jt *joinTable, datasetOf map[string]string) {
	for _, col := range jt.cols {
		sep := -1
		for i := 0; i < len(col.key); i++ {
			if col.key[i] == 0 {
				sep = i
				break
			}
		}
		if sep < 0 {
			continue
		}
		binding, path := col.key[:sep], col.key[sep+1:]
		ds, ok := datasetOf[binding]
		if !ok || path == "" || path == "#oid" {
			continue
		}
		tbl := store.Table(ds)
		switch col.slot.Class {
		case vbuf.ClassInt:
			for i, v := range col.ints {
				if !col.nulls[i] {
					tbl.Observe(path, float64(v))
				}
			}
		case vbuf.ClassFloat:
			for i, v := range col.floats {
				if !col.nulls[i] {
					tbl.Observe(path, v)
				}
			}
		}
	}
}

// remapTable rebinds a cached joinTable's columns onto freshly allocated
// slots by column key. It fails (ok=false) if the cached payload does not
// cover the columns this query needs.
func remapTable(cached *joinTable, cols []*matCol) (*joinTable, bool) {
	byKey := map[string]*matCol{}
	for _, col := range cached.cols {
		byKey[col.key] = col
	}
	out := &joinTable{
		rows:    cached.rows,
		hashes:  cached.hashes,
		intKeys: cached.intKeys,
		valKeys: cached.valKeys,
		heads:   cached.heads,
		next:    cached.next,
		mask:    cached.mask,
	}
	for _, want := range cols {
		got, ok := byKey[want.key]
		if !ok || got.slot.Class != want.slot.Class {
			return nil, false
		}
		// Share the cached arrays; only the destination slot differs.
		nc := *got
		nc.slot = want.slot
		out.cols = append(out.cols, &nc)
	}
	return out, true
}

// compileNestedLoopJoin handles joins without equi-keys (rare): the right
// side is materialized once and re-scanned per left tuple.
func (c *Compiler) compileNestedLoopJoin(j *algebra.Join, consume Kont) (func(r *vbuf.Regs) error, error) {
	// Establish right bindings.
	rightBindings := j.Right.Bindings()
	var cols []*matCol
	gauge := c.mem
	var pending int64
	buildProbe := func(r *vbuf.Regs) error {
		var nb int64
		for _, col := range cols {
			nb += col.append(r)
		}
		if gauge != nil {
			if pending += nb; pending >= memQuantum {
				err := gauge.charge(pending)
				pending = 0
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	buildRun, err := c.compileNode(j.Right, buildProbe)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(rightBindings))
	for name := range rightBindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := c.bindings[name]
		if !ok {
			continue
		}
		paths := make([]string, 0, len(b.slots))
		for p := range b.slots {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			cols = append(cols, &matCol{key: name + "\x00" + p, slot: b.slots[p]})
		}
		if b.hasOID {
			cols = append(cols, &matCol{key: name + "\x00#oid", slot: b.oidSlot})
		}
	}
	var probeKont Kont
	probeRun, err := c.compileNode(j.Left, func(r *vbuf.Regs) error { return probeKont(r) })
	if err != nil {
		return nil, err
	}
	pred, err := c.compileBool(j.Pred)
	if err != nil {
		return nil, err
	}
	outer := j.Outer
	built := false
	probe := func(r *vbuf.Regs) error {
		n := int32(0)
		if len(cols) > 0 {
			n = int32(len(cols[0].nulls))
		}
		matched := false
		for row := int32(0); row < n; row++ {
			for _, col := range cols {
				col.restore(r, row)
			}
			if v, ok := pred(r); ok && v {
				matched = true
				if err := consume(r); err != nil {
					return err
				}
			}
		}
		if outer && !matched {
			for _, col := range cols {
				r.Null[col.slot.Null] = true
			}
			return consume(r)
		}
		return nil
	}
	probeKont = probe
	run := func(r *vbuf.Regs) error {
		if !built {
			if err := buildRun(r); err != nil {
				return err
			}
			built = true
		}
		return probeRun(r)
	}
	return run, nil
}
