package exec

import (
	"fmt"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/expr"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/plugin/cachepg"
	"proteus/internal/stats"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Catalog resolves dataset names to their registered plug-in and dataset.
type Catalog interface {
	Dataset(name string) (*plugin.Dataset, plugin.Input, error)
}

// VecMode selects the execution style for batch-capable pipeline segments
// (a driving scan plus the consecutive filters above it).
type VecMode int

const (
	// VecAuto vectorizes capable segments over datasets large enough to
	// amortize the batch machinery (the default).
	VecAuto VecMode = iota
	// VecOn vectorizes every capable segment regardless of dataset size.
	VecOn
	// VecOff compiles the pure tuple-at-a-time engine.
	VecOff
)

// Env carries the services a compilation needs.
type Env struct {
	Catalog Catalog
	Caches  *cache.Manager
	// Stats, when set, receives min/max observations profiled from
	// materialized join build sides (§5.2's blocking-operator statistics
	// gathering).
	Stats *stats.Store
	// Profile, when set, makes compilation thread per-operator counters into
	// the generated closures; nil compiles the exact unprofiled code.
	Profile *ProfileSpec
	// Metrics, when set, receives cumulative engine-level counters
	// (workers launched, morsels scanned, active-worker gauge).
	Metrics *obs.Metrics
	// MemBudget, when positive, bounds the estimated bytes a query may pin
	// in pipeline-breaker state (hash-join build sides, aggregation tables,
	// collected rows, ORDER BY buffers). Exceeding it fails the query with
	// ErrMemBudget instead of risking the process.
	MemBudget int64
	// Vectorize selects tuple-at-a-time vs. block-at-a-time compilation for
	// batch-capable pipeline segments (see vector.go).
	Vectorize VecMode
	// Sort, when set, is the caller's ORDER BY / LIMIT request. An eligible
	// plan absorbs it into the pipeline (columnar index sort, vsort.go) and
	// reports that via Program.Sorted; otherwise the caller post-sorts.
	Sort *SortSpec
}

// Kont is the consume continuation of the push model: called once per
// tuple, reading the current tuple from the register file.
type Kont func(r *vbuf.Regs) error

// binding tracks where a plan variable's data lives at run time.
type binding struct {
	name string
	typ  types.Type
	// Dataset provenance (nil for unnest-introduced bindings).
	ds *plugin.Dataset
	in plugin.Input
	// oidSlot carries the record OID when ds != nil.
	oidSlot vbuf.Slot
	hasOID  bool
	// slots maps extracted dotted field paths ("" = whole value) to their
	// registers.
	slots map[string]vbuf.Slot
}

// Compiler performs the single post-order traversal of the physical plan
// that produces the specialized query program (§5.1).
type Compiler struct {
	env      *Env
	alloc    vbuf.Alloc
	bindings map[string]*binding
	// env for type inference: binding name → type.
	envTypes expr.Env
	// needs: binding → set of dotted paths required by expressions.
	needs map[string]map[string]bool
	// lazyUnnest: binding → set of collection paths served by plug-in
	// unnests (not extracted at scan).
	lazyUnnest map[string]map[string]bool
	// explain accumulates human-readable compilation decisions.
	explain []string

	// cacheBuilding dedupes cache-population builders within one
	// compilation: a query that scans the same dataset twice (self-join)
	// must attach the builder for a field to only one of the scans, or two
	// builders would race to register overlapping blocks in one run.
	cacheBuilding map[string]bool

	// Morsel-parallel compilation context (zero for serial compiles).
	// CompileParallel compiles one pipeline clone per worker; each clone
	// gets its own Compiler with the same plan but a different morsel.
	driveScan *algebra.Scan  // the scan that is range-partitioned
	morsel    *plugin.Morsel // this worker's record range of driveScan
	shared    *sharedRun     // cross-worker shared state (joins, cache frags)
	workerID  int

	// prof, when non-nil, makes the compiler thread per-operator counters
	// into the generated closures (see profile.go). All pipeline clones of a
	// parallel program share one progProf; each clone writes its own cells.
	prof *progProf

	// cancel is the program's cooperative cancellation token, threaded into
	// every scan driver. All pipeline clones share one token.
	cancel *plugin.Cancel
	// mem is the query's memory accountant (shared across clones); nil when
	// no budget is configured, which compiles all accounting out.
	mem *memGauge

	// vectorized records that at least one pipeline segment compiled to
	// batch kernels (surfaced as Program.Vectorized for the feedback store).
	vectorized bool
	// sorted records that the plan absorbed Env.Sort into the pipeline
	// (surfaced as Program.Sorted so the caller skips its own sort).
	sorted bool
}

func (c *Compiler) note(format string, args ...any) {
	c.explain = append(c.explain, fmt.Sprintf(format, args...))
}

// field needs inference ----------------------------------------------------

// analyze walks the plan collecting, per binding, the set of field paths
// referenced by any expression — this is the projection-pushdown
// information the input plug-ins use to extract only what the query needs.
func (c *Compiler) analyze(plan algebra.Node) {
	c.needs = map[string]map[string]bool{}
	c.lazyUnnest = map[string]map[string]bool{}
	addPath := func(root string, path []string) {
		set, ok := c.needs[root]
		if !ok {
			set = map[string]bool{}
			c.needs[root] = set
		}
		set[pathKey(path)] = true
	}
	var addExpr func(e expr.Expr)
	addExpr = func(e expr.Expr) {
		if e == nil {
			return
		}
		if root, path, ok := expr.PathOf(e); ok {
			addPath(root, path)
			return
		}
		switch x := e.(type) {
		case *expr.BinOp:
			addExpr(x.L)
			addExpr(x.R)
		case *expr.Not:
			addExpr(x.E)
		case *expr.Neg:
			addExpr(x.E)
		case *expr.IsNull:
			addExpr(x.E)
		case *expr.Like:
			addExpr(x.E)
		case *expr.RecordCtor:
			for _, sub := range x.Exprs {
				addExpr(sub)
			}
		}
	}
	algebra.Walk(plan, func(n algebra.Node) bool {
		switch x := n.(type) {
		case *algebra.Select:
			addExpr(x.Pred)
		case *algebra.Join:
			addExpr(x.Pred)
		case *algebra.Unnest:
			addExpr(x.Pred)
			// The unnest path itself: plug-in unnests resolve it lazily via
			// the OID; value-mode unnests need the collection extracted.
			if root, path, ok := expr.PathOf(x.Path); ok {
				if c.isPluginUnnest(plan, root) {
					set, ok := c.lazyUnnest[root]
					if !ok {
						set = map[string]bool{}
						c.lazyUnnest[root] = set
					}
					set[pathKey(path)] = true
				} else {
					addPath(root, path)
				}
			}
		case *algebra.Reduce:
			addExpr(x.Pred)
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		case *algebra.Nest:
			addExpr(x.Pred)
			for _, g := range x.GroupBy {
				addExpr(g)
			}
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		}
		return true
	})
}

// isPluginUnnest reports whether binding root is dataset-backed by a
// plug-in that supports lazy unnesting (JSON).
func (c *Compiler) isPluginUnnest(plan algebra.Node, root string) bool {
	for _, s := range algebra.Scans(plan) {
		if s.Binding == root {
			_, in, err := c.env.Catalog.Dataset(s.Dataset)
			if err != nil {
				return false
			}
			type unnester interface {
				CompileUnnest(*plugin.Dataset, plugin.UnnestSpec) (plugin.UnnestFunc, error)
			}
			_, ok := in.(unnester)
			if !ok {
				return false
			}
			return in.Format() == "json"
		}
	}
	return false
}

// compileNode dispatches on the operator kind, compiling the subtree into a
// driver that calls consume per produced tuple.
func (c *Compiler) compileNode(n algebra.Node, consume Kont) (func(r *vbuf.Regs) error, error) {
	// Vectorized interception happens before any profiling wrapper: a
	// batch-capable Select chain compiles into one segment whose kernels
	// count rows per batch themselves (see vector.go), so wrapping the top
	// Select here would double-count it.
	if sel, ok := n.(*algebra.Select); ok {
		if run, handled, err := c.tryVecSelectChain(sel, consume); handled {
			return run, err
		}
	}
	// Profiling: Join and Unnest count emitted rows through a consume
	// wrapper; Scan and Select fuse the counter into their own closures so
	// the densest paths pay no extra call layer. Timed (EXPLAIN ANALYZE)
	// runs wrap every operator to measure pipeline time above it.
	if c.prof != nil {
		switch n.(type) {
		case *algebra.Join, *algebra.Unnest:
			consume = c.profKont(n, consume)
		default:
			if c.prof.timing {
				consume = c.profKont(n, consume)
			}
		}
	}
	switch x := n.(type) {
	case *algebra.Scan:
		return c.compileScan(x, consume)
	case *algebra.Select:
		return c.compileChildThen(x.Child, func() (Kont, error) {
			pred, err := c.compileBool(x.Pred)
			if err != nil {
				return nil, fmt.Errorf("select %s: %w", x.Pred, err)
			}
			if rows := c.inlineRows(x); rows != nil {
				return func(r *vbuf.Regs) error {
					if v, ok := pred(r); ok && v {
						*rows++
						return consume(r)
					}
					return nil
				}, nil
			}
			return func(r *vbuf.Regs) error {
				if v, ok := pred(r); ok && v {
					return consume(r)
				}
				return nil
			}, nil
		})
	case *algebra.Join:
		return c.compileJoin(x, consume)
	case *algebra.Unnest:
		return c.compileUnnest(x, consume)
	default:
		return nil, fmt.Errorf("exec: unexpected operator %T below the root", n)
	}
}

// compileChildThen compiles the child subtree first (post-order DFS: the
// child's bindings and slots must exist before this operator's expressions
// are compiled), then asks mk for the operator's consume and installs it
// through an indirection.
func (c *Compiler) compileChildThen(child algebra.Node, mk func() (Kont, error)) (func(r *vbuf.Regs) error, error) {
	var k Kont
	run, err := c.compileNode(child, func(r *vbuf.Regs) error { return k(r) })
	if err != nil {
		return nil, err
	}
	k, err = mk()
	if err != nil {
		return nil, err
	}
	return run, nil
}

// cachedField is one needed path served from a complete cache block.
type cachedField struct {
	path  string
	block *cache.Block
	slot  vbuf.Slot
}

// buildReq is one cache block to populate as a scan side effect.
type buildReq struct {
	key  string
	kind types.Kind
	slot vbuf.Slot
}

// scanInfo is the resolved state of one scan: the binding with its slot
// assignments, and the classification of every needed path into plug-in
// extraction, cache service, or cache population. The tuple and vectorized
// scan compilers share this analysis, so mode selection never changes slot
// layout or cache policy.
type scanInfo struct {
	s        *algebra.Scan
	ds       *plugin.Dataset
	in       plugin.Input
	b        *binding
	bias     float64
	rows     int64
	morsel   *plugin.Morsel
	oc       *opCounters
	scanProf *plugin.ScanProf

	pluginFields []plugin.FieldReq
	cachedFields []cachedField
	buildReqs    []buildReq

	// zoneSkip (nil when no pushed predicate maps onto a cached column's
	// zone maps) reports whether a window of row ordinals can be skipped
	// wholesale. It is only safe to consult on the full-cache-hit drivers,
	// where no builders observe the row stream.
	zoneSkip func(lo, hi int64) bool
	// credit (nil likewise) notifies the cache manager at run time that the
	// scan's pushed predicates touched their columns again — the adaptive
	// index-selection signal.
	credit func()
}

// analyzeScan installs the scan's binding, allocates a slot per needed path,
// and decides each path's source (§5.2 + §6). It has compilation side
// effects (slots, binding registration, cache-builder dedup), so callers
// commit to compiling the scan once they call it.
func (c *Compiler) analyzeScan(s *algebra.Scan) (*scanInfo, error) {
	ds, in, err := c.env.Catalog.Dataset(s.Dataset)
	if err != nil {
		return nil, err
	}
	schema := in.Schema(ds)
	b := &binding{name: s.Binding, typ: schema, ds: ds, in: in, slots: map[string]vbuf.Slot{}}
	b.oidSlot = c.alloc.Int()
	b.hasOID = true
	c.bindings[s.Binding] = b
	c.envTypes[s.Binding] = schema

	caches := c.env.Caches
	si := &scanInfo{
		s:    s,
		ds:   ds,
		in:   in,
		b:    b,
		bias: in.FieldCost(),
		rows: in.Cardinality(ds),
		oc:   c.opCtr(s),
	}
	if si.oc != nil {
		si.scanProf = &si.oc.scan
	}

	paths := sortedKeys(c.needs[s.Binding])
	for _, p := range paths {
		var t types.Type = schema
		if p != "" {
			pt, err := typeOfPath(schema, splitPath(p))
			if err != nil {
				return nil, fmt.Errorf("scan %s: %w", s.Dataset, err)
			}
			t = pt
		}
		slot := c.alloc.ForType(t)
		b.slots[p] = slot
		if p == "" {
			// Whole-record reference: box via the plug-in.
			si.pluginFields = append(si.pluginFields, plugin.FieldReq{Path: nil, Slot: slot, Type: t})
			continue
		}
		if blk, ok := caches.Lookup(s.Dataset, p); ok && blk.Rows == si.rows {
			si.cachedFields = append(si.cachedFields, cachedField{path: p, block: blk, slot: slot})
			c.note("scan %s: field %s served from cache", s.Dataset, p)
			// Per-query attribution: a compile-time fact, counted once per
			// logical scan (clone 0 under parallelism, where every clone
			// resolves the same blocks).
			if c.prof != nil && (c.shared == nil || c.workerID == 0) {
				c.prof.cacheHits++
			}
			continue
		}
		si.pluginFields = append(si.pluginFields, plugin.FieldReq{Path: splitPath(p), Slot: slot, Type: t})
		if caches.ShouldCache(si.bias, t.Kind()) && !caches.Has(s.Dataset, p) {
			if c.cacheBuilding == nil {
				c.cacheBuilding = map[string]bool{}
			}
			if bk := s.Dataset + "\x00" + p; !c.cacheBuilding[bk] {
				c.cacheBuilding[bk] = true
				si.buildReqs = append(si.buildReqs, buildReq{key: p, kind: t.Kind(), slot: slot})
				c.note("scan %s: populating cache for field %s", s.Dataset, p)
			}
		}
	}

	// Morsel restriction: only the driving scan of a parallel compilation is
	// range-partitioned; every other scan runs in full in each worker (or
	// once, for shared join build sides).
	if c.driveScan != nil && s == c.driveScan {
		si.morsel = c.morsel
	}
	c.setupIndexHints(si)
	return si, nil
}

// finishScanBuilders hands off the cache blocks built during one scan pass.
// Under parallelism a morselized scan only produced a fragment — stash it
// for the coordinator to concatenate and register once all workers finish —
// and a full (non-driving) scan registers through the shared run so exactly
// one worker's block wins.
func (c *Compiler) finishScanBuilders(si *scanInfo, builders []*cachepg.Builder) {
	if len(builders) == 0 {
		return
	}
	caches := c.env.Caches
	t0 := time.Now()
	for _, bd := range builders {
		blk := bd.Finish()
		switch {
		case c.shared != nil && si.morsel != nil:
			c.shared.addFrag(c.workerID, blk)
		case c.shared != nil:
			c.shared.registerOnce(caches, blk)
		default:
			caches.Register(blk)
		}
	}
	d := int64(time.Since(t0))
	caches.AddBuildNanos(d)
	if si.oc != nil {
		si.oc.cacheBuildNanos += d
	}
}

// compileScan emits the scan driver for a dataset: the plug-in's generated
// access code, the cache-block fast path when every needed field is cached,
// the mixed path when some are, and the cache-population side-effect wiring
// (§5.2 + §6).
func (c *Compiler) compileScan(s *algebra.Scan, consume Kont) (func(r *vbuf.Regs) error, error) {
	si, err := c.analyzeScan(s)
	if err != nil {
		return nil, err
	}

	// Cache loaders read by row ordinal — the OID the scan produces.
	oid := si.b.oidSlot
	var rawLoaders []cachepg.Loader
	for _, cf := range si.cachedFields {
		ld, err := cachepg.CompileLoader(cf.block, cf.slot)
		if err != nil {
			return nil, err
		}
		rawLoaders = append(rawLoaders, ld)
	}

	if len(si.pluginFields) == 0 && len(si.cachedFields) > 0 {
		// Full cache hit: never touch the original dataset — the cache
		// plug-in drives the loop straight off the binary blocks. (No
		// builders can exist here: population only attaches to
		// plug-in-extracted fields.)
		c.note("scan %s: fully served from cache (%d fields)", s.Dataset, len(si.cachedFields))
		drv := cachepg.CompileScan(si.rows, rawLoaders, &si.b.oidSlot, si.morsel, si.scanProf, c.cancel, si.zoneSkip)
		credit := si.credit
		run := func(r *vbuf.Regs) error {
			if credit != nil {
				credit()
			}
			return drv(r, func() error { return consume(r) })
		}
		return c.profScanRun(s, run, morselRows(si.morsel, si.rows)), nil
	}

	inner := consume
	if len(rawLoaders) > 0 {
		next := inner
		lds := rawLoaders
		inner = func(r *vbuf.Regs) error {
			row := r.I[oid.Idx]
			for _, ld := range lds {
				ld(r, row)
			}
			return next(r)
		}
	}

	// Cache population wraps the consume *before* any filtering above, so
	// the block covers every record (the cache is a full column).
	var builders []*cachepg.Builder
	if len(si.buildReqs) > 0 {
		for _, br := range si.buildReqs {
			builders = append(builders, cachepg.NewBuilder(s.Dataset, br.key, br.kind, si.bias, br.slot, si.rows))
		}
		next := inner
		bds := builders
		inner = func(r *vbuf.Regs) error {
			for _, bd := range bds {
				bd.Append(r)
			}
			return next(r)
		}
	}

	spec := plugin.ScanSpec{Fields: si.pluginFields, OIDSlot: &si.b.oidSlot, Morsel: si.morsel, Prof: si.scanProf, Cancel: c.cancel}
	pluginRun, err := si.in.CompileScan(si.ds, spec)
	if err != nil {
		return nil, err
	}
	credit := si.credit
	run := func(r *vbuf.Regs) error {
		if credit != nil {
			credit()
		}
		for _, bd := range builders {
			bd.Reset()
		}
		if err := pluginRun(r, func() error { return inner(r) }); err != nil {
			return err
		}
		c.finishScanBuilders(si, builders)
		return nil
	}
	return c.profScanRun(s, run, morselRows(si.morsel, si.rows)), nil
}

// morselRows returns the number of records a scan driver will emit: the
// morsel's clamped span, or the whole dataset when unrestricted.
func morselRows(m *plugin.Morsel, rows int64) int64 {
	lo, hi := int64(0), rows
	if m != nil {
		if lo = m.Start; lo < 0 {
			lo = 0
		}
		if hi = m.End; hi > rows {
			hi = rows
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// compileUnnest emits the element loop over a nested collection: lazily
// through the input plug-in when the collection's record is plug-in backed
// (JSON), or by iterating a boxed list value otherwise.
func (c *Compiler) compileUnnest(u *algebra.Unnest, consume Kont) (func(r *vbuf.Regs) error, error) {
	root, path, ok := expr.PathOf(u.Path)
	if !ok {
		return nil, fmt.Errorf("exec: unnest path %s is not a field path", u.Path)
	}

	// Element type.
	collType, err := expr.InferType(u.Path, u.Child.Bindings())
	if err != nil {
		return nil, fmt.Errorf("exec: unnest %s: %w", u.Path, err)
	}
	elemType := types.ElemType(collType)
	if elemType == nil {
		return nil, fmt.Errorf("exec: unnest %s: %s is not a collection", u.Path, collType)
	}

	return c.compileChildThen(u.Child, func() (Kont, error) {
		eb := &binding{name: u.Binding, typ: elemType, slots: map[string]vbuf.Slot{}}
		c.bindings[u.Binding] = eb
		c.envTypes[u.Binding] = elemType

		// Paths of the element needed above.
		elemPaths := sortedKeys(c.needs[u.Binding])

		parent := c.bindings[root]
		usePlugin := parent != nil && parent.ds != nil && c.lazyUnnest[root][pathKey(path)]

		if usePlugin {
			var elemFields []plugin.FieldReq
			var elemSlot *vbuf.Slot
			for _, p := range elemPaths {
				if p == "" {
					t := elemType
					slot := c.alloc.ForType(t)
					eb.slots[""] = slot
					elemSlot = &slot
					continue
				}
				pt, err := typeOfPathFrom(elemType, splitPath(p))
				if err != nil {
					return nil, fmt.Errorf("exec: unnest %s: %w", u.Path, err)
				}
				slot := c.alloc.ForType(pt)
				eb.slots[p] = slot
				elemFields = append(elemFields, plugin.FieldReq{Path: splitPath(p), Slot: slot, Type: pt})
			}
			if len(elemFields) == 0 && elemSlot == nil && elemType.Kind().IsScalar() {
				// Nothing above references the element (pure counting
				// unnest); a scalar element still gets a slot so the loop
				// has a destination.
				slot := c.alloc.ForType(elemType)
				eb.slots[""] = slot
				elemSlot = &slot
			}
			spec := plugin.UnnestSpec{
				OIDSlot:    parent.oidSlot,
				Path:       path,
				ElemFields: elemFields,
				ElemSlot:   elemSlot,
				ElemType:   elemType,
			}
			unnestRun, err := parent.in.CompileUnnest(parent.ds, spec)
			if err != nil {
				return nil, fmt.Errorf("exec: unnest %s: %w", u.Path, err)
			}
			c.note("unnest %s: lazy plug-in iteration over %s", u.Path, parent.ds.Name)

			inner, err := c.unnestConsume(u, consume)
			if err != nil {
				return nil, err
			}
			outer := u.Outer
			elemSlots := collectSlots(eb)
			return func(r *vbuf.Regs) error {
				matched := false
				err := unnestRun(r, func() error {
					matched = true
					return inner(r)
				})
				if err != nil {
					return err
				}
				if outer && !matched {
					for _, s := range elemSlots {
						r.Null[s.Null] = true
					}
					return consume(r)
				}
				return nil
			}, nil
		}

		// Value mode: the collection is materialized as a boxed list.
		collEval, err := c.compileVal(u.Path)
		if err != nil {
			return nil, fmt.Errorf("exec: unnest %s: %w", u.Path, err)
		}
		// The element is presented boxed; field accesses on it go through
		// the boxed path of the expression compiler.
		slot := c.alloc.Value()
		eb.slots[""] = slot
		c.note("unnest %s: boxed-list iteration", u.Path)

		inner, err := c.unnestConsume(u, consume)
		if err != nil {
			return nil, err
		}
		outer := u.Outer
		return func(r *vbuf.Regs) error {
			coll, ok := collEval(r)
			if !ok || len(coll.Elems) == 0 {
				if outer {
					r.Null[slot.Null] = true
					return consume(r)
				}
				return nil
			}
			for _, el := range coll.Elems {
				r.V[slot.Idx] = el
				r.Null[slot.Null] = false
				if err := inner(r); err != nil {
					return err
				}
			}
			return nil
		}, nil
	})
}

// unnestConsume wraps consume with the unnest's embedded filter, if any.
func (c *Compiler) unnestConsume(u *algebra.Unnest, consume Kont) (Kont, error) {
	if u.Pred == nil {
		return consume, nil
	}
	pred, err := c.compileBool(u.Pred)
	if err != nil {
		return nil, fmt.Errorf("exec: unnest filter %s: %w", u.Pred, err)
	}
	return func(r *vbuf.Regs) error {
		if v, ok := pred(r); ok && v {
			return consume(r)
		}
		return nil
	}, nil
}

func collectSlots(b *binding) []vbuf.Slot {
	out := make([]vbuf.Slot, 0, len(b.slots))
	for _, s := range b.slots {
		out = append(out, s)
	}
	return out
}
