package exec

import (
	"fmt"
	"math"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// accumulator is one compiled aggregate monoid: fold consumes the current
// tuple, result yields the final value.
type accumulator struct {
	fold   func(r *vbuf.Regs)
	result func() types.Value
	// fresh clones the accumulator with zeroed state (for per-group use).
	fresh func() *accumulator
}

// compileAgg builds the type-specialized accumulator for one aggregate.
func (c *Compiler) compileAgg(a expr.Agg) (*accumulator, error) {
	switch a.Kind {
	case expr.AggCount:
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var n int64
			return &accumulator{
				fold:   func(*vbuf.Regs) { n++ },
				result: func() types.Value { return types.IntValue(n) },
				fresh:  func() *accumulator { return make_() },
			}
		}
		return make_(), nil
	case expr.AggBag, expr.AggList:
		ev, err := c.compileVal(a.Arg)
		if err != nil {
			return nil, err
		}
		kind := types.KindBag
		if a.Kind == expr.AggList {
			kind = types.KindList
		}
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var elems []types.Value
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					v, ok := ev(r)
					if !ok {
						v = types.NullValue()
					}
					elems = append(elems, v)
				},
				result: func() types.Value { return types.Value{Kind: kind, Elems: elems} },
				fresh:  func() *accumulator { return make_() },
			}
		}
		return make_(), nil
	}

	t, err := c.typeOf(a.Arg)
	if err != nil {
		return nil, err
	}
	switch {
	case a.Kind == expr.AggAvg:
		ev, err := c.compileFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var sum float64
			var n int64
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						sum += v
						n++
					}
				},
				result: func() types.Value {
					if n == 0 {
						return types.NullValue()
					}
					return types.FloatValue(sum / float64(n))
				},
				fresh: func() *accumulator { return make_() },
			}
		}
		return make_(), nil
	case t.Kind() == types.KindInt:
		ev, err := c.compileInt(a.Arg)
		if err != nil {
			return nil, err
		}
		return intAccumulator(a.Kind, ev)
	case t.Kind() == types.KindFloat:
		ev, err := c.compileFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		return floatAccumulator(a.Kind, ev)
	case t.Kind() == types.KindString && (a.Kind == expr.AggMax || a.Kind == expr.AggMin):
		ev, err := c.compileStr(a.Arg)
		if err != nil {
			return nil, err
		}
		return strAccumulator(a.Kind, ev)
	}
	return nil, fmt.Errorf("exec: unsupported aggregate %s over %s", a.Kind, t)
}

func intAccumulator(kind expr.AggKind, ev evalInt) (*accumulator, error) {
	var make_ func() *accumulator
	switch kind {
	case expr.AggSum:
		make_ = func() *accumulator {
			var sum int64
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						sum += v
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.IntValue(sum)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	case expr.AggMax:
		make_ = func() *accumulator {
			best := int64(math.MinInt64)
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						if v > best {
							best = v
						}
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.IntValue(best)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	case expr.AggMin:
		make_ = func() *accumulator {
			best := int64(math.MaxInt64)
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						if v < best {
							best = v
						}
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.IntValue(best)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	default:
		return nil, fmt.Errorf("exec: aggregate %s not defined on int", kind)
	}
	return make_(), nil
}

func floatAccumulator(kind expr.AggKind, ev evalFloat) (*accumulator, error) {
	var make_ func() *accumulator
	switch kind {
	case expr.AggSum:
		make_ = func() *accumulator {
			var sum float64
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						sum += v
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.FloatValue(sum)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	case expr.AggMax:
		make_ = func() *accumulator {
			best := math.Inf(-1)
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						if v > best {
							best = v
						}
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.FloatValue(best)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	case expr.AggMin:
		make_ = func() *accumulator {
			best := math.Inf(1)
			seen := false
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						if v < best {
							best = v
						}
						seen = true
					}
				},
				result: func() types.Value {
					if !seen {
						return types.NullValue()
					}
					return types.FloatValue(best)
				},
				fresh: func() *accumulator { return make_() },
			}
		}
	default:
		return nil, fmt.Errorf("exec: aggregate %s not defined on float", kind)
	}
	return make_(), nil
}

func strAccumulator(kind expr.AggKind, ev evalStr) (*accumulator, error) {
	wantMax := kind == expr.AggMax
	var make_ func() *accumulator
	make_ = func() *accumulator {
		var best string
		seen := false
		return &accumulator{
			fold: func(r *vbuf.Regs) {
				v, ok := ev(r)
				if !ok {
					return
				}
				if !seen || (wantMax && v > best) || (!wantMax && v < best) {
					best = v
					seen = true
				}
			},
			result: func() types.Value {
				if !seen {
					return types.NullValue()
				}
				return types.StringValue(best)
			},
			fresh: func() *accumulator { return make_() },
		}
	}
	return make_(), nil
}

// compileReduce compiles the root Reduce: the aggregates fold over the
// child pipeline; a single AggBag/AggList yields the output collection.
func (c *Compiler) compileReduce(red *algebra.Reduce) (func(r *vbuf.Regs) (*Result, error), error) {
	// Embedded filter (compiled after the child, inside each branch).
	var pred evalBool

	// Collection yield: one bag/list aggregate produces the result rows.
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		var ev evalVal
		var rows []types.Value
		run, err := c.compileChildThen(red.Child, func() (Kont, error) {
			e, err := c.compileVal(red.Aggs[0].Arg)
			if err != nil {
				return nil, err
			}
			ev = e
			if red.Pred != nil {
				p, err := c.compileBool(red.Pred)
				if err != nil {
					return nil, err
				}
				pred = p
			}
			return func(r *vbuf.Regs) error {
				if pred != nil {
					if v, ok := pred(r); !ok || !v {
						return nil
					}
				}
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				rows = append(rows, v)
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		name := red.Names[0]
		return func(r *vbuf.Regs) (*Result, error) {
			rows = nil
			if err := run(r); err != nil {
				return nil, err
			}
			return &Result{Cols: []string{name}, Rows: rows}, nil
		}, nil
	}

	// Aggregate yield: fold every accumulator in one pass.
	accs := make([]*accumulator, len(red.Aggs))
	run, err := c.compileChildThen(red.Child, func() (Kont, error) {
		for i, a := range red.Aggs {
			acc, err := c.compileAgg(a)
			if err != nil {
				return nil, err
			}
			accs[i] = acc
		}
		if red.Pred != nil {
			p, err := c.compileBool(red.Pred)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		return func(r *vbuf.Regs) error {
			if pred != nil {
				if v, ok := pred(r); !ok || !v {
					return nil
				}
			}
			for _, acc := range accs {
				acc.fold(r)
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	names := red.Names
	return func(r *vbuf.Regs) (*Result, error) {
		// Re-arm accumulators for repeated executions of the same program.
		for i := range accs {
			accs[i] = accs[i].fresh()
		}
		if err := run(r); err != nil {
			return nil, err
		}
		vals := make([]types.Value, len(accs))
		for i, acc := range accs {
			vals[i] = acc.result()
		}
		return &Result{Cols: names, Rows: []types.Value{types.RecordValue(names, vals)}}, nil
	}, nil
}

// group holds one hash-group's accumulators during Nest evaluation.
type group struct {
	keyVals []types.Value
	accs    []*accumulator
}

// compileNest compiles the root Nest: radix-hash grouping with per-group
// accumulators (§5.1: "Proteus uses a radix-hash-based grouping
// implementation"). Single integer group-by keys take a specialized path.
func (c *Compiler) compileNest(n *algebra.Nest) (func(r *vbuf.Regs) (*Result, error), error) {
	var pred evalBool
	protoAccs := make([]*accumulator, len(n.Aggs))
	freshAccs := func() []*accumulator {
		accs := make([]*accumulator, len(protoAccs))
		for i, p := range protoAccs {
			accs[i] = p.fresh()
		}
		return accs
	}
	outNames := append(append([]string{}, n.GroupNames...), n.AggNames...)

	// Fast path: single integer key.
	singleInt := false
	if len(n.GroupBy) == 1 {
		if t, err := c.typeOf(n.GroupBy[0]); err == nil && t.Kind() == types.KindInt {
			singleInt = true
		}
	}

	if singleInt {
		groups := map[int64][]*accumulator{}
		var keyOrder []int64
		run, err := c.compileChildThen(n.Child, func() (Kont, error) {
			keyEval, err := c.compileInt(n.GroupBy[0])
			if err != nil {
				return nil, err
			}
			for i, a := range n.Aggs {
				acc, err := c.compileAgg(a)
				if err != nil {
					return nil, err
				}
				protoAccs[i] = acc
			}
			if n.Pred != nil {
				p, err := c.compileBool(n.Pred)
				if err != nil {
					return nil, err
				}
				pred = p
			}
			return func(r *vbuf.Regs) error {
				if pred != nil {
					if v, ok := pred(r); !ok || !v {
						return nil
					}
				}
				k, ok := keyEval(r)
				if !ok {
					return nil
				}
				accs, exists := groups[k]
				if !exists {
					accs = freshAccs()
					groups[k] = accs
					keyOrder = append(keyOrder, k)
				}
				for _, acc := range accs {
					acc.fold(r)
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		return func(r *vbuf.Regs) (*Result, error) {
			groups = map[int64][]*accumulator{}
			keyOrder = nil
			if err := run(r); err != nil {
				return nil, err
			}
			sort.Slice(keyOrder, func(i, j int) bool { return keyOrder[i] < keyOrder[j] })
			rows := make([]types.Value, 0, len(keyOrder))
			for _, k := range keyOrder {
				vals := make([]types.Value, 0, len(outNames))
				vals = append(vals, types.IntValue(k))
				for _, acc := range groups[k] {
					vals = append(vals, acc.result())
				}
				rows = append(rows, types.RecordValue(outNames, vals))
			}
			return &Result{Cols: outNames, Rows: rows}, nil
		}, nil
	}

	// General path: composite/boxed keys hashed by canonical value hash.
	keyEvals := make([]evalVal, len(n.GroupBy))
	groups := map[uint64][]*group{}
	var order []*group
	run, err := c.compileChildThen(n.Child, func() (Kont, error) {
		for i, g := range n.GroupBy {
			ev, err := c.compileVal(g)
			if err != nil {
				return nil, err
			}
			keyEvals[i] = ev
		}
		for i, a := range n.Aggs {
			acc, err := c.compileAgg(a)
			if err != nil {
				return nil, err
			}
			protoAccs[i] = acc
		}
		if n.Pred != nil {
			p, err := c.compileBool(n.Pred)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		return func(r *vbuf.Regs) error {
			if pred != nil {
				if v, ok := pred(r); !ok || !v {
					return nil
				}
			}
			h := uint64(14695981039346656037)
			keyVals := make([]types.Value, len(keyEvals))
			for i, ev := range keyEvals {
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				keyVals[i] = v
				h = hashMix(h, v.Hash())
			}
			var g *group
			for _, cand := range groups[h] {
				same := true
				for i := range keyVals {
					if types.Compare(cand.keyVals[i], keyVals[i]) != 0 {
						same = false
						break
					}
				}
				if same {
					g = cand
					break
				}
			}
			if g == nil {
				g = &group{keyVals: keyVals, accs: freshAccs()}
				groups[h] = append(groups[h], g)
				order = append(order, g)
			}
			for _, acc := range g.accs {
				acc.fold(r)
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return func(r *vbuf.Regs) (*Result, error) {
		groups = map[uint64][]*group{}
		order = nil
		if err := run(r); err != nil {
			return nil, err
		}
		rows := make([]types.Value, 0, len(order))
		for _, g := range order {
			vals := make([]types.Value, 0, len(outNames))
			vals = append(vals, g.keyVals...)
			for _, acc := range g.accs {
				vals = append(vals, acc.result())
			}
			rows = append(rows, types.RecordValue(outNames, vals))
		}
		return &Result{Cols: outNames, Rows: rows}, nil
	}, nil
}
