package exec

import (
	"fmt"
	"math"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// accumulator is one compiled aggregate monoid: fold consumes the current
// tuple, result yields the final value. partial/absorb expose the monoid's
// internal state so morsel-parallel workers can merge their thread-local
// aggregates at the pipeline breaker (merge is the monoid ⊕, so the merged
// result equals the serial fold).
type accumulator struct {
	fold   func(r *vbuf.Regs)
	result func() types.Value
	// fresh clones the accumulator with zeroed state (for per-group use).
	fresh func() *accumulator
	// partial snapshots the internal state; absorb folds another
	// accumulator's partial into this one.
	partial func() any
	absorb  func(p any)
}

// scalarPart is the partial state of min/max/sum over one scalar type.
type scalarPart[T int64 | float64 | string] struct {
	v    T
	seen bool
}

// avgPart is the partial state of AVG: merging needs sum and count, not the
// quotient.
type avgPart struct {
	sum float64
	n   int64
}

// compileAgg builds the type-specialized accumulator for one aggregate.
func (c *Compiler) compileAgg(a expr.Agg) (*accumulator, error) {
	switch a.Kind {
	case expr.AggCount:
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var n int64
			return &accumulator{
				fold:    func(*vbuf.Regs) { n++ },
				result:  func() types.Value { return types.IntValue(n) },
				fresh:   func() *accumulator { return make_() },
				partial: func() any { return n },
				absorb:  func(p any) { n += p.(int64) },
			}
		}
		return make_(), nil
	case expr.AggBag, expr.AggList:
		ev, err := c.compileVal(a.Arg)
		if err != nil {
			return nil, err
		}
		kind := types.KindBag
		if a.Kind == expr.AggList {
			kind = types.KindList
		}
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var elems []types.Value
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					v, ok := ev(r)
					if !ok {
						v = types.NullValue()
					}
					elems = append(elems, v)
				},
				result:  func() types.Value { return types.Value{Kind: kind, Elems: elems} },
				fresh:   func() *accumulator { return make_() },
				partial: func() any { return elems },
				absorb:  func(p any) { elems = append(elems, p.([]types.Value)...) },
			}
		}
		return make_(), nil
	}

	t, err := c.typeOf(a.Arg)
	if err != nil {
		return nil, err
	}
	switch {
	case a.Kind == expr.AggAvg:
		ev, err := c.compileFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		var make_ func() *accumulator
		make_ = func() *accumulator {
			var sum float64
			var n int64
			return &accumulator{
				fold: func(r *vbuf.Regs) {
					if v, ok := ev(r); ok {
						sum += v
						n++
					}
				},
				result: func() types.Value {
					if n == 0 {
						return types.NullValue()
					}
					return types.FloatValue(sum / float64(n))
				},
				fresh:   func() *accumulator { return make_() },
				partial: func() any { return avgPart{sum: sum, n: n} },
				absorb: func(p any) {
					ap := p.(avgPart)
					sum += ap.sum
					n += ap.n
				},
			}
		}
		return make_(), nil
	case t.Kind() == types.KindInt:
		ev, err := c.compileInt(a.Arg)
		if err != nil {
			return nil, err
		}
		return intAccumulator(a.Kind, ev)
	case t.Kind() == types.KindFloat:
		ev, err := c.compileFloat(a.Arg)
		if err != nil {
			return nil, err
		}
		return floatAccumulator(a.Kind, ev)
	case t.Kind() == types.KindString && (a.Kind == expr.AggMax || a.Kind == expr.AggMin):
		ev, err := c.compileStr(a.Arg)
		if err != nil {
			return nil, err
		}
		return strAccumulator(a.Kind, ev)
	}
	return nil, fmt.Errorf("exec: unsupported aggregate %s over %s", a.Kind, t)
}

// scalarAccumulator builds sum/max/min over one scalar representation from
// the fold step, the binary merge, and the boxing function.
func scalarAccumulator[T int64 | float64 | string](
	zero T,
	ev func(r *vbuf.Regs) (T, bool),
	combine func(acc, v T) T,
	box func(T) types.Value,
) *accumulator {
	var make_ func() *accumulator
	make_ = func() *accumulator {
		st := scalarPart[T]{v: zero}
		return &accumulator{
			fold: func(r *vbuf.Regs) {
				v, ok := ev(r)
				if !ok {
					return
				}
				if !st.seen {
					st.v = v
					st.seen = true
					return
				}
				st.v = combine(st.v, v)
			},
			result: func() types.Value {
				if !st.seen {
					return types.NullValue()
				}
				return box(st.v)
			},
			fresh:   func() *accumulator { return make_() },
			partial: func() any { return st },
			absorb: func(p any) {
				o := p.(scalarPart[T])
				if !o.seen {
					return
				}
				if !st.seen {
					st = o
					return
				}
				st.v = combine(st.v, o.v)
			},
		}
	}
	return make_()
}

func intAccumulator(kind expr.AggKind, ev evalInt) (*accumulator, error) {
	switch kind {
	case expr.AggSum:
		return scalarAccumulator[int64](0, ev, func(a, v int64) int64 { return a + v }, types.IntValue), nil
	case expr.AggMax:
		return scalarAccumulator[int64](math.MinInt64, ev, func(a, v int64) int64 { return max(a, v) }, types.IntValue), nil
	case expr.AggMin:
		return scalarAccumulator[int64](math.MaxInt64, ev, func(a, v int64) int64 { return min(a, v) }, types.IntValue), nil
	default:
		return nil, fmt.Errorf("exec: aggregate %s not defined on int", kind)
	}
}

func floatAccumulator(kind expr.AggKind, ev evalFloat) (*accumulator, error) {
	switch kind {
	case expr.AggSum:
		return scalarAccumulator[float64](0, ev, func(a, v float64) float64 { return a + v }, types.FloatValue), nil
	case expr.AggMax:
		return scalarAccumulator(math.Inf(-1), ev, func(a, v float64) float64 { return math.Max(a, v) }, types.FloatValue), nil
	case expr.AggMin:
		return scalarAccumulator(math.Inf(1), ev, func(a, v float64) float64 { return math.Min(a, v) }, types.FloatValue), nil
	default:
		return nil, fmt.Errorf("exec: aggregate %s not defined on float", kind)
	}
}

func strAccumulator(kind expr.AggKind, ev evalStr) (*accumulator, error) {
	if kind == expr.AggMax {
		return scalarAccumulator("", ev, func(a, v string) string { return max(a, v) }, types.StringValue), nil
	}
	return scalarAccumulator("", ev, func(a, v string) string { return min(a, v) }, types.StringValue), nil
}

// reducePartial is the mergeable state of one Reduce evaluation: either the
// collected output rows (bag/list yield) or the accumulator set. Parallel
// workers each hold one and merge them at the pipeline breaker; the serial
// path holds exactly one.
type reducePartial struct {
	collect bool
	names   []string
	rows    []types.Value
	accs    []*accumulator
	// rowsCell, when profiled, receives the output cardinality at result
	// materialization — blocking roots never flow through a consume wrapper,
	// so they self-report (see profile.go).
	rowsCell *int64
}

func (p *reducePartial) reset() {
	p.rows = nil
	for i := range p.accs {
		p.accs[i] = p.accs[i].fresh()
	}
}

func (p *reducePartial) merge(o partialState) error {
	other, ok := o.(*reducePartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into reduce state", o)
	}
	if p.collect {
		p.rows = append(p.rows, other.rows...)
		return nil
	}
	for i := range p.accs {
		p.accs[i].absorb(other.accs[i].partial())
	}
	return nil
}

func (p *reducePartial) result() (*Result, error) {
	if p.collect {
		if p.rowsCell != nil {
			*p.rowsCell = int64(len(p.rows))
		}
		return &Result{Cols: []string{p.names[0]}, Rows: p.rows}, nil
	}
	if p.rowsCell != nil {
		*p.rowsCell = 1
	}
	vals := make([]types.Value, len(p.accs))
	for i, acc := range p.accs {
		vals[i] = acc.result()
	}
	return &Result{Cols: p.names, Rows: []types.Value{types.RecordValue(p.names, vals)}}, nil
}

// compileReducePartial compiles the Reduce pipeline into a driver plus the
// mergeable partial state it folds into. A vectorizable pipeline compiles
// into batch kernels instead (vagg.go); both states implement partialState,
// and all parallel clones of a plan make the same choice.
func (c *Compiler) compileReducePartial(red *algebra.Reduce) (func(r *vbuf.Regs) error, partialState, error) {
	if run, vst, ok, err := c.tryVecReduce(red); err != nil {
		return nil, nil, err
	} else if ok {
		return run, vst, nil
	}
	if run, vst, ok, err := c.tryVecCollect(red); err != nil {
		return nil, nil, err
	} else if ok {
		return run, vst, nil
	}
	st := &reducePartial{names: red.Names, rowsCell: c.rootRowsCell(red)}
	var pred evalBool
	gauge := c.mem
	var pending int64

	// Collection yield: one bag/list aggregate produces the result rows.
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		st.collect = true
		var ev evalVal
		run, err := c.compileChildThen(red.Child, func() (Kont, error) {
			e, err := c.compileVal(red.Aggs[0].Arg)
			if err != nil {
				return nil, err
			}
			ev = e
			if red.Pred != nil {
				p, err := c.compileBool(red.Pred)
				if err != nil {
					return nil, err
				}
				pred = p
			}
			return func(r *vbuf.Regs) error {
				if pred != nil {
					if v, ok := pred(r); !ok || !v {
						return nil
					}
				}
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				st.rows = append(st.rows, v)
				if gauge != nil {
					if pending += 64; pending >= memQuantum {
						err := gauge.charge(pending)
						pending = 0
						if err != nil {
							return err
						}
					}
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		return run, st, nil
	}

	// Aggregate yield: fold every accumulator in one pass.
	st.accs = make([]*accumulator, len(red.Aggs))
	run, err := c.compileChildThen(red.Child, func() (Kont, error) {
		for i, a := range red.Aggs {
			acc, err := c.compileAgg(a)
			if err != nil {
				return nil, err
			}
			st.accs[i] = acc
		}
		if red.Pred != nil {
			p, err := c.compileBool(red.Pred)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		return func(r *vbuf.Regs) error {
			if pred != nil {
				if v, ok := pred(r); !ok || !v {
					return nil
				}
			}
			for _, acc := range st.accs {
				acc.fold(r)
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return run, st, nil
}

// compileReduce compiles the root Reduce for serial execution.
func (c *Compiler) compileReduce(red *algebra.Reduce) (func(r *vbuf.Regs) (*Result, error), error) {
	run, st, err := c.compileReducePartial(red)
	if err != nil {
		return nil, err
	}
	return func(r *vbuf.Regs) (*Result, error) {
		// Re-arm state for repeated executions of the same program.
		st.reset()
		if err := run(r); err != nil {
			return nil, err
		}
		return st.result()
	}, nil
}

// group holds one hash-group's accumulators during Nest evaluation.
type group struct {
	hash    uint64
	keyVals []types.Value
	accs    []*accumulator
}

// nestPartial is the mergeable grouping state of one Nest evaluation.
// Merging adopts groups first seen by later workers in worker order, so the
// merged first-encounter order equals the serial scan order (workers hold
// contiguous, ordered morsel ranges).
type nestPartial struct {
	outNames  []string
	freshAccs func() []*accumulator

	// Fast path: single integer key. NULL keys form their own group
	// (intNull), matching the general path and the Volcano baseline.
	singleInt bool
	intGroups map[int64][]*accumulator
	intOrder  []int64
	intNull   []*accumulator

	// General path: composite/boxed keys hashed by canonical value hash.
	groups map[uint64][]*group
	order  []*group

	// rowsCell, when profiled, receives the group count at result
	// materialization (see reducePartial.rowsCell).
	rowsCell *int64
}

func (p *nestPartial) reset() {
	if p.singleInt {
		p.intGroups = map[int64][]*accumulator{}
		p.intOrder = nil
		p.intNull = nil
		return
	}
	p.groups = map[uint64][]*group{}
	p.order = nil
}

func (p *nestPartial) merge(o partialState) error {
	other, ok := o.(*nestPartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into nest state", o)
	}
	if p.singleInt {
		for _, k := range other.intOrder {
			accs, exists := p.intGroups[k]
			if !exists {
				p.intGroups[k] = other.intGroups[k]
				p.intOrder = append(p.intOrder, k)
				continue
			}
			for i, acc := range accs {
				acc.absorb(other.intGroups[k][i].partial())
			}
		}
		if other.intNull != nil {
			if p.intNull == nil {
				p.intNull = other.intNull
			} else {
				for i, acc := range p.intNull {
					acc.absorb(other.intNull[i].partial())
				}
			}
		}
		return nil
	}
	for _, og := range other.order {
		var g *group
		for _, cand := range p.groups[og.hash] {
			if sameKeys(cand.keyVals, og.keyVals) {
				g = cand
				break
			}
		}
		if g == nil {
			p.groups[og.hash] = append(p.groups[og.hash], og)
			p.order = append(p.order, og)
			continue
		}
		for i, acc := range g.accs {
			acc.absorb(og.accs[i].partial())
		}
	}
	return nil
}

func sameKeys(a, b []types.Value) bool {
	for i := range a {
		if types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func (p *nestPartial) result() (*Result, error) {
	if p.rowsCell != nil {
		if p.singleInt {
			n := int64(len(p.intOrder))
			if p.intNull != nil {
				n++
			}
			*p.rowsCell = n
		} else {
			*p.rowsCell = int64(len(p.order))
		}
	}
	if p.singleInt {
		sort.Slice(p.intOrder, func(i, j int) bool { return p.intOrder[i] < p.intOrder[j] })
		rows := make([]types.Value, 0, len(p.intOrder)+1)
		if p.intNull != nil {
			vals := make([]types.Value, 0, len(p.outNames))
			vals = append(vals, types.NullValue())
			for _, acc := range p.intNull {
				vals = append(vals, acc.result())
			}
			rows = append(rows, types.RecordValue(p.outNames, vals))
		}
		for _, k := range p.intOrder {
			vals := make([]types.Value, 0, len(p.outNames))
			vals = append(vals, types.IntValue(k))
			for _, acc := range p.intGroups[k] {
				vals = append(vals, acc.result())
			}
			rows = append(rows, types.RecordValue(p.outNames, vals))
		}
		return &Result{Cols: p.outNames, Rows: rows}, nil
	}
	rows := make([]types.Value, 0, len(p.order))
	for _, g := range p.order {
		vals := make([]types.Value, 0, len(p.outNames))
		vals = append(vals, g.keyVals...)
		for _, acc := range g.accs {
			vals = append(vals, acc.result())
		}
		rows = append(rows, types.RecordValue(p.outNames, vals))
	}
	return &Result{Cols: p.outNames, Rows: rows}, nil
}

// compileNestPartial compiles the Nest pipeline (radix-hash grouping with
// per-group accumulators, §5.1) into a driver plus its mergeable state.
// Single integer group-by keys take a specialized path — vectorized when
// the pipeline below allows it (vagg.go), tuple-at-a-time otherwise.
func (c *Compiler) compileNestPartial(n *algebra.Nest) (func(r *vbuf.Regs) error, partialState, error) {
	if run, vst, ok, err := c.tryVecNest(n); err != nil {
		return nil, nil, err
	} else if ok {
		return run, vst, nil
	}
	var pred evalBool
	protoAccs := make([]*accumulator, len(n.Aggs))
	gauge := c.mem
	var pending int64
	// Estimated footprint of one new group: map/order bookkeeping plus the
	// per-group accumulator states.
	groupBytes := int64(96 + len(n.GroupBy)*48 + len(n.Aggs)*96)
	st := &nestPartial{
		rowsCell: c.rootRowsCell(n),
		outNames: append(append([]string{}, n.GroupNames...), n.AggNames...),
		freshAccs: func() []*accumulator {
			accs := make([]*accumulator, len(protoAccs))
			for i, p := range protoAccs {
				accs[i] = p.fresh()
			}
			return accs
		},
	}

	if len(n.GroupBy) == 1 {
		if t, err := c.typeOf(n.GroupBy[0]); err == nil && t.Kind() == types.KindInt {
			st.singleInt = true
		}
	}

	if st.singleInt {
		run, err := c.compileChildThen(n.Child, func() (Kont, error) {
			keyEval, err := c.compileInt(n.GroupBy[0])
			if err != nil {
				return nil, err
			}
			for i, a := range n.Aggs {
				acc, err := c.compileAgg(a)
				if err != nil {
					return nil, err
				}
				protoAccs[i] = acc
			}
			if n.Pred != nil {
				p, err := c.compileBool(n.Pred)
				if err != nil {
					return nil, err
				}
				pred = p
			}
			return func(r *vbuf.Regs) error {
				if pred != nil {
					if v, ok := pred(r); !ok || !v {
						return nil
					}
				}
				k, ok := keyEval(r)
				if !ok {
					// NULL key: its own group, like the general path.
					if st.intNull == nil {
						st.intNull = st.freshAccs()
						if gauge != nil {
							if pending += groupBytes; pending >= memQuantum {
								err := gauge.charge(pending)
								pending = 0
								if err != nil {
									return err
								}
							}
						}
					}
					for _, acc := range st.intNull {
						acc.fold(r)
					}
					return nil
				}
				accs, exists := st.intGroups[k]
				if !exists {
					accs = st.freshAccs()
					st.intGroups[k] = accs
					st.intOrder = append(st.intOrder, k)
					if gauge != nil {
						if pending += groupBytes; pending >= memQuantum {
							err := gauge.charge(pending)
							pending = 0
							if err != nil {
								return err
							}
						}
					}
				}
				for _, acc := range accs {
					acc.fold(r)
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		return run, st, nil
	}

	keyEvals := make([]evalVal, len(n.GroupBy))
	run, err := c.compileChildThen(n.Child, func() (Kont, error) {
		for i, g := range n.GroupBy {
			ev, err := c.compileVal(g)
			if err != nil {
				return nil, err
			}
			keyEvals[i] = ev
		}
		for i, a := range n.Aggs {
			acc, err := c.compileAgg(a)
			if err != nil {
				return nil, err
			}
			protoAccs[i] = acc
		}
		if n.Pred != nil {
			p, err := c.compileBool(n.Pred)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		return func(r *vbuf.Regs) error {
			if pred != nil {
				if v, ok := pred(r); !ok || !v {
					return nil
				}
			}
			h := uint64(14695981039346656037)
			keyVals := make([]types.Value, len(keyEvals))
			for i, ev := range keyEvals {
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				keyVals[i] = v
				h = hashMix(h, v.Hash())
			}
			var g *group
			for _, cand := range st.groups[h] {
				if sameKeys(cand.keyVals, keyVals) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &group{hash: h, keyVals: keyVals, accs: st.freshAccs()}
				st.groups[h] = append(st.groups[h], g)
				st.order = append(st.order, g)
				if gauge != nil {
					if pending += groupBytes; pending >= memQuantum {
						err := gauge.charge(pending)
						pending = 0
						if err != nil {
							return err
						}
					}
				}
			}
			for _, acc := range g.accs {
				acc.fold(r)
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return run, st, nil
}

// compileNest compiles the root Nest for serial execution.
func (c *Compiler) compileNest(n *algebra.Nest) (func(r *vbuf.Regs) (*Result, error), error) {
	run, st, err := c.compileNestPartial(n)
	if err != nil {
		return nil, err
	}
	return func(r *vbuf.Regs) (*Result, error) {
		st.reset()
		if err := run(r); err != nil {
			return nil, err
		}
		return st.result()
	}, nil
}
