// Morsel-driven intra-query parallelism for the closure-compiled engine.
//
// CompileParallel partitions the plan's driving scan (its leftmost leaf)
// into morsels — contiguous record-ordinal ranges that the input plug-in
// derives from its structural index, byte-balanced for the raw formats —
// and compiles one full pipeline clone per worker. Each clone is an
// independent compilation: its own register-file layout (vbuf.Alloc), its
// own typed closures, and its own thread-local root state (accumulators,
// group tables, or row buffers). Workers therefore share no mutable state
// except the sharedRun rendezvous, which owns the two things that must
// happen exactly once per run: hash-join build sides (built by the first
// worker to arrive, then shared read-only) and cache population (per-morsel
// fragments concatenated and registered complete by the coordinator).
//
// Morsels are assigned statically, one contiguous range per worker in scan
// order. That makes the merged output deterministic and byte-identical to
// the serial program: concatenating bag rows in worker order reproduces the
// serial scan order, and merging group tables in worker order reproduces
// the serial first-encounter order. The one exception is float SUM/AVG,
// where merging per-morsel partial sums reassociates floating-point
// addition and can shift the last ULPs relative to serial; results remain
// deterministic for a fixed worker count.
package exec

import (
	"fmt"
	"sync"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/expr"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/vbuf"
)

// sharedJoin is the once-per-run rendezvous for one hash-join build side.
type sharedJoin struct {
	once sync.Once
	jt   *joinTable
	err  error
}

// sharedRun is the cross-worker state of one parallel execution. It is
// reset at the start of every Run of the parallel program.
type sharedRun struct {
	workers int

	mu    sync.Mutex
	joins map[string]*sharedJoin
	// frags collects per-morsel cache fragments: block key → one fragment
	// per worker, indexed by worker ID (i.e. morsel order).
	frags map[string][]*cache.Block
	// registered dedupes full-block registrations from non-driving scans
	// that every worker executes.
	registered map[string]bool
}

func newSharedRun(workers int) *sharedRun {
	sh := &sharedRun{workers: workers}
	sh.reset()
	return sh
}

func (sh *sharedRun) reset() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.joins = map[string]*sharedJoin{}
	sh.frags = map[string][]*cache.Block{}
	sh.registered = map[string]bool{}
}

// joinFor returns the rendezvous for a build-side fingerprint, creating it
// on first use.
func (sh *sharedRun) joinFor(fp string) *sharedJoin {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sj, ok := sh.joins[fp]
	if !ok {
		sj = &sharedJoin{}
		sh.joins[fp] = sj
	}
	return sj
}

// addFrag stashes the cache fragment one worker's morsel produced.
func (sh *sharedRun) addFrag(worker int, blk *cache.Block) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := blk.Dataset + "\x00" + blk.Key
	fr := sh.frags[key]
	if fr == nil {
		fr = make([]*cache.Block, sh.workers)
		sh.frags[key] = fr
	}
	fr[worker] = blk
}

// registerOnce registers a complete block produced redundantly by every
// worker (a non-driving scan), letting exactly one copy through.
func (sh *sharedRun) registerOnce(m *cache.Manager, blk *cache.Block) {
	key := blk.Dataset + "\x00" + blk.Key
	sh.mu.Lock()
	if sh.registered[key] {
		sh.mu.Unlock()
		return
	}
	sh.registered[key] = true
	sh.mu.Unlock()
	m.Register(blk)
}

// finishCaches concatenates the per-morsel fragments into full columns and
// registers them — only when every worker contributed its fragment and the
// union covers the whole dataset, so a block is never registered complete
// unless it actually is.
func (sh *sharedRun) finishCaches(m *cache.Manager, totalRows int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, parts := range sh.frags {
		var rows int64
		complete := true
		for _, p := range parts {
			if p == nil {
				complete = false
				break
			}
			rows += p.Rows
		}
		if !complete || rows != totalRows {
			continue
		}
		// ConcatBlocks validates the fragments and propagates Complete (all
		// builder fragments are finished, so the union is complete); nil means
		// the fragments were inconsistent and must not be registered.
		if blk := cache.ConcatBlocks(parts); blk != nil {
			m.Register(blk)
		}
	}
}

// drivingScan returns the plan's leftmost leaf scan — the pipeline's source
// operator, whose records every produced tuple descends from — or nil.
func drivingScan(n algebra.Node) *algebra.Scan {
	for n != nil {
		if s, ok := n.(*algebra.Scan); ok {
			return s
		}
		ch := n.Children()
		if len(ch) == 0 {
			return nil
		}
		n = ch[0]
	}
	return nil
}

// workerUnit is one compiled pipeline clone.
type workerUnit struct {
	alloc vbuf.Alloc
	run   func(r *vbuf.Regs) error
	state partialState
}

// CompileParallel compiles plan into a morsel-parallel program over at most
// `workers` pipeline clones. It falls back to the serial Compile when the
// plan cannot be partitioned: a single worker, no driving scan, a plug-in
// without the Partitioner capability, or fewer than two morsels. The
// returned Program behaves exactly like a serial one (including WrapResult
// post-processing for ORDER BY / LIMIT), so callers need not care which
// they got.
func CompileParallel(plan algebra.Node, env *Env, workers int) (*Program, error) {
	if workers <= 1 {
		return Compile(plan, env)
	}
	drive := drivingScan(plan)
	if drive == nil {
		return Compile(plan, env)
	}
	ds, in, err := env.Catalog.Dataset(drive.Dataset)
	if err != nil {
		return nil, err
	}
	part, ok := in.(plugin.Partitioner)
	if !ok {
		return Compile(plan, env)
	}
	morsels, err := part.PartitionScan(ds, workers)
	if err != nil {
		return nil, err
	}
	if len(morsels) < 2 {
		return Compile(plan, env)
	}
	totalRows := in.Cardinality(ds)

	sh := newSharedRun(len(morsels))
	units := make([]*workerUnit, len(morsels))
	// All clones share one cancellation token and one memory gauge: a signal
	// from any worker (or the context) stops every sibling's scan driver, and
	// charges from all clones count against the same budget.
	cancel := &plugin.Cancel{}
	var gauge *memGauge
	if env.MemBudget > 0 {
		gauge = &memGauge{budget: env.MemBudget}
	}
	// All pipeline clones share one profiling state; each writes the cells
	// indexed by its worker ID.
	var prof *progProf
	if env.Profile != nil {
		prof = newProgProf(plan, env.Profile, len(morsels))
	}
	var explain []string
	var vectorized, sorted bool
	for i := range morsels {
		c := &Compiler{
			env:       env,
			bindings:  map[string]*binding{},
			envTypes:  expr.Env{},
			driveScan: drive,
			morsel:    &morsels[i],
			shared:    sh,
			workerID:  i,
			prof:      prof,
			cancel:    cancel,
			mem:       gauge,
		}
		algebra.Walk(plan, func(n algebra.Node) bool {
			for name, t := range n.Bindings() {
				if _, exists := c.envTypes[name]; !exists {
					c.envTypes[name] = t
				}
			}
			return true
		})
		c.analyze(plan)

		var run func(r *vbuf.Regs) error
		var st partialState
		switch root := plan.(type) {
		case *algebra.Reduce:
			run, st, err = c.compileReducePartial(root)
		case *algebra.Nest:
			run, st, err = c.compileNestPartial(root)
		default:
			run, st, err = c.compileBarePartial(plan)
		}
		if err != nil {
			return nil, err
		}
		units[i] = &workerUnit{alloc: c.alloc, run: run, state: st}
		vectorized = vectorized || c.vectorized
		sorted = sorted || c.sorted
		if i == 0 {
			explain = c.explain
		}
	}
	explain = append(explain,
		fmt.Sprintf("parallel: %d workers over %s (%d morsels)", len(morsels), drive.Dataset, len(morsels)))

	caches := env.Caches
	met := env.Metrics
	fingerprint := plan.Fingerprint()
	run := func(_ *vbuf.Regs) (*Result, error) {
		sh.reset()
		if met != nil {
			met.WorkersLaunched.Add(int64(len(units)))
			met.MorselsScanned.Add(int64(len(morsels)))
			met.ActiveWorkers.Add(int64(len(units)))
			defer met.ActiveWorkers.Add(-int64(len(units)))
		}
		var spans []obs.Span
		if prof != nil {
			spans = make([]obs.Span, len(units))
		}
		var wg sync.WaitGroup
		errs := make([]error, len(units))
		for i, u := range units {
			wg.Add(1)
			go func(i int, u *workerUnit) {
				defer wg.Done()
				// Per-worker panic barrier: a panicking goroutine would kill
				// the whole process before the query-boundary recover could
				// see it, so each clone converts its own panics — and signals
				// the shared token so sibling scans abort instead of running
				// their morsels to completion.
				defer func() {
					if rec := recover(); rec != nil {
						errs[i] = newPanicError(fingerprint, rec)
						cancel.Signal(errs[i])
					}
				}()
				t0 := time.Now()
				u.state.reset()
				regs := vbuf.NewRegs(&u.alloc)
				if errs[i] = u.run(regs); errs[i] != nil {
					cancel.Signal(errs[i])
				}
				if spans != nil {
					spans[i] = obs.Span{
						Name:  fmt.Sprintf("worker %d (rows %d..%d)", i, morsels[i].Start, morsels[i].End),
						Start: t0,
						Dur:   time.Since(t0),
					}
				}
			}(i, u)
		}
		wg.Wait()
		if prof != nil {
			// When morsel events were sampled, hang each worker's event spans
			// under its execute span for trace export.
			if prof.events {
				for i := range spans {
					spans[i].Children = prof.eventsOf(i)
				}
			}
			prof.workerSpans = spans
		}
		// Prefer a panic over the derived errors siblings return after the
		// token fires, so the caller sees the root cause.
		var firstErr error
		for _, e := range errs {
			if e == nil {
				continue
			}
			if _, isPanic := e.(*PanicError); isPanic {
				firstErr = e
				break
			}
			if firstErr == nil {
				firstErr = e
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		// Pipeline breaker: merge the thread-local partials in worker
		// (= morsel, = scan) order.
		merged := units[0].state
		for _, u := range units[1:] {
			if err := merged.merge(u.state); err != nil {
				return nil, err
			}
		}
		// All workers succeeded: cache fragments now tile the dataset, so
		// the concatenated blocks can be registered, complete, exactly once.
		tC := time.Now()
		sh.finishCaches(caches, totalRows)
		caches.AddBuildNanos(int64(time.Since(tC)))
		return merged.result()
	}
	p := &Program{
		alloc: units[0].alloc, run: run, Explain: explain,
		Workers: len(units), Morsels: len(morsels),
		Fingerprint: fingerprint, cancel: cancel, mem: gauge,
		Vectorized: vectorized, Sorted: sorted,
	}
	p.attachProf(prof)
	return p, nil
}
