// Index-aware scan wiring: connects the optimizer's pushed-down predicates
// (algebra.Scan.Pushed) to the cache layer's zone maps and bitmap indexes.
//
// setupIndexHints runs during scan analysis and produces two closures on the
// scanInfo: zoneSkip, a window test the full-cache drivers consult to skip
// 1024-row windows whose zone-map ranges cannot satisfy a pushed predicate,
// and credit, a run-time notification that feeds the adaptive index-selection
// policy (cache.Manager.CreditScan). tryBitmapFilter then replaces compare
// kernels in the vectorized filter cascade with a precomputed-bitmap gather
// whenever a conjunct's column carries a bitmap index.
//
// Both paths are purely an access-path change: the Select operators above the
// scan still evaluate their predicates, so a wrong skip or bitmap could only
// lose rows, never add them — and the zone-map/bitmap semantics match the
// kernels exactly (comparisons never match NULL).
package exec

import (
	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/expr"
	"proteus/internal/stats"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// lowerCmp maps an expression comparison operator onto the cache layer's
// operator vocabulary.
func lowerCmp(op expr.BinKind) (cache.CmpOp, bool) {
	switch op {
	case expr.OpEq:
		return cache.CmpEq, true
	case expr.OpNe:
		return cache.CmpNe, true
	case expr.OpLt:
		return cache.CmpLt, true
	case expr.OpLe:
		return cache.CmpLe, true
	case expr.OpGt:
		return cache.CmpGt, true
	case expr.OpGe:
		return cache.CmpGe, true
	}
	return 0, false
}

// lowerPred lowers a pushed conjunct to a cache predicate. The optimizer
// guarantees the constant is non-null and the operator a comparison, but the
// lowering re-checks both so a stale plan can only fall back, never misfire.
func lowerPred(op expr.BinKind, v types.Value) (cache.Pred, bool) {
	cop, ok := lowerCmp(op)
	if !ok || v.IsNull() {
		return cache.Pred{}, false
	}
	p := cache.Pred{Op: cop, Kind: v.Kind}
	switch v.Kind {
	case types.KindInt:
		p.I = v.I
	case types.KindFloat:
		p.F = v.F
	case types.KindString:
		p.S = v.S
	case types.KindBool:
		p.B = v.I != 0
	default:
		return cache.Pred{}, false
	}
	return p, true
}

// estimatePredSel estimates a pushed predicate's selectivity from the
// statistics store (uniform-range for inequalities, distinct-count for
// equality), falling back to the global default.
func (c *Compiler) estimatePredSel(dataset string, pp algebra.PushedPred) float64 {
	st := c.env.Stats
	if st == nil {
		return stats.DefaultSelectivity
	}
	tbl, ok := st.Lookup(dataset)
	if !ok {
		return stats.DefaultSelectivity
	}
	switch pp.Op {
	case expr.OpEq:
		return tbl.SelEq(pp.Path)
	case expr.OpNe:
		return 1 - tbl.SelEq(pp.Path)
	case expr.OpLt, expr.OpLe:
		return tbl.SelLt(pp.Path, pp.V.AsFloat())
	case expr.OpGt, expr.OpGe:
		return tbl.SelGt(pp.Path, pp.V.AsFloat())
	}
	return stats.DefaultSelectivity
}

// setupIndexHints matches the scan's pushed predicates against its cached
// fields and installs the zoneSkip and credit closures. Under parallel
// compilation only the first worker notifies the policy — the clones compile
// one logical scan, not N.
func (c *Compiler) setupIndexHints(si *scanInfo) {
	if len(si.s.Pushed) == 0 || len(si.cachedFields) == 0 {
		return
	}
	caches := c.env.Caches
	primary := c.shared == nil || c.workerID == 0

	type predMatch struct {
		blk *cache.Block
		p   cache.Pred
	}
	var matched []predMatch
	var credited []string
	seen := map[string]bool{}
	for _, pp := range si.s.Pushed {
		var blk *cache.Block
		for i := range si.cachedFields {
			if si.cachedFields[i].path == pp.Path {
				blk = si.cachedFields[i].block
				break
			}
		}
		if blk == nil {
			continue
		}
		p, ok := lowerPred(pp.Op, pp.V)
		if !ok {
			continue
		}
		matched = append(matched, predMatch{blk: blk, p: p})
		if !seen[pp.Path] {
			seen[pp.Path] = true
			credited = append(credited, pp.Path)
			if primary {
				// May build an index right now (IndexOn), so the lookup pass
				// below runs strictly after every notification.
				caches.NotePredicate(si.s.Dataset, pp.Path, c.estimatePredSel(si.s.Dataset, pp))
			}
		}
	}

	type zoneCheck struct {
		z  *cache.ZoneMaps
		p  cache.Pred
		bm *cache.Bitmap // non-nil: precomputed result bitmap for this pred
	}
	var checks []zoneCheck
	for _, m := range matched {
		ck := zoneCheck{z: m.blk.Zones, p: m.p}
		if ix := m.blk.Index(); ix != nil {
			if bm, ok := ix.Lookup(m.p.Op, m.p); ok {
				ck.bm = bm
			}
		}
		if ck.z != nil || ck.bm != nil {
			checks = append(checks, ck)
		}
	}

	if len(checks) > 0 {
		// Per-query attribution: skips land on this worker's private counter
		// cell alongside the manager's cumulative count.
		var skips *int64
		if oc := c.opCtr(si.s); oc != nil {
			skips = &oc.zoneSkips
		}
		si.zoneSkip = func(lo, hi int64) bool {
			for _, ck := range checks {
				// The bitmap is exact where the zone range is conservative, so
				// try it first; either test failing empties the window.
				if ck.bm != nil && !ck.bm.AnyRange(lo, hi) {
					caches.CountZoneSkips(1)
					if skips != nil {
						*skips++
					}
					return true
				}
				if ck.z != nil && !ck.z.CanMatchWindow(lo, hi, ck.p) {
					caches.CountZoneSkips(1)
					if skips != nil {
						*skips++
					}
					return true
				}
			}
			return false
		}
	}
	if primary && len(credited) > 0 {
		dataset := si.s.Dataset
		si.credit = func() {
			for _, p := range credited {
				caches.CreditScan(dataset, p)
			}
		}
	}
}

// compileSegFilter compiles one Select predicate of a vectorized segment.
// Top-level conjuncts are split so each can independently take the bitmap
// path; everything else falls through to the general compare kernels.
func (c *Compiler) compileSegFilter(si *scanInfo, e expr.Expr) (vecFilter, error) {
	if x, ok := e.(*expr.BinOp); ok && x.Op == expr.OpAnd {
		l, err := c.compileSegFilter(si, x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileSegFilter(si, x.R)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch) {
			l(b)
			rr(b)
		}, nil
	}
	if f, ok := c.tryBitmapFilter(si, e); ok {
		return f, nil
	}
	if f, ok := c.tryDictFilter(si, e); ok {
		return f, nil
	}
	return c.compileVecFilter(e)
}

// indexedBlockFor resolves a column expression to the scan's cached block
// carrying a bitmap index, or nil when the column is not indexed.
func (c *Compiler) indexedBlockFor(si *scanInfo, col expr.Expr) (*cache.Block, string) {
	root, path, ok := expr.PathOf(col)
	if !ok || root != si.s.Binding || len(path) == 0 {
		return nil, ""
	}
	pk := pathKey(path)
	for i := range si.cachedFields {
		if si.cachedFields[i].path == pk && si.cachedFields[i].block.Index() != nil {
			return si.cachedFields[i].block, pk
		}
	}
	return nil, ""
}

// bitmapGather compiles a precomputed result bitmap into the zero-alloc
// selection-vector kernel shared by the bitmap and dictionary filter paths.
func (c *Compiler) bitmapGather(si *scanInfo, bm *cache.Bitmap) vecFilter {
	caches := c.env.Caches
	// Per-query attribution: hits land on this worker's private counter cell
	// alongside the manager's cumulative count.
	var hits *int64
	if oc := c.opCtr(si.s); oc != nil {
		hits = &oc.idxHits
	}
	return func(b *vbuf.Batch) {
		caches.CountIndexHit()
		if hits != nil {
			*hits++
		}
		if b.FullSel() {
			// Whole batch still selected: emit the bitmap window directly.
			b.Sel = bm.FillSel(b.Base, b.N, b.SelScratch())
			return
		}
		out, n := b.SelScratch(), 0
		base := b.Base
		for _, j := range b.Sel {
			if bm.Get(base + int64(j)) {
				out[n] = j
				n++
			}
		}
		b.Sel = out[:n]
	}
}

// tryBitmapFilter recognizes a column-vs-constant comparison whose column is
// served from a cache block carrying a bitmap index, and compiles it down to
// a selection-vector gather over the precomputed result bitmap: the lookup
// (bitmap OR/AND-NOT over sorted keys) happens once at compile time, and the
// per-batch kernel allocates nothing. Mixed int/float comparisons and
// operators the index cannot answer fall back to the compare kernels.
func (c *Compiler) tryBitmapFilter(si *scanInfo, e expr.Expr) (vecFilter, bool) {
	x, ok := e.(*expr.BinOp)
	if !ok || !x.Op.IsComparison() {
		return nil, false
	}
	op, col, k := x.Op, x.L, x.R
	if _, isConst := x.L.(*expr.Const); isConst {
		col, k = x.R, x.L
		op = flipCmp(op)
	}
	kc, isConst := k.(*expr.Const)
	if !isConst {
		return nil, false
	}
	blk, pk := c.indexedBlockFor(si, col)
	if blk == nil {
		return nil, false
	}
	p, ok := lowerPred(op, kc.V)
	if !ok {
		return nil, false
	}
	bm, ok := blk.Index().Lookup(p.Op, p)
	if !ok {
		return nil, false
	}
	c.note("scan %s: filter %s served by bitmap index on %s", si.s.Dataset, e, pk)
	return c.bitmapGather(si, bm), true
}

// tryDictFilter serves a LIKE predicate over a dictionary-encoded indexed
// string column by evaluating the pattern once per distinct dictionary
// entry and ORing the matching codes' bitmaps: the per-row work collapses
// to the same zero-alloc bitmap gather the equality path uses, with
// Dict.Len() substring tests paid once at compile time.
func (c *Compiler) tryDictFilter(si *scanInfo, e expr.Expr) (vecFilter, bool) {
	like, ok := e.(*expr.Like)
	if !ok {
		return nil, false
	}
	blk, pk := c.indexedBlockFor(si, like.E)
	if blk == nil {
		return nil, false
	}
	bm, ok := blk.Index().MatchStrings(like.Match)
	if !ok {
		return nil, false
	}
	c.note("scan %s: filter %s served by dictionary index on %s (%d distinct)",
		si.s.Dataset, e, pk, blk.Index().Dict().Len())
	return c.bitmapGather(si, bm), true
}
