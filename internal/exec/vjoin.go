// Batch-at-a-time hash join (the vectorized half of join.go). When a join
// input is a vectorizable Scan→Select* chain, the build side hashes its key
// columns batch-at-a-time and gathers surviving lanes straight from batch
// columns into the materialized table, and the probe side hashes up to 1024
// keys per call and scatters a lane into the register file only when it has
// a candidate match (or the join is outer). Both halves produce bit-for-bit
// the same joinTable layout and hashes as the tuple path, so cached build
// sides and the parallel once-built shared side are interchangeable between
// modes.
package exec

import (
	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// hashSeed is the FNV offset basis both join paths start key hashing from.
const hashSeed = uint64(14695981039346656037)

// appendBatch materializes one selected lane of a batch — the batch-side
// twin of append, returning the same byte estimates so memory accounting is
// identical in both modes. Only scalar slots reach this (vec-eligible
// chains cannot carry boxed columns).
func (mc *matCol) appendBatch(b *vbuf.Batch, j int32) int64 {
	nc := b.Null[mc.slot.Null]
	mc.nulls = append(mc.nulls, nc != nil && nc[j])
	switch mc.slot.Class {
	case vbuf.ClassInt:
		mc.ints = append(mc.ints, b.I[mc.slot.Idx][j])
		return 9
	case vbuf.ClassFloat:
		mc.floats = append(mc.floats, b.F[mc.slot.Idx][j])
		return 9
	case vbuf.ClassBool:
		mc.bools = append(mc.bools, b.B[mc.slot.Idx][j])
		return 2
	default: // ClassString
		s := b.S[mc.slot.Idx][j]
		mc.strs = append(mc.strs, s)
		return int64(len(s)) + 17
	}
}

// vecJoinSide decides — with no side effects, so the tuple path stays open —
// whether one join input can run batch-at-a-time: the input must be a
// vec-eligible chain and every key expression must compile to a column
// kernel. A nil result means the caller compiles that side tuple-at-a-time.
func (c *Compiler) vecJoinSide(n algebra.Node, keys []expr.Expr) *vecChain {
	ch := vecChainOf(n)
	if ch == nil {
		return nil
	}
	schema, ok := c.vecEligible(ch)
	if !ok {
		return nil
	}
	for _, k := range keys {
		if kk, ok := c.canVecExpr(k, schema, ch.scan.Binding); !ok || !kk.IsScalar() {
			return nil
		}
	}
	return ch
}

// vecKeyCol is one join-key column evaluated batch-at-a-time on the general
// (boxed-key) path: load runs the typed kernel once per batch, get boxes a
// single lane (ok=false for NULL — null keys never match).
type vecKeyCol struct {
	load func(b *vbuf.Batch)
	get  func(j int32) (types.Value, bool)
}

// compileVecKeyCols compiles each key expression to its typed kernel plus a
// per-lane boxing reader. The boxed values hash and compare exactly like
// the tuple path's evalVal results, keeping table layouts interchangeable.
func (c *Compiler) compileVecKeyCols(keys []expr.Expr) ([]*vecKeyCol, error) {
	out := make([]*vecKeyCol, len(keys))
	for i, k := range keys {
		t, err := c.typeOf(k)
		if err != nil {
			return nil, err
		}
		kc := &vecKeyCol{}
		switch t.Kind() {
		case types.KindInt:
			ev, err := c.compileVecInt(k)
			if err != nil {
				return nil, err
			}
			var col []int64
			var nn []bool
			kc.load = func(b *vbuf.Batch) { col, nn = ev(b) }
			kc.get = func(j int32) (types.Value, bool) {
				if nn != nil && nn[j] {
					return types.Value{}, false
				}
				return types.IntValue(col[j]), true
			}
		case types.KindFloat:
			ev, err := c.compileVecFloat(k)
			if err != nil {
				return nil, err
			}
			var col []float64
			var nn []bool
			kc.load = func(b *vbuf.Batch) { col, nn = ev(b) }
			kc.get = func(j int32) (types.Value, bool) {
				if nn != nil && nn[j] {
					return types.Value{}, false
				}
				return types.FloatValue(col[j]), true
			}
		case types.KindString:
			ev, err := c.compileVecStr(k)
			if err != nil {
				return nil, err
			}
			var col []string
			var nn []bool
			kc.load = func(b *vbuf.Batch) { col, nn = ev(b) }
			kc.get = func(j int32) (types.Value, bool) {
				if nn != nil && nn[j] {
					return types.Value{}, false
				}
				return types.StringValue(col[j]), true
			}
		case types.KindBool:
			ev, err := c.compileVecBool(k)
			if err != nil {
				return nil, err
			}
			var col []bool
			var nn []bool
			kc.load = func(b *vbuf.Batch) { col, nn = ev(b) }
			kc.get = func(j int32) (types.Value, bool) {
				if nn != nil && nn[j] {
					return types.Value{}, false
				}
				return types.BoolValue(col[j]), true
			}
		default:
			return nil, errVecKeyKind(t.Kind())
		}
		out[i] = kc
	}
	return out, nil
}

type errVecKeyKind types.Kind

func (e errVecKeyKind) Error() string { return "exec: join key kind is not batch-capable" }

// vecBuildIntTerminate materializes batches into the table on the
// all-integer fast path: key kernels run once per batch, then surviving
// lanes append keys, hash, and payload columns. jt is read through a getter
// because the parallel once-build path swaps in a fresh table per run.
func vecBuildIntTerminate(jtOf func() *joinTable, kerns []vecInt, keyRowBytes int64, gauge *memGauge, pending *int64) func(b *vbuf.Batch, r *vbuf.Regs) error {
	keyCols := make([][]int64, len(kerns))
	keyNulls := make([][]bool, len(kerns))
	return func(b *vbuf.Batch, r *vbuf.Regs) error {
		jt := jtOf()
		for i, kv := range kerns {
			keyCols[i], keyNulls[i] = kv(b)
		}
		for _, j := range b.Sel {
			h := hashSeed
			valid := true
			for i := range kerns {
				if nn := keyNulls[i]; nn != nil && nn[j] {
					valid = false
					break
				}
				h = hashMix(h, hashInt(keyCols[i][j]))
			}
			if !valid {
				continue // null keys never match
			}
			for i := range kerns {
				jt.intKeys[i] = append(jt.intKeys[i], keyCols[i][j])
			}
			jt.hashes = append(jt.hashes, h)
			if gauge == nil {
				for _, col := range jt.cols {
					col.appendBatch(b, j)
				}
				continue
			}
			nb := keyRowBytes
			for _, col := range jt.cols {
				nb += col.appendBatch(b, j)
			}
			if *pending += nb; *pending >= memQuantum {
				err := gauge.charge(*pending)
				*pending = 0
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// vecBuildValTerminate is the general-key build terminate: typed kernels
// plus per-lane boxing, hashed with Value.Hash like the tuple path.
func vecBuildValTerminate(jtOf func() *joinTable, keys []*vecKeyCol, keyRowBytes int64, gauge *memGauge, pending *int64) func(b *vbuf.Batch, r *vbuf.Regs) error {
	vk := make([]types.Value, len(keys))
	return func(b *vbuf.Batch, r *vbuf.Regs) error {
		jt := jtOf()
		for _, kc := range keys {
			kc.load(b)
		}
		for _, j := range b.Sel {
			h := hashSeed
			valid := true
			for i, kc := range keys {
				v, ok := kc.get(j)
				if !ok {
					valid = false
					break
				}
				vk[i] = v
				h = hashMix(h, v.Hash())
			}
			if !valid {
				continue
			}
			for i := range keys {
				jt.valKeys[i] = append(jt.valKeys[i], vk[i])
			}
			jt.hashes = append(jt.hashes, h)
			if gauge == nil {
				for _, col := range jt.cols {
					col.appendBatch(b, j)
				}
				continue
			}
			nb := keyRowBytes
			for _, col := range jt.cols {
				nb += col.appendBatch(b, j)
			}
			if *pending += nb; *pending >= memQuantum {
				err := gauge.charge(*pending)
				*pending = 0
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// vecProbeSpec carries the probe terminate's compiled dependencies.
type vecProbeSpec struct {
	jtOf       func() *joinTable
	scatter    func(b *vbuf.Batch, r *vbuf.Regs, j int32)
	rightSlots []vbuf.Slot
	residual   evalBool
	outer      bool
	consume    Kont
}

// vecProbeIntTerminate probes up to BatchSize keys per call on the
// all-integer fast path. Phase 1 evaluates and hashes the key columns for
// the whole batch; phase 2 walks each selected lane's bucket chain,
// scattering the lane into the register file lazily — only matches (and
// outer-join misses) ever pay the batch→tuple boundary.
func vecProbeIntTerminate(spec vecProbeSpec, kerns []vecInt) func(b *vbuf.Batch, r *vbuf.Regs) error {
	keyCols := make([][]int64, len(kerns))
	keyNulls := make([][]bool, len(kerns))
	var hashes [vbuf.BatchSize]uint64
	var valids [vbuf.BatchSize]bool
	return func(b *vbuf.Batch, r *vbuf.Regs) error {
		jt := spec.jtOf()
		for i, kv := range kerns {
			keyCols[i], keyNulls[i] = kv(b)
		}
		for _, j := range b.Sel {
			h := hashSeed
			valid := true
			for i := range kerns {
				if nn := keyNulls[i]; nn != nil && nn[j] {
					valid = false
					break
				}
				h = hashMix(h, hashInt(keyCols[i][j]))
			}
			hashes[j], valids[j] = h, valid
		}
		for _, j := range b.Sel {
			matched, scattered := false, false
			if valids[j] {
				h := hashes[j]
				for row := jt.heads[h&jt.mask]; row >= 0; row = jt.next[row] {
					if jt.hashes[row] != h {
						continue
					}
					equal := true
					for i := range kerns {
						if jt.intKeys[i][row] != keyCols[i][j] {
							equal = false
							break
						}
					}
					if !equal {
						continue
					}
					if !scattered {
						spec.scatter(b, r, j)
						scattered = true
					}
					for _, col := range jt.cols {
						col.restore(r, row)
					}
					if spec.residual != nil {
						if v, ok := spec.residual(r); !ok || !v {
							continue
						}
					}
					matched = true
					if err := spec.consume(r); err != nil {
						return err
					}
				}
			}
			if spec.outer && !matched {
				if !scattered {
					spec.scatter(b, r, j)
				}
				for _, s := range spec.rightSlots {
					r.Null[s.Null] = true
				}
				if err := spec.consume(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// vecProbeValTerminate is the general-key probe terminate: batch-evaluated
// typed kernels, per-lane boxing, Value.Hash/Compare matching the tuple
// path exactly.
func vecProbeValTerminate(spec vecProbeSpec, keys []*vecKeyCol) func(b *vbuf.Batch, r *vbuf.Regs) error {
	vk := make([]types.Value, len(keys))
	return func(b *vbuf.Batch, r *vbuf.Regs) error {
		jt := spec.jtOf()
		for _, kc := range keys {
			kc.load(b)
		}
		for _, j := range b.Sel {
			h := hashSeed
			valid := true
			for i, kc := range keys {
				v, ok := kc.get(j)
				if !ok {
					valid = false
					break
				}
				vk[i] = v
				h = hashMix(h, v.Hash())
			}
			matched, scattered := false, false
			if valid {
				for row := jt.heads[h&jt.mask]; row >= 0; row = jt.next[row] {
					if jt.hashes[row] != h {
						continue
					}
					equal := true
					for i := range keys {
						if types.Compare(jt.valKeys[i][row], vk[i]) != 0 {
							equal = false
							break
						}
					}
					if !equal {
						continue
					}
					if !scattered {
						spec.scatter(b, r, j)
						scattered = true
					}
					for _, col := range jt.cols {
						col.restore(r, row)
					}
					if spec.residual != nil {
						if v, ok := spec.residual(r); !ok || !v {
							continue
						}
					}
					matched = true
					if err := spec.consume(r); err != nil {
						return err
					}
				}
			}
			if spec.outer && !matched {
				if !scattered {
					spec.scatter(b, r, j)
				}
				for _, s := range spec.rightSlots {
					r.Null[s.Null] = true
				}
				if err := spec.consume(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
}
