package exec

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"proteus/internal/types"
)

func TestWireValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.NullValue(),
		types.BoolValue(true),
		types.BoolValue(false),
		types.IntValue(0),
		types.IntValue(-9007199254740993), // beyond float53: must survive exactly
		types.IntValue(math.MaxInt64),
		types.FloatValue(0.1),
		types.FloatValue(math.Copysign(0, -1)), // -0.0 bit pattern
		types.FloatValue(math.NaN()),
		types.FloatValue(math.Inf(1)),
		types.FloatValue(math.Inf(-1)),
		types.StringValue(""),
		types.StringValue("héllo\nworld"),
		types.ListValue(types.IntValue(1), types.StringValue("x")),
		types.BagValue(types.FloatValue(2.5), types.NullValue()),
		types.RecordValue([]string{"a", "b"}, []types.Value{types.IntValue(7), types.BoolValue(true)}),
	}
	for _, v := range vals {
		w, err := encodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := decodeValue(w)
		if err != nil {
			t.Fatalf("decode %v: %v", w, err)
		}
		if got.Kind != v.Kind {
			t.Fatalf("kind mismatch: want %v got %v", v.Kind, got.Kind)
		}
		switch v.Kind {
		case types.KindFloat:
			wantBits := math.Float64bits(v.F)
			gotBits := math.Float64bits(got.F)
			// NaN payloads may differ; any NaN-for-NaN is fine.
			if wantBits != gotBits && !(math.IsNaN(v.F) && math.IsNaN(got.F)) {
				t.Fatalf("float bits: want %x got %x", wantBits, gotBits)
			}
		default:
			if types.Compare(v, got) != 0 {
				t.Fatalf("value mismatch: want %v got %v", v, got)
			}
		}
	}
}

func TestWireValueRejectsMalformed(t *testing.T) {
	bad := []WireValue{
		{K: "z"},
		{K: "f", F: "not-a-float"},
		{K: "r", Names: []string{"a", "b"}, Vals: []WireValue{{K: "n"}}},
		{K: "l", Vals: []WireValue{{K: "q"}}},
	}
	for _, w := range bad {
		if _, err := decodeValue(w); err == nil {
			t.Fatalf("decode %+v: expected error", w)
		}
	}
}

func TestPartialStreamRoundTrip(t *testing.T) {
	p := &Partial{
		Shape:       ShapeGroup,
		Names:       []string{"k", "n"},
		Fingerprint: "fp123",
		Groups: []WireGroup{
			{Keys: []WireValue{{K: "s", S: "a"}}, Aggs: []WireAgg{{Kind: "count", I: 3}}},
			{Keys: []WireValue{{K: "n"}}, Aggs: []WireAgg{{Kind: "count", I: 1}}},
		},
	}
	var buf bytes.Buffer
	if err := p.EncodeStream(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodePartialStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Shape != p.Shape || got.Fingerprint != p.Fingerprint || len(got.Groups) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Groups[0].Keys[0].S != "a" || got.Groups[0].Aggs[0].I != 3 {
		t.Fatalf("group content mismatch: %+v", got.Groups[0])
	}
}

func TestPartialStreamAggShape(t *testing.T) {
	p := &Partial{
		Shape:   ShapeAgg,
		Names:   []string{"total"},
		Aggs:    []WireAgg{{Kind: "avg", F: "12.5", N: 4}},
		hasAggs: true,
	}
	var buf bytes.Buffer
	if err := p.EncodeStream(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodePartialStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.hasAggs || len(got.Aggs) != 1 || got.Aggs[0].Kind != "avg" {
		t.Fatalf("agg round trip mismatch: %+v", got)
	}
	// An empty aggregate set must still survive (zero rows folded).
	p2 := &Partial{Shape: ShapeAgg, Names: []string{"t"}, Aggs: []WireAgg{}, hasAggs: true}
	buf.Reset()
	if err := p2.EncodeStream(&buf); err != nil {
		t.Fatalf("encode empty aggs: %v", err)
	}
	if _, err := DecodePartialStream(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("decode empty aggs: %v", err)
	}
}

func TestPartialStreamRejectsTruncation(t *testing.T) {
	p := &Partial{
		Shape: ShapeBare,
		Names: []string{"x"},
		Rows:  []WireValue{{K: "i", I: 1}, {K: "i", I: 2}},
	}
	var buf bytes.Buffer
	if err := p.EncodeStream(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	full := buf.String()
	lines := strings.SplitAfter(strings.TrimRight(full, "\n"), "\n")
	// Drop the trailer: a stream that just stops is truncation, not data.
	noTrailer := strings.Join(lines[:len(lines)-1], "")
	if _, err := DecodePartialStream(strings.NewReader(noTrailer)); err == nil {
		t.Fatal("expected truncation error without trailer")
	}
	// Cut mid-line too.
	if _, err := DecodePartialStream(strings.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("expected error on mid-line cut")
	}
}

func TestPartialStreamRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no head":         "",
		"bad head json":   "{garbage\n",
		"unknown shape":   `{"shape":"mystery"}` + "\n" + `{"done":true,"units":0}` + "\n",
		"in-band error":   `{"shape":"bare","names":["x"]}` + "\n" + `{"error":"boom"}` + "\n",
		"unit miscount":   `{"shape":"bare","names":["x"]}` + "\n" + `{"row":{"k":"i","i":1}}` + "\n" + `{"done":true,"units":5}` + "\n",
		"empty unit line": `{"shape":"bare","names":["x"]}` + "\n" + `{}` + "\n" + `{"done":true,"units":1}` + "\n",
		"double agg set":  `{"shape":"agg","names":["x"]}` + "\n" + `{"aggs":[]}` + "\n" + `{"aggs":[]}` + "\n" + `{"done":true,"units":2}` + "\n",
		"head-line error": `{"error":"denied"}` + "\n",
		"bad unit json":   `{"shape":"bare","names":["x"]}` + "\n" + "nope\n" + `{"done":true,"units":1}` + "\n",
	}
	for name, stream := range cases {
		if _, err := DecodePartialStream(strings.NewReader(stream)); err == nil {
			t.Fatalf("%s: expected decode error", name)
		}
	}
}
