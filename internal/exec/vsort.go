// Vectorized collection and ORDER BY. A bag/list yield over a vectorizable
// chain accumulates typed columns straight from batches instead of boxing a
// record per row; when the engine pushes its ORDER BY / LIMIT spec into the
// compilation (Env.Sort), the sort runs as an index sort over the
// accumulated columns and only the emitted rows — at most LIMIT of them —
// are ever boxed. The tuple buffer the engine used to sort disappears on
// this path; Program.Sorted tells the engine not to sort again.
//
// OrderAndLimit at the bottom is the fallback for results that were still
// produced row-wise: column-wise key extraction (one Field lookup per row
// per key, not per comparison) followed by the same index sort.
package exec

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// SortSpec is the engine's ORDER BY / LIMIT request, pushed into compilation
// so an eligible plan can sort columns before boxing rows. By names output
// columns; Desc aligns with By (short = ascending); Limit 0 means no limit.
type SortSpec struct {
	By    []string
	Desc  []bool
	Limit int
}

// vecOutCol accumulates one output column across batches. Exactly one of
// the typed arrays is populated, per the column's kind.
type vecOutCol struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	bools  []bool
	strs   []string
	nulls  []bool
}

func (c *vecOutCol) rows() int { return len(c.nulls) }

func (c *vecOutCol) concat(o *vecOutCol) {
	c.ints = append(c.ints, o.ints...)
	c.floats = append(c.floats, o.floats...)
	c.bools = append(c.bools, o.bools...)
	c.strs = append(c.strs, o.strs...)
	c.nulls = append(c.nulls, o.nulls...)
}

func (c *vecOutCol) clear() {
	c.ints, c.floats, c.bools, c.strs, c.nulls = nil, nil, nil, nil, nil
}

// compare orders two rows of the column exactly like types.Compare orders
// their boxed values: null first, then the kind's natural order.
func (c *vecOutCol) compare(a, b int) int {
	an, bn := c.nulls[a], c.nulls[b]
	if an || bn {
		switch {
		case an == bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	switch c.kind {
	case types.KindInt:
		x, y := c.ints[a], c.ints[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case types.KindFloat:
		x, y := c.floats[a], c.floats[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case types.KindString:
		x, y := c.strs[a], c.strs[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case types.KindBool:
		x, y := c.bools[a], c.bools[b]
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0
}

// box materializes one row of the column.
func (c *vecOutCol) box(i int) types.Value {
	if c.nulls[i] {
		return types.NullValue()
	}
	switch c.kind {
	case types.KindInt:
		return types.IntValue(c.ints[i])
	case types.KindFloat:
		return types.FloatValue(c.floats[i])
	case types.KindString:
		return types.StringValue(c.strs[i])
	default:
		return types.BoolValue(c.bools[i])
	}
}

// vecColAppender evaluates one output field's kernel once per batch and
// appends the selected lanes onto the partial's column.
type vecColAppender func(b *vbuf.Batch, col *vecOutCol)

func (c *Compiler) compileVecColAppender(e expr.Expr, kind types.Kind) (vecColAppender, error) {
	switch kind {
	case types.KindInt:
		ev, err := c.compileVecInt(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch, col *vecOutCol) {
			v, nn := ev(b)
			for _, j := range b.Sel {
				col.ints = append(col.ints, v[j])
				col.nulls = append(col.nulls, nn != nil && nn[j])
			}
		}, nil
	case types.KindFloat:
		ev, err := c.compileVecFloat(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch, col *vecOutCol) {
			v, nn := ev(b)
			for _, j := range b.Sel {
				col.floats = append(col.floats, v[j])
				col.nulls = append(col.nulls, nn != nil && nn[j])
			}
		}, nil
	case types.KindString:
		ev, err := c.compileVecStr(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch, col *vecOutCol) {
			v, nn := ev(b)
			for _, j := range b.Sel {
				col.strs = append(col.strs, v[j])
				col.nulls = append(col.nulls, nn != nil && nn[j])
			}
		}, nil
	case types.KindBool:
		ev, err := c.compileVecBool(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch, col *vecOutCol) {
			v, nn := ev(b)
			for _, j := range b.Sel {
				col.bools = append(col.bools, v[j])
				col.nulls = append(col.nulls, nn != nil && nn[j])
			}
		}, nil
	}
	return nil, fmt.Errorf("exec: output kind %v is not batch-capable", kind)
}

// vecCollectPartial is the mergeable state of a columnar bag/list yield:
// one typed column per output field, sorted and boxed only at result time.
type vecCollectPartial struct {
	resName  string // the Reduce's synthetic result column name
	names    []string
	cols     []*vecOutCol
	keyIdx   []int // column indices of the sort keys; nil = no in-program sort
	desc     []bool
	limit    int
	rowsCell *int64
	gauge    *memGauge
}

func (p *vecCollectPartial) reset() {
	for _, c := range p.cols {
		c.clear()
	}
}

func (p *vecCollectPartial) merge(o partialState) error {
	other, ok := o.(*vecCollectPartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into vectorized collect state", o)
	}
	for i, c := range p.cols {
		c.concat(other.cols[i])
	}
	return nil
}

func (p *vecCollectPartial) result() (*Result, error) {
	n := 0
	if len(p.cols) > 0 {
		n = p.cols[0].rows()
	}
	if p.rowsCell != nil {
		*p.rowsCell = int64(n)
	}
	emit := n
	var perm []int32
	if len(p.keyIdx) > 0 {
		// The permutation and boxed output stand in for the engine's sort
		// buffer; charge them like the row-wise path would.
		if p.gauge != nil {
			if err := p.gauge.charge(64 * int64(n)); err != nil {
				return nil, err
			}
		}
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		keys := make([]*vecOutCol, len(p.keyIdx))
		for i, ci := range p.keyIdx {
			keys[i] = p.cols[ci]
		}
		desc := p.desc
		sort.Slice(perm, func(a, b int) bool {
			ra, rb := int(perm[a]), int(perm[b])
			for k, col := range keys {
				c := col.compare(ra, rb)
				if c == 0 {
					continue
				}
				if k < len(desc) && desc[k] {
					return c > 0
				}
				return c < 0
			}
			return ra < rb // index tiebreak reproduces the stable sort
		})
		if p.limit > 0 && emit > p.limit {
			emit = p.limit
		}
	}
	rows := make([]types.Value, emit)
	for i := 0; i < emit; i++ {
		ri := i
		if perm != nil {
			ri = int(perm[i])
		}
		vals := make([]types.Value, len(p.cols))
		for f, col := range p.cols {
			vals[f] = col.box(ri)
		}
		rows[i] = types.RecordValue(p.names, vals)
	}
	return &Result{Cols: []string{p.resName}, Rows: rows}, nil
}

// tryVecCollect compiles a bag/list Reduce over a vectorizable chain whose
// yield is a record of batch-capable scalar expressions into the columnar
// collect. ok=false leaves no side effects; the tuple path proceeds. When
// Env.Sort covers only columns this yield produces, the sort and limit run
// in-program (Compiler.sorted → Program.Sorted) and the engine skips its
// row-wise ORDER BY entirely.
func (c *Compiler) tryVecCollect(red *algebra.Reduce) (func(r *vbuf.Regs) error, *vecCollectPartial, bool, error) {
	if len(red.Aggs) != 1 || (red.Aggs[0].Kind != expr.AggBag && red.Aggs[0].Kind != expr.AggList) {
		return nil, nil, false, nil
	}
	rec, ok := red.Aggs[0].Arg.(*expr.RecordCtor)
	if !ok {
		return nil, nil, false, nil
	}
	ch := vecChainOf(red.Child)
	if ch == nil {
		return nil, nil, false, nil
	}
	schema, ok := c.vecEligible(ch)
	if !ok {
		return nil, nil, false, nil
	}
	kinds := make([]types.Kind, len(rec.Exprs))
	for i, e := range rec.Exprs {
		k, ok := c.canVecExpr(e, schema, ch.scan.Binding)
		if !ok || !k.IsScalar() {
			return nil, nil, false, nil
		}
		kinds[i] = k
	}
	if red.Pred != nil {
		if k, ok := c.canVecExpr(red.Pred, schema, ch.scan.Binding); !ok || k != types.KindBool {
			return nil, nil, false, nil
		}
	}

	seg, err := c.compileVecSeg(ch)
	if err != nil {
		return nil, nil, true, err
	}
	var predFilter vecFilter
	if red.Pred != nil {
		predFilter, err = c.compileVecFilter(red.Pred)
		if err != nil {
			return nil, nil, true, err
		}
	}
	st := &vecCollectPartial{
		resName:  red.Names[0],
		names:    rec.Names,
		rowsCell: c.rootRowsCell(red),
		gauge:    c.mem,
	}
	appenders := make([]vecColAppender, len(rec.Exprs))
	for i, e := range rec.Exprs {
		app, err := c.compileVecColAppender(e, kinds[i])
		if err != nil {
			return nil, nil, true, err
		}
		appenders[i] = app
		st.cols = append(st.cols, &vecOutCol{kind: kinds[i]})
	}

	// Adopt the engine's ORDER BY / LIMIT when every key is one of this
	// yield's columns; otherwise the engine sorts the boxed result itself.
	if s := c.env.Sort; s != nil && len(s.By) > 0 {
		idx := make([]int, 0, len(s.By))
		for _, by := range s.By {
			found := -1
			for i, name := range rec.Names {
				if name == by {
					found = i
					break
				}
			}
			if found < 0 {
				idx = nil
				break
			}
			idx = append(idx, found)
		}
		if idx != nil {
			st.keyIdx = idx
			st.desc = append([]bool(nil), s.Desc...)
			st.limit = s.Limit
			c.sorted = true
			c.note("order by: columnar index sort over %d collected columns (limit %d)", len(idx), s.Limit)
		}
	}

	gauge := c.mem
	cols := st.cols
	var pending int64
	terminate := func(b *vbuf.Batch, _ *vbuf.Regs) error {
		if predFilter != nil {
			predFilter(b)
		}
		for i, app := range appenders {
			app(b, cols[i])
		}
		if gauge != nil {
			if pending += 64 * int64(len(b.Sel)); pending >= memQuantum {
				err := gauge.charge(pending)
				pending = 0
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	c.note("reduce over %s: vectorized collect (%d columns)", ch.scan.Dataset, len(cols))
	return c.compileVecDriver(seg, terminate), st, true, nil
}

// OrderAndLimit sorts materialized rows by the named output columns and
// truncates to the limit (0 = no limit). The sort keys are extracted
// column-wise first — one Field lookup per row per key — and an index sort
// with index tiebreak reproduces the stable row sort without moving boxed
// rows until the final permutation.
func OrderAndLimit(res *Result, orderBy []string, desc []bool, limit int) (*Result, error) {
	if len(orderBy) > 0 && len(res.Rows) > 1 {
		keys := make([][]types.Value, len(orderBy))
		for k, col := range orderBy {
			keyCol := make([]types.Value, len(res.Rows))
			for i, row := range res.Rows {
				keyCol[i], _ = row.Field(col)
			}
			keys[k] = keyCol
		}
		perm := make([]int32, len(res.Rows))
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(a, b int) bool {
			ra, rb := perm[a], perm[b]
			for k := range keys {
				c := types.Compare(keys[k][ra], keys[k][rb])
				if c == 0 {
					continue
				}
				if k < len(desc) && desc[k] {
					return c > 0
				}
				return c < 0
			}
			return ra < rb
		})
		rows := make([]types.Value, len(res.Rows))
		for i, p := range perm {
			rows[i] = res.Rows[p]
		}
		res.Rows = rows
	}
	if limit > 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	return res, nil
}
