package exec_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"proteus/internal/algebra"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/expr"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// testEngine registers a small binary table t(a,b int; f float; s string)
// and a JSON dataset docs with nested arrays.
func testEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	csv := "" +
		"1,10,0.5,aa\n" +
		"2,20,1.5,bb\n" +
		"3,30,2.5,cc\n" +
		"4,40,3.5,dd\n" +
		"5,50,4.5,ee\n" +
		"6,60,5.5,ff\n"
	e.Mem().PutFile("mem://t.csv", []byte(csv))
	schema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "b", Type: types.Int},
		types.Field{Name: "f", Type: types.Float},
		types.Field{Name: "s", Type: types.String},
	)
	if err := e.Register("t", "mem://t.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	e.Mem().PutFile("mem://u.csv", []byte("2,200\n4,400\n9,900\n"))
	uschema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	if err := e.Register("u", "mem://u.csv", "csv", uschema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	docs := `{"id": 1, "kids": [{"k": 1}, {"k": 2}]}
{"id": 2, "kids": []}
{"id": 3, "kids": [{"k": 3}]}
`
	e.Mem().PutFile("mem://docs.json", []byte(docs))
	if err := e.Register("docs", "mem://docs.json", "json", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	return e
}

func compileRun(t testing.TB, e *engine.Engine, plan algebra.Node) *exec.Result {
	t.Helper()
	prog, err := exec.Compile(plan, &exec.Env{Catalog: e, Caches: e.Caches()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func fieldOf(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func TestOuterJoinProducesNulls(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	uSchema, _ := e.SchemaOf("u")
	plan := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("x", "a"), R: fieldOf("y", "a")},
		Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
		Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
		Outer: true,
	}
	res := compileRun(t, e, plan)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (every left row survives)", len(res.Rows))
	}
	nulls := 0
	for _, row := range res.Rows {
		y, _ := row.Field("y")
		if y.IsNull() {
			nulls++
		}
	}
	if nulls != 4 {
		t.Errorf("null right sides = %d, want 4", nulls)
	}
}

func TestInnerJoinRestoresBuildPayload(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	uSchema, _ := e.SchemaOf("u")
	plan := &algebra.Reduce{
		Aggs: []expr.Agg{
			{Kind: expr.AggCount},
			{Kind: expr.AggSum, Arg: fieldOf("y", "v")},
			{Kind: expr.AggMax, Arg: fieldOf("x", "s")},
		},
		Names: []string{"n", "sv", "ms"},
		Child: &algebra.Join{
			Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("x", "a"), R: fieldOf("y", "a")},
			Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
			Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
		},
	}
	res := compileRun(t, e, plan)
	row := res.Rows[0]
	if v, _ := row.Field("n"); v.AsInt() != 2 {
		t.Errorf("n = %s", v)
	}
	if v, _ := row.Field("sv"); v.AsInt() != 600 {
		t.Errorf("sum v = %s", v)
	}
	if v, _ := row.Field("ms"); v.S != "dd" {
		t.Errorf("max s = %s", v)
	}
}

func TestNestedLoopJoinFallback(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	uSchema, _ := e.SchemaOf("u")
	// Non-equi predicate: x.a > y.a (cannot hash) — 6 t-rows × 3 u-rows.
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Join{
			Pred:  &expr.BinOp{Op: expr.OpGt, L: fieldOf("x", "a"), R: fieldOf("y", "a")},
			Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
			Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
		},
	}
	res := compileRun(t, e, plan)
	// pairs with x.a > y.a: y=2 matches x∈{3..6}(4), y=4 matches x∈{5,6}(2), y=9 none.
	if got := res.Scalar().AsInt(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestOuterUnnestKeepsEmptyParents(t *testing.T) {
	e := testEngine(t)
	docsSchema, _ := e.SchemaOf("docs")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Unnest{
			Path:    fieldOf("d", "kids"),
			Binding: "c",
			Outer:   true,
			Child:   &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema},
		},
	}
	res := compileRun(t, e, plan)
	// 2 + 1 elements + 1 empty parent = 4 tuples.
	if got := res.Scalar().AsInt(); got != 4 {
		t.Fatalf("outer unnest count = %d, want 4", got)
	}
	// The inner variant drops the empty parent.
	inner := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Unnest{
			Path:    fieldOf("d", "kids"),
			Binding: "c",
			Child:   &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema},
		},
	}
	res = compileRun(t, e, inner)
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("inner unnest count = %d, want 3", got)
	}
}

func TestUnnestWithEmbeddedPredicate(t *testing.T) {
	e := testEngine(t)
	docsSchema, _ := e.SchemaOf("docs")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Unnest{
			Path:    fieldOf("d", "kids"),
			Binding: "c",
			Pred:    &expr.BinOp{Op: expr.OpGt, L: fieldOf("c", "k"), R: &expr.Const{V: types.IntValue(1)}},
			Child:   &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema},
		},
	}
	res := compileRun(t, e, plan)
	if got := res.Scalar().AsInt(); got != 2 {
		t.Fatalf("filtered unnest count = %d, want 2 (k=2,3)", got)
	}
}

func TestBagYieldWithRecordCtor(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	plan := &algebra.Reduce{
		Aggs: []expr.Agg{{Kind: expr.AggBag, Arg: &expr.RecordCtor{
			Names: []string{"twice", "tag"},
			Exprs: []expr.Expr{
				&expr.BinOp{Op: expr.OpMul, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(2)}},
				fieldOf("x", "s"),
			},
		}}},
		Names: []string{"result"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpLe, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(2)}},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
		},
	}
	res := compileRun(t, e, plan)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[1].Field("twice"); v.AsInt() != 4 {
		t.Errorf("row 1 = %s", res.Rows[1])
	}
	if v, _ := res.Rows[0].Field("tag"); v.S != "aa" {
		t.Errorf("row 0 = %s", res.Rows[0])
	}
}

func TestReduceEmbeddedPredicate(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Pred:  &expr.BinOp{Op: expr.OpGe, L: fieldOf("x", "b"), R: &expr.Const{V: types.IntValue(40)}},
		Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
	}
	res := compileRun(t, e, plan)
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestProgramRerunIsIdempotent(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("x", "b")}},
		Names: []string{"s"},
		Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
	}
	prog, err := exec.Compile(plan, &exec.Env{Catalog: e, Caches: e.Caches()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := prog.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Scalar().AsInt(); got != 210 {
			t.Fatalf("run %d: sum = %d, want 210 (accumulators must reset)", i, got)
		}
	}
}

func TestGeneralNestCompositeKeys(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	// Group by (a % 2, s-prefix-ish): use two keys, one int one string.
	plan := &algebra.Nest{
		GroupBy: []expr.Expr{
			&expr.BinOp{Op: expr.OpMod, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(2)}},
			fieldOf("x", "s"),
		},
		GroupNames: []string{"parity", "s"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
		Child:      &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
	}
	res := compileRun(t, e, plan)
	if len(res.Rows) != 6 { // every s is distinct
		t.Fatalf("groups = %d, want 6", len(res.Rows))
	}
}

// TestCompiledMatchesInterpretedProperty is the central oracle: for random
// predicate shapes, the compiled closure pipeline must agree with the
// tree-walking interpreter over the same rows.
func TestCompiledMatchesInterpretedProperty(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	rows := []struct {
		a, b int64
		f    float64
	}{
		{1, 10, 0.5}, {2, 20, 1.5}, {3, 30, 2.5}, {4, 40, 3.5}, {5, 50, 4.5}, {6, 60, 5.5},
	}
	check := func(c1, c2 int8, op1, op2 uint8, conj bool) bool {
		ops := []expr.BinKind{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
		p1 := &expr.BinOp{Op: ops[int(op1)%len(ops)], L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(int64(c1 % 8))}}
		p2 := &expr.BinOp{Op: ops[int(op2)%len(ops)],
			L: &expr.BinOp{Op: expr.OpAdd, L: fieldOf("x", "b"), R: fieldOf("x", "f")},
			R: &expr.Const{V: types.FloatValue(float64(c2))}}
		var pred expr.Expr
		if conj {
			pred = &expr.BinOp{Op: expr.OpAnd, L: p1, R: p2}
		} else {
			pred = &expr.BinOp{Op: expr.OpOr, L: p1, R: p2}
		}
		plan := &algebra.Reduce{
			Aggs:  []expr.Agg{{Kind: expr.AggCount}},
			Names: []string{"n"},
			Child: &algebra.Select{Pred: pred, Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema}},
		}
		prog, err := exec.Compile(plan, &exec.Env{Catalog: e, Caches: e.Caches()})
		if err != nil {
			return false
		}
		res, err := prog.Run()
		if err != nil {
			return false
		}
		// Interpret the same predicate by hand.
		var want int64
		for _, r := range rows {
			env := expr.ValueEnv{"x": types.RecordValue(
				[]string{"a", "b", "f"},
				[]types.Value{types.IntValue(r.a), types.IntValue(r.b), types.FloatValue(r.f)},
			)}
			v, err := expr.Eval(pred, env)
			if err != nil {
				return false
			}
			if v.Bool() {
				want++
			}
		}
		return res.Scalar().AsInt() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompileErrors(t *testing.T) {
	e := testEngine(t)
	tSchema, _ := e.SchemaOf("t")
	// Unknown dataset.
	bad := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Scan{Dataset: "ghost", Binding: "g", Type: tSchema},
	}
	if _, err := exec.Compile(bad, &exec.Env{Catalog: e, Caches: e.Caches()}); err == nil {
		t.Error("unknown dataset should fail compilation")
	}
	// Type error in predicate (string + int).
	bad2 := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Select{
			Pred: &expr.BinOp{Op: expr.OpLt,
				L: &expr.BinOp{Op: expr.OpAdd, L: fieldOf("x", "s"), R: &expr.Const{V: types.IntValue(1)}},
				R: &expr.Const{V: types.IntValue(5)}},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
		},
	}
	if _, err := exec.Compile(bad2, &exec.Env{Catalog: e, Caches: e.Caches()}); err == nil {
		t.Error("ill-typed predicate should fail compilation")
	}
	// Unnest of a non-collection field.
	bad3 := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Unnest{
			Path:    fieldOf("x", "a"),
			Binding: "c",
			Child:   &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema},
		},
	}
	if _, err := exec.Compile(bad3, &exec.Env{Catalog: e, Caches: e.Caches()}); err == nil {
		t.Error("unnest of scalar should fail compilation")
	}
}

func TestExplainNotes(t *testing.T) {
	e := engine.New(engine.Config{CacheEnabled: true})
	e.Mem().PutFile("mem://d.json", []byte(`{"a": 1}
{"a": 2}
`))
	if err := e.Register("d", "mem://d.json", "json", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QuerySQL("SELECT SUM(a) FROM d"); err != nil {
		t.Fatal(err)
	}
	prep, err := e.PrepareSQL("SELECT SUM(a) FROM d")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, note := range prep.Program.Explain {
		if note != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected compilation notes (cache hit) in Explain")
	}
	out := prep.Explain()
	if out == "" {
		t.Error("empty explain output")
	}
	_ = fmt.Sprintf("%v", out)
}
