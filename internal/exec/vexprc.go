// Vectorized expression compilation: the column-at-a-time twins of the
// evaluators in exprc.go. A kernel computes a whole column (plus a null
// column) per batch; filter kernels compact the batch's selection vector in
// place. NULL semantics replicate the tuple evaluators exactly — a nil null
// column means every row is valid, so the common all-valid case pays no
// null merging at all.
package exec

import (
	"cmp"
	"fmt"
	"strings"

	"proteus/internal/expr"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Vector kernels return a column view plus the matching null column (nil =
// all valid). Kernels compute rows [0, b.N) densely; consumers only read
// selected lanes, so dead lanes cost arithmetic, never correctness (division
// guards null-out their lanes instead of faulting).
type (
	vecInt   func(b *vbuf.Batch) ([]int64, []bool)
	vecFloat func(b *vbuf.Batch) ([]float64, []bool)
	vecBool  func(b *vbuf.Batch) ([]bool, []bool)
	vecStr   func(b *vbuf.Batch) ([]string, []bool)
)

// vecFilter compacts b.Sel to the rows satisfying a predicate (valid-true;
// NULL drops the row, like the tuple Select).
type vecFilter func(b *vbuf.Batch)

// mergeNulls ORs two null columns into scratch. Either input may be nil
// (all valid); the result may alias an input, so callers that need to write
// nulls must materialize their own column instead of calling this.
func mergeNulls(scratch, a, b []bool, n int) []bool {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return b
	case b == nil:
		return a
	}
	out := scratch[:n]
	for i := range n {
		out[i] = a[i] || b[i]
	}
	return out
}

// compileVecInt compiles an integer-typed expression into a column kernel.
func (c *Compiler) compileVecInt(e expr.Expr) (vecInt, error) {
	switch x := e.(type) {
	case *expr.Const:
		if !types.Numeric(types.TypeOf(x.V)) {
			return nil, fmt.Errorf("exec: constant %s is not numeric", x.V)
		}
		col := make([]int64, vbuf.BatchSize)
		for i := range col {
			col[i] = x.V.AsInt()
		}
		return func(*vbuf.Batch) ([]int64, []bool) { return col, nil }, nil
	case *expr.Ref, *expr.FieldAcc:
		s, ok := c.resolveSlot(e)
		if !ok || s.Class != vbuf.ClassInt {
			return nil, fmt.Errorf("exec: %s is not an int column", e)
		}
		return func(b *vbuf.Batch) ([]int64, []bool) { return b.I[s.Idx], b.Null[s.Null] }, nil
	case *expr.Neg:
		sub, err := c.compileVecInt(x.E)
		if err != nil {
			return nil, err
		}
		out := make([]int64, vbuf.BatchSize)
		return func(b *vbuf.Batch) ([]int64, []bool) {
			v, nn := sub(b)
			for i := range b.N {
				out[i] = -v[i]
			}
			return out, nn
		}, nil
	case *expr.BinOp:
		if !x.Op.IsArith() {
			return nil, fmt.Errorf("exec: %s does not yield an int", e)
		}
		l, err := c.compileVecInt(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVecInt(x.R)
		if err != nil {
			return nil, err
		}
		out := make([]int64, vbuf.BatchSize)
		nsc := make([]bool, vbuf.BatchSize)
		switch x.Op {
		case expr.OpAdd:
			return func(b *vbuf.Batch) ([]int64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] + bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpSub:
			return func(b *vbuf.Batch) ([]int64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] - bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpMul:
			return func(b *vbuf.Batch) ([]int64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] * bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpMod:
			// x % 0 is NULL (like the tuple path), so this kernel always
			// materializes its own null column — never aliasing an input's.
			return func(b *vbuf.Batch) ([]int64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					null := bv[i] == 0 || (an != nil && an[i]) || (bn != nil && bn[i])
					nsc[i] = null
					if null {
						out[i] = 0
					} else {
						out[i] = av[i] % bv[i]
					}
				}
				return out, nsc[:b.N]
			}, nil
		}
		return nil, fmt.Errorf("exec: operator %s does not yield an int", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot vectorize %T as int", e)
}

// compileVecFloat compiles a float-typed (or int-promoted) expression.
func (c *Compiler) compileVecFloat(e expr.Expr) (vecFloat, error) {
	t, err := c.typeOf(e)
	if err != nil {
		return nil, err
	}
	if t.Kind() == types.KindInt {
		iv, err := c.compileVecInt(e)
		if err != nil {
			return nil, err
		}
		out := make([]float64, vbuf.BatchSize)
		return func(b *vbuf.Batch) ([]float64, []bool) {
			v, nn := iv(b)
			for i := range b.N {
				out[i] = float64(v[i])
			}
			return out, nn
		}, nil
	}
	switch x := e.(type) {
	case *expr.Const:
		col := make([]float64, vbuf.BatchSize)
		for i := range col {
			col[i] = x.V.AsFloat()
		}
		return func(*vbuf.Batch) ([]float64, []bool) { return col, nil }, nil
	case *expr.Ref, *expr.FieldAcc:
		s, ok := c.resolveSlot(e)
		if !ok || s.Class != vbuf.ClassFloat {
			return nil, fmt.Errorf("exec: %s is not a float column", e)
		}
		return func(b *vbuf.Batch) ([]float64, []bool) { return b.F[s.Idx], b.Null[s.Null] }, nil
	case *expr.Neg:
		sub, err := c.compileVecFloat(x.E)
		if err != nil {
			return nil, err
		}
		out := make([]float64, vbuf.BatchSize)
		return func(b *vbuf.Batch) ([]float64, []bool) {
			v, nn := sub(b)
			for i := range b.N {
				out[i] = -v[i]
			}
			return out, nn
		}, nil
	case *expr.BinOp:
		if !x.Op.IsArith() {
			return nil, fmt.Errorf("exec: %s does not yield a float", e)
		}
		l, err := c.compileVecFloat(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVecFloat(x.R)
		if err != nil {
			return nil, err
		}
		out := make([]float64, vbuf.BatchSize)
		nsc := make([]bool, vbuf.BatchSize)
		switch x.Op {
		case expr.OpAdd:
			return func(b *vbuf.Batch) ([]float64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] + bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpSub:
			return func(b *vbuf.Batch) ([]float64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] - bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpMul:
			return func(b *vbuf.Batch) ([]float64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					out[i] = av[i] * bv[i]
				}
				return out, mergeNulls(nsc, an, bn, b.N)
			}, nil
		case expr.OpDiv:
			// x / 0 is NULL — own null column, see OpMod.
			return func(b *vbuf.Batch) ([]float64, []bool) {
				av, an := l(b)
				bv, bn := rr(b)
				for i := range b.N {
					null := bv[i] == 0 || (an != nil && an[i]) || (bn != nil && bn[i])
					nsc[i] = null
					if null {
						out[i] = 0
					} else {
						out[i] = av[i] / bv[i]
					}
				}
				return out, nsc[:b.N]
			}, nil
		}
		return nil, fmt.Errorf("exec: operator %s does not yield a float", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot vectorize %T as float", e)
}

// compileVecStr compiles a string-typed expression.
func (c *Compiler) compileVecStr(e expr.Expr) (vecStr, error) {
	switch x := e.(type) {
	case *expr.Const:
		col := make([]string, vbuf.BatchSize)
		for i := range col {
			col[i] = x.V.S
		}
		return func(*vbuf.Batch) ([]string, []bool) { return col, nil }, nil
	case *expr.Ref, *expr.FieldAcc:
		s, ok := c.resolveSlot(e)
		if !ok || s.Class != vbuf.ClassString {
			return nil, fmt.Errorf("exec: %s is not a string column", e)
		}
		return func(b *vbuf.Batch) ([]string, []bool) { return b.S[s.Idx], b.Null[s.Null] }, nil
	}
	return nil, fmt.Errorf("exec: cannot vectorize %T as string", e)
}

// compileVecBool compiles a boolean expression into a column kernel. The
// logic connectives reproduce the tuple evaluators' three-valued logic
// row-wise, except that both operands are evaluated eagerly over the batch
// (expressions are side-effect-free and division guards keep dead lanes
// safe, so eager evaluation only changes cost, not results).
func (c *Compiler) compileVecBool(e expr.Expr) (vecBool, error) {
	switch x := e.(type) {
	case *expr.Const:
		col := make([]bool, vbuf.BatchSize)
		for i := range col {
			col[i] = x.V.Bool()
		}
		return func(*vbuf.Batch) ([]bool, []bool) { return col, nil }, nil
	case *expr.Ref, *expr.FieldAcc:
		s, ok := c.resolveSlot(e)
		if !ok || s.Class != vbuf.ClassBool {
			return nil, fmt.Errorf("exec: %s is not a bool column", e)
		}
		return func(b *vbuf.Batch) ([]bool, []bool) { return b.B[s.Idx], b.Null[s.Null] }, nil
	case *expr.Not:
		sub, err := c.compileVecBool(x.E)
		if err != nil {
			return nil, err
		}
		out := make([]bool, vbuf.BatchSize)
		return func(b *vbuf.Batch) ([]bool, []bool) {
			v, nn := sub(b)
			for i := range b.N {
				out[i] = !v[i]
			}
			return out, nn
		}, nil
	case *expr.Like:
		sub, err := c.compileVecStr(x.E)
		if err != nil {
			return nil, err
		}
		out := make([]bool, vbuf.BatchSize)
		if x.Prefix {
			needle := x.Needle
			return func(b *vbuf.Batch) ([]bool, []bool) {
				v, nn := sub(b)
				for i := range b.N {
					out[i] = strings.HasPrefix(v[i], needle)
				}
				return out, nn
			}, nil
		}
		needle := x.Needle
		return func(b *vbuf.Batch) ([]bool, []bool) {
			v, nn := sub(b)
			for i := range b.N {
				out[i] = strings.Contains(v[i], needle)
			}
			return out, nn
		}, nil
	case *expr.IsNull:
		nulls, err := c.compileVecNulls(x.E)
		if err != nil {
			return nil, err
		}
		out := make([]bool, vbuf.BatchSize)
		return func(b *vbuf.Batch) ([]bool, []bool) {
			nn := nulls(b)
			if nn == nil {
				for i := range b.N {
					out[i] = false
				}
				return out, nil
			}
			copy(out[:b.N], nn[:b.N])
			return out, nil
		}, nil
	case *expr.BinOp:
		switch {
		case x.Op.IsLogic():
			l, err := c.compileVecBool(x.L)
			if err != nil {
				return nil, err
			}
			rr, err := c.compileVecBool(x.R)
			if err != nil {
				return nil, err
			}
			out := make([]bool, vbuf.BatchSize)
			nsc := make([]bool, vbuf.BatchSize)
			if x.Op == expr.OpAnd {
				return func(b *vbuf.Batch) ([]bool, []bool) {
					lv, ln := l(b)
					rv, rn := rr(b)
					if ln == nil && rn == nil {
						for i := range b.N {
							out[i] = lv[i] && rv[i]
						}
						return out, nil
					}
					// NULL AND x → NULL; false AND x → false; true AND x → x.
					for i := range b.N {
						switch {
						case ln != nil && ln[i]:
							out[i], nsc[i] = false, true
						case !lv[i]:
							out[i], nsc[i] = false, false
						default:
							out[i], nsc[i] = rv[i], rn != nil && rn[i]
						}
					}
					return out, nsc[:b.N]
				}, nil
			}
			return func(b *vbuf.Batch) ([]bool, []bool) {
				lv, ln := l(b)
				rv, rn := rr(b)
				if ln == nil && rn == nil {
					for i := range b.N {
						out[i] = lv[i] || rv[i]
					}
					return out, nil
				}
				// true OR x → true (valid); else the right operand decides.
				for i := range b.N {
					if (ln == nil || !ln[i]) && lv[i] {
						out[i], nsc[i] = true, false
					} else {
						out[i], nsc[i] = rv[i], rn != nil && rn[i]
					}
				}
				return out, nsc[:b.N]
			}, nil
		case x.Op.IsComparison():
			return c.compileVecComparison(x)
		}
		return nil, fmt.Errorf("exec: operator %s does not yield a bool", x.Op)
	}
	return nil, fmt.Errorf("exec: cannot vectorize %T as bool", e)
}

// compileVecNulls compiles a scalar expression down to just its null
// column (IS NULL only needs validity, not values). The value column is
// still computed — kernels are monolithic — but stays unread.
func (c *Compiler) compileVecNulls(e expr.Expr) (func(b *vbuf.Batch) []bool, error) {
	t, err := c.typeOf(e)
	if err != nil {
		return nil, err
	}
	switch t.Kind() {
	case types.KindInt:
		sub, err := c.compileVecInt(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch) []bool { _, nn := sub(b); return nn }, nil
	case types.KindFloat:
		sub, err := c.compileVecFloat(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch) []bool { _, nn := sub(b); return nn }, nil
	case types.KindBool:
		sub, err := c.compileVecBool(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch) []bool { _, nn := sub(b); return nn }, nil
	case types.KindString:
		sub, err := c.compileVecStr(e)
		if err != nil {
			return nil, err
		}
		return func(b *vbuf.Batch) []bool { _, nn := sub(b); return nn }, nil
	}
	return nil, fmt.Errorf("exec: cannot vectorize IS NULL over %s", t)
}

// compileVecComparison specializes a comparison on the operands' static
// types, mirroring the tuple compiler's dispatch (int×int, numeric promoted
// to float, string×string). Boxed comparisons are never vectorized.
func (c *Compiler) compileVecComparison(x *expr.BinOp) (vecBool, error) {
	lt, err := c.typeOf(x.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.typeOf(x.R)
	if err != nil {
		return nil, err
	}
	switch {
	case lt.Kind() == types.KindInt && rt.Kind() == types.KindInt:
		l, err := c.compileVecInt(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVecInt(x.R)
		if err != nil {
			return nil, err
		}
		return ordCmpKernel(x.Op, l, rr)
	case types.Numeric(lt) && types.Numeric(rt):
		l, err := c.compileVecFloat(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVecFloat(x.R)
		if err != nil {
			return nil, err
		}
		return ordCmpKernel(x.Op, l, rr)
	case lt.Kind() == types.KindString && rt.Kind() == types.KindString:
		l, err := c.compileVecStr(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := c.compileVecStr(x.R)
		if err != nil {
			return nil, err
		}
		return ordCmpKernel(x.Op, l, rr)
	}
	return nil, fmt.Errorf("exec: comparison %s×%s is not vectorizable", lt, rt)
}

// ordCmpKernel builds one comparison kernel per operator over any ordered
// column type (Go's operators on cmp.Ordered match the tuple comparators,
// including float NaN behavior).
func ordCmpKernel[T cmp.Ordered](op expr.BinKind, l, r func(b *vbuf.Batch) ([]T, []bool)) (vecBool, error) {
	out := make([]bool, vbuf.BatchSize)
	nsc := make([]bool, vbuf.BatchSize)
	switch op {
	case expr.OpEq:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] == bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	case expr.OpNe:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] != bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	case expr.OpLt:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] < bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	case expr.OpLe:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] <= bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	case expr.OpGt:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] > bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	case expr.OpGe:
		return func(b *vbuf.Batch) ([]bool, []bool) {
			av, an := l(b)
			bv, bn := r(b)
			for i := range b.N {
				out[i] = av[i] >= bv[i]
			}
			return out, mergeNulls(nsc, an, bn, b.N)
		}, nil
	}
	return nil, fmt.Errorf("exec: %s is not a comparison", op)
}

// Filter compilation ---------------------------------------------------------

// compileVecFilter compiles a predicate into a selection-vector compaction.
// Conjunctions become sequential filters (three-valued AND equals "drop on
// either side"); comparisons against a constant get fully specialized loops;
// everything else evaluates a bool kernel and filters on it.
func (c *Compiler) compileVecFilter(e expr.Expr) (vecFilter, error) {
	if x, ok := e.(*expr.BinOp); ok {
		if x.Op == expr.OpAnd {
			l, err := c.compileVecFilter(x.L)
			if err != nil {
				return nil, err
			}
			rr, err := c.compileVecFilter(x.R)
			if err != nil {
				return nil, err
			}
			return func(b *vbuf.Batch) {
				l(b)
				rr(b)
			}, nil
		}
		if x.Op.IsComparison() {
			if f, ok, err := c.tryVecConstFilter(x); ok || err != nil {
				return f, err
			}
		}
	}
	if like, ok := e.(*expr.Like); ok {
		ev, err := c.compileVecStr(like.E)
		if err != nil {
			return nil, err
		}
		return likeFilter(like, ev), nil
	}
	ev, err := c.compileVecBool(e)
	if err != nil {
		return nil, err
	}
	return boolFilter(ev), nil
}

// tryVecConstFilter recognizes comparisons with a constant on one side and
// emits the tight specialized loop (the dominant filter shape). A constant
// on the left flips the operator so the column stays on the left.
func (c *Compiler) tryVecConstFilter(x *expr.BinOp) (vecFilter, bool, error) {
	op := x.Op
	col, k := x.L, x.R
	if _, isConst := x.L.(*expr.Const); isConst {
		col, k = x.R, x.L
		op = flipCmp(op)
	}
	kc, isConst := k.(*expr.Const)
	if !isConst {
		return nil, false, nil
	}
	ct, err := c.typeOf(col)
	if err != nil {
		return nil, false, nil
	}
	kt := types.TypeOf(kc.V)
	switch {
	case ct.Kind() == types.KindInt && kt.Kind() == types.KindInt:
		ev, err := c.compileVecInt(col)
		if err != nil {
			return nil, true, err
		}
		f, err := ordConstFilter(op, ev, kc.V.AsInt())
		return f, true, err
	case types.Numeric(ct) && types.Numeric(kt):
		ev, err := c.compileVecFloat(col)
		if err != nil {
			return nil, true, err
		}
		f, err := ordConstFilter(op, ev, kc.V.AsFloat())
		return f, true, err
	case ct.Kind() == types.KindString && kt.Kind() == types.KindString:
		ev, err := c.compileVecStr(col)
		if err != nil {
			return nil, true, err
		}
		f, err := ordConstFilter(op, ev, kc.V.S)
		return f, true, err
	}
	return nil, false, nil
}

func flipCmp(op expr.BinKind) expr.BinKind {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op // Eq and Ne are symmetric
}

// ordConstFilter emits the specialized column-vs-constant selection loop for
// one operator, with a null-free fast variant. In-place Sel compaction is
// safe: the write index never passes the read index.
func ordConstFilter[T cmp.Ordered](op expr.BinKind, col func(b *vbuf.Batch) ([]T, []bool), k T) (vecFilter, error) {
	switch op {
	case expr.OpEq:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] == k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] == k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	case expr.OpNe:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] != k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] != k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	case expr.OpLt:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] < k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] < k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	case expr.OpLe:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] <= k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] <= k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	case expr.OpGt:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] > k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] > k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	case expr.OpGe:
		return func(b *vbuf.Batch) {
			v, nn := col(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if v[j] >= k {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && v[j] >= k {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}, nil
	}
	return nil, fmt.Errorf("exec: %s is not a comparison", op)
}

// likeFilter compacts the selection vector through a LIKE predicate without
// materializing a bool column: contains or prefix match directly on the
// string column, skipping nulls (NULL LIKE anything is not true).
func likeFilter(like *expr.Like, ev vecStr) vecFilter {
	needle := like.Needle
	if like.Prefix {
		return func(b *vbuf.Batch) {
			v, nn := ev(b)
			out, n := b.SelScratch(), 0
			if nn == nil {
				for _, j := range b.Sel {
					if strings.HasPrefix(v[j], needle) {
						out[n] = j
						n++
					}
				}
			} else {
				for _, j := range b.Sel {
					if !nn[j] && strings.HasPrefix(v[j], needle) {
						out[n] = j
						n++
					}
				}
			}
			b.Sel = out[:n]
		}
	}
	return func(b *vbuf.Batch) {
		v, nn := ev(b)
		out, n := b.SelScratch(), 0
		if nn == nil {
			for _, j := range b.Sel {
				if strings.Contains(v[j], needle) {
					out[n] = j
					n++
				}
			}
		} else {
			for _, j := range b.Sel {
				if !nn[j] && strings.Contains(v[j], needle) {
					out[n] = j
					n++
				}
			}
		}
		b.Sel = out[:n]
	}
}

// boolFilter selects the valid-true rows of an arbitrary bool kernel.
func boolFilter(ev vecBool) vecFilter {
	return func(b *vbuf.Batch) {
		v, nn := ev(b)
		out, n := b.SelScratch(), 0
		if nn == nil {
			for _, j := range b.Sel {
				if v[j] {
					out[n] = j
					n++
				}
			}
		} else {
			for _, j := range b.Sel {
				if !nn[j] && v[j] {
					out[n] = j
					n++
				}
			}
		}
		b.Sel = out[:n]
	}
}
