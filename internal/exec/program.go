package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Result is a fully materialized query result: one boxed record (or scalar)
// per output row. Boxing happens only here, at the pipeline's end — the
// flush step of the paper's output plug-ins.
type Result struct {
	Cols []string
	Rows []types.Value
	// Fragments counts the remote fragments merged into this result: 0 for
	// purely local execution, N when a cluster coordinator gathered N
	// worker partials (internal/cluster).
	Fragments int
}

// DefaultStreamChunk is the StreamChunks granularity used when the caller
// passes chunkRows <= 0: large enough to amortize flush syscalls, small
// enough that a disconnected consumer is noticed quickly.
const DefaultStreamChunk = 256

// StreamChunks is the row-streaming hook of the query service: it feeds the
// materialized rows to emit in chunks of at most chunkRows (<= 0 uses
// DefaultStreamChunk), checking ctx between chunks so a cancelled consumer
// — a disconnected HTTP client, a shut-down server — stops the stream at
// the next chunk boundary with ctx's cause. An emit error (the write side
// of a broken connection) aborts the stream and is returned as-is. Rows are
// handed out as sub-slices of the result; emit must not retain them past
// its return if the caller reuses the Result.
func (r *Result) StreamChunks(ctx context.Context, chunkRows int, emit func(rows []types.Value) error) error {
	if chunkRows <= 0 {
		chunkRows = DefaultStreamChunk
	}
	rows := r.Rows
	for len(rows) > 0 {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		n := chunkRows
		if n > len(rows) {
			n = len(rows)
		}
		if err := emit(rows[:n]); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

// Scalar returns the single value of a 1×1 result (the common aggregate
// case), or a zero Value if the shape differs.
func (r *Result) Scalar() types.Value {
	if len(r.Rows) == 1 && r.Rows[0].Kind == types.KindRecord && len(r.Rows[0].Rec.Values) == 1 {
		return r.Rows[0].Rec.Values[0]
	}
	if len(r.Rows) == 1 && r.Rows[0].Kind != types.KindRecord {
		return r.Rows[0]
	}
	return types.Value{}
}

// Program is one compiled query: the specialized engine instance the paper
// builds per query. Run executes it; a Program may be run repeatedly, but
// not concurrently with itself (compiled accumulators hold per-run state —
// compile one Program per goroutine, as the engine's Query methods do).
type Program struct {
	alloc   vbuf.Alloc
	run     func(r *vbuf.Regs) (*Result, error)
	Explain []string // compilation decisions (cache hits, lazy unnests, …)

	// prof holds per-operator profiling state when the program was compiled
	// with Env.Profile set; nil otherwise.
	prof *progProf
	// Workers and Morsels describe the parallel shape chosen at compile time
	// (both 1 for serial programs).
	Workers, Morsels int
	// Fingerprint is the structural fingerprint of the compiled plan,
	// carried into PanicError so failures name the specialized program.
	Fingerprint string
	// Vectorized reports whether any pipeline segment compiled to batch
	// kernels (a compile-time fact; feeds the per-plan feedback store).
	Vectorized bool
	// Sorted reports that the program absorbed Env.Sort — ORDER BY and
	// LIMIT already ran inside the pipeline (columnar index sort), so the
	// caller must not sort the result again.
	Sorted bool

	// cancel is the cooperative cancellation token every scan driver of
	// this program (and all its pipeline clones) polls.
	cancel *plugin.Cancel
	// mem is the per-query memory accountant; nil when Env.MemBudget is
	// unset, in which case every charge site compiles the accounting out.
	mem *memGauge
}

// Run executes the program against a fresh register file.
func (p *Program) Run() (*Result, error) { return p.RunContext(context.Background()) }

// RunContext executes the program under ctx: when ctx is cancelled or its
// deadline passes, the scan drivers abort at the next poll boundary and
// the run returns ctx's cause. RunContext is also the query-boundary panic
// barrier — a panic inside the compiled pipeline (or its post-processing)
// surfaces as a *PanicError instead of unwinding into the caller.
func (p *Program) RunContext(ctx context.Context) (res *Result, err error) {
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if p.mem != nil {
		p.mem.reset()
	}
	if p.cancel != nil {
		gen := p.cancel.Arm()
		if ctx.Done() != nil {
			stop := context.AfterFunc(ctx, func() {
				p.cancel.SignalAt(gen, context.Cause(ctx))
			})
			defer stop()
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, newPanicError(p.Fingerprint, rec)
		}
	}()
	regs := vbuf.NewRegs(&p.alloc)
	return p.run(regs)
}

// ChargeMem charges n estimated bytes against the query's memory budget
// (no-op without one). The engine uses it for post-pipeline buffers such
// as ORDER BY input.
func (p *Program) ChargeMem(n int64) error {
	if p.mem == nil {
		return nil
	}
	return p.mem.charge(n)
}

// Profile returns the last run's operator-profile tree, or nil when the
// program was compiled without profiling. Must not be called concurrently
// with Run.
func (p *Program) Profile() *obs.OpProfile {
	if p.prof == nil {
		return nil
	}
	return p.prof.snapshot()
}

// TotalNanos returns the last run's wall time inside the pipeline (before
// any WrapResult post-processing); 0 when unprofiled.
func (p *Program) TotalNanos() int64 {
	if p.prof == nil {
		return 0
	}
	return p.prof.totalNanos
}

// WorkerSpans returns the last run's per-worker execution spans (parallel
// profiled programs only).
func (p *Program) WorkerSpans() []obs.Span {
	if p.prof == nil {
		return nil
	}
	return p.prof.workerSpans
}

// MorselSpans returns the last run's per-morsel event spans for serial
// programs compiled with ProfileSpec.Events (parallel programs attach them
// under WorkerSpans instead). Nil otherwise.
func (p *Program) MorselSpans() []obs.Span {
	if p.prof == nil || !p.prof.events || p.prof.workers != 1 {
		return nil
	}
	return p.prof.eventsOf(0)
}

// CompileCacheHits reports how many scan fields this program serves from
// materialized cache blocks — a compile-time fact, constant across runs.
func (p *Program) CompileCacheHits() int64 {
	if p.prof == nil {
		return 0
	}
	return p.prof.cacheHits
}

// MemPeak returns the memory accountant's high-water mark after the last
// run (0 without a budget). The gauge only accumulates during a run, so its
// final reading is the peak.
func (p *Program) MemPeak() int64 {
	if p.mem == nil {
		return 0
	}
	return p.mem.used.Load()
}

// attachProf installs profiling state on the program: the run is wrapped so
// every execution starts from zeroed counters and records total pipeline
// wall time.
func (p *Program) attachProf(prof *progProf) {
	if prof == nil {
		return
	}
	p.prof = prof
	inner := p.run
	p.run = func(r *vbuf.Regs) (*Result, error) {
		prof.resetRun()
		t0 := time.Now()
		res, err := inner(r)
		prof.totalNanos = int64(time.Since(t0))
		return res, err
	}
}

// WrapResult installs a post-processing step over the program's result
// (the engine uses it for ORDER BY / LIMIT, which apply to the
// materialized output rather than the pipeline).
func (p *Program) WrapResult(fn func(*Result) (*Result, error)) {
	inner := p.run
	p.run = func(r *vbuf.Regs) (*Result, error) {
		res, err := inner(r)
		if err != nil {
			return nil, err
		}
		return fn(res)
	}
}

// Compile traverses the physical plan in post-order and emits the
// specialized program: the paper's code-generation step, with closures
// standing in for LLVM IR (§5.1).
func Compile(plan algebra.Node, env *Env) (*Program, error) {
	c := &Compiler{
		env:      env,
		bindings: map[string]*binding{},
		envTypes: expr.Env{},
		cancel:   &plugin.Cancel{},
	}
	if env.MemBudget > 0 {
		c.mem = &memGauge{budget: env.MemBudget}
	}
	if env.Profile != nil {
		c.prof = newProgProf(plan, env.Profile, 1)
	}
	// Seed the type environment with every binding the plan introduces so
	// expression compilation can infer types anywhere in the tree.
	algebra.Walk(plan, func(n algebra.Node) bool {
		for name, t := range n.Bindings() {
			if _, exists := c.envTypes[name]; !exists {
				c.envTypes[name] = t
			}
		}
		return true
	})
	c.analyze(plan)

	var run func(r *vbuf.Regs) (*Result, error)
	var err error
	switch root := plan.(type) {
	case *algebra.Reduce:
		run, err = c.compileReduce(root)
	case *algebra.Nest:
		run, err = c.compileNest(root)
	default:
		// A bare plan (no Reduce/Nest root) yields its tuples as records of
		// all visible bindings — used by tests and EXPLAIN-style tooling.
		run, err = c.compileBare(plan)
	}
	if err != nil {
		return nil, err
	}
	p := &Program{
		alloc: c.alloc, run: run, Explain: c.explain, Workers: 1, Morsels: 1,
		Fingerprint: plan.Fingerprint(), cancel: c.cancel, mem: c.mem,
		Vectorized: c.vectorized, Sorted: c.sorted,
	}
	p.attachProf(c.prof)
	return p, nil
}

// partialState is the mergeable per-pipeline state of a root operator.
// Serial programs hold exactly one; CompileParallel gives each worker clone
// its own and merges them in worker order at the pipeline breaker. Because
// workers own contiguous, ordered morsel ranges, the worker-order merge
// reproduces serial semantics exactly: bag rows concatenate in scan order
// and group-by first-encounter order matches the serial scan.
type partialState interface {
	// reset re-arms the state for a fresh run of the program.
	reset()
	// merge folds another worker's state (of the same concrete type and
	// shape) into this one.
	merge(o partialState) error
	// result materializes the final rows.
	result() (*Result, error)
}

// tupleArena carves row-sized []types.Value slices out of a chunked backing
// array: one allocation per arenaChunkRows emitted tuples instead of one per
// row. Handed-out slices are full (len == cap) sub-slices that the arena
// never touches again, so consumers may retain them (types.RecordValue does)
// without aliasing a neighbor. Each compiled closure owns its arena and runs
// on one goroutine at a time (worker clones compile their own), so no
// locking is needed.
type tupleArena struct {
	width int
	buf   []types.Value
}

const arenaChunkRows = 256

func (a *tupleArena) next() []types.Value {
	if a.width == 0 {
		return nil
	}
	if len(a.buf) < a.width {
		a.buf = make([]types.Value, a.width*arenaChunkRows)
	}
	out := a.buf[:a.width:a.width]
	a.buf = a.buf[a.width:]
	return out
}

// barePartial is the mergeable state of a bare (no Reduce/Nest root) plan.
type barePartial struct {
	names []string
	rows  []types.Value
}

func (p *barePartial) reset() { p.rows = nil }

func (p *barePartial) merge(o partialState) error {
	other, ok := o.(*barePartial)
	if !ok {
		return fmt.Errorf("exec: cannot merge %T into bare state", o)
	}
	p.rows = append(p.rows, other.rows...)
	return nil
}

func (p *barePartial) result() (*Result, error) {
	return &Result{Cols: p.names, Rows: p.rows}, nil
}

// compileBarePartial compiles a bare plan into a driver plus its state.
func (c *Compiler) compileBarePartial(plan algebra.Node) (func(r *vbuf.Regs) error, *barePartial, error) {
	bindings := plan.Bindings()
	names := make([]string, 0, len(bindings))
	for name := range bindings {
		names = append(names, name)
		// The output references each whole binding, so every scan must
		// materialize the full record (path "").
		set := c.needs[name]
		if set == nil {
			set = map[string]bool{}
			c.needs[name] = set
		}
		set[""] = true
	}
	sort.Strings(names)
	st := &barePartial{names: names}
	gauge := c.mem
	var pending int64
	evs := make([]evalVal, len(names))
	run, err := c.compileChildThen(plan, func() (Kont, error) {
		for i, name := range names {
			ev, err := c.compileVal(&expr.Ref{Name: name})
			if err != nil {
				return nil, err
			}
			evs[i] = ev
		}
		arena := &tupleArena{width: len(evs)}
		return func(r *vbuf.Regs) error {
			vals := arena.next()
			for i, ev := range evs {
				v, ok := ev(r)
				if !ok {
					v = types.NullValue()
				}
				vals[i] = v
			}
			st.rows = append(st.rows, types.RecordValue(names, vals))
			if gauge != nil {
				if pending += 48 + int64(len(vals))*56; pending >= memQuantum {
					err := gauge.charge(pending)
					pending = 0
					if err != nil {
						return err
					}
				}
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return run, st, nil
}

// compileBare materializes each produced tuple as a record of the plan's
// visible bindings.
func (c *Compiler) compileBare(plan algebra.Node) (func(r *vbuf.Regs) (*Result, error), error) {
	run, st, err := c.compileBarePartial(plan)
	if err != nil {
		return nil, err
	}
	return func(r *vbuf.Regs) (*Result, error) {
		st.reset()
		if err := run(r); err != nil {
			return nil, err
		}
		return st.result()
	}, nil
}

// helpers -------------------------------------------------------------------

func sortedKeys[V any](set map[string]V) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitPath(p string) []string {
	if p == "" {
		return nil
	}
	return strings.Split(p, ".")
}

// typeOfPath resolves a dotted path against a record schema.
func typeOfPath(schema *types.RecordType, path []string) (types.Type, error) {
	var cur types.Type = schema
	for _, seg := range path {
		rt, ok := cur.(*types.RecordType)
		if !ok {
			return nil, fmt.Errorf("path segment %q applied to non-record type %s", seg, cur)
		}
		ft, ok := rt.Lookup(seg)
		if !ok {
			return nil, fmt.Errorf("schema has no field %q", seg)
		}
		cur = ft
	}
	return cur, nil
}

// typeOfPathFrom resolves a dotted path against any starting type.
func typeOfPathFrom(start types.Type, path []string) (types.Type, error) {
	rt, ok := start.(*types.RecordType)
	if !ok {
		return nil, fmt.Errorf("element type %s is not a record", start)
	}
	return typeOfPath(rt, path)
}
