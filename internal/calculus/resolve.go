package calculus

import (
	"fmt"

	"proteus/internal/expr"
)

// ResolveColumns rewrites unqualified column references (SQL style:
// "l_orderkey" instead of "l.l_orderkey") into field accesses on the
// generator whose schema declares the column. Ambiguous names are an error.
func ResolveColumns(c *Comprehension, cat Catalog) error {
	// Alias → dataset field set.
	type scope struct {
		alias  string
		fields map[string]bool
	}
	var scopes []scope
	vars := map[string]bool{}
	for _, q := range c.Quals {
		if !q.IsGenerator() {
			continue
		}
		vars[q.Var] = true
		if ref, ok := q.Source.(*expr.Ref); ok {
			if schema, found := cat.SchemaOf(ref.Name); found {
				fields := map[string]bool{}
				for _, f := range schema.Fields {
					fields[f.Name] = true
				}
				scopes = append(scopes, scope{alias: q.Var, fields: fields})
			}
		}
	}

	var resolveErr error
	var rewrite func(e expr.Expr) expr.Expr
	rewrite = func(e expr.Expr) expr.Expr {
		switch x := e.(type) {
		case *expr.Ref:
			if vars[x.Name] {
				return x
			}
			var owner string
			n := 0
			for _, s := range scopes {
				if s.fields[x.Name] {
					owner = s.alias
					n++
				}
			}
			switch n {
			case 0:
				resolveErr = fmt.Errorf("unknown column or binding %q", x.Name)
				return x
			case 1:
				return &expr.FieldAcc{Base: &expr.Ref{Name: owner}, Name: x.Name}
			default:
				resolveErr = fmt.Errorf("ambiguous column %q (qualify it with an alias)", x.Name)
				return x
			}
		case *expr.FieldAcc:
			return &expr.FieldAcc{Base: rewrite(x.Base), Name: x.Name}
		case *expr.BinOp:
			return &expr.BinOp{Op: x.Op, L: rewrite(x.L), R: rewrite(x.R)}
		case *expr.Not:
			return &expr.Not{E: rewrite(x.E)}
		case *expr.Neg:
			return &expr.Neg{E: rewrite(x.E)}
		case *expr.IsNull:
			return &expr.IsNull{E: rewrite(x.E)}
		case *expr.Like:
			return &expr.Like{E: rewrite(x.E), Needle: x.Needle, Prefix: x.Prefix}
		case *expr.RecordCtor:
			subs := make([]expr.Expr, len(x.Exprs))
			for i, sub := range x.Exprs {
				subs[i] = rewrite(sub)
			}
			return &expr.RecordCtor{Names: x.Names, Exprs: subs}
		}
		return e
	}
	rewriteMaybe := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return rewrite(e)
	}

	for i := range c.Quals {
		if c.Quals[i].IsGenerator() {
			// Qualified sources (x.items) may themselves reference columns;
			// leave dataset refs alone.
			if _, isRef := c.Quals[i].Source.(*expr.Ref); !isRef {
				c.Quals[i].Source = rewrite(c.Quals[i].Source)
			}
			continue
		}
		c.Quals[i].Pred = rewrite(c.Quals[i].Pred)
	}
	c.Head = rewriteMaybe(c.Head)
	for i := range c.Aggs {
		c.Aggs[i].Arg = rewriteMaybe(c.Aggs[i].Arg)
	}
	for i := range c.GroupBy {
		c.GroupBy[i] = rewrite(c.GroupBy[i])
	}
	return resolveErr
}
