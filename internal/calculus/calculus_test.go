package calculus

import (
	"strings"
	"testing"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

func testCatalog() MapCatalog {
	children := types.NewListType(types.NewRecordType(
		types.Field{Name: "name", Type: types.String},
		types.Field{Name: "age", Type: types.Int},
	))
	return MapCatalog{
		"Sailor": types.NewRecordType(
			types.Field{Name: "id", Type: types.Int},
			types.Field{Name: "children", Type: children},
		),
		"Ship": types.NewRecordType(
			types.Field{Name: "name", Type: types.String},
			types.Field{Name: "personnel", Type: types.NewListType(types.Int)},
		),
		"t": types.NewRecordType(
			types.Field{Name: "a", Type: types.Int},
			types.Field{Name: "b", Type: types.Float},
		),
		"u": types.NewRecordType(
			types.Field{Name: "a", Type: types.Int},
			types.Field{Name: "c", Type: types.String},
		),
	}
}

func fieldOf(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func TestTranslateScanSelectReduce(t *testing.T) {
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Pred: &expr.BinOp{Op: expr.OpLt, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(5)}}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	plan, err := Translate(Normalize(c), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	red, ok := plan.(*algebra.Reduce)
	if !ok {
		t.Fatalf("root = %T", plan)
	}
	sel, ok := red.Child.(*algebra.Select)
	if !ok {
		t.Fatalf("child = %T", red.Child)
	}
	if _, ok := sel.Child.(*algebra.Scan); !ok {
		t.Fatalf("grandchild = %T", sel.Child)
	}
}

func TestTranslateJoinDetection(t *testing.T) {
	// Two dataset generators tied by an equality filter become a Join with
	// that filter as the predicate.
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Var: "y", Source: &expr.Ref{Name: "u"}},
			{Pred: &expr.BinOp{Op: expr.OpEq, L: fieldOf("x", "a"), R: fieldOf("y", "a")}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	plan, err := Translate(Normalize(c), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// The equality may sit in the Join predicate or in a Select directly
	// above it (the optimizer later absorbs it into the join); either way
	// it must appear exactly once in the tree.
	var join *algebra.Join
	var predCount int
	algebra.Walk(plan, func(n algebra.Node) bool {
		switch x := n.(type) {
		case *algebra.Join:
			join = x
			if l, _, _ := x.EquiKeys(); len(l) == 1 {
				predCount++
			}
		case *algebra.Select:
			if strings.Contains(x.Pred.String(), "x.a = y.a") {
				predCount++
			}
		}
		return true
	})
	if join == nil {
		t.Fatal("no join produced")
	}
	if predCount != 1 {
		t.Errorf("join predicate appears %d times; plan:\n%s", predCount, algebra.Format(plan))
	}
}

func TestTranslateCartesianWithoutPredicate(t *testing.T) {
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Var: "y", Source: &expr.Ref{Name: "u"}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	plan, err := Translate(Normalize(c), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	var join *algebra.Join
	algebra.Walk(plan, func(n algebra.Node) bool {
		if j, ok := n.(*algebra.Join); ok {
			join = j
		}
		return true
	})
	if join == nil {
		t.Fatal("no join")
	}
	if l, _, _ := join.EquiKeys(); len(l) != 0 {
		t.Error("cartesian should have no equi keys")
	}
}

func TestTranslateExample31Shape(t *testing.T) {
	// Figure 1's plan: two unnests, one join.
	c := &Comprehension{
		Quals: []Qual{
			{Var: "s1", Source: &expr.Ref{Name: "Sailor"}},
			{Var: "c", Source: fieldOf("s1", "children")},
			{Var: "s2", Source: &expr.Ref{Name: "Ship"}},
			{Var: "p", Source: fieldOf("s2", "personnel")},
			{Pred: &expr.BinOp{Op: expr.OpEq, L: fieldOf("s1", "id"), R: &expr.Ref{Name: "p"}}},
			{Pred: &expr.BinOp{Op: expr.OpGt, L: fieldOf("c", "age"), R: &expr.Const{V: types.IntValue(18)}}},
		},
		Monoid: expr.AggBag,
		Head: &expr.RecordCtor{
			Names: []string{"id", "ship", "child"},
			Exprs: []expr.Expr{fieldOf("s1", "id"), fieldOf("s2", "name"), fieldOf("c", "name")},
		},
	}
	plan, err := Translate(Normalize(c), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	var unnests, joins int
	algebra.Walk(plan, func(n algebra.Node) bool {
		switch n.(type) {
		case *algebra.Unnest:
			unnests++
		case *algebra.Join:
			joins++
		}
		return true
	})
	if unnests != 2 || joins != 1 {
		t.Errorf("unnests = %d joins = %d; plan:\n%s", unnests, joins, algebra.Format(plan))
	}
}

func TestTranslateGroupBy(t *testing.T) {
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
		},
		GroupBy:    []expr.Expr{fieldOf("x", "a")},
		GroupNames: []string{"a"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
	}
	plan, err := Translate(Normalize(c), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.(*algebra.Nest); !ok {
		t.Fatalf("root = %T, want Nest", plan)
	}
}

func TestTranslateErrors(t *testing.T) {
	// Unknown dataset.
	c := &Comprehension{
		Quals:    []Qual{{Var: "x", Source: &expr.Ref{Name: "nope"}}},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	if _, err := Translate(c, testCatalog()); err == nil {
		t.Error("unknown dataset should fail")
	}
	// No generators.
	c = &Comprehension{Aggs: []expr.Agg{{Kind: expr.AggCount}}, AggNames: []string{"n"}}
	if _, err := Translate(c, testCatalog()); err == nil {
		t.Error("no generators should fail")
	}
	// Generator over unbound variable path.
	c = &Comprehension{
		Quals:    []Qual{{Var: "x", Source: fieldOf("ghost", "items")}},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	if _, err := Translate(c, testCatalog()); err == nil {
		t.Error("unbound path generator should fail")
	}
	// Collection comprehension without a head.
	c = &Comprehension{
		Quals:  []Qual{{Var: "x", Source: &expr.Ref{Name: "t"}}},
		Monoid: expr.AggBag,
	}
	if _, err := Translate(c, testCatalog()); err == nil {
		t.Error("missing head should fail")
	}
}

func TestNormalizeDropsTrueAndSplitsConjuncts(t *testing.T) {
	pred := &expr.BinOp{Op: expr.OpAnd,
		L: &expr.BinOp{Op: expr.OpLt, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(1)}},
		R: &expr.Const{V: types.BoolValue(true)},
	}
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Pred: pred},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	n := Normalize(c)
	filters := 0
	for _, q := range n.Quals {
		if !q.IsGenerator() {
			filters++
		}
	}
	if filters != 1 {
		t.Errorf("filters = %d, want 1 (true dropped, conjuncts split)", filters)
	}
}

func TestResolveColumns(t *testing.T) {
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Pred: &expr.BinOp{Op: expr.OpLt, L: &expr.Ref{Name: "b"}, R: &expr.Const{V: types.FloatValue(1)}}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggMax, Arg: &expr.Ref{Name: "b"}}},
		AggNames: []string{"m"},
	}
	if err := ResolveColumns(c, testCatalog()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Quals[1].Pred.String(), "x.b") {
		t.Errorf("pred not resolved: %s", c.Quals[1].Pred)
	}
	if !strings.Contains(c.Aggs[0].Arg.String(), "x.b") {
		t.Errorf("agg arg not resolved: %s", c.Aggs[0].Arg)
	}
}

func TestResolveColumnsAmbiguous(t *testing.T) {
	// Column "a" exists in both t and u.
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Var: "y", Source: &expr.Ref{Name: "u"}},
			{Pred: &expr.BinOp{Op: expr.OpLt, L: &expr.Ref{Name: "a"}, R: &expr.Const{V: types.IntValue(1)}}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	if err := ResolveColumns(c, testCatalog()); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestResolveColumnsUnknown(t *testing.T) {
	c := &Comprehension{
		Quals: []Qual{
			{Var: "x", Source: &expr.Ref{Name: "t"}},
			{Pred: &expr.BinOp{Op: expr.OpLt, L: &expr.Ref{Name: "zzz"}, R: &expr.Const{V: types.IntValue(1)}}},
		},
		Aggs:     []expr.Agg{{Kind: expr.AggCount}},
		AggNames: []string{"n"},
	}
	if err := ResolveColumns(c, testCatalog()); err == nil {
		t.Error("unknown column should fail")
	}
}
