// Package calculus implements the monoid comprehension calculus layer of the
// engine (§3 of the paper). Both front-ends (SQL and the comprehension
// syntax) produce a Comprehension; normalization rules simplify it; and the
// translator rewrites it into a nested relational algebra plan.
package calculus

import (
	"fmt"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// Qual is one qualifier of a comprehension: a generator (v <- source) or a
// filter predicate.
type Qual struct {
	// Generator fields; Var == "" marks a filter.
	Var    string
	Source expr.Expr // a *Ref naming a dataset, or a path over a bound var
	// Filter predicate when Var == "".
	Pred expr.Expr
}

// IsGenerator reports whether the qualifier is a generator.
func (q Qual) IsGenerator() bool { return q.Var != "" }

// Comprehension is the internal query form: for { quals } yield ⊕ head.
// SQL queries desugar into this form; GROUP BY desugars into the Group
// fields, multi-aggregate SELECT lists into Aggs.
type Comprehension struct {
	Quals []Qual

	// Exactly one of the following output shapes is used:

	// 1. Collection yield: Monoid is AggBag or AggList and Head is the
	// per-tuple output expression.
	Monoid expr.AggKind
	Head   expr.Expr

	// 2. Aggregate yield (possibly grouped): Aggs lists the aggregate
	// monoids; GroupBy, if non-empty, makes this a grouping query.
	Aggs       []expr.Agg
	AggNames   []string
	GroupBy    []expr.Expr
	GroupNames []string

	// Output ordering, applied to the materialized result (ORDER BY output
	// column, optionally DESC, with an optional LIMIT; Limit 0 = none).
	OrderBy   []string
	OrderDesc []bool
	Limit     int
}

// IsAggregate reports whether the comprehension yields aggregates rather
// than a collection of tuples.
func (c *Comprehension) IsAggregate() bool { return len(c.Aggs) > 0 }

// Catalog resolves dataset names to their schemas during translation. The
// engine's catalog implements it; tests can use a map.
type Catalog interface {
	SchemaOf(dataset string) (*types.RecordType, bool)
}

// MapCatalog is a Catalog backed by a plain map, for tests and tools.
type MapCatalog map[string]*types.RecordType

// SchemaOf implements Catalog.
func (m MapCatalog) SchemaOf(name string) (*types.RecordType, bool) {
	t, ok := m[name]
	return t, ok
}

// Normalize applies the calculus rewrite rules that are independent of data
// statistics: constant folding of filters, removal of trivially-true
// filters, and splitting of conjunctive filters so each conjunct can be
// placed independently during translation (the calculus analogue of
// selection pushdown preparation).
func Normalize(c *Comprehension) *Comprehension {
	out := &Comprehension{
		Monoid:     c.Monoid,
		Head:       c.Head,
		Aggs:       c.Aggs,
		AggNames:   c.AggNames,
		GroupBy:    c.GroupBy,
		GroupNames: c.GroupNames,
		OrderBy:    c.OrderBy,
		OrderDesc:  c.OrderDesc,
		Limit:      c.Limit,
	}
	for _, q := range c.Quals {
		if q.IsGenerator() {
			out.Quals = append(out.Quals, q)
			continue
		}
		folded := expr.Fold(q.Pred)
		for _, conj := range expr.SplitConjuncts(folded) {
			if cst, ok := conj.(*expr.Const); ok && cst.V.Bool() {
				continue // drop trivially-true conjuncts
			}
			out.Quals = append(out.Quals, Qual{Pred: conj})
		}
	}
	return out
}

// Translate rewrites a normalized comprehension into a nested relational
// algebra plan (§3, Figure 1). Generators over datasets become Scans joined
// left-deep; generators over paths of bound variables become Unnests;
// filters become join predicates when they connect two sides of a join, and
// Select operators otherwise; the output clause becomes Reduce or Nest.
func Translate(c *Comprehension, cat Catalog) (algebra.Node, error) {
	var plan algebra.Node
	bound := map[string]bool{}
	var pending []expr.Expr // filters not yet placed

	place := func(tree algebra.Node) algebra.Node {
		// Attach every pending filter whose references are now bound.
		var rest []expr.Expr
		for _, p := range pending {
			if expr.OnlyRefs(p, bound) {
				tree = &algebra.Select{Pred: p, Child: tree}
			} else {
				rest = append(rest, p)
			}
		}
		pending = rest
		return tree
	}

	for _, q := range c.Quals {
		if !q.IsGenerator() {
			if plan != nil && expr.OnlyRefs(q.Pred, bound) {
				plan = &algebra.Select{Pred: q.Pred, Child: plan}
			} else {
				pending = append(pending, q.Pred)
			}
			continue
		}
		src := q.Source
		if ref, ok := src.(*expr.Ref); ok && !bound[ref.Name] {
			// Generator over a dataset: Scan (joined in if a tree exists).
			schema, ok := cat.SchemaOf(ref.Name)
			if !ok {
				return nil, fmt.Errorf("unknown dataset %q", ref.Name)
			}
			scan := &algebra.Scan{Dataset: ref.Name, Binding: q.Var, Type: schema}
			if plan == nil {
				plan = scan
			} else {
				// Find pending filters that connect the two sides: they become
				// the join predicate (equi-join detection happens at compile).
				joinable, rest := partitionJoinPreds(pending, bound, q.Var)
				pending = rest
				pred := expr.Conjoin(joinable)
				if pred == nil {
					pred = &expr.Const{V: types.BoolValue(true)} // cartesian
				}
				plan = &algebra.Join{Pred: pred, Left: plan, Right: scan}
			}
			bound[q.Var] = true
			plan = place(plan)
			continue
		}
		// Generator over a path of a bound variable: Unnest.
		root, _, ok := expr.PathOf(src)
		if !ok || !bound[root] {
			return nil, fmt.Errorf("generator source %s is neither a dataset nor a path over a bound variable", src)
		}
		plan = &algebra.Unnest{Path: src, Binding: q.Var, Child: plan}
		bound[q.Var] = true
		plan = place(plan)
	}

	if plan == nil {
		return nil, fmt.Errorf("comprehension has no generators")
	}
	for _, p := range pending {
		if !expr.OnlyRefs(p, bound) {
			return nil, fmt.Errorf("predicate %s references unbound variables", p)
		}
		plan = &algebra.Select{Pred: p, Child: plan}
	}

	switch {
	case len(c.GroupBy) > 0:
		return &algebra.Nest{
			GroupBy:    c.GroupBy,
			GroupNames: c.GroupNames,
			Aggs:       c.Aggs,
			AggNames:   c.AggNames,
			Child:      plan,
		}, nil
	case c.IsAggregate():
		return &algebra.Reduce{Aggs: c.Aggs, Names: c.AggNames, Child: plan}, nil
	default:
		monoid := c.Monoid
		if monoid != expr.AggBag && monoid != expr.AggList {
			monoid = expr.AggBag
		}
		head := c.Head
		if head == nil {
			return nil, fmt.Errorf("collection comprehension has no yield expression")
		}
		return &algebra.Reduce{
			Aggs:  []expr.Agg{{Kind: monoid, Arg: head}},
			Names: []string{"result"},
			Child: plan,
		}, nil
	}
}

// partitionJoinPreds splits pending filters into those that become the join
// predicate for a join introducing newVar (they reference newVar plus only
// already-bound variables) and the rest.
func partitionJoinPreds(pending []expr.Expr, bound map[string]bool, newVar string) (joinable, rest []expr.Expr) {
	all := map[string]bool{newVar: true}
	for k := range bound {
		all[k] = true
	}
	for _, p := range pending {
		refs := expr.Refs(p)
		if refs[newVar] && expr.OnlyRefs(p, all) {
			joinable = append(joinable, p)
		} else {
			rest = append(rest, p)
		}
	}
	return joinable, rest
}
