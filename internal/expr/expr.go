// Package expr defines the expression language of the nested relational
// algebra: field references, dotted paths into nested records, arithmetic,
// comparisons, boolean connectives, record construction, and aggregate
// functions. Expressions are produced by the front-ends, rewritten by the
// optimizer, and finally compiled (per query) by internal/exec into
// type-specialized closures — the Go stand-in for the paper's expression
// generators that emit LLVM IR.
package expr

import (
	"fmt"
	"strings"

	"proteus/internal/types"
)

// Expr is any algebra expression node.
type Expr interface {
	// String renders the expression in a canonical textual form. The form is
	// stable and is reused as part of plan fingerprints for cache matching.
	String() string
}

// Const is a literal value.
type Const struct{ V types.Value }

// String implements Expr.
func (c *Const) String() string { return c.V.String() }

// Ref refers to a binding variable introduced by a Scan or Unnest.
type Ref struct{ Name string }

// String implements Expr.
func (r *Ref) String() string { return r.Name }

// FieldAcc accesses a named field of a record-valued expression. Chained
// FieldAccs form dotted paths (s.children, c.d.d1, ...).
type FieldAcc struct {
	Base Expr
	Name string
}

// String implements Expr.
func (f *FieldAcc) String() string { return f.Base.String() + "." + f.Name }

// BinKind enumerates binary operators.
type BinKind uint8

// Binary operator kinds.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the operator token.
func (k BinKind) String() string {
	switch k {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	}
	return "?"
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (k BinKind) IsComparison() bool { return k >= OpEq && k <= OpGe }

// IsArith reports whether the operator is arithmetic.
func (k BinKind) IsArith() bool { return k <= OpMod }

// IsLogic reports whether the operator is a boolean connective.
func (k BinKind) IsLogic() bool { return k == OpAnd || k == OpOr }

// BinOp applies a binary operator.
type BinOp struct {
	Op   BinKind
	L, R Expr
}

// String implements Expr.
func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// String implements Expr.
func (n *Not) String() string { return "NOT(" + n.E.String() + ")" }

// Neg arithmetically negates a numeric expression.
type Neg struct{ E Expr }

// String implements Expr.
func (n *Neg) String() string { return "-(" + n.E.String() + ")" }

// IsNull tests whether an expression evaluates to NULL. Unlike every other
// predicate it never yields NULL itself: the result is always a valid
// boolean. SQL's IS NOT NULL parses as Not(IsNull).
type IsNull struct{ E Expr }

// String implements Expr.
func (i *IsNull) String() string { return "(" + i.E.String() + " IS NULL)" }

// Like tests substring containment on strings (a simplified LIKE '%s%').
// When Prefix is set the pattern had the shape 'abc%' and the test is
// prefix-match instead of containment; the zero value keeps the historical
// contains semantics.
type Like struct {
	E      Expr
	Needle string
	Prefix bool
}

// Match applies the LIKE pattern to one non-null string.
func (l *Like) Match(s string) bool {
	if l.Prefix {
		return strings.HasPrefix(s, l.Needle)
	}
	return strings.Contains(s, l.Needle)
}

// String implements Expr.
func (l *Like) String() string {
	if l.Prefix {
		return l.E.String() + " LIKE " + l.Needle + "%"
	}
	return l.E.String() + " LIKE %" + l.Needle + "%"
}

// RecordCtor constructs a record from named sub-expressions.
type RecordCtor struct {
	Names []string
	Exprs []Expr
}

// String implements Expr.
func (r *RecordCtor) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i, n := range r.Names {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(n)
		sb.WriteString(": ")
		sb.WriteString(r.Exprs[i].String())
	}
	sb.WriteByte('>')
	return sb.String()
}

// AggKind enumerates aggregate monoids.
type AggKind uint8

// Aggregate monoid kinds. These are the primitive monoids of the calculus
// (sum, max, min, count) plus avg as a derived form and bag/list collection.
const (
	AggSum AggKind = iota
	AggCount
	AggMax
	AggMin
	AggAvg
	AggBag  // collect into a bag
	AggList // collect into a list
)

// String returns the aggregate name.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggAvg:
		return "avg"
	case AggBag:
		return "bag"
	case AggList:
		return "list"
	}
	return "?"
}

// Agg is one aggregate computation: a monoid applied to a per-tuple
// expression. For AggCount the argument may be nil.
type Agg struct {
	Kind AggKind
	Arg  Expr
}

// String renders the aggregate.
func (a Agg) String() string {
	if a.Arg == nil {
		return a.Kind.String() + "(*)"
	}
	return a.Kind.String() + "(" + a.Arg.String() + ")"
}

// Walk visits e and all sub-expressions in pre-order. If fn returns false
// the walk does not descend into the node's children.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *FieldAcc:
		Walk(x.Base, fn)
	case *BinOp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Not:
		Walk(x.E, fn)
	case *Neg:
		Walk(x.E, fn)
	case *IsNull:
		Walk(x.E, fn)
	case *Like:
		Walk(x.E, fn)
	case *RecordCtor:
		for _, sub := range x.Exprs {
			Walk(sub, fn)
		}
	}
}

// Refs returns the set of binding names referenced by e.
func Refs(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(sub Expr) bool {
		if r, ok := sub.(*Ref); ok {
			out[r.Name] = true
		}
		return true
	})
	return out
}

// OnlyRefs reports whether every binding referenced by e is in allowed.
func OnlyRefs(e Expr, allowed map[string]bool) bool {
	ok := true
	Walk(e, func(sub Expr) bool {
		if r, isRef := sub.(*Ref); isRef && !allowed[r.Name] {
			ok = false
		}
		return ok
	})
	return ok
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// Conjoin combines conjuncts back into one AND tree (nil for empty).
func Conjoin(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// PathOf decomposes an expression of the form ref.a.b.c into its root
// binding name and field path. ok is false for any other shape.
func PathOf(e Expr) (root string, path []string, ok bool) {
	switch x := e.(type) {
	case *Ref:
		return x.Name, nil, true
	case *FieldAcc:
		root, path, ok = PathOf(x.Base)
		if !ok {
			return "", nil, false
		}
		return root, append(path, x.Name), true
	}
	return "", nil, false
}

// Env maps binding names to their types during type inference.
type Env map[string]types.Type

// InferType computes the static type of e under env. It returns an error for
// ill-typed expressions (the front-ends surface this to the user).
func InferType(e Expr, env Env) (types.Type, error) {
	switch x := e.(type) {
	case *Const:
		return types.TypeOf(x.V), nil
	case *Ref:
		t, ok := env[x.Name]
		if !ok {
			return nil, fmt.Errorf("unknown binding %q", x.Name)
		}
		return t, nil
	case *FieldAcc:
		bt, err := InferType(x.Base, env)
		if err != nil {
			return nil, err
		}
		rt, ok := bt.(*types.RecordType)
		if !ok {
			return nil, fmt.Errorf("field access .%s on non-record type %s", x.Name, bt)
		}
		ft, ok := rt.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("record %s has no field %q", rt, x.Name)
		}
		return ft, nil
	case *BinOp:
		lt, err := InferType(x.L, env)
		if err != nil {
			return nil, err
		}
		rt, err := InferType(x.R, env)
		if err != nil {
			return nil, err
		}
		switch {
		case x.Op.IsArith():
			p := types.Promote(lt, rt)
			if p == nil {
				return nil, fmt.Errorf("operator %s requires numeric operands, got %s and %s", x.Op, lt, rt)
			}
			if x.Op == OpDiv {
				return types.Float, nil
			}
			if x.Op == OpMod {
				return types.Int, nil
			}
			return p, nil
		case x.Op.IsComparison():
			if types.Promote(lt, rt) == nil && !lt.Equal(rt) {
				return nil, fmt.Errorf("cannot compare %s with %s", lt, rt)
			}
			return types.Bool, nil
		default: // logic
			if lt.Kind() != types.KindBool || rt.Kind() != types.KindBool {
				return nil, fmt.Errorf("operator %s requires boolean operands, got %s and %s", x.Op, lt, rt)
			}
			return types.Bool, nil
		}
	case *Not:
		t, err := InferType(x.E, env)
		if err != nil {
			return nil, err
		}
		if t.Kind() != types.KindBool {
			return nil, fmt.Errorf("NOT requires a boolean operand, got %s", t)
		}
		return types.Bool, nil
	case *Neg:
		t, err := InferType(x.E, env)
		if err != nil {
			return nil, err
		}
		if !types.Numeric(t) {
			return nil, fmt.Errorf("negation requires a numeric operand, got %s", t)
		}
		return t, nil
	case *IsNull:
		if _, err := InferType(x.E, env); err != nil {
			return nil, err
		}
		return types.Bool, nil
	case *Like:
		t, err := InferType(x.E, env)
		if err != nil {
			return nil, err
		}
		if t.Kind() != types.KindString {
			return nil, fmt.Errorf("LIKE requires a string operand, got %s", t)
		}
		return types.Bool, nil
	case *RecordCtor:
		fields := make([]types.Field, len(x.Names))
		for i, n := range x.Names {
			ft, err := InferType(x.Exprs[i], env)
			if err != nil {
				return nil, err
			}
			fields[i] = types.Field{Name: n, Type: ft}
		}
		return &types.RecordType{Fields: fields}, nil
	}
	return nil, fmt.Errorf("cannot type expression %T", e)
}

// AggType computes the result type of an aggregate over tuples typed by env.
func AggType(a Agg, env Env) (types.Type, error) {
	switch a.Kind {
	case AggCount:
		return types.Int, nil
	case AggAvg:
		if a.Arg == nil {
			return nil, fmt.Errorf("avg requires an argument")
		}
		t, err := InferType(a.Arg, env)
		if err != nil {
			return nil, err
		}
		if !types.Numeric(t) {
			return nil, fmt.Errorf("avg requires a numeric argument, got %s", t)
		}
		return types.Float, nil
	case AggSum, AggMax, AggMin:
		if a.Arg == nil {
			return nil, fmt.Errorf("%s requires an argument", a.Kind)
		}
		t, err := InferType(a.Arg, env)
		if err != nil {
			return nil, err
		}
		if a.Kind == AggSum && !types.Numeric(t) {
			return nil, fmt.Errorf("sum requires a numeric argument, got %s", t)
		}
		return t, nil
	case AggBag, AggList:
		if a.Arg == nil {
			return nil, fmt.Errorf("%s requires an argument", a.Kind)
		}
		t, err := InferType(a.Arg, env)
		if err != nil {
			return nil, err
		}
		if a.Kind == AggBag {
			return types.NewBagType(t), nil
		}
		return types.NewListType(t), nil
	}
	return nil, fmt.Errorf("unknown aggregate %v", a.Kind)
}

// Equal reports structural equality of two expressions (via canonical form).
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}
