package expr

import (
	"fmt"

	"proteus/internal/types"
)

// ValueEnv binds variable names to runtime values for interpretation.
type ValueEnv map[string]types.Value

// Eval interprets e under env by walking the expression tree and boxing
// every intermediate into a types.Value. This is deliberately the slow,
// general-purpose path: the Volcano baseline uses it per tuple, which is
// exactly the interpretation overhead (virtual dispatch, type switches,
// boxing) that the paper's code generation removes. Proteus-Go's compiled
// engine only uses Eval for constant folding at plan time.
func Eval(e Expr, env ValueEnv) (types.Value, error) {
	switch x := e.(type) {
	case *Const:
		return x.V, nil
	case *Ref:
		v, ok := env[x.Name]
		if !ok {
			return types.Value{}, fmt.Errorf("unbound variable %q", x.Name)
		}
		return v, nil
	case *FieldAcc:
		base, err := Eval(x.Base, env)
		if err != nil {
			return types.Value{}, err
		}
		if base.IsNull() {
			return types.NullValue(), nil
		}
		v, ok := base.Field(x.Name)
		if !ok {
			return types.Value{}, fmt.Errorf("value has no field %q", x.Name)
		}
		return v, nil
	case *BinOp:
		return evalBinOp(x, env)
	case *Not:
		// NOT(NULL) stays NULL, mirroring the compiled closures which pass
		// the validity bit through unchanged.
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.NullValue(), nil
		}
		return types.BoolValue(!v.Bool()), nil
	case *Neg:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.NullValue(), nil
		}
		if v.Kind == types.KindInt {
			return types.IntValue(-v.I), nil
		}
		return types.FloatValue(-v.AsFloat()), nil
	case *IsNull:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Value{}, err
		}
		return types.BoolValue(v.IsNull()), nil
	case *Like:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.NullValue(), nil
		}
		return types.BoolValue(x.Match(v.S)), nil
	case *RecordCtor:
		vals := make([]types.Value, len(x.Exprs))
		for i, sub := range x.Exprs {
			v, err := Eval(sub, env)
			if err != nil {
				return types.Value{}, err
			}
			vals[i] = v
		}
		return types.RecordValue(x.Names, vals), nil
	}
	return types.Value{}, fmt.Errorf("cannot evaluate expression %T", e)
}

func evalBinOp(x *BinOp, env ValueEnv) (types.Value, error) {
	// Boolean connectives mirror the compiled closures (exec/exprc.go)
	// exactly: AND — a NULL left operand yields NULL, a false left operand
	// yields false, otherwise the right operand's result is returned
	// verbatim; OR — a valid true left operand yields true, otherwise the
	// right operand's result is returned verbatim (so NULL OR false is
	// false, matching the compiled engine's "predicate not satisfied"
	// treatment of NULL rather than strict three-valued logic).
	if x.Op.IsLogic() {
		l, err := Eval(x.L, env)
		if err != nil {
			return types.Value{}, err
		}
		if x.Op == OpAnd {
			if l.IsNull() {
				return types.NullValue(), nil
			}
			if !l.Bool() {
				return types.BoolValue(false), nil
			}
			return Eval(x.R, env)
		}
		// OpOr.
		if !l.IsNull() && l.Bool() {
			return types.BoolValue(true), nil
		}
		return Eval(x.R, env)
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return types.Value{}, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return types.Value{}, err
	}
	if x.Op.IsComparison() {
		// Comparing anything with NULL is NULL, as in the compiled engine.
		if l.IsNull() || r.IsNull() {
			return types.NullValue(), nil
		}
		c := types.Compare(l, r)
		switch x.Op {
		case OpEq:
			return types.BoolValue(c == 0), nil
		case OpNe:
			return types.BoolValue(c != 0), nil
		case OpLt:
			return types.BoolValue(c < 0), nil
		case OpLe:
			return types.BoolValue(c <= 0), nil
		case OpGt:
			return types.BoolValue(c > 0), nil
		case OpGe:
			return types.BoolValue(c >= 0), nil
		}
	}
	// Arithmetic.
	if l.IsNull() || r.IsNull() {
		return types.NullValue(), nil
	}
	if x.Op == OpDiv {
		rf := r.AsFloat()
		if rf == 0 {
			return types.NullValue(), nil
		}
		return types.FloatValue(l.AsFloat() / rf), nil
	}
	if x.Op == OpMod {
		ri := r.AsInt()
		if ri == 0 {
			return types.NullValue(), nil
		}
		return types.IntValue(l.AsInt() % ri), nil
	}
	if l.Kind == types.KindInt && r.Kind == types.KindInt {
		switch x.Op {
		case OpAdd:
			return types.IntValue(l.I + r.I), nil
		case OpSub:
			return types.IntValue(l.I - r.I), nil
		case OpMul:
			return types.IntValue(l.I * r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch x.Op {
	case OpAdd:
		return types.FloatValue(lf + rf), nil
	case OpSub:
		return types.FloatValue(lf - rf), nil
	case OpMul:
		return types.FloatValue(lf * rf), nil
	}
	return types.Value{}, fmt.Errorf("unsupported operator %s", x.Op)
}

// IsConst reports whether e contains no variable references.
func IsConst(e Expr) bool {
	isConst := true
	Walk(e, func(sub Expr) bool {
		if _, ok := sub.(*Ref); ok {
			isConst = false
		}
		return isConst
	})
	return isConst
}

// Fold replaces constant sub-expressions with their evaluated literals.
func Fold(e Expr) Expr {
	if e == nil {
		return nil
	}
	if _, ok := e.(*Const); ok {
		return e
	}
	if IsConst(e) {
		if v, err := Eval(e, nil); err == nil {
			return &Const{V: v}
		}
		return e
	}
	switch x := e.(type) {
	case *BinOp:
		return &BinOp{Op: x.Op, L: Fold(x.L), R: Fold(x.R)}
	case *Not:
		return &Not{E: Fold(x.E)}
	case *Neg:
		return &Neg{E: Fold(x.E)}
	case *IsNull:
		return &IsNull{E: Fold(x.E)}
	case *Like:
		return &Like{E: Fold(x.E), Needle: x.Needle, Prefix: x.Prefix}
	case *FieldAcc:
		return &FieldAcc{Base: Fold(x.Base), Name: x.Name}
	case *RecordCtor:
		subs := make([]Expr, len(x.Exprs))
		for i, sub := range x.Exprs {
			subs[i] = Fold(sub)
		}
		return &RecordCtor{Names: x.Names, Exprs: subs}
	}
	return e
}
