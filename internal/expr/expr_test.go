package expr

import (
	"testing"
	"testing/quick"

	"proteus/internal/types"
)

func field(binding, name string) Expr {
	return &FieldAcc{Base: &Ref{Name: binding}, Name: name}
}

func ci(v int64) Expr   { return &Const{V: types.IntValue(v)} }
func cf(v float64) Expr { return &Const{V: types.FloatValue(v)} }

func env(vals map[string]types.Value) ValueEnv { return ValueEnv(vals) }

func TestEvalArithmetic(t *testing.T) {
	e := &BinOp{Op: OpAdd, L: &BinOp{Op: OpMul, L: ci(3), R: ci(4)}, R: ci(5)}
	v, err := Eval(e, nil)
	if err != nil || v.AsInt() != 17 {
		t.Fatalf("3*4+5 = %v (err %v)", v, err)
	}
	e = &BinOp{Op: OpDiv, L: ci(7), R: ci(2)}
	v, _ = Eval(e, nil)
	if v.Kind != types.KindFloat || v.F != 3.5 {
		t.Errorf("7/2 = %v, want float 3.5", v)
	}
	e = &BinOp{Op: OpDiv, L: ci(7), R: ci(0)}
	v, _ = Eval(e, nil)
	if !v.IsNull() {
		t.Errorf("7/0 = %v, want null", v)
	}
	e = &BinOp{Op: OpMod, L: ci(7), R: ci(3)}
	v, _ = Eval(e, nil)
	if v.AsInt() != 1 {
		t.Errorf("7%%3 = %v", v)
	}
	v, _ = Eval(&Neg{E: cf(2.5)}, nil)
	if v.AsFloat() != -2.5 {
		t.Errorf("-(2.5) = %v", v)
	}
}

func TestEvalMixedNumeric(t *testing.T) {
	e := &BinOp{Op: OpAdd, L: ci(1), R: cf(2.5)}
	v, _ := Eval(e, nil)
	if v.Kind != types.KindFloat || v.F != 3.5 {
		t.Errorf("1 + 2.5 = %v", v)
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	tru := &BinOp{Op: OpLt, L: ci(1), R: ci(2)}
	fls := &BinOp{Op: OpGt, L: ci(1), R: ci(2)}
	v, _ := Eval(&BinOp{Op: OpAnd, L: tru, R: fls}, nil)
	if v.Bool() {
		t.Error("true AND false")
	}
	v, _ = Eval(&BinOp{Op: OpOr, L: fls, R: tru}, nil)
	if !v.Bool() {
		t.Error("false OR true")
	}
	v, _ = Eval(&Not{E: fls}, nil)
	if !v.Bool() {
		t.Error("NOT false")
	}
	// Cross-kind numeric equality.
	v, _ = Eval(&BinOp{Op: OpEq, L: ci(2), R: cf(2.0)}, nil)
	if !v.Bool() {
		t.Error("2 = 2.0 should hold")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side references an unbound variable; short-circuiting must
	// avoid evaluating it.
	bad := &Ref{Name: "missing"}
	v, err := Eval(&BinOp{Op: OpAnd, L: &Const{V: types.BoolValue(false)}, R: bad}, nil)
	if err != nil || v.Bool() {
		t.Errorf("false AND <err> = %v, %v", v, err)
	}
	v, err = Eval(&BinOp{Op: OpOr, L: &Const{V: types.BoolValue(true)}, R: bad}, nil)
	if err != nil || !v.Bool() {
		t.Errorf("true OR <err> = %v, %v", v, err)
	}
}

func TestEvalFieldAccessAndLike(t *testing.T) {
	row := types.RecordValue([]string{"name", "nested"},
		[]types.Value{
			types.StringValue("hello world"),
			types.RecordValue([]string{"x"}, []types.Value{types.IntValue(9)}),
		})
	e := env(map[string]types.Value{"r": row})
	v, err := Eval(field("r", "name"), e)
	if err != nil || v.S != "hello world" {
		t.Fatalf("field access = %v, %v", v, err)
	}
	v, _ = Eval(&FieldAcc{Base: field("r", "nested"), Name: "x"}, e)
	if v.AsInt() != 9 {
		t.Errorf("nested access = %v", v)
	}
	v, _ = Eval(&Like{E: field("r", "name"), Needle: "lo wo"}, e)
	if !v.Bool() {
		t.Error("LIKE should match substring")
	}
	v, _ = Eval(&Like{E: field("r", "name"), Needle: "xyz"}, e)
	if v.Bool() {
		t.Error("LIKE should not match")
	}
	// Field access through null propagates null.
	e2 := env(map[string]types.Value{"r": types.NullValue()})
	v, err = Eval(field("r", "name"), e2)
	if err != nil || !v.IsNull() {
		t.Errorf("null.field = %v, %v", v, err)
	}
}

func TestEvalRecordCtor(t *testing.T) {
	e := &RecordCtor{Names: []string{"a", "b"}, Exprs: []Expr{ci(1), cf(2.5)}}
	v, err := Eval(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := v.Field("b"); x.F != 2.5 {
		t.Errorf("record ctor = %v", v)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(&Ref{Name: "nope"}, nil); err == nil {
		t.Error("unbound variable should error")
	}
	e := env(map[string]types.Value{"r": types.IntValue(1)})
	if _, err := Eval(field("r", "f"), e); err == nil {
		t.Error("field access on scalar should error")
	}
}

func TestSplitConjoinRoundtrip(t *testing.T) {
	a := &BinOp{Op: OpLt, L: ci(1), R: ci(2)}
	b := &BinOp{Op: OpGt, L: ci(3), R: ci(2)}
	c := &BinOp{Op: OpEq, L: ci(4), R: ci(4)}
	all := Conjoin([]Expr{a, b, c})
	parts := SplitConjuncts(all)
	if len(parts) != 3 {
		t.Fatalf("split = %d parts", len(parts))
	}
	if parts[0] != a || parts[1] != b || parts[2] != c {
		t.Error("split order broken")
	}
	if Conjoin(nil) != nil {
		t.Error("Conjoin(nil) should be nil")
	}
	if len(SplitConjuncts(nil)) != 0 {
		t.Error("SplitConjuncts(nil) should be empty")
	}
}

func TestRefsAndOnlyRefs(t *testing.T) {
	e := &BinOp{Op: OpAnd,
		L: &BinOp{Op: OpLt, L: field("a", "x"), R: ci(5)},
		R: &BinOp{Op: OpEq, L: field("b", "y"), R: field("a", "z")},
	}
	refs := Refs(e)
	if !refs["a"] || !refs["b"] || len(refs) != 2 {
		t.Errorf("Refs = %v", refs)
	}
	if OnlyRefs(e, map[string]bool{"a": true}) {
		t.Error("OnlyRefs should fail when b referenced")
	}
	if !OnlyRefs(e, map[string]bool{"a": true, "b": true}) {
		t.Error("OnlyRefs should pass")
	}
}

func TestPathOf(t *testing.T) {
	root, path, ok := PathOf(&FieldAcc{Base: field("s", "a"), Name: "b"})
	if !ok || root != "s" || len(path) != 2 || path[0] != "a" || path[1] != "b" {
		t.Errorf("PathOf = %q %v %v", root, path, ok)
	}
	if _, _, ok := PathOf(ci(1)); ok {
		t.Error("PathOf of constant should fail")
	}
	if _, _, ok := PathOf(&BinOp{Op: OpAdd, L: ci(1), R: ci(2)}); ok {
		t.Error("PathOf of arithmetic should fail")
	}
}

func TestInferType(t *testing.T) {
	rt := types.NewRecordType(
		types.Field{Name: "i", Type: types.Int},
		types.Field{Name: "f", Type: types.Float},
		types.Field{Name: "s", Type: types.String},
		types.Field{Name: "kids", Type: types.NewListType(types.NewRecordType(
			types.Field{Name: "age", Type: types.Int},
		))},
	)
	e := Env{"r": rt}
	cases := []struct {
		expr Expr
		want types.Type
	}{
		{&BinOp{Op: OpAdd, L: field("r", "i"), R: ci(1)}, types.Int},
		{&BinOp{Op: OpAdd, L: field("r", "i"), R: field("r", "f")}, types.Float},
		{&BinOp{Op: OpDiv, L: field("r", "i"), R: ci(2)}, types.Float},
		{&BinOp{Op: OpLt, L: field("r", "i"), R: cf(1)}, types.Bool},
		{&Like{E: field("r", "s"), Needle: "x"}, types.Bool},
		{field("r", "kids"), types.NewListType(types.NewRecordType(
			types.Field{Name: "age", Type: types.Int}))},
	}
	for _, c := range cases {
		got, err := InferType(c.expr, e)
		if err != nil {
			t.Errorf("InferType(%s): %v", c.expr, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("InferType(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
	// Errors.
	bad := []Expr{
		&BinOp{Op: OpAdd, L: field("r", "s"), R: ci(1)},
		&BinOp{Op: OpAnd, L: field("r", "i"), R: ci(1)},
		field("r", "nope"),
		&FieldAcc{Base: field("r", "i"), Name: "x"},
		&Ref{Name: "unknown"},
		&Not{E: field("r", "i")},
		&Neg{E: field("r", "s")},
	}
	for _, e2 := range bad {
		if _, err := InferType(e2, e); err == nil {
			t.Errorf("InferType(%s) should fail", e2)
		}
	}
}

func TestAggType(t *testing.T) {
	e := Env{"r": types.NewRecordType(
		types.Field{Name: "i", Type: types.Int},
		types.Field{Name: "s", Type: types.String},
	)}
	if got, _ := AggType(Agg{Kind: AggCount}, e); !got.Equal(types.Int) {
		t.Error("count type")
	}
	if got, _ := AggType(Agg{Kind: AggAvg, Arg: field("r", "i")}, e); !got.Equal(types.Float) {
		t.Error("avg type")
	}
	if got, _ := AggType(Agg{Kind: AggMax, Arg: field("r", "s")}, e); !got.Equal(types.String) {
		t.Error("max over string type")
	}
	if got, _ := AggType(Agg{Kind: AggBag, Arg: field("r", "i")}, e); !got.Equal(types.NewBagType(types.Int)) {
		t.Error("bag type")
	}
	if _, err := AggType(Agg{Kind: AggSum, Arg: field("r", "s")}, e); err == nil {
		t.Error("sum over string should fail")
	}
	if _, err := AggType(Agg{Kind: AggAvg}, e); err == nil {
		t.Error("avg without arg should fail")
	}
}

func TestFold(t *testing.T) {
	e := &BinOp{Op: OpLt,
		L: field("r", "x"),
		R: &BinOp{Op: OpMul, L: ci(6), R: ci(7)},
	}
	folded := Fold(e)
	b, ok := folded.(*BinOp)
	if !ok {
		t.Fatalf("folded = %T", folded)
	}
	if c, ok := b.R.(*Const); !ok || c.V.AsInt() != 42 {
		t.Errorf("right side not folded: %s", b.R)
	}
	if _, ok := b.L.(*FieldAcc); !ok {
		t.Errorf("left side should stay: %s", b.L)
	}
	if Fold(nil) != nil {
		t.Error("Fold(nil)")
	}
}

func TestFoldEvalEquivalenceProperty(t *testing.T) {
	// Property: folding never changes the value of a constant expression.
	f := func(a, b int32, c bool) bool {
		var e Expr = &BinOp{Op: OpAdd,
			L: &BinOp{Op: OpMul, L: ci(int64(a)), R: ci(2)},
			R: ci(int64(b)),
		}
		if c {
			e = &Neg{E: e}
		}
		v1, err1 := Eval(e, nil)
		v2, err2 := Eval(Fold(e), nil)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return v1.Equal(v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExprString(t *testing.T) {
	e := &BinOp{Op: OpAnd,
		L: &BinOp{Op: OpLe, L: field("a", "x"), R: ci(3)},
		R: &Not{E: &BinOp{Op: OpNe, L: field("b", "y"), R: cf(1.5)}},
	}
	want := "((a.x <= 3) AND NOT((b.y <> 1.5)))"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if Equal(e, e) != true {
		t.Error("Equal self")
	}
}
