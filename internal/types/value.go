package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is the runtime representation of any datum flowing through the
// engine. It is a tagged union: exactly the fields relevant to Kind are
// meaningful. Values are cheap to copy; nested payloads are shared.
type Value struct {
	Kind  Kind
	I     int64   // KindInt, and KindBool (0/1)
	F     float64 // KindFloat
	S     string  // KindString
	Rec   *Record // KindRecord
	Elems []Value // KindList, KindBag
}

// Record is an ordered collection of named values. Field order is
// significant for printing and for positional binary layouts.
type Record struct {
	Names  []string
	Values []Value
}

// Convenience constructors.

// NullValue returns the null value.
func NullValue() Value { return Value{Kind: KindNull} }

// BoolValue returns a boolean value.
func BoolValue(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IntValue returns an integer value.
func IntValue(i int64) Value { return Value{Kind: KindInt, I: i} }

// FloatValue returns a float value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, F: f} }

// StringValue returns a string value.
func StringValue(s string) Value { return Value{Kind: KindString, S: s} }

// ListValue returns a list value sharing elems.
func ListValue(elems ...Value) Value { return Value{Kind: KindList, Elems: elems} }

// BagValue returns a bag value sharing elems.
func BagValue(elems ...Value) Value { return Value{Kind: KindBag, Elems: elems} }

// RecordValue builds a record value from parallel name/value slices.
func RecordValue(names []string, values []Value) Value {
	return Value{Kind: KindRecord, Rec: &Record{Names: names, Values: values}}
}

// Bool reports the boolean payload. It is false for non-bool kinds.
func (v Value) Bool() bool { return v.Kind == KindBool && v.I != 0 }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat widens int to float; other kinds yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindFloat:
		return v.F
	case KindInt:
		return float64(v.I)
	}
	return 0
}

// AsInt narrows float to int (truncating); other kinds yield 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	}
	return 0
}

// Field returns the named record field and whether it exists.
func (v Value) Field(name string) (Value, bool) {
	if v.Kind != KindRecord || v.Rec == nil {
		return Value{}, false
	}
	for i, n := range v.Rec.Names {
		if n == name {
			return v.Rec.Values[i], true
		}
	}
	return Value{}, false
}

// Path follows a dotted field path through nested records.
func (v Value) Path(path ...string) (Value, bool) {
	cur := v
	for _, p := range path {
		next, ok := cur.Field(p)
		if !ok {
			return Value{}, false
		}
		cur = next
	}
	return cur, true
}

// Len returns the number of elements of a collection, or 0.
func (v Value) Len() int { return len(v.Elems) }

// Equal reports deep structural equality. Int and float compare numerically
// across kinds (1 == 1.0), matching SQL semantics for mixed arithmetic.
func (v Value) Equal(o Value) bool { return Compare(v, o) == 0 }

// Compare orders two values. Null sorts first; numeric kinds compare
// numerically across int/float; records compare field-by-field in order;
// collections compare element-wise then by length. Cross-kind comparisons
// (other than numeric) order by kind tag so sorting is total.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if Numeric(kindType(a.Kind)) && Numeric(kindType(b.Kind)) {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindBool:
		switch {
		case a.I == b.I:
			return 0
		case a.I < b.I:
			return -1
		}
		return 1
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindRecord:
		an, bn := len(a.Rec.Values), len(b.Rec.Values)
		for i := 0; i < an && i < bn; i++ {
			if c := Compare(a.Rec.Values[i], b.Rec.Values[i]); c != 0 {
				return c
			}
		}
		return an - bn
	case KindList, KindBag:
		for i := 0; i < len(a.Elems) && i < len(b.Elems); i++ {
			if c := Compare(a.Elems[i], b.Elems[i]); c != 0 {
				return c
			}
		}
		return len(a.Elems) - len(b.Elems)
	}
	return 0
}

func kindType(k Kind) Type {
	switch k {
	case KindBool:
		return Bool
	case KindInt:
		return Int
	case KindFloat:
		return Float
	case KindString:
		return String
	case KindNull:
		return Null
	}
	return nil
}

var hashSeed = maphash.MakeSeed()

// Hash returns a stable in-process hash of the value, consistent with Equal:
// equal values hash equally (ints that equal floats hash as floats).
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	v.hashInto(&h)
	return h.Sum64()
}

func (v Value) hashInto(h *maphash.Hash) {
	switch v.Kind {
	case KindNull:
		h.WriteByte(0)
	case KindBool:
		h.WriteByte(1)
		h.WriteByte(byte(v.I))
	case KindInt:
		writeFloatHash(h, float64(v.I))
	case KindFloat:
		writeFloatHash(h, v.F)
	case KindString:
		h.WriteByte(3)
		h.WriteString(v.S)
	case KindRecord:
		h.WriteByte(4)
		for _, f := range v.Rec.Values {
			f.hashInto(h)
		}
	case KindList, KindBag:
		h.WriteByte(5)
		for _, e := range v.Elems {
			e.hashInto(h)
		}
	}
}

func writeFloatHash(h *maphash.Hash, f float64) {
	h.WriteByte(2)
	bits := math.Float64bits(f)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
}

// String renders the value in a JSON-like textual form.
func (v Value) String() string {
	var sb strings.Builder
	v.writeTo(&sb)
	return sb.String()
}

func (v Value) writeTo(sb *strings.Builder) {
	switch v.Kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		if v.I != 0 {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.S))
	case KindRecord:
		sb.WriteByte('{')
		for i, n := range v.Rec.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n)
			sb.WriteString(": ")
			v.Rec.Values[i].writeTo(sb)
		}
		sb.WriteByte('}')
	case KindList, KindBag:
		sb.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.writeTo(sb)
		}
		sb.WriteByte(']')
	default:
		fmt.Fprintf(sb, "<%s>", v.Kind)
	}
}

// TypeOf infers the most specific static type of the value. Collection
// element types are inferred from the first element (Null for empty).
func TypeOf(v Value) Type {
	switch v.Kind {
	case KindNull:
		return Null
	case KindBool:
		return Bool
	case KindInt:
		return Int
	case KindFloat:
		return Float
	case KindString:
		return String
	case KindRecord:
		fields := make([]Field, len(v.Rec.Names))
		for i, n := range v.Rec.Names {
			fields[i] = Field{Name: n, Type: TypeOf(v.Rec.Values[i])}
		}
		return &RecordType{Fields: fields}
	case KindList:
		if len(v.Elems) == 0 {
			return NewListType(Null)
		}
		return NewListType(TypeOf(v.Elems[0]))
	case KindBag:
		if len(v.Elems) == 0 {
			return NewBagType(Null)
		}
		return NewBagType(TypeOf(v.Elems[0]))
	}
	return Null
}

// SortValues sorts a slice of values in Compare order (used to canonicalize
// bag results in tests).
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
