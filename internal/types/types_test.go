package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindRecord: "record", KindList: "list", KindBag: "bag",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestScalarTypeEquality(t *testing.T) {
	if !Int.Equal(Int) || Int.Equal(Float) || Int.Equal(nil) {
		t.Error("scalar type equality broken")
	}
	if !Bool.Equal(Bool) || String.Equal(Bool) {
		t.Error("scalar type equality broken for bool/string")
	}
}

func TestRecordType(t *testing.T) {
	rt := NewRecordType(
		Field{Name: "a", Type: Int},
		Field{Name: "b", Type: Float},
		Field{Name: "c", Type: NewListType(String)},
	)
	if rt.Kind() != KindRecord {
		t.Errorf("kind = %v", rt.Kind())
	}
	if ft, ok := rt.Lookup("b"); !ok || !ft.Equal(Float) {
		t.Errorf("Lookup(b) = %v, %v", ft, ok)
	}
	if _, ok := rt.Lookup("zz"); ok {
		t.Error("Lookup(zz) should fail")
	}
	if rt.Index("c") != 2 || rt.Index("nope") != -1 {
		t.Error("Index broken")
	}
	want := "record(a: int, b: float, c: list(string))"
	if rt.String() != want {
		t.Errorf("String() = %q, want %q", rt.String(), want)
	}
	same := NewRecordType(
		Field{Name: "a", Type: Int},
		Field{Name: "b", Type: Float},
		Field{Name: "c", Type: NewListType(String)},
	)
	if !rt.Equal(same) {
		t.Error("structurally equal records not Equal")
	}
	diff := NewRecordType(Field{Name: "a", Type: Int})
	if rt.Equal(diff) {
		t.Error("different records Equal")
	}
}

func TestCollectionTypes(t *testing.T) {
	lt := NewListType(Int)
	bt := NewBagType(Int)
	if lt.Equal(bt) {
		t.Error("list(int) should not equal bag(int)")
	}
	if !ElemType(lt).Equal(Int) || !ElemType(bt).Equal(Int) {
		t.Error("ElemType broken")
	}
	if ElemType(Int) != nil {
		t.Error("ElemType of scalar should be nil")
	}
	if lt.String() != "list(int)" || bt.String() != "bag(int)" {
		t.Errorf("collection String() = %q / %q", lt, bt)
	}
}

func TestPromote(t *testing.T) {
	if p := Promote(Int, Int); !p.Equal(Int) {
		t.Errorf("Promote(int,int) = %v", p)
	}
	if p := Promote(Int, Float); !p.Equal(Float) {
		t.Errorf("Promote(int,float) = %v", p)
	}
	if p := Promote(Float, Int); !p.Equal(Float) {
		t.Errorf("Promote(float,int) = %v", p)
	}
	if Promote(Int, String) != nil || Promote(nil, Int) != nil {
		t.Error("Promote should reject non-numeric")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !BoolValue(true).Bool() || BoolValue(false).Bool() {
		t.Error("BoolValue broken")
	}
	if IntValue(7).AsInt() != 7 || IntValue(7).AsFloat() != 7.0 {
		t.Error("IntValue conversions broken")
	}
	if FloatValue(2.5).AsInt() != 2 || FloatValue(2.5).AsFloat() != 2.5 {
		t.Error("FloatValue conversions broken")
	}
	if !NullValue().IsNull() || IntValue(0).IsNull() {
		t.Error("IsNull broken")
	}
	rec := RecordValue([]string{"x", "y"}, []Value{IntValue(1), StringValue("s")})
	if v, ok := rec.Field("y"); !ok || v.S != "s" {
		t.Error("Field broken")
	}
	if _, ok := rec.Field("zz"); ok {
		t.Error("Field(zz) should fail")
	}
	nested := RecordValue([]string{"inner"}, []Value{rec})
	if v, ok := nested.Path("inner", "x"); !ok || v.AsInt() != 1 {
		t.Error("Path broken")
	}
	if _, ok := nested.Path("inner", "zz"); ok {
		t.Error("Path through missing field should fail")
	}
	if ListValue(IntValue(1), IntValue(2)).Len() != 2 {
		t.Error("Len broken")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(IntValue(1), FloatValue(1.0)) != 0 {
		t.Error("1 should equal 1.0")
	}
	if Compare(IntValue(1), FloatValue(1.5)) >= 0 {
		t.Error("1 < 1.5")
	}
	if Compare(FloatValue(2.5), IntValue(2)) <= 0 {
		t.Error("2.5 > 2")
	}
}

func TestCompareNullsFirst(t *testing.T) {
	if Compare(NullValue(), IntValue(-1000)) >= 0 {
		t.Error("null should sort before everything")
	}
	if Compare(IntValue(0), NullValue()) <= 0 {
		t.Error("values should sort after null")
	}
	if Compare(NullValue(), NullValue()) != 0 {
		t.Error("null == null for sorting")
	}
}

func TestCompareRecordsAndCollections(t *testing.T) {
	a := RecordValue([]string{"x", "y"}, []Value{IntValue(1), IntValue(2)})
	b := RecordValue([]string{"x", "y"}, []Value{IntValue(1), IntValue(3)})
	if Compare(a, b) >= 0 {
		t.Error("record comparison should be field-by-field")
	}
	l1 := ListValue(IntValue(1), IntValue(2))
	l2 := ListValue(IntValue(1), IntValue(2), IntValue(3))
	if Compare(l1, l2) >= 0 {
		t.Error("shorter prefix list sorts first")
	}
	if Compare(l1, l1) != 0 {
		t.Error("list self-compare")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// Property: equal values hash equal, including int/float cross-kind.
	pairs := [][2]Value{
		{IntValue(42), FloatValue(42)},
		{StringValue("abc"), StringValue("abc")},
		{ListValue(IntValue(1)), ListValue(FloatValue(1))},
		{
			RecordValue([]string{"a"}, []Value{IntValue(5)}),
			RecordValue([]string{"a"}, []Value{FloatValue(5)}),
		},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("%s should equal %s", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %s and %s hash differently", p[0], p[1])
		}
	}
}

func TestHashIntFloatProperty(t *testing.T) {
	f := func(x int32) bool {
		a, b := IntValue(int64(x)), FloatValue(float64(x))
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a) for scalar values.
	f := func(a, b int64, fa, fb float64) bool {
		va, vb := IntValue(a), FloatValue(fb)
		if math.IsNaN(fb) {
			return true
		}
		c1, c2 := Compare(va, vb), Compare(vb, va)
		return (c1 == 0 && c2 == 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	v := RecordValue([]string{"id", "tags", "ok"},
		[]Value{IntValue(3), ListValue(StringValue("a"), StringValue("b")), BoolValue(true)})
	want := `{id: 3, tags: ["a", "b"], ok: true}`
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if NullValue().String() != "null" {
		t.Error("null String()")
	}
	if FloatValue(1.5).String() != "1.5" {
		t.Errorf("float String() = %q", FloatValue(1.5).String())
	}
}

func TestTypeOf(t *testing.T) {
	v := RecordValue([]string{"a", "b"},
		[]Value{IntValue(1), ListValue(FloatValue(2.5))})
	rt, ok := TypeOf(v).(*RecordType)
	if !ok {
		t.Fatalf("TypeOf = %T", TypeOf(v))
	}
	if ft, _ := rt.Lookup("b"); !ft.Equal(NewListType(Float)) {
		t.Errorf("b type = %v", ft)
	}
	if !TypeOf(ListValue()).Equal(NewListType(Null)) {
		t.Error("empty list element type should be null")
	}
	if !TypeOf(BagValue(IntValue(1))).Equal(NewBagType(Int)) {
		t.Error("bag TypeOf broken")
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{IntValue(3), NullValue(), IntValue(1), FloatValue(2.5)}
	SortValues(vs)
	want := []Value{NullValue(), IntValue(1), FloatValue(2.5), IntValue(3)}
	for i := range vs {
		if Compare(vs[i], want[i]) != 0 {
			t.Fatalf("sorted[%d] = %s, want %s", i, vs[i], want[i])
		}
	}
}
