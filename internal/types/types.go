// Package types defines the data model of Proteus-Go: a small algebra of
// scalar and nested types (records, bags, lists) and a tagged-union Value
// representation shared by every layer of the engine.
//
// The model follows the monoid comprehension calculus of Fegaras and Maier,
// which the paper builds on: collections (bags, lists) may nest arbitrarily,
// and records are first-class, so CSV rows, JSON documents, and binary
// relational tuples all map onto the same representation.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindRecord
	KindList // ordered collection (JSON array, calculus list)
	KindBag  // unordered collection with duplicates (default query output)
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindRecord:
		return "record"
	case KindList:
		return "list"
	case KindBag:
		return "bag"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsScalar reports whether the kind is a scalar (non-nested) kind.
func (k Kind) IsScalar() bool {
	switch k {
	case KindBool, KindInt, KindFloat, KindString:
		return true
	}
	return false
}

// IsCollection reports whether the kind is a collection kind.
func (k Kind) IsCollection() bool { return k == KindList || k == KindBag }

// Type describes the static type of a value. Types are immutable once built.
type Type interface {
	Kind() Kind
	String() string
	// Equal reports structural equality of two types.
	Equal(Type) bool
}

type scalarType struct{ kind Kind }

func (t scalarType) Kind() Kind     { return t.kind }
func (t scalarType) String() string { return t.kind.String() }
func (t scalarType) Equal(o Type) bool {
	return o != nil && o.Kind() == t.kind
}

// The singleton scalar types.
var (
	Null   Type = scalarType{KindNull}
	Bool   Type = scalarType{KindBool}
	Int    Type = scalarType{KindInt}
	Float  Type = scalarType{KindFloat}
	String Type = scalarType{KindString}
)

// Field is a named, typed record member.
type Field struct {
	Name string
	Type Type
}

// RecordType is the type of a record with an ordered list of fields.
type RecordType struct {
	Fields []Field
}

// NewRecordType builds a record type from alternating name/type pairs.
func NewRecordType(fields ...Field) *RecordType { return &RecordType{Fields: fields} }

// Kind implements Type.
func (t *RecordType) Kind() Kind { return KindRecord }

// String implements Type.
func (t *RecordType) String() string {
	var sb strings.Builder
	sb.WriteString("record(")
	for i, f := range t.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
		sb.WriteString(": ")
		sb.WriteString(f.Type.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Equal implements Type.
func (t *RecordType) Equal(o Type) bool {
	ot, ok := o.(*RecordType)
	if !ok || len(ot.Fields) != len(t.Fields) {
		return false
	}
	for i, f := range t.Fields {
		if f.Name != ot.Fields[i].Name || !f.Type.Equal(ot.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Lookup returns the type of the named field and whether it exists.
func (t *RecordType) Lookup(name string) (Type, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// Index returns the ordinal position of the named field, or -1.
func (t *RecordType) Index(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the field names in declaration order.
func (t *RecordType) Names() []string {
	names := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		names[i] = f.Name
	}
	return names
}

// ListType is the type of an ordered collection.
type ListType struct{ Elem Type }

// NewListType returns a list type with the given element type.
func NewListType(elem Type) *ListType { return &ListType{Elem: elem} }

// Kind implements Type.
func (t *ListType) Kind() Kind { return KindList }

// String implements Type.
func (t *ListType) String() string { return "list(" + t.Elem.String() + ")" }

// Equal implements Type.
func (t *ListType) Equal(o Type) bool {
	ot, ok := o.(*ListType)
	return ok && t.Elem.Equal(ot.Elem)
}

// BagType is the type of an unordered collection with duplicates.
type BagType struct{ Elem Type }

// NewBagType returns a bag type with the given element type.
func NewBagType(elem Type) *BagType { return &BagType{Elem: elem} }

// Kind implements Type.
func (t *BagType) Kind() Kind { return KindBag }

// String implements Type.
func (t *BagType) String() string { return "bag(" + t.Elem.String() + ")" }

// Equal implements Type.
func (t *BagType) Equal(o Type) bool {
	ot, ok := o.(*BagType)
	return ok && t.Elem.Equal(ot.Elem)
}

// ElemType returns the element type of a collection type, or nil.
func ElemType(t Type) Type {
	switch c := t.(type) {
	case *ListType:
		return c.Elem
	case *BagType:
		return c.Elem
	}
	return nil
}

// Numeric reports whether t is int or float.
func Numeric(t Type) bool {
	if t == nil {
		return false
	}
	return t.Kind() == KindInt || t.Kind() == KindFloat
}

// Promote returns the common numeric type of a and b (float dominates int).
// It returns nil if the types cannot be promoted to a common numeric type.
func Promote(a, b Type) Type {
	if !Numeric(a) || !Numeric(b) {
		return nil
	}
	if a.Kind() == KindFloat || b.Kind() == KindFloat {
		return Float
	}
	return Int
}
