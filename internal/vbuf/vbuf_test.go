package vbuf

import (
	"testing"

	"proteus/internal/types"
)

func TestAllocAssignsDistinctSlots(t *testing.T) {
	var a Alloc
	s1 := a.Int()
	s2 := a.Int()
	s3 := a.Float()
	if s1.Idx == s2.Idx {
		t.Error("two int slots share an index")
	}
	if s1.Null == s2.Null || s2.Null == s3.Null {
		t.Error("null indexes must be unique across all slots")
	}
	if s3.Class != ClassFloat {
		t.Error("wrong class")
	}
}

func TestForType(t *testing.T) {
	var a Alloc
	cases := map[types.Type]Class{
		types.Int:                    ClassInt,
		types.Float:                  ClassFloat,
		types.Bool:                   ClassBool,
		types.String:                 ClassString,
		types.NewListType(types.Int): ClassValue,
		types.NewRecordType():        ClassValue,
	}
	for typ, class := range cases {
		if s := a.ForType(typ); s.Class != class {
			t.Errorf("ForType(%s) class = %d, want %d", typ, s.Class, class)
		}
	}
}

func TestRegsGetSetRoundtrip(t *testing.T) {
	var a Alloc
	slots := []Slot{a.Int(), a.Float(), a.Bool(), a.String(), a.Value()}
	vals := []types.Value{
		types.IntValue(-9),
		types.FloatValue(2.5),
		types.BoolValue(true),
		types.StringValue("hi"),
		types.ListValue(types.IntValue(1)),
	}
	r := NewRegs(&a)
	for i, s := range slots {
		r.Set(s, vals[i])
		got := r.Get(s)
		if types.Compare(got, vals[i]) != 0 {
			t.Errorf("slot %d roundtrip: %s != %s", i, got, vals[i])
		}
		if r.IsNull(s) {
			t.Errorf("slot %d should not be null", i)
		}
	}
	// Null handling.
	r.Set(slots[0], types.NullValue())
	if !r.IsNull(slots[0]) || !r.Get(slots[0]).IsNull() {
		t.Error("null set/get broken")
	}
	r.ClearNull(slots[0])
	if r.IsNull(slots[0]) {
		t.Error("ClearNull broken")
	}
	r.SetNull(slots[1])
	if !r.Get(slots[1]).IsNull() {
		t.Error("SetNull broken")
	}
}

func TestRegsSizedToAlloc(t *testing.T) {
	var a Alloc
	a.Int()
	a.Int()
	a.String()
	r := NewRegs(&a)
	if len(r.I) != 2 || len(r.S) != 1 || len(r.F) != 0 || len(r.Null) != 3 {
		t.Errorf("regs sizes: I=%d S=%d F=%d Null=%d", len(r.I), len(r.S), len(r.F), len(r.Null))
	}
}
