package vbuf

import (
	"testing"

	"proteus/internal/types"
)

func TestAllocAssignsDistinctSlots(t *testing.T) {
	var a Alloc
	s1 := a.Int()
	s2 := a.Int()
	s3 := a.Float()
	if s1.Idx == s2.Idx {
		t.Error("two int slots share an index")
	}
	if s1.Null == s2.Null || s2.Null == s3.Null {
		t.Error("null indexes must be unique across all slots")
	}
	if s3.Class != ClassFloat {
		t.Error("wrong class")
	}
}

func TestForType(t *testing.T) {
	var a Alloc
	cases := map[types.Type]Class{
		types.Int:                    ClassInt,
		types.Float:                  ClassFloat,
		types.Bool:                   ClassBool,
		types.String:                 ClassString,
		types.NewListType(types.Int): ClassValue,
		types.NewRecordType():        ClassValue,
	}
	for typ, class := range cases {
		if s := a.ForType(typ); s.Class != class {
			t.Errorf("ForType(%s) class = %d, want %d", typ, s.Class, class)
		}
	}
}

func TestRegsGetSetRoundtrip(t *testing.T) {
	var a Alloc
	slots := []Slot{a.Int(), a.Float(), a.Bool(), a.String(), a.Value()}
	vals := []types.Value{
		types.IntValue(-9),
		types.FloatValue(2.5),
		types.BoolValue(true),
		types.StringValue("hi"),
		types.ListValue(types.IntValue(1)),
	}
	r := NewRegs(&a)
	for i, s := range slots {
		r.Set(s, vals[i])
		got := r.Get(s)
		if types.Compare(got, vals[i]) != 0 {
			t.Errorf("slot %d roundtrip: %s != %s", i, got, vals[i])
		}
		if r.IsNull(s) {
			t.Errorf("slot %d should not be null", i)
		}
	}
	// Null handling.
	r.Set(slots[0], types.NullValue())
	if !r.IsNull(slots[0]) || !r.Get(slots[0]).IsNull() {
		t.Error("null set/get broken")
	}
	r.ClearNull(slots[0])
	if r.IsNull(slots[0]) {
		t.Error("ClearNull broken")
	}
	r.SetNull(slots[1])
	if !r.Get(slots[1]).IsNull() {
		t.Error("SetNull broken")
	}
}

func TestRegsSizedToAlloc(t *testing.T) {
	var a Alloc
	a.Int()
	a.Int()
	a.String()
	r := NewRegs(&a)
	if len(r.I) != 2 || len(r.S) != 1 || len(r.F) != 0 || len(r.Null) != 3 {
		t.Errorf("regs sizes: I=%d S=%d F=%d Null=%d", len(r.I), len(r.S), len(r.F), len(r.Null))
	}
}

func TestBatchLazyColumns(t *testing.T) {
	var a Alloc
	i0, f0, s0 := a.Int(), a.Float(), a.String()
	b := NewBatch(&a)
	if b.I[i0.Idx] != nil || b.F[f0.Idx] != nil || b.S[s0.Idx] != nil {
		t.Fatal("columns allocated eagerly")
	}
	ints := b.Ints(i0.Idx)
	if len(ints) != BatchSize {
		t.Fatalf("int column len = %d, want %d", len(ints), BatchSize)
	}
	// Second call returns the same backing array.
	ints[3] = 42
	if again := b.Ints(i0.Idx); again[3] != 42 {
		t.Error("Ints reallocated on second call")
	}
	if b.F[f0.Idx] != nil {
		t.Error("untouched float column was allocated")
	}
	if nulls := b.Nulls(i0.Null); len(nulls) != BatchSize {
		t.Errorf("null column len = %d", len(nulls))
	}
}

func TestBatchSelectionDiscipline(t *testing.T) {
	var a Alloc
	s := a.Int()
	b := NewBatch(&a)
	col := b.Ints(s.Idx)
	for i := 0; i < 10; i++ {
		col[i] = int64(i)
	}
	b.ResetSel(10)
	if b.N != 10 || len(b.Sel) != 10 || b.Sel[0] != 0 || b.Sel[9] != 9 {
		t.Fatalf("identity selection wrong: N=%d Sel=%v", b.N, b.Sel)
	}

	// First filter (keep evens) writes survivors into the scratch buffer,
	// leaving the shared identity array untouched.
	out := b.SelScratch()
	n := 0
	for _, j := range b.Sel {
		if col[j]%2 == 0 {
			out[n] = j
			n++
		}
	}
	b.Sel = out[:n]
	if want := []int32{0, 2, 4, 6, 8}; len(b.Sel) != len(want) {
		t.Fatalf("Sel = %v, want %v", b.Sel, want)
	}

	// Second filter compacts Sel in place (write index never passes read).
	m := 0
	for _, j := range b.Sel {
		if col[j] >= 4 {
			b.Sel[m] = j
			m++
		}
	}
	b.Sel = b.Sel[:m]
	if len(b.Sel) != 3 || b.Sel[0] != 4 || b.Sel[2] != 8 {
		t.Fatalf("in-place compaction: Sel = %v", b.Sel)
	}

	// ResetSel restores the pristine identity prefix for the next batch.
	b.ResetSel(6)
	for i, j := range b.Sel {
		if int32(i) != j {
			t.Fatalf("identity corrupted at %d: %v", i, b.Sel)
		}
	}
}
