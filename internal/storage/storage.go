// Package storage implements the Memory Manager of the paper (§4): every
// input file is made to appear memory-resident (the paper memory-maps and
// lets the OS page; we read into a pooled buffer once and keep it), while
// caching structures are pinned in an accounted arena with an explicit
// budget so the Caching Manager can decide what to evict.
package storage

import (
	"fmt"
	"os"
	"sync"
)

// Manager owns all large memory blocks of the engine: input file images and
// the cache arena. It is safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	files map[string][]byte

	arenaBudget int64 // bytes allowed for caches; 0 means unlimited
	arenaUsed   int64
}

// NewManager returns a Manager with the given cache-arena budget in bytes
// (0 = unlimited).
func NewManager(arenaBudget int64) *Manager {
	return &Manager{files: map[string][]byte{}, arenaBudget: arenaBudget}
}

// File returns the full contents of path, loading it on first access and
// serving the same shared image afterwards. This models the paper's
// memory-mapped inputs: after the cold read, data access is pure memory
// access.
func (m *Manager) File(path string) ([]byte, error) {
	m.mu.Lock()
	if b, ok := m.files[path]; ok {
		m.mu.Unlock()
		return b, nil
	}
	m.mu.Unlock()
	// Read outside the lock; racing loaders are harmless (last wins).
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: loading %s: %w", path, err)
	}
	m.mu.Lock()
	m.files[path] = b
	m.mu.Unlock()
	return b, nil
}

// PutFile registers an in-memory "file" image under a synthetic path. Data
// generators and tests use it to register datasets without touching disk.
func (m *Manager) PutFile(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = data
}

// Release drops a file image (e.g. after its dataset is dropped).
func (m *Manager) Release(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
}

// FileBytes reports the total bytes of loaded file images.
func (m *Manager) FileBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, b := range m.files {
		n += int64(len(b))
	}
	return n
}

// ArenaReserve accounts size bytes against the cache arena budget. It
// reports whether the reservation fits; the Caching Manager evicts and
// retries when it does not.
func (m *Manager) ArenaReserve(size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.arenaBudget > 0 && m.arenaUsed+size > m.arenaBudget {
		return false
	}
	m.arenaUsed += size
	return true
}

// ArenaRelease returns size bytes to the arena budget.
func (m *Manager) ArenaRelease(size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arenaUsed -= size
	if m.arenaUsed < 0 {
		m.arenaUsed = 0
	}
}

// ArenaUsed reports the bytes currently pinned in the cache arena.
func (m *Manager) ArenaUsed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arenaUsed
}

// ArenaBudget reports the configured budget (0 = unlimited).
func (m *Manager) ArenaBudget() int64 { return m.arenaBudget }
