package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileLoadAndShare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(0)
	a, err := m.File(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.File(path)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("second load should serve the same image")
	}
	if m.FileBytes() != 5 {
		t.Errorf("FileBytes = %d", m.FileBytes())
	}
	m.Release(path)
	if m.FileBytes() != 0 {
		t.Error("Release did not drop the image")
	}
}

func TestFileMissing(t *testing.T) {
	m := NewManager(0)
	if _, err := m.File("/nonexistent/nope.bin"); err == nil {
		t.Error("missing file should error")
	}
}

func TestPutFile(t *testing.T) {
	m := NewManager(0)
	m.PutFile("mem://x", []byte{1, 2, 3})
	got, err := m.File("mem://x")
	if err != nil || len(got) != 3 {
		t.Fatalf("PutFile roundtrip: %v %v", got, err)
	}
}

func TestArenaAccounting(t *testing.T) {
	m := NewManager(100)
	if !m.ArenaReserve(60) {
		t.Fatal("first reservation should fit")
	}
	if m.ArenaReserve(50) {
		t.Fatal("overflow reservation should fail")
	}
	if m.ArenaUsed() != 60 {
		t.Errorf("used = %d", m.ArenaUsed())
	}
	m.ArenaRelease(60)
	if m.ArenaUsed() != 0 {
		t.Errorf("used after release = %d", m.ArenaUsed())
	}
	if !m.ArenaReserve(100) {
		t.Error("freed space should be reusable")
	}
	// Over-release clamps to zero.
	m.ArenaRelease(1000)
	if m.ArenaUsed() != 0 {
		t.Errorf("over-release: %d", m.ArenaUsed())
	}
}

func TestUnlimitedArena(t *testing.T) {
	m := NewManager(0)
	if !m.ArenaReserve(1 << 40) {
		t.Error("unlimited arena should accept anything")
	}
	if m.ArenaBudget() != 0 {
		t.Errorf("budget = %d", m.ArenaBudget())
	}
}
