// Package optimizer rewrites nested-relational-algebra plans before code
// generation (§4 "Query Optimization"): rule-based passes first (constant
// folding, selection pushdown — including pushing element filters into the
// Unnest operator's embedded predicate — and join-predicate absorption),
// then cost-based decisions (build/probe side selection for joins) driven
// by the statistics and cost formulas that the input plug-ins provide.
package optimizer

import (
	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/stats"
)

// CostSource supplies per-dataset cost inputs; the engine's catalog
// implements it by delegating to the registered input plug-ins (§5.2
// "Enabling Cost-based Optimizations").
type CostSource interface {
	// Rows returns the dataset's cardinality (0 if unknown).
	Rows(dataset string) int64
	// FieldCost returns the plug-in's per-field access cost weight.
	FieldCost(dataset string) float64
}

// Env carries optimization services.
type Env struct {
	Stats *stats.Store
	Costs CostSource
}

// Optimize runs the full rewrite pipeline.
func Optimize(plan algebra.Node, env *Env) algebra.Node {
	plan = foldConstants(plan)
	plan = pushSelections(plan)
	plan = absorbJoinPredicates(plan)
	plan = pushUnnestFilters(plan)
	if env != nil {
		plan = chooseBuildSides(plan, env)
	}
	plan = pushProjections(plan)
	plan = annotatePushdown(plan)
	return plan
}

// annotatePushdown records, per Scan, the sargable conjuncts (field path
// vs. constant comparisons) of the Select chain sitting directly above it.
// The Selects stay in the plan and still evaluate the predicates — the
// annotation is advisory metadata the executor uses to consult cached
// blocks' zone maps (window skipping) and bitmap indexes. Because every
// recorded conjunct comes from a Select that dominates the scan through a
// pure Select chain, a row provably failing one of them can be skipped at
// the source without changing any result.
func annotatePushdown(n algebra.Node) algebra.Node {
	algebra.Walk(n, func(node algebra.Node) bool {
		if s, ok := node.(*algebra.Scan); ok {
			s.Pushed = s.Pushed[:0]
		}
		return true
	})
	var visit func(node algebra.Node, underSelect bool)
	visit = func(node algebra.Node, underSelect bool) {
		if sel, ok := node.(*algebra.Select); ok {
			if !underSelect { // chain top: walk the whole Select chain once
				var conjs []expr.Expr
				cur := algebra.Node(sel)
				for {
					s2, ok := cur.(*algebra.Select)
					if !ok {
						break
					}
					conjs = append(conjs, expr.SplitConjuncts(s2.Pred)...)
					cur = s2.Child
				}
				if scan, ok := cur.(*algebra.Scan); ok {
					for _, cj := range conjs {
						if pp, ok := sargable(cj, scan.Binding); ok {
							scan.Pushed = append(scan.Pushed, pp)
						}
					}
				}
			}
			visit(sel.Child, true)
			return
		}
		for _, k := range node.Children() {
			visit(k, false)
		}
	}
	visit(n, false)
	return n
}

// sargable recognizes conjuncts of the form <path> <cmp> <const> (either
// side order) on the given binding, normalizing the constant to the right.
func sargable(e expr.Expr, binding string) (algebra.PushedPred, bool) {
	b, ok := e.(*expr.BinOp)
	if !ok {
		return algebra.PushedPred{}, false
	}
	switch b.Op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return algebra.PushedPred{}, false
	}
	col, k, op := b.L, b.R, b.Op
	if _, isConst := col.(*expr.Const); isConst {
		col, k = k, col
		switch op {
		case expr.OpLt:
			op = expr.OpGt
		case expr.OpLe:
			op = expr.OpGe
		case expr.OpGt:
			op = expr.OpLt
		case expr.OpGe:
			op = expr.OpLe
		}
	}
	c, ok := k.(*expr.Const)
	if !ok || c.V.IsNull() {
		return algebra.PushedPred{}, false
	}
	root, path, ok := expr.PathOf(col)
	if !ok || root != binding || len(path) == 0 {
		return algebra.PushedPred{}, false
	}
	return algebra.PushedPred{Path: joinPath(path), Op: op, V: c.V}, true
}

// rebuild reconstructs a node with new children (children slice order
// matches Node.Children()).
func rebuild(n algebra.Node, kids []algebra.Node) algebra.Node {
	switch x := n.(type) {
	case *algebra.Scan:
		return x
	case *algebra.Select:
		return &algebra.Select{Pred: x.Pred, Child: kids[0]}
	case *algebra.Join:
		return &algebra.Join{Pred: x.Pred, Left: kids[0], Right: kids[1], Outer: x.Outer}
	case *algebra.Unnest:
		return &algebra.Unnest{Path: x.Path, Binding: x.Binding, Pred: x.Pred, Outer: x.Outer, Child: kids[0]}
	case *algebra.Reduce:
		return &algebra.Reduce{Aggs: x.Aggs, Names: x.Names, Pred: x.Pred, Child: kids[0]}
	case *algebra.Nest:
		return &algebra.Nest{GroupBy: x.GroupBy, GroupNames: x.GroupNames, Aggs: x.Aggs,
			AggNames: x.AggNames, Pred: x.Pred, Child: kids[0]}
	}
	return n
}

func mapChildren(n algebra.Node, fn func(algebra.Node) algebra.Node) algebra.Node {
	kids := n.Children()
	if len(kids) == 0 {
		return n
	}
	newKids := make([]algebra.Node, len(kids))
	changed := false
	for i, k := range kids {
		nk := fn(k)
		newKids[i] = nk
		if nk != k {
			changed = true
		}
	}
	if !changed {
		return n
	}
	return rebuild(n, newKids)
}

// foldConstants folds constant sub-expressions in every predicate.
func foldConstants(n algebra.Node) algebra.Node {
	n = mapChildren(n, foldConstants)
	switch x := n.(type) {
	case *algebra.Select:
		return &algebra.Select{Pred: expr.Fold(x.Pred), Child: x.Child}
	case *algebra.Join:
		return &algebra.Join{Pred: expr.Fold(x.Pred), Left: x.Left, Right: x.Right, Outer: x.Outer}
	case *algebra.Unnest:
		p := x.Pred
		if p != nil {
			p = expr.Fold(p)
		}
		return &algebra.Unnest{Path: x.Path, Binding: x.Binding, Pred: p, Outer: x.Outer, Child: x.Child}
	}
	return n
}

// pushSelections moves each selection conjunct as close to its data source
// as its variable references allow.
func pushSelections(n algebra.Node) algebra.Node {
	n = mapChildren(n, pushSelections)
	sel, ok := n.(*algebra.Select)
	if !ok {
		return n
	}
	var remaining []expr.Expr
	child := sel.Child
	for _, conj := range expr.SplitConjuncts(sel.Pred) {
		pushed, newChild := tryPush(conj, child)
		if pushed {
			child = pushSelections(newChild)
		} else {
			remaining = append(remaining, conj)
		}
	}
	if len(remaining) == 0 {
		return child
	}
	return &algebra.Select{Pred: expr.Conjoin(remaining), Child: child}
}

// tryPush attempts to sink one conjunct below child's top operator.
func tryPush(conj expr.Expr, child algebra.Node) (bool, algebra.Node) {
	switch x := child.(type) {
	case *algebra.Join:
		lb := bindingSet(x.Left)
		rb := bindingSet(x.Right)
		switch {
		case expr.OnlyRefs(conj, lb):
			return true, &algebra.Join{
				Pred:  x.Pred,
				Left:  &algebra.Select{Pred: conj, Child: x.Left},
				Right: x.Right,
				Outer: x.Outer,
			}
		case expr.OnlyRefs(conj, rb) && !x.Outer:
			return true, &algebra.Join{
				Pred:  x.Pred,
				Left:  x.Left,
				Right: &algebra.Select{Pred: conj, Child: x.Right},
				Outer: x.Outer,
			}
		}
	case *algebra.Select:
		// Slide below adjacent selections to reach deeper operators.
		pushed, newGrand := tryPush(conj, x.Child)
		if pushed {
			return true, &algebra.Select{Pred: x.Pred, Child: newGrand}
		}
	case *algebra.Unnest:
		cb := bindingSet(x.Child)
		if expr.OnlyRefs(conj, cb) && !x.Outer {
			return true, &algebra.Unnest{
				Path:    x.Path,
				Binding: x.Binding,
				Pred:    x.Pred,
				Outer:   x.Outer,
				Child:   &algebra.Select{Pred: conj, Child: x.Child},
			}
		}
	}
	return false, child
}

func bindingSet(n algebra.Node) map[string]bool {
	out := map[string]bool{}
	for name := range n.Bindings() {
		out[name] = true
	}
	return out
}

// absorbJoinPredicates merges a Select sitting directly on a Join into the
// join predicate when it references both sides (giving the hash join its
// equi-keys).
func absorbJoinPredicates(n algebra.Node) algebra.Node {
	n = mapChildren(n, absorbJoinPredicates)
	sel, ok := n.(*algebra.Select)
	if !ok {
		return n
	}
	j, ok := sel.Child.(*algebra.Join)
	if !ok || j.Outer {
		return n
	}
	lb := bindingSet(j.Left)
	rb := bindingSet(j.Right)
	var absorbed, rest []expr.Expr
	for _, conj := range expr.SplitConjuncts(sel.Pred) {
		refs := expr.Refs(conj)
		touchesL, touchesR := false, false
		for r := range refs {
			if lb[r] {
				touchesL = true
			}
			if rb[r] {
				touchesR = true
			}
		}
		if touchesL && touchesR {
			absorbed = append(absorbed, conj)
		} else {
			rest = append(rest, conj)
		}
	}
	if len(absorbed) == 0 {
		return n
	}
	pred := j.Pred
	if isTrue(pred) {
		pred = expr.Conjoin(absorbed)
	} else {
		pred = expr.Conjoin(append([]expr.Expr{pred}, absorbed...))
	}
	nj := &algebra.Join{Pred: pred, Left: j.Left, Right: j.Right, Outer: j.Outer}
	if len(rest) == 0 {
		return nj
	}
	return &algebra.Select{Pred: expr.Conjoin(rest), Child: nj}
}

func isTrue(e expr.Expr) bool {
	c, ok := e.(*expr.Const)
	return ok && c.V.Bool()
}

// pushUnnestFilters moves a Select over an Unnest that references the
// unnested element into the Unnest's embedded predicate — the nested
// algebra's specialized filtering step (Table 1).
func pushUnnestFilters(n algebra.Node) algebra.Node {
	n = mapChildren(n, pushUnnestFilters)
	sel, ok := n.(*algebra.Select)
	if !ok {
		return n
	}
	u, ok := sel.Child.(*algebra.Unnest)
	if !ok || u.Outer {
		return n
	}
	elemOnly := map[string]bool{u.Binding: true}
	var embedded, rest []expr.Expr
	for _, conj := range expr.SplitConjuncts(sel.Pred) {
		if expr.OnlyRefs(conj, elemOnly) {
			embedded = append(embedded, conj)
		} else {
			rest = append(rest, conj)
		}
	}
	if len(embedded) == 0 {
		return n
	}
	pred := u.Pred
	if pred == nil {
		pred = expr.Conjoin(embedded)
	} else {
		pred = expr.Conjoin(append([]expr.Expr{pred}, embedded...))
	}
	nu := &algebra.Unnest{Path: u.Path, Binding: u.Binding, Pred: pred, Outer: u.Outer, Child: u.Child}
	if len(rest) == 0 {
		return nu
	}
	return &algebra.Select{Pred: expr.Conjoin(rest), Child: nu}
}

// chooseBuildSides estimates subtree cardinalities bottom-up and orients
// each inner join so the smaller input is the build (right) side.
func chooseBuildSides(n algebra.Node, env *Env) algebra.Node {
	n = mapChildren(n, func(k algebra.Node) algebra.Node { return chooseBuildSides(k, env) })
	j, ok := n.(*algebra.Join)
	if !ok || j.Outer {
		return n
	}
	lc := EstimateCard(j.Left, env)
	rc := EstimateCard(j.Right, env)
	if lc < rc {
		// Swapping operands of an inner join is safe; the predicate is
		// symmetric.
		return &algebra.Join{Pred: j.Pred, Left: j.Right, Right: j.Left, Outer: false}
	}
	return n
}

// pushProjections records, per Scan, the field paths the plan references —
// surfaced in EXPLAIN output; the compiler performs the same analysis when
// generating scan code.
func pushProjections(n algebra.Node) algebra.Node {
	needs := map[string]map[string]bool{}
	var addExpr func(e expr.Expr)
	addExpr = func(e expr.Expr) {
		if e == nil {
			return
		}
		if root, path, ok := expr.PathOf(e); ok {
			set := needs[root]
			if set == nil {
				set = map[string]bool{}
				needs[root] = set
			}
			set[joinPath(path)] = true
			return
		}
		switch x := e.(type) {
		case *expr.BinOp:
			addExpr(x.L)
			addExpr(x.R)
		case *expr.Not:
			addExpr(x.E)
		case *expr.Neg:
			addExpr(x.E)
		case *expr.IsNull:
			addExpr(x.E)
		case *expr.Like:
			addExpr(x.E)
		case *expr.RecordCtor:
			for _, s := range x.Exprs {
				addExpr(s)
			}
		}
	}
	algebra.Walk(n, func(node algebra.Node) bool {
		switch x := node.(type) {
		case *algebra.Select:
			addExpr(x.Pred)
		case *algebra.Join:
			addExpr(x.Pred)
		case *algebra.Unnest:
			addExpr(x.Pred)
			addExpr(x.Path)
		case *algebra.Reduce:
			addExpr(x.Pred)
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		case *algebra.Nest:
			addExpr(x.Pred)
			for _, g := range x.GroupBy {
				addExpr(g)
			}
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		}
		return true
	})
	algebra.Walk(n, func(node algebra.Node) bool {
		if s, ok := node.(*algebra.Scan); ok {
			set := needs[s.Binding]
			s.Fields = s.Fields[:0]
			for p := range set {
				if p != "" {
					s.Fields = append(s.Fields, p)
				}
			}
			sortStrings(s.Fields)
		}
		return true
	})
	return n
}

func joinPath(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
