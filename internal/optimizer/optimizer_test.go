package optimizer

import (
	"strings"
	"testing"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/stats"
	"proteus/internal/types"
)

func field(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }
func ci(v int64) expr.Expr        { return &expr.Const{V: types.IntValue(v)} }

func scanT(binding string) *algebra.Scan {
	return &algebra.Scan{Dataset: "t", Binding: binding, Type: types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "b", Type: types.Int},
	)}
}

func scanU(binding string) *algebra.Scan {
	return &algebra.Scan{Dataset: "u", Binding: binding, Type: types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
	)}
}

type fixedCosts map[string]int64

func (f fixedCosts) Rows(ds string) int64        { return f[ds] }
func (f fixedCosts) FieldCost(ds string) float64 { return 1 }

func testEnv() *Env {
	return &Env{Stats: stats.NewStore(), Costs: fixedCosts{"t": 1000, "u": 10}}
}

func TestPushSelectionBelowJoin(t *testing.T) {
	// σ(x.a<5)(t ⋈ u) → the conjunct referencing only x sinks to t's side.
	join := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: field("x", "a"), R: field("y", "a")},
		Left:  scanT("x"),
		Right: scanU("y"),
	}
	plan := &algebra.Select{
		Pred:  &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: ci(5)},
		Child: join,
	}
	out := Optimize(plan, nil)
	j, ok := out.(*algebra.Join)
	if !ok {
		t.Fatalf("root = %T; plan:\n%s", out, algebra.Format(out))
	}
	if _, ok := j.Left.(*algebra.Select); !ok {
		t.Errorf("selection not pushed to left side:\n%s", algebra.Format(out))
	}
}

func TestAbsorbJoinPredicate(t *testing.T) {
	// σ(x.a = y.a)(t × u) → the cross-side equality becomes the join pred.
	join := &algebra.Join{
		Pred:  &expr.Const{V: types.BoolValue(true)},
		Left:  scanT("x"),
		Right: scanU("y"),
	}
	plan := &algebra.Select{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: field("x", "a"), R: field("y", "a")},
		Child: join,
	}
	out := Optimize(plan, nil)
	j, ok := out.(*algebra.Join)
	if !ok {
		t.Fatalf("root = %T:\n%s", out, algebra.Format(out))
	}
	l, r, _ := j.EquiKeys()
	if len(l) != 1 || len(r) != 1 {
		t.Errorf("equikeys not absorbed: %v %v", l, r)
	}
}

func TestPushUnnestFilter(t *testing.T) {
	// σ(c.age>18)(Unnest(children)) → the element filter becomes the
	// Unnest's embedded predicate (Table 1's filtering step).
	sailor := &algebra.Scan{Dataset: "sailor", Binding: "s", Type: types.NewRecordType(
		types.Field{Name: "children", Type: types.NewListType(types.NewRecordType(
			types.Field{Name: "age", Type: types.Int},
		))},
	)}
	plan := &algebra.Select{
		Pred: &expr.BinOp{Op: expr.OpGt, L: field("c", "age"), R: ci(18)},
		Child: &algebra.Unnest{
			Path:    field("s", "children"),
			Binding: "c",
			Child:   sailor,
		},
	}
	out := Optimize(plan, nil)
	u, ok := out.(*algebra.Unnest)
	if !ok {
		t.Fatalf("root = %T:\n%s", out, algebra.Format(out))
	}
	if u.Pred == nil || !strings.Contains(u.Pred.String(), "c.age") {
		t.Errorf("filter not embedded: %v", u.Pred)
	}
}

func TestChooseBuildSidesSwapsSmaller(t *testing.T) {
	// u (10 rows) starts on the left; the optimizer should orient the join
	// so the smaller input is the build (right) side.
	join := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: field("y", "a"), R: field("x", "a")},
		Left:  scanU("y"),
		Right: scanT("x"),
	}
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: join,
	}
	out := Optimize(plan, testEnv())
	red := out.(*algebra.Reduce)
	j := red.Child.(*algebra.Join)
	rs, ok := j.Right.(*algebra.Scan)
	if !ok || rs.Dataset != "u" {
		t.Errorf("small table should be the build side:\n%s", algebra.Format(out))
	}
}

func TestProjectionPushdownFillsScanFields(t *testing.T) {
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggMax, Arg: field("x", "b")}},
		Names: []string{"m"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: ci(5)},
			Child: scanT("x"),
		},
	}
	out := Optimize(plan, nil)
	scans := algebra.Scans(out)
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	got := strings.Join(scans[0].Fields, ",")
	if got != "a,b" {
		t.Errorf("scan fields = %q, want a,b", got)
	}
}

func TestConstantFolding(t *testing.T) {
	plan := &algebra.Select{
		Pred: &expr.BinOp{Op: expr.OpLt, L: field("x", "a"),
			R: &expr.BinOp{Op: expr.OpMul, L: ci(6), R: ci(7)}},
		Child: scanT("x"),
	}
	out := Optimize(plan, nil)
	sel := out.(*algebra.Select)
	if !strings.Contains(sel.Pred.String(), "42") {
		t.Errorf("constant not folded: %s", sel.Pred)
	}
}

func TestOuterJoinBlocksPushdownToRight(t *testing.T) {
	// A predicate on the null-producing right side of a left-outer join
	// must NOT be pushed below the join.
	join := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: field("x", "a"), R: field("y", "a")},
		Left:  scanT("x"),
		Right: scanU("y"),
		Outer: true,
	}
	plan := &algebra.Select{
		Pred:  &expr.BinOp{Op: expr.OpLt, L: field("y", "a"), R: ci(5)},
		Child: join,
	}
	out := Optimize(plan, nil)
	if _, ok := out.(*algebra.Select); !ok {
		t.Errorf("predicate pushed below outer join:\n%s", algebra.Format(out))
	}
}

func TestEstimateCard(t *testing.T) {
	env := testEnv()
	tbl := env.Stats.Table("t")
	tbl.Rows = 1000
	col := tbl.Col("a")
	col.Observe(0)
	col.Observe(100)

	scan := scanT("x")
	if got := EstimateCard(scan, env); got != 1000 {
		t.Errorf("scan card = %g", got)
	}
	sel := &algebra.Select{
		Pred:  &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: ci(25)},
		Child: scan,
	}
	got := EstimateCard(sel, env)
	if got < 200 || got > 300 {
		t.Errorf("select card = %g, want ~250 (25%% of range)", got)
	}
	join := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: field("x", "a"), R: field("y", "a")},
		Left:  scan,
		Right: scanU("y"),
	}
	if got := EstimateCard(join, env); got != 1000 {
		t.Errorf("pk-fk join card = %g, want 1000", got)
	}
	red := &algebra.Reduce{Aggs: []expr.Agg{{Kind: expr.AggCount}}, Names: []string{"n"}, Child: scan}
	if got := EstimateCard(red, env); got != 1 {
		t.Errorf("reduce card = %g", got)
	}
}

func TestSelectivityFlippedComparison(t *testing.T) {
	env := testEnv()
	tbl := env.Stats.Table("t")
	tbl.Rows = 1000
	col := tbl.Col("a")
	col.Observe(0)
	col.Observe(100)
	// "25 > x.a" should behave like "x.a < 25".
	sel := &algebra.Select{
		Pred:  &expr.BinOp{Op: expr.OpGt, L: ci(25), R: field("x", "a")},
		Child: scanT("x"),
	}
	got := EstimateCard(sel, env)
	if got < 200 || got > 300 {
		t.Errorf("flipped comparison card = %g, want ~250", got)
	}
}
