package optimizer

import (
	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/stats"
	"proteus/internal/types"
)

// Default estimation constants for cases the statistics cannot answer.
const (
	defaultUnnestFanout = 4.0
)

// EstimateCard estimates the output cardinality of a subtree using the
// plug-in-provided statistics: dataset row counts and per-attribute ranges,
// with the paper's textbook fallbacks (10% default selectivity).
func EstimateCard(n algebra.Node, env *Env) float64 {
	switch x := n.(type) {
	case *algebra.Scan:
		if env.Costs != nil {
			if r := env.Costs.Rows(x.Dataset); r > 0 {
				return float64(r)
			}
		}
		if t, ok := env.Stats.Lookup(x.Dataset); ok && t.Rows > 0 {
			return float64(t.Rows)
		}
		return 1000
	case *algebra.Select:
		return EstimateCard(x.Child, env) * estimateSel(x.Pred, x.Child, env)
	case *algebra.Join:
		l := EstimateCard(x.Left, env)
		r := EstimateCard(x.Right, env)
		keysL, _, _ := x.EquiKeys()
		if len(keysL) > 0 {
			// PK–FK heuristic: the join output is about the size of the
			// larger (fact) side.
			if l > r {
				return l
			}
			return r
		}
		return l * r
	case *algebra.Unnest:
		f := defaultUnnestFanout
		if x.Pred != nil {
			f *= stats.DefaultSelectivity
		}
		return EstimateCard(x.Child, env) * f
	case *algebra.Reduce:
		return 1
	case *algebra.Nest:
		in := EstimateCard(x.Child, env)
		groups := in / 10
		if groups < 1 {
			groups = 1
		}
		return groups
	}
	return 1000
}

// estimateSel estimates a predicate's selectivity against the statistics of
// the datasets scanned below.
func estimateSel(pred expr.Expr, below algebra.Node, env *Env) float64 {
	byBinding := map[string]string{} // binding → dataset
	for _, s := range algebra.Scans(below) {
		byBinding[s.Binding] = s.Dataset
	}
	sel := 1.0
	for _, conj := range expr.SplitConjuncts(pred) {
		sel *= conjSel(conj, byBinding, env)
	}
	return sel
}

func conjSel(conj expr.Expr, byBinding map[string]string, env *Env) float64 {
	b, ok := conj.(*expr.BinOp)
	if !ok || !b.Op.IsComparison() {
		return stats.DefaultSelectivity
	}
	// Normalize to path-vs-constant.
	pathSide, constSide := b.L, b.R
	op := b.Op
	if _, isConst := pathSide.(*expr.Const); isConst {
		pathSide, constSide = constSide, pathSide
		op = flip(op)
	}
	root, path, isPath := expr.PathOf(pathSide)
	cst, isConst := constSide.(*expr.Const)
	if !isPath || !isConst {
		return stats.DefaultSelectivity
	}
	ds, ok := byBinding[root]
	if !ok {
		return stats.DefaultSelectivity
	}
	tbl, ok := env.Stats.Lookup(ds)
	if !ok {
		return stats.DefaultSelectivity
	}
	col := joinPath(path)
	if !types.Numeric(types.TypeOf(cst.V)) {
		if op == expr.OpEq {
			return tbl.SelEq(col)
		}
		return stats.DefaultSelectivity
	}
	x := cst.V.AsFloat()
	switch op {
	case expr.OpLt, expr.OpLe:
		return tbl.SelLt(col, x)
	case expr.OpGt, expr.OpGe:
		return tbl.SelGt(col, x)
	case expr.OpEq:
		return tbl.SelEq(col)
	case expr.OpNe:
		return 1 - tbl.SelEq(col)
	}
	return stats.DefaultSelectivity
}

func flip(op expr.BinKind) expr.BinKind {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op
}
