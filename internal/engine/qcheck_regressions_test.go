package engine

import (
	"fmt"
	"sync"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Regressions pinned from qcheck harness findings. Each test encodes a
// divergence the differential fuzzer surfaced (or a semantics hole it
// forced closed) as a minimal deterministic case.

// newNullKeyEngine loads a JSON table whose single int group key is NULL on
// some rows — the shape that used to take the single-int-key aggregation
// fast paths straight past the NULL rows, silently dropping their group.
func newNullKeyEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	data := `{"k": 1, "v": 10}
{"k": null, "v": 5}
{"k": 1, "v": 2}
{"k": null, "v": 3}
{"k": 2, "v": 7}
`
	e.Mem().PutFile("mem://nk.json", []byte(data))
	schema := types.NewRecordType(
		types.Field{Name: "k", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	if err := e.Register("nk", "mem://nk.json", "json", schema, plugin.Options{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	return e
}

func checkNullKeyGroups(t *testing.T, e *Engine) {
	t.Helper()
	res, err := e.QuerySQL("SELECT nk.k AS g, SUM(nk.v) AS s FROM nk AS nk GROUP BY nk.k")
	if err != nil {
		t.Fatalf("group-by: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3 (NULL, 1, 2): %v", len(res.Rows), res.Rows)
	}
	// The NULL-keyed group is emitted first, then int keys ascending.
	wantSums := map[string]int64{"null": 8, "1": 12, "2": 7}
	for i, row := range res.Rows {
		g, _ := row.Field("g")
		s, _ := row.Field("s")
		key := "null"
		if !g.IsNull() {
			key = fmt.Sprintf("%d", g.AsInt())
		}
		if i == 0 && key != "null" {
			t.Errorf("row 0 key = %s, want the NULL group first", key)
		}
		want, ok := wantSums[key]
		if !ok {
			t.Errorf("unexpected group key %s", key)
			continue
		}
		if s.AsInt() != want {
			t.Errorf("group %s sum = %d, want %d", key, s.AsInt(), want)
		}
		delete(wantSums, key)
	}
	for k := range wantSums {
		t.Errorf("group %s missing from result", k)
	}
}

func TestGroupByNullKeyTuplePath(t *testing.T) {
	checkNullKeyGroups(t, newNullKeyEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOff}))
}

func TestGroupByNullKeyVectorizedPath(t *testing.T) {
	checkNullKeyGroups(t, newNullKeyEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOn}))
}

func TestGroupByNullKeyParallel(t *testing.T) {
	checkNullKeyGroups(t, newNullKeyEngine(t, Config{Parallelism: 4, Vectorized: exec.VecAuto}))
}

// TestUnnestEmptyJSONDataset: unnesting a schema-declared collection of an
// empty JSON dataset used to fail with "has no field to unnest" (the
// structural index only learns fields from data); it must return zero rows.
func TestUnnestEmptyJSONDataset(t *testing.T) {
	e := New(Config{})
	e.Mem().PutFile("mem://empty.json", []byte("[]"))
	elem := types.NewRecordType(
		types.Field{Name: "p", Type: types.Int},
	)
	schema := types.NewRecordType(
		types.Field{Name: "k", Type: types.Int},
		types.Field{Name: "items", Type: types.NewListType(elem)},
	)
	if err := e.Register("empty", "mem://empty.json", "json", schema, plugin.Options{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	res, err := e.QueryComp("for { a <- empty, u <- a.items } yield bag (a.k, u.p)")
	if err != nil {
		t.Fatalf("unnest over empty dataset: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("got %d rows, want 0", len(res.Rows))
	}
}

// TestIsNullPredicate covers the IS [NOT] NULL predicate end-to-end on the
// tuple and vectorized paths, including its defining property: it never
// yields NULL itself, even over a NULL operand.
func TestIsNullPredicate(t *testing.T) {
	for _, vec := range []exec.VecMode{exec.VecOff, exec.VecOn} {
		e := newNullKeyEngine(t, Config{Parallelism: 1, Vectorized: vec})
		res, err := e.QuerySQL("SELECT COUNT(*) AS n FROM nk AS nk WHERE nk.k IS NULL")
		if err != nil {
			t.Fatalf("vec=%v IS NULL: %v", vec, err)
		}
		if got := res.Scalar().AsInt(); got != 2 {
			t.Errorf("vec=%v: %d rows with k IS NULL, want 2", vec, got)
		}
		res, err = e.QuerySQL("SELECT COUNT(*) AS n FROM nk AS nk WHERE nk.k IS NOT NULL")
		if err != nil {
			t.Fatalf("vec=%v IS NOT NULL: %v", vec, err)
		}
		if got := res.Scalar().AsInt(); got != 3 {
			t.Errorf("vec=%v: %d rows with k IS NOT NULL, want 3", vec, got)
		}
		// (k = 1) IS NULL is true exactly on the NULL-k rows: the comparison
		// yields NULL there, and IS NULL maps that to valid true.
		res, err = e.QuerySQL("SELECT COUNT(*) AS n FROM nk AS nk WHERE (nk.k = 1) IS NULL")
		if err != nil {
			t.Fatalf("vec=%v (k=1) IS NULL: %v", vec, err)
		}
		if got := res.Scalar().AsInt(); got != 2 {
			t.Errorf("vec=%v: %d rows with (k=1) IS NULL, want 2", vec, got)
		}
	}
}

// TestPlanCacheEpochUnderConcurrentChurn races queries against catalog
// mutations (Register/Drop bump the plan-cache epoch) and verifies every
// successful query still computes the right answer — a stale cached program
// surviving an epoch bump would read the wrong catalog state. Run with
// -race in CI (the qcheck-smoke job does).
func TestPlanCacheEpochUnderConcurrentChurn(t *testing.T) {
	e := newTestEngine(t, Config{PlanCacheSize: 8, CacheEnabled: true})
	const workers = 4
	const iters = 60

	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.QuerySQL("SELECT SUM(val) FROM nums WHERE id < 4")
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if got := res.Scalar().AsInt(); got != 60 {
					errs <- fmt.Errorf("worker %d iter %d: sum = %d, want 60", w, i, got)
					return
				}
			}
		}(w)
	}
	// Mutator: churn an unrelated dataset, bumping the epoch continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sch := types.NewRecordType(types.Field{Name: "x", Type: types.Int})
		for i := 0; i < iters; i++ {
			// Drop releases the backing file, so re-put it every round.
			e.Mem().PutFile("mem://churn.csv", []byte("1\n2\n"))
			if err := e.Register("churn", "mem://churn.csv", "csv", sch, plugin.Options{}); err != nil {
				errs <- fmt.Errorf("register churn: %v", err)
				return
			}
			e.Drop("churn")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
