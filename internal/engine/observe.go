// Query-lifecycle observability: the engine-side wiring that turns one
// query execution into an obs.QueryProfile (phase spans + operator tree),
// feeds the cumulative metrics counters, and surfaces both over HTTP.
// The exec-side counter mechanics live in internal/exec/profile.go; the
// span/metric model in internal/obs (see DESIGN.md, Observability).
package engine

import (
	"context"
	"net/http"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/calculus"
	"proteus/internal/comp"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/sql"
)

// Query language tags recorded in profiles.
const (
	LangSQL  = "sql"
	LangComp = "comp"
)

// tracer accumulates the phase spans of one query. A nil tracer is valid
// everywhere (phase returns a no-op), so the untraced path costs nothing.
type tracer struct {
	spans []obs.Span
	spec  *exec.ProfileSpec
}

// phase opens a named span and returns the closure that seals it. Spans are
// appended in call order, which is the life-cycle order.
func (t *tracer) phase(name string) func() {
	if t == nil {
		return func() {}
	}
	i := len(t.spans)
	t.spans = append(t.spans, obs.Span{Name: name, Start: time.Now()})
	start := time.Now()
	return func() { t.spans[i].Dur = time.Since(start) }
}

// attachWorkers hangs per-worker spans under the execute span.
func (t *tracer) attachWorkers(ws []obs.Span) {
	if t == nil || len(ws) == 0 {
		return
	}
	for i := range t.spans {
		if t.spans[i].Name == obs.PhaseExecute {
			t.spans[i].Children = ws
		}
	}
}

// observedQuery runs one query through the fully traced life-cycle:
// parse → calculus → optimize → compile → execute, with per-operator row
// counters (plus wall timing when timed — the EXPLAIN ANALYZE mode). The
// profile is always produced, even on error, and is retained in the ring,
// flushed into the cumulative metrics, and handed to the OnQueryDone hook.
func (e *Engine) observedQuery(ctx context.Context, lang, query string, timed bool) (*exec.Result, *obs.QueryProfile, error) {
	qp := &obs.QueryProfile{
		ID:      e.queryID.Add(1),
		Lang:    lang,
		Query:   query,
		Tag:     QueryTag(ctx),
		Start:   time.Now(),
		Workers: 1,
		Morsels: 1,
		Timed:   timed,
	}
	e.metrics.ActiveQueries.Add(1)
	defer e.metrics.ActiveQueries.Add(-1)
	t0 := time.Now()

	// Morsel-event sampling: timed (EXPLAIN ANALYZE) runs always record
	// per-morsel spans; ordinary observed queries record them on every Nth
	// query when Config.TraceMorsels is set, so the default path pays none
	// of the event cost.
	events := timed
	if !events && e.traceMorsels > 0 {
		events = e.obsSeq.Add(1)%int64(e.traceMorsels) == 0
	}
	tr := &tracer{spec: &exec.ProfileSpec{
		Timing:    timed,
		Events:    events,
		Estimates: map[algebra.Node]float64{},
	}}

	res, err := func() (*exec.Result, error) {
		var (
			c   *calculus.Comprehension
			err error
		)
		endParse := tr.phase(obs.PhaseParse)
		if lang == LangSQL {
			c, err = sql.Parse(query)
		} else {
			c, err = comp.Parse(query)
		}
		endParse()
		if err != nil {
			return nil, err
		}
		p, err := e.prepare(ctx, c, tr)
		if err != nil {
			return nil, err
		}
		qp.Workers = p.Program.Workers
		qp.Morsels = p.Program.Morsels
		qp.Fingerprint = p.Program.Fingerprint
		qp.Vectorized = p.Program.Vectorized
		endExec := tr.phase(obs.PhaseExecute)
		var (
			res       *exec.Result
			fragSpans []obs.Span
			clustered bool
		)
		if e.cluster != nil {
			res, fragSpans, clustered, err = e.clusterExec(ctx, lang, query, p)
		}
		if !clustered {
			res, err = p.Program.RunContext(ctx)
		}
		endExec()
		if clustered {
			// Distributed run: hang per-fragment fan-out spans under the
			// execute span where per-worker spans would normally go.
			if res != nil {
				qp.Fragments = res.Fragments
			}
			tr.attachWorkers(fragSpans)
		} else if ws := p.Program.WorkerSpans(); len(ws) > 0 {
			tr.attachWorkers(ws)
		} else if ms := p.Program.MorselSpans(); len(ms) > 0 {
			// Serial run with sampled morsel events: wrap them in one
			// synthetic worker span so trace export renders them on a row.
			span := obs.Span{Name: "worker 0 (serial)", Start: ms[0].Start, Children: ms}
			last := ms[len(ms)-1]
			span.Dur = last.Start.Add(last.Dur).Sub(span.Start)
			tr.attachWorkers([]obs.Span{span})
		}
		qp.Root = p.Program.Profile()
		qp.Attr.CacheHits = p.Program.CompileCacheHits()
		qp.Attr.MemPeakBytes = p.Program.MemPeak()
		return res, err
	}()

	qp.Total = time.Since(t0)
	qp.Phases = tr.spans
	if err != nil {
		qp.Err = err.Error()
	} else {
		qp.Rows = int64(len(res.Rows))
	}
	e.flushProfile(qp)
	return res, qp, err
}

// flushProfile folds one finished profile into the cumulative metrics,
// retains it in the ring, and fires the OnQueryDone hook.
func (e *Engine) flushProfile(qp *obs.QueryProfile) {
	m := e.metrics
	m.Queries.Add(1)
	if qp.Err != "" {
		m.Errors.Add(1)
	}
	m.RowsOut.Add(qp.Rows)
	for _, s := range qp.Phases {
		m.AddPhase(s.Name, int64(s.Dur))
	}
	if qp.Workers > 1 {
		m.ParallelQueries.Add(1)
	}
	qp.Root.Each(func(op *obs.OpProfile) {
		m.ScanBytesRead.Add(op.ExtraValue("bytes_read"))
		m.ScanFieldsParsed.Add(op.ExtraValue("fields_parsed"))
		m.ScanIndexHits.Add(op.ExtraValue("index_hits"))
		// Per-query attribution (observability v2): the same walk fills the
		// profile's own counters from the operator tree's extras.
		qp.Attr.BytesRead += op.ExtraValue("bytes_read")
		qp.Attr.FieldsParsed += op.ExtraValue("fields_parsed")
		qp.Attr.ScanIndexHits += op.ExtraValue("index_hits")
		qp.Attr.ZoneSkips += op.ExtraValue("zone_skips")
		qp.Attr.BitmapHits += op.ExtraValue("bitmap_hits")
	})
	m.ObserveLatency(qp)
	if e.slowlog.Offer(qp) {
		m.SlowQueries.Add(1)
	}
	e.feedback.ObserveProfile(qp)
	e.profiles.Add(qp)
	if e.onDone != nil {
		e.onDone(*qp)
	}
}

// ObservedQuerySQL runs one SQL statement through the traced life-cycle —
// phase spans and per-operator row counters, but no per-tuple wall timing —
// regardless of Config.Observability. Benchmarks use it to split compile
// from execute time without the EXPLAIN ANALYZE timing overhead.
func (e *Engine) ObservedQuerySQL(query string) (*exec.Result, *obs.QueryProfile, error) {
	return e.observedQuery(context.Background(), LangSQL, query, false)
}

// ObservedQueryComp is ObservedQuerySQL for comprehension queries.
func (e *Engine) ObservedQueryComp(query string) (*exec.Result, *obs.QueryProfile, error) {
	return e.observedQuery(context.Background(), LangComp, query, false)
}

// ExplainAnalyzeSQL executes a SQL statement with full per-operator wall
// timing and returns its profile alongside the result.
func (e *Engine) ExplainAnalyzeSQL(query string) (*exec.Result, *obs.QueryProfile, error) {
	return e.observedQuery(context.Background(), LangSQL, query, true)
}

// ExplainAnalyzeComp executes a comprehension with full per-operator wall
// timing and returns its profile alongside the result.
func (e *Engine) ExplainAnalyzeComp(query string) (*exec.Result, *obs.QueryProfile, error) {
	return e.observedQuery(context.Background(), LangComp, query, true)
}

// Metrics snapshots the engine's cumulative counters, folding in the cache
// manager's view and catalog gauges.
func (e *Engine) Metrics() obs.Snapshot {
	cs := e.caches.Snapshot()
	snap := e.metrics.Snapshot(obs.CacheCounters{
		Blocks:     cs.Blocks,
		JoinSides:  cs.JoinSides,
		Bytes:      cs.Bytes,
		Hits:       cs.Hits,
		Misses:     cs.Misses,
		Evictions:  cs.Evictions,
		BuildNanos: cs.BuildNanos,

		Indexes:     cs.Indexes,
		IndexBytes:  cs.IndexBytes,
		IndexBuilds: cs.IndexBuilds,
		IndexHits:   cs.IndexHits,
		ZoneSkips:   cs.ZoneSkips,
	})
	e.mu.Lock()
	snap.Datasets = len(e.datasets)
	e.mu.Unlock()
	snap.ProfilesRetained = e.profiles.Len()
	snap.PlanStatsTracked = e.feedback.Len()
	return snap
}

// RecentProfiles returns the retained query profiles, newest first.
func (e *Engine) RecentProfiles() []*obs.QueryProfile { return e.profiles.Snapshot() }

// SlowQueries returns the retained slow-query log records, newest first
// (nil when no SlowQueryThreshold is configured).
func (e *Engine) SlowQueries() []*obs.SlowQuery { return e.slowlog.Snapshot() }

// PlanFeedback returns the per-plan feedback store's tracked stats,
// most-executed first (nil when the store is disabled).
func (e *Engine) PlanFeedback() []obs.PlanStats { return e.feedback.Snapshot() }

// PlanFeedbackFor returns one plan's feedback stats by fingerprint.
func (e *Engine) PlanFeedbackFor(fp string) (obs.PlanStats, bool) { return e.feedback.Lookup(fp) }

// TraceJSON renders a retained profile as Chrome trace-event JSON (loadable
// in Perfetto). id ≤ 0 selects the newest profile; ok=false when the ring
// holds no matching profile.
func (e *Engine) TraceJSON(id int64) ([]byte, bool) {
	for _, p := range e.profiles.Snapshot() {
		if id <= 0 || p.ID == id {
			data, err := obs.TraceJSON(p)
			if err != nil {
				return nil, false
			}
			return data, true
		}
	}
	return nil, false
}

// MetricsHandler returns the opt-in HTTP surface: /metrics (Prometheus
// text, incl. latency histograms), /debug/vars (expvar-style JSON),
// /debug/queries (recent profiles), /debug/trace (Chrome trace-event
// export), /debug/slow (slow-query log), /debug/plans (per-plan feedback),
// and /debug/pprof/*.
func (e *Engine) MetricsHandler() http.Handler {
	return obs.Handler(e.Metrics, e.profiles, e.slowlog, e.feedback)
}
