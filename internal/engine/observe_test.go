package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/obs"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// joinAggSQL is the acceptance query: an aggregation over a join between a
// CSV dataset (nums) and a JSON dataset (docs).
const joinAggSQL = "SELECT COUNT(*) FROM nums n JOIN docs d ON n.id = d.id"

func findOp(root *obs.OpProfile, prefix string) *obs.OpProfile {
	var found *obs.OpProfile
	root.Each(func(op *obs.OpProfile) {
		if found == nil && strings.HasPrefix(op.Op, prefix) {
			found = op
		}
	})
	return found
}

func TestExplainAnalyzeJoinAggregation(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, qp, err := e.ExplainAnalyzeSQL(joinAggSQL)
	if err != nil {
		t.Fatalf("explain analyze: %v", err)
	}
	if qp.Root == nil {
		t.Fatal("profile has no operator tree")
	}
	if !qp.Timed {
		t.Fatal("EXPLAIN ANALYZE must run timed")
	}

	// Life-cycle phases all recorded, in order.
	var names []string
	for _, s := range qp.Phases {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != strings.Join(obs.Phases, ",") {
		t.Errorf("phases = %v, want %v", names, obs.Phases)
	}

	// Operator row counts match the actual result cardinalities:
	// the root aggregation emits exactly the result rows; the join emits one
	// row per matching (n.id, d.id) pair; the scans emit their datasets.
	root := findOp(qp.Root, "Reduce")
	if root == nil {
		t.Fatalf("no Reduce operator in:\n%s", obs.RenderProfile(qp))
	}
	if root.Rows != int64(len(res.Rows)) {
		t.Errorf("root rows = %d, want result cardinality %d", root.Rows, len(res.Rows))
	}
	join := findOp(qp.Root, "Join")
	if join == nil {
		t.Fatalf("no Join operator in:\n%s", obs.RenderProfile(qp))
	}
	wantJoin := res.Scalar().AsInt() // COUNT(*) over the join = join cardinality
	if join.Rows != wantJoin {
		t.Errorf("join rows = %d, want %d", join.Rows, wantJoin)
	}
	scanN := findOp(qp.Root, "Scan nums")
	scanD := findOp(qp.Root, "Scan docs")
	if scanN == nil || scanD == nil {
		t.Fatalf("missing scan operators in:\n%s", obs.RenderProfile(qp))
	}
	if scanN.Rows != 5 {
		t.Errorf("nums scan rows = %d, want 5", scanN.Rows)
	}
	if scanD.Rows != 3 {
		t.Errorf("docs scan rows = %d, want 3", scanD.Rows)
	}
	// Optimizer estimates attached: scans estimate their cardinality.
	if scanN.EstRows <= 0 || scanD.EstRows <= 0 {
		t.Errorf("scan estimates missing: nums=%g docs=%g", scanN.EstRows, scanD.EstRows)
	}
	// Scan plug-in counters flowed through.
	if scanN.ExtraValue("fields_parsed") <= 0 {
		t.Errorf("nums scan parsed no fields: %+v", scanN.Extra)
	}

	// Rendered text carries the actual-vs-estimated annotations and timing.
	out := obs.RenderProfile(qp)
	for _, want := range []string{"Plan:", "rows=", "est=", "time=", "Scan nums", "Scan docs", "execute:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered profile missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAnalyzeComprehension(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, qp, err := e.ExplainAnalyzeComp(`for { d <- docs, t <- d.tags } yield sum t.n`)
	if err != nil {
		t.Fatalf("explain analyze comp: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 18 {
		t.Fatalf("sum = %d, want 18", got)
	}
	un := findOp(qp.Root, "Unnest")
	if un == nil {
		t.Fatalf("no Unnest operator in:\n%s", obs.RenderProfile(qp))
	}
	if un.Rows != 3 {
		t.Errorf("unnest rows = %d, want 3", un.Rows)
	}
}

// TestObservabilityResultsUnchanged guards the instrumented compile paths:
// representative queries must return byte-identical results with
// observability on and off.
func TestObservabilityResultsUnchanged(t *testing.T) {
	queries := []struct {
		lang, q string
	}{
		{LangSQL, joinAggSQL},
		{LangSQL, "SELECT grp, COUNT(*), MAX(id) FROM docs GROUP BY grp"},
		{LangSQL, "SELECT name, val FROM nums WHERE score > 2 ORDER BY val DESC LIMIT 2"},
		{LangComp, `for { d <- docs, t <- d.tags, t.n > 5 } yield bag (d.id, t.k)`},
	}
	plain := newTestEngine(t, Config{})
	observed := newTestEngine(t, Config{Observability: true})
	timed := newTestEngine(t, Config{})
	for _, tc := range queries {
		run := func(e *Engine) (string, error) {
			var res *exec.Result
			var err error
			if tc.lang == LangSQL {
				res, err = e.QuerySQL(tc.q)
			} else {
				res, err = e.QueryComp(tc.q)
			}
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, r := range res.Rows {
				b.WriteString(r.String())
				b.WriteString("\n")
			}
			return b.String(), nil
		}
		want, err := run(plain)
		if err != nil {
			t.Fatalf("%s (plain): %v", tc.q, err)
		}
		got, err := run(observed)
		if err != nil {
			t.Fatalf("%s (observed): %v", tc.q, err)
		}
		if got != want {
			t.Errorf("%s: observed results differ\nplain:\n%s\nobserved:\n%s", tc.q, want, got)
		}
		// The timed (EXPLAIN ANALYZE) instrumentation must not change
		// results either.
		var tres *exec.Result
		if tc.lang == LangSQL {
			tres, _, err = timed.ExplainAnalyzeSQL(tc.q)
		} else {
			tres, _, err = timed.ExplainAnalyzeComp(tc.q)
		}
		if err != nil {
			t.Fatalf("%s (timed): %v", tc.q, err)
		}
		var b strings.Builder
		for _, r := range tres.Rows {
			b.WriteString(r.String())
			b.WriteString("\n")
		}
		if b.String() != want {
			t.Errorf("%s: timed results differ\nplain:\n%s\ntimed:\n%s", tc.q, want, b.String())
		}
	}
}

func TestMetricsAndProfileRing(t *testing.T) {
	hookCount := 0
	var hooked obs.QueryProfile
	e := newTestEngine(t, Config{
		Observability:   true,
		ProfileRingSize: 2,
		OnQueryDone: func(q obs.QueryProfile) {
			hookCount++
			hooked = q
		},
	})
	queries := []string{
		"SELECT COUNT(*) FROM nums",
		"SELECT SUM(val) FROM nums WHERE id > 1",
		joinAggSQL,
	}
	for _, q := range queries {
		if _, err := e.QuerySQL(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	snap := e.Metrics()
	if snap.Queries != int64(len(queries)) {
		t.Errorf("queries = %d, want %d", snap.Queries, len(queries))
	}
	if snap.Errors != 0 {
		t.Errorf("errors = %d, want 0", snap.Errors)
	}
	if snap.RowsOut != 3 {
		t.Errorf("rows_out = %d, want 3", snap.RowsOut)
	}
	if snap.ExecuteNanos <= 0 || snap.CompileNanos <= 0 {
		t.Errorf("phase nanos missing: execute=%d compile=%d", snap.ExecuteNanos, snap.CompileNanos)
	}
	if snap.ScanFieldsParsed <= 0 {
		t.Errorf("scan fields parsed = %d, want > 0", snap.ScanFieldsParsed)
	}
	if snap.ActiveQueries != 0 || snap.ActiveWorkers != 0 {
		t.Errorf("gauges nonzero at rest: queries=%d workers=%d", snap.ActiveQueries, snap.ActiveWorkers)
	}
	if snap.Datasets != 2 {
		t.Errorf("datasets = %d, want 2", snap.Datasets)
	}
	if snap.ProfilesRetained != 2 {
		t.Errorf("profiles retained = %d, want ring bound 2", snap.ProfilesRetained)
	}
	// Ring keeps the most recent profiles, newest first.
	profs := e.RecentProfiles()
	if len(profs) != 2 {
		t.Fatalf("len(profiles) = %d, want 2", len(profs))
	}
	if profs[0].Query != queries[2] || profs[1].Query != queries[1] {
		t.Errorf("ring order wrong: %q, %q", profs[0].Query, profs[1].Query)
	}
	// The hook saw every query; the last call carries the final profile.
	if hookCount != len(queries) {
		t.Errorf("hook calls = %d, want %d", hookCount, len(queries))
	}
	if hooked.Query != queries[2] || hooked.Rows != 1 {
		t.Errorf("hooked profile = %q rows=%d", hooked.Query, hooked.Rows)
	}
	// A failed query counts as an error but still profiles.
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM missing_table"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if got := e.Metrics().Errors; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if p := e.RecentProfiles()[0]; p.Err == "" {
		t.Error("failed query profile has no Err")
	}
}

func TestCacheCountersMoveOnWarmRequery(t *testing.T) {
	e := newTestEngine(t, Config{CacheEnabled: true, Observability: true})
	const q = "SELECT SUM(val) FROM nums WHERE score > 0"
	cold, err := e.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	after1 := e.Metrics().Cache
	if after1.Misses == 0 {
		t.Errorf("cold run recorded no cache misses: %+v", after1)
	}
	if after1.Blocks == 0 {
		t.Errorf("cold run materialized no cache blocks: %+v", after1)
	}
	warm, err := e.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Scalar().AsInt() != warm.Scalar().AsInt() {
		t.Fatalf("warm result differs: %v vs %v", cold.Scalar(), warm.Scalar())
	}
	after2 := e.Metrics().Cache
	if after2.Hits <= after1.Hits {
		t.Errorf("warm re-query did not move cache hits: %d → %d", after1.Hits, after2.Hits)
	}
	if after2.BuildNanos <= 0 {
		t.Errorf("cache build time not recorded: %+v", after2)
	}
}

func TestMetricsHTTPEndpoint(t *testing.T) {
	e := newTestEngine(t, Config{Observability: true, Parallelism: 2})
	for i := 0; i < 3; i++ {
		if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums WHERE val > 15"); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(e.MetricsHandler())
	defer srv.Close()

	// Prometheus text exposition.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"proteus_queries_total 3",
		`proteus_phase_seconds_total{phase="execute"}`,
		`proteus_phase_seconds_total{phase="parse"}`,
		"proteus_cache_hits_total",
		"proteus_cache_misses_total",
		"proteus_active_workers 0",
		"proteus_workers_launched_total",
		"proteus_scan_fields_parsed_total",
		"# TYPE proteus_queries_total counter",
		"# TYPE proteus_active_queries gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Expvar-style JSON.
	resp, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if got := vars["queries"].(float64); got != 3 {
		t.Errorf("queries = %v, want 3", got)
	}
	for _, key := range []string{"execute_nanos", "parse_nanos", "cache", "active_workers", "rows_out", "workers_launched"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing key %q: %v", key, vars)
		}
	}

	// Recent-query profiles endpoint.
	resp, err = srv.Client().Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var profs []map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &profs); err != nil {
		t.Fatalf("/debug/queries is not JSON: %v", err)
	}
	if len(profs) != 3 {
		t.Errorf("profiles = %d, want 3", len(profs))
	}
}
