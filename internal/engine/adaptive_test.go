package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// TestAdaptiveModeMeasuredWinner seeds the feedback store with measurements
// for both modes and asserts the compiler picks the observed rows/sec
// winner — in both directions.
func TestAdaptiveModeMeasuredWinner(t *testing.T) {
	q := "SELECT SUM(val) FROM big WHERE id < 2000"

	// Vectorized measured 10x faster: auto must compile the batch path.
	e := newVecEngine(t, Config{Parallelism: 1}) // Vectorized defaults to auto
	p, err := e.PrepareSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	fp := p.Program.Fingerprint
	e.feedback.Observe(fp, q, 10*time.Millisecond, 1, false, false)
	e.feedback.Observe(fp, q, time.Millisecond, 1, true, false)
	p, err = e.PrepareSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "mode: vectorized (measured)") {
		t.Errorf("EXPLAIN does not report the measured vectorized decision:\n%s", out)
	}
	if !p.Program.Vectorized {
		t.Error("measured vectorized winner compiled tuple-at-a-time")
	}

	// Tuple measured 10x faster on a fresh store: auto must flip back.
	e2 := newVecEngine(t, Config{Parallelism: 1})
	e2.feedback.Observe(fp, q, time.Millisecond, 1, false, false)
	e2.feedback.Observe(fp, q, 10*time.Millisecond, 1, true, false)
	p, err = e2.PrepareSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "mode: tuple (measured)") {
		t.Errorf("EXPLAIN does not report the measured tuple decision:\n%s", out)
	}
	if p.Program.Vectorized {
		t.Error("measured tuple winner still compiled vectorized")
	}
}

// TestAdaptiveModeExplores: a plan warm in one mode but unmeasured in the
// other gets one forced run of the unmeasured mode.
func TestAdaptiveModeExplores(t *testing.T) {
	q := "SELECT SUM(val) FROM big WHERE id < 1500"
	e := newVecEngine(t, Config{Parallelism: 1})
	p, err := e.PrepareSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	fp := p.Program.Fingerprint
	e.feedback.Observe(fp, q, time.Millisecond, 1, false, false)
	e.feedback.Observe(fp, q, time.Millisecond, 1, false, false)
	p, err = e.PrepareSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "mode: vectorized (explore)") {
		t.Errorf("EXPLAIN does not report the exploratory decision:\n%s", out)
	}
	if !p.Program.Vectorized {
		t.Error("explore asked for vectorization but compiled tuple-at-a-time")
	}
}

// TestAdaptiveModeExploreIneligible: exploring a plan that cannot vectorize
// marks it vec-ineligible so auto mode stops re-exploring it.
func TestAdaptiveModeExploreIneligible(t *testing.T) {
	// A whole-record yield needs the full record (path ""), which no batch
	// kernel produces — the plan is structurally vec-ineligible.
	q := "for { n <- big } yield bag n"
	e := newVecEngine(t, Config{Parallelism: 1})
	p, err := e.PrepareComp(q)
	if err != nil {
		t.Fatal(err)
	}
	fp := p.Program.Fingerprint
	e.feedback.Observe(fp, q, time.Millisecond, 100, false, false)
	e.feedback.Observe(fp, q, time.Millisecond, 100, false, false)

	p, err = e.PrepareComp(q)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "mode: tuple (explore)") {
		t.Errorf("EXPLAIN does not report the failed exploration:\n%s", out)
	}
	if p.Program.Vectorized {
		t.Error("whole-record yield compiled vectorized")
	}
	ps, ok := e.feedback.Lookup(fp)
	if !ok || !ps.VecIneligible {
		t.Fatalf("plan not marked vec-ineligible after failed explore: %+v", ps)
	}

	// The next compile must fall back to the heuristic, not explore again.
	p, err = e.PrepareComp(q)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "mode: tuple (heuristic)") {
		t.Errorf("vec-ineligible plan explored again:\n%s", out)
	}
}

// TestAdaptiveModeConvergesThroughRuns drives a real query through the full
// decision ladder — heuristic, explore, measured — with nothing seeded, and
// checks the decision counters surface in the metrics snapshot.
func TestAdaptiveModeConvergesThroughRuns(t *testing.T) {
	e := newVecEngine(t, Config{Parallelism: 1, PlanCacheSize: -1})
	q := "SELECT SUM(val) FROM big WHERE id < 2500"
	for i := 0; i < 4; i++ {
		if _, err := e.QuerySQL(q); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	snap := e.feedback.Snapshot()
	if len(snap) == 0 {
		t.Fatal("feedback store is empty after four runs")
	}
	ps := snap[0]
	if ps.Tuple.Runs == 0 || ps.Vectorized.Runs == 0 {
		t.Fatalf("four auto runs did not measure both modes: tuple=%d vectorized=%d",
			ps.Tuple.Runs, ps.Vectorized.Runs)
	}
	if ps.ModeSource != "measured" {
		t.Errorf("final decision source = %q, want measured (stats %+v)", ps.ModeSource, ps)
	}
	found := false
	for _, d := range e.Metrics().ModeDecisions {
		if d.Source == "measured" && d.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no measured decision in metrics: %+v", e.Metrics().ModeDecisions)
	}
}

// Robustness mid-batch in the new vectorized operators.

func TestVectorizedJoinCancelMidProbe(t *testing.T) {
	e := New(Config{Parallelism: 1, Vectorized: exec.VecOn})
	slow := newSlowInput(1<<20, 50*time.Microsecond)
	e.RegisterPlugin(slow)
	slowSchema := types.NewRecordType(types.Field{Name: "id", Type: types.Int})
	if err := e.Register("slow", "slow://t", "slow", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	// Small CSV build side; the slow table drives the vectorized probe.
	e.Mem().PutFile("mem://dim.csv", []byte("1\n2\n3\n4\n5\n"))
	if err := e.Register("dim", "mem://dim.csv", "csv", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.QuerySQLContext(ctx, "SELECT COUNT(*) FROM slow a JOIN dim b ON a.id = b.id")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // mid-probe, inside a batch
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("cancelled vectorized join returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("vectorized join ignored cancellation")
	}
}

func TestVectorizedJoinTimeoutMidProbe(t *testing.T) {
	e := New(Config{Parallelism: 1, Vectorized: exec.VecOn, QueryTimeout: 30 * time.Millisecond})
	slow := newSlowInput(1<<20, 50*time.Microsecond)
	e.RegisterPlugin(slow)
	slowSchema := types.NewRecordType(types.Field{Name: "id", Type: types.Int})
	if err := e.Register("slow", "slow://t", "slow", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	e.Mem().PutFile("mem://dim.csv", []byte("1\n2\n3\n"))
	if err := e.Register("dim", "mem://dim.csv", "csv", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := e.QuerySQL("SELECT COUNT(*) FROM slow a JOIN dim b ON a.id = b.id")
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("timed-out vectorized join returned %v", err)
	}
}

func TestVectorizedJoinMemBudget(t *testing.T) {
	// 3000 build rows at >= 24 bytes of charged key state blow a 32 KiB
	// budget from inside the vectorized build terminate.
	e := newVecEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOn, QueryMemBudget: 32 << 10})
	_, err := e.QuerySQL("SELECT COUNT(*) FROM big a JOIN bigbin b ON a.id = b.id")
	if err == nil {
		t.Fatal("vectorized join under tiny budget succeeded")
	}
	if !strings.Contains(err.Error(), exec.ErrMemBudget.Error()) {
		t.Fatalf("want mem-budget error, got %v", err)
	}
	// The engine stays usable within budget.
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM big WHERE val < 50"); err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
}

func TestVectorizedSortMemBudget(t *testing.T) {
	// 3000 collected rows charge 64 bytes each — the columnar collect must
	// fail the same way the row-wise sort buffer would.
	e := newVecEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOn, QueryMemBudget: 64 << 10})
	_, err := e.QuerySQL("SELECT id, val FROM big ORDER BY val")
	if err == nil {
		t.Fatal("vectorized ORDER BY under tiny budget succeeded")
	}
	if !strings.Contains(err.Error(), exec.ErrMemBudget.Error()) {
		t.Fatalf("want mem-budget error, got %v", err)
	}
	// A bounded sort on the same engine succeeds.
	res, err := e.QuerySQL("SELECT id, val FROM big WHERE id < 200 ORDER BY val")
	if err != nil {
		t.Fatalf("bounded ORDER BY: %v", err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("bounded ORDER BY returned %d rows, want 200", len(res.Rows))
	}
}

// TestSortedProgramSkipsEngineSort: when the columnar collect absorbed the
// ORDER BY, the program reports Sorted and still emits exactly the limited,
// ordered rows.
func TestSortedProgramSkipsEngineSort(t *testing.T) {
	e := newVecEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOn})
	p, err := e.PrepareSQL("SELECT id, name FROM big WHERE val < 50 ORDER BY id DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Program.Sorted {
		t.Fatalf("columnar collect did not absorb the ORDER BY:\n%s", p.Explain())
	}
	res, err := p.Program.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	prev := int64(1 << 62)
	for _, row := range res.Rows {
		v, _ := row.Field("id")
		if v.AsInt() > prev {
			t.Fatalf("rows not descending: %v", res.Rows)
		}
		prev = v.AsInt()
	}
}
