package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

// vecRows is large enough that VecAuto also chooses the batch path
// (>= 2*vbuf.BatchSize) and that every query spans many batches.
const vecRows = 3000

var vecNames = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

// newVecEngine registers the same synthetic data in all three flat formats
// plus a JSON dataset with nulls, so equivalence runs cover every scan
// plug-in's batch producer (native CSV/binary, transposed JSON) and the
// cached path when caching is on.
func newVecEngine(t testing.TB, cfg Config) *Engine {
	e := New(cfg)

	var csv strings.Builder
	for i := 0; i < vecRows; i++ {
		fmt.Fprintf(&csv, "%d,%d,%g,%s\n",
			i, (i*7)%100, float64(i%13)+0.25, vecNames[i%len(vecNames)])
	}
	e.Mem().PutFile("mem://big.csv", []byte(csv.String()))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "name", Type: types.String},
	)
	if err := e.Register("big", "mem://big.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatalf("register csv: %v", err)
	}

	// JSON twin of the CSV data plus a nullable field: every 5th row has no
	// "v", exercising null propagation through batch kernels.
	var js strings.Builder
	for i := 0; i < vecRows; i++ {
		if i%5 == 0 {
			fmt.Fprintf(&js, `{"id": %d, "grp": %d}`+"\n", i, i%7)
		} else {
			fmt.Fprintf(&js, `{"id": %d, "grp": %d, "v": %d}`+"\n", i, i%7, (i*3)%50)
		}
	}
	e.Mem().PutFile("mem://jdocs.json", []byte(js.String()))
	if err := e.Register("jdocs", "mem://jdocs.json", "json", nil, plugin.Options{}); err != nil {
		t.Fatalf("register json: %v", err)
	}

	ids := make([]int64, vecRows)
	vals := make([]int64, vecRows)
	scores := make([]float64, vecRows)
	names := make([]string, vecRows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = int64((i * 7) % 100)
		scores[i] = float64(i%13) + 0.25
		names[i] = vecNames[i%len(vecNames)]
	}
	bin, err := binpg.EncodeColumnar([]binpg.Column{
		{Name: "id", Type: types.Int, Ints: ids},
		{Name: "val", Type: types.Int, Ints: vals},
		{Name: "score", Type: types.Float, Floats: scores},
		{Name: "name", Type: types.String, Strs: names},
	})
	if err != nil {
		t.Fatalf("encode bin: %v", err)
	}
	e.Mem().PutFile("mem://big.bin", bin)
	if err := e.Register("bigbin", "mem://big.bin", "bin", nil, plugin.Options{}); err != nil {
		t.Fatalf("register bin: %v", err)
	}
	return e
}

// vecQuery is one equivalence case: a query plus whether its output order
// is deterministic (ORDER BY or a single aggregate row). Unordered results
// are compared as multisets.
type vecQuery struct {
	lang    string
	text    string
	ordered bool
}

var vecEquivalenceQueries = []vecQuery{
	// CSV: ungrouped aggregates under const filters of every comparison shape.
	{"sql", "SELECT COUNT(*) FROM big WHERE val < 50", true},
	{"sql", "SELECT COUNT(*) FROM big WHERE 50 > val", true},
	{"sql", "SELECT COUNT(*), SUM(val), MIN(id), MAX(score), AVG(score) FROM big WHERE id >= 100 AND id < 2900", true},
	{"sql", "SELECT SUM(val) FROM big WHERE score > 3.5 AND val <= 90", true},
	{"sql", "SELECT MIN(name), MAX(name) FROM big WHERE name >= 'beta'", true},
	{"sql", "SELECT COUNT(*) FROM big WHERE name LIKE '%amm%'", true},
	{"sql", "SELECT COUNT(*) FROM big WHERE NOT (val < 10 OR val > 90)", true},
	// Arithmetic inside predicates and aggregate arguments (incl. % and /
	// whose division-by-zero produces NULL).
	{"sql", "SELECT SUM(val * 2 + id) FROM big WHERE id % 3 = 1", true},
	{"sql", "SELECT SUM(score / (val - 14)) FROM big WHERE id < 500", true},
	{"sql", "SELECT AVG(val % 7) FROM big WHERE score < 9.0", true},
	// Projection through the batch→tuple boundary adapter, with and without
	// ORDER BY.
	{"sql", "SELECT id, name FROM big WHERE id > 2990 ORDER BY id DESC", true},
	{"sql", "SELECT id, val FROM big WHERE val = 3", false},
	{"sql", "SELECT id, score FROM big WHERE id >= 2995 ORDER BY score LIMIT 3", true},
	// Grouped aggregation (single int key → vectorized hash-group path).
	{"sql", "SELECT val, COUNT(*) AS n FROM big GROUP BY val ORDER BY val", true},
	{"sql", "SELECT val, SUM(id) AS s, AVG(score) AS a FROM big WHERE id < 2000 GROUP BY val ORDER BY val", true},
	{"sql", "SELECT val, MIN(name), MAX(id) FROM big GROUP BY val", false},
	// JSON with nulls: NULL never satisfies a predicate; aggregates skip it.
	{"sql", "SELECT COUNT(*) FROM jdocs WHERE v < 25", true},
	{"sql", "SELECT SUM(v), MIN(v), MAX(v), AVG(v) FROM jdocs", true},
	{"sql", "SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM jdocs GROUP BY grp ORDER BY grp", true},
	{"sql", "SELECT grp, AVG(v) AS a FROM jdocs WHERE id >= 10 GROUP BY grp", false},
	// Binary columnar.
	{"sql", "SELECT COUNT(*), SUM(val) FROM bigbin WHERE id >= 1000 AND id < 2000", true},
	{"sql", "SELECT val, COUNT(*) AS n FROM bigbin WHERE score > 2.0 GROUP BY val ORDER BY val", true},
	{"sql", "SELECT id, name FROM bigbin WHERE id < 8 ORDER BY id", true},
	// Comprehensions reach the same compiled segments through the other
	// front end.
	{"comp", "for { n <- big, n.val > 42 } yield sum n.id", true},
	{"comp", "for { n <- big, n.id < 2500, n.score < 8.0 } yield count", true},
	// Joins: vectorized build and probe on the int fast path and the boxed
	// (string, multi-key) path, with projections through the probe-side
	// scatter and ORDER BY over join output.
	{"sql", "SELECT COUNT(*) FROM big a JOIN bigbin b ON a.id = b.id WHERE a.val < 45", true},
	{"sql", "SELECT a.id AS id, a.name AS n, b.val AS bv FROM big a JOIN bigbin b ON a.id = b.id WHERE b.score > 5.0 ORDER BY id", true},
	{"sql", "SELECT COUNT(*) FROM big a JOIN bigbin b ON a.name = b.name WHERE a.id < 40 AND b.id < 200", true},
	{"sql", "SELECT COUNT(*) FROM big a JOIN bigbin b ON a.id = b.id AND a.name = b.name", true},
	{"sql", "SELECT a.id AS id, b.name AS bn FROM big a JOIN bigbin b ON a.id = b.id WHERE a.name = 'gamma' AND b.id < 600 ORDER BY id DESC LIMIT 20", true},
	// Vectorized ORDER BY: columnar index sort with limits, string and
	// descending keys, heavy ties (stability must match the row-wise sort),
	// and nulls (which sort first).
	{"sql", "SELECT id, val, name FROM big WHERE val < 50 ORDER BY name, id DESC LIMIT 100", true},
	{"sql", "SELECT id, score FROM bigbin WHERE id < 2000 ORDER BY score DESC, id LIMIT 17", true},
	{"sql", "SELECT val, id FROM big WHERE id < 1200 ORDER BY val", true},
	{"sql", "SELECT id, v FROM jdocs WHERE id < 600 ORDER BY v, id", true},
	// String predicates: vectorized eq/ne/prefix-LIKE/contains, including
	// the dictionary-code path once caching materializes string columns.
	{"sql", "SELECT COUNT(*) FROM big WHERE name = 'gamma'", true},
	{"sql", "SELECT COUNT(*) FROM big WHERE name <> 'alpha' AND name <> 'zeta'", true},
	{"sql", "SELECT COUNT(*) FROM big WHERE name LIKE 'ga%'", true},
	{"sql", "SELECT COUNT(*) FROM bigbin WHERE name LIKE 'delt%' OR name LIKE 'ze%'", true},
	{"sql", "SELECT id, name FROM bigbin WHERE name = 'beta' AND id < 500 ORDER BY id", true},
}

// rowStrings renders result rows for comparison.
func rowStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return out
}

func runVecQuery(t *testing.T, e *Engine, q vecQuery) (*exec.Result, error) {
	t.Helper()
	if q.lang == "sql" {
		return e.QuerySQL(q.text)
	}
	return e.QueryComp(q.text)
}

// checkEquivalence runs every query against a vectorized and a tuple engine
// built from the same config and demands identical results.
func checkEquivalence(t *testing.T, base Config) {
	t.Helper()
	onCfg, offCfg := base, base
	onCfg.Vectorized = exec.VecOn
	offCfg.Vectorized = exec.VecOff
	on := newVecEngine(t, onCfg)
	off := newVecEngine(t, offCfg)
	for _, q := range vecEquivalenceQueries {
		rOn, errOn := runVecQuery(t, on, q)
		rOff, errOff := runVecQuery(t, off, q)
		if (errOn != nil) != (errOff != nil) {
			t.Errorf("%s: vectorized err = %v, tuple err = %v", q.text, errOn, errOff)
			continue
		}
		if errOn != nil {
			continue
		}
		sOn, sOff := rowStrings(rOn), rowStrings(rOff)
		if !q.ordered {
			sort.Strings(sOn)
			sort.Strings(sOff)
		}
		if len(sOn) != len(sOff) {
			t.Errorf("%s: vectorized %d rows, tuple %d rows", q.text, len(sOn), len(sOff))
			continue
		}
		for i := range sOn {
			if sOn[i] != sOff[i] {
				t.Errorf("%s: row %d differs\n  vectorized: %s\n  tuple:      %s", q.text, i, sOn[i], sOff[i])
				break
			}
		}
	}
}

func TestVectorizedEquivalenceSerial(t *testing.T) {
	checkEquivalence(t, Config{Parallelism: 1})
}

func TestVectorizedEquivalenceParallel(t *testing.T) {
	checkEquivalence(t, Config{Parallelism: 4})
}

func TestVectorizedEquivalenceCached(t *testing.T) {
	// With caching on, the first run materializes blocks and later runs scan
	// them through the zero-copy cached batch path; all must agree. Plan
	// caching is disabled so every repetition recompiles against the current
	// cache contents (the plan cache gets its own tests).
	base := Config{Parallelism: 2, CacheEnabled: true, PlanCacheSize: -1}
	onCfg, offCfg := base, base
	onCfg.Vectorized = exec.VecOn
	offCfg.Vectorized = exec.VecOff
	on := newVecEngine(t, onCfg)
	off := newVecEngine(t, offCfg)
	for round := 0; round < 3; round++ {
		for _, q := range vecEquivalenceQueries {
			rOn, errOn := runVecQuery(t, on, q)
			rOff, errOff := runVecQuery(t, off, q)
			if (errOn != nil) != (errOff != nil) {
				t.Fatalf("round %d %s: vectorized err = %v, tuple err = %v", round, q.text, errOn, errOff)
			}
			if errOn != nil {
				continue
			}
			sOn, sOff := rowStrings(rOn), rowStrings(rOff)
			if !q.ordered {
				sort.Strings(sOn)
				sort.Strings(sOff)
			}
			if fmt.Sprint(sOn) != fmt.Sprint(sOff) {
				t.Errorf("round %d %s:\n  vectorized: %v\n  tuple:      %v", round, q.text, sOn, sOff)
			}
		}
	}
}

// TestVectorizedEquivalenceConcurrent hammers one shared vectorized engine
// from several goroutines (each compiles its own program, morsel workers
// share batches per clone); run under -race this is the data-race guard.
func TestVectorizedEquivalenceConcurrent(t *testing.T) {
	on := newVecEngine(t, Config{Parallelism: 4, Vectorized: exec.VecOn, CacheEnabled: true})
	off := newVecEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOff})
	want := map[string][]string{}
	for _, q := range vecEquivalenceQueries {
		if !q.ordered {
			continue
		}
		res, err := runVecQuery(t, off, q)
		if err != nil {
			continue
		}
		want[q.text] = rowStrings(res)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range vecEquivalenceQueries {
				expect, ok := want[q.text]
				if !ok {
					continue
				}
				res, err := runVecQuery(t, on, q)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", q.text, err)
					return
				}
				if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint(expect) {
					errs <- fmt.Errorf("%s: got %v, want %v", q.text, got, expect)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestVectorizedExplainNamesMode asserts EXPLAIN records the per-segment
// mode decision.
func TestVectorizedExplainNamesMode(t *testing.T) {
	e := newVecEngine(t, Config{Vectorized: exec.VecOn, Parallelism: 1})
	p, err := e.PrepareSQL("SELECT SUM(val) FROM big WHERE id < 100")
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "vectorized segment") {
		t.Errorf("EXPLAIN does not name the vectorized segment:\n%s", out)
	}

	off := newVecEngine(t, Config{Vectorized: exec.VecOff, Parallelism: 1})
	p, err = off.PrepareSQL("SELECT SUM(val) FROM big WHERE id < 100")
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); strings.Contains(out, "vectorized segment") {
		t.Errorf("VecOff still vectorizes:\n%s", out)
	}
}

// TestVecAutoThreshold: tiny inputs stay on the tuple path under VecAuto,
// large ones vectorize.
func TestVecAutoThreshold(t *testing.T) {
	e := newTestEngine(t, Config{}) // 5-row datasets, Vectorized default auto
	p, err := e.PrepareSQL("SELECT SUM(val) FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); strings.Contains(out, "vectorized segment") {
		t.Errorf("VecAuto vectorized a 5-row scan:\n%s", out)
	}
	big := newVecEngine(t, Config{})
	p, err = big.PrepareSQL("SELECT SUM(val) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); !strings.Contains(out, "vectorized segment") {
		t.Errorf("VecAuto kept a %d-row scan on the tuple path:\n%s", vecRows, out)
	}
}

// Robustness in batch mode: the PR-3 guarantees must fire mid-batch.

func TestVectorizedCancellationMidBatch(t *testing.T) {
	e := New(Config{Parallelism: 2, Vectorized: exec.VecOn})
	slow := newSlowInput(1<<20, 50*time.Microsecond)
	e.RegisterPlugin(slow)
	// A concrete schema keeps the scan vec-eligible; the plug-in has no
	// native batch producer, so this exercises the transposed path.
	slowSchema := types.NewRecordType(types.Field{Name: "id", Type: types.Int})
	if err := e.Register("slow", "slow://t", "slow", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.QuerySQLContext(ctx, "SELECT COUNT(*) FROM slow")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // mid-scan, well inside a batch run
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("cancelled vectorized query returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("vectorized query ignored cancellation")
	}
	if got := e.Metrics().QueriesCancelled; got != 1 {
		t.Errorf("QueriesCancelled = %d, want 1", got)
	}
	// Engine still works (a fast dataset: the slow table's per-row delay
	// would dominate the test otherwise).
	e.Mem().PutFile("mem://tiny.csv", []byte("1\n2\n3\n"))
	tinySchema := types.NewRecordType(types.Field{Name: "id", Type: types.Int})
	if err := e.Register("tiny", "mem://tiny.csv", "csv", tinySchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.QuerySQL("SELECT COUNT(*) FROM tiny")
	if err != nil {
		t.Fatalf("follow-up after cancel: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("follow-up count = %d, want 3", got)
	}
}

func TestVectorizedTimeoutMidBatch(t *testing.T) {
	e := New(Config{Parallelism: 2, Vectorized: exec.VecOn, QueryTimeout: 30 * time.Millisecond})
	slow := newSlowInput(1<<20, 50*time.Microsecond)
	e.RegisterPlugin(slow)
	slowSchema := types.NewRecordType(types.Field{Name: "id", Type: types.Int})
	if err := e.Register("slow", "slow://t", "slow", slowSchema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := e.QuerySQL("SELECT SUM(id) FROM slow")
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("timed-out vectorized query returned %v", err)
	}
	if got := e.Metrics().QueriesTimedOut; got != 1 {
		t.Errorf("QueriesTimedOut = %d, want 1", got)
	}
}

func TestVectorizedMemBudgetMidBatch(t *testing.T) {
	// A grouped aggregate with one group per row blows a small budget from
	// inside the vectorized nest terminate loop.
	e := newVecEngine(t, Config{Parallelism: 1, Vectorized: exec.VecOn, QueryMemBudget: 64 << 10})
	_, err := e.QuerySQL("SELECT id, COUNT(*) AS n FROM big GROUP BY id")
	if err == nil {
		t.Fatal("grouped query under tiny budget succeeded")
	}
	if !strings.Contains(err.Error(), exec.ErrMemBudget.Error()) {
		t.Fatalf("want mem-budget error, got %v", err)
	}
	if got := e.Metrics().QueriesMemRejected; got != 1 {
		t.Errorf("QueriesMemRejected = %d, want 1", got)
	}
	// Within budget still succeeds on the same engine.
	if _, err := e.QuerySQL("SELECT val, COUNT(*) AS n FROM big GROUP BY val"); err != nil {
		t.Fatalf("follow-up grouped query: %v", err)
	}
}

// TestVectorizedProfileCountsRows: EXPLAIN ANALYZE row counts stay
// per-tuple-accurate in batch mode, and batch counters populate.
func TestVectorizedProfileCountsRows(t *testing.T) {
	e := newVecEngine(t, Config{Vectorized: exec.VecOn, Parallelism: 1})
	_, qp, err := e.ExplainAnalyzeSQL("SELECT COUNT(*) FROM big WHERE val < 50")
	if err != nil {
		t.Fatal(err)
	}
	out := obs.RenderProfile(qp)
	// 50 of every 100 val cycle survive: 1500 of 3000 rows.
	if !strings.Contains(out, "rows=3000") {
		t.Errorf("scan row count missing from analyze output:\n%s", out)
	}
	if !strings.Contains(out, "rows=1500") {
		t.Errorf("filter row count missing from analyze output:\n%s", out)
	}
	if !strings.Contains(out, "batches=") {
		t.Errorf("batch counter missing from analyze output:\n%s", out)
	}
}
