package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

// registerParallelFixtures registers datasets big enough to split into
// several morsels: a 1200-row CSV, a 300-object JSON file with nested tag
// arrays of varying length (so byte-balanced morsel cuts differ from
// row-balanced ones), and a 1000-row columnar binary file.
func registerParallelFixtures(t *testing.T, e *Engine) {
	t.Helper()

	var csv strings.Builder
	for i := 0; i < 1200; i++ {
		fmt.Fprintf(&csv, "%d,%d,%g,name%03d,%d\n", i+1, (i*7)%100, float64(i%13)+0.5, i%50, i%7)
	}
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "name", Type: types.String},
		types.Field{Name: "grp", Type: types.Int},
	)
	e.Mem().PutFile("mem://big.csv", []byte(csv.String()))
	if err := e.Register("big", "mem://big.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatalf("register big: %v", err)
	}

	var js strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&js, `{"id": %d, "grp": %d, "w": %g, "tags": [`, i+1, i%5, float64(i%9))
		nt := i % 4
		if i == 0 {
			nt = 2 // schema inference reads the first object's tags
		}
		for k := 0; k < nt; k++ {
			if k > 0 {
				js.WriteString(", ")
			}
			fmt.Fprintf(&js, `{"k": "t%d", "n": %d}`, k, (i+k)%11)
		}
		js.WriteString("]}\n")
	}
	e.Mem().PutFile("mem://events.json", []byte(js.String()))
	if err := e.Register("events", "mem://events.json", "json", nil, plugin.Options{}); err != nil {
		t.Fatalf("register events: %v", err)
	}

	ids := make([]int64, 1000)
	vs := make([]float64, 1000)
	for i := range ids {
		ids[i] = int64(i + 1)
		vs[i] = float64(i%17) * 0.5
	}
	bin, err := binpg.EncodeColumnar([]binpg.Column{
		{Name: "id", Type: types.Int, Ints: ids},
		{Name: "v", Type: types.Float, Floats: vs},
	})
	if err != nil {
		t.Fatalf("encode bin: %v", err)
	}
	e.Mem().PutFile("mem://pts.bin", bin)
	if err := e.Register("pts", "mem://pts.bin", "bin", nil, plugin.Options{}); err != nil {
		t.Fatalf("register pts: %v", err)
	}
}

// requireSameResult asserts two results are identical: same columns, same
// row count, same values in the same order.
func requireSameResult(t *testing.T, q string, serial, parallel *exec.Result) {
	t.Helper()
	if len(serial.Cols) != len(parallel.Cols) {
		t.Fatalf("%s: cols %v vs %v", q, serial.Cols, parallel.Cols)
	}
	for i := range serial.Cols {
		if serial.Cols[i] != parallel.Cols[i] {
			t.Fatalf("%s: cols %v vs %v", q, serial.Cols, parallel.Cols)
		}
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("%s: %d rows serial vs %d parallel", q, len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if types.Compare(serial.Rows[i], parallel.Rows[i]) != 0 {
			t.Fatalf("%s: row %d differs: %s vs %s", q, i, serial.Rows[i], parallel.Rows[i])
		}
	}
}

// TestParallelMatchesSerial runs the covered plan shapes — aggregates
// (including AVG, which merges sum+count rather than quotients), group-bys
// on both the single-int and the general key path, joins, unnests, and bag
// yields with and without ORDER BY — on a serial and a 4-worker engine and
// requires byte-identical results, row order included.
func TestParallelMatchesSerial(t *testing.T) {
	serial := New(Config{Parallelism: 1})
	par := New(Config{Parallelism: 4})
	registerParallelFixtures(t, serial)
	registerParallelFixtures(t, par)

	queries := []struct {
		q      string
		isComp bool
	}{
		{"SELECT COUNT(*), SUM(val), MIN(id), MAX(score), AVG(val) FROM big WHERE val < 60", false},
		{"SELECT COUNT(*), AVG(w) FROM events", false},
		{"SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(score) AS a FROM big GROUP BY grp", false},
		{"SELECT name, COUNT(*) AS n FROM big GROUP BY name", false},
		{"SELECT grp, COUNT(*) AS n FROM events GROUP BY grp", false},
		{"SELECT COUNT(*) FROM big a JOIN pts p ON a.id = p.id WHERE p.v < 5.0", false},
		{"SELECT COUNT(*) FROM big a JOIN big b ON a.id = b.id WHERE a.val < 45", false},
		{"SELECT id, name FROM big WHERE score > 3.0 ORDER BY id DESC LIMIT 17", false},
		{"SELECT SUM(v) FROM pts WHERE id > 100", false},
		{"for { n <- big, n.val >= 90 } yield bag (n.id, n.name)", true},
		{"for { d <- events, tg <- d.tags, tg.n > 4 } yield count", true},
		{"for { d <- events, tg <- d.tags } yield bag (d.id, tg.n)", true},
	}
	for _, tc := range queries {
		run := func(e *Engine) (*exec.Result, error) {
			if tc.isComp {
				return e.QueryComp(tc.q)
			}
			return e.QuerySQL(tc.q)
		}
		resS, err := run(serial)
		if err != nil {
			t.Fatalf("serial %s: %v", tc.q, err)
		}
		resP, err := run(par)
		if err != nil {
			t.Fatalf("parallel %s: %v", tc.q, err)
		}
		requireSameResult(t, tc.q, resS, resP)
	}
}

// TestParallelPlanIsActuallyParallel guards against the fallback silently
// kicking in for partitionable plans.
func TestParallelPlanIsActuallyParallel(t *testing.T) {
	e := New(Config{Parallelism: 4})
	registerParallelFixtures(t, e)
	for _, q := range []string{
		"SELECT SUM(val) FROM big",
		"SELECT COUNT(*) FROM events",
		"SELECT SUM(v) FROM pts",
	} {
		p, err := e.PrepareSQL(q)
		if err != nil {
			t.Fatalf("prepare %s: %v", q, err)
		}
		joined := strings.Join(p.Program.Explain, "\n")
		if !strings.Contains(joined, "parallel:") {
			t.Errorf("%s: expected a parallel compilation, explain:\n%s", q, joined)
		}
	}
}

// TestParallelCachePopulation: a morsel-parallel scan populates the cache
// through per-worker fragments that the coordinator concatenates and
// registers exactly once — the follow-up query must be served from the
// cache and agree with the first result.
func TestParallelCachePopulation(t *testing.T) {
	e := New(Config{Parallelism: 4, CacheEnabled: true})
	registerParallelFixtures(t, e)

	res1, err := e.QuerySQL("SELECT SUM(val) FROM big")
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	snap := e.Caches().Snapshot()
	if snap.Blocks == 0 {
		t.Fatalf("expected cache blocks after parallel scan, got %+v", snap)
	}

	p, err := e.PrepareSQL("SELECT SUM(val) FROM big")
	if err != nil {
		t.Fatalf("re-prepare: %v", err)
	}
	joined := strings.Join(p.Program.Explain, "\n")
	if !strings.Contains(joined, "served from cache") {
		t.Fatalf("expected the re-run to read the cache, explain:\n%s", joined)
	}
	res2, err := p.Program.Run()
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	if a, b := res1.Scalar().AsInt(), res2.Scalar().AsInt(); a != b {
		t.Fatalf("cached result %d != original %d", b, a)
	}
}

// TestConcurrentQueriesSharedEngine exercises many goroutines issuing mixed
// CSV/JSON/binary queries against one shared engine with caching on — the
// scenario the cache-manager and shared-build-side locking exists for. Run
// with -race.
func TestConcurrentQueriesSharedEngine(t *testing.T) {
	e := newTestEngine(t, Config{CacheEnabled: true, Parallelism: 2})
	bin, err := binpg.EncodeRows([]binpg.Column{
		{Name: "k", Type: types.Int, Ints: []int64{1, 2, 3, 4, 5, 6}},
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	e.Mem().PutFile("mem://tiny.bin", bin)
	if err := e.Register("tiny", "mem://tiny.bin", "bin", nil, plugin.Options{}); err != nil {
		t.Fatalf("register tiny: %v", err)
	}

	queries := []struct {
		q      string
		isComp bool
		want   int64
	}{
		{"SELECT COUNT(*) FROM nums WHERE val < 35", false, 3},
		{"SELECT SUM(val) FROM nums WHERE id < 4", false, 60},
		{"SELECT COUNT(*) FROM docs WHERE grp = 1", false, 2},
		{"SELECT COUNT(*) FROM tiny WHERE k > 2", false, 4},
		{"SELECT COUNT(*) FROM nums a JOIN nums b ON a.id = b.id", false, 5},
		{"for { d <- docs, tg <- d.tags, tg.n > 5 } yield count", true, 2},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 12; rep++ {
				tc := queries[(w+rep)%len(queries)]
				var res *exec.Result
				var err error
				if tc.isComp {
					res, err = e.QueryComp(tc.q)
				} else {
					res, err = e.QuerySQL(tc.q)
				}
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, tc.q, err)
					return
				}
				if got := res.Scalar().AsInt(); got != tc.want {
					t.Errorf("worker %d: %s = %d, want %d", w, tc.q, got, tc.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelProgramReRun: a compiled parallel program may be run
// repeatedly; shared build sides and cache fragments must re-arm per run.
func TestParallelProgramReRun(t *testing.T) {
	e := New(Config{Parallelism: 4, CacheEnabled: true})
	registerParallelFixtures(t, e)
	p, err := e.PrepareSQL("SELECT COUNT(*) FROM big a JOIN pts p ON a.id = p.id")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var first int64
	for i := 0; i < 3; i++ {
		res, err := p.Program.Run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := res.Scalar().AsInt()
		if i == 0 {
			first = got
			if got != 1000 {
				t.Fatalf("join count = %d, want 1000", got)
			}
		} else if got != first {
			t.Fatalf("run %d: count = %d, want %d", i, got, first)
		}
	}
}
