package engine

import (
	"bytes"
	"fmt"
	"testing"

	"proteus/internal/fastparse"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// kvPlugin is a complete custom input plug-in for a toy "key=value" line
// format (`a=1;b=2.5;c=text`). It exists to prove the paper's extensibility
// claim end to end (§5.2 "Adding support for more inputs is
// straightforward... what is required is to code in an input plug-in which
// implements the methods of Table 2"): registering it makes the new format
// a first-class citizen — scans compile, statistics flow to the optimizer,
// and cross-format joins against CSV/JSON/binary work unchanged.
type kvPlugin struct{}

type kvState struct {
	data   []byte
	schema *types.RecordType
	starts []int32
	rows   int64
}

func (p *kvPlugin) Format() string     { return "kv" }
func (p *kvPlugin) FieldCost() float64 { return 8.0 }

func (p *kvPlugin) Open(env *plugin.Env, ds *plugin.Dataset) error {
	data, err := env.Mem.File(ds.Path)
	if err != nil {
		return err
	}
	if ds.Schema == nil {
		return fmt.Errorf("kv: dataset %q needs a declared schema", ds.Name)
	}
	st := &kvState{data: data, schema: ds.Schema}
	pos := 0
	for pos < len(data) {
		st.starts = append(st.starts, int32(pos))
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			pos = len(data)
		} else {
			pos += nl + 1
		}
		st.rows++
	}
	env.Stats.Table(ds.Name).Rows = st.rows
	ds.State = st
	return nil
}

func (p *kvPlugin) Schema(ds *plugin.Dataset) *types.RecordType { return ds.Schema }

func (p *kvPlugin) Cardinality(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*kvState); ok {
		return st.rows
	}
	return 0
}

// kvFind locates "key=" in a line and returns the value bytes.
func kvFind(line []byte, key string) ([]byte, bool) {
	pos := 0
	for pos < len(line) {
		eq := bytes.IndexByte(line[pos:], '=')
		if eq < 0 {
			return nil, false
		}
		k := line[pos : pos+eq]
		valStart := pos + eq + 1
		end := bytes.IndexByte(line[valStart:], ';')
		valEnd := len(line)
		if end >= 0 {
			valEnd = valStart + end
		}
		if string(k) == key {
			return line[valStart:valEnd], true
		}
		if end < 0 {
			return nil, false
		}
		pos = valEnd + 1
	}
	return nil, false
}

func (p *kvPlugin) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	st := ds.State.(*kvState)
	type extract struct {
		key  string
		slot vbuf.Slot
		kind types.Kind
	}
	var extracts []extract
	for _, req := range spec.Fields {
		if len(req.Path) != 1 {
			return nil, fmt.Errorf("kv: flat format, got path %v", req.Path)
		}
		extracts = append(extracts, extract{key: req.Path[0], slot: req.Slot, kind: req.Type.Kind()})
	}
	data := st.data
	starts := st.starts
	rows := st.rows
	oid := spec.OIDSlot
	return func(regs *vbuf.Regs, consume func() error) error {
		for row := int64(0); row < rows; row++ {
			start := int(starts[row])
			end := len(data)
			if row+1 < rows {
				end = int(starts[row+1]) - 1
			}
			line := data[start:end]
			if oid != nil {
				regs.I[oid.Idx] = row
				regs.Null[oid.Null] = false
			}
			for _, ex := range extracts {
				raw, ok := kvFind(line, ex.key)
				if !ok {
					regs.Null[ex.slot.Null] = true
					continue
				}
				regs.Null[ex.slot.Null] = false
				switch ex.kind {
				case types.KindInt:
					regs.I[ex.slot.Idx] = fastparse.Int(raw)
				case types.KindFloat:
					regs.F[ex.slot.Idx] = fastparse.Float(raw)
				case types.KindString:
					regs.S[ex.slot.Idx] = string(raw)
				default:
					regs.Null[ex.slot.Null] = true
				}
			}
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (p *kvPlugin) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

func (p *kvPlugin) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	st := ds.State.(*kvState)
	names := st.schema.Names()
	out := make([]types.Value, 0, st.rows)
	for row := int64(0); row < st.rows; row++ {
		start := int(st.starts[row])
		end := len(st.data)
		if row+1 < st.rows {
			end = int(st.starts[row+1]) - 1
		}
		line := st.data[start:end]
		vals := make([]types.Value, len(st.schema.Fields))
		for i, f := range st.schema.Fields {
			raw, ok := kvFind(line, f.Name)
			if !ok {
				vals[i] = types.NullValue()
				continue
			}
			switch f.Type.Kind() {
			case types.KindInt:
				vals[i] = types.IntValue(fastparse.Int(raw))
			case types.KindFloat:
				vals[i] = types.FloatValue(fastparse.Float(raw))
			default:
				vals[i] = types.StringValue(string(raw))
			}
		}
		out = append(out, types.RecordValue(names, vals))
	}
	return out, nil
}

func TestCustomPluginEndToEnd(t *testing.T) {
	e := newTestEngine(t, Config{})
	e.RegisterPlugin(&kvPlugin{})
	e.Mem().PutFile("mem://m.kv", []byte(
		"id=1;score=0.5;tag=x\n"+
			"id=3;score=1.5;tag=y\n"+
			"id=5;tag=z\n")) // score missing on the last line → null
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "tag", Type: types.String},
	)
	if err := e.Register("metrics", "mem://m.kv", "kv", schema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}

	// Plain query over the new format.
	res, err := e.QuerySQL("SELECT COUNT(*), MAX(score) FROM metrics WHERE id > 0")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if v, _ := row.Field("count(*)"); v.AsInt() != 3 {
		t.Errorf("count = %s", v)
	}
	if v, _ := row.Field("max(score)"); v.AsFloat() != 1.5 {
		t.Errorf("max = %s", v)
	}

	// NULL semantics: the missing score must not satisfy predicates.
	res, err = e.QuerySQL("SELECT COUNT(*) FROM metrics WHERE score < 100.0")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 2 {
		t.Errorf("non-null scores = %d, want 2", got)
	}

	// Cross-format join against the CSV dataset registered by the fixture.
	res, err = e.QuerySQL(
		"SELECT COUNT(*) FROM metrics m JOIN nums n ON m.id = n.id")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Errorf("kv ⋈ csv count = %d, want 3", got)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	e := New(Config{})
	if err := e.Register("x", "mem://x", "parquet", nil, plugin.Options{}); err == nil {
		t.Error("unregistered format should fail")
	}
}
