// Package engine wires the full Proteus architecture together (Figure 2):
// the catalog of registered datasets and their input plug-ins, the query
// life-cycle (parse → calculus → nested relational algebra → optimize →
// cache-match → compile → run), the Memory and Caching Managers, and the
// statistics store.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/cache"
	"proteus/internal/calculus"
	"proteus/internal/cluster"
	"proteus/internal/comp"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/optimizer"
	"proteus/internal/plugin"
	"proteus/internal/plugin/binpg"
	"proteus/internal/plugin/csvpg"
	"proteus/internal/plugin/jsonpg"
	"proteus/internal/sql"
	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Config tunes an Engine.
type Config struct {
	// CacheEnabled turns adaptive caching on (§6).
	CacheEnabled bool
	// CacheBudget bounds the cache arena in bytes (0 = unlimited).
	CacheBudget int64
	// CacheStrings overrides the default don't-cache-strings policy.
	CacheStrings bool
	// Indexes selects the bitmap-index policy for cached columns:
	// cache.IndexAuto (default) builds indexes on columns that repeated
	// selective predicates mark as hot, cache.IndexOn indexes every
	// predicate-touched cached column immediately, cache.IndexOff disables
	// bitmap indexes (zone maps are always built — they are 21 bytes per
	// 1024 rows).
	Indexes cache.IndexMode
	// SampleEvery is the statistics sampling stride during cold access
	// (default 64; negative disables cold-access statistics gathering).
	SampleEvery int
	// Parallelism is the number of morsel-parallel workers per query
	// (0 = GOMAXPROCS; 1 forces serial execution). Each worker gets its own
	// compiled pipeline clone over one contiguous morsel of the driving
	// scan; plans whose driving plug-in cannot partition fall back to
	// serial automatically.
	Parallelism int
	// Observability turns per-query lifecycle tracing and operator row
	// counting on for every query (see DESIGN.md, Observability). Engine
	// metrics and EXPLAIN ANALYZE work regardless of this flag; it controls
	// only whether ordinary queries record profiles into the ring.
	Observability bool
	// ProfileRingSize bounds how many recent query profiles are retained
	// (default 32; values below 1 retain only the most recent profile).
	ProfileRingSize int
	// OnQueryDone, when set, is invoked synchronously with every finished
	// query's profile — the structured slow-query-log hook. It runs on the
	// query's goroutine; keep it cheap or hand off.
	OnQueryDone func(obs.QueryProfile)
	// SlowQueryThreshold, when positive, records every query whose
	// end-to-end time reaches it into the slow-query log (surfaced at
	// /debug/slow and Engine.SlowQueries). Setting it forces the observed
	// life-cycle even when Observability is off, so slow queries always
	// carry their full profile. 0 disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the retained slow-query records (default 128).
	SlowQueryLogSize int
	// SlowQueryWriter, when set, additionally receives every slow-query
	// record as one JSON line (the production log sink).
	SlowQueryWriter io.Writer
	// TraceMorsels samples per-morsel event spans into observed query
	// profiles for trace export: every Nth observed query records one span
	// per scan-driver invocation (0 = off, the default — EXPLAIN ANALYZE
	// runs always record events).
	TraceMorsels int
	// PlanFeedbackSize bounds the per-plan-fingerprint feedback store in
	// tracked plans (0 = default 256; negative disables the store).
	PlanFeedbackSize int
	// QueryTimeout bounds each query's wall time, covering the whole
	// life-cycle from parse through execute (0 = no timeout). Expired
	// queries return context.DeadlineExceeded.
	QueryTimeout time.Duration
	// QueryMemBudget bounds the bytes a single query may pin in operator
	// state — hash-join build sides, aggregation tables, ORDER BY buffers
	// (0 = unlimited). Exceeding it fails the query with exec.ErrMemBudget;
	// the engine and its caches stay usable.
	QueryMemBudget int64
	// MaxConcurrentQueries gates admission: queries beyond the limit wait
	// until a slot frees or their context is cancelled (0 = unlimited).
	MaxConcurrentQueries int
	// Vectorized selects the execution mode for eligible pipeline segments
	// (scan→filter chains over scalar columns feeding an aggregate):
	// exec.VecAuto (default) vectorizes when the input is large enough to
	// amortize batch setup, exec.VecOn forces batch kernels wherever
	// eligible, exec.VecOff forces the tuple-at-a-time path everywhere.
	Vectorized exec.VecMode
	// PlanCacheSize bounds the compiled-plan cache in entries (0 = default
	// 64; negative disables plan caching entirely).
	PlanCacheSize int
	// Cluster, when set, makes this engine a scatter/gather coordinator:
	// eligible plans (partitionable driving scan, ≥ 2 worker morsels) are
	// distributed across the coordinator's workers and merged through the
	// same discipline the in-process parallel path uses; ineligible plans
	// and worker plan-fingerprint divergence fall back to local execution
	// transparently.
	Cluster *cluster.Coordinator
}

// Engine is a Proteus instance: a catalog plus the managers every query
// compilation consults.
type Engine struct {
	mu          sync.Mutex
	mem         *storage.Manager
	stats       *stats.Store
	caches      *cache.Manager
	registry    *plugin.Registry
	env         *plugin.Env
	datasets    map[string]*plugin.Dataset
	parallelism int
	vectorize   exec.VecMode
	cluster     *cluster.Coordinator

	// Compiled-plan cache: plainQuery consults it before re-running the
	// life-cycle. planEpoch advances on every catalog mutation (register,
	// drop, plug-in registration) so cached programs compiled against a
	// stale catalog are invalidated; cache-content changes are tracked
	// separately through the cache manager's own epoch.
	plans     *planCache
	planEpoch atomic.Uint64

	// Robustness knobs (see Config).
	timeout   time.Duration
	memBudget int64
	admit     chan struct{} // nil = unlimited concurrency

	// Drain state (see Close): lcMu guards closed and inflight; drained is
	// closed exactly once, when the engine is closed and the last in-flight
	// query has finished.
	lcMu     sync.Mutex
	closed   bool
	inflight int
	drained  chan struct{}

	// Observability state. metrics and profiles are always allocated so
	// Metrics() and the HTTP handler work even when per-query profiling is
	// off; obsEnabled only gates whether ordinary queries trace themselves.
	obsEnabled bool
	metrics    *obs.Metrics
	profiles   *obs.Ring
	onDone     func(obs.QueryProfile)
	queryID    atomic.Int64

	// Observability v2 state. slowlog is nil unless SlowQueryThreshold is
	// set; feedback is nil when PlanFeedbackSize is negative; traceMorsels
	// samples morsel events on every Nth observed query via obsSeq.
	slowlog      *obs.SlowLog
	feedback     *obs.PlanFeedback
	traceMorsels int
	obsSeq       atomic.Int64
}

// New creates an engine with the standard plug-ins registered (CSV, JSON,
// binary).
func New(cfg Config) *Engine {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 64
	}
	if cfg.SampleEvery < 0 {
		cfg.SampleEvery = 0 // explicit opt-out of cold-access sampling
	}
	mem := storage.NewManager(cfg.CacheBudget)
	st := stats.NewStore()
	cm := cache.NewManager(mem, cfg.CacheEnabled)
	cm.CacheStrings = cfg.CacheStrings
	cm.Indexes = cfg.Indexes
	reg := plugin.NewRegistry()
	reg.Register(csvpg.New())
	reg.Register(jsonpg.New())
	reg.Register(binpg.New())
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ringSize := cfg.ProfileRingSize
	if ringSize == 0 {
		ringSize = 32
	}
	if ringSize < 0 {
		ringSize = 0
	}
	var slowlog *obs.SlowLog
	if cfg.SlowQueryThreshold > 0 {
		logSize := cfg.SlowQueryLogSize
		if logSize == 0 {
			logSize = 128
		}
		slowlog = obs.NewSlowLog(cfg.SlowQueryThreshold, logSize, cfg.SlowQueryWriter)
	}
	var feedback *obs.PlanFeedback
	if cfg.PlanFeedbackSize >= 0 {
		feedback = obs.NewPlanFeedback(cfg.PlanFeedbackSize)
	}
	var admit chan struct{}
	if cfg.MaxConcurrentQueries > 0 {
		admit = make(chan struct{}, cfg.MaxConcurrentQueries)
	}
	planCap := cfg.PlanCacheSize
	if planCap == 0 {
		planCap = 64
	}
	var plans *planCache
	if planCap > 0 {
		plans = newPlanCache(planCap)
	}
	return &Engine{
		mem:          mem,
		drained:      make(chan struct{}),
		stats:        st,
		caches:       cm,
		registry:     reg,
		env:          &plugin.Env{Mem: mem, Stats: st, SampleEvery: cfg.SampleEvery},
		datasets:     map[string]*plugin.Dataset{},
		parallelism:  par,
		vectorize:    cfg.Vectorized,
		cluster:      cfg.Cluster,
		plans:        plans,
		timeout:      cfg.QueryTimeout,
		memBudget:    cfg.QueryMemBudget,
		admit:        admit,
		obsEnabled:   cfg.Observability,
		metrics:      &obs.Metrics{},
		profiles:     obs.NewRing(ringSize),
		onDone:       cfg.OnQueryDone,
		slowlog:      slowlog,
		feedback:     feedback,
		traceMorsels: cfg.TraceMorsels,
	}
}

// compileProg compiles an optimized plan with the engine's parallelism
// setting; exec falls back to a serial compile when the plan cannot be
// morsel-partitioned.
func (e *Engine) compileProg(plan algebra.Node) (*exec.Program, error) {
	return e.compileProgWith(plan, nil, nil, e.vectorize)
}

// compileProgWith compiles like compileProg but additionally requests
// per-operator profiling when spec is non-nil (observed queries and EXPLAIN
// ANALYZE), wiring the engine's cumulative metrics into the run. sortSpec,
// when non-nil, pushes the statement's ORDER BY / LIMIT into compilation so
// an eligible plan can sort columns before boxing rows (Program.Sorted
// reports whether it did); mode is the per-plan execution-mode decision.
func (e *Engine) compileProgWith(plan algebra.Node, spec *exec.ProfileSpec, sortSpec *exec.SortSpec, mode exec.VecMode) (*exec.Program, error) {
	env := &exec.Env{Catalog: e, Caches: e.caches, Stats: e.stats, MemBudget: e.memBudget, Vectorize: mode, Sort: sortSpec}
	if spec != nil {
		env.Profile = spec
		env.Metrics = e.metrics
	}
	return exec.CompileParallel(plan, env, e.parallelism)
}

// modeExploreRuns is how many runs one mode must accumulate, with the other
// mode unmeasured, before auto mode forces one exploratory run of the other
// — giving the feedback store a measurement for both sides of the choice.
const modeExploreRuns = 2

// modeStaleRatio triggers re-exploration of a measured loser: once the
// winning mode has this many times the loser's run count, the loser's
// measurement is considered stale and it gets one fresh run. Without this a
// mode that lost its first (possibly cold-cache) comparison would never be
// re-measured; with it the steady state spends at most ~1/(ratio+1) of runs
// refreshing the loser, and the throughput EWMA lets a refreshed loser win.
const modeStaleRatio = 4

// chooseVecMode decides the execution mode for one plan fingerprint. A
// non-auto config is final ("config"). In auto mode the per-plan feedback
// store drives the choice: with both modes measured the higher observed
// rows/sec wins ("measured"), except that a loser whose measurements have
// gone stale is forced one fresh run ("explore"); with one mode warm and the
// other unmeasured, the unmeasured one is forced once so it gets measured
// ("explore") — unless a previous forced compile proved the plan cannot
// vectorize; cold plans fall back to the compiler's static cardinality
// heuristic ("heuristic").
func (e *Engine) chooseVecMode(fp string) (exec.VecMode, string) {
	if e.vectorize != exec.VecAuto {
		return e.vectorize, "config"
	}
	ps, ok := e.feedback.Lookup(fp)
	if !ok {
		return exec.VecAuto, "heuristic"
	}
	tuple, vec := ps.Tuple, ps.Vectorized
	switch {
	case tuple.Runs > 0 && vec.Runs > 0:
		if tuple.Runs >= modeStaleRatio*vec.Runs && !ps.VecIneligible {
			return exec.VecOn, "explore"
		}
		if vec.Runs >= modeStaleRatio*tuple.Runs {
			return exec.VecOff, "explore"
		}
		if vec.RowsPerSec() >= tuple.RowsPerSec() {
			return exec.VecOn, "measured"
		}
		return exec.VecOff, "measured"
	case tuple.Runs >= modeExploreRuns && vec.Runs == 0 && !ps.VecIneligible:
		return exec.VecOn, "explore"
	case vec.Runs >= modeExploreRuns && tuple.Runs == 0:
		return exec.VecOff, "explore"
	}
	return exec.VecAuto, "heuristic"
}

// noteModeDecision records the outcome of one mode decision: into the plan's
// EXPLAIN notes, the decision counters, and the feedback store. An explore
// that asked for vectorization but compiled tuple-at-a-time marks the plan
// vec-ineligible so auto mode stops re-exploring it.
func (e *Engine) noteModeDecision(fp string, prog *exec.Program, chosen exec.VecMode, source string) {
	mode := "tuple"
	if prog.Vectorized {
		mode = "vectorized"
	}
	prog.Explain = append(prog.Explain, fmt.Sprintf("mode: %s (%s)", mode, source))
	e.metrics.CountModeDecision(mode, source)
	e.feedback.NoteModeDecision(fp, "", mode, source)
	if source == "explore" && chosen == exec.VecOn && !prog.Vectorized {
		e.feedback.NoteVecIneligible(fp)
	}
}

// Mem exposes the memory manager (data generators write synthetic files
// through it).
func (e *Engine) Mem() *storage.Manager { return e.mem }

// Caches exposes the caching manager (experiments toggle and inspect it).
func (e *Engine) Caches() *cache.Manager { return e.caches }

// Stats exposes the statistics store.
func (e *Engine) Stats() *stats.Store { return e.stats }

// RegisterPlugin adds a custom input plug-in (§5.2 "Adding More Inputs").
func (e *Engine) RegisterPlugin(in plugin.Input) {
	e.registry.Register(in)
	e.planEpoch.Add(1)
}

// Register adds a dataset to the catalog and opens it through its format's
// plug-in (building structural indexes and gathering cold statistics).
func (e *Engine) Register(name, path, format string, schema *types.RecordType, opts plugin.Options) error {
	in, err := e.registry.For(format)
	if err != nil {
		return err
	}
	ds := &plugin.Dataset{Name: name, Path: path, Format: format, Schema: schema, Opts: opts}
	if err := in.Open(e.env, ds); err != nil {
		return fmt.Errorf("engine: opening %s: %w", name, err)
	}
	e.mu.Lock()
	e.datasets[name] = ds
	e.mu.Unlock()
	e.planEpoch.Add(1)
	return nil
}

// Drop removes a dataset and every cache derived from it (the paper's
// answer to updates: drop and rebuild affected auxiliary structures).
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	ds, ok := e.datasets[name]
	delete(e.datasets, name)
	e.mu.Unlock()
	if ok {
		e.caches.Drop(name)
		e.mem.Release(ds.Path)
	}
	e.planEpoch.Add(1)
}

// Dataset implements exec.Catalog.
func (e *Engine) Dataset(name string) (*plugin.Dataset, plugin.Input, error) {
	e.mu.Lock()
	ds, ok := e.datasets[name]
	e.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown dataset %q", name)
	}
	in, err := e.registry.For(ds.Format)
	if err != nil {
		return nil, nil, err
	}
	return ds, in, nil
}

// SchemaOf implements calculus.Catalog.
func (e *Engine) SchemaOf(name string) (*types.RecordType, bool) {
	ds, in, err := e.Dataset(name)
	if err != nil {
		return nil, false
	}
	return in.Schema(ds), true
}

// Rows implements optimizer.CostSource.
func (e *Engine) Rows(name string) int64 {
	ds, in, err := e.Dataset(name)
	if err != nil {
		return 0
	}
	return in.Cardinality(ds)
}

// FieldCost implements optimizer.CostSource.
func (e *Engine) FieldCost(name string) float64 {
	_, in, err := e.Dataset(name)
	if err != nil {
		return 1
	}
	return in.FieldCost()
}

// Prepared is a compiled query: plan + specialized program.
type Prepared struct {
	Plan    algebra.Node
	Program *exec.Program
	// Sort is the statement's ORDER BY / LIMIT (nil when absent). The local
	// Program already applies it (absorbed or wrapped); the cluster path
	// re-applies it over the gathered merge, which is always unsorted.
	Sort *exec.SortSpec
}

// Explain renders the optimized plan and the compilation decisions.
func (p *Prepared) Explain() string {
	out := algebra.Format(p.Plan)
	for _, note := range p.Program.Explain {
		out += "-- " + note + "\n"
	}
	return out
}

// prepareComprehension runs the common tail of the life-cycle.
func (e *Engine) prepareComprehension(c *calculus.Comprehension) (*Prepared, error) {
	return e.prepare(context.Background(), c, nil)
}

// ctxErr reports a done context as its cancellation cause (Canceled,
// DeadlineExceeded, or whatever the caller supplied), nil otherwise.
func ctxErr(ctx context.Context) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// prepare runs the life-cycle tail (calculus → optimize → compile), tracing
// each phase into tr when a tracer is supplied. With a tracer, the
// post-optimization plan is also walked to record the optimizer's
// cardinality estimate per node, so EXPLAIN ANALYZE can print estimated vs.
// actual rows side by side. The context is checked between phases so a
// cancelled or timed-out query stops before paying for the next phase.
func (e *Engine) prepare(ctx context.Context, c *calculus.Comprehension, tr *tracer) (*Prepared, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	endCalc := tr.phase(obs.PhaseCalculus)
	if err := calculus.ResolveColumns(c, e); err != nil {
		endCalc()
		return nil, err
	}
	plan, err := calculus.Translate(calculus.Normalize(c), e)
	endCalc()
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	optEnv := &optimizer.Env{Stats: e.stats, Costs: e}
	endOpt := tr.phase(obs.PhaseOptimize)
	plan = optimizer.Optimize(plan, optEnv)
	endOpt()
	var spec *exec.ProfileSpec
	if tr != nil && tr.spec != nil {
		spec = tr.spec
		algebra.Walk(plan, func(n algebra.Node) bool {
			spec.Estimates[n] = optimizer.EstimateCard(n, optEnv)
			return true
		})
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var sortSpec *exec.SortSpec
	if len(c.OrderBy) > 0 || c.Limit > 0 {
		sortSpec = &exec.SortSpec{
			By:    append([]string(nil), c.OrderBy...),
			Desc:  append([]bool(nil), c.OrderDesc...),
			Limit: c.Limit,
		}
	}
	fp := plan.Fingerprint()
	mode, source := e.chooseVecMode(fp)
	endCompile := tr.phase(obs.PhaseCompile)
	prog, err := e.compileProgWith(plan, spec, sortSpec, mode)
	endCompile()
	if err != nil {
		return nil, err
	}
	e.noteModeDecision(fp, prog, mode, source)
	if sortSpec != nil && !prog.Sorted {
		orderBy, desc, limit := sortSpec.By, sortSpec.Desc, sortSpec.Limit
		prog.WrapResult(func(res *exec.Result) (*exec.Result, error) {
			// The sort buffer holds every materialized row; charge it
			// against the query's memory budget before sorting.
			if err := prog.ChargeMem(64 * int64(len(res.Rows))); err != nil {
				return nil, err
			}
			return orderAndLimit(res, orderBy, desc, limit)
		})
	}
	return &Prepared{Plan: plan, Program: prog, Sort: sortSpec}, nil
}

// orderAndLimit validates the ORDER BY columns against the result shape and
// delegates the sort and truncation to exec.OrderAndLimit's columnar index
// sort.
func orderAndLimit(res *exec.Result, orderBy []string, desc []bool, limit int) (*exec.Result, error) {
	// Output rows are records carrying the select-list names (bag yields
	// report a single synthetic column, so validate against an actual row
	// when one exists).
	for _, col := range orderBy {
		found := false
		for _, c := range res.Cols {
			if c == col {
				found = true
			}
		}
		if !found && len(res.Rows) > 0 {
			_, found = res.Rows[0].Field(col)
		}
		if !found {
			// An empty result has no rows to validate the column against
			// (bag yields report a synthetic column name); sorting zero
			// rows is a no-op, not an error.
			if len(res.Rows) == 0 {
				continue
			}
			return nil, fmt.Errorf("engine: ORDER BY column %q is not in the output (%v)", col, res.Cols)
		}
	}
	return exec.OrderAndLimit(res, orderBy, desc, limit)
}

// PrepareSQL compiles a SQL statement without running it.
func (e *Engine) PrepareSQL(query string) (*Prepared, error) {
	c, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.prepareComprehension(c)
}

// PrepareComp compiles a comprehension without running it.
func (e *Engine) PrepareComp(query string) (*Prepared, error) {
	c, err := comp.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.prepareComprehension(c)
}

// QuerySQL parses, optimizes, compiles, and runs a SQL statement.
func (e *Engine) QuerySQL(query string) (*exec.Result, error) {
	return e.runQuery(context.Background(), LangSQL, query)
}

// QueryComp parses, optimizes, compiles, and runs a comprehension.
func (e *Engine) QueryComp(query string) (*exec.Result, error) {
	return e.runQuery(context.Background(), LangComp, query)
}

// QuerySQLContext runs a SQL statement under the caller's context: the
// query aborts cooperatively — between pipeline vectors, scan strides, and
// life-cycle phases — when ctx is cancelled or its deadline passes.
func (e *Engine) QuerySQLContext(ctx context.Context, query string) (*exec.Result, error) {
	return e.runQuery(ctx, LangSQL, query)
}

// QueryCompContext is QuerySQLContext for comprehension queries.
func (e *Engine) QueryCompContext(ctx context.Context, query string) (*exec.Result, error) {
	return e.runQuery(ctx, LangComp, query)
}

// runQuery is the single entry point for executing queries: it rejects
// queries on a closed engine, gates admission, applies the configured
// timeout, dispatches to the observed or plain life-cycle, and classifies
// the outcome into the robustness metrics.
func (e *Engine) runQuery(ctx context.Context, lang, query string) (*exec.Result, error) {
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	defer e.endQuery()
	// Admission precedes the execution timeout on purpose: QueryTimeout
	// bounds execution, not queueing, so a query that spends its life in the
	// admission queue under load must not arrive at the scan already expired.
	// The wait itself stays bounded by the caller's context (and is measured
	// into the admission_wait histogram).
	if e.admit != nil {
		e.metrics.AdmissionQueued.Add(1)
		t0 := time.Now()
		err := e.acquire(ctx)
		e.metrics.AdmissionQueued.Add(-1)
		e.metrics.AdmissionWait.Observe(time.Since(t0))
		if err != nil {
			return nil, e.finishQuery(query, err)
		}
		defer e.release()
	}
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	var (
		res *exec.Result
		err error
	)
	// The slow-query log needs the full profile of every query that might
	// cross its threshold, so a configured log forces the observed path even
	// when Observability is off (profiles still only enter the ring and
	// metrics through flushProfile, as before).
	if e.obsEnabled || e.slowlog != nil {
		res, _, err = e.observedQuery(ctx, lang, query, false)
	} else {
		res, err = e.plainQuery(ctx, lang, query)
	}
	if err != nil {
		return nil, e.finishQuery(query, err)
	}
	return res, nil
}

// plainQuery is the untraced life-cycle: parse → prepare → run, all under
// the caller's context. With plan caching enabled, a repeated statement
// skips straight to its previously compiled program.
func (e *Engine) plainQuery(ctx context.Context, lang, query string) (*exec.Result, error) {
	if e.plans == nil {
		p, err := e.parseAndPrepare(ctx, lang, query)
		if err != nil {
			return nil, err
		}
		return e.runPrepared(ctx, lang, query, p)
	}
	// Both epochs are captured before prepare on purpose: a run that itself
	// registers cache blocks stores its entry stamped with the pre-run cache
	// epoch, so the next identical query misses and recompiles into a
	// cache-aware plan instead of replaying the cold path forever.
	key := planKey(lang, query)
	catalogEpoch := e.planEpoch.Load()
	cacheEpoch := e.caches.Epoch()
	if en := e.plans.lookup(key, catalogEpoch, cacheEpoch); en != nil {
		e.metrics.PlanCacheHits.Add(1)
		res, err := e.runPrepared(ctx, lang, query, en.prepared)
		en.release()
		return res, err
	}
	e.metrics.PlanCacheMisses.Add(1)
	p, err := e.parseAndPrepare(ctx, lang, query)
	if err != nil {
		return nil, err
	}
	en := e.plans.store(key, p, catalogEpoch, cacheEpoch)
	res, err := e.runPrepared(ctx, lang, query, p)
	en.release()
	return res, err
}

// runPlain executes a prepared program on the untraced path, feeding the
// per-plan feedback store with the one measurement this path affords: total
// execute time and result cardinality. A nil store compiles to two clock
// reads and a nil check.
func (e *Engine) runPlain(ctx context.Context, query string, prog *exec.Program) (*exec.Result, error) {
	if e.feedback == nil {
		return prog.RunContext(ctx)
	}
	t0 := time.Now()
	res, err := prog.RunContext(ctx)
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows))
	}
	e.feedback.Observe(prog.Fingerprint, query, time.Since(t0), rows, prog.Vectorized, err != nil)
	return res, err
}

// parseAndPrepare runs the front half of the life-cycle untraced.
func (e *Engine) parseAndPrepare(ctx context.Context, lang, query string) (*Prepared, error) {
	var (
		c   *calculus.Comprehension
		err error
	)
	if lang == LangSQL {
		c, err = sql.Parse(query)
	} else {
		c, err = comp.Parse(query)
	}
	if err != nil {
		return nil, err
	}
	return e.prepare(ctx, c, nil)
}

// ErrClosed is returned for queries submitted after Close: the engine is
// draining (or drained) and admits no new work.
var ErrClosed = errors.New("engine: closed")

// beginQuery registers one in-flight query, refusing when the engine is
// closed. Every runQuery holds a begin/end pair for its whole life-cycle —
// including the admission wait — so Close can drain precisely.
func (e *Engine) beginQuery() error {
	e.lcMu.Lock()
	defer e.lcMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight++
	return nil
}

// endQuery retires one in-flight query and, when the engine is closed and
// this was the last one, releases Close waiters.
func (e *Engine) endQuery() {
	e.lcMu.Lock()
	e.inflight--
	if e.closed && e.inflight == 0 {
		close(e.drained)
	}
	e.lcMu.Unlock()
}

// Close drains the engine: new queries are rejected with ErrClosed
// immediately, while queries already in flight (including ones queued at
// the admission gate) run to completion. Close returns once the engine is
// idle, or with ctx's cause when the deadline passes first — in-flight
// queries are NOT cancelled on timeout; callers wanting a hard stop should
// run queries under their own cancellable contexts. Close is idempotent:
// later calls just wait for the same drain.
func (e *Engine) Close(ctx context.Context) error {
	e.lcMu.Lock()
	if !e.closed {
		e.closed = true
		if e.inflight == 0 {
			close(e.drained)
		}
	}
	e.lcMu.Unlock()
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// queryTagKey carries the caller's correlation tag through a query context.
type queryTagKey struct{}

// WithQueryTag attaches a correlation tag (e.g. an HTTP request ID) to the
// context; observed queries copy it into their QueryProfile and from there
// into the slow-query log, correlating service requests with profiles.
func WithQueryTag(ctx context.Context, tag string) context.Context {
	return context.WithValue(ctx, queryTagKey{}, tag)
}

// QueryTag returns the context's correlation tag ("" when absent).
func QueryTag(ctx context.Context) string {
	tag, _ := ctx.Value(queryTagKey{}).(string)
	return tag
}

// acquire takes an admission slot, waiting until one frees or the context
// is cancelled. A nil gate admits everything.
func (e *Engine) acquire(ctx context.Context) error {
	if e.admit == nil {
		return nil
	}
	select {
	case e.admit <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// release frees an admission slot.
func (e *Engine) release() {
	if e.admit != nil {
		<-e.admit
	}
}

// finishQuery classifies a failed query into the robustness counters and
// wraps panics with the query text (the fingerprint is already inside the
// PanicError). The engine, caches, and statistics remain usable after every
// outcome — that is the invariant these counters witness.
func (e *Engine) finishQuery(query string, err error) error {
	var pe *exec.PanicError
	switch {
	case errors.As(err, &pe):
		e.metrics.QueriesPanicked.Add(1)
		return fmt.Errorf("query %q: %w", query, err)
	case errors.Is(err, exec.ErrMemBudget):
		e.metrics.QueriesMemRejected.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		e.metrics.QueriesTimedOut.Add(1)
	case errors.Is(err, context.Canceled):
		e.metrics.QueriesCancelled.Add(1)
	}
	return err
}

// QueryPlan compiles and runs an already-built algebra plan (used by tests
// and the baseline comparison harness).
func (e *Engine) QueryPlan(plan algebra.Node) (*exec.Result, error) {
	plan = optimizer.Optimize(plan, &optimizer.Env{Stats: e.stats, Costs: e})
	prog, err := e.compileProg(plan)
	if err != nil {
		return nil, err
	}
	return prog.Run()
}
