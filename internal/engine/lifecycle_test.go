// Life-cycle tests: graceful drain (Close), refusal after close, and the
// admission-before-timeout ordering that keeps queue wait from eating a
// query's execution budget.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// gateInput is a test plug-in whose scan blocks until release is closed,
// deliberately ignoring the cancellation token: it simulates a query that
// holds its admission slot past its own deadline, which is exactly the
// regime where timeout-vs-admission ordering matters.
type gateInput struct {
	rows    int64
	entered chan struct{} // closed when the first scan starts
	release chan struct{} // scans block until this closes
	once    sync.Once
}

func newGateInput(rows int64) *gateInput {
	return &gateInput{rows: rows, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateInput) Format() string { return "gate" }

func (g *gateInput) Open(env *plugin.Env, ds *plugin.Dataset) error {
	ds.Schema = &types.RecordType{Fields: []types.Field{{Name: "id", Type: types.Int}}}
	return nil
}

func (g *gateInput) Schema(ds *plugin.Dataset) *types.RecordType { return ds.Schema }
func (g *gateInput) Cardinality(ds *plugin.Dataset) int64        { return g.rows }
func (g *gateInput) FieldCost() float64                          { return 1 }

func (g *gateInput) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	var sets []func(regs *vbuf.Regs, row int64)
	for _, req := range spec.Fields {
		slot := req.Slot
		switch {
		case len(req.Path) == 0:
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.V[slot.Idx] = types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)})
				regs.Null[slot.Null] = false
			})
		case len(req.Path) == 1 && req.Path[0] == "id":
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.I[slot.Idx] = row
				regs.Null[slot.Null] = false
			})
		default:
			return nil, fmt.Errorf("gateInput: unknown field %v", req.Path)
		}
	}
	oid := spec.OIDSlot
	return func(regs *vbuf.Regs, consume func() error) error {
		g.once.Do(func() { close(g.entered) })
		<-g.release
		for row := int64(0); row < g.rows; row++ {
			if oid != nil {
				regs.I[oid.Idx] = row
				regs.Null[oid.Null] = false
			}
			for _, set := range sets {
				set(regs, row)
			}
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (g *gateInput) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

func (g *gateInput) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	out := make([]types.Value, 0, g.rows)
	for row := int64(0); row < g.rows; row++ {
		out = append(out, types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)}))
	}
	return out, nil
}

// registerFast registers a small in-memory CSV dataset named t.
func registerFast(t *testing.T, e *Engine) {
	t.Helper()
	e.Mem().PutFile("mem://t.csv", []byte("a\n1\n2\n3\n"))
	if err := e.Register("t", "mem://t.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionWaitOutsideTimeout pins the ordering fix: a query's
// execution timeout starts after admission, so time spent queued behind
// another tenant's query does not consume its budget. The blocker ignores
// cancellation and holds the only slot for 3x the query timeout; under the
// old submit-time deadline the queued query would return DeadlineExceeded
// from acquire, under the fixed ordering it runs to completion.
func TestAdmissionWaitOutsideTimeout(t *testing.T) {
	e := New(Config{MaxConcurrentQueries: 1, QueryTimeout: 150 * time.Millisecond, Parallelism: 1})
	gate := newGateInput(1)
	e.RegisterPlugin(gate)
	if err := e.Register("gate", "gate://t", "gate", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	registerFast(t, e)

	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		// Holds the slot well past its own deadline (the scan ignores the
		// cancel token until released); its error is irrelevant here.
		_, _ = e.QuerySQL("SELECT COUNT(*) FROM gate")
	}()
	<-gate.entered

	queuedDone := make(chan error, 1)
	go func() {
		_, err := e.QuerySQL("SELECT COUNT(*) FROM t")
		queuedDone <- err
	}()
	// Hold the slot for 3x the query timeout while the second query waits.
	time.Sleep(450 * time.Millisecond)
	select {
	case err := <-queuedDone:
		t.Fatalf("queued query finished while the slot was held: %v", err)
	default:
	}
	close(gate.release)
	<-blockerDone
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued query failed after a long admission wait: %v", err)
	}

	m := e.Metrics()
	if m.AdmissionWait.Count < 2 {
		t.Errorf("AdmissionWait.Count = %d, want >= 2", m.AdmissionWait.Count)
	}
	if m.AdmissionWait.SumSeconds < 0.4 {
		t.Errorf("AdmissionWait.SumSeconds = %v, want >= 0.4 (the queued wait)", m.AdmissionWait.SumSeconds)
	}
	if m.AdmissionQueued != 0 {
		t.Errorf("AdmissionQueued = %d after both queries finished, want 0", m.AdmissionQueued)
	}
}

// TestCloseDrainsInflight checks the drain protocol: Close refuses new
// queries immediately, waits for the in-flight one, and is idempotent.
func TestCloseDrainsInflight(t *testing.T) {
	e := New(Config{Parallelism: 1})
	gate := newGateInput(4)
	e.RegisterPlugin(gate)
	if err := e.Register("gate", "gate://t", "gate", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	registerFast(t, e)

	inflight := make(chan error, 1)
	go func() {
		_, err := e.QuerySQL("SELECT COUNT(*) FROM gate")
		inflight <- err
	}()
	<-gate.entered

	closed := make(chan error, 1)
	go func() { closed <- e.Close(context.Background()) }()
	// Close must block while the query runs...
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a query in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// ...and new queries must already be refused.
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("query during drain: err = %v, want ErrClosed", err)
	}
	close(gate.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}
	// Idempotent, and still closed.
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close: err = %v, want ErrClosed", err)
	}
}

// TestCloseDeadline: Close gives up with the context's cause when an
// in-flight query outlives the deadline.
func TestCloseDeadline(t *testing.T) {
	e := New(Config{Parallelism: 1})
	gate := newGateInput(1)
	e.RegisterPlugin(gate)
	if err := e.Register("gate", "gate://t", "gate", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = e.QuerySQL("SELECT COUNT(*) FROM gate")
	}()
	<-gate.entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want DeadlineExceeded", err)
	}
	close(gate.release)
	<-done
}

// TestQueryTagFlowsToProfile: a tag attached via WithQueryTag lands on the
// query's profile for request-ID correlation.
func TestQueryTagFlowsToProfile(t *testing.T) {
	e := New(Config{Observability: true})
	registerFast(t, e)
	ctx := WithQueryTag(context.Background(), "req-99")
	if _, err := e.QuerySQLContext(ctx, "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	profs := e.RecentProfiles()
	if len(profs) == 0 || profs[0].Tag != "req-99" {
		t.Fatalf("profiles = %d, tag = %q; want tag req-99", len(profs), func() string {
			if len(profs) > 0 {
				return profs[0].Tag
			}
			return ""
		}())
	}
}
