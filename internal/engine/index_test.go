package engine

import (
	"fmt"
	"strings"
	"testing"

	"proteus/internal/cache"
	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// newIdxEngine registers one wide CSV dataset (3000 rows: several zone
// windows) so zone maps and bitmap indexes have room to act.
func newIdxEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	var sb strings.Builder
	for i := 0; i < 3000; i++ {
		// grp cycles 0..9; band is constant 7 for the first zone and 99
		// afterwards, so a band=7 predicate can skip 2 of 3 zones.
		band := 7
		if i >= 1024 {
			band = 99
		}
		fmt.Fprintf(&sb, "%d,%d,%d,%s\n", i, i%10, band, []string{"red", "green", "blue"}[i%3])
	}
	e.Mem().PutFile("mem://idx.csv", []byte(sb.String()))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "grp", Type: types.Int},
		types.Field{Name: "band", Type: types.Int},
		types.Field{Name: "color", Type: types.String},
	)
	if err := e.Register("idx", "mem://idx.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatalf("register csv: %v", err)
	}
	return e
}

// TestIndexedFilterEquivalence runs the same filter queries repeatedly under
// forced-on and forced-off index policies and requires identical results —
// the index is an access path, never a semantics change.
func TestIndexedFilterEquivalence(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM idx WHERE grp = 3",
		"SELECT COUNT(*), SUM(id) FROM idx WHERE grp <= 2",
		"SELECT COUNT(*) FROM idx WHERE band = 7",
		"SELECT COUNT(*) FROM idx WHERE grp != 4",
		"SELECT SUM(grp) FROM idx WHERE id > 2900",
		"SELECT COUNT(*) FROM idx WHERE grp = 3 AND band = 99",
	}
	mk := func(mode cache.IndexMode) *Engine {
		return newIdxEngine(t, Config{
			CacheEnabled: true, CacheStrings: true, Indexes: mode,
			Vectorized: exec.VecOn, Parallelism: 1,
		})
	}
	on, off := mk(cache.IndexOn), mk(cache.IndexOff)
	for _, q := range queries {
		// Three runs: cold (populates caches), warm (builds/uses indexes),
		// and a third from the plan cache after any epoch bump.
		for run := 0; run < 3; run++ {
			rOn, err := on.QuerySQL(q)
			if err != nil {
				t.Fatalf("indexes on, %q run %d: %v", q, run, err)
			}
			rOff, err := off.QuerySQL(q)
			if err != nil {
				t.Fatalf("indexes off, %q run %d: %v", q, run, err)
			}
			if got, want := fmt.Sprint(rOn.Rows), fmt.Sprint(rOff.Rows); got != want {
				t.Fatalf("%q run %d: indexed %s != unindexed %s", q, run, got, want)
			}
		}
	}
	cs := on.Caches().Snapshot()
	if cs.IndexBuilds == 0 || cs.Indexes == 0 {
		t.Fatalf("forced-on engine built no indexes: %+v", cs)
	}
	if cs.IndexHits == 0 {
		t.Fatalf("forced-on engine recorded no index hits: %+v", cs)
	}
	if cs.IndexBytes <= 0 {
		t.Fatalf("index bytes not accounted: %+v", cs)
	}
	coff := off.Caches().Snapshot()
	if coff.IndexBuilds != 0 || coff.Indexes != 0 || coff.IndexHits != 0 {
		t.Fatalf("forced-off engine touched indexes: %+v", coff)
	}
}

// TestZoneMapSkips checks that a predicate outside most zones' ranges skips
// windows on the fully-cached scan, and that the skip counter surfaces
// through the metrics snapshot.
func TestZoneMapSkips(t *testing.T) {
	e := newIdxEngine(t, Config{
		CacheEnabled: true, Indexes: cache.IndexOff, Parallelism: 1,
	})
	q := "SELECT COUNT(*) FROM idx WHERE band = 7"
	var want int64
	for run := 0; run < 3; run++ {
		res, err := e.QuerySQL(q)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got := res.Scalar().AsInt(); run == 0 {
			want = got
		} else if got != want {
			t.Fatalf("run %d: count = %d, want %d", run, got, want)
		}
	}
	if want != 1024 {
		t.Fatalf("band=7 count = %d, want 1024", want)
	}
	if skips := e.Metrics().Cache.ZoneSkips; skips == 0 {
		t.Fatalf("warm runs over band=7 should skip zones, got %d", skips)
	}
}

// TestAdaptiveIndexPromotion drives the auto policy past the hot-scan
// threshold and checks an index appears without being forced.
func TestAdaptiveIndexPromotion(t *testing.T) {
	e := newIdxEngine(t, Config{
		CacheEnabled: true, Indexes: cache.IndexAuto,
		Vectorized: exec.VecOn, Parallelism: 1,
	})
	q := "SELECT COUNT(*) FROM idx WHERE grp = 3"
	for run := 0; run < 6; run++ {
		if _, err := e.QuerySQL(q); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	cs := e.Caches().Snapshot()
	if cs.IndexBuilds == 0 {
		t.Fatalf("auto policy never promoted grp to an index: %+v", cs)
	}
	if cs.IndexHits == 0 {
		t.Fatalf("promoted index never served a filter: %+v", cs)
	}
}
