// Robustness tests: cancellation, timeouts, memory budgets, and panic
// isolation (see DESIGN.md, Robustness). These run under -race in CI.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// slowInput is a test plug-in whose scan can be made arbitrarily slow
// (perRow sleep) or made to panic at a chosen row. It checks the
// cancellation token on every record so tests can assert tight
// cancellation latency. The single column "id" holds the row ordinal.
type slowInput struct {
	rows     int64
	perRow   time.Duration
	panicRow atomic.Int64 // -1 = never
}

func newSlowInput(rows int64, perRow time.Duration) *slowInput {
	s := &slowInput{rows: rows, perRow: perRow}
	s.panicRow.Store(-1)
	return s
}

func (s *slowInput) Format() string { return "slow" }

func (s *slowInput) Open(env *plugin.Env, ds *plugin.Dataset) error {
	ds.Schema = &types.RecordType{Fields: []types.Field{{Name: "id", Type: types.Int}}}
	return nil
}

func (s *slowInput) Schema(ds *plugin.Dataset) *types.RecordType { return ds.Schema }
func (s *slowInput) Cardinality(ds *plugin.Dataset) int64        { return s.rows }
func (s *slowInput) FieldCost() float64                          { return 1 }

func (s *slowInput) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	lo, hi := int64(0), s.rows
	if spec.Morsel != nil {
		lo, hi = spec.Morsel.Start, spec.Morsel.End
	}
	type setter func(regs *vbuf.Regs, row int64)
	var sets []setter
	for _, req := range spec.Fields {
		slot := req.Slot
		switch {
		case len(req.Path) == 0:
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.V[slot.Idx] = types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)})
				regs.Null[slot.Null] = false
			})
		case len(req.Path) == 1 && req.Path[0] == "id":
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.I[slot.Idx] = row
				regs.Null[slot.Null] = false
			})
		default:
			return nil, fmt.Errorf("slowInput: unknown field %v", req.Path)
		}
	}
	oid := spec.OIDSlot
	cc := spec.Cancel
	perRow := s.perRow
	return func(regs *vbuf.Regs, consume func() error) error {
		// Loaded per run, not per compile: the plan cache may reuse this
		// compiled scan across queries after the test re-arms panicRow.
		panicRow := s.panicRow.Load()
		for row := lo; row < hi; row++ {
			if cc.Cancelled() {
				return cc.Err()
			}
			if row == panicRow {
				panic("injected test panic")
			}
			if perRow > 0 {
				time.Sleep(perRow)
			}
			if oid != nil {
				regs.I[oid.Idx] = row
				regs.Null[oid.Null] = false
			}
			for _, set := range sets {
				set(regs, row)
			}
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (s *slowInput) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

func (s *slowInput) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	out := make([]types.Value, 0, s.rows)
	for row := int64(0); row < s.rows; row++ {
		out = append(out, types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)}))
	}
	return out, nil
}

// PartitionScan implements plugin.Partitioner so queries parallelize.
func (s *slowInput) PartitionScan(ds *plugin.Dataset, parts int) ([]plugin.Morsel, error) {
	return plugin.SplitRows(s.rows, parts), nil
}

// waitGoroutines waits for the goroutine count to settle back to the
// baseline (small slack for runtime helpers), retrying because worker
// teardown is asynchronous after cancellation.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelMidParallelQuery(t *testing.T) {
	e := New(Config{Parallelism: 4})
	slow := newSlowInput(1<<40, 50*time.Microsecond)
	e.RegisterPlugin(slow)
	if err := e.Register("slow", "slow://t", "slow", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.QuerySQLContext(ctx, "SELECT COUNT(*) FROM slow")
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let workers get going
	cancelStart := time.Now()
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		// The scan polls every record, so cancellation should land fast;
		// allow generous slack for -race and loaded CI machines.
		if latency := time.Since(cancelStart); latency > 500*time.Millisecond {
			t.Errorf("cancellation took %v", latency)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
	waitGoroutines(t, before)

	if got := e.Metrics().QueriesCancelled; got != 1 {
		t.Errorf("QueriesCancelled = %d, want 1", got)
	}
	// The shared engine must answer the next query correctly.
	e.Mem().PutFile("mem://t.csv", []byte("a\n1\n2\n3\n"))
	if err := e.Register("t", "mem://t.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}
	res, err := e.QuerySQL("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("follow-up query failed: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("follow-up query returned %d rows", len(res.Rows))
	}
}

func TestTimeoutDuringCompile(t *testing.T) {
	e := New(Config{QueryTimeout: time.Nanosecond})
	e.Mem().PutFile("mem://t.csv", []byte("a\n1\n"))
	if err := e.Register("t", "mem://t.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}
	_, err := e.QuerySQL("SELECT a FROM t")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if got := e.Metrics().QueriesTimedOut; got != 1 {
		t.Errorf("QueriesTimedOut = %d, want 1", got)
	}
}

func TestMemBudgetRejectionLeavesCacheConsistent(t *testing.T) {
	e := New(Config{CacheEnabled: true, QueryMemBudget: 4 << 10, Parallelism: 2})
	var data []byte
	data = append(data, "a,b\n"...)
	for i := 0; i < 5000; i++ {
		data = append(data, fmt.Sprintf("%d,%d\n", i, i%7)...)
	}
	e.Mem().PutFile("mem://big.csv", data)
	if err := e.Register("big", "mem://big.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}

	// 5000 distinct groups blow the 4 KiB budget mid-aggregation.
	_, err := e.QuerySQL("SELECT a, COUNT(*) FROM big GROUP BY a")
	if !errors.Is(err, exec.ErrMemBudget) {
		t.Fatalf("want exec.ErrMemBudget, got %v", err)
	}
	if got := e.Metrics().QueriesMemRejected; got != 1 {
		t.Errorf("QueriesMemRejected = %d, want 1", got)
	}
	// The aborted run must not have registered partial cache blocks.
	if s := e.Caches().Snapshot(); s.Blocks != 0 {
		t.Errorf("aborted query registered %d cache blocks", s.Blocks)
	}

	// A modest query on the same engine succeeds within the budget and
	// the cache manager keeps working (blocks may now materialize).
	res, err := e.QuerySQL("SELECT b, COUNT(*) FROM big GROUP BY b")
	if err != nil {
		t.Fatalf("follow-up query failed: %v", err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("follow-up query returned %d rows, want 7", len(res.Rows))
	}
}

func TestPanicWorkerDoesNotWedgeSiblings(t *testing.T) {
	e := New(Config{Parallelism: 4})
	slow := newSlowInput(1<<20, 0)
	slow.panicRow.Store(1 << 19) // inside a later worker's morsel
	e.RegisterPlugin(slow)
	if err := e.Register("slow", "slow://t", "slow", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	done := make(chan error, 1)
	go func() {
		_, err := e.QuerySQLContext(context.Background(), "SELECT COUNT(*) FROM slow")
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("query wedged after worker panic")
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *exec.PanicError, got %v", err)
	}
	if pe.Fingerprint == "" {
		t.Error("panic error carries no plan fingerprint")
	}
	if want := "SELECT COUNT(*) FROM slow"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the query", err)
	}
	waitGoroutines(t, before)
	if got := e.Metrics().QueriesPanicked; got != 1 {
		t.Errorf("QueriesPanicked = %d, want 1", got)
	}

	// Subsequent queries on the shared engine succeed.
	slow.panicRow.Store(-1)
	res, err := e.QuerySQL("SELECT COUNT(*) FROM slow")
	if err != nil {
		t.Fatalf("follow-up query failed: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("follow-up query returned %d rows", len(res.Rows))
	}
}
