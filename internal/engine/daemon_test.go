package engine

import (
	"sync"
	"testing"
	"time"

	"proteus/internal/plugin"
	"proteus/internal/types"
)

func statlessEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{SampleEvery: -1}) // no cold-access sampling
	e.Mem().PutFile("mem://d.csv", []byte("1,0.5\n5,1.5\n9,2.5\n"))
	schema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "b", Type: types.Float},
	)
	if err := e.Register("d", "mem://d.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGatherStatsOnceFillsMissingRanges(t *testing.T) {
	e := statlessEngine(t)
	if tbl, ok := e.Stats().Lookup("d"); ok {
		if c, exists := tbl.Cols["a"]; exists && c.HasRange {
			t.Fatal("precondition: no stats should exist with sampling disabled")
		}
	}
	e.GatherStatsOnce()
	tbl, ok := e.Stats().Lookup("d")
	if !ok {
		t.Fatal("no stats table after gathering")
	}
	a := tbl.Cols["a"]
	if a == nil || !a.HasRange || a.Min != 1 || a.Max != 9 {
		t.Errorf("a stats = %+v", a)
	}
	b := tbl.Cols["b"]
	if b == nil || b.Min != 0.5 || b.Max != 2.5 {
		t.Errorf("b stats = %+v", b)
	}
	if tbl.Rows != 3 {
		t.Errorf("rows = %d", tbl.Rows)
	}
}

func TestGatherStatsIdempotent(t *testing.T) {
	e := statlessEngine(t)
	e.GatherStatsOnce()
	tbl, _ := e.Stats().Lookup("d")
	before := *tbl.Cols["a"]
	e.GatherStatsOnce() // second sweep must skip columns that have ranges
	after := *tbl.Cols["a"]
	if before != after {
		t.Errorf("stats changed on idle re-sweep: %+v → %+v", before, after)
	}
}

func TestStatsDaemonRunsAndStops(t *testing.T) {
	e := statlessEngine(t)
	stop := e.StartStatsDaemon(5 * time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		if tbl, ok := e.Stats().Lookup("d"); ok {
			if _, _, has := tbl.Range("a"); has {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("daemon never gathered statistics")
		case <-time.After(2 * time.Millisecond):
		}
	}
	stop()
	stop() // stopping twice must be safe
}

// TestStatsDaemonGatheredRangesLand asserts the daemon's own MIN/MAX
// sweeps (not a synchronous GatherStatsOnce) populate the statistics store
// with the exact column ranges.
func TestStatsDaemonGatheredRangesLand(t *testing.T) {
	e := statlessEngine(t)
	stop := e.StartStatsDaemon(2 * time.Millisecond)
	defer stop()
	deadline := time.After(2 * time.Second)
	for {
		tbl, ok := e.Stats().Lookup("d")
		if ok {
			if _, _, hasA := tbl.Range("a"); hasA {
				if _, _, hasB := tbl.Range("b"); hasB {
					break
				}
			}
		}
		select {
		case <-deadline:
			t.Fatal("daemon never gathered both ranges")
		case <-time.After(time.Millisecond):
		}
	}
	tbl, _ := e.Stats().Lookup("d")
	if mn, mx, _ := tbl.Range("a"); mn != 1 || mx != 9 {
		t.Errorf("a range = [%g, %g], want [1, 9]", mn, mx)
	}
	if mn, mx, _ := tbl.Range("b"); mn != 0.5 || mx != 2.5 {
		t.Errorf("b range = [%g, %g], want [0.5, 2.5]", mn, mx)
	}
}

// TestStatsDaemonStopConcurrentWithTicks races stop() against in-flight
// daemon ticks (run under -race): many daemons on a shared engine, stopped
// from a different goroutine than the starter while sweeps execute, and
// every stop called twice.
func TestStatsDaemonStopConcurrentWithTicks(t *testing.T) {
	e := statlessEngine(t)
	const daemons = 8
	stops := make([]func(), daemons)
	for i := range stops {
		stops[i] = e.StartStatsDaemon(time.Millisecond)
	}
	// Let ticks fire while queries run through the same engine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_, _ = e.QuerySQL("SELECT MIN(a), MAX(a) FROM d")
		}
	}()
	time.Sleep(5 * time.Millisecond)
	var wg sync.WaitGroup
	for _, stop := range stops {
		wg.Add(1)
		go func(stop func()) {
			defer wg.Done()
			stop()
			stop() // double-stop must stay safe under contention
		}(stop)
	}
	wg.Wait()
	<-done
}

func TestJoinMaterializationProfilesStats(t *testing.T) {
	// §5.2: a blocking operator (hash join build) profiles the values it
	// materializes. With sampling disabled, the only way stats appear is
	// through the join.
	e := New(Config{SampleEvery: -1})
	e.Mem().PutFile("mem://l.csv", []byte("1,10\n2,20\n3,30\n"))
	e.Mem().PutFile("mem://r.csv", []byte("2,5.5\n3,7.5\n"))
	lsch := types.NewRecordType(
		types.Field{Name: "k", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	rsch := types.NewRecordType(
		types.Field{Name: "k", Type: types.Int},
		types.Field{Name: "w", Type: types.Float},
	)
	if err := e.Register("l", "mem://l.csv", "csv", lsch, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("r", "mem://r.csv", "csv", rsch, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QuerySQL("SELECT COUNT(*), MAX(r.w) FROM l JOIN r ON l.k = r.k"); err != nil {
		t.Fatal(err)
	}
	// The build side (r, the smaller input) was materialized; its numeric
	// columns must now have ranges.
	tbl, ok := e.Stats().Lookup("r")
	if !ok {
		t.Fatal("no stats for the materialized side")
	}
	w := tbl.Cols["w"]
	if w == nil || !w.HasRange || w.Min != 5.5 || w.Max != 7.5 {
		t.Errorf("w stats = %+v", w)
	}
}
