package engine

import (
	"testing"
)

func TestOrderByAscDesc(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT id, val FROM nums WHERE id > 1 ORDER BY val DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := int64(1 << 62)
	for _, row := range res.Rows {
		v, _ := row.Field("val")
		if v.AsInt() > prev {
			t.Fatalf("not descending: %v", res.Rows)
		}
		prev = v.AsInt()
	}
	res, err = e.QuerySQL("SELECT id, val FROM nums ORDER BY id ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[0].Field("id"); v.AsInt() != 1 {
		t.Errorf("first row = %s", res.Rows[0])
	}
}

func TestOrderByOnGroupedOutput(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT grp, COUNT(*) AS n FROM docs GROUP BY grp ORDER BY n DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[0].Field("n"); v.AsInt() != 2 {
		t.Errorf("top group = %s", res.Rows[0])
	}
}

func TestOrderByMultiKeyStable(t *testing.T) {
	e := newTestEngine(t, Config{})
	// grp has duplicates; secondary key id breaks ties deterministically.
	res, err := e.QuerySQL("SELECT id, grp FROM docs ORDER BY grp ASC, id DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[0].Field("id"); v.AsInt() != 2 {
		t.Errorf("rows = %v (want grp=1 ordered by id desc first)", res.Rows)
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.QuerySQL("SELECT id FROM nums ORDER BY ghost"); err == nil {
		t.Error("ORDER BY on a column not in the output should fail")
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT id FROM nums LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
