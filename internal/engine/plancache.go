package engine

import (
	"sort"
	"strings"
	"sync"
)

// planCache memoizes compiled queries so a repeated statement skips the
// whole life-cycle tail (parse → calculus → optimize → compile) and jumps
// straight to its specialized program. Entries are keyed by language plus
// whitespace-normalized query text and stamped with the catalog and cache
// epochs observed at compile time: any catalog change (register/drop/plug-in)
// or cache-content change (block registered or evicted) silently invalidates
// affected entries, because the compiled program may bake in dataset
// layouts, cache-hit scan paths, or cache-build claims that no longer hold.
//
// A Program is not runnable concurrently with itself (compiled accumulators
// hold per-run state), so each entry carries a mutex held for the duration
// of the run. A second identical query arriving mid-run simply misses and
// compiles fresh rather than blocking — plan caching is an optimization,
// never a serialization point.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	cap     int
	tick    uint64 // logical clock for LRU ordering
}

type planEntry struct {
	mu           sync.Mutex // held while the entry's program is running
	prepared     *Prepared
	catalogEpoch uint64
	cacheEpoch   uint64
	lastUsed     uint64
}

// release hands the entry back after its program finished running.
func (en *planEntry) release() { en.mu.Unlock() }

func newPlanCache(capacity int) *planCache {
	return &planCache{entries: map[string]*planEntry{}, cap: capacity}
}

// planKey builds the cache key: language tag plus the query text with runs
// of whitespace collapsed. No case folding — string literals are
// case-sensitive, and the parser already treats keywords uniformly.
func planKey(lang, query string) string {
	return lang + "\x00" + strings.Join(strings.Fields(query), " ")
}

// lookup returns the entry for key locked and ready to run, or nil on a
// miss. Entries whose recorded epochs no longer match the current ones are
// dropped on sight; entries busy running another query count as misses.
func (pc *planCache) lookup(key string, catalogEpoch, cacheEpoch uint64) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	en, ok := pc.entries[key]
	if !ok {
		return nil
	}
	if en.catalogEpoch != catalogEpoch || en.cacheEpoch != cacheEpoch {
		delete(pc.entries, key)
		return nil
	}
	if !en.mu.TryLock() {
		return nil
	}
	pc.tick++
	en.lastUsed = pc.tick
	return en
}

// store inserts a freshly prepared query and returns its entry locked (the
// caller runs the program, then releases). If another goroutine stored the
// key first, the resident entry wins and a detached locked entry is returned
// so the caller's run/release sequence stays uniform.
func (pc *planCache) store(key string, p *Prepared, catalogEpoch, cacheEpoch uint64) *planEntry {
	en := &planEntry{prepared: p, catalogEpoch: catalogEpoch, cacheEpoch: cacheEpoch}
	en.mu.Lock()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.tick++
	en.lastUsed = pc.tick
	if _, exists := pc.entries[key]; exists {
		return en
	}
	pc.entries[key] = en
	for len(pc.entries) > pc.cap {
		if !pc.evictOne(key) {
			break
		}
	}
	return en
}

// evictOne removes the least-recently-used entry other than keep, skipping
// entries whose program is mid-run. Returns false when nothing is evictable
// (every other entry is busy). Caller holds pc.mu.
func (pc *planCache) evictOne(keep string) bool {
	type cand struct {
		key string
		en  *planEntry
	}
	cands := make([]cand, 0, len(pc.entries))
	for k, en := range pc.entries {
		if k != keep {
			cands = append(cands, cand{k, en})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].en.lastUsed < cands[j].en.lastUsed })
	for _, c := range cands {
		if c.en.mu.TryLock() {
			c.en.mu.Unlock()
			delete(pc.entries, c.key)
			return true
		}
	}
	return false
}

// size reports the number of resident entries (tests only).
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
