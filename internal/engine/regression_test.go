package engine

import (
	"strings"
	"testing"
)

// TestOrderByEmptyResult: ORDER BY used to error out when the predicate
// eliminated every row, because the sort column could not be validated
// against a zero-row output. Sorting nothing must be a no-op.
func TestOrderByEmptyResult(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT id, name FROM nums WHERE val > 999 ORDER BY name")
	if err != nil {
		t.Fatalf("ORDER BY over an empty result must not fail: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected no rows, got %d", len(res.Rows))
	}

	// With rows present a bogus sort column must still be rejected.
	if _, err := e.QuerySQL("SELECT id FROM nums ORDER BY nosuch"); err == nil {
		t.Fatal("ORDER BY on a missing column should error when rows exist")
	}
}

// TestSelfJoinCacheBuilderDedup: scanning the same dataset twice in one
// query (self-join) used to install two cache builders for the same field,
// registering duplicate blocks with doubled row counts. Exactly one scan
// may own the builder.
func TestSelfJoinCacheBuilderDedup(t *testing.T) {
	e := newTestEngine(t, Config{CacheEnabled: true})
	p, err := e.PrepareSQL("SELECT COUNT(*) FROM nums a JOIN nums b ON a.id = b.id")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	builders := 0
	for _, note := range p.Program.Explain {
		if strings.Contains(note, "populating cache for field id") {
			builders++
		}
	}
	if builders != 1 {
		t.Fatalf("want exactly 1 cache builder for nums.id, got %d:\n%s",
			builders, strings.Join(p.Program.Explain, "\n"))
	}
	res, err := p.Program.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 5 {
		t.Fatalf("self-join count = %d, want 5", got)
	}
	blk, ok := e.Caches().Lookup("nums", "id")
	if !ok {
		t.Fatal("expected a registered cache block for nums.id")
	}
	if blk.Rows != 5 {
		t.Fatalf("cached block rows = %d, want 5 (duplicate builders double it)", blk.Rows)
	}

	// The next compilation of the same query must read the cache.
	p2, err := e.PrepareSQL("SELECT COUNT(*) FROM nums a JOIN nums b ON a.id = b.id")
	if err != nil {
		t.Fatalf("re-prepare: %v", err)
	}
	joined := strings.Join(p2.Program.Explain, "\n")
	if !strings.Contains(joined, "served from cache") {
		t.Fatalf("expected the second compilation to hit the cache:\n%s", joined)
	}
	res2, err := p2.Program.Run()
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	if got := res2.Scalar().AsInt(); got != 5 {
		t.Fatalf("cached self-join count = %d, want 5", got)
	}
}
