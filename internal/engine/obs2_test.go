// Observability v2 engine tests: the Chrome trace-export endpoint
// (the PR's acceptance criterion), the slow-query log end to end, the
// per-plan feedback store on both the plain and observed query paths,
// latency histograms in the metrics surface, morsel-event sampling, and a
// mixed serial/parallel race over one shared engine.
package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus/internal/obs"
)

// TestDebugTraceChromeJSON is the acceptance criterion: /debug/trace?id=N
// for a parallel query must serve valid Chrome trace-event JSON — the array
// form, every event carrying ph/ts/pid/tid, spans as "X" events with dur —
// with thread rows for each worker.
func TestDebugTraceChromeJSON(t *testing.T) {
	e := New(Config{Observability: true, Parallelism: 4, TraceMorsels: 1})
	registerParallelFixtures(t, e)
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM big WHERE val < 50"); err != nil {
		t.Fatal(err)
	}
	qp := e.RecentProfiles()[0]
	if qp.Workers <= 1 {
		t.Fatalf("fixture query ran with %d workers, want > 1", qp.Workers)
	}

	srv := httptest.NewServer(e.MetricsHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/trace?id=" + jsonNumber(qp.ID))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, ".trace.json") {
		t.Errorf("content disposition = %q", cd)
	}
	body := readAll(t, resp)
	if !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("trace must be the JSON array form, got %.40q", body)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	workerRows := map[float64]bool{}
	var sawQuerySpan, sawExecutePhase bool
	for i, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, ev)
			}
		}
		if ev["pid"].(float64) != float64(qp.ID) {
			t.Errorf("event %d pid = %v, want the query ID %d", i, ev["pid"], qp.ID)
		}
		ph := ev["ph"].(string)
		if ph != "X" && ph != "M" && ph != "i" {
			t.Errorf("event %d has unexpected phase type %q", i, ph)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("complete event %d has no dur: %v", i, ev)
			}
			if ev["name"] == "query" {
				sawQuerySpan = true
			}
			if ev["name"] == obs.PhaseExecute {
				sawExecutePhase = true
			}
			if tid := ev["tid"].(float64); tid >= 1 {
				workerRows[tid] = true
			}
		}
	}
	if !sawQuerySpan || !sawExecutePhase {
		t.Errorf("trace missing top-level spans: query=%v execute=%v", sawQuerySpan, sawExecutePhase)
	}
	if len(workerRows) != qp.Workers {
		t.Errorf("trace has %d worker thread rows, want %d", len(workerRows), qp.Workers)
	}

	// Omitting id serves the newest profile.
	resp, err = srv.Client().Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("no-id status = %d, want 200 (newest profile)", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown and malformed ids fail cleanly.
	resp, _ = srv.Client().Get(srv.URL + "/debug/trace?id=999999")
	if resp.StatusCode != 404 {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = srv.Client().Get(srv.URL + "/debug/trace?id=bogus")
	if resp.StatusCode != 400 {
		t.Errorf("malformed id status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func jsonNumber(id int64) string {
	b, _ := json.Marshal(id)
	return string(b)
}

// TestSlowQueryLogEndToEnd configures a 1ns threshold (every query is slow),
// a 2-entry ring, and a JSONL sink — on an engine with Observability OFF, so
// it also checks the slow log alone forces the profiled path.
func TestSlowQueryLogEndToEnd(t *testing.T) {
	var sink bytes.Buffer
	e := newTestEngine(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLogSize:   2,
		SlowQueryWriter:    &sink,
	})
	queries := []string{
		"SELECT COUNT(*) FROM nums",
		"SELECT SUM(val) FROM nums WHERE id > 1",
		joinAggSQL,
	}
	for _, q := range queries {
		if _, err := e.QuerySQL(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if got := e.Metrics().SlowQueries; got != 3 {
		t.Errorf("slow_queries metric = %d, want 3", got)
	}
	slow := e.SlowQueries()
	if len(slow) != 2 {
		t.Fatalf("retained slow queries = %d, want ring bound 2", len(slow))
	}
	if slow[0].Query != queries[2] || slow[1].Query != queries[1] {
		t.Errorf("slow log order = %q, %q, want newest first", slow[0].Query, slow[1].Query)
	}
	rec := slow[0]
	if rec.TotalNanos <= 0 || rec.Fingerprint == "" || rec.Lang != LangSQL {
		t.Errorf("record = %+v", rec)
	}
	if rec.PhaseNanos[obs.PhaseExecute] <= 0 {
		t.Errorf("record has no execute phase: %v", rec.PhaseNanos)
	}
	if rec.Attr.BytesRead <= 0 {
		t.Errorf("record attributes no bytes read: %+v", rec.Attr)
	}

	// The sink got one parseable JSON line per slow query, including evicted
	// ones.
	var lines int
	sc := bufio.NewScanner(&sink)
	for sc.Scan() {
		var row obs.SlowQuery
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("sink line %d is not JSON: %v", lines+1, err)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("sink lines = %d, want 3", lines)
	}

	// /debug/slow serves the retained records.
	srv := httptest.NewServer(e.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var served []obs.SlowQuery
	if err := json.Unmarshal([]byte(readAll(t, resp)), &served); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v", err)
	}
	if len(served) != 2 || served[0].Query != queries[2] {
		t.Errorf("/debug/slow = %d records, first %q", len(served), served[0].Query)
	}
}

func TestSlowLogThresholdFiltersFastQueries(t *testing.T) {
	e := newTestEngine(t, Config{SlowQueryThreshold: time.Hour})
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
		t.Fatal(err)
	}
	if got := e.SlowQueries(); len(got) != 0 {
		t.Errorf("fast query landed in the slow log: %v", got)
	}
	if got := e.Metrics().SlowQueries; got != 0 {
		t.Errorf("slow_queries metric = %d, want 0", got)
	}
}

// TestPlanFeedbackBothPaths checks the feedback store accumulates from the
// plain (unobserved) path and, with per-phase means, from the observed path.
func TestPlanFeedbackBothPaths(t *testing.T) {
	// Plain path: observability off, no slow log — queries run unprofiled,
	// yet feedback still accumulates totals keyed by plan fingerprint.
	plain := newTestEngine(t, Config{})
	const q = "SELECT COUNT(*) FROM nums WHERE val > 15"
	for i := 0; i < 3; i++ {
		if _, err := plain.QuerySQL(q); err != nil {
			t.Fatal(err)
		}
	}
	stats := plain.PlanFeedback()
	if len(stats) != 1 {
		t.Fatalf("tracked plans = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Executions != 3 || st.Query != q || st.MeanNanos <= 0 || st.Fingerprint == "" {
		t.Errorf("plain-path stats = %+v", st)
	}
	if st.Rows != 3 {
		t.Errorf("rows = %d, want 3 (one result row per run)", st.Rows)
	}
	if st.PhaseMeanNanos[obs.PhaseIndex(obs.PhaseExecute)] != 0 {
		t.Error("plain path must not claim per-phase means")
	}
	if got := plain.Metrics().PlanStatsTracked; got != 1 {
		t.Errorf("plan_stats_tracked = %d, want 1", got)
	}

	// Observed path: per-phase means fill in, and the fingerprint matches
	// the profile's.
	observed := newTestEngine(t, Config{Observability: true})
	for i := 0; i < 2; i++ {
		if _, err := observed.QuerySQL(q); err != nil {
			t.Fatal(err)
		}
	}
	fp := observed.RecentProfiles()[0].Fingerprint
	if fp == "" {
		t.Fatal("observed profile has no fingerprint")
	}
	ost, ok := observed.PlanFeedbackFor(fp)
	if !ok {
		t.Fatalf("no feedback for fingerprint %q", fp)
	}
	if ost.Executions != 2 {
		t.Errorf("executions = %d, want 2", ost.Executions)
	}
	if ost.PhaseMeanNanos[obs.PhaseIndex(obs.PhaseExecute)] <= 0 {
		t.Errorf("observed path recorded no execute-phase mean: %v", ost.PhaseMeanNanos)
	}
	if ost.Tuple.Runs+ost.Vectorized.Runs != 2 {
		t.Errorf("mode split = %+v / %+v, want 2 runs total", ost.Tuple, ost.Vectorized)
	}

	// Disabled store: negative size tracks nothing.
	off := newTestEngine(t, Config{PlanFeedbackSize: -1})
	if _, err := off.QuerySQL(q); err != nil {
		t.Fatal(err)
	}
	if got := off.PlanFeedback(); got != nil {
		t.Errorf("disabled store tracked %v", got)
	}

	// /debug/plans serves the store.
	srv := httptest.NewServer(observed.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	var served []obs.PlanStats
	if err := json.Unmarshal([]byte(readAll(t, resp)), &served); err != nil {
		t.Fatalf("/debug/plans is not JSON: %v", err)
	}
	if len(served) != 1 || served[0].Fingerprint != fp {
		t.Errorf("/debug/plans = %+v", served)
	}
}

// TestLatencyHistogramsSurface checks queries land in the log-bucketed
// histograms and surface through the snapshot summaries and the Prometheus
// exposition.
func TestLatencyHistogramsSurface(t *testing.T) {
	e := newTestEngine(t, Config{Observability: true})
	for i := 0; i < 4; i++ {
		if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Metrics()
	var total *obs.LatencySummary
	for i := range snap.Latency {
		if snap.Latency[i].Phase == "total" {
			total = &snap.Latency[i]
		}
	}
	if total == nil {
		t.Fatalf("no end-to-end latency summary in %+v", snap.Latency)
	}
	if total.Count != 4 || total.P50 <= 0 || total.P99 < total.P50 {
		t.Errorf("total latency summary = %+v", total)
	}
	prom := snap.Prometheus()
	for _, want := range []string{
		`proteus_query_duration_seconds_bucket{phase="total",le="+Inf"} 4`,
		`proteus_query_duration_seconds_bucket{phase="execute",le="+Inf"} 4`,
		`proteus_query_duration_seconds_sum{phase="total"}`,
		`proteus_query_duration_seconds_count{phase="total"} 4`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestObsSamplingResultsUnchanged runs the representative queries on a
// fully loaded observability config — morsel events sampled on every query,
// slow log at 1ns — and requires byte-identical results vs. a bare engine.
func TestObsSamplingResultsUnchanged(t *testing.T) {
	queries := []string{
		joinAggSQL,
		"SELECT grp, COUNT(*), MAX(id) FROM docs GROUP BY grp",
		"SELECT name, val FROM nums WHERE score > 2 ORDER BY val DESC LIMIT 2",
	}
	plain := newTestEngine(t, Config{})
	sampled := newTestEngine(t, Config{
		Observability:      true,
		TraceMorsels:       1,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryWriter:    io.Discard,
	})
	for _, q := range queries {
		want, err := plain.QuerySQL(q)
		if err != nil {
			t.Fatalf("%s (plain): %v", q, err)
		}
		got, err := sampled.QuerySQL(q)
		if err != nil {
			t.Fatalf("%s (sampled): %v", q, err)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("%s: row counts differ: %d vs %d", q, len(want.Rows), len(got.Rows))
		}
		for i := range want.Rows {
			if want.Rows[i].String() != got.Rows[i].String() {
				t.Errorf("%s row %d: %s vs %s", q, i, want.Rows[i], got.Rows[i])
			}
		}
	}
	// Sampling actually recorded morsel events: the newest profile's execute
	// phase carries a worker span with morsel children.
	qp := sampled.RecentProfiles()[0]
	var withEvents bool
	for _, ph := range qp.Phases {
		if ph.Name != obs.PhaseExecute {
			continue
		}
		for _, ws := range ph.Children {
			if len(ws.Children) > 0 {
				withEvents = true
			}
		}
	}
	if !withEvents {
		t.Errorf("TraceMorsels=1 recorded no morsel events:\n%s", obs.RenderProfile(qp))
	}
}

// TestObsSharedEngineMixedRace hammers one fully instrumented engine with
// serial and parallel queries from many goroutines while readers snapshot
// every surface. Run under -race in CI.
func TestObsSharedEngineMixedRace(t *testing.T) {
	e := New(Config{
		Observability:      true,
		Parallelism:        4,
		TraceMorsels:       2,
		ProfileRingSize:    4,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryWriter:    io.Discard,
	})
	registerParallelFixtures(t, e)
	queries := []string{
		"SELECT COUNT(*) FROM big WHERE val < 50",       // parallel
		"SELECT grp, COUNT(*) FROM events GROUP BY grp", // parallel-ish
		"SELECT COUNT(*) FROM pts WHERE v > 3.0",        // binary scan
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries[(g+i)%len(queries)]
				if _, err := e.QuerySQL(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_ = e.Metrics()
				_ = e.SlowQueries()
				_ = e.PlanFeedback()
				_, _ = e.TraceJSON(0)
			}
		}()
	}
	wg.Wait()
	if got := e.Metrics().Queries; got != 16 {
		t.Errorf("queries = %d, want 16", got)
	}
	if got := e.Metrics().SlowQueries; got != 16 {
		t.Errorf("slow queries = %d, want 16 (1ns threshold)", got)
	}
	if got := len(e.PlanFeedback()); got != len(queries) {
		t.Errorf("tracked plans = %d, want %d", got, len(queries))
	}
}
