package engine

import (
	"fmt"
	"sync"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

// TestRowMajorBinaryThroughEngine exercises the row-major binary layout end
// to end (the columnar layout is covered by the benchmark fixtures).
func TestRowMajorBinaryThroughEngine(t *testing.T) {
	cols := []binpg.Column{
		{Name: "k", Type: types.Int, Ints: []int64{1, 2, 3, 4, 5}},
		{Name: "w", Type: types.Float, Floats: []float64{0.5, 1.5, 2.5, 3.5, 4.5}},
		{Name: "tag", Type: types.String, Strs: []string{"a", "b", "c", "d", "e"}},
	}
	data, err := binpg.EncodeRows(cols)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{})
	e.Mem().PutFile("mem://rows.bin", data)
	if err := e.Register("rows", "mem://rows.bin", "bin", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.QuerySQL("SELECT SUM(k), MAX(w), MIN(tag) FROM rows WHERE k > 1")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if v, _ := row.Field("sum(k)"); v.AsInt() != 14 {
		t.Errorf("sum = %s", v)
	}
	if v, _ := row.Field("max(w)"); v.F != 4.5 {
		t.Errorf("max = %s", v)
	}
	if v, _ := row.Field("min(tag)"); v.S != "b" {
		t.Errorf("min tag = %s", v)
	}
}

// TestConcurrentQueries runs many queries in parallel against one engine
// with caching enabled — compilation, cache population/lookup, join-side
// reuse, and statistics profiling all race here if anything is unsafe (run
// under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Config{CacheEnabled: true})
	queries := []string{
		"SELECT COUNT(*) FROM nums WHERE val < 35",
		"SELECT SUM(val) FROM nums WHERE id < 4",
		"SELECT COUNT(*) FROM docs WHERE grp = 1",
		"SELECT COUNT(*) FROM nums n JOIN docs d ON n.id = d.id",
		"for { d <- docs, tg <- d.tags, tg.n > 5 } yield count",
	}
	want := make([]int64, len(queries))
	for i, q := range queries {
		var res *resultT
		var err error
		res, err = runAny(e, q)
		if err != nil {
			t.Fatalf("warmup %q: %v", q, err)
		}
		want[i] = res.Scalar().AsInt()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (seed + i) % len(queries)
				res, err := runAny(e, queries[qi])
				if err != nil {
					errs <- fmt.Errorf("%q: %w", queries[qi], err)
					return
				}
				if got := res.Scalar().AsInt(); got != want[qi] {
					errs <- fmt.Errorf("%q = %d, want %d", queries[qi], got, want[qi])
					return
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type resultT = exec.Result

func runAny(e *Engine, q string) (*exec.Result, error) {
	if len(q) > 3 && q[:3] == "for" {
		return e.QueryComp(q)
	}
	return e.QuerySQL(q)
}
