package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"proteus/internal/types"
)

// StartStatsDaemon launches the paper's third statistics-gathering
// mechanism (§5.2): "a daemon process periodically triggers
// statistics-gathering queries when the system is idle". Every interval,
// the daemon finds numeric attributes that still lack range statistics and
// runs a MIN/MAX aggregation query for them through the normal query path
// (so the observation lands in the metadata store via the same formulas the
// optimizer reads). The returned stop function terminates the daemon.
func (e *Engine) StartStatsDaemon(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var stopped atomic.Bool
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				e.gatherMissingStats()
			}
		}
	}()
	return func() {
		if stopped.CompareAndSwap(false, true) {
			close(done)
		}
	}
}

// GatherStatsOnce runs one daemon sweep synchronously (exported for tests
// and for callers that prefer explicit scheduling).
func (e *Engine) GatherStatsOnce() { e.gatherMissingStats() }

func (e *Engine) gatherMissingStats() {
	e.mu.Lock()
	names := make([]string, 0, len(e.datasets))
	for name := range e.datasets {
		names = append(names, name)
	}
	e.mu.Unlock()

	for _, name := range names {
		ds, in, err := e.Dataset(name)
		if err != nil {
			continue
		}
		schema := in.Schema(ds)
		if schema == nil {
			continue
		}
		tbl := e.stats.Table(name)
		if tbl.Rows == 0 {
			tbl.Rows = in.Cardinality(ds)
		}
		for _, f := range schema.Fields {
			if !types.Numeric(f.Type) {
				continue
			}
			if _, _, ok := tbl.Range(f.Name); ok {
				continue
			}
			// A statistics-gathering query, through the regular path.
			res, err := e.QuerySQL(fmt.Sprintf("SELECT MIN(%s), MAX(%s) FROM %s", f.Name, f.Name, name))
			if err != nil || len(res.Rows) != 1 {
				continue
			}
			mn := res.Rows[0].Rec.Values[0]
			mx := res.Rows[0].Rec.Values[1]
			if mn.IsNull() || mx.IsNull() {
				continue
			}
			tbl.Observe(f.Name, mn.AsFloat())
			tbl.Observe(f.Name, mx.AsFloat())
		}
	}
}
