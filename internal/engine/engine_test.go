package engine

import (
	"testing"

	"proteus/internal/plugin"
	"proteus/internal/types"
)

// newTestEngine registers small in-memory CSV, JSON, and binary datasets.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	csvData := "" +
		"1,10,1.5,alpha\n" +
		"2,20,2.5,beta\n" +
		"3,30,3.5,gamma\n" +
		"4,40,4.5,delta\n" +
		"5,50,5.5,epsilon\n"
	e.Mem().PutFile("mem://nums.csv", []byte(csvData))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "name", Type: types.String},
	)
	if err := e.Register("nums", "mem://nums.csv", "csv", schema, plugin.Options{}); err != nil {
		t.Fatalf("register csv: %v", err)
	}

	jsonData := `{"id": 1, "grp": 1, "tags": [{"k": "a", "n": 5}, {"k": "b", "n": 6}]}
{"id": 2, "grp": 1, "tags": [{"k": "c", "n": 7}]}
{"id": 3, "grp": 2, "tags": []}
`
	e.Mem().PutFile("mem://docs.json", []byte(jsonData))
	if err := e.Register("docs", "mem://docs.json", "json", nil, plugin.Options{}); err != nil {
		t.Fatalf("register json: %v", err)
	}
	return e
}

func TestSQLCountWithPredicate(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT COUNT(*) FROM nums WHERE val < 35")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestSQLAggregates(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT COUNT(*), MAX(score), SUM(val), MIN(id), AVG(val) FROM nums")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	row := res.Rows[0]
	if v, _ := row.Field("count(*)"); v.AsInt() != 5 {
		t.Errorf("count = %s, want 5", v)
	}
	if v, _ := row.Field("max(score)"); v.AsFloat() != 5.5 {
		t.Errorf("max = %s, want 5.5", v)
	}
	if v, _ := row.Field("sum(val)"); v.AsInt() != 150 {
		t.Errorf("sum = %s, want 150", v)
	}
	if v, _ := row.Field("min(id)"); v.AsInt() != 1 {
		t.Errorf("min = %s, want 1", v)
	}
	if v, _ := row.Field("avg(val)"); v.AsFloat() != 30 {
		t.Errorf("avg = %s, want 30", v)
	}
}

func TestSQLProjection(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT id, name FROM nums WHERE score > 3.0")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	first := res.Rows[0]
	if v, _ := first.Field("id"); v.AsInt() != 3 {
		t.Errorf("first id = %s, want 3", v)
	}
	if v, _ := first.Field("name"); v.S != "gamma" {
		t.Errorf("first name = %s, want gamma", v)
	}
}

func TestJSONScanAndUnnest(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT COUNT(*) FROM docs WHERE grp = 1")
	if err != nil {
		t.Fatalf("scan query: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}

	res, err = e.QueryComp("for { d <- docs, tg <- d.tags, tg.n > 5 } yield count")
	if err != nil {
		t.Fatalf("unnest query: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 2 {
		t.Fatalf("unnest count = %d, want 2 (tags with n>5)", got)
	}
}

func TestComprehensionYieldBag(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QueryComp("for { n <- nums, n.val >= 40 } yield bag (n.id, n.name)")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestSQLJoin(t *testing.T) {
	e := newTestEngine(t, Config{})
	// Self-join on id: every row matches exactly once.
	res, err := e.QuerySQL("SELECT COUNT(*) FROM nums a JOIN nums b ON a.id = b.id WHERE a.val < 45")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 4 {
		t.Fatalf("join count = %d, want 4", got)
	}
}

func TestSQLGroupBy(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT grp, COUNT(*) AS n FROM docs GROUP BY grp")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	if v, _ := res.Rows[0].Field("n"); v.AsInt() != 2 {
		t.Errorf("group 1 count = %s, want 2", v)
	}
}

func TestCrossFormatJoin(t *testing.T) {
	e := newTestEngine(t, Config{})
	res, err := e.QuerySQL("SELECT COUNT(*) FROM nums n JOIN docs d ON n.id = d.id")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("cross-format join count = %d, want 3", got)
	}
}

func TestCachingSpeedsUpAndStaysCorrect(t *testing.T) {
	e := newTestEngine(t, Config{CacheEnabled: true})
	for i := 0; i < 3; i++ {
		res, err := e.QuerySQL("SELECT SUM(val) FROM nums WHERE id < 4")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := res.Scalar().AsInt(); got != 60 {
			t.Fatalf("query %d: sum = %d, want 60", i, got)
		}
	}
	snap := e.Caches().Snapshot()
	if snap.Blocks == 0 {
		t.Fatalf("expected cache blocks after repeated queries, got %+v", snap)
	}
	if snap.Hits == 0 {
		t.Fatalf("expected cache hits on re-run, got %+v", snap)
	}
}
