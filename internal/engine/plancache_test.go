package engine

import (
	"fmt"
	"sync"
	"testing"

	"proteus/internal/plugin"
	"proteus/internal/types"
)

func TestPlanCacheHitServesRepeatedQuery(t *testing.T) {
	e := newTestEngine(t, Config{})
	const q = "SELECT SUM(val) FROM nums WHERE id < 4"
	for i := 0; i < 3; i++ {
		res, err := e.QuerySQL(q)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := res.Scalar().AsInt(); got != 60 {
			t.Fatalf("run %d: sum = %d, want 60", i, got)
		}
	}
	m := e.Metrics()
	if m.PlanCacheMisses != 1 {
		t.Errorf("PlanCacheMisses = %d, want 1", m.PlanCacheMisses)
	}
	if m.PlanCacheHits != 2 {
		t.Errorf("PlanCacheHits = %d, want 2", m.PlanCacheHits)
	}
}

func TestPlanCacheNormalizesWhitespace(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QuerySQL("  SELECT   COUNT(*)\n FROM\tnums "); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlanCacheHits != 1 || m.PlanCacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

func TestPlanCacheKeySeparatesLanguages(t *testing.T) {
	e := newTestEngine(t, Config{})
	// Same byte string is a valid query in neither/other language — use two
	// distinct texts but assert SQL and comp never share entries by running
	// each once: two misses, zero hits.
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryComp("for { n <- nums } yield count"); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlanCacheHits != 0 || m.PlanCacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

func TestPlanCacheInvalidatedByCacheBlocks(t *testing.T) {
	// With adaptive caching on, the first run registers cache blocks (after
	// the entry was stored with the pre-run cache epoch), so the second run
	// must miss and recompile into a cache-aware plan; the third run hits.
	e := newTestEngine(t, Config{CacheEnabled: true})
	const q = "SELECT SUM(val) FROM nums WHERE id < 4"
	for i := 0; i < 3; i++ {
		res, err := e.QuerySQL(q)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := res.Scalar().AsInt(); got != 60 {
			t.Fatalf("run %d: sum = %d, want 60", i, got)
		}
	}
	if s := e.Caches().Snapshot(); s.Blocks == 0 {
		t.Fatal("caching engine registered no blocks; invalidation untested")
	}
	m := e.Metrics()
	if m.PlanCacheMisses != 2 {
		t.Errorf("PlanCacheMisses = %d, want 2 (cold + post-cache-registration)", m.PlanCacheMisses)
	}
	if m.PlanCacheHits != 1 {
		t.Errorf("PlanCacheHits = %d, want 1", m.PlanCacheHits)
	}
}

func TestPlanCacheInvalidatedByRegister(t *testing.T) {
	e := newTestEngine(t, Config{})
	const q = "SELECT COUNT(*) FROM nums"
	if _, err := e.QuerySQL(q); err != nil {
		t.Fatal(err)
	}
	// Any catalog mutation invalidates: the cached program may bake in
	// layouts resolved against the old catalog.
	e.Mem().PutFile("mem://other.csv", []byte("1\n"))
	sch := types.NewRecordType(types.Field{Name: "x", Type: types.Int})
	if err := e.Register("other", "mem://other.csv", "csv", sch, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QuerySQL(q); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlanCacheHits != 0 || m.PlanCacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2 after Register", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

func TestPlanCacheInvalidatedByDrop(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
		t.Fatal(err)
	}
	e.Drop("docs")
	if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlanCacheHits != 0 || m.PlanCacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2 after Drop", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := newTestEngine(t, Config{PlanCacheSize: -1})
	for i := 0; i < 2; i++ {
		if _, err := e.QuerySQL("SELECT COUNT(*) FROM nums"); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.PlanCacheHits != 0 || m.PlanCacheMisses != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	e := newTestEngine(t, Config{PlanCacheSize: 2})
	queries := []string{
		"SELECT COUNT(*) FROM nums",
		"SELECT SUM(val) FROM nums",
		"SELECT MIN(id) FROM nums",
	}
	for _, q := range queries {
		if _, err := e.QuerySQL(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.plans.size(); got != 2 {
		t.Errorf("plan cache holds %d entries, want 2", got)
	}
	// The first (least recently used) query was evicted: re-running it
	// misses; the most recent still hits.
	if _, err := e.QuerySQL(queries[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QuerySQL(queries[0]); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlanCacheHits != 1 {
		t.Errorf("PlanCacheHits = %d, want 1 (only the resident entry)", m.PlanCacheHits)
	}
	if m.PlanCacheMisses != 4 {
		t.Errorf("PlanCacheMisses = %d, want 4 (3 cold + 1 evicted)", m.PlanCacheMisses)
	}
}

// TestPlanCacheConcurrentSameQuery: a cached Program is not concurrently
// runnable, so simultaneous identical queries must either hit (entry free)
// or compile fresh (entry busy) — never block or corrupt results. Run under
// -race this guards the entry-lock protocol.
func TestPlanCacheConcurrentSameQuery(t *testing.T) {
	e := newTestEngine(t, Config{})
	const q = "SELECT SUM(val) FROM nums WHERE id < 4"
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := e.QuerySQL(q)
				if err != nil {
					errs <- err
					return
				}
				if got := res.Scalar().AsInt(); got != 60 {
					errs <- fmt.Errorf("sum = %d, want 60", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := e.Metrics()
	if got := m.PlanCacheHits + m.PlanCacheMisses; got != 64 {
		t.Errorf("hits+misses = %d, want 64", got)
	}
	if m.PlanCacheHits == 0 {
		t.Error("no plan-cache hits across 64 identical queries")
	}
}

// planCache unit tests -------------------------------------------------------

func TestPlanCacheStoreDetachedOnCollision(t *testing.T) {
	pc := newPlanCache(4)
	a := pc.store("k", &Prepared{}, 1, 1)
	b := pc.store("k", &Prepared{}, 1, 1)
	a.release()
	b.release()
	if pc.size() != 1 {
		t.Errorf("size = %d, want 1", pc.size())
	}
	// The resident entry is still usable.
	if en := pc.lookup("k", 1, 1); en == nil {
		t.Error("resident entry lost after collision")
	} else {
		en.release()
	}
}

func TestPlanCacheBusyEntryIsMiss(t *testing.T) {
	pc := newPlanCache(4)
	en := pc.store("k", &Prepared{}, 1, 1)
	if got := pc.lookup("k", 1, 1); got != nil {
		t.Fatal("lookup returned an entry whose program is mid-run")
	}
	en.release()
	if got := pc.lookup("k", 1, 1); got == nil {
		t.Fatal("released entry should hit")
	} else {
		got.release()
	}
}

func TestPlanCacheEpochMismatchDrops(t *testing.T) {
	pc := newPlanCache(4)
	pc.store("k", &Prepared{}, 1, 1).release()
	if en := pc.lookup("k", 2, 1); en != nil {
		t.Fatal("catalog-epoch mismatch should miss")
	}
	if pc.size() != 0 {
		t.Errorf("stale entry not dropped, size = %d", pc.size())
	}
	pc.store("k", &Prepared{}, 2, 1).release()
	if en := pc.lookup("k", 2, 2); en != nil {
		t.Fatal("cache-epoch mismatch should miss")
	}
	if pc.size() != 0 {
		t.Errorf("stale entry not dropped, size = %d", pc.size())
	}
}

func TestPlanCacheEvictionSkipsBusyEntries(t *testing.T) {
	pc := newPlanCache(1)
	busy := pc.store("a", &Prepared{}, 1, 1) // still running
	pc.store("b", &Prepared{}, 1, 1).release()
	// "a" is busy and cannot be evicted; the cache tolerates transient
	// overflow rather than blocking.
	if pc.size() != 2 {
		t.Errorf("size = %d, want 2 (busy entry unevictable)", pc.size())
	}
	busy.release()
	pc.store("c", &Prepared{}, 1, 1).release()
	if pc.size() != 1 {
		t.Errorf("size = %d, want 1 after releases", pc.size())
	}
}
