// Engine-side cluster wiring: routing eligible queries through the
// scatter/gather coordinator (with transparent local fallback) and serving
// fragment requests when this engine is a worker. The coordinator itself —
// topology, partitioning, the scatter client — lives in internal/cluster;
// the wire codec and merge contract in internal/exec (fragment.go).
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/calculus"
	"proteus/internal/cluster"
	"proteus/internal/comp"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/optimizer"
	"proteus/internal/sql"
)

// ErrFragmentMismatch reports that this worker's locally optimized plan has
// a different fingerprint than the coordinator's — the catalogs or
// statistics of the two nodes have drifted. The query service maps it to
// 409 Conflict, which the coordinator treats as "fall back to local".
var ErrFragmentMismatch = errors.New("engine: fragment plan fingerprint mismatch")

// Cluster returns the engine's scatter/gather coordinator (nil when this
// engine is not a coordinator). The query service uses it to wire the
// topology endpoints.
func (e *Engine) Cluster() *cluster.Coordinator { return e.cluster }

// clusterExec tries to run a prepared query distributed. handled=false
// means the plan is not cluster-eligible (or a worker's plan diverged) and
// the caller must run the local program. On success the coordinator-merged
// result gets the statement's ORDER BY / LIMIT applied here — the same
// post-processing a local unsorted program receives — so distributed and
// local results are interchangeable.
func (e *Engine) clusterExec(ctx context.Context, lang, query string, p *Prepared) (*exec.Result, []obs.Span, bool, error) {
	if e.cluster == nil {
		return nil, nil, false, nil
	}
	env := &exec.Env{Catalog: e, Caches: e.caches, Stats: e.stats, Metrics: e.metrics, MemBudget: e.memBudget}
	res, spans, handled, err := e.cluster.Execute(ctx, env, lang, query, p.Plan, QueryTag(ctx))
	if !handled || err != nil {
		return res, spans, handled, err
	}
	if p.Sort != nil {
		fragments := res.Fragments
		res, err = orderAndLimit(res, p.Sort.By, p.Sort.Desc, p.Sort.Limit)
		if err != nil {
			return nil, spans, true, err
		}
		res.Fragments = fragments
	}
	return res, spans, true, nil
}

// runPrepared executes a prepared query on the untraced path: distributed
// when the coordinator takes it, the local program otherwise. The per-plan
// feedback store only observes local runs — distributed timings would
// poison the local mode decision.
func (e *Engine) runPrepared(ctx context.Context, lang, query string, p *Prepared) (*exec.Result, error) {
	if e.cluster != nil {
		res, _, handled, err := e.clusterExec(ctx, lang, query, p)
		if handled {
			return res, err
		}
	}
	return e.runPlain(ctx, query, p.Program)
}

// planFor runs the front half of the life-cycle — calculus → optimize —
// without compiling, for callers that need only the optimized plan.
func (e *Engine) planFor(ctx context.Context, c *calculus.Comprehension) (algebra.Node, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := calculus.ResolveColumns(c, e); err != nil {
		return nil, err
	}
	plan, err := calculus.Translate(calculus.Normalize(c), e)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return optimizer.Optimize(plan, &optimizer.Env{Stats: e.stats, Costs: e}), nil
}

// ExecuteFragment serves one scatter request as a cluster worker: re-plan
// the query text locally, verify the plan fingerprint against the
// coordinator's (wantFP, when non-empty), execute only [start, end) of the
// driving scan, and return the serialized partial state. Fragments run
// under the full query life-cycle discipline — drain rejection, admission
// gating, the configured timeout, memory budget, panic isolation, and
// outcome classification — exactly like whole queries.
func (e *Engine) ExecuteFragment(ctx context.Context, lang, query string, start, end int64, wantFP string) (*exec.Partial, error) {
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	defer e.endQuery()
	if e.admit != nil {
		e.metrics.AdmissionQueued.Add(1)
		t0 := time.Now()
		err := e.acquire(ctx)
		e.metrics.AdmissionQueued.Add(-1)
		e.metrics.AdmissionWait.Observe(time.Since(t0))
		if err != nil {
			return nil, e.finishQuery(query, err)
		}
		defer e.release()
	}
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	p, err := func() (*exec.Partial, error) {
		var (
			c   *calculus.Comprehension
			err error
		)
		if lang == LangSQL {
			c, err = sql.Parse(query)
		} else {
			c, err = comp.Parse(query)
		}
		if err != nil {
			return nil, err
		}
		plan, err := e.planFor(ctx, c)
		if err != nil {
			return nil, err
		}
		if wantFP != "" && plan.Fingerprint() != wantFP {
			return nil, fmt.Errorf("%w: coordinator has %s, this worker planned %s",
				ErrFragmentMismatch, wantFP, plan.Fingerprint())
		}
		env := &exec.Env{Catalog: e, Caches: e.caches, Stats: e.stats, MemBudget: e.memBudget}
		fprog, err := exec.CompileFragment(plan, env, start, end)
		if err != nil {
			return nil, err
		}
		return fprog.RunContext(ctx)
	}()
	if err != nil {
		return nil, e.finishQuery(query, err)
	}
	e.metrics.ClusterFragmentsServed.Add(1)
	return p, nil
}
