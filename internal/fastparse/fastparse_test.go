package fastparse

import (
	"errors"
	"math/big"
	"strconv"
	"testing"
	"testing/quick"
)

func TestIntBasic(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "7": 7, "-7": -7, "+42": 42, "1234567890123": 1234567890123,
		"": 0, "-": 0,
	}
	for in, want := range cases {
		if got := Int([]byte(in)); got != want {
			t.Errorf("Int(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestIntMatchesStrconvProperty(t *testing.T) {
	f := func(v int64) bool {
		s := strconv.FormatInt(v, 10)
		return Int([]byte(s)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntBoundaries(t *testing.T) {
	// ±2^63±1 and other values straddling the int64 range: IntErr must
	// agree with strconv.ParseInt on both the value and the error class.
	cases := []string{
		"9223372036854775807",  // MaxInt64
		"9223372036854775808",  // MaxInt64+1 (overflow)
		"9223372036854775806",  // MaxInt64-1
		"-9223372036854775808", // MinInt64
		"-9223372036854775809", // MinInt64-1 (overflow)
		"-9223372036854775807", // MinInt64+1
		"+9223372036854775807",
		"18446744073709551615", // MaxUint64
		"18446744073709551616", // MaxUint64+1 (past the pre-multiply guard)
		"99999999999999999999999999999999999999",
		"-99999999999999999999999999999999999999",
		"000000000000000000000000000000000000001", // long but tiny
	}
	for _, s := range cases {
		want, wantErr := strconv.ParseInt(s, 10, 64)
		got, gotErr := IntErr([]byte(s))
		if got != want {
			t.Errorf("IntErr(%q) = %d, want %d", s, got, want)
		}
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("IntErr(%q) err = %v, strconv err = %v", s, gotErr, wantErr)
		}
		if wantErr != nil {
			var ne *strconv.NumError
			if !errors.As(gotErr, &ne) || ne.Err != strconv.ErrRange {
				t.Errorf("IntErr(%q) err = %v, want ErrRange", s, gotErr)
			}
		}
		// Int saturates like strconv on overflow.
		if v := Int([]byte(s)); v != want {
			t.Errorf("Int(%q) = %d, want %d", s, v, want)
		}
	}
}

func TestIntErrStopsAtNonDigit(t *testing.T) {
	// The stop-at-first-non-digit contract holds even when the digit run
	// before the stop overflows.
	v, err := IntErr([]byte("12x34"))
	if v != 12 || err != nil {
		t.Errorf("IntErr(12x34) = %d, %v", v, err)
	}
	v, err = IntErr([]byte("99999999999999999999.5"))
	if err == nil {
		t.Error("overflowing prefix should report ErrRange")
	}
	if v != 9223372036854775807 {
		t.Errorf("saturated value = %d", v)
	}
}

func TestIntBoundaryProperty(t *testing.T) {
	// Perturb values near the int64 boundaries through big-integer string
	// arithmetic and compare against strconv.
	f := func(delta uint8) bool {
		for _, base := range []*big.Int{
			big.NewInt(0).SetUint64(1 << 63),                    // 2^63
			big.NewInt(0).Neg(big.NewInt(0).SetUint64(1 << 63)), // -2^63
		} {
			d := big.NewInt(int64(delta%16) - 8)
			s := big.NewInt(0).Add(base, d).String()
			want, wantErr := strconv.ParseInt(s, 10, 64)
			got, gotErr := IntErr([]byte(s))
			if got != want || (gotErr == nil) != (wantErr == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatBasic(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"1.5":    1.5,
		"-2.25":  -2.25,
		"+0.125": 0.125,
		"10":     10,
		"3.14":   3.14,
	}
	for in, want := range cases {
		if got := Float([]byte(in)); got != want {
			t.Errorf("Float(%q) = %g, want %g", in, got, want)
		}
	}
}

func TestFloatExponentFallback(t *testing.T) {
	for _, s := range []string{"1e3", "2.5e-2", "-1.25E+4"} {
		want, _ := strconv.ParseFloat(s, 64)
		if got := Float([]byte(s)); got != want {
			t.Errorf("Float(%q) = %g, want %g", s, got, want)
		}
	}
}

func TestFloatFixedPointProperty(t *testing.T) {
	// Property: for the fixed-point shapes our generators emit (two decimal
	// digits), Float matches strconv to within one ulp-scale epsilon.
	f := func(units int32, cents uint8) bool {
		c := int64(cents % 100)
		s := strconv.FormatInt(int64(units), 10) + "." + pad2(c)
		if units < 0 {
			s = strconv.FormatInt(int64(units), 10) + "." + pad2(c)
		}
		want, _ := strconv.ParseFloat(s, 64)
		got := Float([]byte(s))
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		scale := want
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-12*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func pad2(v int64) string {
	s := strconv.FormatInt(v, 10)
	if len(s) == 1 {
		return "0" + s
	}
	return s
}

// Digit runs past 18 digits overflow the fast path's int64 accumulators;
// they must take the strconv fallback (found by FuzzFloat).
func TestFloatLongDigitRuns(t *testing.T) {
	cases := []string{
		"0.99999999999999999999",
		"12345678901234567890.5",
		"-0.000000000000000000001",
		"99999999999999999999999999999999999999",
	}
	for _, s := range cases {
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("strconv rejects %q: %v", s, err)
		}
		if got := Float([]byte(s)); got != want {
			t.Errorf("Float(%q) = %g, want %g", s, got, want)
		}
	}
}
