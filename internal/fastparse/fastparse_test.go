package fastparse

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestIntBasic(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "7": 7, "-7": -7, "+42": 42, "1234567890123": 1234567890123,
		"": 0, "-": 0,
	}
	for in, want := range cases {
		if got := Int([]byte(in)); got != want {
			t.Errorf("Int(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestIntMatchesStrconvProperty(t *testing.T) {
	f := func(v int64) bool {
		s := strconv.FormatInt(v, 10)
		return Int([]byte(s)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatBasic(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"1.5":    1.5,
		"-2.25":  -2.25,
		"+0.125": 0.125,
		"10":     10,
		"3.14":   3.14,
	}
	for in, want := range cases {
		if got := Float([]byte(in)); got != want {
			t.Errorf("Float(%q) = %g, want %g", in, got, want)
		}
	}
}

func TestFloatExponentFallback(t *testing.T) {
	for _, s := range []string{"1e3", "2.5e-2", "-1.25E+4"} {
		want, _ := strconv.ParseFloat(s, 64)
		if got := Float([]byte(s)); got != want {
			t.Errorf("Float(%q) = %g, want %g", s, got, want)
		}
	}
}

func TestFloatFixedPointProperty(t *testing.T) {
	// Property: for the fixed-point shapes our generators emit (two decimal
	// digits), Float matches strconv to within one ulp-scale epsilon.
	f := func(units int32, cents uint8) bool {
		c := int64(cents % 100)
		s := strconv.FormatInt(int64(units), 10) + "." + pad2(c)
		if units < 0 {
			s = strconv.FormatInt(int64(units), 10) + "." + pad2(c)
		}
		want, _ := strconv.ParseFloat(s, 64)
		got := Float([]byte(s))
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		scale := want
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-12*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func pad2(v int64) string {
	s := strconv.FormatInt(v, 10)
	if len(s) == 1 {
		return "0" + s
	}
	return s
}
