package fastparse

import (
	"math"
	"strconv"
	"testing"
)

// numPrefix returns the sign+digit-run prefix Int/IntErr consume.
func numPrefix(b []byte) (prefix string, hasDigits bool) {
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		i++
	}
	j := i
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		j++
	}
	return string(b[:j]), j > i
}

// FuzzInt checks Int and IntErr against strconv.ParseInt on the consumed
// prefix, including saturation at the int64 boundaries.
func FuzzInt(f *testing.F) {
	for _, s := range []string{
		"", "0", "-0", "+7", "42", "-9223372036854775808", "9223372036854775807",
		"-9223372036854775809", "9223372036854775808", "18446744073709551616",
		"99999999999999999999999999999999999999", "12x34", "-", "+", "007",
		"1e5", " 1", "\x0012",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := IntErr(b)
		fast := Int(b)
		prefix, hasDigits := numPrefix(b)
		if !hasDigits {
			if v != 0 || err != nil || fast != 0 {
				t.Fatalf("Int(%q): digit-free input gave v=%d err=%v fast=%d", b, v, err, fast)
			}
			return
		}
		want, werr := strconv.ParseInt(prefix, 10, 64)
		if v != want {
			t.Errorf("IntErr(%q) = %d, strconv(%q) = %d", b, v, prefix, want)
		}
		if (err != nil) != (werr != nil) {
			t.Errorf("IntErr(%q) err = %v, strconv err = %v", b, err, werr)
		}
		if fast != want {
			t.Errorf("Int(%q) = %d, strconv(%q) = %d", b, fast, prefix, want)
		}
	})
}

// floatShape reports whether the whole input is a plain decimal float
// (sign, digits, optional fraction, optional exponent) — the shapes where
// Float promises agreement with strconv. Hex floats, NaN/Inf spellings,
// and trailing garbage are excluded: Float's contract there is only
// "consume the numeric prefix, never panic".
func floatShape(b []byte) bool {
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		i++
	}
	digits := func() bool {
		start := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		return i > start
	}
	if !digits() {
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		digits()
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '-' || b[i] == '+') {
			i++
		}
		if !digits() {
			return false
		}
	}
	return i == len(b)
}

// FuzzFloat checks Float against strconv.ParseFloat on plain decimal
// inputs. The fast fixed-point path accumulates with at most a few ulps of
// error, so the comparison uses a relative tolerance; exponent forms
// delegate to strconv and must match exactly.
func FuzzFloat(f *testing.F) {
	for _, s := range []string{
		"", "0", "-0", "3.25", "-511.75", "1e10", "-2.5E-3", "0.1",
		"0.99999999999999999999", "12345678901234567890.5", "1.", ".5",
		"1e400", "1e-400", "nan", "0x1p4", "9007199254740993",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		got := Float(b) // must not panic on anything
		if !floatShape(b) {
			return
		}
		want, err := strconv.ParseFloat(string(b), 64)
		if err != nil { // range overflow/underflow: saturation is fine
			return
		}
		hasExp := false
		for _, c := range b {
			if c == 'e' || c == 'E' {
				hasExp = true
			}
		}
		if hasExp {
			if got != want {
				t.Errorf("Float(%q) = %g, strconv = %g", b, got, want)
			}
			return
		}
		if diff := math.Abs(got - want); diff > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("Float(%q) = %g, strconv = %g (diff %g)", b, got, want, diff)
		}
	})
}
