// Package fastparse provides allocation-free numeric parsing shared by the
// raw-data input plug-ins (CSV and JSON). The hot scan loops call these on
// byte sub-slices of the file image, so avoiding the string conversion that
// strconv would require matters.
package fastparse

import (
	"math"
	"strconv"
)

// Int parses a decimal integer. Parsing stops at the first non-digit, so
// the caller controls the slice bounds; machine-generated data never hits
// the early stop. Slices long enough to overflow int64 take the checked
// IntErr path and saturate like strconv; short slices — the overwhelmingly
// common shape in scan loops — keep the guard-free tight loop.
func Int(b []byte) int64 {
	if len(b) > 18 { // 19+ digits can exceed int64; IntErr re-checks exactly
		v, _ := IntErr(b)
		return v
	}
	var v int64
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		return -v
	}
	return v
}

// IntErr parses a decimal integer and reports overflow. Values that exceed
// int64 are re-parsed through strconv.ParseInt so the saturated value and
// error shape match the standard library exactly.
func IntErr(b []byte) (int64, error) {
	var un uint64
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	limit := uint64(math.MaxInt64)
	if neg {
		limit++ // -2^63 is representable
	}
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		if un > (math.MaxUint64-9)/10 {
			return intFallback(b, i)
		}
		un = un*10 + uint64(c-'0')
		if un > limit {
			return intFallback(b, i)
		}
	}
	if neg {
		return -int64(un), nil // two's complement handles MinInt64
	}
	return int64(un), nil
}

// intFallback finishes an overflowing parse: it consumes the remaining
// digit run starting at i and delegates to strconv.ParseInt, which returns
// the saturated boundary value together with ErrRange.
func intFallback(b []byte, i int) (int64, error) {
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		i++
	}
	v, err := strconv.ParseInt(string(b[:i]), 10, 64)
	return v, err
}

// Float parses a float without allocating for the common fixed-point shape
// (sign, digits, optional fraction). Exponent forms fall back to strconv.
func Float(b []byte) float64 {
	var intPart int64
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	start := i
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		intPart = intPart*10 + int64(c-'0')
	}
	if i-start > 18 { // 19+ digits overflow the int64 accumulator
		return floatSlow(b)
	}
	f := float64(intPart)
	if i < len(b) && b[i] == '.' {
		i++
		fracStart := i
		var frac int64
		scale := 1.0
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			frac = frac*10 + int64(c-'0')
			scale *= 10
		}
		if i-fracStart > 18 {
			return floatSlow(b)
		}
		f += float64(frac) / scale
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		if v, err := strconv.ParseFloat(string(b), 64); err == nil {
			return v
		}
	}
	if i == start {
		return 0
	}
	if neg {
		return -f
	}
	return f
}

// floatSlow handles digit runs long enough to overflow the fast path's
// int64 accumulators: it strconv-parses the consumed prefix (or the whole
// slice when an exponent follows, mirroring the fast path), keeping the
// saturated value on range errors.
func floatSlow(b []byte) float64 {
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		i++
	}
	digits := func() {
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	digits()
	if i < len(b) && b[i] == '.' {
		i++
		digits()
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		if v, err := strconv.ParseFloat(string(b), 64); err == nil {
			return v
		}
	}
	v, _ := strconv.ParseFloat(string(b[:i]), 64)
	return v
}
