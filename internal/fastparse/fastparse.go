// Package fastparse provides allocation-free numeric parsing shared by the
// raw-data input plug-ins (CSV and JSON). The hot scan loops call these on
// byte sub-slices of the file image, so avoiding the string conversion that
// strconv would require matters.
package fastparse

import "strconv"

// Int parses a decimal integer. Parsing stops at the first non-digit, so
// the caller controls the slice bounds; machine-generated data never hits
// the early stop.
func Int(b []byte) int64 {
	var n int64
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// Float parses a float without allocating for the common fixed-point shape
// (sign, digits, optional fraction). Exponent forms fall back to strconv.
func Float(b []byte) float64 {
	var intPart int64
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	start := i
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		intPart = intPart*10 + int64(c-'0')
	}
	f := float64(intPart)
	if i < len(b) && b[i] == '.' {
		i++
		var frac int64
		scale := 1.0
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			frac = frac*10 + int64(c-'0')
			scale *= 10
		}
		f += float64(frac) / scale
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		if v, err := strconv.ParseFloat(string(b), 64); err == nil {
			return v
		}
	}
	if i == start {
		return 0
	}
	if neg {
		return -f
	}
	return f
}
