package cachepg

import (
	"testing"

	"proteus/internal/cache"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

func TestBuilderAppendFinish(t *testing.T) {
	var a vbuf.Alloc
	slot := a.Int()
	b := NewBuilder("ds", "col", types.KindInt, 14, slot, 0)
	regs := vbuf.NewRegs(&a)
	for i := int64(0); i < 5; i++ {
		regs.I[slot.Idx] = i * 10
		regs.Null[slot.Null] = i == 3 // one null
		b.Append(regs)
	}
	blk := b.Finish()
	if !blk.Complete || blk.Rows != 5 {
		t.Fatalf("block = %+v", blk)
	}
	if blk.Ints[2] != 20 {
		t.Errorf("ints = %v", blk.Ints)
	}
	if blk.Nulls == nil || !blk.Nulls[3] || blk.Nulls[2] {
		t.Errorf("nulls = %v", blk.Nulls)
	}
}

func TestBuilderNoNullsStaysDense(t *testing.T) {
	var a vbuf.Alloc
	slot := a.Float()
	b := NewBuilder("ds", "col", types.KindFloat, 6, slot, 0)
	regs := vbuf.NewRegs(&a)
	for i := 0; i < 3; i++ {
		regs.F[slot.Idx] = float64(i) + 0.5
		b.Append(regs)
	}
	blk := b.Finish()
	if blk.Nulls != nil {
		t.Error("null-free column should not allocate a null vector")
	}
}

func TestLoaderRoundtripAllKinds(t *testing.T) {
	var a vbuf.Alloc
	cases := []struct {
		kind types.Kind
		slot vbuf.Slot
		blk  *cache.Block
		chk  func(r *vbuf.Regs, s vbuf.Slot, row int64) bool
	}{
		{types.KindInt, a.Int(),
			&cache.Block{Kind: types.KindInt, Ints: []int64{5, 6, 7}, Rows: 3, Complete: true},
			func(r *vbuf.Regs, s vbuf.Slot, row int64) bool { return r.I[s.Idx] == row+5 }},
		{types.KindFloat, a.Float(),
			&cache.Block{Kind: types.KindFloat, Floats: []float64{0.5, 1.5, 2.5}, Rows: 3, Complete: true},
			func(r *vbuf.Regs, s vbuf.Slot, row int64) bool { return r.F[s.Idx] == float64(row)+0.5 }},
		{types.KindBool, a.Bool(),
			&cache.Block{Kind: types.KindBool, Bools: []bool{true, false, true}, Rows: 3, Complete: true},
			func(r *vbuf.Regs, s vbuf.Slot, row int64) bool { return r.B[s.Idx] == (row%2 == 0) }},
		{types.KindString, a.String(),
			&cache.Block{Kind: types.KindString, Strs: []string{"a", "b", "c"}, Rows: 3, Complete: true},
			func(r *vbuf.Regs, s vbuf.Slot, row int64) bool { return r.S[s.Idx] == string(rune('a'+row)) }},
	}
	regs := vbuf.NewRegs(&a)
	for _, c := range cases {
		ld, err := CompileLoader(c.blk, c.slot)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		for row := int64(0); row < 3; row++ {
			ld(regs, row)
			if !c.chk(regs, c.slot, row) {
				t.Errorf("%s row %d mismatch", c.kind, row)
			}
			if regs.Null[c.slot.Null] {
				t.Errorf("%s row %d unexpectedly null", c.kind, row)
			}
		}
	}
}

func TestLoaderNulls(t *testing.T) {
	var a vbuf.Alloc
	slot := a.Int()
	blk := &cache.Block{
		Kind: types.KindInt, Ints: []int64{1, 2},
		Nulls: []bool{false, true}, Rows: 2, Complete: true,
	}
	ld, err := CompileLoader(blk, slot)
	if err != nil {
		t.Fatal(err)
	}
	regs := vbuf.NewRegs(&a)
	ld(regs, 1)
	if !regs.Null[slot.Null] {
		t.Error("row 1 should load as null")
	}
	ld(regs, 0)
	if regs.Null[slot.Null] {
		t.Error("row 0 should not be null")
	}
}

func TestLoaderClassMismatch(t *testing.T) {
	var a vbuf.Alloc
	slot := a.String()
	blk := &cache.Block{Kind: types.KindInt, Ints: []int64{1}, Rows: 1, Complete: true}
	if _, err := CompileLoader(blk, slot); err == nil {
		t.Error("kind/class mismatch should fail")
	}
}

func TestCompileScanDrivesAllRows(t *testing.T) {
	var a vbuf.Alloc
	slot := a.Int()
	oid := a.Int()
	blk := &cache.Block{Kind: types.KindInt, Ints: []int64{3, 1, 4}, Rows: 3, Complete: true}
	ld, err := CompileLoader(blk, slot)
	if err != nil {
		t.Fatal(err)
	}
	var prof plugin.ScanProf
	run := CompileScan(3, []Loader{ld}, &oid, nil, &prof, nil, nil)
	regs := vbuf.NewRegs(&a)
	var sum, oidSum int64
	if err := run(regs, func() error {
		sum += regs.I[slot.Idx]
		oidSum += regs.I[oid.Idx]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 8 || oidSum != 3 {
		t.Errorf("sum = %d oidSum = %d", sum, oidSum)
	}
	if prof.FieldsParsed != 3 || prof.IndexHits != 3 || prof.BytesRead != 24 {
		t.Errorf("scan prof = %+v", prof)
	}
}

func TestCompileScanMorsel(t *testing.T) {
	var a vbuf.Alloc
	slot := a.Int()
	blk := &cache.Block{Kind: types.KindInt, Ints: []int64{3, 1, 4, 1, 5}, Rows: 5, Complete: true}
	ld, err := CompileLoader(blk, slot)
	if err != nil {
		t.Fatal(err)
	}
	run := CompileScan(5, []Loader{ld}, nil, &plugin.Morsel{Start: 1, End: 4}, nil, nil, nil)
	regs := vbuf.NewRegs(&a)
	var got []int64
	if err := run(regs, func() error {
		got = append(got, regs.I[slot.Idx])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 1 {
		t.Errorf("morsel rows = %v", got)
	}
}
