// Package cachepg is the cache input plug-in (§6 "Implementation"): once
// the Caching Manager has materialized a cache block, the engine treats it
// as just another input dataset, and this plug-in supplies the compiled
// access code for it — plain typed-array reads, the cheapest access path of
// all (the cache is already binary and dense).
package cachepg

import (
	"fmt"

	"proteus/internal/cache"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Loader fills one slot from a cache block at a row ordinal.
type Loader func(regs *vbuf.Regs, row int64)

// CompileLoader returns the specialized per-row read for a block into a
// slot. The block's kind must match the slot's class.
func CompileLoader(b *cache.Block, slot vbuf.Slot) (Loader, error) {
	nulls := b.Nulls
	switch b.Kind {
	case types.KindInt:
		if slot.Class != vbuf.ClassInt {
			return nil, fmt.Errorf("cachepg: block %q holds ints but slot wants class %d", b.Key, slot.Class)
		}
		col := b.Ints
		if nulls == nil {
			return func(regs *vbuf.Regs, row int64) {
				regs.I[slot.Idx] = col[row]
				regs.Null[slot.Null] = false
			}, nil
		}
		return func(regs *vbuf.Regs, row int64) {
			regs.I[slot.Idx] = col[row]
			regs.Null[slot.Null] = nulls[row]
		}, nil
	case types.KindFloat:
		if slot.Class != vbuf.ClassFloat {
			return nil, fmt.Errorf("cachepg: block %q holds floats but slot wants class %d", b.Key, slot.Class)
		}
		col := b.Floats
		if nulls == nil {
			return func(regs *vbuf.Regs, row int64) {
				regs.F[slot.Idx] = col[row]
				regs.Null[slot.Null] = false
			}, nil
		}
		return func(regs *vbuf.Regs, row int64) {
			regs.F[slot.Idx] = col[row]
			regs.Null[slot.Null] = nulls[row]
		}, nil
	case types.KindBool:
		if slot.Class != vbuf.ClassBool {
			return nil, fmt.Errorf("cachepg: block %q holds bools but slot wants class %d", b.Key, slot.Class)
		}
		col := b.Bools
		if nulls == nil {
			return func(regs *vbuf.Regs, row int64) {
				regs.B[slot.Idx] = col[row]
				regs.Null[slot.Null] = false
			}, nil
		}
		return func(regs *vbuf.Regs, row int64) {
			regs.B[slot.Idx] = col[row]
			regs.Null[slot.Null] = nulls[row]
		}, nil
	case types.KindString:
		if slot.Class != vbuf.ClassString {
			return nil, fmt.Errorf("cachepg: block %q holds strings but slot wants class %d", b.Key, slot.Class)
		}
		col := b.Strs
		if nulls == nil {
			return func(regs *vbuf.Regs, row int64) {
				regs.S[slot.Idx] = col[row]
				regs.Null[slot.Null] = false
			}, nil
		}
		return func(regs *vbuf.Regs, row int64) {
			regs.S[slot.Idx] = col[row]
			regs.Null[slot.Null] = nulls[row]
		}, nil
	}
	return nil, fmt.Errorf("cachepg: unsupported block kind %s", b.Kind)
}

// CompileScan returns a scan driver over cache blocks when *every* field a
// scan needs is cached: the original dataset is not touched at all. A
// non-nil morsel restricts the driver to [Start, End); prof, when set,
// receives the block access counters once per invocation (every read is an
// "index hit" — the cache block is a positional index by construction).
// The driver polls cc between batches of plugin.CancelStride rows. A
// non-nil skip callback (built from the blocks' zone maps and the scan's
// pushed-down predicates) lets the driver drop whole stride windows whose
// value ranges cannot satisfy the query.
func CompileScan(rows int64, loaders []Loader, oid *vbuf.Slot, morsel *plugin.Morsel, prof *plugin.ScanProf, cc *plugin.Cancel, skip func(lo, hi int64) bool) plugin.RunFunc {
	lo, hi := int64(0), rows
	if morsel != nil {
		if lo = morsel.Start; lo < 0 {
			lo = 0
		}
		if hi = morsel.End; hi > rows {
			hi = rows
		}
	}
	run := plugin.RunFunc(func(regs *vbuf.Regs, consume func() error) error {
		for blk := lo; blk < hi; blk += plugin.CancelStride {
			if cc.Cancelled() {
				return cc.Err()
			}
			blkEnd := blk + plugin.CancelStride
			if blkEnd > hi {
				blkEnd = hi
			}
			if skip != nil && skip(blk, blkEnd) {
				continue
			}
			for row := blk; row < blkEnd; row++ {
				if oid != nil {
					regs.I[oid.Idx] = row
					regs.Null[oid.Null] = false
				}
				for _, ld := range loaders {
					ld(regs, row)
				}
				if err := consume(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	n := hi - lo
	if n < 0 {
		n = 0
	}
	fields := n * int64(len(loaders))
	return prof.WrapRun(run, fields*8, fields, fields)
}

// BatchLoader views one slot's column of a cache block into a batch for
// the row range [lo, hi) — a slice re-view, not a copy.
type BatchLoader func(b *vbuf.Batch, lo, hi int64)

// CompileBatchLoader returns the zero-copy batch read for a block into a
// slot: the batch column aliases the block's typed array directly. Blocks
// are immutable once Complete, so sharing the backing arrays is safe.
func CompileBatchLoader(blk *cache.Block, slot vbuf.Slot) (BatchLoader, error) {
	nulls := blk.Nulls
	nullIdx := slot.Null
	setNulls := func(b *vbuf.Batch, lo, hi int64) {
		if nulls == nil {
			b.Null[nullIdx] = nil
		} else {
			b.Null[nullIdx] = nulls[lo:hi]
		}
	}
	switch blk.Kind {
	case types.KindInt:
		if slot.Class != vbuf.ClassInt {
			return nil, fmt.Errorf("cachepg: block %q holds ints but slot wants class %d", blk.Key, slot.Class)
		}
		col := blk.Ints
		return func(b *vbuf.Batch, lo, hi int64) {
			b.I[slot.Idx] = col[lo:hi]
			setNulls(b, lo, hi)
		}, nil
	case types.KindFloat:
		if slot.Class != vbuf.ClassFloat {
			return nil, fmt.Errorf("cachepg: block %q holds floats but slot wants class %d", blk.Key, slot.Class)
		}
		col := blk.Floats
		return func(b *vbuf.Batch, lo, hi int64) {
			b.F[slot.Idx] = col[lo:hi]
			setNulls(b, lo, hi)
		}, nil
	case types.KindBool:
		if slot.Class != vbuf.ClassBool {
			return nil, fmt.Errorf("cachepg: block %q holds bools but slot wants class %d", blk.Key, slot.Class)
		}
		col := blk.Bools
		return func(b *vbuf.Batch, lo, hi int64) {
			b.B[slot.Idx] = col[lo:hi]
			setNulls(b, lo, hi)
		}, nil
	case types.KindString:
		if slot.Class != vbuf.ClassString {
			return nil, fmt.Errorf("cachepg: block %q holds strings but slot wants class %d", blk.Key, slot.Class)
		}
		col := blk.Strs
		return func(b *vbuf.Batch, lo, hi int64) {
			b.S[slot.Idx] = col[lo:hi]
			setNulls(b, lo, hi)
		}, nil
	}
	return nil, fmt.Errorf("cachepg: unsupported block kind %s", blk.Kind)
}

// CompileBatchScan returns the vectorized scan driver over cache blocks:
// each batch is a window of vbuf.BatchSize rows whose columns alias the
// blocks' typed arrays — the cheapest batch producer in the system. The
// driver polls cc once per batch (same granularity as the tuple driver's
// CancelStride, since vbuf.BatchSize == plugin.CancelStride). A non-nil
// skip callback drops whole batch windows the blocks' zone maps prove
// cannot satisfy the scan's pushed-down predicates — one batch is exactly
// one zone (vbuf.BatchSize == cache.ZoneSize).
func CompileBatchScan(rows int64, loaders []BatchLoader, oid *vbuf.Slot, morsel *plugin.Morsel, prof *plugin.ScanProf, cc *plugin.Cancel, skip func(lo, hi int64) bool) plugin.BatchRunFunc {
	lo, hi := int64(0), rows
	if morsel != nil {
		if lo = morsel.Start; lo < 0 {
			lo = 0
		}
		if hi = morsel.End; hi > rows {
			hi = rows
		}
	}
	run := plugin.BatchRunFunc(func(_ *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
		for blk := lo; blk < hi; blk += vbuf.BatchSize {
			if cc.Cancelled() {
				return cc.Err()
			}
			blkEnd := blk + vbuf.BatchSize
			if blkEnd > hi {
				blkEnd = hi
			}
			if skip != nil && skip(blk, blkEnd) {
				continue
			}
			for _, ld := range loaders {
				ld(b, blk, blkEnd)
			}
			b.Base = blk
			if oid != nil {
				col := b.Ints(oid.Idx)
				for j := range int(blkEnd - blk) {
					col[j] = blk + int64(j)
				}
				b.Null[oid.Null] = nil
			}
			b.ResetSel(int(blkEnd - blk))
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	})
	if prof != nil {
		n := hi - lo
		if n < 0 {
			n = 0
		}
		fields := n * int64(len(loaders))
		inner := run
		run = func(regs *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
			prof.BytesRead += fields * 8
			prof.FieldsParsed += fields
			prof.IndexHits += fields
			return inner(regs, b, consume)
		}
	}
	return run
}

// Builder accumulates one column during a scan (the output plug-in side of
// §6: "an expression generator produces code which evaluates the expression
// to be cached and places the result in a consecutive memory block").
type Builder struct {
	Block   *cache.Block
	slot    vbuf.Slot
	hasNull bool
}

// NewBuilder prepares a builder that snapshots slot values per row.
func NewBuilder(dataset, key string, kind types.Kind, formatBias float64, slot vbuf.Slot, capacity int64) *Builder {
	return &Builder{
		Block: &cache.Block{
			Dataset:    dataset,
			Key:        key,
			Kind:       kind,
			FormatBias: formatBias,
		},
		slot: slot,
	}
}

// Reset discards any partially accumulated column so the builder can start
// over — called at scan-run start, because a compiled program may be run
// repeatedly and each run must produce a fresh block.
func (b *Builder) Reset() {
	old := b.Block
	b.Block = &cache.Block{
		Dataset:    old.Dataset,
		Key:        old.Key,
		Kind:       old.Kind,
		FormatBias: old.FormatBias,
	}
	b.hasNull = false
}

// Append records the slot's current value.
func (b *Builder) Append(regs *vbuf.Regs) {
	null := regs.Null[b.slot.Null]
	if null {
		b.hasNull = true
	}
	if b.Block.Nulls != nil || b.hasNull {
		if b.Block.Nulls == nil {
			b.Block.Nulls = make([]bool, b.Block.Rows)
		}
		b.Block.Nulls = append(b.Block.Nulls, null)
	}
	switch b.Block.Kind {
	case types.KindInt:
		b.Block.Ints = append(b.Block.Ints, regs.I[b.slot.Idx])
	case types.KindFloat:
		b.Block.Floats = append(b.Block.Floats, regs.F[b.slot.Idx])
	case types.KindBool:
		b.Block.Bools = append(b.Block.Bools, regs.B[b.slot.Idx])
	case types.KindString:
		b.Block.Strs = append(b.Block.Strs, regs.S[b.slot.Idx])
	}
	b.Block.Rows++
}

// AppendBatch records every loaded row of a batch (pre-filter: cache
// population must see all rows, exactly like the tuple path, where the
// builder wraps consume before the filters run).
func (b *Builder) AppendBatch(batch *vbuf.Batch) {
	n := batch.N
	if n == 0 {
		return
	}
	var nulls []bool
	if b.slot.Null < len(batch.Null) {
		nulls = batch.Null[b.slot.Null]
	}
	if nulls != nil && !b.hasNull {
		for j := 0; j < n; j++ {
			if nulls[j] {
				b.hasNull = true
				break
			}
		}
	}
	if b.Block.Nulls != nil || b.hasNull {
		if b.Block.Nulls == nil {
			b.Block.Nulls = make([]bool, b.Block.Rows)
		}
		if nulls != nil {
			b.Block.Nulls = append(b.Block.Nulls, nulls[:n]...)
		} else {
			b.Block.Nulls = append(b.Block.Nulls, make([]bool, n)...)
		}
	}
	switch b.Block.Kind {
	case types.KindInt:
		b.Block.Ints = append(b.Block.Ints, batch.I[b.slot.Idx][:n]...)
	case types.KindFloat:
		b.Block.Floats = append(b.Block.Floats, batch.F[b.slot.Idx][:n]...)
	case types.KindBool:
		b.Block.Bools = append(b.Block.Bools, batch.B[b.slot.Idx][:n]...)
	case types.KindString:
		b.Block.Strs = append(b.Block.Strs, batch.S[b.slot.Idx][:n]...)
	}
	b.Block.Rows += int64(n)
}

// Finish marks the block complete (the scan reached EOF) and returns it.
func (b *Builder) Finish() *cache.Block {
	b.Block.Complete = true
	return b.Block
}
