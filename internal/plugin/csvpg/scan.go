package csvpg

import (
	"bytes"
	"fmt"
	"sort"

	"proteus/internal/fastparse"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// fieldExtract is one compiled per-row extraction: locate column col
// starting the seek at an indexed position and parse it into its slot.
type fieldExtract struct {
	col   int
	parse func(regs *vbuf.Regs, raw []byte)
}

// CompileScan implements plugin.Input. The returned closure is specialized
// to this dataset: the fixed-width path computes field positions
// arithmetically; the indexed path seeks from the nearest every-Nth-field
// position; and each requested field gets a type-specific parser, so the
// loop contains no per-row type checks — the paper's generate() step.
func (p *Plugin) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	extracts := make([]fieldExtract, 0, len(spec.Fields))
	var wholeSlots []vbuf.Slot
	for _, req := range spec.Fields {
		if len(req.Path) == 0 {
			// Whole-record boxing: the entire row decoded into a value slot.
			if req.Slot.Class != vbuf.ClassValue {
				return nil, fmt.Errorf("csvpg: whole-record request needs a value slot")
			}
			wholeSlots = append(wholeSlots, req.Slot)
			continue
		}
		if len(req.Path) != 1 {
			return nil, fmt.Errorf("csvpg: nested path %q in flat CSV dataset %q",
				plugin.FieldPathString(req.Path), ds.Name)
		}
		col := st.schema.Index(req.Path[0])
		if col < 0 {
			return nil, fmt.Errorf("csvpg: dataset %q has no column %q", ds.Name, req.Path[0])
		}
		parse, err := parserFor(req.Slot, req.Type)
		if err != nil {
			return nil, fmt.Errorf("csvpg: column %q: %w", req.Path[0], err)
		}
		extracts = append(extracts, fieldExtract{col: col, parse: parse})
	}
	sort.Slice(extracts, func(i, j int) bool { return extracts[i].col < extracts[j].col })

	data := st.data
	delim := st.delim
	oid := spec.OIDSlot
	cc := spec.Cancel
	// Clean LF-terminated files keep the exact historical field scan; CRLF
	// files get the variant that stops the last column before the '\r'.
	fe := fieldEnd
	if st.hasCR {
		fe = fieldEndCR
	}
	lo, hi := int64(0), st.rows
	if spec.Morsel != nil {
		lo, hi = spec.Morsel.Start, spec.Morsel.End
		if lo < 0 {
			lo = 0
		}
		if hi > st.rows {
			hi = st.rows
		}
	}

	// Whole-record boxing decodes the row generically into value slots; it
	// wraps whichever specialized loop is chosen below.
	wrapWhole := func(run plugin.RunFunc) plugin.RunFunc {
		if len(wholeSlots) == 0 {
			return run
		}
		names := st.schema.Names()
		return func(regs *vbuf.Regs, consume func() error) error {
			return run(regs, func() error {
				row := regs.I[oid.Idx]
				rec, err := st.decodeRow(row, names)
				if err != nil {
					return err
				}
				for _, slot := range wholeSlots {
					regs.V[slot.Idx] = rec
					regs.Null[slot.Null] = false
				}
				return consume()
			})
		}
	}
	if len(wholeSlots) > 0 && oid == nil {
		return nil, fmt.Errorf("csvpg: whole-record boxing requires an OID slot")
	}

	// Profiling deltas are computable at compile time: the extract sequence
	// is fixed and sorted, so parses-per-row and index-jump decisions are
	// identical for every row (see ScanSpec.Prof).
	nRows := hi - lo
	if nRows < 0 {
		nRows = 0
	}
	fieldsPerRow := int64(len(extracts)) + int64(len(wholeSlots))*int64(len(st.schema.Fields))

	if st.fixed {
		// Deterministic path: no index, pure arithmetic (§5.2 "Specializing
		// per Dataset Contents").
		offs := st.fieldOff
		rowLen := st.rowLen
		base0 := int32(0)
		if len(st.rowStarts) > 0 {
			base0 = st.rowStarts[0]
		}
		return spec.Prof.WrapRun(wrapWhole(func(regs *vbuf.Regs, consume func() error) error {
			for blk := lo; blk < hi; blk += plugin.CancelStride {
				if cc.Cancelled() {
					return cc.Err()
				}
				blkEnd := blk + plugin.CancelStride
				if blkEnd > hi {
					blkEnd = hi
				}
				for row := blk; row < blkEnd; row++ {
					base := base0 + int32(row)*rowLen
					if oid != nil {
						regs.I[oid.Idx] = row
						regs.Null[oid.Null] = false
					}
					for i := range extracts {
						e := &extracts[i]
						start := base + offs[e.col]
						end := fe(data, int(start), delim)
						e.parse(regs, data[start:end])
					}
					if err := consume(); err != nil {
						return err
					}
				}
			}
			return nil
		}), nRows*int64(rowLen), nRows*fieldsPerRow, 0), nil
	}

	// Indexed path: per row, seek from the nearest sampled field position.
	stride := st.stride
	nSampled := st.nSampled
	rowStarts := st.rowStarts
	fieldPos := st.fieldPos
	// Count the structural-index jumps one row performs by replaying the
	// extract cursor logic below (same decisions every row).
	var jumpsPerRow int64
	{
		curField := 0
		for i := range extracts {
			e := &extracts[i]
			if k := e.col / stride; k > 0 && k*stride > curField {
				if k > nSampled {
					k = nSampled
				}
				curField = k * stride
				jumpsPerRow++
			}
			if e.col > curField {
				curField = e.col
			}
		}
	}
	var byteSpan int64
	if nRows > 0 && len(rowStarts) > 0 {
		end := int64(len(data))
		if hi < st.rows {
			end = int64(rowStarts[hi])
		}
		byteSpan = end - int64(rowStarts[lo])
	}
	if st.hasQuotes {
		// Quote-aware indexed path: field navigation skips quoted sections
		// atomically and quoted fields are dequoted before parsing. Files
		// without quotes never reach this loop.
		name := ds.Name
		return spec.Prof.WrapRun(wrapWhole(func(regs *vbuf.Regs, consume func() error) error {
			for blk := lo; blk < hi; blk += plugin.CancelStride {
				if cc.Cancelled() {
					return cc.Err()
				}
				blkEnd := blk + plugin.CancelStride
				if blkEnd > hi {
					blkEnd = hi
				}
				for row := blk; row < blkEnd; row++ {
					if oid != nil {
						regs.I[oid.Idx] = row
						regs.Null[oid.Null] = false
					}
					curField := 0
					curPos := int(rowStarts[row])
					for i := range extracts {
						e := &extracts[i]
						if k := e.col / stride; k > 0 && k*stride > curField {
							if k > nSampled {
								k = nSampled
							}
							curField = k * stride
							curPos = int(fieldPos[row*int64(nSampled)+int64(k-1)])
						}
						for curField < e.col {
							np, ok := skipField(data, curPos, delim)
							if !ok {
								return fmt.Errorf("csvpg: %s row %d: missing column %d", name, row, e.col)
							}
							curPos = np
							curField++
						}
						e.parse(regs, fieldRaw(data, curPos, delim))
					}
					if err := consume(); err != nil {
						return err
					}
				}
			}
			return nil
		}), byteSpan, nRows*fieldsPerRow, nRows*jumpsPerRow), nil
	}

	return spec.Prof.WrapRun(wrapWhole(func(regs *vbuf.Regs, consume func() error) error {
		for blk := lo; blk < hi; blk += plugin.CancelStride {
			if cc.Cancelled() {
				return cc.Err()
			}
			blkEnd := blk + plugin.CancelStride
			if blkEnd > hi {
				blkEnd = hi
			}
			for row := blk; row < blkEnd; row++ {
				if oid != nil {
					regs.I[oid.Idx] = row
					regs.Null[oid.Null] = false
				}
				// cursor tracks (field index, byte position) within the row so
				// ascending extractions continue from where the last one ended.
				curField := 0
				curPos := int(rowStarts[row])
				for i := range extracts {
					e := &extracts[i]
					// Jump via the structural index when it gets us closer.
					if k := e.col / stride; k > 0 && k*stride > curField {
						if k > nSampled {
							k = nSampled
						}
						curField = k * stride
						curPos = int(fieldPos[row*int64(nSampled)+int64(k-1)])
					}
					for curField < e.col {
						nd := bytes.IndexByte(data[curPos:], delim)
						if nd < 0 {
							return fmt.Errorf("csvpg: %s row %d: missing column %d", ds.Name, row, e.col)
						}
						curPos += nd + 1
						curField++
					}
					end := fe(data, curPos, delim)
					e.parse(regs, data[curPos:end])
				}
				if err := consume(); err != nil {
					return err
				}
			}
		}
		return nil
	}), byteSpan, nRows*fieldsPerRow, nRows*jumpsPerRow), nil
}

// PartitionScan implements plugin.Partitioner: morsel boundaries are byte
// targets snapped to record starts via the structural index (rowStarts), so
// variable-width rows still yield byte-balanced morsels.
func (p *Plugin) PartitionScan(ds *plugin.Dataset, parts int) ([]plugin.Morsel, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	if st.fixed || len(st.rowStarts) == 0 {
		return plugin.SplitRows(st.rows, parts), nil
	}
	return plugin.SplitByStarts(st.rowStarts, int64(len(st.data)), parts), nil
}

// fieldEnd returns the exclusive end of the field starting at pos.
func fieldEnd(data []byte, pos int, delim byte) int {
	for i := pos; i < len(data); i++ {
		if data[i] == delim || data[i] == '\n' {
			return i
		}
	}
	return len(data)
}

// fieldEndCR is fieldEnd for CRLF-terminated files: the '\r' of a "\r\n"
// pair terminates the last field instead of leaking into its bytes.
func fieldEndCR(data []byte, pos int, delim byte) int {
	for i := pos; i < len(data); i++ {
		c := data[i]
		if c == delim || c == '\n' {
			return i
		}
		if c == '\r' && i+1 < len(data) && data[i+1] == '\n' {
			return i
		}
	}
	return len(data)
}

// skipField advances past the field starting at pos and its trailing
// delimiter, honoring quoting; ok is false when the row ends first.
func skipField(data []byte, pos int, delim byte) (int, bool) {
	if pos < len(data) && data[pos] == '"' {
		end, err := scanQuoted(data, pos)
		if err != nil {
			return 0, false
		}
		pos = end
	} else {
		for pos < len(data) && data[pos] != delim && data[pos] != '\n' {
			pos++
		}
	}
	if pos < len(data) && data[pos] == delim {
		return pos + 1, true
	}
	return 0, false
}

// fieldRaw returns the decoded bytes of the field starting at pos: quoted
// fields are dequoted; unquoted fields span to the next delimiter or row
// terminator.
func fieldRaw(data []byte, pos int, delim byte) []byte {
	if pos < len(data) && data[pos] == '"' {
		if end, err := scanQuoted(data, pos); err == nil {
			return dequote(data[pos:end])
		}
	}
	return data[pos:fieldEndCR(data, pos, delim)]
}

// parserFor returns a type-specialized field parser writing into slot.
func parserFor(slot vbuf.Slot, t types.Type) (func(regs *vbuf.Regs, raw []byte), error) {
	switch t.Kind() {
	case types.KindInt:
		if slot.Class != vbuf.ClassInt {
			return nil, fmt.Errorf("slot class mismatch for int column")
		}
		return func(regs *vbuf.Regs, raw []byte) {
			regs.I[slot.Idx] = ParseInt(raw)
			regs.Null[slot.Null] = false
		}, nil
	case types.KindFloat:
		if slot.Class != vbuf.ClassFloat {
			return nil, fmt.Errorf("slot class mismatch for float column")
		}
		return func(regs *vbuf.Regs, raw []byte) {
			regs.F[slot.Idx] = ParseFloat(raw)
			regs.Null[slot.Null] = false
		}, nil
	case types.KindBool:
		if slot.Class != vbuf.ClassBool {
			return nil, fmt.Errorf("slot class mismatch for bool column")
		}
		return func(regs *vbuf.Regs, raw []byte) {
			regs.B[slot.Idx] = len(raw) > 0 && (raw[0] == 't' || raw[0] == 'T' || raw[0] == '1')
			regs.Null[slot.Null] = false
		}, nil
	case types.KindString:
		if slot.Class != vbuf.ClassString {
			return nil, fmt.Errorf("slot class mismatch for string column")
		}
		return func(regs *vbuf.Regs, raw []byte) {
			regs.S[slot.Idx] = string(raw)
			regs.Null[slot.Null] = false
		}, nil
	}
	return nil, fmt.Errorf("unsupported CSV column type %s", t)
}

// ParseInt parses a decimal integer without allocating.
func ParseInt(b []byte) int64 { return fastparse.Int(b) }

// ParseFloat parses a float without allocating for common shapes.
func ParseFloat(b []byte) float64 { return fastparse.Float(b) }

// CompileUnnest implements plugin.Input: CSV rows are flat, so there is
// nothing to unnest lazily.
func (p *Plugin) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

// decodeRow boxes one row into a record value.
func (st *state) decodeRow(row int64, names []string) (types.Value, error) {
	parts := splitRecord(st.rowBytes(row), st.delim)
	vals := make([]types.Value, len(st.schema.Fields))
	for i, f := range st.schema.Fields {
		if i >= len(parts) {
			vals[i] = types.NullValue()
			continue
		}
		raw := parts[i]
		switch f.Type.Kind() {
		case types.KindInt:
			vals[i] = types.IntValue(ParseInt(raw))
		case types.KindFloat:
			vals[i] = types.FloatValue(ParseFloat(raw))
		case types.KindBool:
			vals[i] = types.BoolValue(len(raw) > 0 && (raw[0] == 't' || raw[0] == 'T' || raw[0] == '1'))
		default:
			vals[i] = types.StringValue(string(raw))
		}
	}
	return types.RecordValue(names, vals), nil
}

// ReadRows implements plugin.Input: the general-purpose boxed decode used
// by the baseline engines.
func (p *Plugin) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	names := st.schema.Names()
	out := make([]types.Value, 0, st.rows)
	for row := int64(0); row < st.rows; row++ {
		rec, err := st.decodeRow(row, names)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
