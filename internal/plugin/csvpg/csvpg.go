// Package csvpg is the CSV input plug-in (§5.2). On cold access it builds a
// positional structural index that stores the byte position of every Nth
// field of each row (after NoDB); scans then seek from the nearest indexed
// position instead of re-parsing the row from its start. If the file's rows
// turn out to be fixed-width with identical per-field offsets, the plug-in
// drops the index entirely and computes field positions arithmetically —
// the paper's "deterministic" CSV fast path.
//
// The dialect is deliberately the simple machine-generated one the paper
// evaluates: single-byte delimiter, '\n' row terminator, no quoting.
package csvpg

import (
	"bytes"
	"fmt"
	"strconv"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/types"
)

// DefaultIndexStride is the default N for the every-Nth-field index.
const DefaultIndexStride = 8

// Plugin implements plugin.Input for CSV files.
type Plugin struct{}

// New returns the CSV plug-in.
func New() *Plugin { return &Plugin{} }

// Format implements plugin.Input.
func (p *Plugin) Format() string { return "csv" }

// FieldCost implements plugin.Input.
func (p *Plugin) FieldCost() float64 { return 6.0 }

type state struct {
	data   []byte
	schema *types.RecordType
	delim  byte
	rows   int64

	// Structural index: rowStarts has one entry per row (the position of
	// field 0); fieldPos stores, per row, the positions of fields at
	// stride, 2·stride, … (nSampled of them).
	rowStarts []int32
	stride    int
	nSampled  int
	fieldPos  []int32

	// Fixed-width fast path: every row has identical length and identical
	// per-field offsets. When set, fieldPos is dropped.
	fixed    bool
	rowLen   int32
	fieldOff []int32 // per-field offset within a row
}

func (p *Plugin) state(ds *plugin.Dataset) (*state, error) {
	st, ok := ds.State.(*state)
	if !ok {
		return nil, fmt.Errorf("csvpg: dataset %q is not open", ds.Name)
	}
	return st, nil
}

// Open implements plugin.Input: loads the file, parses the header, builds
// the positional index, detects the fixed-width layout, and samples
// statistics (cold-access gathering).
func (p *Plugin) Open(env *plugin.Env, ds *plugin.Dataset) error {
	data, err := env.Mem.File(ds.Path)
	if err != nil {
		return err
	}
	st := &state{data: data, delim: ds.Opts.Delimiter}
	if st.delim == 0 {
		st.delim = ','
	}
	st.stride = ds.Opts.IndexStride
	if st.stride <= 0 {
		st.stride = DefaultIndexStride
	}

	pos := 0
	var header []string
	if ds.Opts.Header {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return fmt.Errorf("csvpg: %s: missing header row", ds.Name)
		}
		for _, h := range bytes.Split(data[:nl], []byte{st.delim}) {
			header = append(header, string(bytes.TrimSpace(h)))
		}
		pos = nl + 1
	}

	// Determine the column count from the first data row.
	first := pos
	firstEnd := bytes.IndexByte(data[first:], '\n')
	if firstEnd < 0 {
		firstEnd = len(data) - first
	}
	nCols := 1 + bytes.Count(data[first:first+firstEnd], []byte{st.delim})
	if firstEnd == 0 && first >= len(data) {
		nCols = 0
	}

	// Schema: declared, or named by the header, or inferred from row one.
	if ds.Schema != nil {
		st.schema = ds.Schema
		if len(st.schema.Fields) != nCols && nCols > 0 {
			return fmt.Errorf("csvpg: %s: declared schema has %d fields but file has %d columns",
				ds.Name, len(st.schema.Fields), nCols)
		}
	} else {
		st.schema = inferSchema(data[first:first+firstEnd], st.delim, header)
	}

	st.nSampled = (len(st.schema.Fields) - 1) / st.stride
	if st.nSampled < 0 {
		st.nSampled = 0
	}

	// Single indexing pass: row starts, sampled field positions, fixed-width
	// detection, and statistics sampling.
	tbl := env.Stats.Table(ds.Name)
	numericCols := numericColumns(st.schema)
	sampleEvery := env.SampleEvery
	st.fixed = true
	var fixedTemplate []int32
	fieldOffs := make([]int32, len(st.schema.Fields))

	row := int64(0)
	for pos < len(data) {
		rowStart := pos
		st.rowStarts = append(st.rowStarts, int32(rowStart))
		// Walk the row once, recording every field offset.
		f := 0
		fieldOffs[0] = 0
		for i := pos; i < len(data); i++ {
			c := data[i]
			if c == st.delim {
				f++
				if f < len(fieldOffs) {
					fieldOffs[f] = int32(i + 1 - rowStart)
				}
				continue
			}
			if c == '\n' {
				pos = i + 1
				goto rowDone
			}
		}
		pos = len(data)
	rowDone:
		rowEnd := pos
		if rowEnd > rowStart && pos <= len(data) && pos > 0 && data[pos-1] == '\n' {
			rowEnd = pos - 1
		}
		for k := 1; k <= st.nSampled; k++ {
			st.fieldPos = append(st.fieldPos, int32(rowStart)+fieldOffs[k*st.stride])
		}
		if st.fixed {
			if fixedTemplate == nil {
				fixedTemplate = append([]int32(nil), fieldOffs...)
				st.rowLen = int32(pos - rowStart)
			} else if int32(pos-rowStart) != st.rowLen || !equalOffsets(fixedTemplate, fieldOffs) {
				st.fixed = false
			}
		}
		if sampleEvery > 0 && row%int64(sampleEvery) == 0 {
			sampleRow(data[rowStart:rowEnd], st.delim, numericCols, st.schema, tbl)
		}
		row++
	}
	st.rows = row
	if st.fixed && fixedTemplate != nil {
		st.fieldOff = fixedTemplate
		st.fieldPos = nil // deterministic: the index is redundant
	}
	tbl.Rows = st.rows
	ds.State = st
	if ds.Schema == nil {
		ds.Schema = st.schema
	}
	return nil
}

func equalOffsets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func numericColumns(schema *types.RecordType) []int {
	var out []int
	for i, f := range schema.Fields {
		if types.Numeric(f.Type) {
			out = append(out, i)
		}
	}
	return out
}

// sampleRow contributes one row's numeric fields to the statistics table.
func sampleRow(row []byte, delim byte, numericCols []int, schema *types.RecordType, tbl *stats.Table) {
	parts := bytes.Split(row, []byte{delim})
	for _, col := range numericCols {
		if col >= len(parts) {
			continue
		}
		v, err := strconv.ParseFloat(string(bytes.TrimSpace(parts[col])), 64)
		if err != nil {
			continue
		}
		c := tbl.Col(schema.Fields[col].Name)
		c.Observe(v)
	}
}

// Schema implements plugin.Input.
func (p *Plugin) Schema(ds *plugin.Dataset) *types.RecordType {
	if st, ok := ds.State.(*state); ok {
		return st.schema
	}
	return ds.Schema
}

// Cardinality implements plugin.Input.
func (p *Plugin) Cardinality(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*state); ok {
		return st.rows
	}
	return 0
}

// inferSchema types each column of the first data row: int, then float,
// else string. Columns are named by the header, or col0, col1, ….
func inferSchema(row []byte, delim byte, header []string) *types.RecordType {
	parts := bytes.Split(row, []byte{delim})
	fields := make([]types.Field, len(parts))
	for i, part := range parts {
		name := fmt.Sprintf("col%d", i)
		if i < len(header) && header[i] != "" {
			name = header[i]
		}
		s := string(bytes.TrimSpace(part))
		t := types.String
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			t = types.Int
		} else if _, err := strconv.ParseFloat(s, 64); err == nil {
			t = types.Float
		}
		fields[i] = types.Field{Name: name, Type: t}
	}
	return &types.RecordType{Fields: fields}
}
