// Package csvpg is the CSV input plug-in (§5.2). On cold access it builds a
// positional structural index that stores the byte position of every Nth
// field of each row (after NoDB); scans then seek from the nearest indexed
// position instead of re-parsing the row from its start. If the file's rows
// turn out to be fixed-width with identical per-field offsets, the plug-in
// drops the index entirely and computes field positions arithmetically —
// the paper's "deterministic" CSV fast path.
//
// The dialect is the machine-generated one the paper evaluates — single-byte
// delimiter, '\n' or "\r\n" row terminators — extended with RFC-4180 quoting:
// a field starting with '"' may contain the delimiter, newlines, and doubled
// quotes ("" = one literal quote). Files that never use quotes keep the exact
// unquoted fast path; a bare quote mid-field is rejected at Open with the row
// number rather than silently misparsed.
package csvpg

import (
	"bytes"
	"fmt"
	"strconv"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/types"
)

// DefaultIndexStride is the default N for the every-Nth-field index.
const DefaultIndexStride = 8

// Plugin implements plugin.Input for CSV files.
type Plugin struct{}

// New returns the CSV plug-in.
func New() *Plugin { return &Plugin{} }

// Format implements plugin.Input.
func (p *Plugin) Format() string { return "csv" }

// FieldCost implements plugin.Input.
func (p *Plugin) FieldCost() float64 { return 6.0 }

type state struct {
	data   []byte
	schema *types.RecordType
	delim  byte
	rows   int64

	// Structural index: rowStarts has one entry per row (the position of
	// field 0); fieldPos stores, per row, the positions of fields at
	// stride, 2·stride, … (nSampled of them).
	rowStarts []int32
	stride    int
	nSampled  int
	fieldPos  []int32

	// Fixed-width fast path: every row has identical length and identical
	// per-field offsets. When set, fieldPos is dropped.
	fixed    bool
	rowLen   int32
	fieldOff []int32 // per-field offset within a row

	// Dialect features observed during the indexing pass. Scan compilation
	// keys on them so clean LF-terminated unquoted files — the common
	// machine-generated case — pay nothing for the RFC-4180 support.
	hasQuotes bool // at least one quoted field anywhere in the file
	hasCR     bool // at least one "\r\n" row terminator
}

func (p *Plugin) state(ds *plugin.Dataset) (*state, error) {
	st, ok := ds.State.(*state)
	if !ok {
		return nil, fmt.Errorf("csvpg: dataset %q is not open", ds.Name)
	}
	return st, nil
}

// Open implements plugin.Input: loads the file, parses the header, builds
// the positional index, detects the fixed-width layout, and samples
// statistics (cold-access gathering).
func (p *Plugin) Open(env *plugin.Env, ds *plugin.Dataset) error {
	data, err := env.Mem.File(ds.Path)
	if err != nil {
		return err
	}
	st := &state{data: data, delim: ds.Opts.Delimiter}
	if st.delim == 0 {
		st.delim = ','
	}
	st.stride = ds.Opts.IndexStride
	if st.stride <= 0 {
		st.stride = DefaultIndexStride
	}

	pos := 0
	var header []string
	if ds.Opts.Header {
		nl := recordEnd(data, 0)
		if nl >= len(data) {
			return fmt.Errorf("csvpg: %s: missing header row", ds.Name)
		}
		line := data[:nl]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		for _, h := range splitRecord(line, st.delim) {
			header = append(header, string(bytes.TrimSpace(h)))
		}
		pos = nl + 1
	}

	// Determine the column count from the first data row.
	first := pos
	firstRow := data[first:recordEnd(data, first)]
	if len(firstRow) > 0 && firstRow[len(firstRow)-1] == '\r' {
		firstRow = firstRow[:len(firstRow)-1]
	}
	nCols := len(splitRecord(firstRow, st.delim))
	if len(firstRow) == 0 && first >= len(data) {
		nCols = 0
	}

	// Schema: declared, or named by the header, or inferred from row one.
	if ds.Schema != nil {
		st.schema = ds.Schema
		if len(st.schema.Fields) != nCols && nCols > 0 {
			return fmt.Errorf("csvpg: %s: declared schema has %d fields but file has %d columns",
				ds.Name, len(st.schema.Fields), nCols)
		}
	} else {
		st.schema = inferSchema(firstRow, st.delim, header)
	}

	st.nSampled = (len(st.schema.Fields) - 1) / st.stride
	if st.nSampled < 0 {
		st.nSampled = 0
	}

	// Single indexing pass: row starts, sampled field positions, fixed-width
	// detection, and statistics sampling.
	tbl := env.Stats.Table(ds.Name)
	numericCols := numericColumns(st.schema)
	sampleEvery := env.SampleEvery
	st.fixed = true
	var fixedTemplate []int32
	fieldOffs := make([]int32, len(st.schema.Fields))

	row := int64(0)
	for pos < len(data) {
		rowStart := pos
		st.rowStarts = append(st.rowStarts, int32(rowStart))
		// Walk the row once, recording every field offset. Quoted fields are
		// skipped atomically, so delimiters and newlines inside quotes are
		// data, not structure.
		f := 0
		fieldOffs[0] = 0
		i := pos
		atFieldStart := true
		terminated := false
		for i < len(data) {
			c := data[i]
			if c == '"' {
				if !atFieldStart {
					return fmt.Errorf("csvpg: %s row %d: bare quote inside unquoted field %d (quote the whole field per RFC 4180)",
						ds.Name, row+1, f)
				}
				st.hasQuotes = true
				end, err := scanQuoted(data, i)
				if err != nil {
					return fmt.Errorf("csvpg: %s row %d: %v", ds.Name, row+1, err)
				}
				i = end
				if i < len(data) && data[i] != st.delim && data[i] != '\n' && data[i] != '\r' {
					return fmt.Errorf("csvpg: %s row %d: data after closing quote in field %d",
						ds.Name, row+1, f)
				}
				atFieldStart = false
				continue
			}
			if c == st.delim {
				f++
				if f < len(fieldOffs) {
					fieldOffs[f] = int32(i + 1 - rowStart)
				}
				atFieldStart = true
				i++
				continue
			}
			if c == '\n' {
				pos = i + 1
				terminated = true
				break
			}
			if c == '\r' && i+1 < len(data) && data[i+1] == '\n' {
				st.hasCR = true
				pos = i + 2
				terminated = true
				break
			}
			atFieldStart = false
			i++
		}
		rowEnd := len(data)
		if terminated {
			rowEnd = i // before the '\n' or "\r\n"
		} else {
			pos = len(data)
		}
		for k := 1; k <= st.nSampled; k++ {
			st.fieldPos = append(st.fieldPos, int32(rowStart)+fieldOffs[k*st.stride])
		}
		if st.fixed {
			if fixedTemplate == nil {
				fixedTemplate = append([]int32(nil), fieldOffs...)
				st.rowLen = int32(pos - rowStart)
			} else if int32(pos-rowStart) != st.rowLen || !equalOffsets(fixedTemplate, fieldOffs) {
				st.fixed = false
			}
		}
		if sampleEvery > 0 && row%int64(sampleEvery) == 0 {
			sampleRow(data[rowStart:rowEnd], st.delim, numericCols, st.schema, tbl)
		}
		row++
	}
	st.rows = row
	if st.hasQuotes {
		// Quoted fields vary in decoded width even at fixed byte offsets;
		// keep the positional index and take the quote-aware scan path.
		st.fixed = false
	}
	if st.fixed && fixedTemplate != nil {
		st.fieldOff = fixedTemplate
		st.fieldPos = nil // deterministic: the index is redundant
	}
	tbl.Rows = st.rows
	ds.State = st
	if ds.Schema == nil {
		ds.Schema = st.schema
	}
	return nil
}

// scanQuoted advances past the RFC-4180 quoted field whose opening quote is
// at pos, returning the position just past the closing quote. Doubled quotes
// ("") inside are literal-quote escapes; delimiters and newlines are data.
func scanQuoted(data []byte, pos int) (int, error) {
	for i := pos + 1; i < len(data); {
		if data[i] != '"' {
			i++
			continue
		}
		if i+1 < len(data) && data[i+1] == '"' {
			i += 2
			continue
		}
		return i + 1, nil
	}
	return 0, fmt.Errorf("unterminated quoted field")
}

// dequote decodes a raw quoted field (surrounding quotes included):
// it strips the quotes and collapses doubled-quote escapes, allocating
// only when an escape is actually present.
func dequote(b []byte) []byte {
	b = b[1 : len(b)-1]
	if !bytes.Contains(b, []byte(`""`)) {
		return b
	}
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		out = append(out, b[i])
		if b[i] == '"' && i+1 < len(b) && b[i+1] == '"' {
			i++
		}
	}
	return out
}

// recordEnd returns the index of the '\n' terminating the record starting at
// pos (or len(data)), treating newlines inside quoted fields as data.
func recordEnd(data []byte, pos int) int {
	for i := pos; i < len(data); {
		switch data[i] {
		case '"':
			end, err := scanQuoted(data, i)
			if err != nil {
				return len(data)
			}
			i = end
		case '\n':
			return i
		default:
			i++
		}
	}
	return len(data)
}

// splitRecord splits one record (terminator already stripped) into decoded
// fields, honoring RFC-4180 quoting. Unquoted fields take the same zero-copy
// IndexByte path the unquoted dialect always used.
func splitRecord(row []byte, delim byte) [][]byte {
	var out [][]byte
	pos := 0
	for {
		if pos < len(row) && row[pos] == '"' {
			if end, err := scanQuoted(row, pos); err == nil && (end >= len(row) || row[end] == delim) {
				out = append(out, dequote(row[pos:end]))
				if end >= len(row) {
					return out
				}
				pos = end + 1
				continue
			}
			// Unterminated quote or data after the closing quote: Open rejects
			// such rows, so this only serves schema probes of malformed input —
			// take the rest of the row verbatim (not in addition to the quoted
			// prefix, which would duplicate bytes).
		}
		nd := bytes.IndexByte(row[pos:], delim)
		if nd < 0 {
			out = append(out, row[pos:])
			return out
		}
		out = append(out, row[pos:pos+nd])
		pos += nd + 1
	}
}

// rowBytes returns one record's bytes with its "\n" or "\r\n" terminator
// stripped.
func (st *state) rowBytes(row int64) []byte {
	start := int(st.rowStarts[row])
	end := len(st.data)
	if row+1 < st.rows {
		end = int(st.rowStarts[row+1])
	}
	if end > start && st.data[end-1] == '\n' {
		end--
		if end > start && st.data[end-1] == '\r' {
			end--
		}
	}
	return st.data[start:end]
}

func equalOffsets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func numericColumns(schema *types.RecordType) []int {
	var out []int
	for i, f := range schema.Fields {
		if types.Numeric(f.Type) {
			out = append(out, i)
		}
	}
	return out
}

// sampleRow contributes one row's numeric fields to the statistics table.
func sampleRow(row []byte, delim byte, numericCols []int, schema *types.RecordType, tbl *stats.Table) {
	parts := splitRecord(row, delim)
	for _, col := range numericCols {
		if col >= len(parts) {
			continue
		}
		v, err := strconv.ParseFloat(string(bytes.TrimSpace(parts[col])), 64)
		if err != nil {
			continue
		}
		c := tbl.Col(schema.Fields[col].Name)
		c.Observe(v)
	}
}

// Schema implements plugin.Input.
func (p *Plugin) Schema(ds *plugin.Dataset) *types.RecordType {
	if st, ok := ds.State.(*state); ok {
		return st.schema
	}
	return ds.Schema
}

// Cardinality implements plugin.Input.
func (p *Plugin) Cardinality(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*state); ok {
		return st.rows
	}
	return 0
}

// inferSchema types each column of the first data row: int, then float,
// else string. Columns are named by the header, or col0, col1, ….
func inferSchema(row []byte, delim byte, header []string) *types.RecordType {
	parts := splitRecord(row, delim)
	fields := make([]types.Field, len(parts))
	for i, part := range parts {
		name := fmt.Sprintf("col%d", i)
		if i < len(header) && header[i] != "" {
			name = header[i]
		}
		s := string(bytes.TrimSpace(part))
		t := types.String
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			t = types.Int
		} else if _, err := strconv.ParseFloat(s, 64); err == nil {
			t = types.Float
		}
		fields[i] = types.Field{Name: name, Type: t}
	}
	return &types.RecordType{Fields: fields}
}
