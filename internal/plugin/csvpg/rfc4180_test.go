// RFC-4180 dialect tests: CRLF line endings and quoted fields (including
// escaped quotes and delimiters inside quotes). These exercise the
// quote-aware indexing pass plus both scan paths (structural-index jumps
// and the decode cold path).
package csvpg

import (
	"strings"
	"testing"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
)

var pairSchema = types.NewRecordType(
	types.Field{Name: "id", Type: types.Int},
	types.Field{Name: "name", Type: types.String},
)

func TestCRLFLineEndings(t *testing.T) {
	p, ds, _ := openCSV(t, "1,alpha\r\n22,beta\r\n333,gamma\r\n", pairSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "id", "name")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// The carriage return must not leak into the last column.
	for i, want := range []string{"alpha", "beta", "gamma"} {
		if got := rows[i][1].S; got != want {
			t.Errorf("row %d name = %q, want %q", i, got, want)
		}
	}
	if rows[2][0].AsInt() != 333 {
		t.Errorf("row 2 id = %d, want 333", rows[2][0].AsInt())
	}
}

func TestCRLFHeaderRow(t *testing.T) {
	p, ds, _ := openCSV(t, "id,name\r\n7,seven\r\n", nil, plugin.Options{Header: true})
	schema := p.Schema(ds)
	if got := schema.Fields[1].Name; got != "name" {
		t.Fatalf("second header column = %q, want %q (CR leaked?)", got, "name")
	}
	rows := scanAll(t, p, ds, "id", "name")
	if len(rows) != 1 || rows[0][1].S != "seven" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQuotedFieldWithDelimiter(t *testing.T) {
	data := "1,\"alpha,beta\"\n2,\"x\"\n3,plain\n"
	p, ds, _ := openCSV(t, data, pairSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "id", "name")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, want := range []string{"alpha,beta", "x", "plain"} {
		if got := rows[i][1].S; got != want {
			t.Errorf("row %d name = %q, want %q", i, got, want)
		}
	}
	// Ints after a quoted column must still parse.
	if rows[1][0].AsInt() != 2 || rows[2][0].AsInt() != 3 {
		t.Errorf("ids = %v, %v", rows[1][0], rows[2][0])
	}
}

func TestQuotedDoubledQuote(t *testing.T) {
	data := "1,\"say \"\"hi\"\"\"\n2,\"\"\n"
	p, ds, _ := openCSV(t, data, pairSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "id", "name")
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if got := rows[0][1].S; got != `say "hi"` {
		t.Errorf("row 0 name = %q, want %q", got, `say "hi"`)
	}
	if got := rows[1][1].S; got != "" {
		t.Errorf("row 1 name = %q, want empty", got)
	}
}

func TestQuotedCRLFCombined(t *testing.T) {
	data := "1,\"a,b\"\r\n2,tail\r\n"
	p, ds, _ := openCSV(t, data, pairSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "id", "name")
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0][1].S != "a,b" || rows[1][1].S != "tail" {
		t.Errorf("names = %q, %q", rows[0][1].S, rows[1][1].S)
	}
}

func TestBareQuoteMidFieldError(t *testing.T) {
	mem := storage.NewManager(0)
	mem.PutFile("mem://bad.csv", []byte("1,alpha\n2,mid\"quote\n"))
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore(), SampleEvery: 1}
	ds := &plugin.Dataset{Name: "bad", Path: "mem://bad.csv", Format: "csv", Schema: pairSchema}
	err := New().Open(env, ds)
	if err == nil {
		t.Fatal("mid-field quote accepted")
	}
	if !strings.Contains(err.Error(), "row 2") {
		t.Errorf("error %q does not name row 2", err)
	}
}

func TestReadRowsWithQuotes(t *testing.T) {
	data := "1,\"a,b\"\r\n2,\"say \"\"hi\"\"\"\r\n"
	p, ds, _ := openCSV(t, data, pairSchema, plugin.Options{})
	vals, err := p.ReadRows(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("rows = %d, want 2", len(vals))
	}
	name, _ := vals[0].Field("name")
	if name.S != "a,b" {
		t.Errorf("row 0 name = %q, want %q", name.S, "a,b")
	}
	name, _ = vals[1].Field("name")
	if name.S != `say "hi"` {
		t.Errorf("row 1 name = %q, want %q", name.S, `say "hi"`)
	}
}
