package csvpg

import (
	"bytes"
	"fmt"
	"sort"

	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// batchExtract is one compiled per-row extraction of the vectorized scan:
// bind refreshes the output column views at batch start, parse writes row j.
type batchExtract struct {
	col   int
	bind  func(b *vbuf.Batch)
	parse func(j int, raw []byte)
}

// batchParserFor returns a type-specialized parser writing into a batch
// column instead of a register — the column-writing twin of parserFor.
func batchParserFor(slot vbuf.Slot, t types.Type) (bind func(b *vbuf.Batch), parse func(j int, raw []byte), err error) {
	switch t.Kind() {
	case types.KindInt:
		if slot.Class != vbuf.ClassInt {
			return nil, nil, fmt.Errorf("slot class mismatch for int column")
		}
		var out []int64
		bind = func(b *vbuf.Batch) { out = b.Ints(slot.Idx); b.Null[slot.Null] = nil }
		parse = func(j int, raw []byte) { out[j] = ParseInt(raw) }
	case types.KindFloat:
		if slot.Class != vbuf.ClassFloat {
			return nil, nil, fmt.Errorf("slot class mismatch for float column")
		}
		var out []float64
		bind = func(b *vbuf.Batch) { out = b.Floats(slot.Idx); b.Null[slot.Null] = nil }
		parse = func(j int, raw []byte) { out[j] = ParseFloat(raw) }
	case types.KindBool:
		if slot.Class != vbuf.ClassBool {
			return nil, nil, fmt.Errorf("slot class mismatch for bool column")
		}
		var out []bool
		bind = func(b *vbuf.Batch) { out = b.Bools(slot.Idx); b.Null[slot.Null] = nil }
		parse = func(j int, raw []byte) {
			out[j] = len(raw) > 0 && (raw[0] == 't' || raw[0] == 'T' || raw[0] == '1')
		}
	case types.KindString:
		if slot.Class != vbuf.ClassString {
			return nil, nil, fmt.Errorf("slot class mismatch for string column")
		}
		var out []string
		bind = func(b *vbuf.Batch) { out = b.Strs(slot.Idx); b.Null[slot.Null] = nil }
		parse = func(j int, raw []byte) { out[j] = string(raw) }
	default:
		return nil, nil, fmt.Errorf("unsupported CSV column type %s", t)
	}
	return bind, parse, nil
}

// CompileBatchScan implements plugin.BatchScanner over the fixed-width and
// structural-index fast paths: the same field navigation as CompileScan,
// but parses land in batch columns and consume fires once per batch.
// Quote-bearing files and whole-record requests return ErrUnsupported (the
// executor falls back to BatchFromTuples over the tuple scan, which keeps
// the quote-aware navigation).
func (p *Plugin) CompileBatchScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.BatchRunFunc, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	if st.hasQuotes {
		return nil, plugin.ErrUnsupported
	}
	extracts := make([]batchExtract, 0, len(spec.Fields))
	for _, req := range spec.Fields {
		if len(req.Path) != 1 {
			return nil, plugin.ErrUnsupported
		}
		col := st.schema.Index(req.Path[0])
		if col < 0 {
			return nil, fmt.Errorf("csvpg: dataset %q has no column %q", ds.Name, req.Path[0])
		}
		bind, parse, err := batchParserFor(req.Slot, req.Type)
		if err != nil {
			return nil, fmt.Errorf("csvpg: column %q: %w", req.Path[0], err)
		}
		extracts = append(extracts, batchExtract{col: col, bind: bind, parse: parse})
	}
	sort.Slice(extracts, func(i, j int) bool { return extracts[i].col < extracts[j].col })

	data := st.data
	delim := st.delim
	oid := spec.OIDSlot
	cc := spec.Cancel
	fe := fieldEnd
	if st.hasCR {
		fe = fieldEndCR
	}
	lo, hi := int64(0), st.rows
	if spec.Morsel != nil {
		lo, hi = spec.Morsel.Start, spec.Morsel.End
		if lo < 0 {
			lo = 0
		}
		if hi > st.rows {
			hi = st.rows
		}
	}
	nRows := hi - lo
	if nRows < 0 {
		nRows = 0
	}
	fieldsPerRow := int64(len(extracts))

	// finishBatch stamps the batch's row range and OID column, then fires
	// consume — shared tail of both loop variants.
	finishBatch := func(b *vbuf.Batch, blk, blkEnd int64, consume func() error) error {
		b.Base = blk
		if oid != nil {
			out := b.Ints(oid.Idx)
			for j := range int(blkEnd - blk) {
				out[j] = blk + int64(j)
			}
			b.Null[oid.Null] = nil
		}
		b.ResetSel(int(blkEnd - blk))
		return consume()
	}

	var run plugin.BatchRunFunc
	var bytesDelta, jumpsDelta int64
	if st.fixed {
		offs := st.fieldOff
		rowLen := st.rowLen
		base0 := int32(0)
		if len(st.rowStarts) > 0 {
			base0 = st.rowStarts[0]
		}
		bytesDelta = nRows * int64(rowLen)
		run = func(_ *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
			for blk := lo; blk < hi; blk += vbuf.BatchSize {
				if cc.Cancelled() {
					return cc.Err()
				}
				blkEnd := blk + vbuf.BatchSize
				if blkEnd > hi {
					blkEnd = hi
				}
				for i := range extracts {
					extracts[i].bind(b)
				}
				for row := blk; row < blkEnd; row++ {
					base := base0 + int32(row)*rowLen
					j := int(row - blk)
					for i := range extracts {
						e := &extracts[i]
						start := base + offs[e.col]
						end := fe(data, int(start), delim)
						e.parse(j, data[start:end])
					}
				}
				if err := finishBatch(b, blk, blkEnd, consume); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		stride := st.stride
		nSampled := st.nSampled
		rowStarts := st.rowStarts
		fieldPos := st.fieldPos
		var jumpsPerRow int64
		{
			curField := 0
			for i := range extracts {
				e := &extracts[i]
				if k := e.col / stride; k > 0 && k*stride > curField {
					if k > nSampled {
						k = nSampled
					}
					curField = k * stride
					jumpsPerRow++
				}
				if e.col > curField {
					curField = e.col
				}
			}
		}
		jumpsDelta = nRows * jumpsPerRow
		if nRows > 0 && len(rowStarts) > 0 {
			end := int64(len(data))
			if hi < st.rows {
				end = int64(rowStarts[hi])
			}
			bytesDelta = end - int64(rowStarts[lo])
		}
		name := ds.Name
		run = func(_ *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
			for blk := lo; blk < hi; blk += vbuf.BatchSize {
				if cc.Cancelled() {
					return cc.Err()
				}
				blkEnd := blk + vbuf.BatchSize
				if blkEnd > hi {
					blkEnd = hi
				}
				for i := range extracts {
					extracts[i].bind(b)
				}
				for row := blk; row < blkEnd; row++ {
					j := int(row - blk)
					curField := 0
					curPos := int(rowStarts[row])
					for i := range extracts {
						e := &extracts[i]
						if k := e.col / stride; k > 0 && k*stride > curField {
							if k > nSampled {
								k = nSampled
							}
							curField = k * stride
							curPos = int(fieldPos[row*int64(nSampled)+int64(k-1)])
						}
						for curField < e.col {
							nd := bytes.IndexByte(data[curPos:], delim)
							if nd < 0 {
								return fmt.Errorf("csvpg: %s row %d: missing column %d", name, row, e.col)
							}
							curPos += nd + 1
							curField++
						}
						end := fe(data, curPos, delim)
						e.parse(j, data[curPos:end])
					}
				}
				if err := finishBatch(b, blk, blkEnd, consume); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if prof := spec.Prof; prof != nil {
		inner := run
		fieldsDelta := nRows * fieldsPerRow
		run = func(regs *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
			prof.BytesRead += bytesDelta
			prof.FieldsParsed += fieldsDelta
			prof.IndexHits += jumpsDelta
			return inner(regs, b, consume)
		}
	}
	return run, nil
}
