package csvpg

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

func openCSV(t *testing.T, data string, schema *types.RecordType, opts plugin.Options) (*Plugin, *plugin.Dataset, *plugin.Env) {
	t.Helper()
	mem := storage.NewManager(0)
	mem.PutFile("mem://t.csv", []byte(data))
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore(), SampleEvery: 1}
	p := New()
	ds := &plugin.Dataset{Name: "t", Path: "mem://t.csv", Format: "csv", Schema: schema, Opts: opts}
	if err := p.Open(env, ds); err != nil {
		t.Fatalf("open: %v", err)
	}
	return p, ds, env
}

// scanAll compiles a scan for the given columns and collects the values.
func scanAll(t *testing.T, p *Plugin, ds *plugin.Dataset, cols ...string) [][]types.Value {
	t.Helper()
	var alloc vbuf.Alloc
	schema := p.Schema(ds)
	var reqs []plugin.FieldReq
	var slots []vbuf.Slot
	for _, c := range cols {
		ft, ok := schema.Lookup(c)
		if !ok {
			t.Fatalf("no column %q", c)
		}
		s := alloc.ForType(ft)
		slots = append(slots, s)
		reqs = append(reqs, plugin.FieldReq{Path: []string{c}, Slot: s, Type: ft})
	}
	oid := alloc.Int()
	run, err := p.CompileScan(ds, plugin.ScanSpec{Fields: reqs, OIDSlot: &oid})
	if err != nil {
		t.Fatalf("compile scan: %v", err)
	}
	regs := vbuf.NewRegs(&alloc)
	var out [][]types.Value
	if err := run(regs, func() error {
		row := make([]types.Value, len(slots))
		for i, s := range slots {
			row[i] = regs.Get(s)
		}
		out = append(out, row)
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

var testSchema = types.NewRecordType(
	types.Field{Name: "id", Type: types.Int},
	types.Field{Name: "name", Type: types.String},
	types.Field{Name: "score", Type: types.Float},
	types.Field{Name: "ok", Type: types.Bool},
)

const testData = "1,alpha,1.5,true\n22,beta,2.25,false\n333,gamma,-3.5,1\n"

func TestScanAllColumns(t *testing.T) {
	p, ds, _ := openCSV(t, testData, testSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "id", "name", "score", "ok")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0].AsInt() != 22 || rows[1][1].S != "beta" || rows[1][2].F != 2.25 || rows[1][3].Bool() {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][2].F != -3.5 || !rows[2][3].Bool() {
		t.Errorf("row 2 = %v", rows[2])
	}
}

func TestScanSubsetAndOrder(t *testing.T) {
	// Requesting columns out of order exercises the in-row cursor.
	p, ds, _ := openCSV(t, testData, testSchema, plugin.Options{})
	rows := scanAll(t, p, ds, "score", "id")
	if rows[0][0].F != 1.5 || rows[0][1].AsInt() != 1 {
		t.Errorf("row 0 = %v", rows[0])
	}
}

func TestFixedWidthFastPath(t *testing.T) {
	// All rows identical widths and offsets → deterministic layout, index
	// dropped.
	data := "11,aa,1.5\n22,bb,2.5\n33,cc,3.5\n"
	schema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "b", Type: types.String},
		types.Field{Name: "c", Type: types.Float},
	)
	p, ds, _ := openCSV(t, data, schema, plugin.Options{})
	st := ds.State.(*state)
	if !st.fixed {
		t.Fatal("expected fixed-width detection")
	}
	if st.fieldPos != nil {
		t.Error("fixed-width should drop the positional index")
	}
	rows := scanAll(t, p, ds, "c", "a")
	if rows[2][0].F != 3.5 || rows[2][1].AsInt() != 33 {
		t.Errorf("rows = %v", rows)
	}
}

func TestVariableWidthUsesIndex(t *testing.T) {
	data := "1,x,1.5\n22,yy,2.5\n333,zzz,3.5\n"
	schema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "b", Type: types.String},
		types.Field{Name: "c", Type: types.Float},
	)
	p, ds, _ := openCSV(t, data, schema, plugin.Options{IndexStride: 2})
	st := ds.State.(*state)
	if st.fixed {
		t.Fatal("variable rows misdetected as fixed")
	}
	if st.nSampled != 1 { // fields at index 2 sampled
		t.Fatalf("nSampled = %d", st.nSampled)
	}
	rows := scanAll(t, p, ds, "c")
	if rows[0][0].F != 1.5 || rows[1][0].F != 2.5 || rows[2][0].F != 3.5 {
		t.Errorf("rows = %v", rows)
	}
}

func TestIndexStrideSweepSameResults(t *testing.T) {
	// Property: the scan result must be independent of the index stride.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,%s,%d.25,%d,%d,%d\n", i, strings.Repeat("x", i%7+1), i*3, i%5, i*2, i*7)
	}
	schema := types.NewRecordType(
		types.Field{Name: "f0", Type: types.Int},
		types.Field{Name: "f1", Type: types.String},
		types.Field{Name: "f2", Type: types.Float},
		types.Field{Name: "f3", Type: types.Int},
		types.Field{Name: "f4", Type: types.Int},
		types.Field{Name: "f5", Type: types.Int},
	)
	var ref [][]types.Value
	for _, stride := range []int{1, 2, 3, 8, 100} {
		p, ds, _ := openCSV(t, sb.String(), schema, plugin.Options{IndexStride: stride})
		rows := scanAll(t, p, ds, "f5", "f2", "f0")
		if ref == nil {
			ref = rows
			continue
		}
		for i := range rows {
			for j := range rows[i] {
				if types.Compare(rows[i][j], ref[i][j]) != 0 {
					t.Fatalf("stride %d row %d col %d: %s != %s", stride, i, j, rows[i][j], ref[i][j])
				}
			}
		}
	}
}

func TestHeaderAndInference(t *testing.T) {
	data := "id,label,ratio\n1,aa,0.5\n2,bb,1.5\n"
	p, ds, _ := openCSV(t, data, nil, plugin.Options{Header: true})
	schema := p.Schema(ds)
	if schema.Index("label") != 1 {
		t.Fatalf("schema = %v", schema)
	}
	if ft, _ := schema.Lookup("id"); !ft.Equal(types.Int) {
		t.Errorf("id type = %v", ft)
	}
	if ft, _ := schema.Lookup("ratio"); !ft.Equal(types.Float) {
		t.Errorf("ratio type = %v", ft)
	}
	if p.Cardinality(ds) != 2 {
		t.Errorf("rows = %d", p.Cardinality(ds))
	}
}

func TestStatsSampling(t *testing.T) {
	_, _, env := openCSV(t, testData, testSchema, plugin.Options{})
	tbl, ok := env.Stats.Lookup("t")
	if !ok {
		t.Fatal("no stats gathered")
	}
	if tbl.Rows != 3 {
		t.Errorf("stats rows = %d", tbl.Rows)
	}
	c := tbl.Cols["id"]
	if c == nil || !c.HasRange || c.Min != 1 || c.Max != 333 {
		t.Errorf("id stats = %+v", c)
	}
}

func TestSchemaMismatch(t *testing.T) {
	mem := storage.NewManager(0)
	mem.PutFile("mem://t.csv", []byte("1,2\n"))
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore()}
	ds := &plugin.Dataset{Name: "t", Path: "mem://t.csv", Format: "csv", Schema: testSchema}
	if err := New().Open(env, ds); err == nil {
		t.Error("column count mismatch should fail")
	}
}

func TestErrors(t *testing.T) {
	p, ds, _ := openCSV(t, testData, testSchema, plugin.Options{})
	var alloc vbuf.Alloc
	s := alloc.Int()
	if _, err := p.CompileScan(ds, plugin.ScanSpec{Fields: []plugin.FieldReq{
		{Path: []string{"missing"}, Slot: s, Type: types.Int},
	}}); err == nil {
		t.Error("missing column should fail at compile")
	}
	if _, err := p.CompileScan(ds, plugin.ScanSpec{Fields: []plugin.FieldReq{
		{Path: []string{"a", "b"}, Slot: s, Type: types.Int},
	}}); err == nil {
		t.Error("nested path should fail on flat CSV")
	}
	if _, err := p.CompileUnnest(ds, plugin.UnnestSpec{}); err != plugin.ErrUnsupported {
		t.Error("unnest should be unsupported")
	}
	unopened := &plugin.Dataset{Name: "x"}
	if _, err := p.CompileScan(unopened, plugin.ScanSpec{}); err == nil {
		t.Error("unopened dataset should fail")
	}
}

func TestReadRows(t *testing.T) {
	p, ds, _ := openCSV(t, testData, testSchema, plugin.Options{})
	rows, err := p.ReadRows(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if v, _ := rows[2].Field("name"); v.S != "gamma" {
		t.Errorf("row 2 = %s", rows[2])
	}
}

func TestParseIntFloatProperty(t *testing.T) {
	f := func(v int64) bool {
		return ParseInt([]byte(fmt.Sprintf("%d", v))) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A malformed row with data after a closing quote must decode to at most
// the row's own bytes — the recovery path once emitted the dequoted prefix
// AND the whole row verbatim (found by FuzzSplitRecordNoPanic).
func TestSplitRecordMalformedTrailingData(t *testing.T) {
	fields := splitRecord([]byte(`"0"0`), '>')
	if len(fields) != 1 || string(fields[0]) != `"0"0` {
		t.Fatalf("splitRecord(%q) = %q, want the whole row as one verbatim field", `"0"0`, fields)
	}
}
