package csvpg

import (
	"bytes"
	"testing"
)

// encodeField quotes a raw field per RFC 4180 exactly like a writer would:
// fields containing the delimiter, a quote, or a newline are wrapped in
// quotes with inner quotes doubled.
func encodeField(field []byte, delim byte) []byte {
	// Byte-wise scan: ContainsAny would decode non-ASCII delimiters as runes.
	needsQuote := false
	for _, c := range field {
		if c == delim || c == '"' || c == '\n' || c == '\r' {
			needsQuote = true
			break
		}
	}
	if !needsQuote {
		return field
	}
	out := []byte{'"'}
	for _, c := range field {
		if c == '"' {
			out = append(out, '"')
		}
		out = append(out, c)
	}
	return append(out, '"')
}

// FuzzSplitRecordRoundTrip encodes two arbitrary raw fields as an RFC-4180
// record and checks that splitRecord decodes exactly the original fields —
// quoted delimiters, embedded newlines, doubled quotes, and all — and that
// recordEnd does not stop inside the quoted region.
func FuzzSplitRecordRoundTrip(f *testing.F) {
	f.Add([]byte("plain"), []byte("with,comma"), byte(','))
	f.Add([]byte(`say "hi"`), []byte("line\nbreak"), byte(','))
	f.Add([]byte("crlf\r\ninside"), []byte(""), byte('|'))
	f.Add([]byte(`""`), []byte(`"`), byte(';'))
	f.Add([]byte("\x00nul"), []byte("ütf✓"), byte(','))
	f.Fuzz(func(t *testing.T, a, b []byte, delim byte) {
		switch delim {
		case '"', '\n', '\r':
			return // not a usable CSV delimiter
		}
		row := append(append(append([]byte(nil), encodeField(a, delim)...), delim), encodeField(b, delim)...)

		fields := splitRecord(row, delim)
		if len(fields) != 2 {
			t.Fatalf("splitRecord(%q, %q) = %d fields, want 2", row, delim, len(fields))
		}
		if !bytes.Equal(fields[0], a) || !bytes.Equal(fields[1], b) {
			t.Fatalf("splitRecord(%q, %q) = %q, want [%q %q]", row, delim, fields, a, b)
		}

		// A terminated record must end exactly at its terminator, newlines
		// inside quoted fields notwithstanding.
		data := append(append([]byte(nil), row...), '\n')
		if end := recordEnd(data, 0); end != len(row) {
			t.Fatalf("recordEnd(%q) = %d, want %d", data, end, len(row))
		}
	})
}

// FuzzSplitRecordNoPanic feeds raw (possibly malformed) bytes through the
// record scanners: they must never panic or return out-of-bounds slices,
// whatever the quoting damage.
func FuzzSplitRecordNoPanic(f *testing.F) {
	f.Add([]byte(`"unterminated`), byte(','))
	f.Add([]byte(`a,"b"x,c`), byte(','))
	f.Add([]byte("\"\"\""), byte('|'))
	f.Add([]byte{}, byte(','))
	f.Add([]byte(`"0"0`), byte('>')) // once double-emitted the quoted prefix
	f.Fuzz(func(t *testing.T, row []byte, delim byte) {
		if delim == '"' || delim == '\n' || delim == '\r' {
			return
		}
		fields := splitRecord(row, delim)
		total := 0
		for _, fd := range fields {
			total += len(fd)
		}
		if total > len(row) {
			t.Fatalf("splitRecord(%q) decoded %d bytes from a %d-byte row", row, total, len(row))
		}
		if end := recordEnd(row, 0); end < 0 || end > len(row) {
			t.Fatalf("recordEnd(%q) = %d out of range", row, end)
		}
	})
}
