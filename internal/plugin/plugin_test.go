package plugin

import "testing"

// tile asserts morsels are non-empty, contiguous, ordered, and cover
// exactly [0, rows).
func tile(t *testing.T, ms []Morsel, rows int64) {
	t.Helper()
	var pos int64
	for i, m := range ms {
		if m.Start != pos {
			t.Fatalf("morsel %d starts at %d, want %d (morsels %v)", i, m.Start, pos, ms)
		}
		if m.Rows() <= 0 {
			t.Fatalf("morsel %d is empty: %v", i, m)
		}
		pos = m.End
	}
	if pos != rows {
		t.Fatalf("morsels end at %d, want %d (morsels %v)", pos, rows, ms)
	}
}

func TestSplitRows(t *testing.T) {
	for _, tc := range []struct {
		rows  int64
		parts int
		want  int
	}{
		{100, 4, 4},
		{10, 3, 3},
		{5, 8, 5}, // never more morsels than rows
		{1, 4, 1},
		{7, 1, 1},
	} {
		ms := SplitRows(tc.rows, tc.parts)
		if len(ms) != tc.want {
			t.Errorf("SplitRows(%d,%d) = %d morsels, want %d", tc.rows, tc.parts, len(ms), tc.want)
		}
		tile(t, ms, tc.rows)
	}
	if ms := SplitRows(0, 4); ms != nil {
		t.Errorf("SplitRows(0,4) = %v, want nil", ms)
	}
}

func TestSplitByStartsByteBalance(t *testing.T) {
	// 10 records: one huge (1000 bytes) followed by nine tiny (10 bytes).
	starts := make([]int32, 10)
	starts[0] = 0
	pos := int32(1000)
	for i := 1; i < 10; i++ {
		starts[i] = pos
		pos += 10
	}
	total := int64(pos)
	ms := SplitByStarts(starts, total, 2)
	tile(t, ms, 10)
	// The byte midpoint falls inside record 0, so the cut snaps to record 1:
	// worker 0 gets the huge record alone, worker 1 the nine tiny ones.
	if len(ms) != 2 || ms[0].End != 1 {
		t.Fatalf("morsels = %v, want [0,1) [1,10)", ms)
	}

	// Uniform records split evenly.
	uni := make([]uint32, 100)
	for i := range uni {
		uni[i] = uint32(i * 8)
	}
	ms2 := SplitByStarts(uni, 800, 4)
	tile(t, ms2, 100)
	if len(ms2) != 4 {
		t.Fatalf("uniform split = %v, want 4 morsels", ms2)
	}
	for _, m := range ms2 {
		if m.Rows() != 25 {
			t.Fatalf("uniform morsels should hold 25 rows each, got %v", ms2)
		}
	}
}

func TestSplitByStartsDegenerate(t *testing.T) {
	tile(t, SplitByStarts([]int32{0}, 50, 4), 1)
	tile(t, SplitByStarts([]uint32{0, 10, 20}, 30, 8), 3)
}
