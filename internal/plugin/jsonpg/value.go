package jsonpg

import (
	"fmt"

	"proteus/internal/fastparse"
	"proteus/internal/types"
)

// parseValue parses any JSON value starting at pos into a boxed
// types.Value, returning the position just past it. Numbers become Int when
// the literal has no fraction or exponent, Float otherwise; arrays become
// lists. This is the general-purpose decode used for schema inference,
// ReadRows, and boxed (nested) slot extraction.
func parseValue(data []byte, pos int) (types.Value, int, error) {
	pos = skipWS(data, pos)
	if pos >= len(data) {
		return types.Value{}, 0, fmt.Errorf("offset %d: missing value", pos)
	}
	switch data[pos] {
	case '{':
		return parseObjectValue(data, pos)
	case '[':
		return parseArrayValue(data, pos)
	case '"':
		end, err := scanString(data, pos)
		if err != nil {
			return types.Value{}, 0, err
		}
		return types.StringValue(unescape(data[pos+1 : end-1])), end, nil
	case 't':
		if pos+4 <= len(data) && string(data[pos:pos+4]) == "true" {
			return types.BoolValue(true), pos + 4, nil
		}
		return types.Value{}, 0, fmt.Errorf("offset %d: malformed literal", pos)
	case 'f':
		if pos+5 <= len(data) && string(data[pos:pos+5]) == "false" {
			return types.BoolValue(false), pos + 5, nil
		}
		return types.Value{}, 0, fmt.Errorf("offset %d: malformed literal", pos)
	case 'n':
		if pos+4 <= len(data) && string(data[pos:pos+4]) == "null" {
			return types.NullValue(), pos + 4, nil
		}
		return types.Value{}, 0, fmt.Errorf("offset %d: malformed literal", pos)
	default:
		end, err := scanScalar(data, pos)
		if err != nil {
			return types.Value{}, 0, err
		}
		raw := data[pos:end]
		if looksInt(raw) {
			return types.IntValue(fastparse.Int(raw)), end, nil
		}
		return types.FloatValue(fastparse.Float(raw)), end, nil
	}
}

func parseObjectValue(data []byte, pos int) (types.Value, int, error) {
	pos++ // '{'
	var names []string
	var vals []types.Value
	first := true
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			return types.Value{}, 0, fmt.Errorf("offset %d: unterminated object", pos)
		}
		if data[pos] == '}' {
			return types.RecordValue(names, vals), pos + 1, nil
		}
		if !first {
			if data[pos] != ',' {
				return types.Value{}, 0, fmt.Errorf("offset %d: expected ',' in object", pos)
			}
			pos = skipWS(data, pos+1)
		}
		first = false
		if pos >= len(data) || data[pos] != '"' {
			return types.Value{}, 0, fmt.Errorf("offset %d: expected field name", pos)
		}
		nameEnd, err := scanString(data, pos)
		if err != nil {
			return types.Value{}, 0, err
		}
		name := unescape(data[pos+1 : nameEnd-1])
		pos = skipWS(data, nameEnd)
		if pos >= len(data) || data[pos] != ':' {
			return types.Value{}, 0, fmt.Errorf("offset %d: expected ':'", pos)
		}
		v, end, err := parseValue(data, pos+1)
		if err != nil {
			return types.Value{}, 0, err
		}
		names = append(names, name)
		vals = append(vals, v)
		pos = end
	}
}

func parseArrayValue(data []byte, pos int) (types.Value, int, error) {
	pos++ // '['
	var elems []types.Value
	first := true
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			return types.Value{}, 0, fmt.Errorf("offset %d: unterminated array", pos)
		}
		if data[pos] == ']' {
			return types.ListValue(elems...), pos + 1, nil
		}
		if !first {
			if data[pos] != ',' {
				return types.Value{}, 0, fmt.Errorf("offset %d: expected ',' in array", pos)
			}
			pos++
		}
		first = false
		v, end, err := parseValue(data, pos)
		if err != nil {
			return types.Value{}, 0, err
		}
		elems = append(elems, v)
		pos = end
	}
}

// valueOfEntry boxes one Level-1 entry's token.
func valueOfEntry(data []byte, e entry) (types.Value, error) {
	switch e.typ {
	case tokNumber:
		raw := data[e.start:e.end]
		if looksInt(raw) {
			return types.IntValue(fastparse.Int(raw)), nil
		}
		return types.FloatValue(fastparse.Float(raw)), nil
	case tokString:
		return types.StringValue(unescape(data[e.start:e.end])), nil
	case tokTrue:
		return types.BoolValue(true), nil
	case tokFalse:
		return types.BoolValue(false), nil
	case tokNull:
		return types.NullValue(), nil
	default:
		v, _, err := parseValue(data, int(e.start))
		return v, err
	}
}
