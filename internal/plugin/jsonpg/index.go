// Package jsonpg is the JSON input plug-in (§5.2, Figure 4). On the first
// (cold) access to a JSON dataset it validates the input and builds a
// two-level structural index:
//
//   - Level 1 stores, per object, one entry per named field token — its
//     value's byte range in the file and its type — at every nesting depth
//     except inside arrays (array contents are left to the Unnest code
//     path, which applies the same action to every element and therefore
//     needs no per-element index).
//   - Level 0 is an associative array mapping field paths (including
//     nested-record paths like "c.d.d1") to their Level-1 entry ordinal,
//     giving deterministic lookups despite JSON's free field order.
//
// If every object turns out to have the same fields in the same order
// (machine-generated data), the plug-in drops Level 0 and keeps a single
// shared path→ordinal table — the "deterministic" compressed index.
package jsonpg

import (
	"fmt"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/types"
)

// Token types recorded in Level-1 entries.
const (
	tokNumber byte = iota
	tokString
	tokTrue
	tokFalse
	tokNull
	tokObject
	tokArray
)

// entry is one Level-1 token entry: the byte range of a field's value and
// its type. For strings the range excludes the quotes.
type entry struct {
	start, end uint32
	typ        byte
}

type state struct {
	data   []byte
	schema *types.RecordType
	nObjs  int64

	// objStart holds the byte offset of each object's opening brace.
	objStart []uint32

	// Level 1.
	entries  []entry
	entryOff []uint32 // per object: entries[entryOff[i]:entryOff[i+1]]

	// Field path dictionary: dotted path → field id.
	fieldIDs map[string]int
	paths    []string // id → path

	// Level 0: per object, fieldID → entry ordinal within the object
	// (-1 when absent). Laid out as a matrix nObjs×len(paths).
	level0 []int32

	// Deterministic mode: all objects share the same field sequence, so a
	// single shared table replaces Level 0.
	deterministic bool
	detOrd        []int32 // fieldID → ordinal

	// Sequential-lookup ablation (DisableLevel0): per-object sequential
	// comparison over (fieldID, ordinal) pairs instead of associative lookup.
	noLevel0 bool
	pairs    []int32
	pairOff  []uint32
}

// IndexBytes reports the memory footprint of the structural index, used by
// experiments that compare index size to file size (§7.1).
func (st *state) IndexBytes() int64 {
	n := int64(len(st.entries))*9 + int64(len(st.entryOff))*4 + int64(len(st.objStart))*4
	n += int64(len(st.level0)) * 4
	n += int64(len(st.detOrd)) * 4
	n += int64(len(st.pairs))*4 + int64(len(st.pairOff))*4
	return n
}

// indexBuilder accumulates the structural index in one validating pass.
type indexBuilder struct {
	data     []byte
	st       *state
	objPairs []int32 // scratch: interleaved (fieldID, ordinal) for current object
	det      bool    // still deterministic so far
	detSeq   []int32 // field-id sequence of the first object
	sample   int     // stats sampling stride
	tbl      *stats.Table
}

func (p *Plugin) buildIndex(env *plugin.Env, ds *plugin.Dataset, data []byte) (*state, error) {
	st := &state{
		data:     data,
		fieldIDs: map[string]int{},
		noLevel0: ds.Opts.DisableLevel0,
	}
	b := &indexBuilder{data: data, st: st, det: true, sample: env.SampleEvery, tbl: env.Stats.Table(ds.Name)}

	// Temporary per-object pair lists; the Level-0 matrix is materialized
	// once the field dictionary is complete.
	var allPairs [][]int32

	pos := skipWS(data, 0)
	topArray := false
	arrayClosed := false
	if pos < len(data) && data[pos] == '[' {
		topArray = true
		pos++
	}
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			break
		}
		if topArray {
			if data[pos] == ']' {
				pos++
				arrayClosed = true
				break
			}
			if data[pos] == ',' {
				pos = skipWS(data, pos+1)
			}
		}
		if pos >= len(data) {
			break
		}
		if data[pos] != '{' {
			return nil, fmt.Errorf("jsonpg: %s: offset %d: expected '{', found %q", ds.Name, pos, data[pos])
		}
		st.entryOff = append(st.entryOff, uint32(len(st.entries)))
		st.objStart = append(st.objStart, uint32(pos))
		b.objPairs = b.objPairs[:0]
		end, err := b.object(pos, "")
		if err != nil {
			return nil, fmt.Errorf("jsonpg: %s: %w", ds.Name, err)
		}
		pos = end
		if b.det {
			seq := make([]int32, 0, len(b.objPairs)/2)
			for i := 0; i < len(b.objPairs); i += 2 {
				seq = append(seq, b.objPairs[i])
			}
			if st.nObjs == 0 {
				b.detSeq = seq
			} else if !eqInt32(seq, b.detSeq) {
				b.det = false
			}
		}
		allPairs = append(allPairs, append([]int32(nil), b.objPairs...))
		if b.sample > 0 && st.nObjs%int64(b.sample) == 0 {
			b.sampleObject(int(st.nObjs))
		}
		st.nObjs++
	}
	if topArray && !arrayClosed {
		return nil, fmt.Errorf("jsonpg: %s: unterminated top-level array", ds.Name)
	}
	st.entryOff = append(st.entryOff, uint32(len(st.entries)))
	b.tbl.Rows = st.nObjs

	st.deterministic = b.det && st.nObjs > 0 && !ds.Opts.DisableDeterministic && !st.noLevel0
	switch {
	case st.deterministic:
		// Drop Level 0: one shared fieldID → ordinal table suffices.
		st.detOrd = make([]int32, len(st.paths))
		for i := range st.detOrd {
			st.detOrd[i] = -1
		}
		for i := 0; i < len(allPairs[0]); i += 2 {
			st.detOrd[allPairs[0][i]] = allPairs[0][i+1]
		}
	case st.noLevel0:
		// Ablation: no associative lookup; every field access scans the
		// object's (fieldID, ordinal) pairs sequentially, mimicking the
		// label-comparison walk the paper describes for index-without-Level-0.
		for _, pairsOfObj := range allPairs {
			st.pairOff = append(st.pairOff, uint32(len(st.pairs)))
			st.pairs = append(st.pairs, pairsOfObj...)
		}
		st.pairOff = append(st.pairOff, uint32(len(st.pairs)))
	default:
		st.level0 = buildLevel0(allPairs, len(st.paths))
	}
	return st, nil
}

func buildLevel0(allPairs [][]int32, nFields int) []int32 {
	m := make([]int32, len(allPairs)*nFields)
	for i := range m {
		m[i] = -1
	}
	for obj, pairs := range allPairs {
		base := obj * nFields
		for i := 0; i < len(pairs); i += 2 {
			m[base+int(pairs[i])] = pairs[i+1]
		}
	}
	return m
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fieldID interns a dotted field path.
func (b *indexBuilder) fieldID(path string) int {
	if id, ok := b.st.fieldIDs[path]; ok {
		return id
	}
	id := len(b.st.paths)
	b.st.fieldIDs[path] = id
	b.st.paths = append(b.st.paths, path)
	// A path first seen after object 0 breaks determinism.
	if b.st.nObjs > 0 {
		b.det = false
	}
	return id
}

// object validates and indexes one JSON object starting at pos ('{'),
// registering entries for its fields under the dotted prefix. It returns
// the position just past the closing brace.
func (b *indexBuilder) object(pos int, prefix string) (int, error) {
	data := b.data
	pos++ // consume '{'
	first := true
	for {
		pos = skipWS(data, pos)
		if pos >= len(data) {
			return 0, fmt.Errorf("offset %d: unterminated object", pos)
		}
		if data[pos] == '}' {
			return pos + 1, nil
		}
		if !first {
			if data[pos] != ',' {
				return 0, fmt.Errorf("offset %d: expected ',' in object, found %q", pos, data[pos])
			}
			pos = skipWS(data, pos+1)
		}
		first = false
		if pos >= len(data) || data[pos] != '"' {
			return 0, fmt.Errorf("offset %d: expected field name", pos)
		}
		nameStart := pos + 1
		nameEnd, err := scanString(data, pos)
		if err != nil {
			return 0, err
		}
		name := string(data[nameStart : nameEnd-1])
		pos = skipWS(data, nameEnd)
		if pos >= len(data) || data[pos] != ':' {
			return 0, fmt.Errorf("offset %d: expected ':' after field name", pos)
		}
		pos = skipWS(data, pos+1)
		path := name
		if prefix != "" {
			path = prefix + "." + name
		}
		valStart := pos
		var typ byte
		switch {
		case pos >= len(data):
			return 0, fmt.Errorf("offset %d: missing value", pos)
		case data[pos] == '{':
			typ = tokObject
		case data[pos] == '[':
			typ = tokArray
		case data[pos] == '"':
			typ = tokString
		case data[pos] == 't':
			typ = tokTrue
		case data[pos] == 'f':
			typ = tokFalse
		case data[pos] == 'n':
			typ = tokNull
		default:
			typ = tokNumber
		}
		// Record the entry ordinal before descending so nested-record
		// sub-entries come after their parent (document order).
		ord := int32(uint32(len(b.st.entries)) - b.st.entryOff[len(b.st.entryOff)-1])
		fid := b.fieldID(path)
		b.objPairs = append(b.objPairs, int32(fid), ord)

		switch typ {
		case tokObject:
			// Placeholder entry; patched with the real end after descent.
			b.st.entries = append(b.st.entries, entry{start: uint32(valStart), typ: typ})
			idx := len(b.st.entries) - 1
			end, err := b.object(pos, path)
			if err != nil {
				return 0, err
			}
			b.st.entries[idx].end = uint32(end)
			pos = end
		case tokArray:
			end, err := scanValue(data, pos)
			if err != nil {
				return 0, err
			}
			b.st.entries = append(b.st.entries, entry{start: uint32(valStart), end: uint32(end), typ: typ})
			pos = end
		case tokString:
			end, err := scanString(data, pos)
			if err != nil {
				return 0, err
			}
			// Store the range without the quotes.
			b.st.entries = append(b.st.entries, entry{start: uint32(valStart + 1), end: uint32(end - 1), typ: typ})
			pos = end
		default:
			end, err := scanScalar(data, pos)
			if err != nil {
				return 0, err
			}
			b.st.entries = append(b.st.entries, entry{start: uint32(valStart), end: uint32(end), typ: typ})
			pos = end
		}
	}
}

// sampleObject feeds the just-indexed object's numeric fields into the
// statistics table (cold-access sampling).
func (b *indexBuilder) sampleObject(obj int) {
	st := b.st
	lo := st.entryOff[obj]
	hi := uint32(len(st.entries))
	// Pairs of the current object are still in objPairs.
	for i := 0; i < len(b.objPairs); i += 2 {
		fid, ord := b.objPairs[i], b.objPairs[i+1]
		e := st.entries[lo+uint32(ord)]
		if e.typ != tokNumber || lo+uint32(ord) >= hi {
			continue
		}
		v := parseNumber(st.data[e.start:e.end])
		b.tbl.Col(st.paths[fid]).Observe(v)
	}
}
