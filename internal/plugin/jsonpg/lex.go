package jsonpg

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"proteus/internal/fastparse"
)

// skipWS advances past JSON whitespace.
func skipWS(data []byte, pos int) int {
	for pos < len(data) {
		switch data[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

// scanString scans a JSON string starting at the opening quote and returns
// the position just past the closing quote.
func scanString(data []byte, pos int) (int, error) {
	if pos >= len(data) || data[pos] != '"' {
		return 0, fmt.Errorf("offset %d: expected string", pos)
	}
	i := pos + 1
	for i < len(data) {
		switch data[i] {
		case '\\':
			i += 2
		case '"':
			return i + 1, nil
		default:
			i++
		}
	}
	return 0, fmt.Errorf("offset %d: unterminated string", pos)
}

// scanScalar scans a number / true / false / null and returns the position
// just past it.
func scanScalar(data []byte, pos int) (int, error) {
	i := pos
	for i < len(data) {
		switch data[i] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
			if i == pos {
				return 0, fmt.Errorf("offset %d: empty scalar", pos)
			}
			return i, nil
		default:
			i++
		}
	}
	return i, nil
}

// scanValue scans any JSON value (used for arrays, whose contents are not
// indexed) and returns the position just past it.
func scanValue(data []byte, pos int) (int, error) {
	pos = skipWS(data, pos)
	if pos >= len(data) {
		return 0, fmt.Errorf("offset %d: missing value", pos)
	}
	switch data[pos] {
	case '"':
		return scanString(data, pos)
	case '{':
		return scanContainer(data, pos, '{', '}')
	case '[':
		return scanContainer(data, pos, '[', ']')
	default:
		return scanScalar(data, pos)
	}
}

// scanContainer skips a balanced {...} or [...] while respecting strings.
func scanContainer(data []byte, pos int, open, close byte) (int, error) {
	depth := 0
	i := pos
	for i < len(data) {
		switch data[i] {
		case '"':
			end, err := scanString(data, i)
			if err != nil {
				return 0, err
			}
			i = end
		case open:
			depth++
			i++
		case close:
			depth--
			i++
			if depth == 0 {
				return i, nil
			}
		default:
			i++
		}
	}
	return 0, fmt.Errorf("offset %d: unterminated %c...%c", pos, open, close)
}

// parseNumber parses a JSON number's bytes as a float.
func parseNumber(b []byte) float64 { return fastparse.Float(b) }

// looksInt reports whether the number bytes hold an integer literal.
func looksInt(b []byte) bool {
	for _, c := range b {
		if c == '.' || c == 'e' || c == 'E' {
			return false
		}
	}
	return true
}

// unescape decodes a JSON string body (the range between the quotes). The
// fast path — no backslash — returns a direct copy.
func unescape(b []byte) string {
	hasEsc := false
	for _, c := range b {
		if c == '\\' {
			hasEsc = true
			break
		}
	}
	if !hasEsc {
		return string(b)
	}
	var sb strings.Builder
	sb.Grow(len(b))
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != '\\' || i+1 >= len(b) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch b[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case 'b':
			sb.WriteByte('\b')
		case 'f':
			sb.WriteByte('\f')
		case '/':
			sb.WriteByte('/')
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'u':
			if i+4 < len(b) {
				if u1, err := strconv.ParseUint(string(b[i+1:i+5]), 16, 32); err == nil {
					i += 4
					r := rune(u1)
					// Surrogate pair: a high surrogate immediately followed
					// by a \uXXXX low surrogate decodes to one code point
					// outside the BMP (e.g. emoji).
					if utf16.IsSurrogate(r) && i+6 < len(b) && b[i+1] == '\\' && b[i+2] == 'u' {
						if u2, err2 := strconv.ParseUint(string(b[i+3:i+7]), 16, 32); err2 == nil {
							if dec := utf16.DecodeRune(r, rune(u2)); dec != utf8.RuneError {
								sb.WriteRune(dec)
								i += 6
								continue
							}
						}
					}
					// Lone surrogates encode as U+FFFD via WriteRune.
					sb.WriteRune(r)
					continue
				}
			}
			sb.WriteByte('u')
		default:
			sb.WriteByte(b[i])
		}
	}
	return sb.String()
}
