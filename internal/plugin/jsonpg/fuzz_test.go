package jsonpg

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzUnescape treats the input as the escaped body of a JSON string and
// checks unescape differentially against encoding/json wherever the body is
// a valid JSON string with valid UTF-8 raw bytes. (encoding/json coerces
// invalid raw UTF-8 to U+FFFD while unescape preserves file bytes, so
// those inputs only assert panic-freedom.)
func FuzzUnescape(f *testing.F) {
	for _, s := range []string{
		"", "plain", `tab\there`, `quote\"and\\slash\/`,
		`Aé世界`, `𝄞`, // surrogate pair (𝄞)
		`\ud800 lone high`, `\udc00 lone low`, `\u12`, `\uZZZZ`, `trailing\`,
		`\b\f\n\r\t`, "direct ütf ✓ 🎉",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		got := unescape(body) // must never panic
		if !utf8.Valid(body) {
			return
		}
		quoted := append(append([]byte{'"'}, body...), '"')
		var want string
		if err := json.Unmarshal(quoted, &want); err != nil {
			return // not a valid JSON string body; lenient decode is fine
		}
		if got != want {
			t.Errorf("unescape(%q) = %q, encoding/json = %q", body, got, want)
		}
	})
}

// FuzzParseValue throws raw bytes at the boxed JSON value parser: it must
// return a value or an error, never panic or loop, and on success the
// reported end position must stay within bounds.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{
		"", "{", "[", `{"k": [1, 2.5, "s", null, true]}`, `[[[[`,
		`{"a"`, `{"a":}`, `"unterminated`, "12e999", "-", "nul", "truex",
		` { "nested" : { "deep" : [ { } ] } } `, "\xff\xfe",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, end, err := parseValue(data, 0)
		if err != nil {
			return
		}
		if end < 0 || end > len(data) {
			t.Fatalf("parseValue(%q) end = %d out of range", data, end)
		}
		_ = v
	})
}
