package jsonpg

import "testing"

func TestUnescape(t *testing.T) {
	cases := map[string]string{
		`plain`:        "plain",
		`a\nb`:         "a\nb",
		`tab\there`:    "tab\there",
		`q\"uote`:      `q"uote`,
		`back\\slash`:  `back\slash`,
		`uni\u0041end`: "uniAend",
		`é`:            "é",
		`slash\/ok`:    "slash/ok",
		`cr\r`:         "cr\r",
		`bs\b ff\f`:    "bs\b ff\f",
	}
	for in, want := range cases {
		if got := unescape([]byte(in)); got != want {
			t.Errorf("unescape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUnescapeSurrogatePairs(t *testing.T) {
	cases := map[string]string{
		// U+1F600 GRINNING FACE as a UTF-16 surrogate pair.
		`\uD83D\uDE00`:     "\U0001F600",
		`x\uD83D\uDE00y`:   "x\U0001F600y",
		`pair\uD83D\uDC4D`: "pair\U0001F44D",
		// Lone surrogates decode to the replacement character.
		`\uD83D`:      "\uFFFD",
		`\uD83DA`:     "\uFFFDA",
		`\uDE00alone`: "\uFFFDalone",
		// A high surrogate followed by a non-surrogate escape does not
		// combine; each escape decodes on its own.
		`\uD83D\u0041`: "\uFFFDA",
		// BMP escapes are unaffected.
		`\u00e9`: "\u00e9",
		`\u4e2d`: "\u4e2d",
	}
	for in, want := range cases {
		if got := unescape([]byte(in)); got != want {
			t.Errorf("unescape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScanValueShapes(t *testing.T) {
	cases := []struct {
		in   string
		want int // expected end position
	}{
		{`123`, 3},
		{`-1.5e3`, 6},
		{`"str"`, 5},
		{`true`, 4},
		{`[1, [2, 3], {"a": "]"}]`, 23},
		{`{"a": {"b": [1]}}`, 17},
		{`"esc\"]"`, 8},
	}
	for _, c := range cases {
		end, err := scanValue([]byte(c.in), 0)
		if err != nil {
			t.Errorf("scanValue(%q): %v", c.in, err)
			continue
		}
		if end != c.want {
			t.Errorf("scanValue(%q) end = %d, want %d", c.in, end, c.want)
		}
	}
}

func TestScanValueErrors(t *testing.T) {
	for _, in := range []string{`"unterminated`, `[1, 2`, `{"a": 1`, ``} {
		if _, err := scanValue([]byte(in), 0); err == nil {
			t.Errorf("scanValue(%q) should fail", in)
		}
	}
}

func TestLooksInt(t *testing.T) {
	if !looksInt([]byte("123")) || !looksInt([]byte("-7")) {
		t.Error("integers misclassified")
	}
	if looksInt([]byte("1.5")) || looksInt([]byte("1e3")) || looksInt([]byte("2E-1")) {
		t.Error("floats misclassified")
	}
}

func TestParseValueNumbers(t *testing.T) {
	v, _, err := parseValue([]byte("42"), 0)
	if err != nil || v.Kind.String() != "int" || v.AsInt() != 42 {
		t.Errorf("42 = %v (%v)", v, err)
	}
	v, _, err = parseValue([]byte("2.5"), 0)
	if err != nil || v.Kind.String() != "float" || v.F != 2.5 {
		t.Errorf("2.5 = %v (%v)", v, err)
	}
}
