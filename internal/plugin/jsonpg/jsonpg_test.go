package jsonpg

import (
	"fmt"
	"strings"
	"testing"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

func openJSON(t *testing.T, data string, opts plugin.Options) (*Plugin, *plugin.Dataset, *plugin.Env) {
	t.Helper()
	mem := storage.NewManager(0)
	mem.PutFile("mem://t.json", []byte(data))
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore(), SampleEvery: 1}
	p := New()
	ds := &plugin.Dataset{Name: "t", Path: "mem://t.json", Format: "json", Opts: opts}
	if err := p.Open(env, ds); err != nil {
		t.Fatalf("open: %v", err)
	}
	return p, ds, env
}

func scanField(t *testing.T, p *Plugin, ds *plugin.Dataset, path string, ft types.Type) []types.Value {
	t.Helper()
	var alloc vbuf.Alloc
	slot := alloc.ForType(ft)
	oid := alloc.Int()
	run, err := p.CompileScan(ds, plugin.ScanSpec{
		Fields:  []plugin.FieldReq{{Path: strings.Split(path, "."), Slot: slot, Type: ft}},
		OIDSlot: &oid,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	regs := vbuf.NewRegs(&alloc)
	var out []types.Value
	if err := run(regs, func() error {
		out = append(out, regs.Get(slot))
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

const mixedOrder = `{"a": 1, "b": "x", "c": 1.5, "flag": true}
{"b": "y", "a": 2, "flag": false, "c": 2.5}
{"c": 3.5, "flag": true, "b": "z", "a": 3}
`

func TestScanWithArbitraryFieldOrder(t *testing.T) {
	p, ds, _ := openJSON(t, mixedOrder, plugin.Options{})
	st := ds.State.(*state)
	if st.deterministic {
		t.Fatal("mixed field order must not be deterministic")
	}
	vals := scanField(t, p, ds, "a", types.Int)
	if len(vals) != 3 || vals[0].AsInt() != 1 || vals[1].AsInt() != 2 || vals[2].AsInt() != 3 {
		t.Errorf("a = %v", vals)
	}
	svals := scanField(t, p, ds, "b", types.String)
	if svals[2].S != "z" {
		t.Errorf("b = %v", svals)
	}
	bvals := scanField(t, p, ds, "flag", types.Bool)
	if !bvals[0].Bool() || bvals[1].Bool() {
		t.Errorf("flag = %v", bvals)
	}
}

func TestDeterministicIndexCompression(t *testing.T) {
	fixed := `{"a": 1, "b": 2.5}
{"a": 2, "b": 3.5}
{"a": 3, "b": 4.5}
`
	p, ds, _ := openJSON(t, fixed, plugin.Options{})
	st := ds.State.(*state)
	if !st.deterministic {
		t.Fatal("fixed field order should compress the index")
	}
	if st.level0 != nil {
		t.Error("Level 0 should be dropped in deterministic mode")
	}
	if !p.Deterministic(ds) {
		t.Error("Deterministic() should report true")
	}
	vals := scanField(t, p, ds, "b", types.Float)
	if vals[1].F != 3.5 {
		t.Errorf("b = %v", vals)
	}

	// Same file with the ablation flag keeps the mode off.
	p2, ds2, _ := openJSON(t, fixed, plugin.Options{DisableDeterministic: true})
	if ds2.State.(*state).deterministic {
		t.Error("ablation flag ignored")
	}
	vals2 := scanField(t, p2, ds2, "b", types.Float)
	if vals2[1].F != 3.5 {
		t.Errorf("b (ablation) = %v", vals2)
	}
}

func TestSequentialLookupAblation(t *testing.T) {
	p, ds, _ := openJSON(t, mixedOrder, plugin.Options{DisableLevel0: true})
	st := ds.State.(*state)
	if st.level0 != nil || st.pairs == nil {
		t.Fatal("DisableLevel0 should use the pair list")
	}
	vals := scanField(t, p, ds, "c", types.Float)
	if vals[0].F != 1.5 || vals[2].F != 3.5 {
		t.Errorf("c = %v", vals)
	}
}

func TestNestedRecordPaths(t *testing.T) {
	data := `{"id": 1, "c": {"d": {"d1": 10}}}
{"id": 2, "c": {"d": {"d1": 20}}}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	vals := scanField(t, p, ds, "c.d.d1", types.Int)
	if len(vals) != 2 || vals[0].AsInt() != 10 || vals[1].AsInt() != 20 {
		t.Errorf("c.d.d1 = %v", vals)
	}
}

func TestMissingFieldsAreNull(t *testing.T) {
	data := `{"a": 1, "b": 9}
{"a": 2}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	vals := scanField(t, p, ds, "b", types.Int)
	if !vals[1].IsNull() {
		t.Errorf("missing field = %v, want null", vals[1])
	}
	ghost := scanField(t, p, ds, "zzz", types.Int)
	if !ghost[0].IsNull() {
		t.Error("unknown field should be null")
	}
}

func TestTopLevelArrayFile(t *testing.T) {
	data := `[ {"a": 1}, {"a": 2}, {"a": 3} ]`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	if p.Cardinality(ds) != 3 {
		t.Fatalf("objects = %d", p.Cardinality(ds))
	}
	vals := scanField(t, p, ds, "a", types.Int)
	if vals[2].AsInt() != 3 {
		t.Errorf("a = %v", vals)
	}
}

func TestStringEscapes(t *testing.T) {
	data := `{"s": "a\nb\t\"q\" A"}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	vals := scanField(t, p, ds, "s", types.String)
	if vals[0].S != "a\nb\t\"q\" A" {
		t.Errorf("s = %q", vals[0].S)
	}
}

func TestUnnestRecords(t *testing.T) {
	data := `{"id": 1, "kids": [{"n": "a", "v": 5}, {"n": "b", "v": 6}]}
{"id": 2, "kids": []}
{"id": 3, "kids": [{"n": "c", "v": 7}]}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	var alloc vbuf.Alloc
	oid := alloc.Int()
	nSlot := alloc.String()
	vSlot := alloc.Int()
	unnest, err := p.CompileUnnest(ds, plugin.UnnestSpec{
		OIDSlot: oid,
		Path:    []string{"kids"},
		ElemFields: []plugin.FieldReq{
			{Path: []string{"n"}, Slot: nSlot, Type: types.String},
			{Path: []string{"v"}, Slot: vSlot, Type: types.Int},
		},
	})
	if err != nil {
		t.Fatalf("compile unnest: %v", err)
	}
	regs := vbuf.NewRegs(&alloc)
	var got []string
	for obj := int64(0); obj < 3; obj++ {
		regs.I[oid.Idx] = obj
		if err := unnest(regs, func() error {
			got = append(got, fmt.Sprintf("%s=%d", regs.S[nSlot.Idx], regs.I[vSlot.Idx]))
			return nil
		}); err != nil {
			t.Fatalf("unnest obj %d: %v", obj, err)
		}
	}
	want := []string{"a=5", "b=6", "c=7"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("unnest = %v, want %v", got, want)
	}
}

func TestUnnestScalars(t *testing.T) {
	data := `{"id": 1, "xs": [10, 20, 30]}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	var alloc vbuf.Alloc
	oid := alloc.Int()
	elem := alloc.Int()
	unnest, err := p.CompileUnnest(ds, plugin.UnnestSpec{
		OIDSlot:  oid,
		Path:     []string{"xs"},
		ElemSlot: &elem,
		ElemType: types.Int,
	})
	if err != nil {
		t.Fatal(err)
	}
	regs := vbuf.NewRegs(&alloc)
	regs.I[oid.Idx] = 0
	var sum int64
	if err := unnest(regs, func() error {
		sum += regs.I[elem.Idx]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 60 {
		t.Errorf("sum = %d", sum)
	}
}

func TestBoxedFieldExtraction(t *testing.T) {
	data := `{"id": 1, "rec": {"x": 1}, "arr": [1, 2]}
`
	p, ds, _ := openJSON(t, data, plugin.Options{})
	schema := p.Schema(ds)
	rt, _ := schema.Lookup("rec")
	vals := scanField(t, p, ds, "rec", rt)
	if vals[0].Kind != types.KindRecord {
		t.Fatalf("rec = %v", vals[0])
	}
	at, _ := schema.Lookup("arr")
	avals := scanField(t, p, ds, "arr", at)
	if avals[0].Len() != 2 {
		t.Errorf("arr = %v", avals[0])
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []string{
		`{"a": }`,
		`{"a" 1}`,
		`{"a": 1`,
		`{1: 2}`,
		`[{"a": 1}`,
		`{"a": "unterminated}`,
		`not json`,
	}
	for _, data := range bad {
		mem := storage.NewManager(0)
		mem.PutFile("mem://bad.json", []byte(data))
		env := &plugin.Env{Mem: mem, Stats: stats.NewStore()}
		ds := &plugin.Dataset{Name: "bad", Path: "mem://bad.json", Format: "json"}
		if err := New().Open(env, ds); err == nil {
			t.Errorf("Open(%q) should fail", data)
		}
	}
}

func TestReadRowsAndIndexBytes(t *testing.T) {
	p, ds, _ := openJSON(t, mixedOrder, plugin.Options{})
	rows, err := p.ReadRows(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if v, _ := rows[1].Field("a"); v.AsInt() != 2 {
		t.Errorf("row 1 = %s", rows[1])
	}
	if p.IndexBytes(ds) <= 0 {
		t.Error("index bytes should be positive")
	}
}

func TestStatsSampling(t *testing.T) {
	_, _, env := openJSON(t, mixedOrder, plugin.Options{})
	tbl, _ := env.Stats.Lookup("t")
	if tbl.Rows != 3 {
		t.Errorf("rows = %d", tbl.Rows)
	}
	c := tbl.Cols["a"]
	if c == nil || c.Min != 1 || c.Max != 3 {
		t.Errorf("a stats = %+v", c)
	}
}

func TestSchemaInference(t *testing.T) {
	p, ds, _ := openJSON(t, `{"i": 1, "f": 1.5, "s": "x", "b": true, "arr": [{"k": 1}]}
`, plugin.Options{})
	schema := p.Schema(ds)
	checks := map[string]types.Kind{
		"i": types.KindInt, "f": types.KindFloat, "s": types.KindString,
		"b": types.KindBool, "arr": types.KindList,
	}
	for name, kind := range checks {
		ft, ok := schema.Lookup(name)
		if !ok || ft.Kind() != kind {
			t.Errorf("field %s = %v", name, ft)
		}
	}
}
