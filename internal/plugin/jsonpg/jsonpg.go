package jsonpg

import (
	"fmt"

	"proteus/internal/fastparse"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Plugin implements plugin.Input for JSON datasets (a sequence of objects,
// newline-delimited or inside one top-level array).
type Plugin struct{}

// New returns the JSON plug-in.
func New() *Plugin { return &Plugin{} }

// Format implements plugin.Input.
func (p *Plugin) Format() string { return "json" }

// FieldCost implements plugin.Input: JSON is the most expensive format to
// access (navigation + conversion), which also biases cache retention in
// its favor (§6).
func (p *Plugin) FieldCost() float64 { return 14.0 }

func (p *Plugin) openState(ds *plugin.Dataset) (*state, error) {
	st, ok := ds.State.(*state)
	if !ok {
		return nil, fmt.Errorf("jsonpg: dataset %q is not open", ds.Name)
	}
	return st, nil
}

// Open implements plugin.Input: validates the file, builds the structural
// index (Level 1 + Level 0, or the deterministic compressed form), infers
// the schema, and samples statistics — all in the single cold pass whose
// cost is masked by I/O in the paper's setting.
func (p *Plugin) Open(env *plugin.Env, ds *plugin.Dataset) error {
	data, err := env.Mem.File(ds.Path)
	if err != nil {
		return err
	}
	st, err := p.buildIndex(env, ds, data)
	if err != nil {
		return err
	}
	if ds.Schema != nil {
		st.schema = ds.Schema
	} else if st.nObjs > 0 {
		v, _, err := parseValue(data, int(st.objStart[0]))
		if err != nil {
			return fmt.Errorf("jsonpg: %s: inferring schema: %w", ds.Name, err)
		}
		rt, ok := types.TypeOf(v).(*types.RecordType)
		if !ok {
			return fmt.Errorf("jsonpg: %s: top-level values are not objects", ds.Name)
		}
		st.schema = rt
	} else {
		st.schema = &types.RecordType{}
	}
	ds.State = st
	if ds.Schema == nil {
		ds.Schema = st.schema
	}
	return nil
}

// Schema implements plugin.Input.
func (p *Plugin) Schema(ds *plugin.Dataset) *types.RecordType {
	if st, ok := ds.State.(*state); ok {
		return st.schema
	}
	return ds.Schema
}

// Cardinality implements plugin.Input.
func (p *Plugin) Cardinality(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*state); ok {
		return st.nObjs
	}
	return 0
}

// IndexBytes reports the structural index footprint for a dataset.
func (p *Plugin) IndexBytes(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*state); ok {
		return st.IndexBytes()
	}
	return 0
}

// Deterministic reports whether the dataset's index was compressed to the
// deterministic form (Level 0 dropped).
func (p *Plugin) Deterministic(ds *plugin.Dataset) bool {
	if st, ok := ds.State.(*state); ok {
		return st.deterministic
	}
	return false
}

// PartitionScan implements plugin.Partitioner: morsels are byte-balanced
// object ranges cut at object boundaries via the structural index
// (objStart), so skewed document sizes still spread evenly over workers.
func (p *Plugin) PartitionScan(ds *plugin.Dataset, parts int) ([]plugin.Morsel, error) {
	st, err := p.openState(ds)
	if err != nil {
		return nil, err
	}
	return plugin.SplitByStarts(st.objStart, int64(len(st.data)), parts), nil
}

// lookupFn resolves (object, fieldID) to the Level-1 entry ordinal, or -1.
type lookupFn func(obj int64, fid int32) int32

// compileLookup specializes field lookup to the dataset's index shape:
// deterministic (shared table), Level-0 matrix (associative), or the
// sequential-scan ablation.
func (st *state) compileLookup() lookupFn {
	switch {
	case st.deterministic:
		det := st.detOrd
		return func(obj int64, fid int32) int32 { return det[fid] }
	case st.noLevel0:
		pairs, pairOff := st.pairs, st.pairOff
		return func(obj int64, fid int32) int32 {
			lo, hi := pairOff[obj], pairOff[obj+1]
			for i := lo; i < hi; i += 2 {
				if pairs[i] == fid {
					return pairs[i+1]
				}
			}
			return -1
		}
	default:
		nf := int64(len(st.paths))
		l0 := st.level0
		return func(obj int64, fid int32) int32 { return l0[obj*nf+int64(fid)] }
	}
}

// CompileBatchScan implements plugin.BatchScanner. JSON extraction is
// inherently record-at-a-time (each object is navigated individually), so
// the batch driver transposes the tuple scan's registers into columns via
// the generic adapter; the downstream kernels still run vectorized.
// Whole-object boxing cannot be columnized.
func (p *Plugin) CompileBatchScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.BatchRunFunc, error) {
	for _, req := range spec.Fields {
		if req.Slot.Class == vbuf.ClassValue {
			return nil, plugin.ErrUnsupported
		}
	}
	run, err := p.CompileScan(ds, spec)
	if err != nil {
		return nil, err
	}
	return plugin.BatchFromTuples(run, spec), nil
}

// CompileScan implements plugin.Input: per requested field the generated
// code resolves the Level-1 entry via the specialized lookup and converts
// the raw bytes with a parser chosen at compile time from the field's type.
func (p *Plugin) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	st, err := p.openState(ds)
	if err != nil {
		return nil, err
	}
	lookup := st.compileLookup()
	data := st.data

	type extract func(regs *vbuf.Regs, obj int64)
	extracts := make([]extract, 0, len(spec.Fields))
	for _, req := range spec.Fields {
		path := plugin.FieldPathString(req.Path)
		slot := req.Slot
		if len(req.Path) == 0 {
			// Whole-object boxing: decode the full document.
			if slot.Class != vbuf.ClassValue {
				return nil, fmt.Errorf("jsonpg: whole-record request needs a value slot")
			}
			objStart := st.objStart
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				v, _, err := parseValue(data, int(objStart[obj]))
				if err != nil {
					regs.Null[slot.Null] = true
					return
				}
				regs.V[slot.Idx] = v
				regs.Null[slot.Null] = false
			})
			continue
		}
		fidInt, known := st.fieldIDs[path]
		fid := int32(fidInt)
		if !known {
			// Field absent from the whole dataset: always null.
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				regs.Null[slot.Null] = true
			})
			continue
		}
		entries := st.entries
		entryOff := st.entryOff
		switch slot.Class {
		case vbuf.ClassInt:
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				ord := lookup(obj, fid)
				if ord < 0 {
					regs.Null[slot.Null] = true
					return
				}
				e := entries[entryOff[obj]+uint32(ord)]
				if e.typ != tokNumber {
					regs.Null[slot.Null] = true
					return
				}
				regs.I[slot.Idx] = fastparse.Int(data[e.start:e.end])
				regs.Null[slot.Null] = false
			})
		case vbuf.ClassFloat:
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				ord := lookup(obj, fid)
				if ord < 0 {
					regs.Null[slot.Null] = true
					return
				}
				e := entries[entryOff[obj]+uint32(ord)]
				if e.typ != tokNumber {
					regs.Null[slot.Null] = true
					return
				}
				regs.F[slot.Idx] = fastparse.Float(data[e.start:e.end])
				regs.Null[slot.Null] = false
			})
		case vbuf.ClassBool:
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				ord := lookup(obj, fid)
				if ord < 0 {
					regs.Null[slot.Null] = true
					return
				}
				e := entries[entryOff[obj]+uint32(ord)]
				switch e.typ {
				case tokTrue:
					regs.B[slot.Idx] = true
					regs.Null[slot.Null] = false
				case tokFalse:
					regs.B[slot.Idx] = false
					regs.Null[slot.Null] = false
				default:
					regs.Null[slot.Null] = true
				}
			})
		case vbuf.ClassString:
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				ord := lookup(obj, fid)
				if ord < 0 {
					regs.Null[slot.Null] = true
					return
				}
				e := entries[entryOff[obj]+uint32(ord)]
				if e.typ != tokString {
					regs.Null[slot.Null] = true
					return
				}
				regs.S[slot.Idx] = unescape(data[e.start:e.end])
				regs.Null[slot.Null] = false
			})
		default: // boxed: nested records or whole arrays
			extracts = append(extracts, func(regs *vbuf.Regs, obj int64) {
				ord := lookup(obj, fid)
				if ord < 0 {
					regs.Null[slot.Null] = true
					return
				}
				e := entries[entryOff[obj]+uint32(ord)]
				v, err := valueOfEntry(data, e)
				if err != nil || v.IsNull() {
					regs.Null[slot.Null] = true
					return
				}
				regs.V[slot.Idx] = v
				regs.Null[slot.Null] = false
			})
		}
	}

	lo, hi := int64(0), st.nObjs
	if spec.Morsel != nil {
		lo, hi = spec.Morsel.Start, spec.Morsel.End
		if lo < 0 {
			lo = 0
		}
		if hi > st.nObjs {
			hi = st.nObjs
		}
	}
	oid := spec.OIDSlot
	cc := spec.Cancel
	// The cancellation poll is amortized at stride granularity: the inner
	// loop carries no per-object check at all.
	run := plugin.RunFunc(func(regs *vbuf.Regs, consume func() error) error {
		for base := lo; base < hi; base += plugin.CancelStride {
			if cc.Cancelled() {
				return cc.Err()
			}
			end := base + plugin.CancelStride
			if end > hi {
				end = hi
			}
			for obj := base; obj < end; obj++ {
				if oid != nil {
					regs.I[oid.Idx] = obj
					regs.Null[oid.Null] = false
				}
				for _, ex := range extracts {
					ex(regs, obj)
				}
				if err := consume(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	// Profiling deltas, computed once at compile time (see ScanSpec.Prof):
	// bytes are the structural-index byte span of the object range; every
	// extract of a known field resolves through the Level-1/Level-0 index.
	nObjs := hi - lo
	if nObjs < 0 {
		nObjs = 0
	}
	var byteSpan int64
	if nObjs > 0 {
		end := int64(len(data))
		if hi < st.nObjs {
			end = int64(st.objStart[hi])
		}
		byteSpan = end - int64(st.objStart[lo])
	}
	indexedFields := int64(0)
	for _, req := range spec.Fields {
		if len(req.Path) == 0 {
			continue
		}
		if _, known := st.fieldIDs[plugin.FieldPathString(req.Path)]; known {
			indexedFields++
		}
	}
	return spec.Prof.WrapRun(run, byteSpan, nObjs*int64(len(extracts)), nObjs*indexedFields), nil
}
