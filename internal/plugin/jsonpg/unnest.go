package jsonpg

import (
	"fmt"

	"proteus/internal/fastparse"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// CompileUnnest implements plugin.Input: the unnestInit / unnestHasNext /
// unnestGetNext triple of Table 2, collapsed into one compiled element
// loop. The collection is located through the structural index using the
// parent record's OID, and its elements are parsed lazily — the same action
// applies to every element, so no per-element index is needed (Figure 4).
func (p *Plugin) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	st, err := p.openState(ds)
	if err != nil {
		return nil, err
	}
	path := plugin.FieldPathString(spec.Path)
	fidInt, known := st.fieldIDs[path]
	if !known {
		// The structural index only knows fields that appear in the data. A
		// schema-declared collection that no object materialized (most
		// commonly: an empty dataset) unnests to zero elements per row, the
		// same as a per-row absent collection below — not an error.
		if len(spec.Path) > 0 && st.schema.Index(spec.Path[0]) >= 0 {
			return func(regs *vbuf.Regs, consume func() error) error { return nil }, nil
		}
		return nil, fmt.Errorf("jsonpg: dataset %q has no field %q to unnest", ds.Name, path)
	}
	fid := int32(fidInt)
	lookup := st.compileLookup()
	data := st.data
	entries := st.entries
	entryOff := st.entryOff
	oid := spec.OIDSlot

	// Compile the per-element action: scalar elements fill ElemSlot;
	// record elements fill one slot per requested element field.
	type elemExtract struct {
		name string
		rest []string // nested path inside the element, if any
		slot vbuf.Slot
		fill func(regs *vbuf.Regs, data []byte, start, end int) error
	}
	var elemExtracts []elemExtract
	for _, req := range spec.ElemFields {
		if len(req.Path) == 0 {
			return nil, fmt.Errorf("jsonpg: empty element field path")
		}
		fill, err := elemFiller(req.Slot)
		if err != nil {
			return nil, err
		}
		elemExtracts = append(elemExtracts, elemExtract{name: req.Path[0], rest: req.Path[1:], slot: req.Slot, fill: fill})
	}
	var scalarFill func(regs *vbuf.Regs, data []byte, start, end int) error
	if spec.ElemSlot != nil {
		f, err := elemFiller(*spec.ElemSlot)
		if err != nil {
			return nil, err
		}
		scalarFill = f
	}

	return func(regs *vbuf.Regs, consume func() error) error {
		obj := regs.I[oid.Idx]
		ord := lookup(obj, fid)
		if ord < 0 {
			return nil // absent collection: zero elements
		}
		e := entries[entryOff[obj]+uint32(ord)]
		if e.typ != tokArray {
			return nil
		}
		pos := int(e.start) + 1 // past '['
		end := int(e.end)
		first := true
		for {
			pos = skipWS(data, pos)
			if pos >= end-1 || data[pos] == ']' {
				return nil
			}
			if !first {
				if data[pos] != ',' {
					return fmt.Errorf("jsonpg: offset %d: malformed array", pos)
				}
				pos = skipWS(data, pos+1)
			}
			first = false
			elemStart := pos
			elemEnd, err := scanValue(data, pos)
			if err != nil {
				return err
			}
			pos = elemEnd
			if len(elemExtracts) > 0 {
				for _, ex := range elemExtracts {
					vs, ve, typ, found, err := findElemField(data, elemStart, elemEnd, ex.name, ex.rest)
					if err != nil {
						return err
					}
					if !found || typ == tokNull {
						regs.Null[ex.slot.Null] = true
						continue
					}
					if err := ex.fill(regs, data, vs, ve); err != nil {
						return err
					}
				}
			} else if scalarFill != nil {
				s, e2 := elemStart, elemEnd
				if data[elemStart] == '"' {
					s, e2 = elemStart+1, elemEnd-1
				}
				if err := scalarFill(regs, data, s, e2); err != nil {
					return err
				}
			}
			if err := consume(); err != nil {
				return err
			}
		}
	}, nil
}

// elemFiller returns a slot writer specialized to the slot's class; raw
// bytes are the value token (strings without quotes).
func elemFiller(slot vbuf.Slot) (func(regs *vbuf.Regs, data []byte, start, end int) error, error) {
	switch slot.Class {
	case vbuf.ClassInt:
		return func(regs *vbuf.Regs, data []byte, start, end int) error {
			regs.I[slot.Idx] = fastparse.Int(data[start:end])
			regs.Null[slot.Null] = false
			return nil
		}, nil
	case vbuf.ClassFloat:
		return func(regs *vbuf.Regs, data []byte, start, end int) error {
			regs.F[slot.Idx] = fastparse.Float(data[start:end])
			regs.Null[slot.Null] = false
			return nil
		}, nil
	case vbuf.ClassBool:
		return func(regs *vbuf.Regs, data []byte, start, end int) error {
			regs.B[slot.Idx] = start < end && data[start] == 't'
			regs.Null[slot.Null] = false
			return nil
		}, nil
	case vbuf.ClassString:
		return func(regs *vbuf.Regs, data []byte, start, end int) error {
			regs.S[slot.Idx] = unescape(data[start:end])
			regs.Null[slot.Null] = false
			return nil
		}, nil
	default:
		return func(regs *vbuf.Regs, data []byte, start, end int) error {
			v, _, err := parseValue(data, start)
			if err != nil {
				return err
			}
			regs.V[slot.Idx] = v
			regs.Null[slot.Null] = false
			return nil
		}, nil
	}
}

// findElemField scans an element object's keys for name (then follows the
// nested rest path), returning the value token's range (strings unquoted).
func findElemField(data []byte, start, end int, name string, rest []string) (vs, ve int, typ byte, found bool, err error) {
	pos := skipWS(data, start)
	if pos >= end || data[pos] != '{' {
		return 0, 0, 0, false, nil
	}
	pos++
	first := true
	for {
		pos = skipWS(data, pos)
		if pos >= end || data[pos] == '}' {
			return 0, 0, 0, false, nil
		}
		if !first {
			if data[pos] != ',' {
				return 0, 0, 0, false, fmt.Errorf("jsonpg: offset %d: malformed element", pos)
			}
			pos = skipWS(data, pos+1)
		}
		first = false
		if pos >= end || data[pos] != '"' {
			return 0, 0, 0, false, fmt.Errorf("jsonpg: offset %d: expected field name", pos)
		}
		nameEnd, err := scanString(data, pos)
		if err != nil {
			return 0, 0, 0, false, err
		}
		key := data[pos+1 : nameEnd-1]
		pos = skipWS(data, nameEnd)
		if pos >= end || data[pos] != ':' {
			return 0, 0, 0, false, fmt.Errorf("jsonpg: offset %d: expected ':'", pos)
		}
		pos = skipWS(data, pos+1)
		valStart := pos
		valEnd, err := scanValue(data, pos)
		if err != nil {
			return 0, 0, 0, false, err
		}
		if string(key) == name {
			if len(rest) > 0 {
				return findElemField(data, valStart, valEnd, rest[0], rest[1:])
			}
			switch data[valStart] {
			case '"':
				return valStart + 1, valEnd - 1, tokString, true, nil
			case '{':
				return valStart, valEnd, tokObject, true, nil
			case '[':
				return valStart, valEnd, tokArray, true, nil
			case 't':
				return valStart, valEnd, tokTrue, true, nil
			case 'f':
				return valStart, valEnd, tokFalse, true, nil
			case 'n':
				return valStart, valEnd, tokNull, true, nil
			default:
				return valStart, valEnd, tokNumber, true, nil
			}
		}
		pos = valEnd
	}
}

// ReadRows implements plugin.Input: full boxed decode of every object.
func (p *Plugin) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	st, err := p.openState(ds)
	if err != nil {
		return nil, err
	}
	out := make([]types.Value, 0, st.nObjs)
	for obj := int64(0); obj < st.nObjs; obj++ {
		v, _, err := parseValue(st.data, int(st.objStart[obj]))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
