package binpg

import (
	"encoding/binary"
	"fmt"
	"math"

	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Plugin implements plugin.Input for the binary row and columnar formats.
type Plugin struct{}

// New returns the binary plug-in.
func New() *Plugin { return &Plugin{} }

// Format implements plugin.Input.
func (p *Plugin) Format() string { return "bin" }

// FieldCost implements plugin.Input: binary access is the cost baseline.
func (p *Plugin) FieldCost() float64 { return 1.0 }

type state struct {
	data     []byte
	schema   *types.RecordType
	rows     int64
	columnar bool

	// Columnar layout.
	colOff []int // per-column data offset
	colLen []int

	// Row layout.
	rowBase  int // offset of row 0
	rowWidth int
	heapOff  int
}

func (p *Plugin) state(ds *plugin.Dataset) (*state, error) {
	st, ok := ds.State.(*state)
	if !ok {
		return nil, fmt.Errorf("binpg: dataset %q is not open", ds.Name)
	}
	return st, nil
}

// Open implements plugin.Input: parses the header, locates column blobs or
// row geometry, and samples statistics.
func (p *Plugin) Open(env *plugin.Env, ds *plugin.Dataset) error {
	data, err := env.Mem.File(ds.Path)
	if err != nil {
		return err
	}
	if len(data) < 16 {
		return fmt.Errorf("binpg: %s: truncated file", ds.Name)
	}
	st := &state{data: data}
	switch {
	case string(data[:4]) == string(magicColumnar[:]):
		st.columnar = true
	case string(data[:4]) == string(magicRow[:]):
		st.columnar = false
	default:
		return fmt.Errorf("binpg: %s: bad magic %q", ds.Name, data[:4])
	}
	nCols := int(binary.LittleEndian.Uint32(data[4:]))
	st.rows = int64(binary.LittleEndian.Uint64(data[8:]))
	pos := 16
	fields := make([]types.Field, nCols)
	for i := 0; i < nCols; i++ {
		if pos+3 > len(data) {
			return fmt.Errorf("binpg: %s: truncated header", ds.Name)
		}
		t, err := byteKind(data[pos])
		if err != nil {
			return err
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos+1:]))
		pos += 3
		if pos+nameLen > len(data) {
			return fmt.Errorf("binpg: %s: truncated column name", ds.Name)
		}
		fields[i] = types.Field{Name: string(data[pos : pos+nameLen]), Type: t}
		pos += nameLen
	}
	st.schema = &types.RecordType{Fields: fields}
	if st.columnar {
		st.colOff = make([]int, nCols)
		st.colLen = make([]int, nCols)
		for i := 0; i < nCols; i++ {
			st.colOff[i] = int(binary.LittleEndian.Uint64(data[pos+i*16:]))
			st.colLen[i] = int(binary.LittleEndian.Uint64(data[pos+i*16+8:]))
		}
	} else {
		st.rowBase = pos
		st.rowWidth = nCols * cellSize
		st.heapOff = pos + int(st.rows)*st.rowWidth
	}
	ds.State = st
	if ds.Schema == nil {
		ds.Schema = st.schema
	}

	// Cold-access statistics sampling.
	tbl := env.Stats.Table(ds.Name)
	tbl.Rows = st.rows
	if env.SampleEvery > 0 {
		for col, f := range fields {
			if !types.Numeric(f.Type) {
				continue
			}
			c := tbl.Col(f.Name)
			for row := int64(0); row < st.rows; row += int64(env.SampleEvery) {
				switch f.Type.Kind() {
				case types.KindInt:
					c.Observe(float64(st.readInt(col, row)))
				case types.KindFloat:
					c.Observe(st.readFloat(col, row))
				}
			}
		}
	}
	return nil
}

func (st *state) readInt(col int, row int64) int64 {
	if st.columnar {
		return int64(binary.LittleEndian.Uint64(st.data[st.colOff[col]+int(row)*8:]))
	}
	return int64(binary.LittleEndian.Uint64(st.data[st.rowBase+int(row)*st.rowWidth+col*8:]))
}

func (st *state) readFloat(col int, row int64) float64 {
	if st.columnar {
		return bitsFloat(binary.LittleEndian.Uint64(st.data[st.colOff[col]+int(row)*8:]))
	}
	return bitsFloat(binary.LittleEndian.Uint64(st.data[st.rowBase+int(row)*st.rowWidth+col*8:]))
}

func (st *state) readBool(col int, row int64) bool {
	if st.columnar {
		return st.data[st.colOff[col]+int(row)] != 0
	}
	return st.data[st.rowBase+int(row)*st.rowWidth+col*8] != 0
}

func (st *state) readString(col int, row int64) string {
	if st.columnar {
		base := st.colOff[col]
		off := int(binary.LittleEndian.Uint32(st.data[base+int(row)*4:]))
		end := int(binary.LittleEndian.Uint32(st.data[base+int(row+1)*4:]))
		bytesBase := base + (int(st.rows)+1)*4
		return string(st.data[bytesBase+off : bytesBase+end])
	}
	cell := binary.LittleEndian.Uint64(st.data[st.rowBase+int(row)*st.rowWidth+col*8:])
	off := int(cell >> 32)
	n := int(uint32(cell))
	return string(st.data[st.heapOff+off : st.heapOff+off+n])
}

// Schema implements plugin.Input.
func (p *Plugin) Schema(ds *plugin.Dataset) *types.RecordType {
	if st, ok := ds.State.(*state); ok {
		return st.schema
	}
	return ds.Schema
}

// Cardinality implements plugin.Input.
func (p *Plugin) Cardinality(ds *plugin.Dataset) int64 {
	if st, ok := ds.State.(*state); ok {
		return st.rows
	}
	return 0
}

// CompileScan implements plugin.Input: the generated loop reads each needed
// field at a computed memory position, with a per-field closure specialized
// to the column's type and layout.
func (p *Plugin) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	type loader func(regs *vbuf.Regs, row int64)
	loaders := make([]loader, 0, len(spec.Fields))
	names := st.schema.Names()
	for _, req := range spec.Fields {
		if len(req.Path) == 0 {
			// Whole-record boxing.
			if req.Slot.Class != vbuf.ClassValue {
				return nil, fmt.Errorf("binpg: whole-record request needs a value slot")
			}
			slot := req.Slot
			loaders = append(loaders, func(regs *vbuf.Regs, row int64) {
				regs.V[slot.Idx] = st.decodeRow(row, names)
				regs.Null[slot.Null] = false
			})
			continue
		}
		if len(req.Path) != 1 {
			return nil, fmt.Errorf("binpg: nested path %q in flat binary dataset %q",
				plugin.FieldPathString(req.Path), ds.Name)
		}
		col := st.schema.Index(req.Path[0])
		if col < 0 {
			return nil, fmt.Errorf("binpg: dataset %q has no column %q", ds.Name, req.Path[0])
		}
		slot := req.Slot
		ft := st.schema.Fields[col].Type
		switch ft.Kind() {
		case types.KindInt:
			if slot.Class != vbuf.ClassInt {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			loaders = append(loaders, func(regs *vbuf.Regs, row int64) {
				regs.I[slot.Idx] = st.readInt(col, row)
				regs.Null[slot.Null] = false
			})
		case types.KindFloat:
			if slot.Class != vbuf.ClassFloat {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			loaders = append(loaders, func(regs *vbuf.Regs, row int64) {
				regs.F[slot.Idx] = st.readFloat(col, row)
				regs.Null[slot.Null] = false
			})
		case types.KindBool:
			if slot.Class != vbuf.ClassBool {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			loaders = append(loaders, func(regs *vbuf.Regs, row int64) {
				regs.B[slot.Idx] = st.readBool(col, row)
				regs.Null[slot.Null] = false
			})
		case types.KindString:
			if slot.Class != vbuf.ClassString {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			loaders = append(loaders, func(regs *vbuf.Regs, row int64) {
				regs.S[slot.Idx] = st.readString(col, row)
				regs.Null[slot.Null] = false
			})
		default:
			return nil, fmt.Errorf("binpg: unsupported column type %s", ft)
		}
	}
	lo, hi := morselBounds(spec.Morsel, st.rows)
	oid := spec.OIDSlot
	cc := spec.Cancel
	// The cancellation poll is amortized at stride granularity: the inner
	// loop carries no per-row check at all.
	run := plugin.RunFunc(func(regs *vbuf.Regs, consume func() error) error {
		for blk := lo; blk < hi; blk += plugin.CancelStride {
			if cc.Cancelled() {
				return cc.Err()
			}
			blkEnd := blk + plugin.CancelStride
			if blkEnd > hi {
				blkEnd = hi
			}
			for row := blk; row < blkEnd; row++ {
				if oid != nil {
					regs.I[oid.Idx] = row
					regs.Null[oid.Null] = false
				}
				for _, ld := range loaders {
					ld(regs, row)
				}
				if err := consume(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	// Profiling deltas (see ScanSpec.Prof): fixed-width cells, so bytes are
	// cells × cell size; binary needs no structural index (hits stay 0).
	n := hi - lo
	if n < 0 {
		n = 0
	}
	fields := n * int64(len(loaders))
	return spec.Prof.WrapRun(run, fields*cellSize, fields, 0), nil
}

// CompileBatchScan implements plugin.BatchScanner: each needed column is
// filled by a tight per-column decode loop over the batch's row window, so
// the per-row closure dispatch of the tuple driver disappears. Whole-record
// requests stay on the tuple path (ErrUnsupported).
func (p *Plugin) CompileBatchScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.BatchRunFunc, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	type filler func(b *vbuf.Batch, lo, hi int64)
	fillers := make([]filler, 0, len(spec.Fields))
	for _, req := range spec.Fields {
		if len(req.Path) != 1 {
			return nil, plugin.ErrUnsupported
		}
		col := st.schema.Index(req.Path[0])
		if col < 0 {
			return nil, fmt.Errorf("binpg: dataset %q has no column %q", ds.Name, req.Path[0])
		}
		slot := req.Slot
		ft := st.schema.Fields[col].Type
		switch ft.Kind() {
		case types.KindInt:
			if slot.Class != vbuf.ClassInt {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			fillers = append(fillers, func(b *vbuf.Batch, lo, hi int64) {
				out := b.Ints(slot.Idx)
				for row := lo; row < hi; row++ {
					out[row-lo] = st.readInt(col, row)
				}
				b.Null[slot.Null] = nil
			})
		case types.KindFloat:
			if slot.Class != vbuf.ClassFloat {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			fillers = append(fillers, func(b *vbuf.Batch, lo, hi int64) {
				out := b.Floats(slot.Idx)
				for row := lo; row < hi; row++ {
					out[row-lo] = st.readFloat(col, row)
				}
				b.Null[slot.Null] = nil
			})
		case types.KindBool:
			if slot.Class != vbuf.ClassBool {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			fillers = append(fillers, func(b *vbuf.Batch, lo, hi int64) {
				out := b.Bools(slot.Idx)
				for row := lo; row < hi; row++ {
					out[row-lo] = st.readBool(col, row)
				}
				b.Null[slot.Null] = nil
			})
		case types.KindString:
			if slot.Class != vbuf.ClassString {
				return nil, fmt.Errorf("binpg: slot class mismatch for %q", req.Path[0])
			}
			fillers = append(fillers, func(b *vbuf.Batch, lo, hi int64) {
				out := b.Strs(slot.Idx)
				for row := lo; row < hi; row++ {
					out[row-lo] = st.readString(col, row)
				}
				b.Null[slot.Null] = nil
			})
		default:
			return nil, plugin.ErrUnsupported
		}
	}
	lo, hi := morselBounds(spec.Morsel, st.rows)
	oid := spec.OIDSlot
	cc := spec.Cancel
	run := plugin.BatchRunFunc(func(_ *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
		for blk := lo; blk < hi; blk += vbuf.BatchSize {
			if cc.Cancelled() {
				return cc.Err()
			}
			blkEnd := blk + vbuf.BatchSize
			if blkEnd > hi {
				blkEnd = hi
			}
			for _, fl := range fillers {
				fl(b, blk, blkEnd)
			}
			b.Base = blk
			if oid != nil {
				out := b.Ints(oid.Idx)
				for j := range int(blkEnd - blk) {
					out[j] = blk + int64(j)
				}
				b.Null[oid.Null] = nil
			}
			b.ResetSel(int(blkEnd - blk))
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	})
	n := hi - lo
	if n < 0 {
		n = 0
	}
	fields := n * int64(len(fillers))
	if prof := spec.Prof; prof != nil {
		inner := run
		run = func(regs *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
			prof.BytesRead += fields * cellSize
			prof.FieldsParsed += fields
			return inner(regs, b, consume)
		}
	}
	return run, nil
}

// morselBounds clamps an optional morsel to [0, rows).
func morselBounds(m *plugin.Morsel, rows int64) (int64, int64) {
	if m == nil {
		return 0, rows
	}
	lo, hi := m.Start, m.End
	if lo < 0 {
		lo = 0
	}
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// PartitionScan implements plugin.Partitioner: binary rows are fixed-cost,
// so morsels are equal record ranges.
func (p *Plugin) PartitionScan(ds *plugin.Dataset, parts int) ([]plugin.Morsel, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	return plugin.SplitRows(st.rows, parts), nil
}

// CompileUnnest implements plugin.Input: flat format, nothing to unnest.
func (p *Plugin) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

// decodeRow boxes one row into a record value.
func (st *state) decodeRow(row int64, names []string) types.Value {
	vals := make([]types.Value, len(st.schema.Fields))
	for col, f := range st.schema.Fields {
		switch f.Type.Kind() {
		case types.KindInt:
			vals[col] = types.IntValue(st.readInt(col, row))
		case types.KindFloat:
			vals[col] = types.FloatValue(st.readFloat(col, row))
		case types.KindBool:
			vals[col] = types.BoolValue(st.readBool(col, row))
		default:
			vals[col] = types.StringValue(st.readString(col, row))
		}
	}
	return types.RecordValue(names, vals)
}

// ReadRows implements plugin.Input.
func (p *Plugin) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	st, err := p.state(ds)
	if err != nil {
		return nil, err
	}
	names := st.schema.Names()
	out := make([]types.Value, 0, st.rows)
	for row := int64(0); row < st.rows; row++ {
		out = append(out, st.decodeRow(row, names))
	}
	return out, nil
}
