// Package binpg is the relational binary input plug-in (§5.2). It defines a
// compact binary file format in both row-major and column-major (MonetDB-
// like) layouts, a writer used by the data generators and by the cache
// spiller, and compiled scans that read field values at computed memory
// positions — the cheapest access path the engine supports.
package binpg

import (
	"encoding/binary"
	"fmt"

	"proteus/internal/types"
)

// File layout (little-endian):
//
//	magic    [4]byte  "PBC1" (columnar) or "PBR1" (row-major)
//	nCols    uint32
//	nRows    uint64
//	per col: kind uint8, nameLen uint16, name bytes
//	columnar: per col { dataOff uint64, dataLen uint64 }, then column blobs:
//	    int/float: nRows×8 bytes; bool: nRows bytes;
//	    string: (nRows+1)×uint32 offsets, then the concatenated bytes
//	row-major: rows of nCols×8-byte cells (strings are off|len into a heap
//	    that follows the rows; bools are 0/1 in the low byte)
var (
	magicColumnar = [4]byte{'P', 'B', 'C', '1'}
	magicRow      = [4]byte{'P', 'B', 'R', '1'}
)

const cellSize = 8

func kindByte(t types.Type) (byte, error) {
	switch t.Kind() {
	case types.KindInt:
		return 0, nil
	case types.KindFloat:
		return 1, nil
	case types.KindBool:
		return 2, nil
	case types.KindString:
		return 3, nil
	}
	return 0, fmt.Errorf("binpg: unsupported column type %s", t)
}

func byteKind(b byte) (types.Type, error) {
	switch b {
	case 0:
		return types.Int, nil
	case 1:
		return types.Float, nil
	case 2:
		return types.Bool, nil
	case 3:
		return types.String, nil
	}
	return nil, fmt.Errorf("binpg: unknown column kind %d", b)
}

// Column holds one typed column for encoding. Exactly the slice matching
// Type is consulted.
type Column struct {
	Name   string
	Type   types.Type
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
}

func (c *Column) rows() int {
	switch c.Type.Kind() {
	case types.KindInt:
		return len(c.Ints)
	case types.KindFloat:
		return len(c.Floats)
	case types.KindBool:
		return len(c.Bools)
	default:
		return len(c.Strs)
	}
}

// EncodeColumnar serializes columns into the column-major format.
func EncodeColumnar(cols []Column) ([]byte, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("binpg: no columns")
	}
	nRows := cols[0].rows()
	for _, c := range cols[1:] {
		if c.rows() != nRows {
			return nil, fmt.Errorf("binpg: column %q has %d rows, want %d", c.Name, c.rows(), nRows)
		}
	}
	var buf []byte
	buf = append(buf, magicColumnar[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cols)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nRows))
	for _, c := range cols {
		kb, err := kindByte(c.Type)
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	// Reserve the per-column offset table and fill it as blobs are written.
	offTable := len(buf)
	buf = append(buf, make([]byte, len(cols)*16)...)
	for i, c := range cols {
		dataOff := uint64(len(buf))
		switch c.Type.Kind() {
		case types.KindInt:
			for _, v := range c.Ints {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		case types.KindFloat:
			for _, v := range c.Floats {
				buf = binary.LittleEndian.AppendUint64(buf, floatBits(v))
			}
		case types.KindBool:
			for _, v := range c.Bools {
				if v {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case types.KindString:
			off := uint32(0)
			for _, s := range c.Strs {
				buf = binary.LittleEndian.AppendUint32(buf, off)
				off += uint32(len(s))
			}
			buf = binary.LittleEndian.AppendUint32(buf, off)
			for _, s := range c.Strs {
				buf = append(buf, s...)
			}
		}
		binary.LittleEndian.PutUint64(buf[offTable+i*16:], dataOff)
		binary.LittleEndian.PutUint64(buf[offTable+i*16+8:], uint64(len(buf))-dataOff)
	}
	return buf, nil
}

// EncodeRows serializes columns into the row-major format.
func EncodeRows(cols []Column) ([]byte, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("binpg: no columns")
	}
	nRows := cols[0].rows()
	for _, c := range cols[1:] {
		if c.rows() != nRows {
			return nil, fmt.Errorf("binpg: column %q has %d rows, want %d", c.Name, c.rows(), nRows)
		}
	}
	var buf []byte
	buf = append(buf, magicRow[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cols)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nRows))
	for _, c := range cols {
		kb, err := kindByte(c.Type)
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	var heap []byte
	for r := 0; r < nRows; r++ {
		for _, c := range cols {
			switch c.Type.Kind() {
			case types.KindInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Ints[r]))
			case types.KindFloat:
				buf = binary.LittleEndian.AppendUint64(buf, floatBits(c.Floats[r]))
			case types.KindBool:
				var v uint64
				if c.Bools[r] {
					v = 1
				}
				buf = binary.LittleEndian.AppendUint64(buf, v)
			case types.KindString:
				s := c.Strs[r]
				cell := uint64(len(heap))<<32 | uint64(uint32(len(s)))
				heap = append(heap, s...)
				buf = binary.LittleEndian.AppendUint64(buf, cell)
			}
		}
	}
	buf = append(buf, heap...)
	return buf, nil
}

// FromValues converts boxed record values into typed columns (used by tests
// and by the generic write path).
func FromValues(schema *types.RecordType, rows []types.Value) ([]Column, error) {
	cols := make([]Column, len(schema.Fields))
	for i, f := range schema.Fields {
		cols[i] = Column{Name: f.Name, Type: f.Type}
	}
	for _, rv := range rows {
		if rv.Kind != types.KindRecord {
			return nil, fmt.Errorf("binpg: non-record row %s", rv)
		}
		for i, f := range schema.Fields {
			v, _ := rv.Field(f.Name)
			switch f.Type.Kind() {
			case types.KindInt:
				cols[i].Ints = append(cols[i].Ints, v.AsInt())
			case types.KindFloat:
				cols[i].Floats = append(cols[i].Floats, v.AsFloat())
			case types.KindBool:
				cols[i].Bools = append(cols[i].Bools, v.Bool())
			case types.KindString:
				cols[i].Strs = append(cols[i].Strs, v.S)
			default:
				return nil, fmt.Errorf("binpg: unsupported column type %s", f.Type)
			}
		}
	}
	return cols, nil
}
