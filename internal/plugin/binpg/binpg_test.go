package binpg

import (
	"testing"
	"testing/quick"

	"proteus/internal/plugin"
	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

func testColumns() []Column {
	return []Column{
		{Name: "id", Type: types.Int, Ints: []int64{1, 2, 3, 4}},
		{Name: "score", Type: types.Float, Floats: []float64{1.5, -2.5, 0, 99.25}},
		{Name: "ok", Type: types.Bool, Bools: []bool{true, false, true, false}},
		{Name: "tag", Type: types.String, Strs: []string{"a", "", "ccc", "dd"}},
	}
}

func openBin(t *testing.T, data []byte) (*Plugin, *plugin.Dataset, *plugin.Env) {
	t.Helper()
	mem := storage.NewManager(0)
	mem.PutFile("mem://t.bin", data)
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore(), SampleEvery: 1}
	p := New()
	ds := &plugin.Dataset{Name: "t", Path: "mem://t.bin", Format: "bin"}
	if err := p.Open(env, ds); err != nil {
		t.Fatalf("open: %v", err)
	}
	return p, ds, env
}

func roundtrip(t *testing.T, encode func([]Column) ([]byte, error)) {
	t.Helper()
	cols := testColumns()
	data, err := encode(cols)
	if err != nil {
		t.Fatal(err)
	}
	p, ds, _ := openBin(t, data)
	if p.Cardinality(ds) != 4 {
		t.Fatalf("rows = %d", p.Cardinality(ds))
	}
	rows, err := p.ReadRows(ds)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if v, _ := rows[r].Field("id"); v.AsInt() != cols[0].Ints[r] {
			t.Errorf("row %d id = %s", r, v)
		}
		if v, _ := rows[r].Field("score"); v.AsFloat() != cols[1].Floats[r] {
			t.Errorf("row %d score = %s", r, v)
		}
		if v, _ := rows[r].Field("ok"); v.Bool() != cols[2].Bools[r] {
			t.Errorf("row %d ok = %s", r, v)
		}
		if v, _ := rows[r].Field("tag"); v.S != cols[3].Strs[r] {
			t.Errorf("row %d tag = %s", r, v)
		}
	}
}

func TestColumnarRoundtrip(t *testing.T) { roundtrip(t, EncodeColumnar) }
func TestRowRoundtrip(t *testing.T)      { roundtrip(t, EncodeRows) }

func TestCompiledScanBothLayouts(t *testing.T) {
	for name, encode := range map[string]func([]Column) ([]byte, error){
		"columnar": EncodeColumnar, "rows": EncodeRows,
	} {
		t.Run(name, func(t *testing.T) {
			data, err := encode(testColumns())
			if err != nil {
				t.Fatal(err)
			}
			p, ds, _ := openBin(t, data)
			var alloc vbuf.Alloc
			idSlot := alloc.Int()
			tagSlot := alloc.String()
			run, err := p.CompileScan(ds, plugin.ScanSpec{Fields: []plugin.FieldReq{
				{Path: []string{"id"}, Slot: idSlot, Type: types.Int},
				{Path: []string{"tag"}, Slot: tagSlot, Type: types.String},
			}})
			if err != nil {
				t.Fatal(err)
			}
			regs := vbuf.NewRegs(&alloc)
			var ids []int64
			var tags []string
			if err := run(regs, func() error {
				ids = append(ids, regs.I[idSlot.Idx])
				tags = append(tags, regs.S[tagSlot.Idx])
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(ids) != 4 || ids[3] != 4 || tags[2] != "ccc" {
				t.Errorf("ids = %v tags = %v", ids, tags)
			}
		})
	}
}

func TestStatsGathered(t *testing.T) {
	data, _ := EncodeColumnar(testColumns())
	_, _, env := openBin(t, data)
	tbl, _ := env.Stats.Lookup("t")
	c := tbl.Cols["score"]
	if c == nil || c.Min != -2.5 || c.Max != 99.25 {
		t.Errorf("score stats = %+v", c)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeColumnar(nil); err == nil {
		t.Error("empty columns should fail")
	}
	uneven := []Column{
		{Name: "a", Type: types.Int, Ints: []int64{1, 2}},
		{Name: "b", Type: types.Int, Ints: []int64{1}},
	}
	if _, err := EncodeColumnar(uneven); err == nil {
		t.Error("uneven columns should fail")
	}
	if _, err := EncodeRows(uneven); err == nil {
		t.Error("uneven rows should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	mem := storage.NewManager(0)
	env := &plugin.Env{Mem: mem, Stats: stats.NewStore()}
	mem.PutFile("mem://junk.bin", []byte("JUNKJUNKJUNKJUNKJUNK"))
	ds := &plugin.Dataset{Name: "junk", Path: "mem://junk.bin"}
	if err := New().Open(env, ds); err == nil {
		t.Error("bad magic should fail")
	}
	mem.PutFile("mem://short.bin", []byte("PB"))
	ds = &plugin.Dataset{Name: "short", Path: "mem://short.bin"}
	if err := New().Open(env, ds); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestFromValues(t *testing.T) {
	schema := types.NewRecordType(
		types.Field{Name: "x", Type: types.Int},
		types.Field{Name: "y", Type: types.String},
	)
	rows := []types.Value{
		types.RecordValue([]string{"x", "y"}, []types.Value{types.IntValue(1), types.StringValue("a")}),
		types.RecordValue([]string{"x", "y"}, []types.Value{types.IntValue(2), types.StringValue("b")}),
	}
	cols, err := FromValues(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Ints[1] != 2 || cols[1].Strs[0] != "a" {
		t.Errorf("cols = %+v", cols)
	}
	if _, err := FromValues(schema, []types.Value{types.IntValue(1)}); err == nil {
		t.Error("non-record row should fail")
	}
}

func TestRoundtripProperty(t *testing.T) {
	// Property: any int64/float64 column pair survives an encode/decode
	// cycle in both layouts.
	f := func(ints []int64, seed int64) bool {
		if len(ints) == 0 {
			ints = []int64{seed}
		}
		floats := make([]float64, len(ints))
		for i, v := range ints {
			floats[i] = float64(v) / 3.0
		}
		cols := []Column{
			{Name: "i", Type: types.Int, Ints: ints},
			{Name: "f", Type: types.Float, Floats: floats},
		}
		for _, encode := range []func([]Column) ([]byte, error){EncodeColumnar, EncodeRows} {
			data, err := encode(cols)
			if err != nil {
				return false
			}
			mem := storage.NewManager(0)
			mem.PutFile("mem://p.bin", data)
			env := &plugin.Env{Mem: mem, Stats: stats.NewStore()}
			ds := &plugin.Dataset{Name: "p", Path: "mem://p.bin"}
			p := New()
			if err := p.Open(env, ds); err != nil {
				return false
			}
			rows, err := p.ReadRows(ds)
			if err != nil || len(rows) != len(ints) {
				return false
			}
			for r := range ints {
				iv, _ := rows[r].Field("i")
				fv, _ := rows[r].Field("f")
				if iv.AsInt() != ints[r] || fv.AsFloat() != floats[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
