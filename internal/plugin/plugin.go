// Package plugin defines the input plug-in API of the paper (Table 2).
// Input plug-ins encapsulate data *format* heterogeneity: each one knows how
// to open a dataset of its format, build the format's structural index,
// gather statistics on cold access, and — most importantly — emit the
// specialized data-access code for a scan or an unnest at query compile
// time.
//
// Correspondence with the paper's plug-in API (Table 2):
//
//	generate()                    → CompileScan (the scan loop + field
//	                                extraction specialized to the query's
//	                                field list and the dataset's schema)
//	readValue() / readPath()      → the per-field extraction closures that
//	                                CompileScan installs for each FieldReq
//	unnestInit/HasNext/GetNext()  → CompileUnnest (one closure that drives
//	                                the element loop of a nested collection)
//	hashValue() / flushValue()    → handled by the expression compiler in
//	                                internal/exec, which reads the typed
//	                                virtual buffers the plug-in filled
//
// Every plug-in also produces an object identifier (OID) per record — the
// row counter for flat data, the object ordinal for JSON — which later
// stages use to re-invoke the plug-in lazily (e.g. to unnest a collection
// of the current record without materializing it).
package plugin

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"proteus/internal/stats"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// Cancel is the cooperative cancellation token shared by every pipeline
// clone of one compiled program. Scan drivers poll Cancelled at an
// amortized stride (see CancelStride) and abort with Err when it fires.
//
// The token outlives a single run: a Program may be executed repeatedly,
// and each run Arms a new generation. SignalAt ignores signals addressed
// to an earlier generation, so a stale context.AfterFunc from a previous
// run can never cancel a later one. All methods are nil-safe so compiled
// closures can poll unconditionally.
type Cancel struct {
	fired atomic.Bool

	mu  sync.Mutex
	gen uint64
	err error
}

// CancelStride is the row-granularity at which scan drivers poll the
// token: rows whose ordinal is a multiple of the stride pay one atomic
// load; all others pay a single mask-and-compare.
const CancelStride = 1024

// Arm starts a new run generation, clearing any previous signal, and
// returns the generation to hand to SignalAt.
func (c *Cancel) Arm() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.err = nil
	c.fired.Store(false)
	return c.gen
}

// SignalAt fires the token if gen is still the current generation and no
// earlier signal won. Later signals for the same generation are ignored.
func (c *Cancel) SignalAt(gen uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.fired.Load() {
		return
	}
	c.err = err
	c.fired.Store(true)
}

// Signal fires the token for the current generation. Workers use it to
// abort their siblings when one pipeline clone fails.
func (c *Cancel) Signal(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired.Load() {
		return
	}
	c.err = err
	c.fired.Store(true)
}

// Cancelled reports whether the token has fired. Nil-safe and cheap (one
// atomic load), so drivers poll it directly.
func (c *Cancel) Cancelled() bool { return c != nil && c.fired.Load() }

// Err returns the signalled error, or nil if the token has not fired.
func (c *Cancel) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Env carries the engine services a plug-in may use.
type Env struct {
	Mem   *storage.Manager
	Stats *stats.Store
	// SampleEvery is the statistics sampling stride during cold access:
	// every SampleEvery-th record contributes to min/max statistics. The
	// paper lets plug-in developers calibrate this (§5.2); 0 disables
	// sampling.
	SampleEvery int
}

// Options carries per-dataset, format-specific settings.
type Options struct {
	// CSV options.
	Delimiter   byte // field delimiter, ',' by default
	Header      bool // first line holds column names
	IndexStride int  // structural index keeps every Nth field position (default 8)

	// Binary options.
	Columnar bool // column-major layout (MonetDB-like) vs row-major

	// JSON options.
	DisableLevel0        bool // ablation: force sequential Level-1 lookup
	DisableDeterministic bool // ablation: never drop Level 0 for fixed-schema data
}

// Dataset is a registered input: a name, a file (real or in-memory), a
// format, and a schema. State is owned by the plug-in after Open.
type Dataset struct {
	Name   string
	Path   string
	Format string
	Schema *types.RecordType
	Opts   Options

	// State holds the plug-in's open state: file image, structural index,
	// parsed headers. Nil until Open succeeds.
	State any
}

// FieldReq asks the plug-in to place one (possibly nested, dotted) field of
// each record into a virtual-buffer slot.
type FieldReq struct {
	Path []string
	Slot vbuf.Slot
	Type types.Type
}

// Morsel is one unit of scan parallelism: a contiguous range of record
// ordinals [Start, End). Plug-ins compute morsel boundaries from their
// structural indexes (byte-balanced and snapped to record boundaries for
// the raw formats), so a morsel is always a whole number of records.
type Morsel struct {
	Start, End int64
}

// Rows returns the number of records the morsel covers.
func (m Morsel) Rows() int64 { return m.End - m.Start }

// ScanSpec describes what a scan must extract.
type ScanSpec struct {
	Fields []FieldReq
	// OIDSlot, when non-nil, receives each record's OID (an int64).
	OIDSlot *vbuf.Slot
	// Morsel, when non-nil, restricts the scan driver to the record range
	// [Morsel.Start, Morsel.End). OIDs remain absolute ordinals, so cache
	// loads and lazy unnests keyed by OID work unchanged under parallelism.
	Morsel *Morsel
	// Prof, when non-nil, receives the plug-in's access counters. The
	// driver owns it exclusively (one per pipeline clone), so plug-ins add
	// to it without synchronization — and only once per driver invocation
	// (per morsel), never per record: counts are derived arithmetically
	// from the compiled field list and the scanned range.
	Prof *ScanProf
	// Cancel, when non-nil, is the query's cooperative cancellation token.
	// Drivers poll it between batches of CancelStride records and return
	// its Err when it fires. A nil token never fires.
	Cancel *Cancel
}

// ScanProf accumulates a scan plug-in's access counters across the driver
// invocations of one worker. Bytes are the source-format span covered;
// fields are individual extract/parse operations; index hits are lookups
// served by the format's structural index (CSV positional jumps, JSON
// Level-0/Level-1 resolutions).
type ScanProf struct {
	BytesRead    int64
	FieldsParsed int64
	IndexHits    int64
}

// Add folds another profile into this one (snapshot aggregation).
func (p *ScanProf) Add(o ScanProf) {
	p.BytesRead += o.BytesRead
	p.FieldsParsed += o.FieldsParsed
	p.IndexHits += o.IndexHits
}

// WrapRun wraps a scan driver so each invocation adds the precomputed
// per-run deltas — the shared per-morsel accounting path of the plug-ins.
func (p *ScanProf) WrapRun(run RunFunc, bytes, fields, indexHits int64) RunFunc {
	if p == nil {
		return run
	}
	return func(regs *vbuf.Regs, consume func() error) error {
		p.BytesRead += bytes
		p.FieldsParsed += fields
		p.IndexHits += indexHits
		return run(regs, consume)
	}
}

// RunFunc drives a compiled scan: it loops over the dataset, fills the
// requested slots for each record, and calls consume once per record.
type RunFunc func(regs *vbuf.Regs, consume func() error) error

// BatchRunFunc drives a vectorized scan: it fills the requested slots'
// *columns* of b for up to vbuf.BatchSize records at a time, resets the
// selection vector, and calls consume once per batch. regs is passed along
// for producers that internally reuse tuple extraction (BatchFromTuples);
// columnar producers ignore it. Drivers poll the cancellation token once
// per batch — the same granularity as the tuple path's CancelStride.
type BatchRunFunc func(regs *vbuf.Regs, b *vbuf.Batch, consume func() error) error

// BatchScanner is the optional vectorized-scan capability of an input
// plug-in: CompileBatchScan returns a driver that produces column batches
// instead of tuples. Plug-ins may return ErrUnsupported for field lists
// they cannot vectorize (nested paths, whole-record boxing); the executor
// then falls back to BatchFromTuples over the tuple scan, or to the tuple
// path entirely.
type BatchScanner interface {
	CompileBatchScan(ds *Dataset, spec ScanSpec) (BatchRunFunc, error)
}

// BatchFromTuples lifts a tuple scan driver into a batch driver: it runs
// the tuple scan and transposes each record's scalar slots (and OID) into
// batch columns, flushing a batch every vbuf.BatchSize records and at EOF.
// This is the generic producer for formats whose extraction is inherently
// record-at-a-time (JSON); the downstream kernels still win by running
// vectorized. Every spec.Fields slot must be scalar (no ClassValue).
func BatchFromTuples(run RunFunc, spec ScanSpec) BatchRunFunc {
	fields := append([]FieldReq(nil), spec.Fields...)
	oid := spec.OIDSlot
	return func(regs *vbuf.Regs, b *vbuf.Batch, consume func() error) error {
		// Materialize every column (and null column) once up front so the
		// per-record copy loop below touches pre-sized arrays only.
		type colCopy func(j int)
		copies := make([]colCopy, 0, len(fields)+1)
		for _, f := range fields {
			slot := f.Slot
			nulls := b.Nulls(slot.Null)
			switch slot.Class {
			case vbuf.ClassInt:
				col := b.Ints(slot.Idx)
				copies = append(copies, func(j int) {
					col[j] = regs.I[slot.Idx]
					nulls[j] = regs.Null[slot.Null]
				})
			case vbuf.ClassFloat:
				col := b.Floats(slot.Idx)
				copies = append(copies, func(j int) {
					col[j] = regs.F[slot.Idx]
					nulls[j] = regs.Null[slot.Null]
				})
			case vbuf.ClassBool:
				col := b.Bools(slot.Idx)
				copies = append(copies, func(j int) {
					col[j] = regs.B[slot.Idx]
					nulls[j] = regs.Null[slot.Null]
				})
			case vbuf.ClassString:
				col := b.Strs(slot.Idx)
				copies = append(copies, func(j int) {
					col[j] = regs.S[slot.Idx]
					nulls[j] = regs.Null[slot.Null]
				})
			default:
				copies = append(copies, func(j int) { nulls[j] = true })
			}
		}
		if oid != nil {
			col := b.Ints(oid.Idx)
			b.Null[oid.Null] = nil
			copies = append(copies, func(j int) { col[j] = regs.I[oid.Idx] })
		}
		n := 0
		flush := func() error {
			if n == 0 {
				return nil
			}
			b.ResetSel(n)
			if oid != nil {
				b.Base = b.I[oid.Idx][0]
			}
			n = 0
			return consume()
		}
		err := run(regs, func() error {
			for _, cp := range copies {
				cp(n)
			}
			n++
			if n == vbuf.BatchSize {
				return flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
		return flush()
	}
}

// UnnestSpec describes iteration over a nested collection field of the
// *current* record (identified by the OID previously placed in OIDSlot).
type UnnestSpec struct {
	OIDSlot vbuf.Slot
	Path    []string
	// For collections of records, ElemFields lists the element fields to
	// extract per element. For scalar elements, ElemSlot receives the value.
	ElemFields []FieldReq
	ElemSlot   *vbuf.Slot
	ElemType   types.Type
}

// UnnestFunc iterates the collection of the current record, filling element
// slots and calling consume once per element.
type UnnestFunc func(regs *vbuf.Regs, consume func() error) error

// ErrUnsupported is returned by plug-ins for operations their format cannot
// provide (e.g. lazy unnest on flat CSV data); callers fall back to the
// generic boxed-value path.
var ErrUnsupported = errors.New("plugin: operation not supported by this format")

// Input is the interface every input plug-in implements. Adding support for
// a new data format to the engine means implementing Input and registering
// it (§5.2 "Adding More Inputs").
type Input interface {
	// Format returns the format tag this plug-in serves ("csv", "json", ...).
	Format() string

	// Open loads the dataset: reads/pins the file image via env.Mem, builds
	// the format's structural index, infers the schema if none was declared,
	// and records statistics into env.Stats (cold-access gathering, §5.2).
	Open(env *Env, ds *Dataset) error

	// Schema returns the dataset's record schema (available after Open).
	Schema(ds *Dataset) *types.RecordType

	// Cardinality returns the number of records (available after Open).
	Cardinality(ds *Dataset) int64

	// FieldCost returns the relative per-field access cost of this format,
	// used by the cost formulas the plug-in provides to the optimizer.
	FieldCost() float64

	// CompileScan returns the specialized scan code for this dataset and
	// field list — the plug-in's generate() step.
	CompileScan(ds *Dataset, spec ScanSpec) (RunFunc, error)

	// CompileUnnest returns specialized element-iteration code for a nested
	// collection, or ErrUnsupported for flat formats.
	CompileUnnest(ds *Dataset, spec UnnestSpec) (UnnestFunc, error)

	// ReadRows decodes the entire dataset into boxed record values. This is
	// the deliberately general-purpose path the baseline engines use to
	// ingest data, and what Proteus itself uses only for nested values that
	// must be materialized.
	ReadRows(ds *Dataset) ([]types.Value, error)
}

// Partitioner is the optional morsel-splitting capability of an input
// plug-in. PartitionScan splits a dataset into at most parts non-empty,
// contiguous, ordinal-ordered morsels that tile [0, Cardinality). Formats
// with variable-length records (CSV, JSON) balance morsels by byte size
// using their structural indexes rather than by record count. Plug-ins
// that do not implement Partitioner are scanned serially.
type Partitioner interface {
	PartitionScan(ds *Dataset, parts int) ([]Morsel, error)
}

// SplitRows partitions [0, rows) into at most parts near-equal morsels —
// the fallback splitter for fixed-width formats.
func SplitRows(rows int64, parts int) []Morsel {
	if rows <= 0 || parts <= 1 {
		if rows <= 0 {
			return nil
		}
		return []Morsel{{Start: 0, End: rows}}
	}
	if int64(parts) > rows {
		parts = int(rows)
	}
	out := make([]Morsel, 0, parts)
	start := int64(0)
	for i := 0; i < parts; i++ {
		end := rows * int64(i+1) / int64(parts)
		if end > start {
			out = append(out, Morsel{Start: start, End: end})
			start = end
		}
	}
	return out
}

// SplitByStarts splits the records whose byte offsets are starts (one per
// record, ascending) into at most parts morsels whose byte spans are
// near-equal: each cut is the first record starting at or after the i-th
// byte target. This is how the raw-format plug-ins turn their structural
// indexes into byte-balanced morsels despite variable-width records.
func SplitByStarts[T int32 | uint32](starts []T, totalBytes int64, parts int) []Morsel {
	rows := int64(len(starts))
	if parts <= 1 || rows <= 1 {
		return SplitRows(rows, parts)
	}
	if int64(parts) > rows {
		parts = int(rows)
	}
	out := make([]Morsel, 0, parts)
	start := int64(0)
	for i := 1; i < parts; i++ {
		target := T(totalBytes * int64(i) / int64(parts))
		cut := int64(sort.Search(len(starts), func(j int) bool { return starts[j] >= target }))
		if cut <= start {
			continue
		}
		if cut >= rows {
			break
		}
		out = append(out, Morsel{Start: start, End: cut})
		start = cut
	}
	if start < rows {
		out = append(out, Morsel{Start: start, End: rows})
	}
	return out
}

// Registry maps format tags to plug-ins.
type Registry struct {
	inputs map[string]Input
}

// NewRegistry returns an empty plug-in registry.
func NewRegistry() *Registry { return &Registry{inputs: map[string]Input{}} }

// Register adds a plug-in under its format tag.
func (r *Registry) Register(in Input) { r.inputs[in.Format()] = in }

// For returns the plug-in for a format tag.
func (r *Registry) For(format string) (Input, error) {
	in, ok := r.inputs[format]
	if !ok {
		return nil, fmt.Errorf("plugin: no input plug-in registered for format %q", format)
	}
	return in, nil
}

// Formats lists the registered format tags.
func (r *Registry) Formats() []string {
	out := make([]string, 0, len(r.inputs))
	for f := range r.inputs {
		out = append(out, f)
	}
	return out
}

// FieldPathString renders a dotted field path.
func FieldPathString(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}
