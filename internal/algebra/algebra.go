// Package algebra defines the nested relational algebra of the paper
// (Table 1): Select, Join, OuterJoin, Unnest, OuterUnnest, Reduce, and Nest,
// plus the leaf Scan. Plans are immutable trees produced from calculus
// comprehensions, rewritten by the optimizer, matched against caches by
// structural fingerprint, and finally compiled into a per-query engine.
package algebra

import (
	"strings"

	"proteus/internal/expr"
	"proteus/internal/types"
)

// Node is any operator of the nested relational algebra.
type Node interface {
	// Children returns the operator's inputs (0 for Scan, 2 for joins).
	Children() []Node
	// Bindings returns the variable bindings visible above this operator,
	// mapping binding name to the record (or element) type it carries.
	Bindings() expr.Env
	// Fingerprint renders a canonical structural form of the subtree. Two
	// subtrees with the same fingerprint compute the same result; the cache
	// manager uses fingerprints as matching keys (§6 "Cache Matching").
	Fingerprint() string
}

// Scan reads a registered dataset and introduces one binding per object.
type Scan struct {
	Dataset string // catalog name of the dataset
	Binding string // variable bound to each element
	Type    *types.RecordType
	// Fields lists the field paths (dotted) that the rest of the plan needs;
	// the optimizer pushes projections down by filling this in so the input
	// plug-in extracts only what is required. Empty means all fields.
	Fields []string
	// Pushed lists the sargable conjuncts (field-vs-constant comparisons)
	// from the Select chain directly above this scan, recorded by the
	// optimizer. They are advisory: the Selects still evaluate the
	// predicates, and the executor uses Pushed for zone-map window skipping
	// and bitmap-index access paths over cached columns.
	Pushed []PushedPred
}

// PushedPred is one sargable conjunct <path> <op> <const> on a scan's
// binding. The constant is always on the right (the optimizer flips the
// operator when the source had it on the left).
type PushedPred struct {
	Path string // dotted field path on the scan's binding
	Op   expr.BinKind
	V    types.Value
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Bindings implements Node.
func (s *Scan) Bindings() expr.Env { return expr.Env{s.Binding: s.Type} }

// Fingerprint implements Node.
func (s *Scan) Fingerprint() string { return "scan(" + s.Dataset + " as " + s.Binding + ")" }

// Select filters tuples by a boolean predicate: σp(X).
type Select struct {
	Pred  expr.Expr
	Child Node
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// Bindings implements Node.
func (s *Select) Bindings() expr.Env { return s.Child.Bindings() }

// Fingerprint implements Node.
func (s *Select) Fingerprint() string {
	return "select[" + s.Pred.String() + "](" + s.Child.Fingerprint() + ")"
}

// Join combines two inputs on a predicate: X ⋈p Y. Outer marks the
// left-outer variant (unmatched left tuples survive with nulls).
type Join struct {
	Pred  expr.Expr
	Left  Node
	Right Node
	Outer bool
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Bindings implements Node.
func (j *Join) Bindings() expr.Env {
	env := expr.Env{}
	for k, v := range j.Left.Bindings() {
		env[k] = v
	}
	for k, v := range j.Right.Bindings() {
		env[k] = v
	}
	return env
}

// Fingerprint implements Node.
func (j *Join) Fingerprint() string {
	op := "join"
	if j.Outer {
		op = "outerjoin"
	}
	return op + "[" + j.Pred.String() + "](" + j.Left.Fingerprint() + ", " + j.Right.Fingerprint() + ")"
}

// EquiKeys decomposes the join predicate into equi-join key pairs
// (leftExpr = rightExpr) plus any residual non-equi conjuncts. The side
// assignment is normalized so the first element of each pair refers only to
// Left's bindings.
func (j *Join) EquiKeys() (left, right []expr.Expr, residual []expr.Expr) {
	lb := map[string]bool{}
	for k := range j.Left.Bindings() {
		lb[k] = true
	}
	rb := map[string]bool{}
	for k := range j.Right.Bindings() {
		rb[k] = true
	}
	for _, c := range expr.SplitConjuncts(j.Pred) {
		b, ok := c.(*expr.BinOp)
		if ok && b.Op == expr.OpEq {
			switch {
			case expr.OnlyRefs(b.L, lb) && expr.OnlyRefs(b.R, rb):
				left = append(left, b.L)
				right = append(right, b.R)
				continue
			case expr.OnlyRefs(b.L, rb) && expr.OnlyRefs(b.R, lb):
				left = append(left, b.R)
				right = append(right, b.L)
				continue
			}
		}
		residual = append(residual, c)
	}
	return left, right, residual
}

// Unnest unrolls a nested collection reached by Path from an existing
// binding, introducing Binding for each element: μ^path_p(X). Outer keeps
// parent tuples whose collection is empty (with a null binding).
type Unnest struct {
	Path    expr.Expr // e.g. s.children — must be a FieldAcc path
	Binding string    // variable bound to each element
	Pred    expr.Expr // optional embedded filter on the element (may be nil)
	Outer   bool
	Child   Node
}

// Children implements Node.
func (u *Unnest) Children() []Node { return []Node{u.Child} }

// Bindings implements Node.
func (u *Unnest) Bindings() expr.Env {
	env := expr.Env{}
	for k, v := range u.Child.Bindings() {
		env[k] = v
	}
	if t, err := expr.InferType(u.Path, u.Child.Bindings()); err == nil {
		if et := types.ElemType(t); et != nil {
			env[u.Binding] = et
		}
	}
	return env
}

// Fingerprint implements Node.
func (u *Unnest) Fingerprint() string {
	op := "unnest"
	if u.Outer {
		op = "outerunnest"
	}
	pred := ""
	if u.Pred != nil {
		pred = "|" + u.Pred.String()
	}
	return op + "[" + u.Path.String() + " as " + u.Binding + pred + "](" + u.Child.Fingerprint() + ")"
}

// Reduce folds the input into a final result: ∆^⊕/e_p. Several aggregate
// monoids may be computed in one pass (SELECT COUNT(*), MAX(x) ...). When a
// single AggBag/AggList is used, the result is the output collection itself.
type Reduce struct {
	Aggs  []expr.Agg
	Names []string  // output column names, parallel to Aggs
	Pred  expr.Expr // optional embedded filter (may be nil)
	Child Node
}

// Children implements Node.
func (r *Reduce) Children() []Node { return []Node{r.Child} }

// Bindings implements Node.
func (r *Reduce) Bindings() expr.Env { return r.Child.Bindings() }

// Fingerprint implements Node.
func (r *Reduce) Fingerprint() string {
	var sb strings.Builder
	sb.WriteString("reduce[")
	for i, a := range r.Aggs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if r.Pred != nil {
		sb.WriteString(" | ")
		sb.WriteString(r.Pred.String())
	}
	sb.WriteString("](")
	sb.WriteString(r.Child.Fingerprint())
	sb.WriteString(")")
	return sb.String()
}

// Nest groups the input by expressions f and folds each group with the
// aggregate monoids: Γ^⊕/e/f_p/g (Table 1). GroupNames label the group-by
// columns in the output records.
type Nest struct {
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []expr.Agg
	AggNames   []string
	Pred       expr.Expr // optional embedded filter (may be nil)
	Child      Node
}

// Children implements Node.
func (n *Nest) Children() []Node { return []Node{n.Child} }

// Bindings implements Node.
func (n *Nest) Bindings() expr.Env { return n.Child.Bindings() }

// Fingerprint implements Node.
func (n *Nest) Fingerprint() string {
	var sb strings.Builder
	sb.WriteString("nest[by ")
	for i, g := range n.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g.String())
	}
	sb.WriteString(" agg ")
	for i, a := range n.Aggs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if n.Pred != nil {
		sb.WriteString(" | ")
		sb.WriteString(n.Pred.String())
	}
	sb.WriteString("](")
	sb.WriteString(n.Child.Fingerprint())
	sb.WriteString(")")
	return sb.String()
}

// Walk visits n and its subtree in pre-order.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Scans returns every Scan leaf of the plan in DFS order.
func Scans(n Node) []*Scan {
	var out []*Scan
	Walk(n, func(node Node) bool {
		if s, ok := node.(*Scan); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

// Format renders the plan as an indented tree for EXPLAIN-style output.
func Format(n Node) string {
	var sb strings.Builder
	format(n, 0, &sb)
	return sb.String()
}

func format(n Node, depth int, sb *strings.Builder) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(Label(n))
	sb.WriteString("\n")
	for _, c := range n.Children() {
		format(c, depth+1, sb)
	}
}

// Label renders one operator's single-line description (no children) — the
// per-node text of Format, shared with profiled-plan rendering.
func Label(n Node) string {
	var sb strings.Builder
	switch x := n.(type) {
	case *Scan:
		sb.WriteString("Scan " + x.Dataset + " as " + x.Binding)
		if len(x.Fields) > 0 {
			sb.WriteString(" [" + strings.Join(x.Fields, ", ") + "]")
		}
	case *Select:
		sb.WriteString("Select " + x.Pred.String())
	case *Join:
		if x.Outer {
			sb.WriteString("OuterJoin ")
		} else {
			sb.WriteString("Join ")
		}
		sb.WriteString(x.Pred.String())
	case *Unnest:
		if x.Outer {
			sb.WriteString("OuterUnnest ")
		} else {
			sb.WriteString("Unnest ")
		}
		sb.WriteString(x.Path.String() + " as " + x.Binding)
		if x.Pred != nil {
			sb.WriteString(" | " + x.Pred.String())
		}
	case *Reduce:
		sb.WriteString("Reduce ")
		for i, a := range x.Aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	case *Nest:
		sb.WriteString("Nest by ")
		for i, g := range x.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
		sb.WriteString(" agg ")
		for i, a := range x.Aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	return sb.String()
}
