package algebra

import (
	"strings"
	"testing"

	"proteus/internal/expr"
	"proteus/internal/types"
)

func field(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func sampleSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "kids", Type: types.NewListType(types.NewRecordType(
			types.Field{Name: "age", Type: types.Int},
		))},
	)
}

func TestBindings(t *testing.T) {
	scan := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema()}
	env := scan.Bindings()
	if len(env) != 1 || env["x"] == nil {
		t.Fatalf("scan bindings = %v", env)
	}
	u := &Unnest{Path: field("x", "kids"), Binding: "k", Child: scan}
	env = u.Bindings()
	if env["k"] == nil {
		t.Fatalf("unnest bindings = %v", env)
	}
	rt, ok := env["k"].(*types.RecordType)
	if !ok || rt.Index("age") != 0 {
		t.Errorf("element type = %v", env["k"])
	}
	j := &Join{
		Pred:  &expr.Const{V: types.BoolValue(true)},
		Left:  scan,
		Right: &Scan{Dataset: "u", Binding: "y", Type: sampleSchema()},
	}
	env = j.Bindings()
	if env["x"] == nil || env["y"] == nil {
		t.Errorf("join bindings = %v", env)
	}
}

func TestEquiKeysNormalization(t *testing.T) {
	l := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema()}
	r := &Scan{Dataset: "u", Binding: "y", Type: sampleSchema()}
	// Key written right=left must normalize so the first side refers to the
	// left bindings.
	j := &Join{
		Pred: &expr.BinOp{Op: expr.OpAnd,
			L: &expr.BinOp{Op: expr.OpEq, L: field("y", "a"), R: field("x", "a")},
			R: &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: &expr.Const{V: types.IntValue(5)}},
		},
		Left:  l,
		Right: r,
	}
	kl, kr, res := j.EquiKeys()
	if len(kl) != 1 || len(kr) != 1 || len(res) != 1 {
		t.Fatalf("keys = %v %v residual %v", kl, kr, res)
	}
	if kl[0].String() != "x.a" || kr[0].String() != "y.a" {
		t.Errorf("normalized keys = %s / %s", kl[0], kr[0])
	}
}

func TestFingerprintsDifferAndRepeat(t *testing.T) {
	scan1 := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema()}
	scan2 := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema()}
	if scan1.Fingerprint() != scan2.Fingerprint() {
		t.Error("identical scans must share fingerprints")
	}
	sel1 := &Select{Pred: &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: &expr.Const{V: types.IntValue(5)}}, Child: scan1}
	sel2 := &Select{Pred: &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: &expr.Const{V: types.IntValue(6)}}, Child: scan1}
	if sel1.Fingerprint() == sel2.Fingerprint() {
		t.Error("different predicates must differ")
	}
	outer := &Join{Pred: &expr.Const{V: types.BoolValue(true)}, Left: scan1, Right: scan2, Outer: true}
	inner := &Join{Pred: &expr.Const{V: types.BoolValue(true)}, Left: scan1, Right: scan2}
	if outer.Fingerprint() == inner.Fingerprint() {
		t.Error("outer and inner joins must differ")
	}
}

func TestWalkAndScans(t *testing.T) {
	scan := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema()}
	plan := &Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &Select{
			Pred:  &expr.BinOp{Op: expr.OpLt, L: field("x", "a"), R: &expr.Const{V: types.IntValue(5)}},
			Child: scan,
		},
	}
	var kinds []string
	Walk(plan, func(n Node) bool {
		switch n.(type) {
		case *Reduce:
			kinds = append(kinds, "reduce")
		case *Select:
			kinds = append(kinds, "select")
		case *Scan:
			kinds = append(kinds, "scan")
		}
		return true
	})
	if strings.Join(kinds, ",") != "reduce,select,scan" {
		t.Errorf("walk order = %v", kinds)
	}
	if got := Scans(plan); len(got) != 1 || got[0] != scan {
		t.Errorf("Scans = %v", got)
	}
	// Early termination.
	count := 0
	Walk(plan, func(n Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("walk with false should stop at root, visited %d", count)
	}
}

func TestFormat(t *testing.T) {
	scan := &Scan{Dataset: "t", Binding: "x", Type: sampleSchema(), Fields: []string{"a"}}
	plan := &Nest{
		GroupBy:    []expr.Expr{field("x", "a")},
		GroupNames: []string{"a"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
		Child: &Unnest{
			Path:    field("x", "kids"),
			Binding: "k",
			Pred:    &expr.BinOp{Op: expr.OpGt, L: field("k", "age"), R: &expr.Const{V: types.IntValue(1)}},
			Child:   scan,
		},
	}
	out := Format(plan)
	for _, want := range []string{"Nest by x.a", "Unnest x.kids as k", "Scan t as x [a]", "| (k.age > 1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
