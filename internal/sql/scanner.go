package sql

import (
	"fmt"

	"proteus/internal/expr"
)

// ExprScanner exposes the SQL token stream and expression grammar to other
// front-ends (the comprehension parser reuses both, so expressions behave
// identically in SQL and in comprehensions).
type ExprScanner struct{ p parser }

// NewExprScanner lexes src and positions the scanner at its first token.
func NewExprScanner(src string) (*ExprScanner, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &ExprScanner{p: parser{toks: toks}}, nil
}

// ParseExpr consumes one expression.
func (s *ExprScanner) ParseExpr() (expr.Expr, error) { return s.p.parseExpr() }

// Accept consumes the token if its text matches (case-insensitive).
func (s *ExprScanner) Accept(text string) bool {
	if s.p.at(tokIdent, text) || s.p.at(tokSymbol, text) {
		s.p.pos++
		return true
	}
	return false
}

// Expect consumes the token or fails.
func (s *ExprScanner) Expect(text string) error {
	if s.Accept(text) {
		return nil
	}
	return fmt.Errorf("expected %q, found %q at offset %d", text, s.p.cur().text, s.p.cur().pos)
}

// Ident consumes and returns an identifier token.
func (s *ExprScanner) Ident() (string, error) {
	if s.p.at(tokIdent, "") {
		return s.p.next().text, nil
	}
	return "", fmt.Errorf("expected identifier, found %q at offset %d", s.p.cur().text, s.p.cur().pos)
}

// Peek returns the current token's text ("" at EOF).
func (s *ExprScanner) Peek() string {
	if s.p.at(tokEOF, "") {
		return ""
	}
	return s.p.cur().text
}

// PeekIs reports whether the current token matches text case-insensitively.
func (s *ExprScanner) PeekIs(text string) bool {
	return s.p.at(tokIdent, text) || s.p.at(tokSymbol, text)
}

// AtEOF reports whether all tokens are consumed.
func (s *ExprScanner) AtEOF() bool { return s.p.at(tokEOF, "") }
