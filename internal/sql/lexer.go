// Package sql is the SQL front-end of the engine (§3): a hand-written
// lexer and recursive-descent parser for the analytical subset the paper
// exercises (SELECT with aggregates, FROM with aliases, JOIN … ON, WHERE
// conjunctions/disjunctions, GROUP BY). SQL statements are desugared into
// monoid comprehensions (internal/calculus), matching the paper's pipeline.
package sql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			start := l.pos
			l.pos++
			var sb strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			start := l.pos
			// Two-character operators first.
			if l.pos+1 < len(l.src) {
				two := l.src[l.pos : l.pos+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					l.pos += 2
					l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
					continue
				}
			}
			switch c {
			case '<', '>', '=', '(', ')', ',', '*', '+', '-', '/', '%', '.', '{', '}', ':':
				l.pos++
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
