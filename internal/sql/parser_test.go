package sql

import (
	"strings"
	"testing"

	"proteus/internal/expr"
)

func TestParseSimpleSelect(t *testing.T) {
	c, err := Parse("SELECT a, b FROM t WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Quals) != 2 {
		t.Fatalf("quals = %d, want generator + filter", len(c.Quals))
	}
	if !c.Quals[0].IsGenerator() || c.Quals[0].Var != "t" {
		t.Errorf("first qual = %+v", c.Quals[0])
	}
	if c.Quals[1].IsGenerator() {
		t.Errorf("second qual should be a filter")
	}
	if c.IsAggregate() {
		t.Error("plain projection should not be aggregate")
	}
	rc, ok := c.Head.(*expr.RecordCtor)
	if !ok {
		t.Fatalf("head = %T", c.Head)
	}
	if rc.Names[0] != "a" || rc.Names[1] != "b" {
		t.Errorf("output names = %v", rc.Names)
	}
}

func TestParseAliases(t *testing.T) {
	c, err := Parse("SELECT x.a AS alpha FROM tbl AS x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Quals[0].Var != "x" {
		t.Errorf("alias = %q", c.Quals[0].Var)
	}
	// Single aliased item yields the bare expression; alias only matters
	// for multi-column records, so just check it parsed.
	if c.Head == nil {
		t.Error("missing head")
	}
}

func TestParseAggregates(t *testing.T) {
	c, err := Parse("SELECT COUNT(*), MAX(a), SUM(b + c), AVG(d), MIN(e) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Aggs) != 5 {
		t.Fatalf("aggs = %d", len(c.Aggs))
	}
	wantKinds := []expr.AggKind{expr.AggCount, expr.AggMax, expr.AggSum, expr.AggAvg, expr.AggMin}
	for i, k := range wantKinds {
		if c.Aggs[i].Kind != k {
			t.Errorf("agg %d kind = %v, want %v", i, c.Aggs[i].Kind, k)
		}
	}
	if c.Aggs[0].Arg != nil {
		t.Error("COUNT(*) should have nil arg")
	}
	if _, ok := c.Aggs[2].Arg.(*expr.BinOp); !ok {
		t.Errorf("SUM arg = %T", c.Aggs[2].Arg)
	}
}

func TestParseGroupBy(t *testing.T) {
	c, err := Parse("SELECT g, COUNT(*) AS n FROM t WHERE a < 3 GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.GroupBy) != 1 || len(c.Aggs) != 1 {
		t.Fatalf("groupby = %d, aggs = %d", len(c.GroupBy), len(c.Aggs))
	}
	if c.AggNames[0] != "n" {
		t.Errorf("agg name = %q", c.AggNames[0])
	}
	if c.GroupNames[0] != "g" {
		t.Errorf("group name = %q", c.GroupNames[0])
	}
}

func TestParseGroupByRejectsNakedColumn(t *testing.T) {
	if _, err := Parse("SELECT a, COUNT(*) FROM t GROUP BY g"); err == nil {
		t.Error("non-grouped select item should be rejected")
	}
}

func TestParseJoins(t *testing.T) {
	c, err := Parse("SELECT COUNT(*) FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.w WHERE a.v < 1")
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	filters := 0
	for _, q := range c.Quals {
		if q.IsGenerator() {
			gens++
		} else {
			filters++
		}
	}
	if gens != 3 {
		t.Errorf("generators = %d, want 3", gens)
	}
	if filters != 3 { // two ON conditions + WHERE
		t.Errorf("filters = %d, want 3", filters)
	}
}

func TestParseCommaCrossProduct(t *testing.T) {
	c, err := Parse("SELECT COUNT(*) FROM a, b WHERE a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for _, q := range c.Quals {
		if q.IsGenerator() {
			gens++
		}
	}
	if gens != 2 {
		t.Errorf("generators = %d", gens)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	c, err := Parse("SELECT COUNT(*) FROM t WHERE a + b * 2 < 10 AND x = 1 OR y = 2")
	if err != nil {
		t.Fatal(err)
	}
	pred := c.Quals[len(c.Quals)-1].Pred
	// Expect OR at the top.
	top, ok := pred.(*expr.BinOp)
	if !ok || top.Op != expr.OpOr {
		t.Fatalf("top op = %v", pred)
	}
	// a + b*2: multiplication binds tighter.
	want := "(((t.a + (t.b * 2)) < 10) AND (t.x = 1))"
	_ = want
	if !strings.Contains(pred.String(), "(b * 2)") && !strings.Contains(pred.String(), "(t.b * 2)") {
		t.Errorf("precedence broken: %s", pred)
	}
}

func predString(t *testing.T, query string) string {
	t.Helper()
	c, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize splits conjunctions into separate filter qualifiers; gather
	// them all for assertions.
	out := ""
	for _, q := range c.Quals {
		if !q.IsGenerator() {
			out += q.Pred.String() + " ; "
		}
	}
	return out
}

func TestParseLikeAndStrings(t *testing.T) {
	s := predString(t, "SELECT COUNT(*) FROM t WHERE name LIKE '%abc%' AND tag = 'x'")
	if !strings.Contains(s, "LIKE %abc%") {
		t.Errorf("missing LIKE: %s", s)
	}
	if !strings.Contains(s, `"x"`) {
		t.Errorf("missing string literal: %s", s)
	}
}

func TestParseNumbers(t *testing.T) {
	s := predString(t, "SELECT COUNT(*) FROM t WHERE a < 2.5 AND b > -3")
	if !strings.Contains(s, "2.5") || !strings.Contains(s, "-3") {
		t.Errorf("numbers: %s", s)
	}
}

func TestParseParenthesesAndNot(t *testing.T) {
	c, err := Parse("SELECT COUNT(*) FROM t WHERE NOT (a < 1 OR b < 2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Quals[len(c.Quals)-1].Pred.(*expr.Not); !ok {
		t.Errorf("pred = %T", c.Quals[len(c.Quals)-1].Pred)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM t",                 // unsupported by design
		"SELECT a FROM t WHERE",           // missing predicate
		"SELECT a FROM t GROUP",           // missing BY
		"SELECT a FROM",                   // missing table
		"SELECT MAX(*) FROM t",            // * only for COUNT
		"SELECT a FROM t WHERE a < 'x",    // unterminated string
		"SELECT a FROM t trailing junk (", // trailing tokens
		"SELECT a FROM t WHERE a @ 1",     // bad character
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	c, err := Parse("select g, count(*) from t group by g")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Aggs) != 1 {
		t.Errorf("aggs = %d", len(c.Aggs))
	}
}

func TestExprScanner(t *testing.T) {
	s, err := NewExprScanner("for { x } yield 1 + 2")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Accept("for") || !s.Accept("{") {
		t.Fatal("accept failed")
	}
	id, err := s.Ident()
	if err != nil || id != "x" {
		t.Fatalf("ident = %q, %v", id, err)
	}
	if err := s.Expect("}"); err != nil {
		t.Fatal(err)
	}
	if !s.PeekIs("yield") {
		t.Errorf("peek = %q", s.Peek())
	}
	s.Accept("yield")
	e, err := s.ParseExpr()
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(1 + 2)" {
		t.Errorf("expr = %s", e)
	}
	if !s.AtEOF() {
		t.Error("should be at EOF")
	}
}
