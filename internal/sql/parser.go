package sql

import (
	"fmt"
	"strconv"
	"strings"

	"proteus/internal/calculus"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// Parse desugars one SELECT statement into a monoid comprehension.
func Parse(src string) (*calculus.Comprehension, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	return c, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token matches (text compared
// case-insensitively; empty text matches any token of the kind).
func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) atKeyword(words ...string) bool {
	for _, w := range words {
		if p.at(tokIdent, w) {
			return true
		}
	}
	return false
}

// selectItem is one SELECT-list entry.
type selectItem struct {
	agg   *expr.Agg // non-nil for aggregate items
	e     expr.Expr // non-nil for plain expressions
	alias string
}

func (p *parser) parseSelect() (*calculus.Comprehension, error) {
	if _, err := p.expect(tokIdent, "SELECT"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}

	c := &calculus.Comprehension{}

	// FROM list: dataset [alias] with optional JOIN … ON chains; comma
	// cross-products are also accepted (predicates in WHERE tie them).
	if err := p.parseTableRef(c); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, ","):
			if err := p.parseTableRef(c); err != nil {
				return nil, err
			}
		case p.atKeyword("JOIN"):
			p.next()
			if err := p.parseTableRef(c); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Quals = append(c.Quals, calculus.Qual{Pred: cond})
		default:
			goto fromDone
		}
	}
fromDone:

	if p.atKeyword("WHERE") {
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Quals = append(c.Quals, calculus.Qual{Pred: cond})
	}

	var groupBy []expr.Expr
	var groupNames []string
	if p.atKeyword("GROUP") {
		p.next()
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, g)
			groupNames = append(groupNames, defaultName(g, len(groupNames)))
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	// ORDER BY output-column [ASC|DESC], ... and LIMIT n are applied to the
	// materialized result by the engine.
	if p.atKeyword("ORDER") {
		p.next()
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			name := col.text
			// Allow qualified references like "o.price"; ordering resolves
			// against output column names, so keep the tail.
			for p.accept(tokSymbol, ".") {
				f, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				name = f.text
			}
			desc := false
			if p.accept(tokIdent, "DESC") {
				desc = true
			} else {
				p.accept(tokIdent, "ASC")
			}
			c.OrderBy = append(c.OrderBy, name)
			c.OrderDesc = append(c.OrderDesc, desc)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		c.Limit = limit
	}

	// Shape the output clause.
	hasAgg := false
	for _, it := range items {
		if it.agg != nil {
			hasAgg = true
		}
	}
	switch {
	case hasAgg || len(groupBy) > 0:
		for i, it := range items {
			if it.agg == nil {
				// Non-aggregated item in an aggregate query: must be one of
				// the GROUP BY expressions.
				found := false
				for gi, g := range groupBy {
					if expr.Equal(g, it.e) {
						if it.alias != "" {
							groupNames[gi] = it.alias
						}
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("sql: select item %d is neither aggregated nor in GROUP BY", i+1)
				}
				continue
			}
			c.Aggs = append(c.Aggs, *it.agg)
			name := it.alias
			if name == "" {
				name = it.agg.String()
			}
			c.AggNames = append(c.AggNames, name)
		}
		c.GroupBy = groupBy
		c.GroupNames = groupNames
	default:
		// Plain projection: yield a bag of records.
		names := make([]string, len(items))
		exprs := make([]expr.Expr, len(items))
		for i, it := range items {
			name := it.alias
			if name == "" {
				name = defaultName(it.e, i)
			}
			names[i] = name
			exprs[i] = it.e
		}
		c.Monoid = expr.AggBag
		if len(exprs) == 1 {
			c.Head = exprs[0]
			if items[0].alias == "" {
				if _, isRef := exprs[0].(*expr.Ref); !isRef {
					c.Head = exprs[0]
				}
			}
		} else {
			c.Head = &expr.RecordCtor{Names: names, Exprs: exprs}
		}
	}
	return calculus.Normalize(c), nil
}

// parseTableRef parses "dataset [AS] alias" and appends a generator.
func (p *parser) parseTableRef(c *calculus.Comprehension) error {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	alias := name.text
	p.accept(tokIdent, "AS")
	if p.at(tokIdent, "") && !p.atKeyword("JOIN", "ON", "WHERE", "GROUP", "ORDER", "LIMIT") {
		alias = p.next().text
	}
	c.Quals = append(c.Quals, calculus.Qual{Var: alias, Source: &expr.Ref{Name: name.text}})
	return nil
}

// parseSelectItem parses * | AGG(arg) [AS alias] | expr [AS alias].
func (p *parser) parseSelectItem() (selectItem, error) {
	if p.accept(tokSymbol, "*") {
		return selectItem{}, fmt.Errorf("sql: SELECT * is not supported; name the fields explicitly")
	}
	if p.at(tokIdent, "") {
		if ak, ok := aggKind(p.cur().text); ok && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.next() // agg name
			p.next() // (
			var arg expr.Expr
			if p.accept(tokSymbol, "*") {
				if ak != expr.AggCount {
					return selectItem{}, p.errf("only COUNT accepts *")
				}
			} else {
				a, err := p.parseExpr()
				if err != nil {
					return selectItem{}, err
				}
				arg = a
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return selectItem{}, err
			}
			alias := p.parseAlias()
			return selectItem{agg: &expr.Agg{Kind: ak, Arg: arg}, alias: alias}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{e: e, alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.accept(tokIdent, "AS") {
		if p.at(tokIdent, "") {
			return p.next().text
		}
	}
	return ""
}

func aggKind(word string) (expr.AggKind, bool) {
	switch strings.ToUpper(word) {
	case "COUNT":
		return expr.AggCount, true
	case "SUM":
		return expr.AggSum, true
	case "MAX":
		return expr.AggMax, true
	case "MIN":
		return expr.AggMin, true
	case "AVG":
		return expr.AggAvg, true
	}
	return 0, false
}

// Expression grammar: or → and → not → comparison → additive →
// multiplicative → unary → primary.

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.BinOp{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.BinOp{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		sub, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: sub}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.atKeyword("IS") {
		p.next()
		neg := false
		if p.atKeyword("NOT") {
			p.next()
			neg = true
		}
		if !p.atKeyword("NULL") {
			return nil, p.errf("expected NULL after IS, found %q", p.cur().text)
		}
		p.next()
		var out expr.Expr = &expr.IsNull{E: l}
		if neg {
			out = &expr.Not{E: out}
		}
		return out, nil
	}
	if p.atKeyword("LIKE") {
		p.next()
		pat, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		// 'abc%' is a pure prefix pattern; every other shape (leading %,
		// interior %, or no wildcard at all) keeps the historical trimmed
		// containment semantics.
		text := pat.text
		if n := strings.TrimSuffix(text, "%"); n != text && n != "" && !strings.Contains(n, "%") {
			return &expr.Like{E: l, Needle: n, Prefix: true}, nil
		}
		needle := strings.Trim(text, "%")
		return &expr.Like{E: l, Needle: needle}, nil
	}
	var op expr.BinKind
	switch {
	case p.accept(tokSymbol, "="):
		op = expr.OpEq
	case p.accept(tokSymbol, "<>"), p.accept(tokSymbol, "!="):
		op = expr.OpNe
	case p.accept(tokSymbol, "<="):
		op = expr.OpLe
	case p.accept(tokSymbol, ">="):
		op = expr.OpGe
	case p.accept(tokSymbol, "<"):
		op = expr.OpLt
	case p.accept(tokSymbol, ">"):
		op = expr.OpGt
	default:
		return l, nil
	}
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &expr.BinOp{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &expr.BinOp{Op: expr.OpAdd, L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &expr.BinOp{Op: expr.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.BinOp{Op: expr.OpMul, L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.BinOp{Op: expr.OpDiv, L: l, R: r}
		case p.accept(tokSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.BinOp{Op: expr.OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tokSymbol, "-") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Neg{E: sub}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &expr.Const{V: types.FloatValue(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &expr.Const{V: types.IntValue(i)}, nil
	case tokString:
		p.next()
		return &expr.Const{V: types.StringValue(t.text)}, nil
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.next()
			return &expr.Const{V: types.BoolValue(true)}, nil
		case "FALSE":
			p.next()
			return &expr.Const{V: types.BoolValue(false)}, nil
		}
		p.next()
		var e expr.Expr = &expr.Ref{Name: t.text}
		for p.accept(tokSymbol, ".") {
			f, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &expr.FieldAcc{Base: e, Name: f.text}
		}
		return e, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// defaultName derives an output column name from an expression: the last
// path segment for field accesses, else a positional name.
func defaultName(e expr.Expr, i int) string {
	if _, path, ok := expr.PathOf(e); ok && len(path) > 0 {
		return path[len(path)-1]
	}
	if r, ok := e.(*expr.Ref); ok {
		return r.Name
	}
	return fmt.Sprintf("col%d", i)
}
