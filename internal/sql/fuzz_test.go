package sql

import "testing"

// FuzzParse asserts the SQL parser is total: any input — truncated clauses,
// unbalanced parens, stray operators, binary garbage — yields a
// comprehension or an error, never a panic. Inputs are capped so the
// recursive-descent depth stays bounded.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"",
		"SELECT COUNT(*) FROM t",
		"SELECT a.x AS x FROM t AS a JOIN u AS b ON (a.k = b.k) WHERE (a.x IS NOT NULL) AND (a.y LIKE '%z%') GROUP BY a.x ORDER BY x DESC LIMIT 3",
		"SELECT SUM(a.v + 1) AS s, AVG(a.v) AS m FROM t AS a",
		"SELECT FROM WHERE", "SELECT (((", "SELECT * FROM t WHERE x = 'unterminated",
		"select 1 limit", "SELECT a FROM t ORDER BY", "\x00\xff SELECT",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		c, err := Parse(src)
		if err == nil && c == nil {
			t.Fatalf("Parse(%q): nil comprehension without error", src)
		}
	})
}
