package cache

import (
	"fmt"
	"testing"

	"proteus/internal/storage"
	"proteus/internal/types"
)

func intBlock(dataset, key string, n int, bias float64) *Block {
	b := &Block{Dataset: dataset, Key: key, Kind: types.KindInt, FormatBias: bias, Complete: true}
	for i := 0; i < n; i++ {
		b.Ints = append(b.Ints, int64(i))
	}
	b.Rows = int64(n)
	return b
}

func TestRegisterAndLookup(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	blk := intBlock("ds", "col", 10, 14)
	if !m.Register(blk) {
		t.Fatal("register failed")
	}
	got, ok := m.Lookup("ds", "col")
	if !ok || got != blk {
		t.Fatal("lookup failed")
	}
	if !m.Has("ds", "col") {
		t.Error("Has failed")
	}
	if _, ok := m.Lookup("ds", "other"); ok {
		t.Error("lookup of unknown key should fail")
	}
	s := m.Snapshot()
	if s.Blocks != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestDisabledManager(t *testing.T) {
	m := NewManager(storage.NewManager(0), false)
	if m.Register(intBlock("ds", "col", 4, 14)) {
		t.Error("disabled manager should not register")
	}
	if _, ok := m.Lookup("ds", "col"); ok {
		t.Error("disabled manager should not serve lookups")
	}
	if m.ShouldCache(14, types.KindInt) {
		t.Error("disabled manager should not want caching")
	}
	var nilMgr *Manager
	if nilMgr.Enabled() {
		t.Error("nil manager must report disabled")
	}
}

func TestIncompleteBlocksInvisible(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	blk := intBlock("ds", "col", 4, 14)
	blk.Complete = false
	if m.Register(blk) {
		t.Error("incomplete block should not register")
	}
	if _, ok := m.Lookup("ds", "col"); ok {
		t.Error("incomplete block should not be served")
	}
}

func TestShouldCachePolicy(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	// Verbose formats, primitive kinds: cache.
	if !m.ShouldCache(14, types.KindInt) || !m.ShouldCache(6, types.KindFloat) || !m.ShouldCache(6, types.KindBool) {
		t.Error("primitives from verbose formats should be cached")
	}
	// Binary sources: nothing to gain.
	if m.ShouldCache(1, types.KindInt) {
		t.Error("binary sources should not be cached")
	}
	// Strings: excluded by default (§6), opt-in via CacheStrings.
	if m.ShouldCache(14, types.KindString) {
		t.Error("strings should not be cached by default")
	}
	m.CacheStrings = true
	if !m.ShouldCache(14, types.KindString) {
		t.Error("CacheStrings should enable string caching")
	}
	// Nested values never cache as columns.
	if m.ShouldCache(14, types.KindRecord) || m.ShouldCache(14, types.KindList) {
		t.Error("nested kinds should not column-cache")
	}
}

func TestEvictionBiasKeepsExpensiveFormats(t *testing.T) {
	mem := storage.NewManager(400) // tight arena
	m := NewManager(mem, true)
	jsonBlk := intBlock("j", "a", 20, 14) // 160 bytes
	csvBlk := intBlock("c", "a", 20, 6)   // 160 bytes
	if !m.Register(jsonBlk) || !m.Register(csvBlk) {
		t.Fatal("initial registration failed")
	}
	// Touch the CSV block so pure LRU would evict the JSON one.
	m.Lookup("c", "a")
	// A third block forces eviction; the bias must sacrifice CSV, not JSON.
	if !m.Register(intBlock("j2", "b", 20, 14)) {
		t.Fatal("third registration failed")
	}
	if !m.Has("j", "a") {
		t.Error("JSON block evicted despite format bias")
	}
	if m.Has("c", "a") {
		t.Error("CSV block should have been the victim")
	}
	if m.Snapshot().Evictions == 0 {
		t.Error("eviction counter not incremented")
	}
}

func TestOversizeBlockRejected(t *testing.T) {
	mem := storage.NewManager(64)
	m := NewManager(mem, true)
	if m.Register(intBlock("ds", "huge", 1000, 14)) {
		t.Error("block larger than the arena should be rejected")
	}
	if mem.ArenaUsed() != 0 {
		t.Errorf("arena leak: %d", mem.ArenaUsed())
	}
}

func TestReplaceReleasesOldBytes(t *testing.T) {
	mem := storage.NewManager(0)
	m := NewManager(mem, true)
	m.Register(intBlock("ds", "col", 100, 14))
	used := mem.ArenaUsed()
	m.Register(intBlock("ds", "col", 10, 14))
	if mem.ArenaUsed() >= used {
		t.Errorf("replacement did not release old bytes: %d → %d", used, mem.ArenaUsed())
	}
}

func TestDropInvalidatesDataset(t *testing.T) {
	mem := storage.NewManager(0)
	m := NewManager(mem, true)
	m.Register(intBlock("ds", "a", 10, 14))
	m.Register(intBlock("ds", "b", 10, 14))
	m.Register(intBlock("other", "a", 10, 14))
	m.RegisterJoinSide(&JoinSide{Fingerprint: "fp", Bytes: 8})
	m.Drop("ds")
	if m.Has("ds", "a") || m.Has("ds", "b") {
		t.Error("dropped dataset blocks survived")
	}
	if !m.Has("other", "a") {
		t.Error("unrelated block dropped")
	}
	if _, ok := m.LookupJoinSide("fp"); ok {
		t.Error("join sides should be dropped on update")
	}
}

func TestJoinSideRegistry(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	payload := &struct{ x int }{42}
	if !m.RegisterJoinSide(&JoinSide{Fingerprint: "fp1", Payload: payload, Bytes: 100}) {
		t.Fatal("register join side failed")
	}
	side, ok := m.LookupJoinSide("fp1")
	if !ok || side.Payload != payload {
		t.Fatal("join side lookup failed")
	}
	if _, ok := m.LookupJoinSide("nope"); ok {
		t.Error("unknown fingerprint should miss")
	}
}

func TestBytesForDataset(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	m.Register(intBlock("ds", "a", 10, 14))
	m.Register(intBlock("ds", "b", 20, 14))
	m.Register(intBlock("other", "a", 5, 14))
	// 80 + 160 column bytes, plus one 21-byte single-zone map per block.
	if got := m.BytesForDataset("ds"); got != 282 {
		t.Errorf("bytes = %d, want 282", got)
	}
}

func TestBlockBytes(t *testing.T) {
	b := &Block{Kind: types.KindString, Strs: []string{"abc", "de"}}
	if b.Bytes() != 5+32 {
		t.Errorf("string block bytes = %d", b.Bytes())
	}
	ib := intBlock("d", "k", 3, 1)
	if ib.Bytes() != 24 {
		t.Errorf("int block bytes = %d", ib.Bytes())
	}
}

func TestManyBlocksStress(t *testing.T) {
	mem := storage.NewManager(10_000)
	m := NewManager(mem, true)
	for i := 0; i < 500; i++ {
		m.Register(intBlock("ds", fmt.Sprintf("col%d", i), 50, float64(i%3)*7+1))
	}
	if mem.ArenaBudget() > 0 && mem.ArenaUsed() > mem.ArenaBudget() {
		t.Errorf("arena overflow: %d > %d", mem.ArenaUsed(), mem.ArenaBudget())
	}
}
