// Columnar cache v2: per-block zone maps, dense bitmap indexes, and
// dictionary-encoded string equality, in the style of in-memory columnar
// stores (kelindar/column). Zone maps generalize the paper's DBMS-C
// sort-on-load trick — a scan skips whole 1024-row windows whose min/max
// range cannot satisfy a pushed-down predicate — and bitmap indexes turn
// repeated selective filters over cached columns into word-parallel
// bitmap operations plus a gather instead of per-row compares. Which
// columns earn an index is decided adaptively from optimizer selectivity
// estimates plus observed scan counts, closing the paper's §6 adaptive
// loop one level deeper than block materialization alone.
package cache

import (
	"math"
	"math/bits"
	"sort"

	"proteus/internal/types"
)

// ZoneSize is the number of rows covered by one zone-map entry. It equals
// vbuf.BatchSize and plugin.CancelStride so one zone decision covers
// exactly one vectorized batch (and one cancellation-poll window of the
// tuple path).
const ZoneSize = 1024

// Index-selection policy knobs.
const (
	// hotScanThreshold is how many observed scans with a pushed-down
	// predicate a column needs before IndexAuto builds a bitmap index.
	hotScanThreshold = 3
	// maxIndexKeys caps the distinct values a column may have and still be
	// bitmap-indexed; beyond it the per-key bitmaps stop paying for
	// themselves and the column keeps zone maps only.
	maxIndexKeys = 4096
	// maxIndexSelectivity is the estimated-selectivity cutoff for IndexAuto:
	// predicates expected to keep most rows gain little from an index.
	maxIndexSelectivity = 0.5
)

// IndexMode selects the bitmap-index policy.
type IndexMode int

// Index policies: adaptive (stats + observed scans), always, never.
const (
	IndexAuto IndexMode = iota
	IndexOn
	IndexOff
)

// CmpOp is a comparison operator in the cache layer's own vocabulary, so
// the package does not depend on the expression compiler.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Pred is one pushed-down comparison against a constant, pre-lowered by
// the executor: Kind says which constant field is active.
type Pred struct {
	Op   CmpOp
	Kind types.Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// ZoneMaps carries per-zone min/max and null counts for one block. Built
// once at registration time, immutable afterwards.
type ZoneMaps struct {
	Kind types.Kind
	Rows int64

	IMin, IMax []int64   // int columns
	FMin, FMax []float64 // float columns
	NullCnt    []int32
	ranged     []bool // zone has a usable min/max (non-null, NaN-free rows)
}

func (z *ZoneMaps) bytes() int64 {
	if z == nil {
		return 0
	}
	return int64(len(z.IMin)+len(z.IMax))*8 +
		int64(len(z.FMin)+len(z.FMax))*8 +
		int64(len(z.NullCnt))*4 + int64(len(z.ranged))
}

// BuildZones computes the zone maps for a block. Min/max are tracked for
// int and float columns; every kind gets null counts (an all-null zone is
// skippable under any comparison predicate).
func BuildZones(b *Block) *ZoneMaps {
	nz := int((b.Rows + ZoneSize - 1) / ZoneSize)
	z := &ZoneMaps{
		Kind:    b.Kind,
		Rows:    b.Rows,
		NullCnt: make([]int32, nz),
		ranged:  make([]bool, nz),
	}
	switch b.Kind {
	case types.KindInt:
		z.IMin = make([]int64, nz)
		z.IMax = make([]int64, nz)
	case types.KindFloat:
		z.FMin = make([]float64, nz)
		z.FMax = make([]float64, nz)
	}
	for zi := 0; zi < nz; zi++ {
		lo := int64(zi) * ZoneSize
		hi := lo + ZoneSize
		if hi > b.Rows {
			hi = b.Rows
		}
		var nulls int32
		started, poisoned := false, false
		for i := lo; i < hi; i++ {
			if b.Nulls != nil && b.Nulls[i] {
				nulls++
				continue
			}
			switch b.Kind {
			case types.KindInt:
				v := b.Ints[i]
				if !started {
					z.IMin[zi], z.IMax[zi], started = v, v, true
				} else if v < z.IMin[zi] {
					z.IMin[zi] = v
				} else if v > z.IMax[zi] {
					z.IMax[zi] = v
				}
			case types.KindFloat:
				v := b.Floats[i]
				if v != v {
					poisoned = true // a NaN breaks ordering: never prune this zone
					continue
				}
				if !started {
					z.FMin[zi], z.FMax[zi], started = v, v, true
				} else if v < z.FMin[zi] {
					z.FMin[zi] = v
				} else if v > z.FMax[zi] {
					z.FMax[zi] = v
				}
			}
		}
		z.NullCnt[zi] = nulls
		z.ranged[zi] = started && !poisoned
	}
	return z
}

// CanMatchWindow reports whether any row in [lo, hi) could satisfy the
// predicate. False means the caller may skip the window entirely; true is
// always safe. A nil receiver never prunes.
func (z *ZoneMaps) CanMatchWindow(lo, hi int64, p Pred) bool {
	if z == nil {
		return true
	}
	if lo < 0 {
		lo = 0
	}
	if hi > z.Rows {
		hi = z.Rows
	}
	if lo >= hi {
		return false
	}
	for zi := int(lo / ZoneSize); zi <= int((hi-1)/ZoneSize); zi++ {
		if z.canMatchZone(zi, p) {
			return true
		}
	}
	return false
}

func (z *ZoneMaps) canMatchZone(zi int, p Pred) bool {
	zlo := int64(zi) * ZoneSize
	zlen := z.Rows - zlo
	if zlen > ZoneSize {
		zlen = ZoneSize
	}
	if int64(z.NullCnt[zi]) == zlen {
		return false // comparisons never match NULL
	}
	if !z.ranged[zi] {
		return true
	}
	switch z.Kind {
	case types.KindInt:
		switch p.Kind {
		case types.KindInt:
			return rangeCanMatchI(p.Op, z.IMin[zi], z.IMax[zi], p.I)
		case types.KindFloat:
			// Compare in the float domain (matching the engine's mixed
			// int/float comparison semantics); beyond float64's exact-integer
			// range the conversion rounds, so don't prune.
			if z.IMin[zi] <= -(1<<53) || z.IMax[zi] >= 1<<53 {
				return true
			}
			return rangeCanMatchF(p.Op, float64(z.IMin[zi]), float64(z.IMax[zi]), p.F)
		}
	case types.KindFloat:
		switch p.Kind {
		case types.KindFloat:
			return rangeCanMatchF(p.Op, z.FMin[zi], z.FMax[zi], p.F)
		case types.KindInt:
			if p.I <= -(1<<53) || p.I >= 1<<53 {
				return true
			}
			return rangeCanMatchF(p.Op, z.FMin[zi], z.FMax[zi], float64(p.I))
		}
	}
	return true
}

func rangeCanMatchI(op CmpOp, min, max, k int64) bool {
	switch op {
	case CmpEq:
		return min <= k && k <= max
	case CmpNe:
		return !(min == k && max == k)
	case CmpLt:
		return min < k
	case CmpLe:
		return min <= k
	case CmpGt:
		return max > k
	case CmpGe:
		return max >= k
	}
	return true
}

func rangeCanMatchF(op CmpOp, min, max, k float64) bool {
	switch op {
	case CmpEq:
		return min <= k && k <= max
	case CmpNe:
		return !(min == k && max == k)
	case CmpLt:
		return min < k
	case CmpLe:
		return min <= k
	case CmpGt:
		return max > k
	case CmpGe:
		return max >= k
	}
	return true
}

// Bitmap is a dense bit set over block row ordinals.
type Bitmap struct {
	words []uint64
	n     int64
}

// NewBitmap returns an empty bitmap covering n rows.
func NewBitmap(n int64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)>>6), n: n}
}

// Set marks row i.
func (bm *Bitmap) Set(i int64) { bm.words[i>>6] |= 1 << uint(i&63) }

// Get reports whether row i is set.
func (bm *Bitmap) Get(i int64) bool { return bm.words[i>>6]&(1<<uint(i&63)) != 0 }

// Len returns the number of rows the bitmap covers.
func (bm *Bitmap) Len() int64 { return bm.n }

// Count returns the number of set rows.
func (bm *Bitmap) Count() int64 {
	var c int64
	for _, w := range bm.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Bytes reports the bitmap's memory footprint.
func (bm *Bitmap) Bytes() int64 { return int64(len(bm.words)) * 8 }

// Clone returns a private copy.
func (bm *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(bm.words)), n: bm.n}
	copy(out.words, bm.words)
	return out
}

// Or folds o into the receiver.
func (bm *Bitmap) Or(o *Bitmap) {
	for i, w := range o.words {
		bm.words[i] |= w
	}
}

// And intersects the receiver with o.
func (bm *Bitmap) And(o *Bitmap) {
	for i, w := range o.words {
		bm.words[i] &= w
	}
}

// AndNot clears the receiver's bits that are set in o.
func (bm *Bitmap) AndNot(o *Bitmap) {
	for i, w := range o.words {
		bm.words[i] &^= w
	}
}

// FillSel writes the batch-relative ordinals of set rows in
// [base, base+n) into out (reusing its backing array) and returns the
// filled prefix. It allocates nothing when cap(out) >= n — the batch
// executor passes its selection scratch buffer.
func (bm *Bitmap) FillSel(base int64, n int, out []int32) []int32 {
	out = out[:0]
	end := base + int64(n)
	if end > bm.n {
		end = bm.n
	}
	for i := base; i < end; {
		wordBase := i &^ 63
		w := bm.words[i>>6] & (^uint64(0) << uint(i&63))
		if wordBase+64 > end {
			w &= (uint64(1) << uint(end-wordBase)) - 1
		}
		for w != 0 {
			row := wordBase + int64(bits.TrailingZeros64(w))
			out = append(out, int32(row-base))
			w &= w - 1
		}
		i = wordBase + 64
	}
	return out
}

// AnyRange reports whether any bit in [lo, hi) is set — the window test the
// scan drivers use to skip materializing 1024-row windows that a bitmap
// filter would empty anyway.
func (bm *Bitmap) AnyRange(lo, hi int64) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > bm.n {
		hi = bm.n
	}
	for i := lo; i < hi; {
		wordBase := i &^ 63
		w := bm.words[i>>6] & (^uint64(0) << uint(i&63))
		if wordBase+64 > hi {
			w &= (uint64(1) << uint(hi-wordBase)) - 1
		}
		if w != 0 {
			return true
		}
		i = wordBase + 64
	}
	return false
}

// Dict is an order-of-appearance dictionary for one string column; bitmap
// indexes evaluate string equality on codes, never on the strings.
type Dict struct {
	codes map[string]uint32
	strs  []string
}

// Code returns the code for s, if s occurs in the column.
func (d *Dict) Code(s string) (uint32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(d.strs) }

// At returns the string for a code.
func (d *Dict) At(c uint32) string { return d.strs[c] }

func (d *Dict) bytes() int64 {
	n := int64(0)
	for _, s := range d.strs {
		n += int64(len(s))*2 + 48 // map entry + slice entry
	}
	return n
}

// Index is a per-key bitmap index over one cached column. keys are sorted
// int values (for int columns), 0/1 (bool), or dictionary codes (string).
// It is immutable once published on a Block.
type Index struct {
	Kind    types.Kind
	rows    int64
	keys    []int64
	bitmaps []*Bitmap
	nonNull *Bitmap
	dict    *Dict
	bytes   int64
}

// Keys returns the number of distinct indexed values.
func (ix *Index) Keys() int { return len(ix.keys) }

// Rows returns the number of rows the index covers.
func (ix *Index) Rows() int64 { return ix.rows }

// Bytes reports the index's accounted memory footprint.
func (ix *Index) Bytes() int64 { return ix.bytes }

// BuildIndexFor constructs a bitmap index for a block, or returns nil when
// the column is not indexable: float columns (zone maps only — equality on
// floats is rare and range queries are served by zones) and columns with
// more than maxIndexKeys distinct values.
func BuildIndexFor(b *Block) *Index {
	ix := &Index{Kind: b.Kind, rows: b.Rows, nonNull: NewBitmap(b.Rows)}
	byKey := map[int64]*Bitmap{}
	get := func(k int64) *Bitmap {
		bm := byKey[k]
		if bm == nil {
			if len(byKey) >= maxIndexKeys {
				return nil
			}
			bm = NewBitmap(b.Rows)
			byKey[k] = bm
		}
		return bm
	}
	switch b.Kind {
	case types.KindInt:
		for i, v := range b.Ints {
			if b.Nulls != nil && b.Nulls[i] {
				continue
			}
			bm := get(v)
			if bm == nil {
				return nil
			}
			bm.Set(int64(i))
			ix.nonNull.Set(int64(i))
		}
	case types.KindBool:
		for i, v := range b.Bools {
			if b.Nulls != nil && b.Nulls[i] {
				continue
			}
			k := int64(0)
			if v {
				k = 1
			}
			bm := get(k)
			if bm == nil {
				return nil
			}
			bm.Set(int64(i))
			ix.nonNull.Set(int64(i))
		}
	case types.KindString:
		ix.dict = &Dict{codes: map[string]uint32{}}
		for i, s := range b.Strs {
			if b.Nulls != nil && b.Nulls[i] {
				continue
			}
			code, ok := ix.dict.codes[s]
			if !ok {
				if len(ix.dict.strs) >= maxIndexKeys {
					return nil
				}
				code = uint32(len(ix.dict.strs))
				ix.dict.codes[s] = code
				ix.dict.strs = append(ix.dict.strs, s)
			}
			bm := get(int64(code))
			if bm == nil {
				return nil
			}
			bm.Set(int64(i))
			ix.nonNull.Set(int64(i))
		}
	default:
		return nil
	}
	ix.keys = make([]int64, 0, len(byKey))
	for k := range byKey {
		ix.keys = append(ix.keys, k)
	}
	sort.Slice(ix.keys, func(i, j int) bool { return ix.keys[i] < ix.keys[j] })
	ix.bitmaps = make([]*Bitmap, len(ix.keys))
	ix.bytes = ix.nonNull.Bytes() + int64(len(ix.keys))*8
	for i, k := range ix.keys {
		ix.bitmaps[i] = byKey[k]
		ix.bytes += ix.bitmaps[i].Bytes()
	}
	if ix.dict != nil {
		ix.bytes += ix.dict.bytes()
	}
	return ix
}

// Lookup evaluates a pushed-down predicate against the index and returns
// the bitmap of matching rows (never containing a NULL row, matching SQL
// comparison semantics). ok is false when the operator or constant kind is
// not served by this index and the caller must fall back to a compare
// kernel. The returned bitmap may be shared — callers must not mutate it.
func (ix *Index) Lookup(op CmpOp, p Pred) (*Bitmap, bool) {
	switch ix.Kind {
	case types.KindInt:
		if p.Kind != types.KindInt {
			return nil, false
		}
		return ix.lookupKey(op, p.I)
	case types.KindBool:
		if p.Kind != types.KindBool || (op != CmpEq && op != CmpNe) {
			return nil, false
		}
		k := int64(0)
		if p.B {
			k = 1
		}
		return ix.lookupKey(op, k)
	case types.KindString:
		if p.Kind != types.KindString || (op != CmpEq && op != CmpNe) {
			return nil, false
		}
		code, ok := ix.dict.Code(p.S)
		if !ok {
			// The value never occurs: = matches nothing, <> matches every
			// non-null row.
			if op == CmpEq {
				return NewBitmap(ix.rows), true
			}
			return ix.nonNull, true
		}
		return ix.lookupKey(op, int64(code))
	}
	return nil, false
}

// Dict returns the string dictionary of a string-column index (nil for
// non-string indexes). The execution layer uses it to evaluate string
// predicates on dictionary codes instead of row values.
func (ix *Index) Dict() *Dict { return ix.dict }

// MatchStrings evaluates pred once per distinct dictionary string and ORs
// the matching codes' bitmaps: a string predicate over N rows costs
// Dict.Len() predicate calls plus word-wise ORs. The result never contains
// a NULL row. ok is false for non-string indexes.
func (ix *Index) MatchStrings(pred func(string) bool) (*Bitmap, bool) {
	if ix.Kind != types.KindString || ix.dict == nil {
		return nil, false
	}
	out := NewBitmap(ix.rows)
	// String-index keys are exactly the dictionary codes 0..Len-1 (every
	// code occurs in the column), so bitmaps[code] is the code's bitmap.
	for code, s := range ix.dict.strs {
		if pred(s) {
			out.Or(ix.bitmaps[code])
		}
	}
	return out, true
}

func (ix *Index) lookupKey(op CmpOp, k int64) (*Bitmap, bool) {
	pos := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= k })
	exact := pos < len(ix.keys) && ix.keys[pos] == k
	switch op {
	case CmpEq:
		if !exact {
			return NewBitmap(ix.rows), true
		}
		return ix.bitmaps[pos], true
	case CmpNe:
		out := ix.nonNull.Clone()
		if exact {
			out.AndNot(ix.bitmaps[pos])
		}
		return out, true
	case CmpLt:
		return ix.orRange(0, pos), true
	case CmpLe:
		if exact {
			pos++
		}
		return ix.orRange(0, pos), true
	case CmpGt:
		if exact {
			pos++
		}
		return ix.orRange(pos, len(ix.keys)), true
	case CmpGe:
		return ix.orRange(pos, len(ix.keys)), true
	}
	return nil, false
}

func (ix *Index) orRange(lo, hi int) *Bitmap {
	out := NewBitmap(ix.rows)
	for i := lo; i < hi; i++ {
		out.Or(ix.bitmaps[i])
	}
	return out
}

// indexCand tracks one column the compiler has seen pushed-down predicates
// for: the latest selectivity estimate and how many scans have actually
// run against it (the observed half of the adaptive decision).
type indexCand struct {
	dataset, key string
	scans        int64
	estSel       float64
}

// NotePredicate records, at plan-compile time, that a pushed-down
// comparison targets a cached column, together with the optimizer's
// selectivity estimate. Under IndexOn the column's index is built
// immediately (if the block exists); under IndexAuto it becomes a
// candidate that CreditScan promotes once hot.
func (m *Manager) NotePredicate(dataset, key string, estSel float64) {
	if !m.Enabled() || m.Indexes == IndexOff {
		return
	}
	if math.IsNaN(estSel) {
		estSel = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := blockKey(dataset, key)
	c := m.cands[k]
	if c == nil {
		c = &indexCand{dataset: dataset, key: key, estSel: estSel}
		m.cands[k] = c
	} else {
		c.estSel = estSel
	}
	if m.Indexes == IndexOn || (c.scans >= hotScanThreshold && c.estSel <= maxIndexSelectivity) {
		m.ensureIndexLocked(k)
	}
}

// CreditScan records, at run time, one scan of a cached column that a
// pushed-down predicate targets. Crossing the hot threshold (under
// IndexAuto, with a selective-enough estimate) builds the bitmap index and
// bumps the cache epoch so cached plans recompile against it.
func (m *Manager) CreditScan(dataset, key string) {
	if !m.Enabled() || m.Indexes == IndexOff {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := blockKey(dataset, key)
	c := m.cands[k]
	if c == nil {
		return
	}
	c.scans++
	if m.Indexes == IndexOn || (c.scans >= hotScanThreshold && c.estSel <= maxIndexSelectivity) {
		m.ensureIndexLocked(k)
	}
}

// ensureIndexLocked builds and publishes the bitmap index for a block if
// it exists, is complete, has none yet, and its memory can be reserved.
// The caller holds m.mu.
func (m *Manager) ensureIndexLocked(k string) {
	b := m.blocks[k]
	if b == nil || !b.Complete || b.Index() != nil {
		return
	}
	ix := BuildIndexFor(b)
	if ix == nil {
		return
	}
	if !m.reserve(ix.Bytes()) {
		return
	}
	if m.blocks[k] != b {
		// reserve's eviction pass removed the block itself; don't leak the
		// reservation onto an unreachable index.
		m.mem.ArenaRelease(ix.Bytes())
		return
	}
	b.idx.Store(ix)
	m.idxBuilds.Add(1)
	m.epoch.Add(1)
}

// CountZoneSkips credits n windows skipped via zone maps.
func (m *Manager) CountZoneSkips(n int64) {
	if m != nil && n > 0 {
		m.zoneSkips.Add(n)
	}
}

// CountIndexHit credits one batch served from a bitmap index.
func (m *Manager) CountIndexHit() {
	if m != nil {
		m.idxHits.Add(1)
	}
}
