package cache

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/storage"
	"proteus/internal/types"
)

// zoned builds an int block spanning several zones: row i holds i, except
// rows listed in nulls.
func zonedIntBlock(n int, nulls ...int) *Block {
	b := &Block{Dataset: "d", Key: "k", Kind: types.KindInt, Complete: true, Rows: int64(n)}
	b.Ints = make([]int64, n)
	b.Nulls = make([]bool, n)
	for i := 0; i < n; i++ {
		b.Ints[i] = int64(i)
	}
	for _, i := range nulls {
		b.Nulls[i] = true
	}
	return b
}

func TestZoneMapsBoundaries(t *testing.T) {
	b := zonedIntBlock(3 * ZoneSize)
	z := BuildZones(b)
	if z == nil || len(z.IMin) != 3 {
		t.Fatalf("want 3 zones, got %+v", z)
	}
	// Zone 1 covers [1024, 2047]. Exact min/max must match (inclusive).
	w := func(p Pred) bool { return z.CanMatchWindow(ZoneSize, 2*ZoneSize, p) }
	cases := []struct {
		op   CmpOp
		k    int64
		want bool
	}{
		{CmpEq, 1024, true}, {CmpEq, 2047, true}, {CmpEq, 1023, false}, {CmpEq, 2048, false},
		{CmpLt, 1024, false}, {CmpLt, 1025, true},
		{CmpLe, 1023, false}, {CmpLe, 1024, true},
		{CmpGt, 2047, false}, {CmpGt, 2046, true},
		{CmpGe, 2048, false}, {CmpGe, 2047, true},
		{CmpNe, 1500, true},
	}
	for _, c := range cases {
		if got := w(Pred{Op: c.op, Kind: types.KindInt, I: c.k}); got != c.want {
			t.Errorf("op %d k=%d: CanMatchWindow = %v, want %v", c.op, c.k, got, c.want)
		}
	}
	// A constant zone matches Eq on its value and nothing else via Ne.
	cb := &Block{Kind: types.KindInt, Rows: 4, Ints: []int64{9, 9, 9, 9}}
	cz := BuildZones(cb)
	if !cz.CanMatchWindow(0, 4, Pred{Op: CmpEq, Kind: types.KindInt, I: 9}) {
		t.Error("constant zone should match its own value")
	}
	if cz.CanMatchWindow(0, 4, Pred{Op: CmpNe, Kind: types.KindInt, I: 9}) {
		t.Error("constant zone cannot satisfy Ne of its only value")
	}
}

func TestZoneMapsAllNullAndNaN(t *testing.T) {
	// All-null zone: comparisons never match NULL, so every op skips.
	b := &Block{Kind: types.KindInt, Rows: 3, Ints: []int64{0, 0, 0}, Nulls: []bool{true, true, true}}
	z := BuildZones(b)
	for _, op := range []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe} {
		if z.CanMatchWindow(0, 3, Pred{Op: op, Kind: types.KindInt, I: 0}) {
			t.Errorf("all-null zone matched op %d", op)
		}
	}
	if z.NullCnt[0] != 3 {
		t.Errorf("null count = %d, want 3", z.NullCnt[0])
	}
	// NaN poisons a float zone's range: it must stay conservative (match).
	fb := &Block{Kind: types.KindFloat, Rows: 3, Floats: []float64{1, math.NaN(), 3}}
	fz := BuildZones(fb)
	if !fz.CanMatchWindow(0, 3, Pred{Op: CmpGt, Kind: types.KindFloat, F: 100}) {
		t.Error("NaN-poisoned zone must not be skipped")
	}
}

func TestZoneMapsCrossKind(t *testing.T) {
	b := zonedIntBlock(10)
	z := BuildZones(b)
	// Float constant against an int zone [0,9].
	if z.CanMatchWindow(0, 10, Pred{Op: CmpGt, Kind: types.KindFloat, F: 9.5}) {
		t.Error("x > 9.5 cannot match [0,9]")
	}
	if !z.CanMatchWindow(0, 10, Pred{Op: CmpGt, Kind: types.KindFloat, F: 8.5}) {
		t.Error("x > 8.5 matches 9")
	}
	if z.CanMatchWindow(0, 10, Pred{Op: CmpEq, Kind: types.KindFloat, F: 10.5}) {
		t.Error("x = 10.5 is outside [0,9]")
	}
	// In-range fractional equality stays conservative (range test only).
	if !z.CanMatchWindow(0, 10, Pred{Op: CmpEq, Kind: types.KindFloat, F: 4.5}) {
		t.Error("range-based zone maps cannot prune in-range constants")
	}
	// Beyond float64's exact-integer range an int zone must not prune
	// against float constants: the conversion rounds.
	big := &Block{Kind: types.KindInt, Rows: 2, Ints: []int64{1 << 53, 1<<53 + 3}}
	bz := BuildZones(big)
	if !bz.CanMatchWindow(0, 2, Pred{Op: CmpEq, Kind: types.KindFloat, F: float64(uint64(1)<<53) + 1}) {
		t.Error("zones past 2^53 must stay conservative")
	}
}

func TestBitmapFillSel(t *testing.T) {
	bm := NewBitmap(200)
	want := []int64{0, 5, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		bm.Set(i)
	}
	if bm.Count() != int64(len(want)) {
		t.Fatalf("count = %d, want %d", bm.Count(), len(want))
	}
	out := bm.FillSel(0, 200, make([]int32, 1024))
	if len(out) != len(want) {
		t.Fatalf("fill = %v", out)
	}
	for i, r := range out {
		if int64(r) != want[i] {
			t.Fatalf("fill[%d] = %d, want %d", i, r, want[i])
		}
	}
	// Window [64, 192): offsets are window-relative, tail clamped to n.
	out = bm.FillSel(64, 128, out)
	if len(out) != 4 || out[0] != 0 || out[1] != 1 || out[2] != 63 || out[3] != 64 {
		t.Fatalf("windowed fill = %v", out)
	}
	// Clamp past the bitmap's end.
	out = bm.FillSel(192, 100, out)
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("clamped fill = %v", out)
	}
}

func TestBuildIndexAndLookupInt(t *testing.T) {
	b := &Block{Dataset: "d", Key: "k", Kind: types.KindInt, Complete: true, Rows: 8,
		Ints:  []int64{5, 3, 5, 7, 3, 5, 2, 7},
		Nulls: []bool{false, false, false, false, false, false, false, true}}
	ix := BuildIndexFor(b)
	if ix == nil {
		t.Fatal("no index built")
	}
	if ix.Keys() != 4 || ix.Rows() != 8 {
		t.Fatalf("keys=%d rows=%d", ix.Keys(), ix.Rows())
	}
	check := func(op CmpOp, k int64, want ...int64) {
		t.Helper()
		bm, ok := ix.Lookup(op, Pred{Op: op, Kind: types.KindInt, I: k})
		if !ok {
			t.Fatalf("lookup op %d k=%d refused", op, k)
		}
		var got []int64
		for i := int64(0); i < 8; i++ {
			if bm.Get(i) {
				got = append(got, i)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("op %d k=%d rows = %v, want %v", op, k, got, want)
		}
	}
	check(CmpEq, 5, 0, 2, 5)
	check(CmpEq, 7, 3) // row 7 is NULL, never matches
	check(CmpEq, 4)    // absent key
	check(CmpNe, 5, 1, 3, 4, 6)
	check(CmpLt, 5, 1, 4, 6)
	check(CmpLe, 3, 1, 4, 6)
	check(CmpGt, 5, 3)
	check(CmpGe, 7, 3)
	// Float lookups on an int index must refuse (fallback to kernels).
	if _, ok := ix.Lookup(CmpEq, Pred{Op: CmpEq, Kind: types.KindFloat, F: 5}); ok {
		t.Error("cross-kind lookup must refuse")
	}
}

func TestBuildIndexDictString(t *testing.T) {
	b := &Block{Dataset: "d", Key: "k", Kind: types.KindString, Complete: true, Rows: 6,
		Strs:  []string{"red", "blue", "red", "green", "blue", "red"},
		Nulls: []bool{false, false, false, false, true, false}}
	ix := BuildIndexFor(b)
	if ix == nil {
		t.Fatal("no string index built")
	}
	bm, ok := ix.Lookup(CmpEq, Pred{Op: CmpEq, Kind: types.KindString, S: "red"})
	if !ok || !bm.Get(0) || bm.Get(1) || !bm.Get(2) || !bm.Get(5) {
		t.Fatalf("red lookup wrong: ok=%v", ok)
	}
	// Ne must exclude NULL rows: row 4 is a null "blue" slot.
	bm, ok = ix.Lookup(CmpNe, Pred{Op: CmpNe, Kind: types.KindString, S: "red"})
	if !ok || !bm.Get(1) || !bm.Get(3) || bm.Get(4) || bm.Get(0) {
		t.Fatal("ne lookup wrong")
	}
	// Missing needle: Eq matches nothing, Ne matches every non-null row.
	bm, ok = ix.Lookup(CmpEq, Pred{Op: CmpEq, Kind: types.KindString, S: "mauve"})
	if !ok || bm.Count() != 0 {
		t.Fatal("missing-key Eq should be empty")
	}
	bm, ok = ix.Lookup(CmpNe, Pred{Op: CmpNe, Kind: types.KindString, S: "mauve"})
	if !ok || bm.Count() != 5 {
		t.Fatalf("missing-key Ne = %d, want 5", bm.Count())
	}
	// Range ops have no meaning over appearance-ordered codes.
	if _, ok := ix.Lookup(CmpLt, Pred{Op: CmpLt, Kind: types.KindString, S: "red"}); ok {
		t.Error("string range lookup must refuse")
	}
}

func TestBuildIndexRefusals(t *testing.T) {
	fb := &Block{Kind: types.KindFloat, Rows: 2, Floats: []float64{1, 2}}
	if BuildIndexFor(fb) != nil {
		t.Error("float columns must not be indexed")
	}
	wide := &Block{Kind: types.KindInt, Rows: maxIndexKeys + 1}
	for i := 0; i <= maxIndexKeys; i++ {
		wide.Ints = append(wide.Ints, int64(i))
	}
	if BuildIndexFor(wide) != nil {
		t.Error("too-distinct columns must not be indexed")
	}
}

// TestConcatBlocksValidation pins the fragment-merge contract: mismatched
// datasets, keys, kinds, or inconsistent column/null lengths reject the
// merge, and Complete propagates only when every fragment is complete.
func TestConcatBlocksValidation(t *testing.T) {
	frag := func(key string, kind types.Kind, rows int) *Block {
		b := &Block{Dataset: "ds", Key: key, Kind: kind, Complete: true, Rows: int64(rows)}
		switch kind {
		case types.KindInt:
			b.Ints = make([]int64, rows)
		case types.KindFloat:
			b.Floats = make([]float64, rows)
		}
		return b
	}
	if ConcatBlocks(nil) != nil {
		t.Error("empty concat must be nil")
	}
	ok := ConcatBlocks([]*Block{frag("a", types.KindInt, 2), frag("a", types.KindInt, 3)})
	if ok == nil || ok.Rows != 5 || !ok.Complete || len(ok.Ints) != 5 {
		t.Fatalf("valid concat = %+v", ok)
	}
	if ok.Nulls != nil {
		t.Error("all-dense fragments must concat dense")
	}

	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), nil}) != nil {
		t.Error("nil fragment must reject")
	}
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), frag("b", types.KindInt, 2)}) != nil {
		t.Error("key mismatch must reject")
	}
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), frag("a", types.KindFloat, 2)}) != nil {
		t.Error("kind mismatch must reject")
	}
	other := frag("a", types.KindInt, 2)
	other.Dataset = "other"
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), other}) != nil {
		t.Error("dataset mismatch must reject")
	}
	short := frag("a", types.KindInt, 3)
	short.Ints = short.Ints[:2] // typed column shorter than Rows
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), short}) != nil {
		t.Error("length-inconsistent fragment must reject")
	}
	crossed := frag("a", types.KindInt, 2)
	crossed.Floats = []float64{1} // foreign typed column populated
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), crossed}) != nil {
		t.Error("cross-typed fragment must reject")
	}
	badNulls := frag("a", types.KindInt, 2)
	badNulls.Nulls = []bool{true} // nulls shorter than Rows
	if ConcatBlocks([]*Block{frag("a", types.KindInt, 2), badNulls}) != nil {
		t.Error("short null column must reject")
	}

	partial := frag("a", types.KindInt, 2)
	partial.Complete = false
	got := ConcatBlocks([]*Block{frag("a", types.KindInt, 2), partial})
	if got == nil || got.Complete {
		t.Error("any incomplete fragment must clear Complete")
	}
	// Sparse + dense fragments: the merged null column covers both.
	sparse := frag("a", types.KindInt, 2)
	sparse.Nulls = []bool{false, true}
	got = ConcatBlocks([]*Block{frag("a", types.KindInt, 2), sparse})
	if got == nil || len(got.Nulls) != 4 || got.Nulls[2] || !got.Nulls[3] {
		t.Fatalf("sparse concat nulls = %+v", got)
	}
}

// TestEvictionOrderLargeClock is the regression for the float eviction
// score: with lastUsed values past float64's 53-bit mantissa, the old
// bias*1e9+lastUsed score collapsed recency within a bias class (and let a
// huge clock bleed across classes). The lexicographic comparison must evict
// strictly LRU-within-cheapest-bias regardless of clock magnitude.
func TestEvictionOrderLargeClock(t *testing.T) {
	// Each 20-row int block is 160 column bytes + 21 zone-map bytes = 181;
	// the arena holds exactly two.
	mem := storage.NewManager(2 * 181)
	m := NewManager(mem, true)
	m.clock = 1 << 53 // past float64 integer precision
	old := intBlock("d", "old", 20, 1)
	mid := intBlock("d", "mid", 20, 1)
	josn := intBlock("d", "json", 20, 14) // expensive format, oldest of all
	m.Register(old)
	m.Register(josn)
	// Registering "mid" must evict "old" (cheapest bias, least recent),
	// not "json" (expensive bias) — even though their lastUsed values
	// differ by 1, which a float64 bias*1e9+lastUsed score cannot see at
	// this clock magnitude.
	m.Register(mid)
	if _, ok := m.blocks["d\x00old"]; ok {
		t.Error("old should have been evicted")
	}
	if _, ok := m.blocks["d\x00json"]; !ok {
		t.Error("json (expensive bias) must survive")
	}
	if _, ok := m.blocks["d\x00mid"]; !ok {
		t.Error("mid must be registered")
	}
	// Recency within a bias class at huge clock: touch "json" then force
	// another eviction round — "mid" (cheap) goes before "json".
	if _, ok := m.Lookup("d", "json"); !ok {
		t.Fatal("lookup json")
	}
	m.Register(intBlock("d", "new", 20, 1))
	if _, ok := m.blocks["d\x00mid"]; ok {
		t.Error("mid should have been evicted on the second round")
	}
	if _, ok := m.blocks["d\x00json"]; !ok {
		t.Error("json must still survive")
	}
}

// TestIndexPolicy pins NotePredicate/CreditScan promotion: IndexOn builds
// immediately, IndexAuto needs hotScanThreshold scans on a selective
// predicate, IndexOff never builds, and unselective predicates never promote.
func TestIndexPolicy(t *testing.T) {
	mk := func(mode IndexMode) *Manager {
		m := NewManager(storage.NewManager(0), true)
		m.Indexes = mode
		m.Register(intBlock("d", "k", 10, 1))
		return m
	}
	m := mk(IndexOn)
	m.NotePredicate("d", "k", 0.9) // forced mode ignores selectivity
	if b, _ := m.Lookup("d", "k"); b.Index() == nil {
		t.Fatal("IndexOn must build on first predicate")
	}
	if s := m.Snapshot(); s.IndexBuilds != 1 || s.Indexes != 1 || s.IndexBytes <= 0 {
		t.Fatalf("accounting after forced build: %+v", s)
	}

	m = mk(IndexAuto)
	m.NotePredicate("d", "k", 0.1)
	for i := 0; i < hotScanThreshold-1; i++ {
		m.CreditScan("d", "k")
		if b, _ := m.Lookup("d", "k"); b.Index() != nil {
			t.Fatalf("promoted after only %d scans", i+1)
		}
	}
	m.CreditScan("d", "k")
	if b, _ := m.Lookup("d", "k"); b.Index() == nil {
		t.Fatal("auto policy must promote at the hot-scan threshold")
	}

	m = mk(IndexAuto)
	m.NotePredicate("d", "k", 0.9) // unselective: never promote
	for i := 0; i < 10*hotScanThreshold; i++ {
		m.CreditScan("d", "k")
	}
	if b, _ := m.Lookup("d", "k"); b.Index() != nil {
		t.Fatal("unselective predicates must not promote")
	}

	m = mk(IndexOff)
	m.NotePredicate("d", "k", 0.01)
	for i := 0; i < 10*hotScanThreshold; i++ {
		m.CreditScan("d", "k")
	}
	if b, _ := m.Lookup("d", "k"); b.Index() != nil {
		t.Fatal("IndexOff must never build")
	}
}

// TestIndexEvictionAccounting checks an evicted block releases its index
// bytes along with its column bytes.
func TestIndexEvictionAccounting(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	m.Indexes = IndexOn
	m.Register(intBlock("d", "k", 10, 1))
	m.NotePredicate("d", "k", 0.1)
	if got := m.Snapshot().IndexBytes; got <= 0 {
		t.Fatalf("index bytes = %d", got)
	}
	m.Drop("d")
	if used := m.mem.ArenaUsed(); used != 0 {
		t.Fatalf("arena after drop = %d, want 0", used)
	}
}
