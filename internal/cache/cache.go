// Package cache implements the adaptive caching layer of the paper (§6).
// As a side-effect of query execution, output plug-ins materialize
// evaluated expressions — most importantly raw CSV/JSON field values
// converted to binary — into columnar cache blocks. Later queries are
// rewritten (at code-generation time) to read the compact binary blocks
// instead of re-navigating and re-converting the verbose sources. The
// Caching Manager matches caches by canonical expression key, applies the
// paper's first-come-first-served population policy, reuses materialized
// hash-join sides, and evicts with a data-format-biased LRU that favors
// keeping data from costlier formats (JSON ≻ CSV ≻ Binary).
package cache

import (
	"sort"
	"sync"
	"sync/atomic"

	"proteus/internal/storage"
	"proteus/internal/types"
)

// Block is one materialized cache: the evaluated results of an expression
// over every record of a dataset, stored as a compact binary column.
type Block struct {
	Dataset string
	Key     string // canonical expression key, e.g. field path "children.age"
	Kind    types.Kind

	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
	Nulls  []bool // nil when the column has no nulls

	Rows     int64
	Complete bool // the producing scan ran to completion

	// FormatBias is the per-field access cost of the source format; the
	// eviction policy keeps high-bias blocks longer.
	FormatBias float64

	// Zones holds the per-1024-row min/max/null-count zone maps, built by
	// Manager.Register before the block becomes visible (so readers never
	// race a mutation).
	Zones *ZoneMaps

	// idx is the optional bitmap index, published after the block itself
	// (adaptive: only once the index-selection policy marks the column hot).
	idx atomic.Pointer[Index]

	lastUsed int64

	// bytesMemo caches Bytes() for Complete blocks, which are immutable, so
	// eviction passes stop re-walking every cached string (O(total cached
	// bytes) per pass before). Stored as size+1 so zero means "unset" even
	// for empty blocks; the atomic makes concurrent first computations safe
	// (they all store the same value).
	bytesMemo atomic.Int64
}

// Bytes reports the block's memory footprint. The result is memoized once
// the block is Complete (immutable from that point); incomplete builder
// blocks are still walked every call.
func (b *Block) Bytes() int64 {
	if memo := b.bytesMemo.Load(); memo != 0 {
		return memo - 1
	}
	n := int64(len(b.Ints))*8 + int64(len(b.Floats))*8 + int64(len(b.Bools)) + int64(len(b.Nulls))
	for _, s := range b.Strs {
		n += int64(len(s)) + 16
	}
	n += b.Zones.bytes()
	if b.Complete {
		b.bytesMemo.Store(n + 1)
	}
	return n
}

// Index returns the block's bitmap index, or nil if none has been built.
func (b *Block) Index() *Index { return b.idx.Load() }

// ConcatBlocks merges per-morsel partial blocks — listed in row order, all
// for the same (dataset, key, kind) — into one block covering their union.
// Parallel scans populate the cache this way: every worker builds the
// fragment for its morsel, and the coordinator concatenates and registers
// the full column exactly once when the scan finishes (§6 under
// parallelism: blocks are only ever registered complete).
//
// Every fragment must agree on (Dataset, Key, Kind) and be internally
// consistent (typed column length == Rows, Nulls nil or the same length);
// otherwise the merge would silently misalign columns, so ConcatBlocks
// returns nil instead. The result is Complete only if every fragment is.
func ConcatBlocks(parts []*Block) *Block {
	if len(parts) == 0 {
		return nil
	}
	first := parts[0]
	out := &Block{
		Dataset:    first.Dataset,
		Key:        first.Key,
		Kind:       first.Kind,
		FormatBias: first.FormatBias,
		Complete:   true,
	}
	hasNulls := false
	for _, p := range parts {
		if p == nil || p.Dataset != first.Dataset || p.Key != first.Key || p.Kind != first.Kind {
			return nil
		}
		if !fragmentConsistent(p) {
			return nil
		}
		if p.Nulls != nil {
			hasNulls = true
		}
	}
	for _, p := range parts {
		out.Ints = append(out.Ints, p.Ints...)
		out.Floats = append(out.Floats, p.Floats...)
		out.Bools = append(out.Bools, p.Bools...)
		out.Strs = append(out.Strs, p.Strs...)
		if hasNulls {
			if p.Nulls != nil {
				out.Nulls = append(out.Nulls, p.Nulls...)
			} else {
				out.Nulls = append(out.Nulls, make([]bool, p.Rows)...)
			}
		}
		out.Rows += p.Rows
		if !p.Complete {
			out.Complete = false
		}
	}
	return out
}

// fragmentConsistent checks that a fragment's column lengths agree with its
// Rows count: exactly the typed column for its Kind is populated (length ==
// Rows) and Nulls, when present, covers every row.
func fragmentConsistent(p *Block) bool {
	lens := [4]int{len(p.Ints), len(p.Floats), len(p.Bools), len(p.Strs)}
	var want int
	switch p.Kind {
	case types.KindInt:
		want = 0
	case types.KindFloat:
		want = 1
	case types.KindBool:
		want = 2
	case types.KindString:
		want = 3
	default:
		return false
	}
	for i, n := range lens {
		if i == want {
			if int64(n) != p.Rows {
				return false
			}
		} else if n != 0 {
			return false
		}
	}
	return p.Nulls == nil || int64(len(p.Nulls)) == p.Rows
}

// JoinSide is an opaque materialized hash-join build side registered for
// partial plan matching ("the newly arrived query A⋈C can re-use the
// hashtable built for A if it uses the same join key"). The executor owns
// the concrete type.
type JoinSide struct {
	Fingerprint string
	Payload     any
	Bytes       int64
	lastUsed    int64
}

// Manager is the Caching Manager: it stores blocks and join sides, serves
// cache-matching probes during plan compilation, and enforces the arena
// budget with biased-LRU eviction.
type Manager struct {
	mu      sync.Mutex
	mem     *storage.Manager
	enabled atomic.Bool
	clock   int64

	blocks map[string]*Block // key: dataset + "\x00" + expr key
	joins  map[string]*JoinSide

	// Policy knobs (§6 "Cache Policies").
	CacheStrings bool      // default false: verbose strings pollute the cache
	Indexes      IndexMode // bitmap-index policy: adaptive, forced on, or off

	// cands tracks columns that pushed-down predicates target, keyed like
	// blocks; the index-selection policy promotes hot ones to bitmap
	// indexes. Guarded by mu.
	cands map[string]*indexCand

	// Counters for observability and tests; atomics so hot compile paths
	// and concurrent snapshot readers never race.
	hits, misses, evictions atomic.Int64

	// Index observability: windows skipped via zone maps, batches served by
	// a bitmap index, and indexes built.
	zoneSkips, idxHits, idxBuilds atomic.Int64

	// epoch advances whenever the set of usable blocks changes (register,
	// drop, eviction, enable toggle). Compiled-plan caches key on it so a
	// plan compiled before a block existed is not served after the block
	// would have rewritten the scan.
	epoch atomic.Uint64
	// buildNanos accumulates wall time spent materializing and registering
	// cache blocks (builder Finish/Concat/Register), credited once per scan
	// run by the executor.
	buildNanos atomic.Int64
}

// NewManager returns a Manager backed by the memory manager's arena.
func NewManager(mem *storage.Manager, enabled bool) *Manager {
	m := &Manager{
		mem:    mem,
		blocks: map[string]*Block{},
		joins:  map[string]*JoinSide{},
		cands:  map[string]*indexCand{},
	}
	m.enabled.Store(enabled)
	return m
}

// Enabled reports whether adaptive caching is on.
func (m *Manager) Enabled() bool { return m != nil && m.enabled.Load() }

// SetEnabled toggles adaptive caching (experiments flip it per run).
func (m *Manager) SetEnabled(on bool) {
	m.enabled.Store(on)
	m.epoch.Add(1)
}

// Epoch returns the current cache-content generation. A nil manager (cache
// disabled at construction) is permanently at epoch 0.
func (m *Manager) Epoch() uint64 {
	if m == nil {
		return 0
	}
	return m.epoch.Load()
}

func blockKey(dataset, key string) string { return dataset + "\x00" + key }

// Lookup returns the complete cache block for (dataset, expression key), if
// any, updating its recency.
func (m *Manager) Lookup(dataset, key string) (*Block, bool) {
	if !m.Enabled() {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[blockKey(dataset, key)]
	if !ok || !b.Complete {
		m.misses.Add(1)
		return nil, false
	}
	m.clock++
	b.lastUsed = m.clock
	m.hits.Add(1)
	return b, true
}

// Has reports whether a complete block exists without touching recency.
func (m *Manager) Has(dataset, key string) bool {
	if !m.Enabled() {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[blockKey(dataset, key)]
	return ok && b.Complete
}

// ShouldCache applies the population policy: cache primitive values from
// verbose formats (bias > 1); skip strings unless CacheStrings is set.
func (m *Manager) ShouldCache(formatBias float64, kind types.Kind) bool {
	if !m.Enabled() || formatBias <= 1.0 {
		return false
	}
	switch kind {
	case types.KindInt, types.KindFloat, types.KindBool:
		return true
	case types.KindString:
		return m.CacheStrings
	default:
		return false
	}
}

// Register installs a completed block, evicting lower-value blocks if the
// arena budget requires it. Returns false if the block could not fit even
// after eviction.
func (m *Manager) Register(b *Block) bool {
	if !m.Enabled() || !b.Complete {
		return false
	}
	if b.Zones == nil {
		b.Zones = BuildZones(b) // before Bytes() so zone memory is accounted
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := blockKey(b.Dataset, b.Key)
	if old, ok := m.blocks[k]; ok {
		m.releaseLocked(old)
		delete(m.blocks, k)
	}
	if !m.reserve(b.Bytes()) {
		return false
	}
	m.clock++
	b.lastUsed = m.clock
	m.blocks[k] = b
	m.epoch.Add(1)
	return true
}

// reserve makes room for size bytes, evicting in biased-LRU order:
// cheaper-to-rebuild (low FormatBias) and older blocks go first. The
// comparison is lexicographic on (FormatBias, lastUsed) — a single float
// score of the form bias*1e9+lastUsed loses lastUsed precision once the
// clock grows past float64's 53-bit mantissa and lets a large clock bleed
// across bias classes. The caller holds m.mu.
func (m *Manager) reserve(size int64) bool {
	if m.mem.ArenaReserve(size) {
		return true
	}
	type cand struct {
		key      string
		bias     float64
		lastUsed int64
	}
	var cands []cand
	for k, b := range m.blocks {
		cands = append(cands, cand{k, b.FormatBias, b.lastUsed})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bias != cands[j].bias {
			return cands[i].bias < cands[j].bias
		}
		return cands[i].lastUsed < cands[j].lastUsed
	})
	for _, c := range cands {
		b := m.blocks[c.key]
		m.releaseLocked(b)
		delete(m.blocks, c.key)
		m.evictions.Add(1)
		m.epoch.Add(1)
		if m.mem.ArenaReserve(size) {
			return true
		}
	}
	return m.mem.ArenaReserve(size)
}

// releaseLocked returns a block's arena bytes, including any bitmap index
// accounted when the index was built. The caller holds m.mu.
func (m *Manager) releaseLocked(b *Block) {
	m.mem.ArenaRelease(b.Bytes())
	if ix := b.Index(); ix != nil {
		m.mem.ArenaRelease(ix.Bytes())
	}
}

// Drop invalidates every cache derived from a dataset (the paper's
// drop-and-rebuild answer to updates).
func (m *Manager) Drop(dataset string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, b := range m.blocks {
		if b.Dataset == dataset {
			m.releaseLocked(b)
			delete(m.blocks, k)
		}
	}
	for k, c := range m.cands {
		if c.dataset == dataset {
			delete(m.cands, k)
		}
	}
	for k, j := range m.joins {
		_ = j
		delete(m.joins, k)
	}
	m.epoch.Add(1)
}

// LookupJoinSide returns a previously materialized hash-join build side
// whose subtree+key fingerprint matches.
func (m *Manager) LookupJoinSide(fingerprint string) (*JoinSide, bool) {
	if !m.Enabled() {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.joins[fingerprint]
	if !ok {
		return nil, false
	}
	m.clock++
	j.lastUsed = m.clock
	return j, true
}

// RegisterJoinSide stores a materialized build side for reuse.
func (m *Manager) RegisterJoinSide(j *JoinSide) bool {
	if !m.Enabled() {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.reserve(j.Bytes) {
		return false
	}
	m.clock++
	j.lastUsed = m.clock
	m.joins[j.Fingerprint] = j
	return true
}

// AddBuildNanos credits wall time spent materializing cache blocks.
func (m *Manager) AddBuildNanos(n int64) {
	if m != nil && n > 0 {
		m.buildNanos.Add(n)
	}
}

// Stats summarizes the cache state for EXPLAIN-style output and tests.
type Stats struct {
	Blocks     int
	JoinSides  int
	Bytes      int64
	Hits       int64
	Misses     int64
	Evictions  int64
	BuildNanos int64

	// Columnar-index state (v2): built bitmap indexes and their footprint,
	// zone-map window skips, batches served from an index, and builds.
	Indexes     int
	IndexBytes  int64
	ZoneSkips   int64
	IndexHits   int64
	IndexBuilds int64
}

// Snapshot returns current cache statistics.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Blocks: len(m.blocks), JoinSides: len(m.joins),
		Hits: m.hits.Load(), Misses: m.misses.Load(), Evictions: m.evictions.Load(),
		BuildNanos:  m.buildNanos.Load(),
		ZoneSkips:   m.zoneSkips.Load(),
		IndexHits:   m.idxHits.Load(),
		IndexBuilds: m.idxBuilds.Load(),
	}
	for _, b := range m.blocks {
		s.Bytes += b.Bytes()
		if ix := b.Index(); ix != nil {
			s.Indexes++
			s.IndexBytes += ix.Bytes()
		}
	}
	return s
}

// BytesForDataset reports cached bytes attributed to one dataset (used by
// the Table 3 style reporting of cache size vs. file size).
func (m *Manager) BytesForDataset(dataset string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, b := range m.blocks {
		if b.Dataset == dataset {
			n += b.Bytes()
		}
	}
	return n
}
