package cache

import (
	"fmt"
	"sync"
	"testing"

	"proteus/internal/storage"
	"proteus/internal/types"
)

// TestManagerConcurrentAccess hammers every Manager entry point from many
// goroutines; run under -race it proves the enabled flag, the counters, and
// Block.Bytes carry no data races.
func TestManagerConcurrentAccess(t *testing.T) {
	m := NewManager(storage.NewManager(0), true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("col%d", i%10)
				switch i % 6 {
				case 0:
					m.Register(intBlock("ds", key, 16, 14))
				case 1:
					if b, ok := m.Lookup("ds", key); ok {
						_ = b.Bytes()
					}
				case 2:
					m.Has("ds", key)
				case 3:
					m.SetEnabled(i%2 == 0)
					m.SetEnabled(true)
				case 4:
					_ = m.Snapshot()
					_ = m.BytesForDataset("ds")
				case 5:
					m.ShouldCache(14, types.KindInt)
				}
			}
		}(w)
	}
	wg.Wait()
	if s := m.Snapshot(); s.Hits+s.Misses == 0 {
		t.Errorf("expected lookups to be counted, snapshot = %+v", s)
	}
}

func TestConcatBlocks(t *testing.T) {
	a := &Block{Dataset: "ds", Key: "x", Kind: types.KindInt, FormatBias: 4,
		Ints: []int64{1, 2, 3}, Rows: 3}
	b := &Block{Dataset: "ds", Key: "x", Kind: types.KindInt, FormatBias: 4,
		Ints: []int64{4, 5}, Nulls: []bool{false, true}, Rows: 2}
	out := ConcatBlocks([]*Block{a, b})
	if out.Rows != 5 || len(out.Ints) != 5 {
		t.Fatalf("rows = %d ints = %d, want 5/5", out.Rows, len(out.Ints))
	}
	// One fragment had nulls, so the merged column must carry a full-length
	// null vector with the null-free fragment widened to all-false.
	want := []bool{false, false, false, false, true}
	if len(out.Nulls) != len(want) {
		t.Fatalf("nulls = %v, want %v", out.Nulls, want)
	}
	for i := range want {
		if out.Nulls[i] != want[i] {
			t.Fatalf("nulls = %v, want %v", out.Nulls, want)
		}
	}
	if out.Complete {
		t.Error("ConcatBlocks must leave Complete to the caller")
	}

	c := &Block{Dataset: "ds", Key: "y", Kind: types.KindInt, Ints: []int64{7}, Rows: 1}
	if out := ConcatBlocks([]*Block{c}); out.Nulls != nil {
		t.Errorf("null-free fragments must stay null-free, got %v", out.Nulls)
	}
	if ConcatBlocks(nil) != nil {
		t.Error("ConcatBlocks(nil) should be nil")
	}
}

// TestBlockBytesMemo verifies the memoization contract: a growing (incomplete)
// builder block recomputes its footprint on every call, while a Complete
// block — immutable by contract — memoizes it via an atomic, so sharing the
// block across workers stays race-free.
func TestBlockBytesMemo(t *testing.T) {
	b := intBlock("ds", "col", 8, 14)
	b.Complete = false
	n1 := b.Bytes()
	b.Ints = append(b.Ints, 99)
	b.Rows++
	n2 := b.Bytes()
	if n2 <= n1 {
		t.Errorf("Bytes after growth = %d, want > %d", n2, n1)
	}
	b.Complete = true
	if got := b.Bytes(); got != n2 {
		t.Errorf("Bytes after Complete = %d, want %d", got, n2)
	}
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := b.Bytes(); got != n2 {
				t.Errorf("concurrent Bytes = %d, want %d", got, n2)
			}
		}()
	}
	wg.Wait()
}
