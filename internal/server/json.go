// NDJSON row rendering: one appended JSON document per result row, with no
// per-row allocation beyond the shared buffer. Records become objects,
// collections arrays; non-finite floats — which JSON cannot carry — become
// null, matching what a round-trip through encoding/json would reject.
package server

import (
	"strconv"
	"unicode/utf8"

	"proteus/internal/types"
)

// appendValueJSON appends v's JSON encoding to dst and returns the extended
// buffer.
func appendValueJSON(dst []byte, v types.Value) []byte {
	switch v.Kind {
	case types.KindNull:
		return append(dst, "null"...)
	case types.KindBool:
		if v.I != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case types.KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case types.KindFloat:
		f := v.F
		if f != f || f > 1.797693134862315708e308 || f < -1.797693134862315708e308 {
			return append(dst, "null"...) // NaN / ±Inf
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	case types.KindString:
		return appendJSONString(dst, v.S)
	case types.KindRecord:
		dst = append(dst, '{')
		if v.Rec != nil {
			for i, name := range v.Rec.Names {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = appendJSONString(dst, name)
				dst = append(dst, ':')
				dst = appendValueJSON(dst, v.Rec.Values[i])
			}
		}
		return append(dst, '}')
	case types.KindList, types.KindBag:
		dst = append(dst, '[')
		for i, e := range v.Elems {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendValueJSON(dst, e)
		}
		return append(dst, ']')
	default:
		return append(dst, "null"...)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal: quotes, backslashes,
// and control characters escaped, invalid UTF-8 replaced with U+FFFD (the
// same policy encoding/json applies).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				dst = append(dst, '\\', c)
			case c == '\n':
				dst = append(dst, '\\', 'n')
			case c == '\r':
				dst = append(dst, '\\', 'r')
			case c == '\t':
				dst = append(dst, '\\', 't')
			case c < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				dst = append(dst, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, "�"...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
