// Prepared statements: POST /v1/prepare validates and compiles a query
// once, returns an opaque handle, and later /v1/query calls execute by
// handle. The handle registry stores only the (validated) query text — the
// compiled program itself lives in the engine's plan LRU, keyed by
// normalized text and invalidated on catalog/cache epoch changes — so an
// execute-by-handle is a plan-cache hit that skips parse→optimize→compile
// without the service holding programs that could go stale.
package server

import (
	"fmt"
	"sync"
	"time"
)

// preparedStmt is one registered handle.
type preparedStmt struct {
	Handle  string    `json:"handle"`
	Query   string    `json:"query"`
	Lang    string    `json:"lang"`
	Created time.Time `json:"created"`
	Uses    int64     `json:"uses"`

	lastUsed int64 // LRU clock value, guarded by the set's mutex
}

// preparedSet is a bounded LRU of prepared statements.
type preparedSet struct {
	mu    sync.Mutex
	cap   int
	seq   int64 // handle numbering
	clock int64 // LRU ticks
	stmts map[string]*preparedStmt
}

func newPreparedSet(capacity int) *preparedSet {
	if capacity < 1 {
		capacity = 1
	}
	return &preparedSet{cap: capacity, stmts: map[string]*preparedStmt{}}
}

// put registers a validated statement, evicting the least-recently-used
// handle when the set is full, and returns the new handle's record.
func (ps *preparedSet) put(query, lang string, now time.Time) preparedStmt {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.stmts) >= ps.cap {
		var lru *preparedStmt
		for _, s := range ps.stmts {
			if lru == nil || s.lastUsed < lru.lastUsed {
				lru = s
			}
		}
		delete(ps.stmts, lru.Handle)
	}
	ps.seq++
	ps.clock++
	st := &preparedStmt{
		Handle:   fmt.Sprintf("p-%d", ps.seq),
		Query:    query,
		Lang:     lang,
		Created:  now,
		lastUsed: ps.clock,
	}
	ps.stmts[st.Handle] = st
	return *st
}

// get resolves a handle, bumping its recency and use count.
func (ps *preparedSet) get(handle string) (preparedStmt, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st, ok := ps.stmts[handle]
	if !ok {
		return preparedStmt{}, false
	}
	ps.clock++
	st.lastUsed = ps.clock
	st.Uses++
	return *st, true
}

// drop removes a handle, reporting whether it existed.
func (ps *preparedSet) drop(handle string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	_, ok := ps.stmts[handle]
	delete(ps.stmts, handle)
	return ok
}

// list snapshots every statement, most-recently-used first.
func (ps *preparedSet) list() []preparedStmt {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]preparedStmt, 0, len(ps.stmts))
	for _, s := range ps.stmts {
		out = append(out, *s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].lastUsed > out[j-1].lastUsed; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// len reports the number of registered handles.
func (ps *preparedSet) len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.stmts)
}
