// Per-tenant admission and memory quotas. The engine's global gates
// (Config.MaxConcurrentQueries, Config.QueryMemBudget) protect the process;
// the tenant set layers fairness on top: no single tenant key — taken from
// the X-Proteus-Tenant request header — can occupy more than its share of
// concurrent-query tokens or reserved operator-state memory, so a noisy
// tenant is rejected with 429 while every other tenant's traffic proceeds.
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultTenant is the tenant key used when a request carries no
// X-Proteus-Tenant header.
const DefaultTenant = "default"

// tenant is one tenant's admission state and counters. active is guarded by
// the owning set's mutex (admission is a check-then-increment); the
// counters are atomics updated outside the lock.
type tenant struct {
	name   string
	active int

	queries   atomic.Int64 // completed queries (including failures)
	rows      atomic.Int64 // result rows streamed
	rejected  atomic.Int64 // admissions refused by a quota
	cancelled atomic.Int64 // queries aborted by client disconnect/cancel
	errors    atomic.Int64 // queries that returned an error
}

// quotaError is an admission refusal; the server maps it to 429.
type quotaError struct {
	tenant string
	reason string
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota", e.tenant, e.reason)
}

// tenantSet is the registry of tenants and their shared quota policy.
// maxConcurrent caps each tenant's in-flight queries (0 = unlimited).
// memQuota caps the operator-state bytes a tenant may have reserved at
// once: every admitted query reserves memPerQuery (the engine's per-query
// memory budget — the most it can pin), so the check is a token count, not
// runtime tracking. With no per-query budget there is nothing to reserve
// and the memory quota is inert.
type tenantSet struct {
	mu            sync.Mutex
	tenants       map[string]*tenant
	maxConcurrent int
	memQuota      int64
	memPerQuery   int64
}

func newTenantSet(maxConcurrent int, memQuota, memPerQuery int64) *tenantSet {
	return &tenantSet{
		tenants:       map[string]*tenant{},
		maxConcurrent: maxConcurrent,
		memQuota:      memQuota,
		memPerQuery:   memPerQuery,
	}
}

// admit reserves one concurrency token (and memPerQuery reserved bytes) for
// the named tenant, or returns a *quotaError without reserving anything.
// Rejection is immediate rather than queued: a service under per-tenant
// pressure should shed that tenant's load with 429 + Retry-After, not grow
// an unbounded queue.
func (ts *tenantSet) admit(name string) (*tenant, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.tenants[name]
	if t == nil {
		t = &tenant{name: name}
		ts.tenants[name] = t
	}
	if ts.maxConcurrent > 0 && t.active >= ts.maxConcurrent {
		t.rejected.Add(1)
		return nil, &quotaError{tenant: name, reason: "concurrent-query"}
	}
	if ts.memQuota > 0 && ts.memPerQuery > 0 &&
		int64(t.active+1)*ts.memPerQuery > ts.memQuota {
		t.rejected.Add(1)
		return nil, &quotaError{tenant: name, reason: "memory"}
	}
	t.active++
	return t, nil
}

// release returns the tokens taken by admit.
func (ts *tenantSet) release(t *tenant) {
	ts.mu.Lock()
	t.active--
	ts.mu.Unlock()
}

// snapshotRow is one tenant's counters at a point in time.
type snapshotRow struct {
	Name      string `json:"tenant"`
	Active    int    `json:"active"`
	Queries   int64  `json:"queries"`
	Rows      int64  `json:"rows"`
	Rejected  int64  `json:"rejected"`
	Cancelled int64  `json:"cancelled"`
	Errors    int64  `json:"errors"`
}

// snapshot copies every tenant's counters, sorted by name.
func (ts *tenantSet) snapshot() []snapshotRow {
	ts.mu.Lock()
	rows := make([]snapshotRow, 0, len(ts.tenants))
	for _, t := range ts.tenants {
		rows = append(rows, snapshotRow{
			Name:      t.name,
			Active:    t.active,
			Queries:   t.queries.Load(),
			Rows:      t.rows.Load(),
			Rejected:  t.rejected.Load(),
			Cancelled: t.cancelled.Load(),
			Errors:    t.errors.Load(),
		})
	}
	ts.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// prometheus renders the per-tenant counter families in the text exposition
// format, appended after the engine's own /metrics output.
func (ts *tenantSet) prometheus() string {
	rows := ts.snapshot()
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	family := func(name, typ, help string, value func(snapshotRow) int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " " + typ + "\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "%s{tenant=\"%s\"} %d\n", name, escapeLabel(r.Name), value(r))
		}
	}
	family("proteus_tenant_active_queries", "gauge", "Queries currently in flight per tenant.",
		func(r snapshotRow) int64 { return int64(r.Active) })
	family("proteus_tenant_queries_total", "counter", "Completed queries per tenant (including failures).",
		func(r snapshotRow) int64 { return r.Queries })
	family("proteus_tenant_rows_total", "counter", "Result rows streamed per tenant.",
		func(r snapshotRow) int64 { return r.Rows })
	family("proteus_tenant_rejected_total", "counter", "Admissions refused by a per-tenant quota.",
		func(r snapshotRow) int64 { return r.Rejected })
	family("proteus_tenant_cancelled_total", "counter", "Queries aborted by client disconnect or cancellation, per tenant.",
		func(r snapshotRow) int64 { return r.Cancelled })
	family("proteus_tenant_errors_total", "counter", "Queries that returned an error, per tenant.",
		func(r snapshotRow) int64 { return r.Errors })
	if ts.memQuota > 0 && ts.memPerQuery > 0 {
		b.WriteString("# HELP proteus_tenant_mem_reserved_bytes Operator-state bytes reserved by in-flight queries per tenant.\n")
		b.WriteString("# TYPE proteus_tenant_mem_reserved_bytes gauge\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "proteus_tenant_mem_reserved_bytes{tenant=\"%s\"} %d\n",
				escapeLabel(r.Name), int64(r.Active)*ts.memPerQuery)
		}
	}
	return b.String()
}
