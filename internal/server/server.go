// Package server is the Proteus query service: the production-shaped HTTP
// surface over one engine instance (ROADMAP item 1, first half). It turns
// the library's robustness primitives — admission gating, timeouts, memory
// budgets, panic isolation, cooperative cancellation — into a long-running
// multi-tenant network API:
//
//	POST   /v1/query    run SQL or a comprehension; rows stream back as
//	                    NDJSON and a client disconnect cancels the query
//	POST   /v1/prepare  validate + compile once, get a handle; executing a
//	                    handle rides the engine's compiled-plan LRU
//	GET    /v1/prepare  list prepared statements
//	DELETE /v1/prepare  drop a handle (?handle=p-N)
//	GET    /healthz     liveness (503 while draining)
//	GET    /metrics     engine Prometheus text + per-tenant counters
//	/debug/*            the engine observability surface (vars, queries,
//	                    trace, slow, plans, pprof)
//
// Every request gets an ID (X-Request-Id, generated when absent) that is
// attached to the query context as its tag, so profiles in /debug/queries
// and slow-query records carry the request they served. Tenancy is keyed by
// the X-Proteus-Tenant header; per-tenant concurrency and memory quotas
// reject over-quota tenants with 429 while other tenants proceed.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"proteus"
	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/types"
)

// Config tunes a Server.
type Config struct {
	// DB is the engine instance to serve (required).
	DB *proteus.DB
	// TenantMaxConcurrent caps each tenant's in-flight queries (0 = no
	// per-tenant concurrency cap; the engine's global MaxConcurrentQueries
	// still applies).
	TenantMaxConcurrent int
	// TenantMemQuota caps the operator-state bytes one tenant may have
	// reserved across its in-flight queries. Each admitted query reserves
	// QueryMemBudget bytes (its worst case), so the quota is enforced as a
	// token count at admission. 0 disables the memory quota.
	TenantMemQuota int64
	// QueryMemBudget mirrors the engine's Config.QueryMemBudget — the
	// reservation unit for TenantMemQuota.
	QueryMemBudget int64
	// MaxPrepared bounds the prepared-statement handle registry
	// (LRU-evicted; default 256).
	MaxPrepared int
	// ChunkRows is the NDJSON flush granularity in rows (default
	// exec.DefaultStreamChunk). Cancellation is noticed at chunk
	// boundaries, so smaller chunks trade syscalls for latency.
	ChunkRows int
	// RequestMaxBytes bounds a request body (default 1 MiB).
	RequestMaxBytes int64
	// Cluster, when set, marks this node a scatter/gather coordinator and
	// enables the topology endpoints (GET /v1/cluster, POST
	// /v1/cluster/join). It should be the same Coordinator the engine was
	// configured with. Worker nodes leave it nil; every node serves
	// POST /v1/fragment regardless.
	Cluster *cluster.Coordinator
}

// Server is one query service instance. Create with New, expose with
// Handler, retire with Drain (stop admitting) then Close (drain engine).
type Server struct {
	db        *proteus.DB
	mux       *http.ServeMux
	tenants   *tenantSet
	prepared  *preparedSet
	cluster   *cluster.Coordinator
	chunkRows int
	maxBytes  int64
	started   time.Time

	draining atomic.Bool
	reqSeq   atomic.Int64

	// Service-level counters, appended to /metrics.
	queriesStarted   atomic.Int64
	streamsActive    atomic.Int64
	fragmentsStarted atomic.Int64
}

// New builds a Server over cfg.DB.
func New(cfg Config) *Server {
	maxPrepared := cfg.MaxPrepared
	if maxPrepared == 0 {
		maxPrepared = 256
	}
	maxBytes := cfg.RequestMaxBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	s := &Server{
		db:        cfg.DB,
		tenants:   newTenantSet(cfg.TenantMaxConcurrent, cfg.TenantMemQuota, cfg.QueryMemBudget),
		prepared:  newPreparedSet(maxPrepared),
		cluster:   cfg.Cluster,
		chunkRows: cfg.ChunkRows,
		maxBytes:  maxBytes,
		started:   time.Now(),
	}
	if s.cluster == nil && cfg.DB != nil {
		// A DB opened with ClusterWorkers already owns a coordinator; serve
		// its topology endpoints without asking callers to wire it twice.
		s.cluster = cfg.DB.Engine().Cluster()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/fragment", s.handleFragment)
	mux.HandleFunc("GET /v1/cluster", s.handleClusterInfo)
	mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("GET /v1/prepare", s.handleListPrepared)
	mux.HandleFunc("DELETE /v1/prepare", s.handleDropPrepared)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/", cfg.DB.MetricsHandler())
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler; the caller owns the listener
// (and should set http.Server.ReadHeaderTimeout).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the service into shutdown mode: /healthz turns 503 (so load
// balancers stop routing here) and new queries are refused with 503, while
// in-flight streams keep running. Pair with http.Server.Shutdown, which
// waits for those streams, then Close.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the service and the engine: after Close returns nil, no
// query is running and none can start. Returns ctx's cause if in-flight
// queries outlive the deadline.
func (s *Server) Close(ctx context.Context) error {
	s.Drain()
	return s.db.Close(ctx)
}

// queryRequest is the /v1/query and /v1/prepare body.
type queryRequest struct {
	// Query is SQL, or a comprehension starting with `for`.
	Query string `json:"query,omitempty"`
	// Handle executes a prepared statement instead (mutually exclusive).
	Handle string `json:"handle,omitempty"`
	// ChunkRows overrides the server's NDJSON flush granularity.
	ChunkRows int `json:"chunk_rows,omitempty"`
}

// decodeRequest reads a bounded JSON body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (queryRequest, error) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	return req, nil
}

// tenantOf extracts the request's tenant key.
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Proteus-Tenant")); t != "" {
		return t
	}
	return DefaultTenant
}

// requestID returns the caller's X-Request-Id or mints one.
func (s *Server) requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	return fmt.Sprintf("q-%d", s.reqSeq.Add(1))
}

// statusOf maps a query error to its HTTP status.
func statusOf(err error) int {
	var pe *exec.PanicError
	switch {
	case errors.Is(err, proteus.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, exec.ErrMemBudget):
		return http.StatusInsufficientStorage
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful can be delivered. 499 is the
		// de-facto "client closed request" status.
		return 499
	default:
		// Remaining failures are query problems: parse errors, unknown
		// datasets or columns, bad ORDER BY targets.
		return http.StatusBadRequest
	}
}

// handleQuery runs one query and streams its result set as NDJSON:
//
//	{"cols":["name","price"],"request_id":"q-7"}   ← header line
//	{"name":"widget","price":9.99}                 ← one line per row
//	...
//	{"rows":2,"elapsed_ms":1.42,"request_id":"q-7"} ← trailer line
//
// The query runs under the request context, so a client disconnect cancels
// it cooperatively (scan drivers notice within a poll stride) and frees the
// tenant's tokens. Errors before the first byte are JSON with a proper
// status; a failure after streaming began is reported as a trailing
// {"error": ...} line, and the absence of a "rows" trailer tells clients
// the stream was truncated.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obs.WriteJSONError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := s.decodeRequest(w, r)
	if err != nil {
		obs.WriteJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	query := req.Query
	if req.Handle != "" {
		if query != "" {
			obs.WriteJSONError(w, http.StatusBadRequest, "request carries both query and handle")
			return
		}
		st, ok := s.prepared.get(req.Handle)
		if !ok {
			obs.WriteJSONError(w, http.StatusNotFound, "unknown prepared-statement handle "+req.Handle)
			return
		}
		query = st.Query
	}
	if strings.TrimSpace(query) == "" {
		obs.WriteJSONError(w, http.StatusBadRequest, "empty query")
		return
	}

	tenant := tenantOf(r)
	t, err := s.tenants.admit(tenant)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		obs.WriteJSONError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	defer s.tenants.release(t)

	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	s.queriesStarted.Add(1)

	ctx := proteus.WithQueryTag(r.Context(), reqID)
	start := time.Now()
	res, err := s.db.QueryContext(ctx, query)
	if err != nil {
		t.errors.Add(1)
		if errors.Is(err, context.Canceled) {
			t.cancelled.Add(1)
		}
		obs.WriteJSONError(w, statusOf(err), err.Error())
		return
	}
	t.queries.Add(1)

	s.streamsActive.Add(1)
	defer s.streamsActive.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	bw := bufio.NewWriterSize(w, 32<<10)

	// Column names: record-shaped rows carry their own field names (the
	// engine's Cols is the single label "result" for bare projections);
	// scalar rows stream under that label as one-key objects.
	cols := res.Cols
	scalarCol := "result"
	if len(cols) == 1 {
		scalarCol = cols[0]
	}
	if len(res.Rows) > 0 && res.Rows[0].Kind == types.KindRecord && res.Rows[0].Rec != nil {
		cols = res.Rows[0].Rec.Names
	}
	head, _ := json.Marshal(struct {
		Cols      []string `json:"cols"`
		RequestID string   `json:"request_id"`
	}{cols, reqID})
	bw.Write(append(head, '\n'))
	bw.Flush()
	rc.Flush()

	chunk := req.ChunkRows
	if chunk <= 0 {
		chunk = s.chunkRows
	}
	var streamed int64
	var rowBuf []byte
	streamErr := res.StreamChunks(ctx, chunk, func(rows []types.Value) error {
		for _, row := range rows {
			rowBuf = rowBuf[:0]
			if row.Kind == types.KindRecord {
				rowBuf = appendValueJSON(rowBuf, row)
			} else {
				// Scalar row: wrap so every row line is a JSON object.
				rowBuf = append(rowBuf, '{')
				rowBuf = appendJSONString(rowBuf, scalarCol)
				rowBuf = append(rowBuf, ':')
				rowBuf = appendValueJSON(rowBuf, row)
				rowBuf = append(rowBuf, '}')
			}
			rowBuf = append(rowBuf, '\n')
			if _, err := bw.Write(rowBuf); err != nil {
				return err
			}
		}
		streamed += int64(len(rows))
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	})
	t.rows.Add(streamed)
	if streamErr != nil {
		if errors.Is(streamErr, context.Canceled) {
			t.cancelled.Add(1)
		}
		// The 200 status is already on the wire; signal truncation in-band.
		line, _ := json.Marshal(struct {
			Error string `json:"error"`
		}{streamErr.Error()})
		bw.Write(append(line, '\n'))
		bw.Flush()
		return
	}
	trailer, _ := json.Marshal(struct {
		Rows      int64   `json:"rows"`
		ElapsedMS float64 `json:"elapsed_ms"`
		RequestID string  `json:"request_id"`
		// Fragments is the per-worker attribution of a distributed query:
		// how many remote fragment partials were merged into this result
		// (absent for local execution).
		Fragments int `json:"fragments,omitempty"`
	}{streamed, float64(time.Since(start).Microseconds()) / 1e3, reqID, res.Fragments})
	bw.Write(append(trailer, '\n'))
	bw.Flush()
}

// handlePrepare validates and compiles a query, registers a handle, and
// returns it. Compilation errors surface here, synchronously, instead of on
// first execution; the compiled program itself is owned by the engine's
// plan cache (see the package comment in prepared.go).
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obs.WriteJSONError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := s.decodeRequest(w, r)
	if err != nil {
		obs.WriteJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		obs.WriteJSONError(w, http.StatusBadRequest, "empty query")
		return
	}
	if _, err := s.db.Explain(req.Query); err != nil {
		obs.WriteJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	lang := "sql"
	if proteus.IsComprehension(req.Query) {
		lang = "comp"
	}
	st := s.prepared.put(req.Query, lang, time.Now())
	writeJSON(w, http.StatusCreated, st)
}

// handleListPrepared lists registered handles, most-recently-used first.
func (s *Server) handleListPrepared(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.prepared.list())
}

// handleDropPrepared removes a handle (?handle=p-N).
func (s *Server) handleDropPrepared(w http.ResponseWriter, r *http.Request) {
	handle := r.URL.Query().Get("handle")
	if handle == "" {
		obs.WriteJSONError(w, http.StatusBadRequest, "missing handle parameter")
		return
	}
	if !s.prepared.drop(handle) {
		obs.WriteJSONError(w, http.StatusNotFound, "unknown prepared-statement handle "+handle)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status   string  `json:"status"`
		UptimeS  float64 `json:"uptime_s"`
		Tenants  int     `json:"tenants"`
		Prepared int     `json:"prepared"`
	}{state, time.Since(s.started).Seconds(), len(s.tenants.snapshot()), s.prepared.len()})
}

// handleMetrics serves the engine's Prometheus exposition followed by the
// per-tenant and service-level families, one scrape for the whole process.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.db.Metrics().Prometheus())
	io.WriteString(w, s.tenants.prometheus())
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP proteus_server_queries_started_total Queries admitted by the service.\n# TYPE proteus_server_queries_started_total counter\nproteus_server_queries_started_total %d\n",
		s.queriesStarted.Load())
	fmt.Fprintf(&b, "# HELP proteus_server_streams_active Result streams currently being written.\n# TYPE proteus_server_streams_active gauge\nproteus_server_streams_active %d\n",
		s.streamsActive.Load())
	fmt.Fprintf(&b, "# HELP proteus_server_fragments_started_total Cluster fragment requests admitted by the service.\n# TYPE proteus_server_fragments_started_total counter\nproteus_server_fragments_started_total %d\n",
		s.fragmentsStarted.Load())
	fmt.Fprintf(&b, "# HELP proteus_server_prepared_statements Registered prepared-statement handles.\n# TYPE proteus_server_prepared_statements gauge\nproteus_server_prepared_statements %d\n",
		s.prepared.len())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(&b, "# HELP proteus_server_draining Whether the service is draining.\n# TYPE proteus_server_draining gauge\nproteus_server_draining %d\n", draining)
	io.WriteString(w, b.String())
}

// writeJSON writes v as one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		obs.WriteJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
