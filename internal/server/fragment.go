// Cluster endpoints of the query service: the worker side executes
// fragment plans for a remote coordinator (POST /v1/fragment), and the
// coordinator side exposes its topology for discovery and late joins
// (GET /v1/cluster, POST /v1/cluster/join). See internal/cluster for the
// scatter/gather protocol and DESIGN.md §15 for failure semantics.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"proteus/internal/engine"
	"proteus/internal/obs"
)

// fragmentRequest is the POST /v1/fragment body (mirrors the coordinator's
// scatter client in internal/cluster).
type fragmentRequest struct {
	Lang        string `json:"lang"`
	Query       string `json:"query"`
	Start       int64  `json:"start"`
	End         int64  `json:"end"`
	Fingerprint string `json:"fingerprint"`
}

// handleFragment executes one fragment plan as a cluster worker and streams
// the serialized partial state back as NDJSON (head, unit lines, verified
// trailer — see exec.Partial.EncodeStream). A plan-fingerprint divergence
// returns 409 Conflict, which tells the coordinator to fall back to local
// execution; every other failure maps through the same statusOf the query
// endpoint uses.
func (s *Server) handleFragment(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obs.WriteJSONError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req fragmentRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		obs.WriteJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		obs.WriteJSONError(w, http.StatusBadRequest, "empty query")
		return
	}
	lang := engine.LangSQL
	if req.Lang == engine.LangComp {
		lang = engine.LangComp
	}

	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	s.fragmentsStarted.Add(1)

	ctx := engine.WithQueryTag(r.Context(), reqID)
	p, err := s.db.Engine().ExecuteFragment(ctx, lang, req.Query, req.Start, req.End, req.Fingerprint)
	if err != nil {
		if errors.Is(err, engine.ErrFragmentMismatch) {
			obs.WriteJSONError(w, http.StatusConflict, err.Error())
			return
		}
		obs.WriteJSONError(w, statusOf(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// EncodeStream's trailer is the integrity signal: if the connection
	// drops mid-write, the coordinator sees a truncated frame and treats
	// the attempt as failed — never as data.
	p.EncodeStream(w)
}

// clusterJoinRequest is the POST /v1/cluster/join body: the advertised base
// URL of the worker joining the topology.
type clusterJoinRequest struct {
	URL string `json:"url"`
}

// handleClusterJoin admits a worker into the coordinator's topology
// (idempotent). 409 when this node is not a coordinator.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		obs.WriteJSONError(w, http.StatusConflict, "this node is not a cluster coordinator")
		return
	}
	var req clusterJoinRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		obs.WriteJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		obs.WriteJSONError(w, http.StatusBadRequest, "missing worker url")
		return
	}
	added := s.cluster.AddWorker(req.URL)
	if !added && !contains(s.cluster.Workers(), strings.TrimRight(strings.TrimSpace(req.URL), "/")) {
		obs.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("invalid worker url %q", req.URL))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Added   bool     `json:"added"`
		Workers []string `json:"workers"`
	}{added, s.cluster.Workers()})
}

// handleClusterInfo reports the node's cluster role and, for coordinators,
// the current topology.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	role := "worker"
	var workers []string
	if s.cluster != nil {
		role = "coordinator"
		workers = s.cluster.Workers()
	}
	writeJSON(w, http.StatusOK, struct {
		Role    string   `json:"role"`
		Workers []string `json:"workers,omitempty"`
	}{role, workers})
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
