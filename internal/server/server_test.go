// Service integration tests (run under -race in CI): NDJSON streaming,
// prepared statements, client-disconnect cancellation, per-tenant quotas,
// graceful drain, and request-ID correlation into the observability layer.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus"
	"proteus/internal/plugin"
	"proteus/internal/types"
	"proteus/internal/vbuf"
)

// slowInput is a service-test plug-in: a single int column "id", an
// optional per-row sleep to keep queries in flight, and a cancellation
// check on every record so client disconnects land quickly.
type slowInput struct {
	rows   int64
	perRow time.Duration
}

func (s *slowInput) Format() string { return "slow" }

func (s *slowInput) Open(env *plugin.Env, ds *plugin.Dataset) error {
	ds.Schema = &types.RecordType{Fields: []types.Field{{Name: "id", Type: types.Int}}}
	return nil
}

func (s *slowInput) Schema(ds *plugin.Dataset) *types.RecordType { return ds.Schema }
func (s *slowInput) Cardinality(ds *plugin.Dataset) int64        { return s.rows }
func (s *slowInput) FieldCost() float64                          { return 1 }

func (s *slowInput) CompileScan(ds *plugin.Dataset, spec plugin.ScanSpec) (plugin.RunFunc, error) {
	lo, hi := int64(0), s.rows
	if spec.Morsel != nil {
		lo, hi = spec.Morsel.Start, spec.Morsel.End
	}
	var sets []func(regs *vbuf.Regs, row int64)
	for _, req := range spec.Fields {
		slot := req.Slot
		switch {
		case len(req.Path) == 0:
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.V[slot.Idx] = types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)})
				regs.Null[slot.Null] = false
			})
		case len(req.Path) == 1 && req.Path[0] == "id":
			sets = append(sets, func(regs *vbuf.Regs, row int64) {
				regs.I[slot.Idx] = row
				regs.Null[slot.Null] = false
			})
		default:
			return nil, fmt.Errorf("slowInput: unknown field %v", req.Path)
		}
	}
	oid := spec.OIDSlot
	cc := spec.Cancel
	perRow := s.perRow
	return func(regs *vbuf.Regs, consume func() error) error {
		for row := lo; row < hi; row++ {
			if cc.Cancelled() {
				return cc.Err()
			}
			if perRow > 0 {
				time.Sleep(perRow)
			}
			if oid != nil {
				regs.I[oid.Idx] = row
				regs.Null[oid.Null] = false
			}
			for _, set := range sets {
				set(regs, row)
			}
			if err := consume(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (s *slowInput) CompileUnnest(ds *plugin.Dataset, spec plugin.UnnestSpec) (plugin.UnnestFunc, error) {
	return nil, plugin.ErrUnsupported
}

func (s *slowInput) ReadRows(ds *plugin.Dataset) ([]types.Value, error) {
	out := make([]types.Value, 0, s.rows)
	for row := int64(0); row < s.rows; row++ {
		out = append(out, types.RecordValue([]string{"id"}, []types.Value{types.IntValue(row)}))
	}
	return out, nil
}

// testService builds a DB with a fast CSV dataset ("t") and a slow plug-in
// dataset ("slow"), wraps it in a Server, and serves it over httptest.
func testService(t *testing.T, cfg Config, slowRows int64, perRow time.Duration) (*Server, *httptest.Server, *proteus.DB) {
	t.Helper()
	db := proteus.Open(proteus.Config{Observability: true, Parallelism: 1})
	eng := db.Engine()
	eng.Mem().PutFile("mem://t.csv", []byte("a,b\n1,x\n2,y\n3,z\n"))
	if err := eng.Register("t", "mem://t.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}
	eng.RegisterPlugin(&slowInput{rows: slowRows, perRow: perRow})
	if err := eng.Register("slow", "slow://t", "slow", nil, plugin.Options{}); err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, db
}

// postQuery issues a /v1/query request and returns the response.
func postQuery(t *testing.T, ts *httptest.Server, body string, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// ndjson parses an NDJSON response body into its lines.
func ndjson(t *testing.T, r io.Reader) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, doc)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestServerStreamsNDJSON pins the wire protocol: header line with cols and
// request id, one document per row, and a trailer with the row count.
func TestServerStreamsNDJSON(t *testing.T) {
	_, ts, _ := testService(t, Config{}, 10, 0)

	resp := postQuery(t, ts, `{"query":"SELECT a, b FROM t ORDER BY a"}`, map[string]string{"X-Request-Id": "req-1"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-1" {
		t.Fatalf("X-Request-Id echo = %q", got)
	}
	lines := ndjson(t, resp.Body)
	if len(lines) != 5 { // head + 3 rows + trailer
		t.Fatalf("got %d NDJSON lines, want 5: %v", len(lines), lines)
	}
	head, trailer := lines[0], lines[len(lines)-1]
	if cols, _ := head["cols"].([]any); len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("head = %v", head)
	}
	if rows, _ := trailer["rows"].(float64); rows != 3 {
		t.Fatalf("trailer = %v, want rows 3", trailer)
	}
	if lines[1]["a"] != float64(1) || lines[1]["b"] != "x" {
		t.Fatalf("first row = %v", lines[1])
	}
}

// TestServerQueryErrors: bad body, bad query, both-query-and-handle, and
// unknown handle all return JSON error bodies with the right statuses.
func TestServerQueryErrors(t *testing.T) {
	_, ts, _ := testService(t, Config{}, 1, 0)

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"query":`, http.StatusBadRequest},
		{`{"query":"SELECT a FROM nosuch"}`, http.StatusBadRequest},
		{`{"query":"SELECT 1","handle":"p-1"}`, http.StatusBadRequest},
		{`{"handle":"p-404"}`, http.StatusNotFound},
		{`{}`, http.StatusBadRequest},
	} {
		resp := postQuery(t, ts, tc.body, nil)
		var e struct {
			Error string `json:"error"`
		}
		err := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.want || err != nil || e.Error == "" {
			t.Errorf("body %q: status %d (want %d), decode err %v, error %q",
				tc.body, resp.StatusCode, tc.want, err, e.Error)
		}
	}
}

// TestServerPreparedLifecycle: prepare → execute by handle → list → drop →
// execute again is 404. Also: preparing an invalid query fails up front.
func TestServerPreparedLifecycle(t *testing.T) {
	_, ts, _ := testService(t, Config{}, 1, 0)

	resp, err := ts.Client().Post(ts.URL+"/v1/prepare", "application/json",
		strings.NewReader(`{"query":"SELECT COUNT(*) FROM t"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st preparedStmt
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("prepare: status %d err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if st.Handle == "" || st.Lang != "sql" {
		t.Fatalf("prepared = %+v", st)
	}

	// Execute by handle.
	qr := postQuery(t, ts, fmt.Sprintf(`{"handle":%q}`, st.Handle), nil)
	lines := ndjson(t, qr.Body)
	qr.Body.Close()
	if qr.StatusCode != http.StatusOK || len(lines) != 3 {
		t.Fatalf("execute by handle: status %d lines %v", qr.StatusCode, lines)
	}

	// List shows it with a use count.
	resp, err = ts.Client().Get(ts.URL + "/v1/prepare")
	if err != nil {
		t.Fatal(err)
	}
	var list []preparedStmt
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Uses != 1 {
		t.Fatalf("list = %+v, want one statement with Uses 1", list)
	}

	// Drop, then the handle is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/prepare?handle="+st.Handle, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop: status %d", resp.StatusCode)
	}
	qr = postQuery(t, ts, fmt.Sprintf(`{"handle":%q}`, st.Handle), nil)
	qr.Body.Close()
	if qr.StatusCode != http.StatusNotFound {
		t.Fatalf("execute dropped handle: status %d", qr.StatusCode)
	}

	// Invalid queries fail at prepare time, not first execution.
	resp, err = ts.Client().Post(ts.URL+"/v1/prepare", "application/json",
		strings.NewReader(`{"query":"SELECT nope FROM nosuch"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prepare invalid: status %d", resp.StatusCode)
	}
}

// TestServerClientDisconnectCancelsQuery is the headline robustness test:
// several clients stream concurrently, one disconnects mid-query, the
// engine cancels that query (queries_cancelled increments), the other
// streams complete, and the engine keeps serving afterwards.
func TestServerClientDisconnectCancelsQuery(t *testing.T) {
	_, ts, db := testService(t, Config{}, 400, time.Millisecond)

	var wg sync.WaitGroup
	okRows := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postQuery(t, ts, `{"query":"SELECT id FROM slow","chunk_rows":16}`,
				map[string]string{"X-Proteus-Tenant": "steady"})
			defer resp.Body.Close()
			lines := ndjson(t, resp.Body)
			if n, ok := lines[len(lines)-1]["rows"].(float64); ok {
				okRows[i] = int(n)
			}
		}(i)
	}

	// The disconnecting client: cancel its request context mid-execution.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
			strings.NewReader(`{"query":"SELECT id FROM slow"}`))
		req.Header.Set("X-Proteus-Tenant", "flaky")
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("disconnecting client: err = %v, want context.Canceled", err)
		}
	}()
	wg.Wait()

	for i, n := range okRows {
		if n != 400 {
			t.Errorf("steady client %d streamed %d rows, want 400", i, n)
		}
	}
	if got := db.Metrics().QueriesCancelled; got < 1 {
		t.Errorf("QueriesCancelled = %d, want >= 1", got)
	}

	// The engine is still fully usable.
	resp := postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`, nil)
	lines := ndjson(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(lines) != 3 {
		t.Fatalf("follow-up query: status %d lines %v", resp.StatusCode, lines)
	}

	// The flaky tenant's cancellation shows up in /metrics.
	mr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metrics), `proteus_tenant_cancelled_total{tenant="flaky"} 1`) {
		t.Errorf("/metrics missing flaky tenant cancellation:\n%s", grepLines(string(metrics), "tenant"))
	}
	if !strings.Contains(string(metrics), `proteus_tenant_rows_total{tenant="steady"} 1200`) {
		t.Errorf("/metrics missing steady tenant rows:\n%s", grepLines(string(metrics), "tenant"))
	}
}

// TestServerTenantQuotas: one tenant at its concurrency cap is rejected
// with 429 while another tenant's queries proceed, and the rejection is
// counted per tenant.
func TestServerTenantQuotas(t *testing.T) {
	_, ts, _ := testService(t, Config{TenantMaxConcurrent: 1}, 400, time.Millisecond)

	hold := make(chan struct{})
	go func() {
		defer close(hold)
		resp := postQuery(t, ts, `{"query":"SELECT id FROM slow"}`,
			map[string]string{"X-Proteus-Tenant": "acme"})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	time.Sleep(50 * time.Millisecond) // let acme's query occupy its slot

	// acme is at cap: immediate 429 with Retry-After and a JSON error.
	resp := postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`,
		map[string]string{"X-Proteus-Tenant": "acme"})
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" ||
		!strings.Contains(e.Error, "concurrent-query") {
		t.Fatalf("over-cap: status %d retry-after %q error %q",
			resp.StatusCode, resp.Header.Get("Retry-After"), e.Error)
	}

	// Another tenant is unaffected.
	resp = postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`,
		map[string]string{"X-Proteus-Tenant": "globex"})
	lines := ndjson(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(lines) != 3 {
		t.Fatalf("other tenant: status %d lines %v", resp.StatusCode, lines)
	}
	<-hold

	// After its query finishes, acme is admitted again.
	resp = postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`,
		map[string]string{"X-Proteus-Tenant": "acme"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme after release: status %d", resp.StatusCode)
	}

	mr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metrics), `proteus_tenant_rejected_total{tenant="acme"} 1`) {
		t.Errorf("/metrics missing acme rejection:\n%s", grepLines(string(metrics), "tenant"))
	}
}

// TestServerMemQuota: with a memory quota of exactly one per-query budget,
// a tenant's second concurrent query is refused for memory, not concurrency.
func TestServerMemQuota(t *testing.T) {
	_, ts, _ := testService(t, Config{
		TenantMemQuota: 1 << 20,
		QueryMemBudget: 1 << 20,
	}, 400, time.Millisecond)

	hold := make(chan struct{})
	go func() {
		defer close(hold)
		resp := postQuery(t, ts, `{"query":"SELECT id FROM slow"}`, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	time.Sleep(50 * time.Millisecond)

	resp := postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`, nil)
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(e.Error, "memory") {
		t.Fatalf("over mem quota: status %d error %q", resp.StatusCode, e.Error)
	}
	<-hold
}

// TestServerDrain: Drain flips /healthz to 503 and refuses new queries
// while Close drains the engine; afterwards everything is refused.
func TestServerDrain(t *testing.T) {
	svc, ts, _ := testService(t, Config{}, 1, 0)

	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", hr.StatusCode)
	}

	svc.Drain()
	hr, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz during drain: %d %+v", hr.StatusCode, h)
	}
	resp := postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestServerRequestIDCorrelation: the X-Request-Id a client sends shows up
// as the tag on the query's profile in /debug/queries.
func TestServerRequestIDCorrelation(t *testing.T) {
	_, ts, _ := testService(t, Config{}, 1, 0)

	resp := postQuery(t, ts, `{"query":"SELECT COUNT(*) FROM t"}`,
		map[string]string{"X-Request-Id": "trace-me-7"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dr, err := ts.Client().Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var profiles []struct {
		Tag   string `json:"tag"`
		Query string `json:"query"`
	}
	if err := json.NewDecoder(dr.Body).Decode(&profiles); err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if len(profiles) == 0 || profiles[0].Tag != "trace-me-7" {
		t.Fatalf("profiles = %+v, want newest tagged trace-me-7", profiles)
	}
}

// grepLines returns the lines of s containing substr, for error messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
