// Cluster surface tests: the fragment endpoint's role in a distributed
// query, the fragments count in the streaming trailer and /debug/queries,
// and the topology endpoints (/v1/cluster, /v1/cluster/join).
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus"
	"proteus/internal/plugin"
)

const clusterCSV = "a,b\n1,x\n2,y\n3,z\n"

// newClusterNode builds one query service over a fresh DB with the shared
// test table; workers pass no ClusterWorkers, the coordinator passes the
// worker URLs.
func newClusterNode(t *testing.T, workers ...string) (*httptest.Server, *proteus.DB) {
	t.Helper()
	db := proteus.Open(proteus.Config{
		Observability:  true,
		Parallelism:    1,
		ClusterWorkers: workers,
	})
	eng := db.Engine()
	eng.Mem().PutFile("mem://t.csv", []byte(clusterCSV))
	if err := eng.Register("t", "mem://t.csv", "csv", nil, plugin.Options{Header: true}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{DB: db}).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerClusterQuery runs a distributed query end to end through the
// service: two worker services execute fragments, and the streaming trailer
// and /debug/queries report how many were merged.
func TestServerClusterQuery(t *testing.T) {
	w1, _ := newClusterNode(t)
	w2, _ := newClusterNode(t)
	coord, _ := newClusterNode(t, w1.URL, w2.URL)

	resp := postQuery(t, coord, `{"query":"SELECT a, b FROM t ORDER BY a"}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := ndjson(t, resp.Body)
	if len(lines) != 5 { // head + 3 rows + trailer
		t.Fatalf("got %d NDJSON lines, want 5: %v", len(lines), lines)
	}
	trailer := lines[len(lines)-1]
	if rows, _ := trailer["rows"].(float64); rows != 3 {
		t.Fatalf("trailer = %v, want rows 3", trailer)
	}
	if frags, _ := trailer["fragments"].(float64); frags != 2 {
		t.Fatalf("trailer = %v, want fragments 2", trailer)
	}
	if lines[1]["a"] != float64(1) || lines[1]["b"] != "x" {
		t.Fatalf("first row = %v", lines[1])
	}

	// The fragment count also lands in the retained profile.
	var profiles []map[string]any
	if code := getJSON(t, coord.URL+"/debug/queries", &profiles); code != http.StatusOK {
		t.Fatalf("/debug/queries status = %d", code)
	}
	found := false
	for _, p := range profiles {
		if f, _ := p["fragments"].(float64); f == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/queries has no profile with fragments=2: %v", profiles)
	}

	// Each worker served at least one fragment (visible on its /metrics).
	for _, w := range []*httptest.Server{w1, w2} {
		resp, err := http.Get(w.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "proteus_server_fragments_started_total 1") {
			t.Errorf("worker %s /metrics missing fragment counter", w.URL)
		}
	}
}

// TestServerClusterTopology pins the discovery endpoints: role reporting on
// both node kinds, idempotent join, and rejection of bad join requests.
func TestServerClusterTopology(t *testing.T) {
	w1, _ := newClusterNode(t)
	coord, _ := newClusterNode(t, w1.URL)

	var info struct {
		Role    string   `json:"role"`
		Workers []string `json:"workers"`
	}
	if code := getJSON(t, coord.URL+"/v1/cluster", &info); code != http.StatusOK {
		t.Fatalf("coordinator /v1/cluster status = %d", code)
	}
	if info.Role != "coordinator" || len(info.Workers) != 1 {
		t.Fatalf("coordinator info = %+v", info)
	}
	if code := getJSON(t, w1.URL+"/v1/cluster", &info); code != http.StatusOK || info.Role != "worker" {
		t.Fatalf("worker info = %+v (status %d)", info, code)
	}

	w2, _ := newClusterNode(t)
	join := func(url string) (int, map[string]any) {
		resp, err := http.Post(coord.URL+"/v1/cluster/join", "application/json",
			strings.NewReader(`{"url":"`+url+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	code, out := join(w2.URL)
	if code != http.StatusOK || out["added"] != true {
		t.Fatalf("join = %d %v", code, out)
	}
	code, out = join(w2.URL) // idempotent: already present, still 200
	if code != http.StatusOK || out["added"] != false {
		t.Fatalf("re-join = %d %v", code, out)
	}
	if ws, _ := out["workers"].([]any); len(ws) != 2 {
		t.Fatalf("topology after join = %v", out)
	}
	if code, _ := join("not a url"); code != http.StatusBadRequest {
		t.Fatalf("bad join url status = %d", code)
	}
	// A worker node is not a coordinator: joining it is a 409.
	resp, err := http.Post(w1.URL+"/v1/cluster/join", "application/json",
		strings.NewReader(`{"url":"`+w2.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("join on worker status = %d, want 409", resp.StatusCode)
	}
}
