package bench

import (
	"testing"

	"proteus/internal/exec"
)

// BenchmarkVectorizedVsTuple times identical prepared programs compiled in
// tuple-at-a-time and vectorized mode over cache-resident data. Compare the
// <query>/tuple and <query>/vectorized lines; benchrunner's `vec`
// experiment records the same comparison in BENCH_PR4.json.
func BenchmarkVectorizedVsTuple(b *testing.B) {
	modes := []struct {
		name string
		mode exec.VecMode
	}{
		{"tuple", exec.VecOff},
		{"vectorized", exec.VecOn},
	}
	for _, m := range modes {
		e, err := NewVecEngine(m.mode)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range VecQueries {
			prep, err := e.PrepareSQL(q.SQL)
			if err != nil {
				b.Fatalf("prepare %q: %v", q.SQL, err)
			}
			b.Run(q.Name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := prep.Program.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestVectorizedBenchQueriesAgree pins the benchmark's correctness: both
// modes must produce identical results on the bench fixture, otherwise the
// timing comparison is meaningless.
func TestVectorizedBenchQueriesAgree(t *testing.T) {
	on, err := NewVecEngine(exec.VecOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewVecEngine(exec.VecOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range VecQueries {
		rOn, err := on.QuerySQL(q.SQL)
		if err != nil {
			t.Fatalf("%s vectorized: %v", q.Name, err)
		}
		rOff, err := off.QuerySQL(q.SQL)
		if err != nil {
			t.Fatalf("%s tuple: %v", q.Name, err)
		}
		if len(rOn.Rows) != len(rOff.Rows) {
			t.Fatalf("%s: %d vs %d rows", q.Name, len(rOn.Rows), len(rOff.Rows))
		}
		for i := range rOn.Rows {
			if rOn.Rows[i].String() != rOff.Rows[i].String() {
				t.Errorf("%s row %d: vectorized %s, tuple %s", q.Name, i, rOn.Rows[i], rOff.Rows[i])
				break
			}
		}
	}
}
