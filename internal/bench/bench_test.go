package bench

import (
	"fmt"
	"testing"

	"proteus/internal/engine"
	"proteus/internal/types"
)

const testSF = 0.002 // ~12k lineitems, 3k orders

func testFixture(t *testing.T) *TPCHFixture {
	t.Helper()
	f, err := NewTPCHFixture(testSF)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return f
}

// scalarOn runs a prepared plan on one system and returns the 1×1 result.
func scalarOn(f *TPCHFixture, system string, prep *engine.Prepared) (types.Value, error) {
	switch system {
	case SysProteus:
		res, err := prep.Program.Run()
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	case SysVolcano:
		res, err := f.Volcano.RunPlan(prep.Plan)
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	case SysVolcanoChar:
		res, err := f.VolcanoChar.RunPlan(prep.Plan)
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	case SysColumnar:
		res, err := f.Columnar.RunPlan(prep.Plan)
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	case SysColumnarSorted:
		res, err := f.ColumnarSorted.RunPlan(prep.Plan)
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	case SysDocstore:
		res, err := f.Docstore.RunPlan(prep.Plan)
		if err != nil {
			return types.Value{}, err
		}
		return res.Scalar(), nil
	}
	return types.Value{}, fmt.Errorf("unknown system %s", system)
}

// approxEqual compares scalars, tolerating float rounding differences from
// summation order (engines fold in different row orders).
func approxEqual(a, b types.Value) bool {
	if a.Kind == types.KindFloat || b.Kind == types.KindFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		diff := af - bf
		if diff < 0 {
			diff = -diff
		}
		scale := af
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-9*scale
	}
	return a.Equal(b)
}

// TestEnginesAgree is the cross-engine oracle: every system must produce
// the same answer for the same plan — they differ only in *how* they
// execute. This pins the compiled engine's correctness against three
// independent implementations.
func TestEnginesAgree(t *testing.T) {
	f := testFixture(t)
	cut := f.cut(20)
	queries := []struct {
		name    string
		sql     string
		comp    bool
		systems []string
	}{
		{"count-json", fmt.Sprintf("SELECT COUNT(*) FROM lineitem_json WHERE l_orderkey < %d", cut), false, jsonSystems},
		{"count-bin", fmt.Sprintf("SELECT COUNT(*) FROM lineitem_bin WHERE l_orderkey < %d", cut), false, binSystems},
		{"max-json", fmt.Sprintf("SELECT MAX(l_quantity) FROM lineitem_json WHERE l_orderkey < %d", cut), false, jsonSystems},
		{"sum-bin", "SELECT SUM(l_extendedprice) FROM lineitem_bin WHERE l_quantity < 25", false, binSystems},
		{"join-bin", fmt.Sprintf("SELECT COUNT(*) FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d", cut), false, binSystems},
		{"join-json", fmt.Sprintf("SELECT COUNT(*) FROM orders_json o JOIN lineitem_json l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d", cut), false, jsonSystems},
		{"unnest", fmt.Sprintf("for { o <- orders_denorm, l <- o.lineitems, l.l_orderkey < %d } yield count", cut), true, []string{SysVolcano, SysDocstore, SysProteus}},
		{"avg-3pred-bin", fmt.Sprintf("SELECT AVG(l_extendedprice) FROM lineitem_bin WHERE l_orderkey < %d AND l_quantity < 30 AND l_tax < 0.05", cut), false, binSystems},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			var prep *engine.Prepared
			var err error
			if q.comp {
				prep, err = f.PlanForComp(q.sql)
			} else {
				prep, err = f.PlanFor(q.sql)
			}
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			want, err := scalarOn(f, SysProteus, prep)
			if err != nil {
				t.Fatalf("proteus: %v", err)
			}
			if want.IsNull() || want.Kind == types.KindNull {
				t.Fatalf("proteus returned null scalar")
			}
			for _, sys := range q.systems {
				if sys == SysProteus {
					continue
				}
				got, err := scalarOn(f, sys, prep)
				if err != nil {
					t.Fatalf("%s: %v", sys, err)
				}
				if !approxEqual(got, want) {
					t.Errorf("%s = %s, proteus = %s", sys, got, want)
				}
			}
		})
	}
}

// TestEnginesAgreeOnGroupBy compares full grouped results across engines.
func TestEnginesAgreeOnGroupBy(t *testing.T) {
	f := testFixture(t)
	sqlText := fmt.Sprintf(
		"SELECT l_linenumber, COUNT(*), MAX(l_quantity) FROM lineitem_bin WHERE l_orderkey < %d GROUP BY l_linenumber",
		f.cut(50))
	prep, err := f.PlanFor(sqlText)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	want, err := prep.Program.Run()
	if err != nil {
		t.Fatalf("proteus: %v", err)
	}
	wantRows := append([]types.Value(nil), want.Rows...)
	types.SortValues(wantRows)

	for _, check := range []struct {
		name string
		run  func() ([]types.Value, error)
	}{
		{SysVolcano, func() ([]types.Value, error) {
			r, err := f.Volcano.RunPlan(prep.Plan)
			if err != nil {
				return nil, err
			}
			return r.Rows, nil
		}},
		{SysColumnar, func() ([]types.Value, error) {
			r, err := f.Columnar.RunPlan(prep.Plan)
			if err != nil {
				return nil, err
			}
			return r.Rows, nil
		}},
	} {
		rows, err := check.run()
		if err != nil {
			t.Fatalf("%s: %v", check.name, err)
		}
		types.SortValues(rows)
		if len(rows) != len(wantRows) {
			t.Fatalf("%s: %d groups, proteus %d", check.name, len(rows), len(wantRows))
		}
		for i := range rows {
			if !rows[i].Equal(wantRows[i]) {
				t.Errorf("%s group %d = %s, proteus %s", check.name, i, rows[i], wantRows[i])
			}
		}
	}
}

// TestFigures runs every synthetic experiment end to end at tiny scale and
// checks each produced a full grid of measurements.
func TestFigures(t *testing.T) {
	f := testFixture(t)
	for _, exp := range []struct {
		name string
		run  func(*TPCHFixture) ([]Row, error)
		want int
	}{
		{"fig5", Fig5, 3 * len(Sels) * len(jsonSystems)},
		{"fig6", Fig6, 3 * len(Sels) * len(binSystems)},
		{"fig7", Fig7, 3 * len(Sels) * len(jsonSystems)},
		{"fig8", Fig8, 3 * len(Sels) * len(binSystems)},
		{"fig9", Fig9, 4 * len(Sels) * len(jsonSystems)},
		{"fig10", Fig10, 3 * len(Sels) * len(binSystems)},
		{"fig11", Fig11, 3 * len(Sels) * len(jsonSystems)},
		{"fig12", Fig12, 3 * len(Sels) * len(binSystems)},
	} {
		t.Run(exp.name, func(t *testing.T) {
			rows, err := exp.run(f)
			if err != nil {
				t.Fatalf("%s: %v", exp.name, err)
			}
			if len(rows) != exp.want {
				t.Fatalf("%s: %d rows, want %d", exp.name, len(rows), exp.want)
			}
			for _, r := range rows {
				if r.Seconds < 0 {
					t.Errorf("%s: negative time %+v", exp.name, r)
				}
			}
		})
	}
}

// TestFig13CacheSpeedup checks the caching study runs and that cached
// predicate runs are not slower than baseline at low selectivity.
func TestFig13CacheSpeedup(t *testing.T) {
	rows, err := Fig13(testSF)
	if err != nil {
		t.Fatalf("fig13: %v", err)
	}
	if len(rows) != 2*2*len(Sels) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*2*len(Sels))
	}
}

// TestSpamWorkload runs the 50-query workload at a tiny scale on all three
// stacks and validates the Table 3 accounting.
func TestSpamWorkload(t *testing.T) {
	rep, err := RunSpam(400)
	if err != nil {
		t.Fatalf("spam: %v", err)
	}
	if got := len(rep.Rows); got != 50*3 {
		t.Fatalf("rows = %d, want 150", got)
	}
	for _, stack := range []string{StackPG, StackPolyglot, StackProteus} {
		if rep.Total[stack] <= 0 {
			t.Errorf("stack %s: zero total", stack)
		}
	}
	// Proteus pays no explicit load; the generic stack pays both loads.
	if rep.LoadCSV[StackProteus] != 0 || rep.LoadJSON[StackProteus] != 0 {
		t.Errorf("proteus should have no load phase: %+v", rep.LoadCSV)
	}
	if rep.LoadCSV[StackPG] <= 0 || rep.LoadJSON[StackPG] <= 0 {
		t.Errorf("generic stack should pay load: csv=%v json=%v",
			rep.LoadCSV[StackPG], rep.LoadJSON[StackPG])
	}
	if rep.Middleware[StackPolyglot] <= 0 {
		t.Errorf("polystore should pay middleware")
	}
	if rep.CacheJSONBytes == 0 {
		t.Errorf("proteus should have cached JSON values")
	}
}
