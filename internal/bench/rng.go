// Package bench contains the workload generators and the experiment
// harness that regenerates every table and figure of the paper's
// evaluation (§7). Data generation is fully deterministic (seeded
// splitmix64) so experiments are reproducible run-to-run.
package bench

// rng is a splitmix64 PRNG: tiny, fast, deterministic.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// pick returns a random element of choices.
func pick[T any](r *rng, choices []T) T {
	return choices[r.intn(int64(len(choices)))]
}

// shuffle permutes s in place (Fisher–Yates), mirroring the paper's
// shuffling of file contents to defeat interesting-order optimizations.
func shuffle[T any](r *rng, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.intn(int64(i + 1))
		s[i], s[j] = s[j], s[i]
	}
}
