package bench

import (
	"fmt"
	"time"

	"proteus/internal/baseline/columnar"
	"proteus/internal/baseline/docstore"
	"proteus/internal/baseline/volcano"
	"proteus/internal/engine"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Row is one measurement: an experiment id, a query label, the system that
// ran it, the selectivity point, and the wall-clock seconds.
type Row struct {
	Exp     string
	Query   string
	System  string
	Sel     int // selectivity in percent (0 when not applicable)
	Seconds float64
}

// timeIt measures one run.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}

// System name constants used across experiments. The mapping to the
// paper's systems: Volcano ≈ PostgreSQL/DBMS-X (generic row store),
// Columnar ≈ MonetDB, ColumnarSorted ≈ DBMS-C (sorts on load, skips),
// Docstore ≈ MongoDB, Proteus = the paper's system.
const (
	SysVolcano        = "volcano(PG-like)"
	SysVolcanoChar    = "volcano-charjson(DBMS-X-like)"
	SysColumnar       = "columnar(MonetDB-like)"
	SysColumnarSorted = "columnar-sorted(DBMS-C-like)"
	SysDocstore       = "docstore(Mongo-like)"
	SysProteus        = "proteus"
)

// TPCHFixture holds one generated TPC-H instance loaded into every engine.
type TPCHFixture struct {
	Data *TPCH

	// Proteus has every representation registered natively; per §7.1 its
	// adaptive caching is off for the synthetic experiments.
	Proteus *engine.Engine

	Volcano        *volcano.Engine
	VolcanoChar    *volcano.Engine
	Columnar       *columnar.Engine
	ColumnarSorted *columnar.Engine
	Docstore       *docstore.Engine

	// Load times of the baselines (Proteus pays none: it queries in situ).
	LoadSeconds map[string]float64
}

// NewTPCHFixture generates the data and loads every engine.
func NewTPCHFixture(sf float64) (*TPCHFixture, error) {
	return newTPCHFixture(sf, engine.Config{CacheEnabled: false})
}

// NewTPCHFixtureCached is the caching-study variant (fig13): Proteus runs
// with adaptive caching on.
func NewTPCHFixtureCached(sf float64) (*TPCHFixture, error) {
	return newTPCHFixture(sf, engine.Config{CacheEnabled: true})
}

func newTPCHFixture(sf float64, cfg engine.Config) (*TPCHFixture, error) {
	f := &TPCHFixture{Data: GenTPCH(sf), LoadSeconds: map[string]float64{}}
	t := f.Data

	// Proteus: register raw files; no load step.
	f.Proteus = engine.New(cfg)
	mem := f.Proteus.Mem()
	mem.PutFile("mem://lineitem.json", t.LineitemJSON)
	mem.PutFile("mem://orders.json", t.OrdersJSON)
	mem.PutFile("mem://orders_denorm.json", t.DenormJSON)
	mem.PutFile("mem://lineitem.csv", t.LineitemCSV)
	mem.PutFile("mem://orders.csv", t.OrdersCSV)
	mem.PutFile("mem://lineitem.bin", t.LineitemBin)
	mem.PutFile("mem://orders.bin", t.OrdersBin)
	regs := []struct {
		name, path, format string
		schema             *types.RecordType
	}{
		{"lineitem_json", "mem://lineitem.json", "json", nil},
		{"orders_json", "mem://orders.json", "json", nil},
		{"orders_denorm", "mem://orders_denorm.json", "json", nil},
		{"lineitem_csv", "mem://lineitem.csv", "csv", t.LineitemSchema},
		{"orders_csv", "mem://orders.csv", "csv", t.OrdersSchema},
		{"lineitem_bin", "mem://lineitem.bin", "bin", nil},
		{"orders_bin", "mem://orders.bin", "bin", nil},
	}
	for _, rg := range regs {
		if err := f.Proteus.Register(rg.name, rg.path, rg.format, rg.schema, plugin.Options{}); err != nil {
			return nil, fmt.Errorf("bench: registering %s: %w", rg.name, err)
		}
	}

	// Boxed rows shared by the baseline loads.
	liRows := ColumnsToValues(t.Lineitem, t.LineitemRows)
	ordRows := ColumnsToValues(t.Orders, t.OrdersRows)

	// Volcano (generic row store) loads everything, under every alias a
	// plan might reference.
	f.Volcano = volcano.New()
	sec, _ := timeIt(func() error {
		for _, alias := range []string{"lineitem_json", "lineitem_csv", "lineitem_bin"} {
			f.Volcano.Load(alias, liRows)
		}
		for _, alias := range []string{"orders_json", "orders_csv", "orders_bin"} {
			f.Volcano.Load(alias, ordRows)
		}
		return nil
	})
	f.LoadSeconds[SysVolcano] = sec

	// DBMS-X model: JSON kept as character data, re-parsed per query.
	f.VolcanoChar = volcano.New()
	sec, _ = timeIt(func() error {
		f.VolcanoChar.LoadRawJSON("lineitem_json", t.LineitemJSON)
		f.VolcanoChar.LoadRawJSON("orders_json", t.OrdersJSON)
		f.VolcanoChar.LoadRawJSON("orders_denorm", t.DenormJSON)
		return nil
	})
	f.LoadSeconds[SysVolcanoChar] = sec

	// Denormalized orders for the unnest experiment (volcano + docstore).
	denormEng := engine.New(engine.Config{})
	denormEng.Mem().PutFile("mem://orders_denorm.json", t.DenormJSON)
	if err := denormEng.Register("orders_denorm", "mem://orders_denorm.json", "json", nil, plugin.Options{}); err != nil {
		return nil, err
	}
	ds, in, _ := denormEng.Dataset("orders_denorm")
	denormRows, err := in.ReadRows(ds)
	if err != nil {
		return nil, err
	}
	f.Volcano.Load("orders_denorm", denormRows)

	// Columnar engines (flat binary data only, as in the paper).
	f.Columnar = columnar.New()
	f.ColumnarSorted = columnar.New()
	sec, err = timeIt(func() error {
		if err := f.Columnar.Load("lineitem_bin", t.LineitemSchema, liRows, ""); err != nil {
			return err
		}
		return f.Columnar.Load("orders_bin", t.OrdersSchema, ordRows, "")
	})
	if err != nil {
		return nil, err
	}
	f.LoadSeconds[SysColumnar] = sec
	sec, err = timeIt(func() error {
		if err := f.ColumnarSorted.Load("lineitem_bin", t.LineitemSchema, liRows, "l_orderkey"); err != nil {
			return err
		}
		return f.ColumnarSorted.Load("orders_bin", t.OrdersSchema, ordRows, "o_orderkey")
	})
	if err != nil {
		return nil, err
	}
	f.LoadSeconds[SysColumnarSorted] = sec

	// Document store loads the JSON representations (BSON conversion).
	f.Docstore = docstore.New()
	sec, err = timeIt(func() error {
		if err := f.Docstore.Load("lineitem_json", liRows); err != nil {
			return err
		}
		if err := f.Docstore.Load("orders_json", ordRows); err != nil {
			return err
		}
		return f.Docstore.Load("orders_denorm", denormRows)
	})
	if err != nil {
		return nil, err
	}
	f.LoadSeconds[SysDocstore] = sec
	return f, nil
}

// PlanFor parses and optimizes a SQL query against the Proteus catalog; all
// engines then execute the same physical plan, each in its own style.
func (f *TPCHFixture) PlanFor(sqlText string) (*engine.Prepared, error) {
	return f.Proteus.PrepareSQL(sqlText)
}

// PlanForComp does the same for a comprehension query.
func (f *TPCHFixture) PlanForComp(compText string) (*engine.Prepared, error) {
	return f.Proteus.PrepareComp(compText)
}
