package bench

import (
	"strconv"

	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

// Spam models the Symantec spam-telemetry workload of §7.2 with a synthetic
// stand-in for the proprietary dataset, preserving its structure:
//
//   - a JSON feed of spam e-mail observations (mail language, origin IP and
//     country, responsible bot, body metadata, and a nested array of
//     classifier assignments) with arbitrary field order across objects,
//   - a CSV output of the classification workflow (mail id, classes,
//     scores),
//   - a binary history table (the pre-existing RDBMS data).
//
// Full scale in the paper: 28M JSON objects (20 GB), 400M CSV records
// (22 GB), 500M binary records (95 GB). The generator keeps the relative
// proportions (1 : ~14 : ~18) at any configured scale.
type Spam struct {
	JSONObjs, CSVRows, BinRows int

	JSON []byte
	CSV  []byte
	Bin  []byte

	CSVSchema *types.RecordType
	BinCols   []binpg.Column

	MaxMailID int64
}

var (
	spamLangs     = []string{"en", "ru", "zh", "es", "de", "fr", "pt", "ja"}
	spamCountries = []string{"US", "RU", "CN", "BR", "IN", "DE", "GB", "NL", "VN", "UA"}
	spamBots      = []string{"rustock", "cutwail", "grum", "kelihos", "lethic", "mazben", "none"}
	spamClasses   = []string{"phish", "pharma", "casino", "malware", "dating", "seo"}
)

// GenSpam deterministically generates the three datasets at a scale where
// the JSON feed holds n objects.
func GenSpam(n int) *Spam {
	r := newRng(7)
	s := &Spam{JSONObjs: n, CSVRows: n * 14, BinRows: n * 18, MaxMailID: int64(n)}

	// JSON feed: field order varies across objects (the paper's JSON has
	// arbitrary field order, which keeps Level 0 of the structural index
	// necessary).
	var j []byte
	for i := 0; i < n; i++ {
		mid := int64(i + 1)
		lang := pick(r, spamLangs)
		country := pick(r, spamCountries)
		bot := pick(r, spamBots)
		bodyLen := r.intn(4000) + 50
		score := r.float()
		day := r.intn(365)
		// Two field layouts, alternating pseudo-randomly.
		nClasses := int(r.intn(3)) + 1
		classes := func() []byte {
			var cb []byte
			cb = append(cb, '[')
			for k := 0; k < nClasses; k++ {
				if k > 0 {
					cb = append(cb, ", "...)
				}
				cb = append(cb, `{"c": "`...)
				cb = append(cb, pick(r, spamClasses)...)
				cb = append(cb, `", "w": `...)
				cb = strconv.AppendInt(cb, r.intn(100), 10)
				cb = append(cb, '}')
			}
			return append(cb, ']')
		}()
		if r.next()%2 == 0 {
			j = append(j, `{"mid": `...)
			j = strconv.AppendInt(j, mid, 10)
			j = append(j, `, "lang": "`...)
			j = append(j, lang...)
			j = append(j, `", "country": "`...)
			j = append(j, country...)
			j = append(j, `", "bot": "`...)
			j = append(j, bot...)
			j = append(j, `", "body_len": `...)
			j = strconv.AppendInt(j, bodyLen, 10)
			j = append(j, `, "score": `...)
			j = strconv.AppendFloat(j, score, 'f', 4, 64)
			j = append(j, `, "day": `...)
			j = strconv.AppendInt(j, day, 10)
			j = append(j, `, "classes": `...)
			j = append(j, classes...)
			j = append(j, "}\n"...)
		} else {
			j = append(j, `{"bot": "`...)
			j = append(j, bot...)
			j = append(j, `", "mid": `...)
			j = strconv.AppendInt(j, mid, 10)
			j = append(j, `, "day": `...)
			j = strconv.AppendInt(j, day, 10)
			j = append(j, `, "score": `...)
			j = strconv.AppendFloat(j, score, 'f', 4, 64)
			j = append(j, `, "country": "`...)
			j = append(j, country...)
			j = append(j, `", "lang": "`...)
			j = append(j, lang...)
			j = append(j, `", "body_len": `...)
			j = strconv.AppendInt(j, bodyLen, 10)
			j = append(j, `, "classes": `...)
			j = append(j, classes...)
			j = append(j, "}\n"...)
		}
	}
	s.JSON = j

	// CSV classification output: mid references the JSON feed.
	s.CSVSchema = types.NewRecordType(
		types.Field{Name: "mid", Type: types.Int},
		types.Field{Name: "class_id", Type: types.Int},
		types.Field{Name: "cluster", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "confidence", Type: types.Float},
		types.Field{Name: "label", Type: types.String},
	)
	var c []byte
	for i := 0; i < s.CSVRows; i++ {
		mid := r.intn(int64(n)) + 1
		c = strconv.AppendInt(c, mid, 10)
		c = append(c, ',')
		c = strconv.AppendInt(c, r.intn(int64(len(spamClasses))), 10)
		c = append(c, ',')
		c = strconv.AppendInt(c, r.intn(5000), 10)
		c = append(c, ',')
		c = strconv.AppendFloat(c, r.float(), 'f', 4, 64)
		c = append(c, ',')
		c = strconv.AppendFloat(c, r.float(), 'f', 4, 64)
		c = append(c, ',')
		c = append(c, pick(r, spamClasses)...)
		c = append(c, '\n')
	}
	s.CSV = c

	// Binary history table.
	bc := []binpg.Column{
		{Name: "mid", Type: types.Int},
		{Name: "day", Type: types.Int},
		{Name: "hits", Type: types.Int},
		{Name: "volume", Type: types.Float},
		{Name: "feature", Type: types.Float},
	}
	for i := 0; i < s.BinRows; i++ {
		bc[0].Ints = append(bc[0].Ints, r.intn(int64(n))+1)
		bc[1].Ints = append(bc[1].Ints, r.intn(365))
		bc[2].Ints = append(bc[2].Ints, r.intn(1000))
		bc[3].Floats = append(bc[3].Floats, r.float()*1e6)
		bc[4].Floats = append(bc[4].Floats, r.float())
	}
	s.BinCols = bc
	s.Bin, _ = binpg.EncodeColumnar(bc)
	return s
}
