package bench

import (
	"fmt"

	"proteus/internal/algebra"
	"proteus/internal/baseline/columnar"
	"proteus/internal/baseline/docstore"
	"proteus/internal/baseline/volcano"
	"proteus/internal/engine"
	"proteus/internal/expr"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// SpamQuery is one of the fifty workload queries (§7.2): selections, 2- and
// 3-way joins, unnests of JSON fields, groupings, and aggregates, with
// projectivity 1–9 fields and selectivity ~1–25%.
type SpamQuery struct {
	ID      int
	Text    string
	IsComp  bool
	Touches []string // dataset names: spam_bin, spam_csv, spam_json
}

func touchesJSON(q SpamQuery) bool {
	for _, t := range q.Touches {
		if t == "spam_json" {
			return true
		}
	}
	return false
}

func touchesOnlyJSON(q SpamQuery) bool {
	return len(q.Touches) == 1 && q.Touches[0] == "spam_json"
}

// SpamQueries builds the 50-query workload for a dataset with maxMid mail
// ids. The phase structure mirrors Figure 14: Q1–Q8 binary, Q9–Q15 CSV,
// Q16–Q25 JSON, Q26–Q30 BIN⋈CSV, Q31–Q35 BIN⋈JSON, Q36–Q40 CSV⋈JSON,
// Q41–Q50 all three.
func SpamQueries(maxMid int64) []SpamQuery {
	pct := func(p int64) int64 { return maxMid * p / 100 }
	var qs []SpamQuery
	add := func(text string, isComp bool, touches ...string) {
		qs = append(qs, SpamQuery{ID: len(qs) + 1, Text: text, IsComp: isComp, Touches: touches})
	}
	bin, csv, json := "spam_bin", "spam_csv", "spam_json"

	// Q1–Q8: binary table.
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_bin WHERE mid < %d", pct(5)), false, bin)
	add("SELECT MAX(volume), AVG(hits) FROM spam_bin WHERE day < 90", false, bin)
	add(fmt.Sprintf("SELECT day, COUNT(*) FROM spam_bin WHERE mid < %d GROUP BY day", pct(25)), false, bin)
	add("SELECT SUM(hits) FROM spam_bin WHERE volume < 250000.0", false, bin)
	add(fmt.Sprintf("SELECT MAX(feature), MIN(feature) FROM spam_bin WHERE mid < %d AND day < 180", pct(20)), false, bin)
	add("SELECT day, SUM(volume), COUNT(*) FROM spam_bin WHERE hits < 100 GROUP BY day", false, bin)
	add(fmt.Sprintf("SELECT AVG(volume) FROM spam_bin WHERE mid < %d AND hits < 500", pct(10)), false, bin)
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_bin WHERE mid < %d", pct(1)), false, bin) // sorted-key skip favors DBMS-C

	// Q9–Q15: CSV classification output (Q9 is the cold first touch).
	add("SELECT COUNT(*) FROM spam_csv WHERE score < 0.2", false, csv)
	add("SELECT class_id, COUNT(*) FROM spam_csv WHERE confidence < 0.25 GROUP BY class_id", false, csv)
	add(fmt.Sprintf("SELECT MAX(score) FROM spam_csv WHERE mid < %d", pct(10)), false, csv)
	add("SELECT COUNT(*) FROM spam_csv WHERE label LIKE '%phish%' AND score < 0.5", false, csv)
	add("SELECT label, COUNT(*), AVG(confidence) FROM spam_csv WHERE cluster < 1250 GROUP BY label", false, csv)
	add("SELECT SUM(score), MAX(confidence) FROM spam_csv WHERE class_id < 2", false, csv)
	add(fmt.Sprintf("SELECT cluster, COUNT(*) FROM spam_csv WHERE mid < %d GROUP BY cluster", pct(2)), false, csv)

	// Q16–Q25: JSON feed (Q16 is the cold first touch).
	add("SELECT COUNT(*) FROM spam_json WHERE score < 0.2", false, json)
	add(fmt.Sprintf("SELECT MAX(body_len) FROM spam_json WHERE mid < %d", pct(25)), false, json)
	add("SELECT COUNT(*) FROM spam_json WHERE lang = 'en' AND score < 0.5", false, json)
	add("SELECT day, COUNT(*) FROM spam_json WHERE body_len < 1000 GROUP BY day", false, json)
	add("for { m <- spam_json, c <- m.classes, c.w > 50 } yield count", true, json)
	add("SELECT COUNT(*) FROM spam_json WHERE country = 'US' AND body_len < 2000", false, json)
	add(fmt.Sprintf("SELECT AVG(score) FROM spam_json WHERE mid < %d AND day < 180", pct(20)), false, json)
	add("for { m <- spam_json, c <- m.classes, m.score < 0.1 } yield count", true, json)
	add("SELECT day, MAX(score), COUNT(*) FROM spam_json WHERE body_len < 500 GROUP BY day", false, json)
	add(fmt.Sprintf("SELECT SUM(body_len) FROM spam_json WHERE mid < %d", pct(5)), false, json)

	// Q26–Q30: BIN ⋈ CSV.
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid WHERE b.mid < %d", pct(2)), false, bin, csv)
	add(fmt.Sprintf("SELECT MAX(c.score) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid WHERE b.day < 30 AND b.mid < %d", pct(10)), false, bin, csv)
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid WHERE c.label LIKE '%%pharma%%' AND b.mid < %d", pct(5)), false, bin, csv)
	add(fmt.Sprintf("SELECT AVG(b.volume) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid WHERE b.mid < %d AND c.label LIKE '%%casino%%'", pct(1)), false, bin, csv)
	add(fmt.Sprintf("SELECT COUNT(*), MAX(b.hits) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid WHERE b.mid < %d AND c.score < 0.3", pct(5)), false, bin, csv)

	// Q31–Q35: BIN ⋈ JSON (first mixed-JSON query triggers the polystore
	// middleware exchange).
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_bin b JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d", pct(5)), false, bin, json)
	add(fmt.Sprintf("SELECT MAX(m.score) FROM spam_bin b JOIN spam_json m ON b.mid = m.mid WHERE b.day < 90 AND b.mid < %d", pct(10)), false, bin, json)
	add(fmt.Sprintf("SELECT AVG(m.body_len) FROM spam_bin b JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d", pct(2)), false, bin, json)
	add(fmt.Sprintf("SELECT COUNT(*), MAX(b.volume) FROM spam_bin b JOIN spam_json m ON b.mid = m.mid WHERE m.score < 0.25 AND b.mid < %d", pct(10)), false, bin, json)
	add(fmt.Sprintf("SELECT m.day, COUNT(*) FROM spam_bin b JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d GROUP BY m.day", pct(5)), false, bin, json)

	// Q36–Q40: CSV ⋈ JSON (Q39 is the PostgreSQL nested-loop outlier).
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_csv c JOIN spam_json m ON c.mid = m.mid WHERE c.mid < %d", pct(2)), false, csv, json)
	add(fmt.Sprintf("SELECT MAX(c.score) FROM spam_csv c JOIN spam_json m ON c.mid = m.mid WHERE m.body_len < 800 AND c.mid < %d", pct(5)), false, csv, json)
	add(fmt.Sprintf("SELECT AVG(m.score) FROM spam_csv c JOIN spam_json m ON c.mid = m.mid WHERE c.confidence < 0.2 AND c.mid < %d", pct(5)), false, csv, json)
	add(fmt.Sprintf("SELECT COUNT(*) FROM spam_csv c JOIN spam_json m ON c.mid = m.mid WHERE c.mid < %d AND m.day < 180", pct(3)), false, csv, json)
	add(fmt.Sprintf("SELECT m.day, COUNT(*), MAX(c.score) FROM spam_csv c JOIN spam_json m ON c.mid = m.mid WHERE c.mid < %d GROUP BY m.day", pct(2)), false, csv, json)

	// Q41–Q50: three-way joins.
	for i := 0; i < 10; i++ {
		sel := []int64{1, 2, 3, 5, 2, 1, 3, 2, 5, 1}[i]
		switch i % 3 {
		case 0:
			add(fmt.Sprintf(
				"SELECT COUNT(*) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d",
				pct(sel)), false, bin, csv, json)
		case 1:
			add(fmt.Sprintf(
				"SELECT MAX(m.score), COUNT(*) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d AND c.score < 0.5",
				pct(sel)), false, bin, csv, json)
		default:
			add(fmt.Sprintf(
				"SELECT m.day, COUNT(*) FROM spam_bin b JOIN spam_csv c ON b.mid = c.mid JOIN spam_json m ON b.mid = m.mid WHERE b.mid < %d GROUP BY m.day",
				pct(sel)), false, bin, csv, json)
		}
	}
	return qs
}

// SpamReport is the outcome of the workload on all three stacks: per-query
// rows (Figure 14) plus the phase totals (Table 3).
type SpamReport struct {
	Rows []Row
	// Phase totals per stack, in seconds (Table 3).
	LoadCSV, LoadJSON, Middleware, Q39, Rest, Total map[string]float64
	// Cache footprints at the end of the workload (§7.2 narrative).
	CacheCSVBytes, CacheJSONBytes int64
	CSVBytes, JSONBytes           int64
}

// Stack names for the spam workload (Table 3's three approaches).
const (
	StackPG       = "PostgreSQL-like (one generic engine)"
	StackPolyglot = "DBMS-C & Mongo-like (polystore + middleware)"
	StackProteus  = "Proteus"
)

// RunSpam executes the whole workload on the three stacks.
func RunSpam(nJSON int) (*SpamReport, error) {
	data := GenSpam(nJSON)
	queries := SpamQueries(data.MaxMailID)
	rep := &SpamReport{
		LoadCSV: map[string]float64{}, LoadJSON: map[string]float64{},
		Middleware: map[string]float64{}, Q39: map[string]float64{},
		Rest: map[string]float64{}, Total: map[string]float64{},
		CSVBytes: int64(len(data.CSV)), JSONBytes: int64(len(data.JSON)),
	}

	// Proteus: caching enabled (§7.2); datasets registered in situ. The
	// structural-index build happens on Register; its cost is charged to
	// the first query touching each raw dataset, as in the paper.
	prot := engine.New(engine.Config{CacheEnabled: true})
	prot.Mem().PutFile("mem://spam.bin", data.Bin)
	prot.Mem().PutFile("mem://spam.csv", data.CSV)
	prot.Mem().PutFile("mem://spam.json", data.JSON)
	if err := prot.Register("spam_bin", "mem://spam.bin", "bin", nil, plugin.Options{}); err != nil {
		return nil, err
	}
	csvOpenSecs, err := timeIt(func() error {
		return prot.Register("spam_csv", "mem://spam.csv", "csv", data.CSVSchema, plugin.Options{IndexStride: 5})
	})
	if err != nil {
		return nil, err
	}
	jsonOpenSecs, err := timeIt(func() error {
		return prot.Register("spam_json", "mem://spam.json", "json", nil, plugin.Options{})
	})
	if err != nil {
		return nil, err
	}

	// Boxed rows for the baseline loads.
	binRows := ColumnsToValues(data.BinCols, data.BinRows)
	jsonRows, err := readRowsVia(prot, "spam_json")
	if err != nil {
		return nil, err
	}

	// PostgreSQL-like stack: one volcano engine holding everything; CSV and
	// JSON pay an explicit load (parse + box ≈ COPY + jsonb ingest).
	vol := volcano.New()
	vol.Load("spam_bin", binRows)
	sec, _ := timeIt(func() error { vol.Load("spam_csv", reparseCSV(data)); return nil })
	rep.LoadCSV[StackPG] = sec
	sec, _ = timeIt(func() error { vol.Load("spam_json", reparseJSON(data)); return nil })
	rep.LoadJSON[StackPG] = sec

	// Polystore stack: columnar (sorted on mid, DBMS-C-like) for BIN+CSV,
	// docstore for JSON, middleware for mixed queries.
	col := columnar.New()
	if err := col.Load("spam_bin", binSchema(), binRows, "mid"); err != nil {
		return nil, err
	}
	sec, err = timeIt(func() error {
		return col.Load("spam_csv", data.CSVSchema, reparseCSV(data), "mid")
	})
	if err != nil {
		return nil, err
	}
	rep.LoadCSV[StackPolyglot] = sec
	doc := docstore.New()
	sec, err = timeIt(func() error { return doc.Load("spam_json", reparseJSON(data)) })
	if err != nil {
		return nil, err
	}
	rep.LoadJSON[StackPolyglot] = sec

	// Middleware: exported flat projection of the JSON collection, loaded
	// into the columnar engine on the first mixed query.
	middlewareDone := false
	middleware := func() error {
		if middlewareDone {
			return nil
		}
		secs, err := timeIt(func() error {
			flat := flattenJSONRows(jsonRows)
			return col.Load("spam_json", flatJSONSchema(), flat, "")
		})
		if err != nil {
			return err
		}
		rep.Middleware[StackPolyglot] += secs
		middlewareDone = true
		return nil
	}

	// Run the fifty queries.
	for _, q := range queries {
		prep, err := prepare(prot, q)
		if err != nil {
			return nil, fmt.Errorf("spam Q%d: %w", q.ID, err)
		}

		// Proteus (compile included, as everywhere).
		secs, err := timeIt(func() error {
			p2, err := prepare(prot, q)
			if err != nil {
				return err
			}
			_, err = p2.Program.Run()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("spam Q%d proteus: %w", q.ID, err)
		}
		// Charge the cold structural-index build to the first touch.
		if q.ID == 9 {
			secs += csvOpenSecs
		}
		if q.ID == 16 {
			secs += jsonOpenSecs
		}
		rep.add(q, StackProteus, secs)

		// PostgreSQL-like: Q39 models the blind optimizer's nested-loop plan.
		plan := prep.Plan
		if q.ID == 39 {
			plan = defeatEquiJoin(plan)
		}
		secs, err = timeIt(func() error {
			_, err := vol.RunPlan(plan)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("spam Q%d volcano: %w", q.ID, err)
		}
		rep.add(q, StackPG, secs)

		// Polystore: JSON-only queries go to the document store; anything
		// touching JSON together with flat data goes through the middleware
		// exchange and then runs on the columnar engine.
		var polyErr error
		secs, err = timeIt(func() error {
			switch {
			case touchesOnlyJSON(q):
				_, polyErr = doc.RunPlan(prep.Plan)
			case touchesJSON(q):
				if polyErr = middleware(); polyErr == nil {
					_, polyErr = col.RunPlan(prep.Plan)
				}
			default:
				_, polyErr = col.RunPlan(prep.Plan)
			}
			return polyErr
		})
		if err != nil {
			return nil, fmt.Errorf("spam Q%d polystore: %w", q.ID, err)
		}
		rep.add(q, StackPolyglot, secs)
	}

	for _, stack := range []string{StackPG, StackPolyglot, StackProteus} {
		rep.Total[stack] = rep.LoadCSV[stack] + rep.LoadJSON[stack] +
			rep.Middleware[stack] + rep.Q39[stack] + rep.Rest[stack]
	}
	rep.CacheCSVBytes = prot.Caches().BytesForDataset("spam_csv")
	rep.CacheJSONBytes = prot.Caches().BytesForDataset("spam_json")
	return rep, nil
}

func (rep *SpamReport) add(q SpamQuery, stack string, secs float64) {
	rep.Rows = append(rep.Rows, Row{Exp: "fig14", Query: fmt.Sprintf("Q%d", q.ID), System: stack, Seconds: secs})
	if q.ID == 39 {
		rep.Q39[stack] += secs
	} else {
		rep.Rest[stack] += secs
	}
}

func prepare(prot *engine.Engine, q SpamQuery) (*engine.Prepared, error) {
	if q.IsComp {
		return prot.PrepareComp(q.Text)
	}
	return prot.PrepareSQL(q.Text)
}

// readRowsVia decodes a registered dataset through its plug-in.
func readRowsVia(e *engine.Engine, name string) ([]types.Value, error) {
	ds, in, err := e.Dataset(name)
	if err != nil {
		return nil, err
	}
	return in.ReadRows(ds)
}

// reparseCSV re-parses the CSV text per load so each stack pays its own
// ingest cost (sharing one boxed slice would hide it).
func reparseCSV(data *Spam) []types.Value {
	e := engine.New(engine.Config{})
	e.Mem().PutFile("mem://x.csv", data.CSV)
	if err := e.Register("x", "mem://x.csv", "csv", data.CSVSchema, plugin.Options{}); err != nil {
		return nil
	}
	rows, _ := readRowsVia(e, "x")
	return rows
}

func reparseJSON(data *Spam) []types.Value {
	e := engine.New(engine.Config{})
	e.Mem().PutFile("mem://x.json", data.JSON)
	if err := e.Register("x", "mem://x.json", "json", nil, plugin.Options{}); err != nil {
		return nil
	}
	rows, _ := readRowsVia(e, "x")
	return rows
}

func binSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "mid", Type: types.Int},
		types.Field{Name: "day", Type: types.Int},
		types.Field{Name: "hits", Type: types.Int},
		types.Field{Name: "volume", Type: types.Float},
		types.Field{Name: "feature", Type: types.Float},
	)
}

// flatJSONSchema is the middleware export schema: the JSON feed's flat
// fields (nested class arrays stay behind in the document store).
func flatJSONSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "mid", Type: types.Int},
		types.Field{Name: "day", Type: types.Int},
		types.Field{Name: "body_len", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "lang", Type: types.String},
		types.Field{Name: "country", Type: types.String},
		types.Field{Name: "bot", Type: types.String},
	)
}

func flattenJSONRows(rows []types.Value) []types.Value {
	schema := flatJSONSchema()
	names := schema.Names()
	out := make([]types.Value, len(rows))
	for i, r := range rows {
		vals := make([]types.Value, len(names))
		for j, n := range names {
			v, ok := r.Field(n)
			if !ok {
				v = types.NullValue()
			}
			vals[j] = v
		}
		out[i] = types.RecordValue(names, vals)
	}
	return out
}

// defeatEquiJoin rewrites the top join predicate into a logically identical
// but non-hashable form (a = b ⇒ NOT(a <> b)), reproducing the paper's Q39
// pathology: PostgreSQL's optimizer cannot see through the opaque JSON
// datatype and falls back to a nested-loop join.
func defeatEquiJoin(n algebra.Node) algebra.Node {
	switch x := n.(type) {
	case *algebra.Join:
		pred := x.Pred
		var conjs []expr.Expr
		for _, c := range expr.SplitConjuncts(pred) {
			if b, ok := c.(*expr.BinOp); ok && b.Op == expr.OpEq {
				conjs = append(conjs, &expr.Not{E: &expr.BinOp{Op: expr.OpNe, L: b.L, R: b.R}})
			} else {
				conjs = append(conjs, c)
			}
		}
		return &algebra.Join{
			Pred:  expr.Conjoin(conjs),
			Left:  defeatEquiJoin(x.Left),
			Right: defeatEquiJoin(x.Right),
			Outer: x.Outer,
		}
	case *algebra.Select:
		return &algebra.Select{Pred: x.Pred, Child: defeatEquiJoin(x.Child)}
	case *algebra.Reduce:
		return &algebra.Reduce{Aggs: x.Aggs, Names: x.Names, Pred: x.Pred, Child: defeatEquiJoin(x.Child)}
	case *algebra.Nest:
		return &algebra.Nest{GroupBy: x.GroupBy, GroupNames: x.GroupNames, Aggs: x.Aggs,
			AggNames: x.AggNames, Pred: x.Pred, Child: defeatEquiJoin(x.Child)}
	case *algebra.Unnest:
		return &algebra.Unnest{Path: x.Path, Binding: x.Binding, Pred: x.Pred, Outer: x.Outer,
			Child: defeatEquiJoin(x.Child)}
	}
	return n
}
