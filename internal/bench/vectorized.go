package bench

import (
	"fmt"
	"sort"
	"strings"

	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Vectorized-vs-tuple microbenchmark (the PR's tentpole figure): identical
// prepared programs compiled in both execution modes over cache-resident
// data, so the comparison isolates kernel dispatch — per-tuple closure
// chains against block-at-a-time loops — from I/O and parsing.

// VecBenchRows is sized so the working set is cache-block resident but the
// scan spans a few hundred batches.
const VecBenchRows = 200_000

// VecSysTuple and VecSysVectorized name the two modes in reports.
const (
	VecSysTuple      = "tuple(VecOff)"
	VecSysVectorized = "vectorized(VecOn)"
)

// VecQueries are the cache-resident scan→filter→aggregate shapes the
// vectorized path targets.
var VecQueries = []struct {
	Name string
	SQL  string
}{
	{"filter_sum_int", "SELECT SUM(val) FROM t WHERE val < 500"},
	{"filter_agg_mix", "SELECT COUNT(*), SUM(val), MAX(score) FROM t WHERE id >= 10000 AND val < 900"},
	{"group_by_int", "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp"},
	{"select_project", "SELECT id, score FROM t WHERE val = 3"},
}

// NewVecEngine builds an engine over a synthetic CSV table and warms the
// adaptive cache on every benchmark query (two runs each: the first
// materializes blocks, the second recompiles cache-aware), returning it
// ready for steady-state timing.
func NewVecEngine(mode exec.VecMode) (*engine.Engine, error) {
	e := engine.New(engine.Config{
		CacheEnabled: true,
		Parallelism:  1,
		Vectorized:   mode,
		// Plan caching off: each warm-up run must recompile against the
		// current cache contents, and timing uses prepared programs.
		PlanCacheSize: -1,
	})
	var sb strings.Builder
	for i := 0; i < VecBenchRows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d,%g\n", i, (i*2654435761)%1000, i%97, float64(i%1024)*0.5)
	}
	e.Mem().PutFile("mem://vbench.csv", []byte(sb.String()))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "grp", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
	)
	if err := e.Register("t", "mem://vbench.csv", "csv", schema, plugin.Options{}); err != nil {
		return nil, fmt.Errorf("bench: registering vbench: %w", err)
	}
	for _, q := range VecQueries {
		for i := 0; i < 2; i++ {
			if _, err := e.QuerySQL(q.SQL); err != nil {
				return nil, fmt.Errorf("bench: warming %q: %w", q.SQL, err)
			}
		}
	}
	return e, nil
}

// FigVec measures every query in both modes (median of iters steady-state
// runs each) and reports one Row per (query, mode).
func FigVec(iters int) ([]Row, error) {
	if iters < 1 {
		iters = 1
	}
	var rows []Row
	for _, m := range []struct {
		system string
		mode   exec.VecMode
	}{
		{VecSysTuple, exec.VecOff},
		{VecSysVectorized, exec.VecOn},
	} {
		e, err := NewVecEngine(m.mode)
		if err != nil {
			return nil, err
		}
		for _, q := range VecQueries {
			prep, err := e.PrepareSQL(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: preparing %q: %w", q.SQL, err)
			}
			times := make([]float64, 0, iters)
			for i := 0; i < iters; i++ {
				sec, err := timeIt(func() error {
					_, err := prep.Program.Run()
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench: running %q: %w", q.SQL, err)
				}
				times = append(times, sec)
			}
			sort.Float64s(times)
			rows = append(rows, Row{
				Exp: "vec", Query: q.Name, System: m.system,
				Seconds: times[(len(times)-1)/2],
			})
		}
	}
	return rows, nil
}

// PrintVec renders the vectorized figure as a per-query speedup table.
func PrintVec(w interface{ Write([]byte) (int, error) }, rows []Row) {
	fmt.Fprintln(w, "== vec: vectorized vs tuple execution, cache-resident (seconds) ==")
	fmt.Fprintf(w, "%-18s%14s%14s%10s\n", "query", "tuple", "vectorized", "speedup")
	for _, q := range VecQueries {
		var tup, vec float64
		for _, r := range rows {
			if r.Query != q.Name {
				continue
			}
			switch r.System {
			case VecSysTuple:
				tup = r.Seconds
			case VecSysVectorized:
				vec = r.Seconds
			}
		}
		if vec > 0 {
			fmt.Fprintf(w, "%-18s%14.6f%14.6f%9.2fx\n", q.Name, tup, vec, tup/vec)
		}
	}
	fmt.Fprintln(w)
}
