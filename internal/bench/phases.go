package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"proteus/internal/engine"
	"proteus/internal/obs"
	"proteus/internal/plugin"
)

// PhaseRow is the life-cycle phase split of one representative query:
// the median, over several runs, of each phase's wall time in seconds.
// Parse/calculus/optimize/compile repeat per run because Proteus compiles
// a fresh specialized program per query, exactly as the paper's engine
// regenerates LLVM code per query.
type PhaseRow struct {
	Query    string  `json:"query"`
	Parse    float64 `json:"parse_seconds"`
	Calculus float64 `json:"calculus_seconds"`
	Optimize float64 `json:"optimize_seconds"`
	Compile  float64 `json:"compile_seconds"`
	Execute  float64 `json:"execute_seconds"`
	Total    float64 `json:"total_seconds"`
}

// phaseQueries are one representative query per experiment family
// (projection, selection, join, group-by) across the heterogeneous formats.
var phaseQueries = []string{
	"SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice) FROM lineitem_json WHERE l_orderkey < 1000000000",
	"SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice) FROM lineitem_bin WHERE l_orderkey < 1000000000",
	"SELECT COUNT(*) FROM lineitem_csv WHERE l_quantity < 30",
	"SELECT COUNT(*) FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = l.l_orderkey",
	"SELECT l_linenumber, COUNT(*), SUM(l_extendedprice) FROM lineitem_json GROUP BY l_linenumber",
}

// PhaseSplit measures the compile/execute split of the representative
// queries against the fixture's Proteus instance, taking the median of
// iters traced runs per query (row counters only — no per-tuple timing).
func PhaseSplit(f *TPCHFixture, iters int) ([]PhaseRow, error) {
	if iters < 1 {
		iters = 1
	}
	out := make([]PhaseRow, 0, len(phaseQueries))
	for _, q := range phaseQueries {
		samples := make(map[string][]float64, len(obs.Phases))
		totals := make([]float64, 0, iters)
		for i := 0; i < iters; i++ {
			_, qp, err := f.Proteus.ObservedQuerySQL(q)
			if err != nil {
				return nil, fmt.Errorf("bench: phase split %q: %w", q, err)
			}
			for _, name := range obs.Phases {
				samples[name] = append(samples[name], qp.Phase(name).Seconds())
			}
			totals = append(totals, qp.Total.Seconds())
		}
		out = append(out, PhaseRow{
			Query:    q,
			Parse:    median(samples[obs.PhaseParse]),
			Calculus: median(samples[obs.PhaseCalculus]),
			Optimize: median(samples[obs.PhaseOptimize]),
			Compile:  median(samples[obs.PhaseCompile]),
			Execute:  median(samples[obs.PhaseExecute]),
			Total:    median(totals),
		})
	}
	return out, nil
}

// ObsOverhead measures the runtime cost of always-on observability: the
// ratio of median query time with Config.Observability on vs. off over the
// same generated dataset (1.0 = free; the budget is < 1.05, see DESIGN.md).
func ObsOverhead(sf float64, iters int) (float64, error) {
	return obsOverheadWith(sf, iters, engine.Config{Observability: true, PlanFeedbackSize: -1})
}

// ObsOverheadV2 measures the overhead of the full observability-v2 stack:
// per-query profiles, latency histograms, a slow-query log with a 1ns
// threshold (every query is logged, the worst case), and the per-plan
// feedback store — against the same engine with observability off. Morsel
// event sampling stays at its default (off) because it is opt-in.
func ObsOverheadV2(sf float64, iters int) (float64, error) {
	return obsOverheadWith(sf, iters, engine.Config{
		Observability:      true,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryWriter:    io.Discard,
	})
}

// obsOverheadWith is the shared harness: median query time under obsCfg
// divided by median query time with all observability off.
func obsOverheadWith(sf float64, iters int, obsCfg engine.Config) (float64, error) {
	if iters < 3 {
		iters = 3
	}
	t := GenTPCH(sf)
	build := func(obsOn bool) (*engine.Engine, error) {
		// The baseline engine turns every observability feature off,
		// including the default-enabled plan feedback store.
		cfg := engine.Config{PlanFeedbackSize: -1}
		if obsOn {
			cfg = obsCfg
		}
		e := engine.New(cfg)
		e.Mem().PutFile("mem://lineitem.json", t.LineitemJSON)
		if err := e.Register("lineitem_json", "mem://lineitem.json", "json", nil, plugin.Options{}); err != nil {
			return nil, err
		}
		return e, nil
	}
	const q = "SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice), MAX(l_tax) FROM lineitem_json WHERE l_orderkey < 1000000000"
	run := func(e *engine.Engine) (float64, error) {
		// One warm-up run, then timed runs.
		if _, err := e.QuerySQL(q); err != nil {
			return 0, err
		}
		times := make([]float64, 0, iters)
		for i := 0; i < iters; i++ {
			sec, err := timeIt(func() error {
				_, err := e.QuerySQL(q)
				return err
			})
			if err != nil {
				return 0, err
			}
			times = append(times, sec)
		}
		return median(times), nil
	}
	plain, err := build(false)
	if err != nil {
		return 0, err
	}
	observed, err := build(true)
	if err != nil {
		return 0, err
	}
	base, err := run(plain)
	if err != nil {
		return 0, err
	}
	withObs, err := run(observed)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, fmt.Errorf("bench: degenerate baseline timing %g", base)
	}
	return withObs / base, nil
}

// median returns the middle value (lower-middle for even counts).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}
