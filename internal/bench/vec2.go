package bench

import (
	"fmt"
	"math"
	"strings"

	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Vectorized execution round two: joins, ORDER BY, and string predicates,
// plus the adaptive mode decision. Three systems run identical queries over
// cache-resident data — both static modes and auto with a feedback store
// warmed through its whole decision ladder — so the report shows both the
// kernel speedups and that the measured decision tracks the better static
// mode.

// Vec2SysAdaptive names the warmed-feedback auto mode in reports; the two
// static systems reuse VecSysTuple / VecSysVectorized.
const Vec2SysAdaptive = "adaptive(auto+feedback)"

var vec2Names = []string{"ash", "birch", "cedar", "oak", "pine", "elm", "willow", "maple"}

// Vec2Queries are the join / ORDER BY / string-predicate shapes PR 9
// vectorizes. The fact table t has VecBenchRows rows; the dimension d has
// 1000 rows keyed by t.val's domain.
var Vec2Queries = []struct {
	Name string
	SQL  string
}{
	{"join_count", "SELECT COUNT(*) FROM t a JOIN d b ON a.val = b.k WHERE b.tag < 500"},
	{"join_project", "SELECT a.id AS id, b.label AS l FROM t a JOIN d b ON a.val = b.k WHERE b.tag < 50"},
	{"order_by_limit", "SELECT id, val, score FROM t WHERE val < 500 ORDER BY score DESC, id LIMIT 100"},
	{"order_by_full", "SELECT id, val FROM t WHERE grp < 10 ORDER BY val, id"},
	{"str_eq", "SELECT COUNT(*) FROM t WHERE name = 'cedar'"},
	{"str_prefix", "SELECT COUNT(*) FROM t WHERE name LIKE 'ce%'"},
	{"str_contains", "SELECT COUNT(*) FROM t WHERE name LIKE '%da%'"},
}

// NewVec2Engine builds the two-table fixture (fact CSV with a string column
// plus an integer-keyed dimension) and warms the adaptive cache on every
// benchmark query. warmRuns also sizes the feedback warm-up: auto mode
// climbs heuristic → explore → measured, and needs enough further runs for
// stale-loser re-exploration to wash out the cold first measurement.
func NewVec2Engine(mode exec.VecMode, warmRuns int) (*engine.Engine, error) {
	e := engine.New(engine.Config{
		CacheEnabled: true,
		Parallelism:  1,
		Vectorized:   mode,
		// Plan caching off: warm-up runs must recompile so the mode decision
		// is re-made against the accumulating feedback.
		PlanCacheSize: -1,
	})
	var sb strings.Builder
	for i := 0; i < VecBenchRows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d,%g,%s\n",
			i, (i*2654435761)%1000, i%97, float64(i%1024)*0.5, vec2Names[i%len(vec2Names)])
	}
	e.Mem().PutFile("mem://vbench2.csv", []byte(sb.String()))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "grp", Type: types.Int},
		types.Field{Name: "score", Type: types.Float},
		types.Field{Name: "name", Type: types.String},
	)
	if err := e.Register("t", "mem://vbench2.csv", "csv", schema, plugin.Options{}); err != nil {
		return nil, fmt.Errorf("bench: registering vbench2 fact: %w", err)
	}
	var db strings.Builder
	for k := 0; k < 1000; k++ {
		fmt.Fprintf(&db, "%d,%d,%s\n", k, (k*7919)%1000, vec2Names[k%len(vec2Names)])
	}
	e.Mem().PutFile("mem://vdim2.csv", []byte(db.String()))
	dimSchema := types.NewRecordType(
		types.Field{Name: "k", Type: types.Int},
		types.Field{Name: "tag", Type: types.Int},
		types.Field{Name: "label", Type: types.String},
	)
	if err := e.Register("d", "mem://vdim2.csv", "csv", dimSchema, plugin.Options{}); err != nil {
		return nil, fmt.Errorf("bench: registering vbench2 dim: %w", err)
	}
	if warmRuns < 2 {
		warmRuns = 2
	}
	for _, q := range Vec2Queries {
		for i := 0; i < warmRuns; i++ {
			if _, err := e.QuerySQL(q.SQL); err != nil {
				return nil, fmt.Errorf("bench: warming %q: %w", q.SQL, err)
			}
		}
	}
	return e, nil
}

// FigVec2 measures every query under all three systems and reports one Row
// per (query, system) with Exp "vec2". All programs are prepared up front
// and the systems are timed interleaved — each iteration runs every
// (system, query) pair back to back — so slow phases of the host machine
// hit all three systems alike instead of biasing whichever ran last. The
// reported figure is the min across iterations: the systems run identical
// deterministic work, so the fastest observation is the cleanest estimate
// of the code path and keeps the 5% adaptive gate off scheduler noise.
func FigVec2(iters int) ([]Row, error) {
	if iters < 1 {
		iters = 1
	}
	systems := []struct {
		system string
		mode   exec.VecMode
		warm   int
	}{
		{VecSysTuple, exec.VecOff, 2},
		{VecSysVectorized, exec.VecOn, 2},
		// Twelve warm runs per query carry auto through the whole ladder —
		// heuristic, explore, measured, and one stale-loser re-exploration —
		// so the cold first run cannot fix the decision before timing starts.
		{Vec2SysAdaptive, exec.VecAuto, 12},
	}
	type cell struct {
		prep *engine.Prepared
		best float64
	}
	progs := make([][]cell, len(systems))
	for si, m := range systems {
		e, err := NewVec2Engine(m.mode, m.warm)
		if err != nil {
			return nil, err
		}
		progs[si] = make([]cell, len(Vec2Queries))
		for qi, q := range Vec2Queries {
			prep, err := e.PrepareSQL(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: preparing %q: %w", q.SQL, err)
			}
			progs[si][qi] = cell{prep: prep, best: math.MaxFloat64}
		}
	}
	for i := 0; i < iters; i++ {
		for si := range systems {
			for qi, q := range Vec2Queries {
				c := &progs[si][qi]
				sec, err := timeIt(func() error {
					_, err := c.prep.Program.Run()
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench: running %q: %w", q.SQL, err)
				}
				if sec < c.best {
					c.best = sec
				}
			}
		}
	}
	var rows []Row
	for si, m := range systems {
		for qi, q := range Vec2Queries {
			rows = append(rows, Row{
				Exp: "vec2", Query: q.Name, System: m.system,
				Seconds: progs[si][qi].best,
			})
		}
	}
	return rows, nil
}

// vec2Times collects per-query seconds by system.
func vec2Times(rows []Row, query string) (tup, vec, auto float64) {
	for _, r := range rows {
		if r.Exp != "vec2" || r.Query != query {
			continue
		}
		switch r.System {
		case VecSysTuple:
			tup = r.Seconds
		case VecSysVectorized:
			vec = r.Seconds
		case Vec2SysAdaptive:
			auto = r.Seconds
		}
	}
	return
}

// PrintVec2 renders the figure: static speedup plus the adaptive mode's
// distance from the better static mode.
func PrintVec2(w interface{ Write([]byte) (int, error) }, rows []Row) {
	fmt.Fprintln(w, "== vec2: joins, ORDER BY, string predicates — tuple vs vectorized vs adaptive (seconds) ==")
	fmt.Fprintf(w, "%-16s%12s%12s%12s%10s%12s\n", "query", "tuple", "vectorized", "adaptive", "speedup", "auto/best")
	for _, q := range Vec2Queries {
		tup, vec, auto := vec2Times(rows, q.Name)
		if tup == 0 || vec == 0 || auto == 0 {
			continue
		}
		best := tup
		if vec < best {
			best = vec
		}
		fmt.Fprintf(w, "%-16s%12.6f%12.6f%12.6f%9.2fx%11.3fx\n",
			q.Name, tup, vec, auto, tup/vec, auto/best)
	}
	fmt.Fprintln(w)
}

// Vec2Gate checks the acceptance bar: on every covered query, adaptive auto
// with a warm feedback store stays within tolerance of the better static
// mode (tolerance 1.05 = within 5%). Returns nil when all queries pass.
func Vec2Gate(rows []Row, tolerance float64) error {
	var fails []string
	for _, q := range Vec2Queries {
		tup, vec, auto := vec2Times(rows, q.Name)
		if tup == 0 || vec == 0 || auto == 0 {
			continue
		}
		best := tup
		if vec < best {
			best = vec
		}
		if auto > best*tolerance {
			fails = append(fails, fmt.Sprintf("%s: adaptive %.6fs vs best static %.6fs (%.3fx > %.2fx)",
				q.Name, auto, best, auto/best, tolerance))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("vec2 gate: %s", strings.Join(fails, "; "))
	}
	return nil
}
