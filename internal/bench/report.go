package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrintFigure renders a figure's rows the way the paper plots them: one
// block per query template, systems as table rows, selectivities as
// columns, execution time in seconds per cell.
func PrintFigure(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "== %s ==\n", title)
	// Group by query label, preserving first-appearance order.
	var labels []string
	byLabel := map[string][]Row{}
	for _, r := range rows {
		if _, ok := byLabel[r.Query]; !ok {
			labels = append(labels, r.Query)
		}
		byLabel[r.Query] = append(byLabel[r.Query], r)
	}
	for _, label := range labels {
		sub := byLabel[label]
		sels := sortedSels(sub)
		fmt.Fprintf(w, "-- Q: %s --\n", label)
		fmt.Fprintf(w, "%-32s", "system \\ selectivity %")
		for _, s := range sels {
			fmt.Fprintf(w, "%12d", s)
		}
		fmt.Fprintln(w)
		var systems []string
		seen := map[string]bool{}
		for _, r := range sub {
			if !seen[r.System] {
				systems = append(systems, r.System)
				seen[r.System] = true
			}
		}
		for _, sys := range systems {
			fmt.Fprintf(w, "%-32s", sys)
			for _, s := range sels {
				v, ok := cell(sub, sys, s)
				if ok {
					fmt.Fprintf(w, "%12.4f", v)
				} else {
					fmt.Fprintf(w, "%12s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

func sortedSels(rows []Row) []int {
	set := map[int]bool{}
	for _, r := range rows {
		set[r.Sel] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func cell(rows []Row, system string, sel int) (float64, bool) {
	for _, r := range rows {
		if r.System == system && r.Sel == sel {
			return r.Seconds, true
		}
	}
	return 0, false
}

// PrintSpeedups renders fig13's speedup view: Baseline seconds divided by
// Cached-Predicate seconds per (template, selectivity).
func PrintSpeedups(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "== fig13: caching speedup (Baseline / Cached Predicate) ==")
	var labels []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Query] {
			labels = append(labels, r.Query)
			seen[r.Query] = true
		}
	}
	for _, label := range labels {
		fmt.Fprintf(w, "%-24s", label)
		for _, sel := range Sels {
			var base, cached float64
			for _, r := range rows {
				if r.Query != label || r.Sel != sel {
					continue
				}
				switch r.System {
				case "Baseline":
					base = r.Seconds
				case "Cached Predicate":
					cached = r.Seconds
				}
			}
			if cached > 0 {
				fmt.Fprintf(w, "  %d%%: %6.2fx", sel, base/cached)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintSpam renders Figure 14 (per-query times) and Table 3 (phase totals).
func PrintSpam(w io.Writer, rep *SpamReport) {
	fmt.Fprintln(w, "== fig14: spam workload, per-query execution time (seconds) ==")
	stacks := []string{StackPG, StackPolyglot, StackProteus}
	fmt.Fprintf(w, "%-6s", "query")
	for _, s := range stacks {
		fmt.Fprintf(w, "%44s", s)
	}
	fmt.Fprintln(w)
	byQuery := map[string]map[string]float64{}
	var queries []string
	for _, r := range rep.Rows {
		if _, ok := byQuery[r.Query]; !ok {
			byQuery[r.Query] = map[string]float64{}
			queries = append(queries, r.Query)
		}
		byQuery[r.Query][r.System] = r.Seconds
	}
	for _, q := range queries {
		fmt.Fprintf(w, "%-6s", q)
		for _, s := range stacks {
			fmt.Fprintf(w, "%44.4f", byQuery[q][s])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n== table3: execution time per workload phase (seconds) ==")
	fmt.Fprintf(w, "%-44s%12s%12s%12s%12s%12s%12s\n",
		"stack", "LoadCSV", "LoadJSON", "Middleware", "Q39", "Rest", "Total")
	for _, s := range stacks {
		fmt.Fprintf(w, "%-44s%12.3f%12.3f%12.3f%12.3f%12.3f%12.3f\n",
			s, rep.LoadCSV[s], rep.LoadJSON[s], rep.Middleware[s], rep.Q39[s], rep.Rest[s], rep.Total[s])
	}
	if rep.Total[StackProteus] > 0 {
		fmt.Fprintf(w, "\nspeedup vs PostgreSQL-like: %.2fx   vs polystore: %.2fx\n",
			rep.Total[StackPG]/rep.Total[StackProteus],
			rep.Total[StackPolyglot]/rep.Total[StackProteus])
		// The paper isolates Q39 (the blind-optimizer outlier) and reports
		// the speedup without it as well.
		exPG := rep.Total[StackPG] - rep.Q39[StackPG]
		exPr := rep.Total[StackProteus] - rep.Q39[StackProteus]
		if exPr > 0 {
			fmt.Fprintf(w, "excluding Q39:              %.2fx   vs polystore: %.2fx\n",
				exPG/exPr, (rep.Total[StackPolyglot]-rep.Q39[StackPolyglot])/exPr)
		}
	}
	fmt.Fprintf(w, "cache footprint: CSV %.1f%% of file, JSON %.1f%% of file\n\n",
		100*float64(rep.CacheCSVBytes)/float64(rep.CSVBytes),
		100*float64(rep.CacheJSONBytes)/float64(rep.JSONBytes))
}

// FormatRows renders raw rows as a flat CSV-ish listing (machine-friendly).
func FormatRows(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("exp,query,system,selectivity,seconds\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%q,%q,%d,%.6f\n", r.Exp, r.Query, r.System, r.Sel, r.Seconds)
	}
	return sb.String()
}
