package bench

import (
	"fmt"

	"proteus/internal/engine"
)

// Sels are the selectivity points of §7.1 (percent of lineitem qualifying
// under the l_orderkey predicate).
var Sels = []int{10, 20, 50, 100}

// cut returns the l_orderkey bound giving the requested selectivity.
func (f *TPCHFixture) cut(selPct int) int64 {
	if selPct >= 100 {
		return f.Data.MaxOrderKey + 1
	}
	return f.Data.MaxOrderKey * int64(selPct) / 100
}

// runOn executes a prepared plan on one system by name.
func (f *TPCHFixture) runOn(system string, prep *engine.Prepared) error {
	switch system {
	case SysProteus:
		_, err := prep.Program.Run()
		return err
	case SysVolcano:
		_, err := f.Volcano.RunPlan(prep.Plan)
		return err
	case SysVolcanoChar:
		_, err := f.VolcanoChar.RunPlan(prep.Plan)
		return err
	case SysColumnar:
		_, err := f.Columnar.RunPlan(prep.Plan)
		return err
	case SysColumnarSorted:
		_, err := f.ColumnarSorted.RunPlan(prep.Plan)
		return err
	case SysDocstore:
		_, err := f.Docstore.RunPlan(prep.Plan)
		return err
	}
	return fmt.Errorf("bench: unknown system %q", system)
}

// measure times one (query, system) point. For Proteus the measurement
// includes plan compilation — the analogue of the paper's ~50 ms LLVM
// compilation, included in its reported times.
func (f *TPCHFixture) measure(exp, label, system string, sel int, sqlText string, isComp bool) (Row, error) {
	var prep *engine.Prepared
	var err error
	prepIt := func() error {
		if isComp {
			prep, err = f.PlanForComp(sqlText)
		} else {
			prep, err = f.PlanFor(sqlText)
		}
		return err
	}
	if system != SysProteus {
		if err := prepIt(); err != nil {
			return Row{}, fmt.Errorf("%s [%s]: %w", label, sqlText, err)
		}
	}
	// Best-of-3: the paper's testbed runs are long enough that one-shot
	// timing is stable; at laptop scale the minimum of three runs removes
	// scheduler and GC noise without changing the shape.
	best := -1.0
	for rep := 0; rep < 3; rep++ {
		secs, err := timeIt(func() error {
			if system == SysProteus {
				if err := prepIt(); err != nil {
					return err
				}
			}
			return f.runOn(system, prep)
		})
		if err != nil {
			return Row{}, fmt.Errorf("%s on %s: %w", label, system, err)
		}
		if best < 0 || secs < best {
			best = secs
		}
	}
	return Row{Exp: exp, Query: label, System: system, Sel: sel, Seconds: best}, nil
}

// sweep runs one query template across systems and selectivities.
func (f *TPCHFixture) sweep(exp, label string, systems []string, tmpl func(cut int64) string, isComp bool) ([]Row, error) {
	var rows []Row
	for _, sel := range Sels {
		q := tmpl(f.cut(sel))
		for _, sys := range systems {
			r, err := f.measure(exp, label, sys, sel, q, isComp)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

var (
	jsonSystems = []string{SysVolcano, SysVolcanoChar, SysDocstore, SysProteus}
	binSystems  = []string{SysVolcano, SysColumnar, SysColumnarSorted, SysProteus}
)

// Fig5 — projection-intensive queries over JSON data.
func Fig5(f *TPCHFixture) ([]Row, error) {
	return f.projections("fig5", "lineitem_json", jsonSystems)
}

// Fig6 — projection-intensive queries over binary relational data.
func Fig6(f *TPCHFixture) ([]Row, error) {
	return f.projections("fig6", "lineitem_bin", binSystems)
}

func (f *TPCHFixture) projections(exp, table string, systems []string) ([]Row, error) {
	var all []Row
	templates := []struct {
		label string
		sql   func(cut int64) string
	}{
		{"1 Aggr. (Count)", func(c int64) string {
			return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE l_orderkey < %d", table, c)
		}},
		{"1 Aggr. (MAX)", func(c int64) string {
			return fmt.Sprintf("SELECT MAX(l_quantity) FROM %s WHERE l_orderkey < %d", table, c)
		}},
		{"4 Aggr.", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice), MAX(l_tax) FROM %s WHERE l_orderkey < %d",
				table, c)
		}},
	}
	for _, t := range templates {
		rows, err := f.sweep(exp, t.label, systems, t.sql, false)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

// Fig7 — selection queries over JSON data.
func Fig7(f *TPCHFixture) ([]Row, error) {
	return f.selections("fig7", "lineitem_json", jsonSystems)
}

// Fig8 — selection queries over binary relational data.
func Fig8(f *TPCHFixture) ([]Row, error) {
	return f.selections("fig8", "lineitem_bin", binSystems)
}

func (f *TPCHFixture) selections(exp, table string, systems []string) ([]Row, error) {
	var all []Row
	templates := []struct {
		label string
		sql   func(cut int64) string
	}{
		{"1 Predicate", func(c int64) string {
			return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE l_orderkey < %d", table, c)
		}},
		{"3 Predicates", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*) FROM %s WHERE l_orderkey < %d AND l_quantity < 60 AND l_extendedprice < 1000000.0",
				table, c)
		}},
		{"4 Predicates", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*) FROM %s WHERE l_orderkey < %d AND l_quantity < 60 AND l_extendedprice < 1000000.0 AND l_tax < 1.0",
				table, c)
		}},
	}
	for _, t := range templates {
		rows, err := f.sweep(exp, t.label, systems, t.sql, false)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

// Fig9 — join and unnest queries over JSON data.
func Fig9(f *TPCHFixture) ([]Row, error) {
	all, err := f.joins("fig9", "orders_json", "lineitem_json", jsonSystems)
	if err != nil {
		return nil, err
	}
	// Unnest variant over the denormalized representation: count qualifying
	// lineitems embedded in each order object.
	unnest := func(c int64) string {
		return fmt.Sprintf(
			"for { o <- orders_denorm, l <- o.lineitems, l.l_orderkey < %d } yield count", c)
	}
	rows, err := f.sweep("fig9", "Unnest", jsonSystems, unnest, true)
	if err != nil {
		return nil, err
	}
	return append(all, rows...), nil
}

// Fig10 — join queries over binary relational data.
func Fig10(f *TPCHFixture) ([]Row, error) {
	return f.joins("fig10", "orders_bin", "lineitem_bin", binSystems)
}

func (f *TPCHFixture) joins(exp, orders, lineitem string, systems []string) ([]Row, error) {
	var all []Row
	templates := []struct {
		label string
		sql   func(cut int64) string
	}{
		{"1 Aggr. (COUNT)", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*) FROM %s o JOIN %s l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d",
				orders, lineitem, c)
		}},
		{"1 Aggr. (MAX)", func(c int64) string {
			return fmt.Sprintf(
				"SELECT MAX(o.o_totalprice) FROM %s o JOIN %s l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d",
				orders, lineitem, c)
		}},
		{"2 Aggr.", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*), MAX(o.o_totalprice) FROM %s o JOIN %s l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d",
				orders, lineitem, c)
		}},
	}
	for _, t := range templates {
		rows, err := f.sweep(exp, t.label, systems, t.sql, false)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

// Fig11 — aggregate (GROUP BY) queries over JSON data.
func Fig11(f *TPCHFixture) ([]Row, error) {
	return f.groupbys("fig11", "lineitem_json", jsonSystems)
}

// Fig12 — aggregate (GROUP BY) queries over binary relational data.
func Fig12(f *TPCHFixture) ([]Row, error) {
	return f.groupbys("fig12", "lineitem_bin", binSystems)
}

func (f *TPCHFixture) groupbys(exp, table string, systems []string) ([]Row, error) {
	var all []Row
	templates := []struct {
		label string
		sql   func(cut int64) string
	}{
		{"1 Aggr.", func(c int64) string {
			return fmt.Sprintf(
				"SELECT l_linenumber, COUNT(*) FROM %s WHERE l_orderkey < %d GROUP BY l_linenumber",
				table, c)
		}},
		{"3 Aggr.", func(c int64) string {
			return fmt.Sprintf(
				"SELECT l_linenumber, COUNT(*), MAX(l_quantity), SUM(l_extendedprice) FROM %s WHERE l_orderkey < %d GROUP BY l_linenumber",
				table, c)
		}},
		{"4 Aggr.", func(c int64) string {
			return fmt.Sprintf(
				"SELECT l_linenumber, COUNT(*), MAX(l_quantity), SUM(l_extendedprice), MIN(l_discount) FROM %s WHERE l_orderkey < %d GROUP BY l_linenumber",
				table, c)
		}},
	}
	for _, t := range templates {
		rows, err := f.sweep(exp, t.label, systems, t.sql, false)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

// Fig13 — effect of caching: a projection template and a selection template
// over JSON, "Baseline" (caching off) vs. "Cached Predicate" (the predicate
// and projected columns were cached by a previous query). The report layer
// divides the two to obtain the paper's speedup curve.
func Fig13(sf float64) ([]Row, error) {
	templates := []struct {
		label string
		sql   func(cut int64) string
	}{
		{"Projection Template", func(c int64) string {
			return fmt.Sprintf(
				"SELECT MAX(l_quantity), MAX(l_extendedprice), MAX(l_discount), MAX(l_tax) FROM lineitem_json WHERE l_orderkey < %d", c)
		}},
		{"Selection Template", func(c int64) string {
			return fmt.Sprintf(
				"SELECT COUNT(*) FROM lineitem_json WHERE l_orderkey < %d AND l_quantity < 60 AND l_extendedprice < 1000000.0 AND l_tax < 1.0", c)
		}},
	}
	var rows []Row

	// Baseline: caching disabled.
	base, err := NewTPCHFixture(sf)
	if err != nil {
		return nil, err
	}
	for _, t := range templates {
		for _, sel := range Sels {
			r, err := base.measure("fig13", t.label, SysProteus, sel, t.sql(base.cut(sel)), false)
			if err != nil {
				return nil, err
			}
			r.System = "Baseline"
			rows = append(rows, r)
		}
	}

	// Cached: caching enabled; a first pass populates the caches, the
	// measured pass reads them.
	cached, err := NewTPCHFixtureCached(sf)
	if err != nil {
		return nil, err
	}
	for _, t := range templates {
		if _, err := cached.Proteus.QuerySQL(t.sql(cached.cut(100))); err != nil {
			return nil, err
		}
		for _, sel := range Sels {
			r, err := cached.measure("fig13", t.label, SysProteus, sel, t.sql(cached.cut(sel)), false)
			if err != nil {
				return nil, err
			}
			r.System = "Cached Predicate"
			rows = append(rows, r)
		}
	}
	return rows, nil
}
