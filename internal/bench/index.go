package bench

import (
	"fmt"
	"sort"
	"strings"

	"proteus/internal/cache"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Bitmap-index microbenchmark (the cache-v2 figure): identical prepared
// programs over identical cache-resident blocks, differing only in the
// index policy, so the comparison isolates bitmap-probe-plus-gather
// against per-row compare kernels. Zone maps are active in both modes
// (they are always built); the data is shuffled so range zones cover the
// full domain and window skipping cannot mask the index effect.

// IdxBenchRows matches VecBenchRows: a few hundred zone windows.
const IdxBenchRows = 200_000

// IdxSysOn and IdxSysOff name the two policies in reports.
const (
	IdxSysOn  = "indexed(IndexOn)"
	IdxSysOff = "unindexed(IndexOff)"
)

// IdxQueries are repeated selective filters over indexable cached columns:
// int equality at 0.1% and ~1% selectivity, an int range lowered to an OR
// over key bitmaps, a negation, and dictionary-string equality.
var IdxQueries = []struct {
	Name string
	SQL  string
}{
	{"eq_point", "SELECT COUNT(*), SUM(id) FROM t WHERE val = 3"},
	{"eq_group", "SELECT COUNT(*), SUM(val) FROM t WHERE grp = 13"},
	{"sparse_eq", "SELECT COUNT(*), SUM(id) FROM t WHERE sparse = 7"},
	{"range_or", "SELECT COUNT(*) FROM t WHERE val < 50"},
	{"neq", "SELECT COUNT(*) FROM t WHERE grp != 42"},
	{"str_eq", "SELECT COUNT(*), SUM(id) FROM t WHERE tag = 'tag07'"},
}

// NewIdxEngine builds an engine over a synthetic CSV table under the given
// index policy and warms every benchmark query three times — the first run
// materializes cache blocks, the second builds indexes (IndexOn) and bumps
// the cache epoch, the third recompiles against the settled cache — so
// steady-state timing measures only the access path.
func NewIdxEngine(mode cache.IndexMode) (*engine.Engine, error) {
	e := engine.New(engine.Config{
		CacheEnabled: true,
		CacheStrings: true,
		Indexes:      mode,
		Parallelism:  1,
		Vectorized:   exec.VecOn,
		// Plan caching off: warm-up runs must recompile against the current
		// cache contents, and timing uses prepared programs.
		PlanCacheSize: -1,
	})
	var sb strings.Builder
	for i := 0; i < IdxBenchRows; i++ {
		// Multiplicative hashing shuffles val/grp so zone ranges span the
		// whole domain: zone maps prune nothing, indexes do all the work.
		h := (i * 2654435761) & 0x7fffffff
		// sparse is the skewed-clustering case bitmaps excel at: every zone's
		// value range is ~[1,999] (so zone maps never prune), but the needle
		// value 7 only occurs in the first 4096 rows — the bitmap proves the
		// other ~98% of windows empty before they are materialized.
		sparse := h % 1000
		if i >= 4096 {
			sparse = h%998 + 1 // 1..998
			if sparse >= 7 {
				sparse++ // 1..999 with 7 excluded
			}
		}
		fmt.Fprintf(&sb, "%d,%d,%d,%d,tag%02d\n", i, h%1000, h%97, sparse, h%50)
	}
	e.Mem().PutFile("mem://ibench.csv", []byte(sb.String()))
	schema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "grp", Type: types.Int},
		types.Field{Name: "sparse", Type: types.Int},
		types.Field{Name: "tag", Type: types.String},
	)
	if err := e.Register("t", "mem://ibench.csv", "csv", schema, plugin.Options{}); err != nil {
		return nil, fmt.Errorf("bench: registering ibench: %w", err)
	}
	for _, q := range IdxQueries {
		for i := 0; i < 3; i++ {
			if _, err := e.QuerySQL(q.SQL); err != nil {
				return nil, fmt.Errorf("bench: warming %q: %w", q.SQL, err)
			}
		}
	}
	return e, nil
}

// FigIdx measures every query under both index policies (median of iters
// steady-state runs each) and reports one Row per (query, policy).
func FigIdx(iters int) ([]Row, error) {
	if iters < 1 {
		iters = 1
	}
	var rows []Row
	for _, m := range []struct {
		system string
		mode   cache.IndexMode
	}{
		{IdxSysOff, cache.IndexOff},
		{IdxSysOn, cache.IndexOn},
	} {
		e, err := NewIdxEngine(m.mode)
		if err != nil {
			return nil, err
		}
		for _, q := range IdxQueries {
			prep, err := e.PrepareSQL(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: preparing %q: %w", q.SQL, err)
			}
			times := make([]float64, 0, iters)
			for i := 0; i < iters; i++ {
				sec, err := timeIt(func() error {
					_, err := prep.Program.Run()
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench: running %q: %w", q.SQL, err)
				}
				times = append(times, sec)
			}
			sort.Float64s(times)
			rows = append(rows, Row{
				Exp: "idx", Query: q.Name, System: m.system,
				Seconds: times[(len(times)-1)/2],
			})
		}
	}
	return rows, nil
}

// PrintIdx renders the index figure as a per-query speedup table.
func PrintIdx(w interface{ Write([]byte) (int, error) }, rows []Row) {
	fmt.Fprintln(w, "== idx: bitmap index vs compare kernels, cache-resident (seconds) ==")
	fmt.Fprintf(w, "%-18s%14s%14s%10s\n", "query", "unindexed", "indexed", "speedup")
	for _, q := range IdxQueries {
		var off, on float64
		for _, r := range rows {
			if r.Query != q.Name {
				continue
			}
			switch r.System {
			case IdxSysOff:
				off = r.Seconds
			case IdxSysOn:
				on = r.Seconds
			}
		}
		if on > 0 {
			fmt.Fprintf(w, "%-18s%14.6f%14.6f%9.2fx\n", q.Name, off, on, off/on)
		}
	}
	fmt.Fprintln(w)
}
