// Morsel-parallelism experiment: the same scan-heavy queries on engines
// configured with 1, 2, and 4 workers. The paper's testbed pins one worker
// per core; on a single-core container the parallel points measure the
// overhead of the morsel machinery rather than a speedup, so the report
// records the host's usable core count alongside the timings.
package bench

import (
	"fmt"
	"runtime"

	"proteus/internal/engine"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// ParWorkers are the worker counts of the parallel sweep.
var ParWorkers = []int{1, 2, 4}

// FigParallel measures serial vs. morsel-parallel execution over the three
// raw formats. Adaptive caching stays off so every run pays the full
// raw-data scan the workers are meant to split.
func FigParallel(sf float64) ([]Row, error) {
	data := GenTPCH(sf)

	templates := []struct {
		label  string
		sql    string
		isComp bool
	}{
		{"4 Aggr. CSV", "SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice), AVG(l_tax) FROM lineitem_csv", false},
		{"4 Aggr. JSON", "SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice), AVG(l_tax) FROM lineitem_json", false},
		{"4 Aggr. binary", "SELECT COUNT(*), MAX(l_quantity), MAX(l_extendedprice), AVG(l_tax) FROM lineitem_bin", false},
		{"Group-by CSV", "SELECT l_linenumber, COUNT(*), SUM(l_extendedprice) FROM lineitem_csv GROUP BY l_linenumber", false},
		{"Join binary", "SELECT COUNT(*) FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = l.l_orderkey", false},
	}

	var rows []Row
	var serial map[string]*types.Value // label → reference scalar from the 1-worker engine
	for _, workers := range ParWorkers {
		e := engine.New(engine.Config{CacheEnabled: false, Parallelism: workers})
		mem := e.Mem()
		mem.PutFile("mem://lineitem.csv", data.LineitemCSV)
		mem.PutFile("mem://lineitem.json", data.LineitemJSON)
		mem.PutFile("mem://lineitem.bin", data.LineitemBin)
		mem.PutFile("mem://orders.bin", data.OrdersBin)
		regs := []struct {
			name, path, format string
			schema             *types.RecordType
		}{
			{"lineitem_csv", "mem://lineitem.csv", "csv", data.LineitemSchema},
			{"lineitem_json", "mem://lineitem.json", "json", nil},
			{"lineitem_bin", "mem://lineitem.bin", "bin", nil},
			{"orders_bin", "mem://orders.bin", "bin", nil},
		}
		for _, rg := range regs {
			if err := e.Register(rg.name, rg.path, rg.format, rg.schema, plugin.Options{}); err != nil {
				return nil, fmt.Errorf("bench: registering %s: %w", rg.name, err)
			}
		}
		if serial == nil {
			serial = map[string]*types.Value{}
		}
		system := fmt.Sprintf("proteus-%dw", workers)
		for _, t := range templates {
			// Parallel results must agree with the serial reference before
			// any of their timings count.
			res, err := e.QuerySQL(t.sql)
			if err != nil {
				return nil, fmt.Errorf("%s @ %d workers: %w", t.label, workers, err)
			}
			v := res.Scalar()
			if ref, ok := serial[t.label]; ok {
				if !scalarAgrees(*ref, v) {
					return nil, fmt.Errorf("%s @ %d workers: result %s diverges from serial %s",
						t.label, workers, v, *ref)
				}
			} else {
				serial[t.label] = &v
			}
			best := -1.0
			for rep := 0; rep < 3; rep++ {
				secs, err := timeIt(func() error {
					_, err := e.QuerySQL(t.sql)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s @ %d workers: %w", t.label, workers, err)
				}
				if best < 0 || secs < best {
					best = secs
				}
			}
			rows = append(rows, Row{Exp: "figpar", Query: t.label, System: system, Seconds: best})
		}
	}
	return rows, nil
}

// scalarAgrees compares a parallel result against the serial reference.
// Integer, string, count, min, and max aggregates must match exactly; float
// sums and averages are allowed the last-ULP differences that come from
// merging per-morsel partial sums (floating-point addition reassociates).
func scalarAgrees(ref, got types.Value) bool {
	if types.Compare(ref, got) == 0 {
		return true
	}
	if ref.Kind != types.KindFloat || got.Kind != types.KindFloat {
		return false
	}
	a, b := ref.AsFloat(), got.AsFloat()
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := max(a, -a, b, -b, 1)
	return diff <= 1e-9*scale
}

// ParallelHostNote describes the cores the sweep could actually use, so
// reported numbers are interpretable (a 1-core host cannot show a speedup).
func ParallelHostNote() string {
	return fmt.Sprintf("host: GOMAXPROCS=%d, NumCPU=%d", runtime.GOMAXPROCS(0), runtime.NumCPU())
}
