package bench

import (
	"strconv"

	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

// TPCH holds one generated TPC-H-subset instance in every representation
// the paper evaluates: raw CSV text, JSON objects, denormalized JSON
// (orders embedding their lineitems — the document-store shape used by the
// Unnest experiment), and binary row/column files. The tables carry the
// numeric fields the paper's templates touch ("the data types are numeric
// fields — integers and floats").
type TPCH struct {
	SF                           float64
	LineitemRows                 int
	OrdersRows                   int
	MaxOrderKey                  int64
	Lineitem                     []binpg.Column
	Orders                       []binpg.Column
	LineitemCSV                  []byte
	OrdersCSV                    []byte
	LineitemJSON                 []byte
	OrdersJSON                   []byte
	DenormJSON                   []byte // orders with embedded lineitem arrays
	LineitemBin                  []byte // columnar
	OrdersBin                    []byte // columnar
	LineitemSchema, OrdersSchema *types.RecordType
}

// Scale constants: a real SF has 6M lineitems and 1.5M orders; the harness
// scales both down linearly.
const (
	lineitemPerSF = 6_000_000
	ordersPerSF   = 1_500_000
)

// GenTPCH deterministically generates a scaled TPC-H subset. Lineitems per
// order follow the TPC-H 1–7 distribution; orderkeys are shuffled in file
// order, as the paper shuffles its inputs.
func GenTPCH(sf float64) *TPCH {
	nOrders := int(float64(ordersPerSF) * sf)
	if nOrders < 8 {
		nOrders = 8
	}
	r := newRng(42)

	t := &TPCH{SF: sf, OrdersRows: nOrders, MaxOrderKey: int64(nOrders)}
	t.LineitemSchema = types.NewRecordType(
		types.Field{Name: "l_orderkey", Type: types.Int},
		types.Field{Name: "l_partkey", Type: types.Int},
		types.Field{Name: "l_suppkey", Type: types.Int},
		types.Field{Name: "l_linenumber", Type: types.Int},
		types.Field{Name: "l_quantity", Type: types.Int},
		types.Field{Name: "l_extendedprice", Type: types.Float},
		types.Field{Name: "l_discount", Type: types.Float},
		types.Field{Name: "l_tax", Type: types.Float},
	)
	t.OrdersSchema = types.NewRecordType(
		types.Field{Name: "o_orderkey", Type: types.Int},
		types.Field{Name: "o_custkey", Type: types.Int},
		types.Field{Name: "o_totalprice", Type: types.Float},
		types.Field{Name: "o_shippriority", Type: types.Int},
		types.Field{Name: "o_weight", Type: types.Float},
	)

	// Generate per order, then shuffle row order.
	type li struct {
		okey, pkey, skey, lnum, qty int64
		eprice, disc, tax           float64
	}
	type ord struct {
		okey, ckey, prio int64
		total, weight    float64
		items            []int // indexes into lineitems
	}
	var lineitems []li
	orders := make([]ord, nOrders)
	for i := range orders {
		okey := int64(i + 1)
		o := ord{
			okey:   okey,
			ckey:   r.intn(int64(nOrders/4) + 1),
			prio:   r.intn(5),
			weight: r.float() * 100,
		}
		nLines := 1 + int(r.intn(7))
		for ln := 1; ln <= nLines; ln++ {
			item := li{
				okey:   okey,
				pkey:   r.intn(200_000) + 1,
				skey:   r.intn(10_000) + 1,
				lnum:   int64(ln),
				qty:    r.intn(50) + 1,
				eprice: float64(r.intn(90_000)+10_000) / 100,
				disc:   float64(r.intn(11)) / 100,
				tax:    float64(r.intn(9)) / 100,
			}
			o.total += item.eprice * (1 - item.disc)
			o.items = append(o.items, len(lineitems))
			lineitems = append(lineitems, item)
		}
		orders[i] = o
	}
	shuffle(r, lineitems)
	shuffle(r, orders)
	t.LineitemRows = len(lineitems)

	// Typed columns.
	lc := make([]binpg.Column, 8)
	for i, f := range t.LineitemSchema.Fields {
		lc[i] = binpg.Column{Name: f.Name, Type: f.Type}
	}
	for _, it := range lineitems {
		lc[0].Ints = append(lc[0].Ints, it.okey)
		lc[1].Ints = append(lc[1].Ints, it.pkey)
		lc[2].Ints = append(lc[2].Ints, it.skey)
		lc[3].Ints = append(lc[3].Ints, it.lnum)
		lc[4].Ints = append(lc[4].Ints, it.qty)
		lc[5].Floats = append(lc[5].Floats, it.eprice)
		lc[6].Floats = append(lc[6].Floats, it.disc)
		lc[7].Floats = append(lc[7].Floats, it.tax)
	}
	t.Lineitem = lc
	oc := make([]binpg.Column, 5)
	for i, f := range t.OrdersSchema.Fields {
		oc[i] = binpg.Column{Name: f.Name, Type: f.Type}
	}
	for _, o := range orders {
		oc[0].Ints = append(oc[0].Ints, o.okey)
		oc[1].Ints = append(oc[1].Ints, o.ckey)
		oc[2].Floats = append(oc[2].Floats, o.total)
		oc[3].Ints = append(oc[3].Ints, o.prio)
		oc[4].Floats = append(oc[4].Floats, o.weight)
	}
	t.Orders = oc

	// Text representations.
	t.LineitemCSV = columnsToCSV(lc, t.LineitemRows)
	t.OrdersCSV = columnsToCSV(oc, nOrders)
	t.LineitemJSON = columnsToJSON(lc, t.LineitemRows)
	t.OrdersJSON = columnsToJSON(oc, nOrders)

	// Denormalized JSON: each order embeds its lineitems array.
	var dj []byte
	for _, o := range orders {
		dj = append(dj, `{"o_orderkey": `...)
		dj = strconv.AppendInt(dj, o.okey, 10)
		dj = append(dj, `, "o_totalprice": `...)
		dj = strconv.AppendFloat(dj, o.total, 'f', 2, 64)
		dj = append(dj, `, "lineitems": [`...)
		for i, idx := range o.items {
			if i > 0 {
				dj = append(dj, ", "...)
			}
			it := lineitems[idx]
			dj = append(dj, `{"l_orderkey": `...)
			dj = strconv.AppendInt(dj, it.okey, 10)
			dj = append(dj, `, "l_quantity": `...)
			dj = strconv.AppendInt(dj, it.qty, 10)
			dj = append(dj, `, "l_extendedprice": `...)
			dj = strconv.AppendFloat(dj, it.eprice, 'f', 2, 64)
			dj = append(dj, '}')
		}
		dj = append(dj, "]}\n"...)
	}
	t.DenormJSON = dj

	// Binary columnar (the MonetDB-like files Proteus scans).
	t.LineitemBin, _ = binpg.EncodeColumnar(lc)
	t.OrdersBin, _ = binpg.EncodeColumnar(oc)
	return t
}

// columnsToCSV renders typed columns as simple CSV text.
func columnsToCSV(cols []binpg.Column, rows int) []byte {
	var out []byte
	for r := 0; r < rows; r++ {
		for c := range cols {
			if c > 0 {
				out = append(out, ',')
			}
			out = appendColText(out, &cols[c], r)
		}
		out = append(out, '\n')
	}
	return out
}

// columnsToJSON renders typed columns as newline-delimited JSON objects.
func columnsToJSON(cols []binpg.Column, rows int) []byte {
	var out []byte
	for r := 0; r < rows; r++ {
		out = append(out, '{')
		for c := range cols {
			if c > 0 {
				out = append(out, ", "...)
			}
			out = append(out, '"')
			out = append(out, cols[c].Name...)
			out = append(out, `": `...)
			out = appendColText(out, &cols[c], r)
		}
		out = append(out, "}\n"...)
	}
	return out
}

func appendColText(out []byte, col *binpg.Column, r int) []byte {
	switch col.Type.Kind() {
	case types.KindInt:
		return strconv.AppendInt(out, col.Ints[r], 10)
	case types.KindFloat:
		return strconv.AppendFloat(out, col.Floats[r], 'f', 2, 64)
	case types.KindBool:
		if col.Bools[r] {
			return append(out, "true"...)
		}
		return append(out, "false"...)
	default:
		out = append(out, '"')
		out = append(out, col.Strs[r]...)
		return append(out, '"')
	}
}

// ColumnsToValues boxes typed columns into record values (baseline loads).
func ColumnsToValues(cols []binpg.Column, rows int) []types.Value {
	names := make([]string, len(cols))
	for i := range cols {
		names[i] = cols[i].Name
	}
	out := make([]types.Value, rows)
	for r := 0; r < rows; r++ {
		vals := make([]types.Value, len(cols))
		for c := range cols {
			switch cols[c].Type.Kind() {
			case types.KindInt:
				vals[c] = types.IntValue(cols[c].Ints[r])
			case types.KindFloat:
				vals[c] = types.FloatValue(cols[c].Floats[r])
			case types.KindBool:
				vals[c] = types.BoolValue(cols[c].Bools[r])
			default:
				vals[c] = types.StringValue(cols[c].Strs[r])
			}
		}
		out[r] = types.RecordValue(names, vals)
	}
	return out
}
