// The engine configuration matrix. One query is executed under every
// config and each result is compared (a) exactly against the base config
// (every mode must agree byte-for-byte, in order) and (b) against the
// Volcano oracle under the looser tier rules. Warm configs run each query
// twice on a shared engine so the second execution hits the byte cache /
// plan cache; the concurrent config races two executions of the same query
// on one engine under the race detector in CI.
package qcheck

import (
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"time"

	"proteus"
	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/server"
)

type engConfig struct {
	name       string
	cfg        engine.Config
	warm       bool // execute twice, check both runs
	concurrent bool // execute twice concurrently, check both runs
	reps       int  // execute sequentially this many times, check every run
	workers    int  // >0: distributed config — scatter over this many in-process worker services
}

// configMatrix is the cross-product slice the harness runs. base MUST be
// first: it is the reference every other config is compared against, with
// serial tuple-at-a-time execution and every cache disabled.
func configMatrix() []engConfig {
	off := func(par int, vec exec.VecMode) engine.Config {
		return engine.Config{Parallelism: par, Vectorized: vec, PlanCacheSize: -1}
	}
	return []engConfig{
		{name: "base", cfg: off(1, exec.VecOff)},
		{name: "vec-on", cfg: off(1, exec.VecOn)},
		{name: "vec-auto", cfg: off(1, exec.VecAuto)},
		{name: "par4", cfg: off(4, exec.VecOff)},
		{name: "par4-vec", cfg: off(4, exec.VecOn)},
		{name: "cache", cfg: engine.Config{Parallelism: 1, Vectorized: exec.VecOff,
			CacheEnabled: true, PlanCacheSize: -1}, warm: true},
		{name: "plancache", cfg: engine.Config{Parallelism: 1, Vectorized: exec.VecAuto,
			PlanCacheSize: 64}, warm: true},
		{name: "kitchen", cfg: engine.Config{Parallelism: 4, Vectorized: exec.VecAuto,
			CacheEnabled: true, PlanCacheSize: 64}, warm: true},
		{name: "concurrent", cfg: engine.Config{Parallelism: 2, Vectorized: exec.VecAuto,
			CacheEnabled: true, PlanCacheSize: 64}, concurrent: true},
		// Index configs: identical except for the bitmap-index policy, both
		// warm (the second run recompiles against freshly built indexes via
		// the cache-epoch bump) with string caching on so dictionary-string
		// equality exercises the dictionary path. Differential comparison
		// against base — and against each other through it — is exactly the
		// indexed-vs-unindexed cross-check.
		{name: "idx-on", cfg: engine.Config{Parallelism: 1, Vectorized: exec.VecOn,
			CacheEnabled: true, CacheStrings: true, Indexes: cache.IndexOn,
			PlanCacheSize: 64}, warm: true},
		{name: "idx-off", cfg: engine.Config{Parallelism: 1, Vectorized: exec.VecOn,
			CacheEnabled: true, CacheStrings: true, Indexes: cache.IndexOff,
			PlanCacheSize: 64}, warm: true},
		// Observability must never change results: full v2 stack on —
		// per-query profiles, a zero-ish slow-log threshold so every query
		// takes the slow-log path, and morsel-event recording on every
		// observed query. Warm, so the second run also exercises the
		// profile ring + feedback store with populated caches.
		{name: "obs", cfg: engine.Config{Parallelism: 2, Vectorized: exec.VecAuto,
			CacheEnabled: true, Observability: true,
			SlowQueryThreshold: time.Nanosecond, SlowQueryWriter: io.Discard,
			TraceMorsels: 1, PlanCacheSize: 64}, warm: true},
		// Adaptive mode decisions: four sequential runs on one engine warm the
		// per-plan feedback store through its whole decision ladder — static
		// heuristic first, then an exploratory run of the unmeasured mode,
		// then the measured rows/sec winner — and every run must keep
		// producing the base answer. Plan caching is off so each run actually
		// recompiles and re-decides; the data cache stays on so later runs
		// execute against cache-resident columns like production would.
		{name: "adaptive", cfg: engine.Config{Parallelism: 1, Vectorized: exec.VecAuto,
			CacheEnabled: true, PlanCacheSize: -1}, reps: 4},
		// Distributed execution must never change results: a scatter/gather
		// coordinator over three in-process worker query services speaking the
		// real HTTP fragment protocol (httptest servers around internal/server).
		// Plans that cannot be distributed — no partitionable driving scan,
		// fewer than two morsels — fall back to local execution inside the same
		// config. Two sequential runs exercise repeated scatter over warm
		// worker engines.
		{name: "cluster", cfg: off(1, exec.VecOff), workers: 3, reps: 2},
	}
}

// buildEngine registers every universe table on a fresh engine with the
// given config.
func buildEngine(cfg engine.Config, u *universe) (*engine.Engine, error) {
	e := engine.New(cfg)
	if err := registerTables(e, u); err != nil {
		return nil, err
	}
	return e, nil
}

// registerTables registers every universe table on an engine — the same
// catalog on every node, so coordinator and worker plans agree.
func registerTables(e *engine.Engine, u *universe) error {
	for _, t := range u.Tables {
		path := fmt.Sprintf("mem://qcheck/%s.%s", t.Name, t.Format)
		e.Mem().PutFile(path, t.Data)
		schema := t.Schema
		if t.Format == "bin" {
			schema = nil // self-describing
		}
		if err := e.Register(t.Name, path, t.Format, schema, t.Opts); err != nil {
			return fmt.Errorf("register %s: %w", t.Name, err)
		}
	}
	return nil
}

// buildRunner builds one config's runner: a plain engine or — for
// distributed configs — a coordinator engine scattering over c.workers
// in-process worker query services. The runner's close func (nil for plain
// configs) tears the worker services down.
func buildRunner(c engConfig, u *universe) (*engineRunner, error) {
	if c.workers == 0 {
		e, err := buildEngine(c.cfg, u)
		if err != nil {
			return nil, err
		}
		return &engineRunner{cfg: c, eng: e}, nil
	}
	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	urls := make([]string, 0, c.workers)
	for i := 0; i < c.workers; i++ {
		// Workers register the identical universe so their locally re-planned
		// fragments carry the coordinator's plan fingerprint.
		db := proteus.Open(proteus.Config{Parallelism: 1, PlanCacheSize: -1})
		if err := registerTables(db.Engine(), u); err != nil {
			closeAll()
			return nil, fmt.Errorf("cluster worker %d: %w", i, err)
		}
		ts := httptest.NewServer(server.New(server.Config{DB: db}).Handler())
		closers = append(closers, ts.Close)
		urls = append(urls, ts.URL)
	}
	cfg := c.cfg
	cfg.Cluster = cluster.New(cluster.Config{Workers: urls})
	e, err := buildEngine(cfg, u)
	if err != nil {
		closeAll()
		return nil, err
	}
	return &engineRunner{cfg: c, eng: e, close: closeAll}, nil
}

func runEngineQuery(e *engine.Engine, lang, text string) (*resultSet, error) {
	var (
		res *exec.Result
		err error
	)
	if lang == "comp" {
		res, err = e.QueryComp(text)
	} else {
		res, err = e.QuerySQL(text)
	}
	if err != nil {
		return nil, err
	}
	return &resultSet{Cols: res.Cols, Rows: res.Rows}, nil
}

// runConfig executes the query under one config on a prebuilt engine and
// returns every observed result (two for warm/concurrent configs).
func runConfig(e *engine.Engine, c engConfig, lang, text string) ([]*resultSet, error) {
	switch {
	case c.concurrent:
		results := make([]*resultSet, 2)
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = runEngineQuery(e, lang, text)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	case c.warm:
		cold, err := runEngineQuery(e, lang, text)
		if err != nil {
			return nil, err
		}
		warm, err := runEngineQuery(e, lang, text)
		if err != nil {
			return nil, err
		}
		return []*resultSet{cold, warm}, nil
	case c.reps > 1:
		results := make([]*resultSet, c.reps)
		for i := range results {
			res, err := runEngineQuery(e, lang, text)
			if err != nil {
				return nil, fmt.Errorf("run %d: %w", i, err)
			}
			results[i] = res
		}
		return results, nil
	default:
		res, err := runEngineQuery(e, lang, text)
		if err != nil {
			return nil, err
		}
		return []*resultSet{res}, nil
	}
}
