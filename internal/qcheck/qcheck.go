// Package qcheck is a deterministic differential + metamorphic fuzzing
// harness for the query engine. From a single seed it generates random
// universes (CSV / JSON / binary tables with nulls, quoted strings,
// unicode, and numeric edge values) and random SQL and comprehension
// queries, then executes every query across a matrix of engine
// configurations — serial / parallel, tuple-at-a-time / vectorized, cold /
// warm caches, plan cache on / off, and two racing executions — and
// cross-checks the results:
//
//   - differentially, against a Volcano interpreter running the same
//     translated plan over the truth rows the data files were serialized
//     from (so the raw-data parsers are under test too), and exactly
//     against the base configuration for every other configuration;
//   - metamorphically: ternary-logic partitioning (Q ≡ Q+p ∪ Q+¬p ∪
//     Q+(p IS NULL)), COUNT(*) consistency against the projected row
//     count, and LIMIT prefix monotonicity under ORDER BY.
//
// Divergences are auto-minimized (rows first, then query clauses) and
// reported with a one-line repro command.
package qcheck

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"proteus/internal/engine"
)

// Options configures a harness run.
type Options struct {
	Seed      int64 // master seed; universe i runs with mix(Seed, i)
	Universes int   // number of universes (default 12)
	Queries   int   // cases per universe (default 44)

	// Repro overrides: run exactly one universe (by its derived seed, as
	// printed in a divergence) and optionally a single case index.
	UniverseSeed int64
	Case         int // -1 = all cases

	MaxDivergences int // stop reporting (not running) beyond this many (default 5)
	NoShrink       bool
	Log            func(format string, args ...any) // optional progress/diagnostic sink
}

// Divergence is one observed disagreement.
type Divergence struct {
	UniverseSeed int64
	Case         int
	Config       string // engine config name, or "oracle" for tier-A mismatches
	Kind         string // "result", "error", "metamorphic:…"
	Query        string
	Detail       string
	Repro        string // one-line go test command reproducing this case
	Minimized    string // shrunken tables + query, when shrinking succeeded
}

func (d Divergence) String() string {
	s := fmt.Sprintf("[%s/%s] useed=%d case=%d\n  query: %s\n  %s\n  repro: %s",
		d.Config, d.Kind, d.UniverseSeed, d.Case, d.Query, d.Detail, d.Repro)
	if d.Minimized != "" {
		s += "\n  minimized:\n" + d.Minimized
	}
	return s
}

// Report summarizes a run.
type Report struct {
	Universes   int
	Cases       int // generated cases
	Executed    int // cases that ran on at least the oracle and base engine
	Rejected    int // cases where oracle and every engine agreed on an error
	Comparisons int // individual result comparisons performed
	Divergences []Divergence
	Digest      uint64 // order-sensitive digest of every case's outcome
}

func (o Options) withDefaults() Options {
	if o.Universes == 0 {
		o.Universes = 12
	}
	if o.Queries == 0 {
		o.Queries = 44
	}
	if o.MaxDivergences == 0 {
		o.MaxDivergences = 5
	}
	if o.Case == 0 {
		o.Case = -1
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Run executes the harness and returns its report. The returned error is
// for harness-infrastructure failures only; engine disagreements are
// reported as Divergences.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{}
	h := fnv.New64a()

	useeds := make([]int64, 0, opts.Universes)
	if opts.UniverseSeed != 0 {
		useeds = append(useeds, opts.UniverseSeed)
	} else {
		for i := 0; i < opts.Universes; i++ {
			useeds = append(useeds, mix(opts.Seed, int64(i)))
		}
	}

	for _, useed := range useeds {
		if err := runUniverse(rep, useed, opts, h); err != nil {
			return rep, err
		}
		rep.Universes++
	}
	rep.Digest = h.Sum64()
	return rep, nil
}

func runUniverse(rep *Report, useed int64, opts Options, h interface{ Write([]byte) (int, error) }) error {
	u, err := genUniverse(useed)
	if err != nil {
		return err
	}
	cfgs := configMatrix()
	engines := make([]*engineRunner, len(cfgs))
	defer func() {
		for _, er := range engines {
			if er != nil && er.close != nil {
				er.close()
			}
		}
	}()
	for i, c := range cfgs {
		r, err := buildRunner(c, u)
		if err != nil {
			return fmt.Errorf("qcheck: build %s engine for universe %d: %w", c.name, useed, err)
		}
		engines[i] = r
	}
	for q := 0; q < opts.Queries; q++ {
		if opts.Case >= 0 && q != opts.Case {
			continue
		}
		rep.Cases++
		runCase(rep, u, useed, q, engines, opts, h)
	}
	return nil
}

// engineRunner pairs a config with its long-lived engine for one universe,
// plus the teardown for any in-process cluster workers behind it.
type engineRunner struct {
	cfg   engConfig
	eng   *engine.Engine
	close func() // nil for plain configs
}

func runCase(rep *Report, u *universe, useed int64, caseIdx int,
	engines []*engineRunner, opts Options, h interface{ Write([]byte) (int, error) }) {

	spec := genQuery(mix(useed, int64(caseIdx)), u)
	text := spec.render()
	repro := fmt.Sprintf("go test ./internal/qcheck -run 'TestQCheck$' -qcheck.useed=%d -qcheck.case=%d", useed, caseIdx)
	fmt.Fprintf(hWriter{h}, "case %d %s\n", caseIdx, text)

	report := func(cfg, kind, detail string, shrinkCfg *engConfig) {
		d := Divergence{
			UniverseSeed: useed, Case: caseIdx, Config: cfg, Kind: kind,
			Query: text, Detail: detail, Repro: repro,
		}
		if !opts.NoShrink && shrinkCfg != nil {
			d.Minimized = shrink(u, spec, *shrinkCfg)
		}
		if len(rep.Divergences) < opts.MaxDivergences {
			rep.Divergences = append(rep.Divergences, d)
			opts.Log("qcheck divergence: %s", d.String())
		}
	}

	oracle, c, oerr := runOracle(u, spec.lang, text)
	baseRes, berr := runConfig(engines[0].eng, engines[0].cfg, spec.lang, text)

	switch {
	case oerr != nil && berr != nil:
		// Consistent rejection; every other config must reject too.
		rep.Rejected++
		for _, er := range engines[1:] {
			if _, err := runConfig(er.eng, er.cfg, spec.lang, text); err == nil {
				cfg := er.cfg
				report(cfg.name, "error", fmt.Sprintf(
					"oracle and base reject the query (%v) but %s accepts it", oerr, cfg.name), &cfg)
			}
			rep.Comparisons++
		}
		fmt.Fprintf(hWriter{h}, "rejected %v\n", oerr)
		return
	case oerr != nil:
		report("oracle", "error", fmt.Sprintf("oracle rejects (%v) but the engine accepts", oerr), &engines[0].cfg)
		return
	case berr != nil:
		report(engines[0].cfg.name, "error", fmt.Sprintf("engine rejects (%v) but the oracle accepts", berr), &engines[0].cfg)
		return
	}
	rep.Executed++

	var orderCols []string
	for _, ob := range c.OrderBy {
		orderCols = append(orderCols, ob)
	}

	base := baseRes[0]
	for _, row := range base.Rows {
		fmt.Fprintf(hWriter{h}, "%s\n", encodeRow(row))
	}

	// Tier A: base vs oracle.
	rep.Comparisons++
	if d := compareOracle(oracle, base, orderCols, c.Limit); d != "" {
		report("oracle", "result", d, &engines[0].cfg)
	}

	// Tier B: every other config vs base. Exact (ordered, byte-identical)
	// where output order is deterministic by construction; oracle-tier rules
	// where it is implementation-defined (group emission order and join row
	// order may shift when the adaptive optimizer re-plans on warmed stats).
	exact := spec.exactOrder()
	for _, er := range engines[1:] {
		results, err := runConfig(er.eng, er.cfg, spec.lang, text)
		rep.Comparisons++
		cfg := er.cfg
		if err != nil {
			report(cfg.name, "error", fmt.Sprintf("base succeeds but %s fails: %v", cfg.name, err), &cfg)
			continue
		}
		for ri, res := range results {
			d := ""
			if exact {
				d = compareExact(base, res)
			} else {
				d = compareOracle(oracle, res, orderCols, c.Limit)
			}
			if d != "" {
				report(cfg.name, "result", fmt.Sprintf("run %d: %s", ri, d), &cfg)
				break
			}
		}
	}

	runMetamorphic(rep, spec, engines[0], base, mix(mix(useed, int64(caseIdx)), 7777), report)
}

// hWriter adapts the digest hash to Fprintf.
type hWriter struct {
	h interface{ Write([]byte) (int, error) }
}

func (w hWriter) Write(p []byte) (int, error) { return w.h.Write(p) }

// FormatReport renders a short human-readable summary.
func FormatReport(r *Report) string {
	s := fmt.Sprintf("qcheck: %d universes, %d cases (%d executed, %d rejected), %d comparisons, digest %s",
		r.Universes, r.Cases, r.Executed, r.Rejected, r.Comparisons,
		strconv.FormatUint(r.Digest, 16))
	for _, d := range r.Divergences {
		s += "\n" + d.String()
	}
	return s
}
